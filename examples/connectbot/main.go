// ConnectBot reproduces Figures 2 and 5 of the paper: why a naive
// low-level race detector drowns in false positives on event-driven
// code, and how CAFA's commutativity heuristics keep benign races out
// of the report.
//
//   - Figure 2: onPause and onLayout conflict on
//     terminal.resizeAllowed, but looper atomicity makes them
//     commutative — a read-write "race" that is not a bug.
//   - Figure 5: onFocus guards its use of handler with a null check
//     (if-guard filter) and onResume re-allocates handler before using
//     it (intra-event-allocation filter).
package main

import (
	"fmt"
	"log"

	"cafa"
)

const src = `
.method run(this) regs=1
    return-void
.end

; --- Figure 2: commutative scalar conflict ---

.method onPause(term) regs=2
    const-int v1, #0
    iput-int v1, term, resizeAllowed
    return-void
.end

.method onLayout(term) regs=4
    iget-int v1, term, resizeAllowed
    const-int v2, #0
    if-int-eq v1, v2, out
    const-int v3, #80
    iput-int v3, term, columns
    iput-int v3, term, rows
out:
    return-void
.end

; --- Figure 5: guarded / re-allocated uses of handler ---

.method onPauseH(act) regs=2
    const-null v1
    iput v1, act, handler
    return-void
.end

.method onFocus(act) regs=3
    iget v1, act, handler
    if-eqz v1, skip
    invoke-virtual run, v1
skip:
    return-void
.end

.method onResume(act) regs=3
    new v1, Handler
    iput v1, act, handler
    iget v2, act, handler
    invoke-virtual run, v2
    return-void
.end

; --- system thread that posts the internally generated events ---

.method sysThread(arg) regs=6
    sget-int v1, mainQ
    const-int v3, #0
    sget v0, termObj
    const-method v2, onLayout
    send v1, v2, v3, v0
    sget v0, actObj
    const-method v2, onFocus
    send v1, v2, v3, v0
    const-method v2, onResume
    send v1, v2, v3, v0
    return-void
.end
`

func main() {
	prog := cafa.MustAssemble(src)
	col := cafa.NewCollector()
	sys := cafa.NewSystem(prog, cafa.SystemConfig{Tracer: col, Seed: 1})
	main := sys.AddLooper("main", 0)
	sys.Heap().SetStatic(prog.FieldID("mainQ"), cafa.Int(main.Handle()))

	term := sys.Heap().New("TerminalView")
	term.Set(prog.FieldID("resizeAllowed"), cafa.Int(1))
	sys.Heap().SetStatic(prog.FieldID("termObj"), cafa.Obj(term))

	act := sys.Heap().New("Activity")
	handler := sys.Heap().New("Handler")
	act.Set(prog.FieldID("handler"), cafa.Obj(handler))
	sys.Heap().SetStatic(prog.FieldID("actObj"), cafa.Obj(act))

	if _, err := sys.StartThread("system", "sysThread", cafa.Null()); err != nil {
		log.Fatal(err)
	}
	// User actions arrive later: pause the terminal, then the
	// activity.
	must(sys.Inject(50, main, "onPause", cafa.Obj(term), 0))
	must(sys.Inject(60, main, "onPauseH", cafa.Obj(act), 0))
	must(sys.Run())

	rep, err := cafa.Analyze(col.T, cafa.AnalyzeOptions{Naive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events traced: %d, crashes: %d\n", col.T.EventCount(), len(sys.Crashes()))
	fmt.Printf("naive low-level detector: %d conflicting-access races\n", len(rep.Naive))
	for _, nr := range rep.Naive {
		fmt.Printf("  conflict on %s\n", col.T.VarName(nr.Var))
	}
	fmt.Printf("CAFA use-free detector:  %d races\n", len(rep.Races))
	fmt.Printf("filters: if-guard pruned %d, intra-event-allocation pruned %d\n",
		rep.Stats.FilteredIfGuard, rep.Stats.FilteredIntraAlloc)
	fmt.Println("\nThe Figure 2 scalar conflict and both Figure 5 pointer races are")
	fmt.Println("commutative under looper atomicity; CAFA reports none of them.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

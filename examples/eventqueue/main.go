// Eventqueue walks through the event-queue causality rules of §3.3
// (Figure 4): which pairs of events the model orders, and why. Each
// scenario runs on the simulated runtime, is traced, and the derived
// happens-before relations are queried from the graph.
package main

import (
	"fmt"
	"log"

	"cafa"
)

const src = `
.method onA(arg) regs=1
    return-void
.end

.method onB(arg) regs=1
    return-void
.end

; Figure 4b: two sends, same delay -> FIFO orders A before B.
.method fifoSender(q) regs=5
    const-method v1, onA
    const-method v2, onB
    const-null v3
    const-int v4, #1
    send q, v1, v4, v3
    send q, v2, v4, v3
    return-void
.end

; Figure 4c: A delayed 5ms, B sent 2ms later with no delay -> B may
; run first, no order derivable.
.method delaySender(q) regs=6
    const-method v1, onA
    const-method v2, onB
    const-null v3
    const-int v4, #5
    send q, v1, v4, v3
    const-int v5, #2
    sleep v5
    const-int v4, #0
    send q, v2, v4, v3
    return-void
.end

; Figure 4d: an event on the same looper sends A then sendAtFront B;
; looper atomicity guarantees B is enqueued before A can run -> B
; always precedes A.
.method onC(q) regs=5
    const-method v1, onA
    const-method v2, onB
    const-null v3
    const-int v4, #0
    send q, v1, v4, v3
    send-front q, v2, v3
    return-void
.end

; Figure 4e: the same two sends from a regular thread -> no guarantee.
.method threadSender(q) regs=5
    const-method v1, onA
    const-method v2, onB
    const-null v3
    const-int v4, #0
    send q, v1, v4, v3
    send-front q, v2, v3
    return-void
.end
`

type scenario struct {
	name   string
	figure string
	wire   func(sys *cafa.System, main *cafa.Looper, prog *cafa.Program) error
	expect string
}

func main() {
	scenarios := []scenario{
		{
			name: "FIFO, equal delays", figure: "4b",
			wire: func(sys *cafa.System, main *cafa.Looper, prog *cafa.Program) error {
				_, err := sys.StartThread("T", "fifoSender", cafa.Int(main.Handle()))
				return err
			},
			expect: "A happens-before B (queue rule 1)",
		},
		{
			name: "earlier send, larger delay", figure: "4c",
			wire: func(sys *cafa.System, main *cafa.Looper, prog *cafa.Program) error {
				_, err := sys.StartThread("T", "delaySender", cafa.Int(main.Handle()))
				return err
			},
			expect: "no order derivable",
		},
		{
			name: "sendAtFront from a looper event", figure: "4d",
			wire: func(sys *cafa.System, main *cafa.Looper, prog *cafa.Program) error {
				return sys.Inject(0, main, "onC", cafa.Int(main.Handle()), 0)
			},
			expect: "B happens-before A (queue rule 2 via atomicity)",
		},
		{
			name: "sendAtFront from a thread", figure: "4e",
			wire: func(sys *cafa.System, main *cafa.Looper, prog *cafa.Program) error {
				_, err := sys.StartThread("T", "threadSender", cafa.Int(main.Handle()))
				return err
			},
			expect: "no order derivable",
		},
	}

	for _, sc := range scenarios {
		prog := cafa.MustAssemble(src)
		col := cafa.NewCollector()
		sys := cafa.NewSystem(prog, cafa.SystemConfig{Tracer: col, Seed: 1})
		main := sys.AddLooper("main", 0)
		if err := sc.wire(sys, main, prog); err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(); err != nil {
			log.Fatal(err)
		}
		g, err := cafa.BuildGraph(col.T, cafa.GraphOptions{})
		if err != nil {
			log.Fatal(err)
		}
		// Find the event tasks named onA / onB.
		var a, b cafa.TaskID
		for id, ti := range col.T.Tasks {
			switch ti.Name {
			case "onA":
				a = id
			case "onB":
				b = id
			}
		}
		var verdict string
		switch {
		case g.TaskOrdered(a, b):
			verdict = "A happens-before B"
		case g.TaskOrdered(b, a):
			verdict = "B happens-before A"
		default:
			verdict = "A and B are concurrent"
		}
		fmt.Printf("Figure %s — %s\n", sc.figure, sc.name)
		fmt.Printf("  model says: %-24s (paper: %s)\n", verdict, sc.expect)
		fmt.Printf("  graph: %d nodes, %d derived rule edges, %d fixpoint rounds\n\n",
			g.Stats().Nodes, g.Stats().RuleEdges, g.Stats().Rounds)
	}
}

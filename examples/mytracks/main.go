// MyTracks reproduces Figure 1 of the paper end to end: the
// use-after-free between onServiceConnected (posted back to the main
// looper by a Binder RPC) and onDestroy (a later user action).
//
// The example runs the app three ways:
//
//  1. the normal recording run — everything works, yet CAFA finds the
//     race predictively from the trace;
//  2. the adversarial run with a slow service (the reply is delayed
//     past onDestroy) — the NullPointerException of Figure 1(b)
//     manifests;
//  3. the fixed version, where onDestroy is ordered behind the
//     connection via the same event queue — no race, no crash.
package main

import (
	"fmt"
	"log"

	"cafa"
)

const appSrc = `
.method updateTrack(this) regs=1
    return-void
.end

.method onServiceConnected(act) regs=3
    iget v1, act, providerUtils
    invoke-virtual updateTrack, v1
    return-void
.end

.method onBind(act) regs=5
    sget-int v1, mainQ
    const-method v2, onServiceConnected
    const-int v3, #0
    send v1, v2, v3, act
    const-int v4, #0
    return v4
.end

.method onResume(act) regs=5
    new v1, ProviderUtils
    iput v1, act, providerUtils
    sget-int v2, svc
    const-method v3, onBind
    rpc v2, v3, act -> v4
    return-void
.end

.method onDestroy(act) regs=2
    const-null v1
    iput v1, act, providerUtils
    return-void
.end
`

// fixedSrc routes the destroy through the same send that delivers the
// connection event, ordering them by event-queue rule 1.
const fixedSrc = `
.method updateTrack(this) regs=1
    return-void
.end

.method onServiceConnected(act) regs=6
    iget v1, act, providerUtils
    invoke-virtual updateTrack, v1
    sget-int v2, wantDestroy
    const-int v3, #0
    if-int-eq v2, v3, done
    sget-int v4, mainQ
    const-method v5, onDestroy
    send v4, v5, v3, act
done:
    return-void
.end

.method onBind(act) regs=5
    sget-int v1, mainQ
    const-method v2, onServiceConnected
    const-int v3, #0
    send v1, v2, v3, act
    const-int v4, #0
    return v4
.end

.method onResume(act) regs=5
    new v1, ProviderUtils
    iput v1, act, providerUtils
    sget-int v2, svc
    const-method v3, onBind
    rpc v2, v3, act -> v4
    return-void
.end

.method onDestroy(act) regs=2
    const-null v1
    iput v1, act, providerUtils
    return-void
.end

.method requestDestroy(act) regs=2
    const-int v1, #1
    sput-int v1, wantDestroy
    return-void
.end
`

func run(src string, cfg cafa.SystemConfig, fixed bool) (*cafa.System, *cafa.Collector) {
	prog := cafa.MustAssemble(src)
	col := cafa.NewCollector()
	cfg.Tracer = col
	sys := cafa.NewSystem(prog, cfg)
	main := sys.AddLooper("main", 0)
	svc := sys.AddService("TrackRecordingService", 1)
	sys.Heap().SetStatic(prog.FieldID("mainQ"), cafa.Int(main.Handle()))
	sys.Heap().SetStatic(prog.FieldID("svc"), cafa.Int(svc))
	act := sys.Heap().New("MyTracksActivity")
	must(sys.Inject(0, main, "onResume", cafa.Obj(act), 0))
	if fixed {
		must(sys.Inject(100, main, "requestDestroy", cafa.Obj(act), 0))
	} else {
		must(sys.Inject(100, main, "onDestroy", cafa.Obj(act), 0))
	}
	must(sys.Run())
	return sys, col
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	fmt.Println("=== 1. normal run (Figure 1a) ===")
	sys, col := run(appSrc, cafa.SystemConfig{Seed: 1}, false)
	fmt.Printf("crashes: %d (the correct interleaving works fine)\n", len(sys.Crashes()))
	rep, err := cafa.Analyze(col.T, cafa.AnalyzeOptions{})
	must(err)
	fmt.Printf("but CAFA finds %d race(s) in the trace:\n", len(rep.Races))
	for _, r := range rep.Races {
		fmt.Println("  " + rep.Describe(r))
	}

	fmt.Println("\n=== 2. adversarial run: slow service (Figure 1b) ===")
	slow := cafa.SystemConfig{Seed: 1, DelayEvent: func(m string) int64 {
		if m == "onServiceConnected" {
			return 500 // the GPS service answers after the user left
		}
		return 0
	}}
	sys2, _ := run(appSrc, slow, false)
	for _, c := range sys2.Crashes() {
		fmt.Printf("crash: %v\n", c)
	}
	if len(sys2.Crashes()) == 0 {
		fmt.Println("unexpected: no crash")
	}

	fmt.Println("\n=== 3. fixed app: destroy ordered behind the connection ===")
	sys3, col3 := run(fixedSrc, cafa.SystemConfig{Seed: 1}, true)
	rep3, err := cafa.Analyze(col3.T, cafa.AnalyzeOptions{})
	must(err)
	fmt.Printf("crashes: %d, races: %d\n", len(sys3.Crashes()), len(rep3.Races))
	sys4, _ := run(fixedSrc, slow, true)
	fmt.Printf("even with the slow service: crashes: %d\n", len(sys4.Crashes()))
}

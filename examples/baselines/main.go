// Baselines contrasts three detectors on the same recorded trace —
// the comparison that motivates the paper (§1, §4.1, §7.1):
//
//  1. FastTrack-style thread-based detector: folds every event into
//     its looper thread's program order, so it is blind to the
//     intra-looper use-after-free;
//  2. naive low-level detector on the event-driven model: sees the
//     race but buries it in benign conflicting-access reports;
//  3. CAFA: the event-driven model restricted to use-free races —
//     exactly one report, the real bug.
package main

import (
	"fmt"
	"log"

	"cafa"
	"cafa/internal/vclock"
)

const src = `
.method run(this) regs=1
    return-void
.end

; the real bug: onUse races with onFree on activity.session
.method onUse(act) regs=3
    iget v1, act, session
    invoke-virtual run, v1
    return-void
.end

.method onFree(act) regs=2
    const-null v1
    iput v1, act, session
    return-void
.end

; benign commutative traffic (the Figure 2 pattern), times five
.method noisePause(term) regs=2
    const-int v1, #0
    iput-int v1, term, resizeAllowed
    return-void
.end

.method noiseLayout(term) regs=4
    iget-int v1, term, resizeAllowed
    const-int v2, #0
    if-int-eq v1, v2, out
    const-int v3, #80
    iput-int v3, term, columns
out:
    return-void
.end

.method sendUse(act) regs=5
    sget-int v1, mainQ
    const-method v2, onUse
    const-int v3, #0
    send v1, v2, v3, act
    return-void
.end

.method sendFree(act) regs=5
    const-int v3, #20
    sleep v3
    sget-int v1, mainQ
    const-method v2, onFree
    const-int v3, #0
    send v1, v2, v3, act
    return-void
.end

.method sendNoiseP(term) regs=5
    sget-int v1, mainQ
    const-method v2, noisePause
    const-int v3, #0
    send v1, v2, v3, term
    return-void
.end

.method sendNoiseL(term) regs=5
    sget-int v1, mainQ
    const-method v2, noiseLayout
    const-int v3, #0
    send v1, v2, v3, term
    return-void
.end
`

func main() {
	prog := cafa.MustAssemble(src)
	col := cafa.NewCollector()
	sys := cafa.NewSystem(prog, cafa.SystemConfig{Tracer: col, Seed: 1})
	main := sys.AddLooper("main", 0)
	sys.Heap().SetStatic(prog.FieldID("mainQ"), cafa.Int(main.Handle()))

	act := sys.Heap().New("Activity")
	session := sys.Heap().New("Session")
	act.Set(prog.FieldID("session"), cafa.Obj(session))
	must(startThread(sys, "su", "sendUse", cafa.Obj(act)))
	must(startThread(sys, "sf", "sendFree", cafa.Obj(act)))
	for i := 0; i < 5; i++ {
		term := sys.Heap().New("TerminalView")
		term.Set(prog.FieldID("resizeAllowed"), cafa.Int(1))
		must(startThread(sys, "np", "sendNoiseP", cafa.Obj(term)))
		must(startThread(sys, "nl", "sendNoiseL", cafa.Obj(term)))
	}
	must(sys.Run())
	fmt.Printf("one trace: %d events, %d entries\n\n", col.T.EventCount(), col.T.Len())

	// 1. Thread-based FastTrack (events folded into the looper).
	ftRaces, err := vclock.FastTrack(col.T)
	must(err)
	fmt.Printf("1. thread-based FastTrack:  %d races  (blind: every event looks program-ordered)\n", len(ftRaces))

	// 2 & 3. The event-driven model, naive vs use-free.
	rep, err := cafa.Analyze(col.T, cafa.AnalyzeOptions{Naive: true})
	must(err)
	fmt.Printf("2. naive low-level races:   %d races  (the real bug drowns in benign conflicts)\n", len(rep.Naive))
	fmt.Printf("3. CAFA use-free detector:  %d race\n", len(rep.Races))
	for _, r := range rep.Races {
		fmt.Printf("   -> %s\n", rep.Describe(r))
	}
}

func startThread(sys *cafa.System, name, method string, arg cafa.Value) error {
	_, err := sys.StartThread(name, method, arg)
	return err
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Quickstart: assemble a tiny event-driven app with a use-after-free
// race between two events of the main looper, trace it, and let CAFA
// find the race.
package main

import (
	"fmt"
	"log"

	"cafa"
)

const src = `
.method run(this) regs=1
    return-void
.end

; onUse dereferences activity.session.
.method onUse(h) regs=3
    iget v1, h, session
    invoke-virtual run, v1
    return-void
.end

; onFree nulls it out. Nothing orders the two events.
.method onFree(h) regs=2
    const-null v1
    iput v1, h, session
    return-void
.end

.method sendUse(h) regs=5
    sget-int v1, mainQ
    const-method v2, onUse
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end

.method sendFree(h) regs=5
    const-int v3, #20
    sleep v3
    sget-int v1, mainQ
    const-method v2, onFree
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end
`

func main() {
	prog := cafa.MustAssemble(src)

	// Online half: run the app on the simulated runtime, tracing.
	col := cafa.NewCollector()
	sys := cafa.NewSystem(prog, cafa.SystemConfig{Tracer: col, Seed: 1})
	main := sys.AddLooper("main", 0)
	sys.Heap().SetStatic(prog.FieldID("mainQ"), cafa.Int(main.Handle()))

	activity := sys.Heap().New("Activity")
	session := sys.Heap().New("Session")
	activity.Set(prog.FieldID("session"), cafa.Obj(session))

	for _, th := range []string{"sendUse", "sendFree"} {
		if _, err := sys.StartThread(th, th, cafa.Obj(activity)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %d entries over %d events\n", col.T.Len(), col.T.EventCount())

	// Offline half: causality model + use-free race detection.
	rep, err := cafa.Analyze(col.T, cafa.AnalyzeOptions{Naive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("use-free races: %d\n", len(rep.Races))
	for _, r := range rep.Races {
		fmt.Println("  " + rep.Describe(r))
	}
	fmt.Printf("low-level baseline would report %d conflicting-access races\n", len(rep.Naive))
	fmt.Printf("pipeline: %d uses, %d frees, %d candidates\n",
		rep.Stats.Uses, rep.Stats.Frees, rep.Stats.Candidates)
}

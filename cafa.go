// Package cafa is the public API of CAFA-Go, a from-scratch
// reproduction of "Race Detection for Event-Driven Mobile
// Applications" (Yu et al., PLDI 2014).
//
// CAFA finds use-after-free races in event-driven (Android-style)
// programs. The pipeline has two halves:
//
//   - Online: an application runs on the simulated event-driven
//     runtime (looper threads, event queues with delays and
//     sendAtFront, regular threads, monitors, Binder-like RPC) with
//     the instrumented bytecode interpreter emitting a trace.
//   - Offline: the analyzer builds the paper's event-driven causality
//     model over the trace and reports use/free pairs left unordered
//     by it, pruned by the if-guard, intra-event-allocation, and
//     lockset filters.
//
// Quick start:
//
//	prog := cafa.MustAssemble(src)          // Dalvik-like assembly
//	col := cafa.NewCollector()
//	sys := cafa.NewSystem(prog, cafa.SystemConfig{Tracer: col})
//	main := sys.AddLooper("main", 0)
//	... wire threads, inject events ...
//	sys.Run()
//	rep, _ := cafa.Analyze(col.T, cafa.AnalyzeOptions{})
//	for _, r := range rep.Races { fmt.Println(rep.Describe(r)) }
//
// The subpackages under internal implement the pieces: trace
// (operation vocabulary and codecs), dvm (bytecode VM), asm
// (assembler), sim (event-driven runtime), hb (causality model),
// lockset, detect (use-free detector and baselines), vclock
// (FastTrack-style comparison), replay (adversarial validation), apps
// (the ten evaluated application models), and report (Table 1 /
// Figure 8 harnesses).
package cafa

import (
	"io"

	"cafa/internal/analysis"
	"cafa/internal/asm"
	"cafa/internal/detect"
	"cafa/internal/dvm"
	"cafa/internal/hb"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// Re-exported core types. The aliases make the public surface usable
// without importing internal packages.
type (
	// Trace is a recorded execution.
	Trace = trace.Trace
	// Entry is one trace operation.
	Entry = trace.Entry
	// Op enumerates trace operations.
	Op = trace.Op
	// TaskID identifies an event or thread.
	TaskID = trace.TaskID
	// Tracer receives trace entries during execution.
	Tracer = trace.Tracer
	// Collector is an in-memory Tracer.
	Collector = trace.Collector
	// DeviceSink is a Tracer that serializes entries immediately (the
	// logger-device model used for overhead measurements).
	DeviceSink = trace.DeviceSink

	// Program is a compiled bytecode unit.
	Program = dvm.Program
	// Value is a VM value (int, object reference, or method handle).
	Value = dvm.Value
	// Object is a heap object.
	Object = dvm.Object

	// System is a simulated device running one or more apps.
	System = sim.System
	// SystemConfig tunes a System.
	SystemConfig = sim.Config
	// Looper is a looper thread with its event queue.
	Looper = sim.Looper
	// Crash records an uncaught exception (a manifested
	// use-after-free).
	Crash = sim.Crash

	// Graph is the happens-before graph of a trace.
	Graph = hb.Graph
	// GraphOptions selects the causality model variant.
	GraphOptions = hb.Options

	// Race is a reported use-free race.
	Race = detect.Race
	// Class is a race class (intra-thread / inter-thread /
	// conventional).
	Class = detect.Class
	// DetectOptions carries the detector's ablation switches.
	DetectOptions = detect.Options
	// DetectStats counts detector pipeline stages.
	DetectStats = detect.Stats
	// NaiveRace is a low-level conflicting-access race from the
	// baseline detector.
	NaiveRace = detect.NaiveRace
)

// Race classes (Table 1 columns a, b, c).
const (
	ClassIntraThread  = detect.ClassIntraThread
	ClassInterThread  = detect.ClassInterThread
	ClassConventional = detect.ClassConventional
)

// Assemble compiles Dalvik-like assembly source into a Program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// MustAssemble is Assemble for static sources; it panics on error.
func MustAssemble(src string) *Program { return asm.MustAssemble(src) }

// NewCollector returns an in-memory trace collector.
func NewCollector() *Collector { return trace.NewCollector() }

// NewDeviceSink returns a serializing trace sink.
func NewDeviceSink() *DeviceSink { return trace.NewDeviceSink() }

// NewSystem builds a simulated device over a program.
func NewSystem(p *Program, cfg SystemConfig) *System { return sim.NewSystem(p, cfg) }

// Null returns the null object reference.
func Null() Value { return dvm.Null() }

// Int returns an integer VM value (also used for handles).
func Int(v int64) Value { return dvm.Int64(v) }

// Obj returns an object-reference VM value.
func Obj(o *Object) Value { return dvm.Obj(o.ID) }

// DecodeTrace reads a binary trace (see Trace.Encode).
func DecodeTrace(r io.Reader) (*Trace, error) { return trace.Decode(r) }

// BuildGraph constructs the happens-before graph of a trace under the
// event-driven causality model (or the conventional baseline when
// opts.Conventional is set).
func BuildGraph(tr *Trace, opts GraphOptions) (*Graph, error) { return hb.Build(tr, opts) }

// Report is the result of analyzing one trace.
type Report struct {
	// Races are the reported use-free races, deduplicated by code
	// site.
	Races []Race
	// Stats counts the detector's pipeline stages.
	Stats DetectStats
	// GraphStats summarizes causality-model construction.
	GraphStats hb.Stats
	// Naive holds the low-level baseline races when requested.
	Naive []NaiveRace

	tr *Trace
}

// AnalyzeOptions configures Analyze.
type AnalyzeOptions struct {
	// Detect carries the detector's ablation switches.
	Detect DetectOptions
	// Naive additionally runs the low-level conflicting-access
	// baseline (the paper's §4.1 motivation).
	Naive bool
}

// Analyze runs the full offline pipeline on a trace: both causality
// models, lock sets, and the use-free race detector. The passes run
// concurrently via internal/analysis; results are identical to the
// serial pipeline.
func Analyze(tr *Trace, opts AnalyzeOptions) (*Report, error) {
	res, err := analysis.Analyze(tr, analysis.Options{Detect: opts.Detect, Naive: opts.Naive})
	if err != nil {
		return nil, err
	}
	return &Report{
		Races:      res.Races,
		Stats:      res.Stats,
		GraphStats: res.GraphStats,
		Naive:      res.Naive,
		tr:         tr,
	}, nil
}

// Describe renders a race against the report's trace symbol tables.
func (r *Report) Describe(race Race) string {
	return race.Describe(r.tr)
}

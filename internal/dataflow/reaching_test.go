package dataflow

import (
	"strconv"
	"testing"

	"cafa/internal/asm"
	"cafa/internal/trace"
)

func sourcesFor(t *testing.T, src, method string) (map[Key]Source, trace.MethodID) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Methods[p.MustMethod(method)]
	return DerefSources(p), m.ID
}

func TestUniqueLoadResolves(t *testing.T) {
	srcs, mid := sourcesFor(t, `
.method run(this) regs=1
    return-void
.end

.method f(h) regs=3
    iget v1, h, ptr        ; pc 0: load
    invoke-virtual run, v1 ; pc 1: deref of v1
    return-void
.end
`, "f")
	got, ok := srcs[Key{Method: mid, PC: 1}]
	if !ok || got.Kind != SrcLoad || got.LoadPC != 0 {
		t.Errorf("deref source = %+v, want load at pc 0", got)
	}
	// pc 0 itself dereferences h (a parameter): unknown origin.
	if got := srcs[Key{Method: mid, PC: 0}]; got.Kind != SrcUnknown {
		t.Errorf("param deref = %+v, want unknown", got)
	}
}

func TestAliasedLoadsResolveExactly(t *testing.T) {
	// The Type III pattern: two loads of the same object; the deref
	// uses the FIRST, and the analysis must say so even though the
	// second load is nearer dynamically.
	srcs, mid := sourcesFor(t, `
.method run(this) regs=1
    return-void
.end

.method f(h) regs=4
    iget v1, h, ptrA       ; pc 0
    iget v2, h, ptrB       ; pc 1
    invoke-virtual run, v1 ; pc 2: derefs the pc-0 load
    return-void
.end
`, "f")
	got := srcs[Key{Method: mid, PC: 2}]
	if got.Kind != SrcLoad || got.LoadPC != 0 {
		t.Errorf("aliased deref source = %+v, want load at pc 0", got)
	}
}

func TestFreshObjectIsNotAUse(t *testing.T) {
	srcs, mid := sourcesFor(t, `
.method run(this) regs=1
    return-void
.end

.method f(h) regs=3
    new v1, Obj            ; pc 0
    invoke-virtual run, v1 ; pc 1
    return-void
.end
`, "f")
	if got := srcs[Key{Method: mid, PC: 1}]; got.Kind != SrcFresh {
		t.Errorf("fresh deref = %+v, want SrcFresh", got)
	}
}

func TestMoveChainsResolve(t *testing.T) {
	srcs, mid := sourcesFor(t, `
.method run(this) regs=1
    return-void
.end

.method f(h) regs=4
    iget v1, h, ptr        ; pc 0
    move v2, v1            ; pc 1
    move v3, v2            ; pc 2
    invoke-virtual run, v3 ; pc 3
    return-void
.end
`, "f")
	if got := srcs[Key{Method: mid, PC: 3}]; got.Kind != SrcLoad || got.LoadPC != 0 {
		t.Errorf("move-chain deref = %+v, want load at pc 0", got)
	}
}

func TestJoinOfTwoLoadsIsAmbiguous(t *testing.T) {
	srcs, mid := sourcesFor(t, `
.method run(this) regs=1
    return-void
.end

.method f(h, c) regs=5
    const-int v3, #0
    if-int-eq c, v3, other
    iget v2, h, ptrA       ; pc 2
    goto use
other:
    iget v2, h, ptrB       ; pc 4
use:
    invoke-virtual run, v2 ; pc 5
    return-void
.end
`, "f")
	if got := srcs[Key{Method: mid, PC: 5}]; got.Kind != SrcUnknown {
		t.Errorf("two-path deref = %+v, want unknown", got)
	}
}

func TestLoopKeepsUniqueLoad(t *testing.T) {
	srcs, mid := sourcesFor(t, `
.method run(this) regs=1
    return-void
.end

.method f(h) regs=5
    const-int v2, #3
    const-int v3, #1
loop:
    iget v1, h, ptr        ; pc 2
    invoke-virtual run, v1 ; pc 3
    sub-int v2, v2, v3
    const-int v4, #0
    if-int-gt v2, v4, loop
    return-void
.end
`, "f")
	if got := srcs[Key{Method: mid, PC: 3}]; got.Kind != SrcLoad || got.LoadPC != 2 {
		t.Errorf("loop deref = %+v, want load at pc 2", got)
	}
}

func TestTryHandlerEdgesMergeDefs(t *testing.T) {
	// Inside the try the register may be either load when the handler
	// runs; the deref in the handler must be ambiguous.
	srcs, mid := sourcesFor(t, `
.method run(this) regs=1
    return-void
.end

.method f(h) regs=4
    iget v1, h, ptrA       ; pc 0
    try handler
    iget v1, h, ptrB       ; pc 2 (may or may not execute before NPE)
    invoke-virtual run, v1 ; pc 3
    end-try
    return-void
handler:
    invoke-virtual run, v1 ; pc 6
    return-void
.end
`, "f")
	if got := srcs[Key{Method: mid, PC: 6}]; got.Kind != SrcUnknown {
		t.Errorf("handler deref = %+v, want unknown (two defs may reach)", got)
	}
	// The in-try deref after the load is unambiguous.
	if got := srcs[Key{Method: mid, PC: 3}]; got.Kind != SrcLoad || got.LoadPC != 2 {
		t.Errorf("in-try deref = %+v, want load at pc 2", got)
	}
}

func TestResolveDepthLimit(t *testing.T) {
	// resolve chases move chains up to resolveDepthLimit hops. A chain
	// of exactly that many moves still resolves; one more falls back to
	// SrcUnknown — i.e. to the dynamic nearest-read heuristic. The
	// interprocedural pass in internal/static must preserve this
	// fallback: where the static answer is unknown the detector behaves
	// exactly as it would with no static data at all.
	chain := func(moves int) string {
		src := ".method run(this) regs=1\n    return-void\n.end\n\n"
		src += ".method f(h) regs=16\n    iget v1, h, ptr\n"
		for i := 0; i < moves; i++ {
			src += "    move v" + strconv.Itoa(i+2) + ", v" + strconv.Itoa(i+1) + "\n"
		}
		src += "    invoke-virtual run, v" + strconv.Itoa(moves+1) + "\n    return-void\n.end\n"
		return src
	}

	srcs, mid := sourcesFor(t, chain(resolveDepthLimit), "f")
	derefPC := trace.PC(1 + resolveDepthLimit)
	if got := srcs[Key{Method: mid, PC: derefPC}]; got.Kind != SrcLoad || got.LoadPC != 0 {
		t.Errorf("chain of %d moves = %+v, want load at pc 0", resolveDepthLimit, got)
	}

	srcs, mid = sourcesFor(t, chain(resolveDepthLimit+1), "f")
	derefPC = trace.PC(1 + resolveDepthLimit + 1)
	if got := srcs[Key{Method: mid, PC: derefPC}]; got.Kind != SrcUnknown {
		t.Errorf("chain of %d moves = %+v, want SrcUnknown fallback", resolveDepthLimit+1, got)
	}
}

func TestHandlerSeesPreStateOfFaultingLoad(t *testing.T) {
	// Exceptional edges carry the PRE-state of the faulting
	// instruction: if the only definition inside the try is the
	// faulting load itself, that definition never reaches the handler,
	// so the handler's deref still resolves to the load before the try.
	srcs, mid := sourcesFor(t, `
.method run(this) regs=1
    return-void
.end

.method f(h) regs=4
    iget v1, h, ptrA       ; pc 0
    try handler
    iget v1, h, ptrB       ; pc 2: faults before defining v1
    end-try
    return-void
handler:
    invoke-virtual run, v1 ; pc 5
    return-void
.end
`, "f")
	if got := srcs[Key{Method: mid, PC: 5}]; got.Kind != SrcLoad || got.LoadPC != 0 {
		t.Errorf("handler deref = %+v, want load at pc 0 (pre-state)", got)
	}
}

func TestKeysDeterministic(t *testing.T) {
	srcs, _ := sourcesFor(t, `
.method run(this) regs=1
    return-void
.end

.method f(h) regs=3
    iget v1, h, a
    invoke-virtual run, v1
    iget v2, h, b
    invoke-virtual run, v2
    return-void
.end
`, "f")
	ks := Keys(srcs)
	for i := 1; i < len(ks); i++ {
		if ks[i].Method < ks[i-1].Method ||
			(ks[i].Method == ks[i-1].Method && ks[i].PC <= ks[i-1].PC) {
			t.Fatal("Keys not sorted")
		}
	}
}

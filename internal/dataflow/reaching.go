// Package dataflow implements the static analysis the paper proposes
// as future work for its Type III false positives (§6.3): "performing
// a static data flow analysis on the Dalvik bytecode of the
// applications to accurately match the dereference instructions to
// the corresponding pointer reads."
//
// For every instruction that dereferences an object register
// (instance field access, array access, virtual invoke receiver), a
// reaching-definitions analysis over the method's control-flow graph
// resolves the register to the unique pointer-load instruction that
// produced it — or reports that the object is freshly allocated
// (never a use) or statically ambiguous (fall back to the dynamic
// nearest-read heuristic).
//
// This package is strictly intra-method. The reaching-definitions
// core (Reach) is exported so the whole-program layer in
// internal/static can extend the same solution across method
// boundaries instead of re-deriving it.
package dataflow

import (
	"sort"

	"cafa/internal/cfg"
	"cafa/internal/dvm"
	"cafa/internal/trace"
)

// Key identifies an instruction site in a program.
type Key struct {
	Method trace.MethodID
	PC     trace.PC
}

// SourceKind classifies what a dereferenced register statically is.
type SourceKind uint8

// Source kinds.
const (
	// SrcUnknown: ambiguous or unanalyzable — use the dynamic
	// heuristic.
	SrcUnknown SourceKind = iota
	// SrcLoad: the register uniquely comes from the pointer load at
	// LoadPC (in the method named by LoadMethod; zero means the same
	// method as the dereference).
	SrcLoad
	// SrcFresh: the register holds a freshly allocated object (new /
	// new-array) or a null constant; its dereference can never read a
	// freed pointer, so it is not a use.
	SrcFresh
)

// Source is the resolution for one dereference site.
type Source struct {
	Kind   SourceKind
	LoadPC trace.PC
	// LoadMethod names the method containing the load when it differs
	// from the dereferencing method (interprocedural resolution,
	// internal/static). Zero means intra-method.
	LoadMethod trace.MethodID
}

// DerefSources analyzes every method of a program and returns the
// resolution for each dereference site.
func DerefSources(p *dvm.Program) map[Key]Source {
	out := make(map[Key]Source)
	for _, m := range p.Methods {
		r := Analyze(m)
		for pc := range m.Code {
			reg, ok := DerefReg(&m.Code[pc])
			if !ok || r.ins[pc] == nil {
				continue
			}
			out[Key{Method: m.ID, PC: trace.PC(pc)}] = r.Resolve(pc, reg)
		}
	}
	return out
}

// def sites: non-negative values are instruction indexes; parameters
// use -(1+regIndex).
type defSet map[int32]struct{}

func (d defSet) clone() defSet {
	c := make(defSet, len(d))
	for k := range d {
		c[k] = struct{}{}
	}
	return c
}

// state maps registers to their reaching definition sites.
type state []defSet

func (s state) clone() state {
	c := make(state, len(s))
	for i, d := range s {
		if d != nil {
			c[i] = d.clone()
		}
	}
	return c
}

// merge unions o into s, reporting change.
func (s state) merge(o state) bool {
	changed := false
	for i, d := range o {
		if d == nil {
			continue
		}
		if s[i] == nil {
			s[i] = d.clone()
			changed = true
			continue
		}
		for k := range d {
			if _, ok := s[i][k]; !ok {
				s[i][k] = struct{}{}
				changed = true
			}
		}
	}
	return changed
}

// DefinedReg returns the register an instruction writes, if any.
func DefinedReg(in *dvm.Instr) (dvm.Reg, bool) {
	if in.HasRes {
		return in.Res, true
	}
	switch in.Code {
	case dvm.CConstNull, dvm.CConstInt, dvm.CConstMethod, dvm.CNew, dvm.CMove,
		dvm.CIget, dvm.CIgetInt, dvm.CSget, dvm.CSgetInt,
		dvm.CNewArray, dvm.CAget, dvm.CAgetInt, dvm.CArrayLen:
		return in.A, true
	}
	return 0, false
}

// DerefReg returns the register an instruction dereferences, if any.
func DerefReg(in *dvm.Instr) (dvm.Reg, bool) {
	switch in.Code {
	case dvm.CIget, dvm.CIgetInt, dvm.CIput, dvm.CIputInt,
		dvm.CAget, dvm.CAgetInt, dvm.CAput, dvm.CAputInt, dvm.CArrayLen:
		return in.B, true
	case dvm.CInvokeVirtual:
		if len(in.Args) > 0 {
			return in.Args[0], true
		}
	}
	return 0, false
}

// Reach is the reaching-definitions solution for one method: per
// instruction, the set of definition sites that may reach it for each
// register.
type Reach struct {
	m   *dvm.Method
	ins []state
}

// Analyze runs reaching definitions over a method's CFG (including
// exceptional try-handler edges, which carry the pre-state of the
// faulting instruction).
func Analyze(m *dvm.Method) *Reach {
	n := len(m.Code)
	r := &Reach{m: m, ins: make([]state, n)}
	if n == 0 {
		return r
	}
	tryEdges := cfg.TryHandlerEdges(m)
	entry := make(state, m.NumRegs)
	for reg := 0; reg < m.NumParams; reg++ {
		entry[reg] = defSet{ParamDef(reg): struct{}{}}
	}
	r.ins[0] = entry
	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true
	propagate := func(s int, st state) {
		if r.ins[s] == nil {
			r.ins[s] = st.clone()
			if !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		} else if r.ins[s].merge(st) {
			if !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	for len(work) > 0 {
		pc := work[0]
		work = work[1:]
		inWork[pc] = false
		out := r.ins[pc].clone()
		if reg, ok := DefinedReg(&m.Code[pc]); ok {
			out[reg] = defSet{int32(pc): {}}
		}
		for _, s := range cfg.Successors(m, pc) {
			propagate(s, out)
		}
		// Exceptional edges: the faulting instruction's definitions do
		// not happen, so the handler sees the pre-state.
		for _, h := range tryEdges[pc] {
			propagate(h, r.ins[pc])
		}
	}
	return r
}

// Method returns the analyzed method.
func (r *Reach) Method() *dvm.Method { return r.m }

// ParamDef encodes a parameter register as a definition site: site
// values < 0 stand for "defined on entry as parameter reg".
func ParamDef(reg int) int32 { return int32(-(1 + reg)) }

// ParamIndex decodes a ParamDef site back to its register index.
func ParamIndex(site int32) int { return int(-site) - 1 }

// Defs returns the definition sites reaching (pc, reg), sorted.
// Non-negative sites are instruction indexes; negative sites are
// parameters (decode with ParamIndex). Nil means the pc is
// unreachable.
func (r *Reach) Defs(pc int, reg dvm.Reg) []int32 {
	if pc < 0 || pc >= len(r.ins) || r.ins[pc] == nil || int(reg) >= len(r.ins[pc]) {
		return nil
	}
	d := r.ins[pc][reg]
	if d == nil {
		return nil
	}
	out := make([]int32, 0, len(d))
	for k := range d {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UniqueDef returns the single definition site reaching (pc, reg), or
// false if there are zero or several.
func (r *Reach) UniqueDef(pc int, reg dvm.Reg) (int32, bool) {
	if pc < 0 || pc >= len(r.ins) || r.ins[pc] == nil || int(reg) >= len(r.ins[pc]) {
		return 0, false
	}
	d := r.ins[pc][reg]
	if len(d) != 1 {
		return 0, false
	}
	for k := range d {
		return k, true
	}
	return 0, false
}

// Reachable reports whether the instruction at pc is reachable from
// the method entry (including via exceptional edges).
func (r *Reach) Reachable(pc int) bool {
	return pc >= 0 && pc < len(r.ins) && r.ins[pc] != nil
}

// resolveDepthLimit bounds the move-chain chase in Resolve. Chains
// deeper than this fall back to SrcUnknown (i.e. the dynamic
// nearest-read heuristic) — a fallback the interprocedural pass in
// internal/static deliberately preserves: where this pass says
// SrcUnknown the detector behaves exactly as without static data.
const resolveDepthLimit = 8

// Resolve chases a register's unique definition through moves and
// classifies the dereference source.
func (r *Reach) Resolve(pc int, reg dvm.Reg) Source {
	return r.resolve(int32(pc), reg, 0)
}

func (r *Reach) resolve(pc int32, reg dvm.Reg, depth int) Source {
	if depth > resolveDepthLimit || pc < 0 || int(pc) >= len(r.ins) || r.ins[pc] == nil {
		return Source{Kind: SrcUnknown}
	}
	site, ok := r.UniqueDef(int(pc), reg)
	if !ok {
		return Source{Kind: SrcUnknown}
	}
	if site < 0 {
		return Source{Kind: SrcUnknown} // parameter: origin outside the method
	}
	in := &r.m.Code[site]
	switch in.Code {
	case dvm.CIget, dvm.CSget, dvm.CAget:
		return Source{Kind: SrcLoad, LoadPC: trace.PC(site)}
	case dvm.CNew, dvm.CNewArray, dvm.CConstNull:
		return Source{Kind: SrcFresh}
	case dvm.CMove:
		return r.resolve(site, in.B, depth+1)
	default:
		return Source{Kind: SrcUnknown}
	}
}

// Keys returns the analyzed sites sorted, for deterministic tests.
func Keys(srcs map[Key]Source) []Key {
	out := make([]Key, 0, len(srcs))
	for k := range srcs {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Method != out[j].Method {
			return out[i].Method < out[j].Method
		}
		return out[i].PC < out[j].PC
	})
	return out
}

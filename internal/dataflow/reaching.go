// Package dataflow implements the static analysis the paper proposes
// as future work for its Type III false positives (§6.3): "performing
// a static data flow analysis on the Dalvik bytecode of the
// applications to accurately match the dereference instructions to
// the corresponding pointer reads."
//
// For every instruction that dereferences an object register
// (instance field access, array access, virtual invoke receiver), a
// reaching-definitions analysis over the method's control-flow graph
// resolves the register to the unique pointer-load instruction that
// produced it — or reports that the object is freshly allocated
// (never a use) or statically ambiguous (fall back to the dynamic
// nearest-read heuristic).
package dataflow

import (
	"sort"

	"cafa/internal/dvm"
	"cafa/internal/trace"
)

// Key identifies an instruction site in a program.
type Key struct {
	Method trace.MethodID
	PC     trace.PC
}

// SourceKind classifies what a dereferenced register statically is.
type SourceKind uint8

// Source kinds.
const (
	// SrcUnknown: ambiguous or unanalyzable — use the dynamic
	// heuristic.
	SrcUnknown SourceKind = iota
	// SrcLoad: the register uniquely comes from the pointer load at
	// LoadPC in the same method.
	SrcLoad
	// SrcFresh: the register holds a freshly allocated object (new /
	// new-array) or a null constant; its dereference can never read a
	// freed pointer, so it is not a use.
	SrcFresh
)

// Source is the resolution for one dereference site.
type Source struct {
	Kind   SourceKind
	LoadPC trace.PC
}

// DerefSources analyzes every method of a program and returns the
// resolution for each dereference site.
func DerefSources(p *dvm.Program) map[Key]Source {
	out := make(map[Key]Source)
	for _, m := range p.Methods {
		for pc, src := range analyzeMethod(m) {
			out[Key{Method: m.ID, PC: pc}] = src
		}
	}
	return out
}

// def sites: non-negative values are instruction indexes; parameters
// use -(1+regIndex).
type defSet map[int32]struct{}

func (d defSet) clone() defSet {
	c := make(defSet, len(d))
	for k := range d {
		c[k] = struct{}{}
	}
	return c
}

// state maps registers to their reaching definition sites.
type state []defSet

func (s state) clone() state {
	c := make(state, len(s))
	for i, d := range s {
		if d != nil {
			c[i] = d.clone()
		}
	}
	return c
}

// merge unions o into s, reporting change.
func (s state) merge(o state) bool {
	changed := false
	for i, d := range o {
		if d == nil {
			continue
		}
		if s[i] == nil {
			s[i] = d.clone()
			changed = true
			continue
		}
		for k := range d {
			if _, ok := s[i][k]; !ok {
				s[i][k] = struct{}{}
				changed = true
			}
		}
	}
	return changed
}

// definedReg returns the register an instruction writes, if any.
func definedReg(in *dvm.Instr) (dvm.Reg, bool) {
	if in.HasRes {
		return in.Res, true
	}
	switch in.Code {
	case dvm.CConstNull, dvm.CConstInt, dvm.CConstMethod, dvm.CNew, dvm.CMove,
		dvm.CIget, dvm.CIgetInt, dvm.CSget, dvm.CSgetInt,
		dvm.CNewArray, dvm.CAget, dvm.CAgetInt, dvm.CArrayLen:
		return in.A, true
	}
	return 0, false
}

// derefReg returns the register an instruction dereferences, if any.
func derefReg(in *dvm.Instr) (dvm.Reg, bool) {
	switch in.Code {
	case dvm.CIget, dvm.CIgetInt, dvm.CIput, dvm.CIputInt,
		dvm.CAget, dvm.CAgetInt, dvm.CAput, dvm.CAputInt, dvm.CArrayLen:
		return in.B, true
	case dvm.CInvokeVirtual:
		if len(in.Args) > 0 {
			return in.Args[0], true
		}
	}
	return 0, false
}

// successors returns the normal CFG successor pcs of an instruction.
// Exceptional edges to try handlers are handled separately because
// they carry the instruction's PRE-state (a faulting instruction
// never defines its result).
func successors(m *dvm.Method, pc int) []int {
	in := &m.Code[pc]
	var out []int
	switch in.Code {
	case dvm.CGoto:
		out = append(out, in.Target)
	case dvm.CReturnVoid, dvm.CReturn, dvm.CThrow:
		// no normal successor
	case dvm.CIfEqz, dvm.CIfNez, dvm.CIfEq,
		dvm.CIfIntEq, dvm.CIfIntNe, dvm.CIfIntLt, dvm.CIfIntLe, dvm.CIfIntGt, dvm.CIfIntGe:
		out = append(out, pc+1, in.Target)
	default:
		out = append(out, pc+1)
	}
	kept := out[:0]
	for _, s := range out {
		if s >= 0 && s < len(m.Code) {
			kept = append(kept, s)
		}
	}
	return kept
}

// tryHandlerEdges computes exceptional edges: every instruction
// lexically inside a try/end-try pair may jump to the handler.
func tryHandlerEdges(m *dvm.Method) map[int][]int {
	edges := make(map[int][]int)
	type openTry struct {
		handler int
	}
	// Lexical scan with a stack; dynamic try scopes follow the
	// lexical structure in well-formed code.
	var stack []openTry
	for pc := range m.Code {
		in := &m.Code[pc]
		switch in.Code {
		case dvm.CTry:
			stack = append(stack, openTry{handler: in.Target})
		case dvm.CEndTry:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		default:
			for _, t := range stack {
				edges[pc] = append(edges[pc], t.handler)
			}
		}
	}
	return edges
}

// analyzeMethod runs reaching definitions and resolves each deref
// site.
func analyzeMethod(m *dvm.Method) map[trace.PC]Source {
	n := len(m.Code)
	if n == 0 {
		return nil
	}
	tryEdges := tryHandlerEdges(m)
	// in-states per pc.
	ins := make([]state, n)
	entry := make(state, m.NumRegs)
	for r := 0; r < m.NumParams; r++ {
		entry[r] = defSet{int32(-(1 + r)): struct{}{}}
	}
	ins[0] = entry
	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true
	propagate := func(s int, st state, work *[]int) {
		if ins[s] == nil {
			ins[s] = st.clone()
			if !inWork[s] {
				*work = append(*work, s)
				inWork[s] = true
			}
		} else if ins[s].merge(st) {
			if !inWork[s] {
				*work = append(*work, s)
				inWork[s] = true
			}
		}
	}
	for len(work) > 0 {
		pc := work[0]
		work = work[1:]
		inWork[pc] = false
		out := ins[pc].clone()
		if r, ok := definedReg(&m.Code[pc]); ok {
			out[r] = defSet{int32(pc): {}}
		}
		for _, s := range successors(m, pc) {
			propagate(s, out, &work)
		}
		// Exceptional edges: the faulting instruction's definitions do
		// not happen, so the handler sees the pre-state.
		for _, h := range tryEdges[pc] {
			propagate(h, ins[pc], &work)
		}
	}

	res := make(map[trace.PC]Source)
	for pc := range m.Code {
		r, ok := derefReg(&m.Code[pc])
		if !ok || ins[pc] == nil {
			continue
		}
		res[trace.PC(pc)] = resolve(m, ins, int32(pc), r, 0)
	}
	return res
}

// resolve chases a register's unique definition through moves.
func resolve(m *dvm.Method, ins []state, pc int32, r dvm.Reg, depth int) Source {
	if depth > 8 || pc < 0 || int(pc) >= len(ins) || ins[pc] == nil {
		return Source{Kind: SrcUnknown}
	}
	defs := ins[pc][r]
	if len(defs) != 1 {
		return Source{Kind: SrcUnknown}
	}
	var site int32
	for k := range defs {
		site = k
	}
	if site < 0 {
		return Source{Kind: SrcUnknown} // parameter: origin outside the method
	}
	in := &m.Code[site]
	switch in.Code {
	case dvm.CIget, dvm.CSget, dvm.CAget:
		return Source{Kind: SrcLoad, LoadPC: trace.PC(site)}
	case dvm.CNew, dvm.CNewArray, dvm.CConstNull:
		return Source{Kind: SrcFresh}
	case dvm.CMove:
		return resolve(m, ins, site, in.B, depth+1)
	default:
		return Source{Kind: SrcUnknown}
	}
}

// Keys returns the analyzed sites sorted, for deterministic tests.
func Keys(srcs map[Key]Source) []Key {
	out := make([]Key, 0, len(srcs))
	for k := range srcs {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Method != out[j].Method {
			return out[i].Method < out[j].Method
		}
		return out[i].PC < out[j].PC
	})
	return out
}

package hb

import (
	"testing"

	"cafa/internal/apps"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// fullRecompute recomputes g's closure from scratch over its final
// edge set — the seed algorithm the incremental closure replaced.
func fullRecompute(g *Graph) *bitmat {
	m := newBitmat(len(g.nodes))
	for i := len(g.nodes) - 1; i >= 0; i-- {
		m.set(i, i)
		for _, w := range g.adj[i] {
			m.orInto(i, int(w))
		}
	}
	return m
}

func assertClosureExact(t *testing.T, g *Graph) {
	t.Helper()
	want := fullRecompute(g)
	if len(want.bits) != len(g.reach.bits) {
		t.Fatalf("closure matrix size mismatch: %d vs %d words", len(g.reach.bits), len(want.bits))
	}
	for i := range want.bits {
		if want.bits[i] != g.reach.bits[i] {
			t.Fatalf("incremental closure diverges from full recompute at word %d (node %d)",
				i, i/want.words)
		}
	}
}

// TestIncrementalClosureMatchesFullRecompute drives multi-round
// fixpoints (queue-rule chains across loopers force several rounds)
// and asserts the incremental closure is bit-identical to a from-
// scratch recompute over the final edge set.
func TestIncrementalClosureMatchesFullRecompute(t *testing.T) {
	// Chained loopers: a driver sends k events to looper A (rule 1
	// orders them in round 1); each A event sends one event to looper
	// B, whose sends only become ordered once round 1's edges land —
	// rule 1 on B's queue fires in round 2, and so on down the chain.
	const chain = 4
	const k = 3
	b := newTB()
	driver := b.thread(1, "driver")
	loopers := make([]trace.TaskID, chain)
	queues := make([]trace.QueueID, chain)
	next := trace.TaskID(2)
	for i := range loopers {
		loopers[i] = b.thread(next, "L")
		queues[i] = trace.QueueID(i + 1)
		next++
	}
	events := make([][]trace.TaskID, chain)
	for i := range events {
		events[i] = make([]trace.TaskID, k)
		for j := range events[i] {
			events[i][j] = b.event(next, "ev", loopers[i], queues[i])
			next++
		}
	}
	b.add(trace.Entry{Task: driver, Op: trace.OpBegin})
	for _, lo := range loopers {
		b.add(trace.Entry{Task: lo, Op: trace.OpBegin})
	}
	for j := 0; j < k; j++ {
		b.add(trace.Entry{Task: driver, Op: trace.OpSend, Target: events[0][j], Queue: queues[0]})
	}
	b.add(trace.Entry{Task: driver, Op: trace.OpEnd})
	for i := 0; i < chain; i++ {
		for j := 0; j < k; j++ {
			ev := events[i][j]
			b.add(trace.Entry{Task: ev, Op: trace.OpBegin, Queue: queues[i]})
			if i+1 < chain {
				b.add(trace.Entry{Task: ev, Op: trace.OpSend, Target: events[i+1][j], Queue: queues[i+1]})
			}
			b.add(trace.Entry{Task: ev, Op: trace.OpEnd})
		}
	}
	g := b.build(t, Options{})
	if g.rounds < 3 {
		t.Fatalf("chain trace should need several fixpoint rounds, got %d", g.rounds)
	}
	assertClosureExact(t, g)

	conv := b.build(t, Options{Conventional: true})
	assertClosureExact(t, conv)
}

// TestIncrementalClosureOnAppTraces checks the same invariant on the
// realistic app-model traces.
func TestIncrementalClosureOnAppTraces(t *testing.T) {
	for _, name := range []string{"MyTracks", "Browser"} {
		spec, ok := apps.ByName(name)
		if !ok {
			t.Fatalf("no app %q", name)
		}
		col := trace.NewCollector()
		out, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Sys.Run(); err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{{}, {Conventional: true}} {
			g, err := Build(col.T, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertClosureExact(t, g)
		}
	}
}

// TestBuildFromScanSharedPrescan builds both model variants over one
// Prescan and checks they match independent Build calls.
func TestBuildFromScanSharedPrescan(t *testing.T) {
	spec, _ := apps.ByName("ZXing")
	col := trace.NewCollector()
	out, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Sys.Run(); err != nil {
		t.Fatal(err)
	}
	ps, err := Scan(col.T)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, {Conventional: true}} {
		shared, err := BuildFromScan(ps, opts)
		if err != nil {
			t.Fatal(err)
		}
		solo, err := Build(col.T, opts)
		if err != nil {
			t.Fatal(err)
		}
		if shared.Stats() != solo.Stats() {
			t.Fatalf("opts %+v: shared-prescan stats %+v != solo stats %+v", opts, shared.Stats(), solo.Stats())
		}
		if len(shared.reach.bits) != len(solo.reach.bits) {
			t.Fatal("closure size mismatch")
		}
		for i := range solo.reach.bits {
			if shared.reach.bits[i] != solo.reach.bits[i] {
				t.Fatal("shared-prescan closure differs from solo build")
			}
		}
	}
}

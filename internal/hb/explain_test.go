package hb

import (
	"strings"
	"testing"

	"cafa/internal/trace"
)

func TestExplainForkChain(t *testing.T) {
	b := newTB()
	b.thread(1, "main")
	b.thread(2, "child")
	b.add(trace.Entry{Task: 1, Op: trace.OpBegin})
	w1 := b.add(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 1, Op: trace.OpFork, Target: 2})
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	w2 := b.add(trace.Entry{Task: 2, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	g := b.build(t, Options{})

	path := g.Explain(w1, w2)
	if len(path) < 3 {
		t.Fatalf("path = %v, want at least write → fork → begin → write", path)
	}
	if path[0] != w1 || path[len(path)-1] != w2 {
		t.Errorf("path endpoints = %d..%d, want %d..%d", path[0], path[len(path)-1], w1, w2)
	}
	// The path must pass through the fork.
	sawFork := false
	for _, idx := range path {
		if b.tr.Entries[idx].Op == trace.OpFork {
			sawFork = true
		}
	}
	if !sawFork {
		t.Errorf("path %v does not pass through the fork", path)
	}
	out := g.FormatPath(path)
	if !strings.Contains(out, "fork") || !strings.Contains(out, "≺") {
		t.Errorf("FormatPath = %q", out)
	}
	// Unordered pair: no path.
	if p := g.Explain(w2, w1); p != nil {
		t.Errorf("reverse path = %v, want nil", p)
	}
	if g.FormatPath(nil) == "" {
		t.Error("FormatPath(nil) should explain unordered")
	}
}

func TestExplainSameTask(t *testing.T) {
	b := newTB()
	b.thread(1, "t")
	b.add(trace.Entry{Task: 1, Op: trace.OpBegin})
	a := b.add(trace.Entry{Task: 1, Op: trace.OpRead, Var: 1})
	c := b.add(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	g := b.build(t, Options{})
	path := g.Explain(a, c)
	if len(path) != 2 || path[0] != a || path[1] != c {
		t.Errorf("same-task path = %v", path)
	}
}

func TestExplainThroughDerivedEdge(t *testing.T) {
	// Figure 4b-style: the derived end(A) → begin(B) edge must be
	// explainable.
	b := loopTrace()
	b.thread(2, "T")
	b.event(3, "A", 1, 1)
	b.event(4, "B", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 3, Queue: 1, Delay: 0})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 4, Queue: 1, Delay: 0})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin, Queue: 1})
	wA := b.add(trace.Entry{Task: 3, Op: trace.OpWrite, Var: 9})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 4, Op: trace.OpBegin, Queue: 1})
	wB := b.add(trace.Entry{Task: 4, Op: trace.OpWrite, Var: 9})
	b.add(trace.Entry{Task: 4, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	g := b.build(t, Options{})
	path := g.Explain(wA, wB)
	if path == nil {
		t.Fatal("rule-1-ordered writes must be explainable")
	}
	if path[0] != wA || path[len(path)-1] != wB {
		t.Errorf("path endpoints wrong: %v", path)
	}
}

func TestCommonAncestorForkSiblings(t *testing.T) {
	b := newTB()
	b.thread(1, "main")
	b.thread(2, "childA")
	b.thread(3, "childB")
	b.add(trace.Entry{Task: 1, Op: trace.OpBegin})
	fork1 := b.add(trace.Entry{Task: 1, Op: trace.OpFork, Target: 2})
	fork2 := b.add(trace.Entry{Task: 1, Op: trace.OpFork, Target: 3})
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	w1 := b.add(trace.Entry{Task: 2, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin})
	w2 := b.add(trace.Entry{Task: 3, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	g := b.build(t, Options{})

	if !g.Concurrent(w1, w2) {
		t.Fatal("sibling writes should be concurrent")
	}
	ca := g.CommonAncestor(w1, w2)
	if ca < 0 {
		t.Fatal("fork siblings must have a common ancestor")
	}
	if !g.Ordered(ca, w1) || !g.Ordered(ca, w2) {
		t.Fatalf("ancestor %d not ordered before both writes", ca)
	}
	// The nearest ancestor is the second fork (it precedes childB's
	// begin and, via program order through fork1, childA's write).
	if ca != fork2 && ca != fork1 {
		t.Errorf("ancestor = %d, want one of the forks (%d, %d)", ca, fork1, fork2)
	}
	// Both derivations from the ancestor must exist.
	if g.Explain(ca, w1) == nil || g.Explain(ca, w2) == nil {
		t.Error("no derivation from common ancestor to a racy operation")
	}
}

func TestCommonAncestorUnrelated(t *testing.T) {
	b := newTB()
	b.thread(1, "a")
	b.thread(2, "b")
	b.add(trace.Entry{Task: 1, Op: trace.OpBegin})
	w1 := b.add(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	w2 := b.add(trace.Entry{Task: 2, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	g := b.build(t, Options{})
	if ca := g.CommonAncestor(w1, w2); ca != -1 {
		t.Errorf("unrelated threads: ancestor = %d, want -1", ca)
	}
}

// Package hb implements the paper's causality model for event-driven
// Android executions (§3): it builds the happens-before graph of a
// trace and answers ordering queries between arbitrary operations.
//
// The model's rules:
//
//   - program order within a task (but NOT between events of the same
//     looper thread, and NOT between unlock → lock);
//   - fork-join and signal-and-wait;
//   - event listener: register(t,l) ≺ perform(e,l);
//   - send: send(t,e,d) ≺ begin(e), sendAtFront(t,e) ≺ begin(e);
//   - external input: external events are conservatively chained;
//   - IPC: rpcCall ≺ rpcHandle, rpcReply ≺ rpcRet, msgSend ≺ msgRecv;
//   - atomicity: if begin(e1) ≺ end(e2) for events of one looper,
//     then end(e1) ≺ begin(e2);
//   - event queue rules 1–4 over ordered sends to the same queue.
//
// The last two rule groups depend on already-derived reachability, so
// Build iterates rule application and transitive closure to a
// fixpoint.
//
// Because every rule only ever concludes orderings that actually held
// in the traced execution, the happens-before relation is consistent
// with trace order; the graph is a DAG whose topological order is the
// entry sequence. The closure is computed over "reduced nodes" (task
// begins/ends plus cross-edge endpoints); arbitrary operations resolve
// through their nearest reduced anchors.
package hb

import (
	"fmt"
	"sort"

	"cafa/internal/trace"
)

// Options configures graph construction.
type Options struct {
	// Conventional builds the thread-based baseline model of §6.3
	// instead: a total order over all events of each looper thread
	// (what a conventional race detector assumes). Lock edges are not
	// added in either mode, matching the paper's comparator.
	Conventional bool
	// MaxRounds bounds fixpoint iteration (safety; 0 = default 64).
	MaxRounds int
}

// node is one reduced node of the graph.
type node struct {
	seq  int // entry index in the trace
	task trace.TaskID
}

type sendInfo struct {
	node  int32 // reduced node id of the send entry
	event trace.TaskID
	delay int64
	front bool
}

// Graph is the happens-before graph of one trace.
type Graph struct {
	tr    *trace.Trace
	opts  Options
	nodes []node
	// nodeAt maps entry seq -> node id (+1; 0 = none).
	nodeAt []int32
	// taskNodes holds node ids per task, ascending by seq.
	taskNodes map[trace.TaskID][]int32
	adj       [][]int32
	reach     *bitmat

	begins map[trace.TaskID]int32 // node id of begin(t)
	ends   map[trace.TaskID]int32 // node id of end(t)
	// queueSends lists sends per queue in trace order.
	queueSends map[trace.QueueID][]sendInfo
	// looperEvents lists events per looper in begin order.
	looperEvents map[trace.TaskID][]trace.TaskID

	rounds    int
	baseEdges int
	ruleEdges int
}

// Build constructs the happens-before graph for a trace.
func Build(tr *trace.Trace, opts Options) (*Graph, error) {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 64
	}
	g := &Graph{
		tr:           tr,
		opts:         opts,
		nodeAt:       make([]int32, len(tr.Entries)),
		taskNodes:    make(map[trace.TaskID][]int32),
		begins:       make(map[trace.TaskID]int32),
		ends:         make(map[trace.TaskID]int32),
		queueSends:   make(map[trace.QueueID][]sendInfo),
		looperEvents: make(map[trace.TaskID][]trace.TaskID),
	}
	if err := g.collectNodes(); err != nil {
		return nil, err
	}
	g.buildBaseEdges()
	g.reach = newBitmat(len(g.nodes))
	for round := 0; ; round++ {
		if round >= opts.MaxRounds {
			return nil, fmt.Errorf("hb: fixpoint did not converge in %d rounds", opts.MaxRounds)
		}
		g.rounds = round + 1
		g.closure()
		if !g.applyDerivedRules() {
			break
		}
	}
	return g, nil
}

// isReducedOp reports whether an operation is a cross-edge endpoint.
func isReducedOp(op trace.Op) bool {
	switch op {
	case trace.OpBegin, trace.OpEnd, trace.OpFork, trace.OpJoin,
		trace.OpWait, trace.OpNotify, trace.OpSend, trace.OpSendAtFront,
		trace.OpRegister, trace.OpPerform,
		trace.OpRPCCall, trace.OpRPCHandle, trace.OpRPCReply, trace.OpRPCRet,
		trace.OpMsgSend, trace.OpMsgRecv:
		return true
	default:
		return false
	}
}

func (g *Graph) collectNodes() error {
	tr := g.tr
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if !isReducedOp(e.Op) {
			continue
		}
		id := int32(len(g.nodes))
		g.nodes = append(g.nodes, node{seq: i, task: e.Task})
		g.nodeAt[i] = id + 1
		g.taskNodes[e.Task] = append(g.taskNodes[e.Task], id)
		switch e.Op {
		case trace.OpBegin:
			if _, dup := g.begins[e.Task]; dup {
				return fmt.Errorf("hb: duplicate begin for t%d", e.Task)
			}
			g.begins[e.Task] = id
			if tr.IsEventTask(e.Task) {
				lo := tr.LooperOf(e.Task)
				g.looperEvents[lo] = append(g.looperEvents[lo], e.Task)
			}
		case trace.OpEnd:
			g.ends[e.Task] = id
		case trace.OpSend, trace.OpSendAtFront:
			g.queueSends[e.Queue] = append(g.queueSends[e.Queue], sendInfo{
				node: id, event: e.Target, delay: e.Delay, front: e.Op == trace.OpSendAtFront,
			})
		}
	}
	g.adj = make([][]int32, len(g.nodes))
	return nil
}

// addEdge inserts u → v (u, v are node ids). Edges always point
// forward in trace order; violations indicate a malformed trace and
// are dropped.
func (g *Graph) addEdge(u, v int32) bool {
	if u < 0 || v < 0 || u == v {
		return false
	}
	if g.nodes[u].seq >= g.nodes[v].seq {
		return false
	}
	g.adj[u] = append(g.adj[u], v)
	return true
}

func (g *Graph) buildBaseEdges() {
	tr := g.tr
	// Program-order chains within each task.
	for _, ns := range g.taskNodes {
		for i := 1; i < len(ns); i++ {
			if g.addEdge(ns[i-1], ns[i]) {
				g.baseEdges++
			}
		}
	}

	type monPair struct {
		notifies []int32
		waits    []int32
	}
	monitors := make(map[trace.MonitorID]*monPair)
	listeners := make(map[trace.ListenerID]*monPair) // registers / performs
	type txnNodes struct {
		call, handle, reply, ret int32
	}
	txns := make(map[trace.TxnID]*txnNodes)
	msgs := make(map[trace.TxnID]*txnNodes) // call=send, handle=recv
	var externals []int32                   // begin nodes of external events, in order

	getTxn := func(m map[trace.TxnID]*txnNodes, id trace.TxnID) *txnNodes {
		tn := m[id]
		if tn == nil {
			tn = &txnNodes{call: -1, handle: -1, reply: -1, ret: -1}
			m[id] = tn
		}
		return tn
	}

	for i := range tr.Entries {
		e := &tr.Entries[i]
		id := g.nodeAt[i] - 1
		if id < 0 {
			continue
		}
		switch e.Op {
		case trace.OpFork:
			if b, ok := g.begins[e.Target]; ok && g.addEdge(id, b) {
				g.baseEdges++
			}
		case trace.OpJoin:
			if en, ok := g.ends[e.Target]; ok && g.addEdge(en, id) {
				g.baseEdges++
			}
		case trace.OpNotify:
			mp := monitors[e.Monitor]
			if mp == nil {
				mp = &monPair{}
				monitors[e.Monitor] = mp
			}
			mp.notifies = append(mp.notifies, id)
		case trace.OpWait:
			mp := monitors[e.Monitor]
			if mp == nil {
				mp = &monPair{}
				monitors[e.Monitor] = mp
			}
			mp.waits = append(mp.waits, id)
		case trace.OpSend, trace.OpSendAtFront:
			if b, ok := g.begins[e.Target]; ok && g.addEdge(id, b) {
				g.baseEdges++
			}
		case trace.OpRegister:
			lp := listeners[e.Listener]
			if lp == nil {
				lp = &monPair{}
				listeners[e.Listener] = lp
			}
			lp.notifies = append(lp.notifies, id)
		case trace.OpPerform:
			lp := listeners[e.Listener]
			if lp == nil {
				lp = &monPair{}
				listeners[e.Listener] = lp
			}
			lp.waits = append(lp.waits, id)
		case trace.OpRPCCall:
			getTxn(txns, e.Txn).call = id
		case trace.OpRPCHandle:
			getTxn(txns, e.Txn).handle = id
		case trace.OpRPCReply:
			getTxn(txns, e.Txn).reply = id
		case trace.OpRPCRet:
			getTxn(txns, e.Txn).ret = id
		case trace.OpMsgSend:
			getTxn(msgs, e.Txn).call = id
		case trace.OpMsgRecv:
			getTxn(msgs, e.Txn).handle = id
		case trace.OpBegin:
			if e.External {
				externals = append(externals, id)
			}
		}
	}

	// Signal-and-wait: notify(m) ≺ every later wait(m).
	for _, mp := range monitors {
		for _, n := range mp.notifies {
			for _, w := range mp.waits {
				if g.nodes[n].seq < g.nodes[w].seq && g.addEdge(n, w) {
					g.baseEdges++
				}
			}
		}
	}
	// Event listener: register(l) ≺ every later perform(l).
	for _, lp := range listeners {
		for _, r := range lp.notifies {
			for _, pf := range lp.waits {
				if g.nodes[r].seq < g.nodes[pf].seq && g.addEdge(r, pf) {
					g.baseEdges++
				}
			}
		}
	}
	// IPC transactions.
	for _, tn := range txns {
		if tn.call >= 0 && tn.handle >= 0 && g.addEdge(tn.call, tn.handle) {
			g.baseEdges++
		}
		if tn.reply >= 0 && tn.ret >= 0 && g.addEdge(tn.reply, tn.ret) {
			g.baseEdges++
		}
	}
	for _, tn := range msgs {
		if tn.call >= 0 && tn.handle >= 0 && g.addEdge(tn.call, tn.handle) {
			g.baseEdges++
		}
	}
	// External input rule: end(e_i) ≺ begin(e_{i+1}) over external
	// events in begin order (transitivity chains the rest).
	sort.Slice(externals, func(i, j int) bool {
		return g.nodes[externals[i]].seq < g.nodes[externals[j]].seq
	})
	for i := 1; i < len(externals); i++ {
		prevTask := g.nodes[externals[i-1]].task
		if en, ok := g.ends[prevTask]; ok && g.addEdge(en, externals[i]) {
			g.baseEdges++
		}
	}
	// Conventional baseline: total event order per looper.
	if g.opts.Conventional {
		for _, evs := range g.looperEvents {
			for i := 1; i < len(evs); i++ {
				en, ok1 := g.ends[evs[i-1]]
				b, ok2 := g.begins[evs[i]]
				if ok1 && ok2 && g.addEdge(en, b) {
					g.baseEdges++
				}
			}
		}
	}
}

// closure recomputes the transitive-closure matrix. Nodes are already
// in topological (trace) order, so one reverse sweep suffices.
func (g *Graph) closure() {
	g.reach.clear()
	for i := len(g.nodes) - 1; i >= 0; i-- {
		g.reach.set(i, i)
		for _, w := range g.adj[i] {
			g.reach.orInto(i, int(w))
		}
	}
}

// reachable reports node-level reachability (reflexive).
func (g *Graph) reachable(u, v int32) bool {
	return g.reach.get(int(u), int(v))
}

// applyDerivedRules applies the atomicity rule and the four event
// queue rules, returning whether any new edge was added. The pair
// loops are quadratic in events-per-looper and sends-per-queue, so
// the begin/end node ids are resolved into flat arrays up front —
// each pair test is then one or two bit probes.
func (g *Graph) applyDerivedRules() bool {
	added := false
	// Atomicity rule: events of one looper, in execution order.
	for _, evs := range g.looperEvents {
		type be struct{ b, e int32 }
		nodes := make([]be, len(evs))
		for i, ev := range evs {
			nodes[i] = be{b: -1, e: -1}
			if b, ok := g.begins[ev]; ok {
				nodes[i].b = b
			}
			if e, ok := g.ends[ev]; ok {
				nodes[i].e = e
			}
		}
		for i := 0; i < len(nodes); i++ {
			bi, ei := nodes[i].b, nodes[i].e
			if bi < 0 || ei < 0 {
				continue
			}
			reachRow := g.reach.row(int(bi))
			for j := i + 1; j < len(nodes); j++ {
				ej, bj := nodes[j].e, nodes[j].b
				if ej < 0 || bj < 0 {
					continue
				}
				if reachRow[ej/64]&(1<<(uint(ej)%64)) != 0 && !g.reachable(ei, bj) {
					if g.addEdge(ei, bj) {
						g.ruleEdges++
						added = true
					}
				}
			}
		}
	}
	// Event queue rules over ordered sends to the same queue.
	for _, sends := range g.queueSends {
		begins := make([]int32, len(sends))
		for i, si := range sends {
			begins[i] = -1
			if b, ok := g.begins[si.event]; ok {
				begins[i] = b
			}
		}
		for ai := 0; ai < len(sends); ai++ {
			a := sends[ai]
			reachRow := g.reach.row(int(a.node))
			for bi := ai + 1; bi < len(sends); bi++ {
				b := sends[bi]
				if a.event == b.event {
					continue
				}
				if reachRow[b.node/64]&(1<<(uint(b.node)%64)) == 0 {
					continue
				}
				// a's send happens-before b's send.
				switch {
				case !a.front && !b.front:
					// Rule 1: delays must satisfy d1 <= d2.
					if a.delay <= b.delay {
						g.orderEvents(a.event, b.event, &added)
					}
				case a.front && !b.front:
					// Rule 3: sendAtFront(e1) ≺ send(e2) ⇒ e1 ≺ e2.
					g.orderEvents(a.event, b.event, &added)
				case !a.front && b.front:
					// Rule 2: additionally needs sendAtFront(e2) ≺ begin(e1).
					if be := begins[ai]; be >= 0 && g.reachable(b.node, be) {
						g.orderEvents(b.event, a.event, &added)
					}
				case a.front && b.front:
					// Rule 4: same condition as rule 2.
					if be := begins[ai]; be >= 0 && g.reachable(b.node, be) {
						g.orderEvents(b.event, a.event, &added)
					}
				}
			}
		}
	}
	return added
}

// orderEvents adds end(e1) → begin(e2) unless already derivable.
func (g *Graph) orderEvents(e1, e2 trace.TaskID, added *bool) {
	en, ok1 := g.ends[e1]
	b, ok2 := g.begins[e2]
	if !ok1 || !ok2 {
		return
	}
	if g.reachable(en, b) {
		return
	}
	if g.addEdge(en, b) {
		g.ruleEdges++
		*added = true
	}
}

// Stats summarizes graph construction.
type Stats struct {
	Entries   int
	Nodes     int
	BaseEdges int
	RuleEdges int
	Rounds    int
}

// Stats returns construction statistics.
func (g *Graph) Stats() Stats {
	return Stats{
		Entries:   len(g.tr.Entries),
		Nodes:     len(g.nodes),
		BaseEdges: g.baseEdges,
		RuleEdges: g.ruleEdges,
		Rounds:    g.rounds,
	}
}

// Package hb implements the paper's causality model for event-driven
// Android executions (§3): it builds the happens-before graph of a
// trace and answers ordering queries between arbitrary operations.
//
// The model's rules:
//
//   - program order within a task (but NOT between events of the same
//     looper thread, and NOT between unlock → lock);
//   - fork-join and signal-and-wait;
//   - event listener: register(t,l) ≺ perform(e,l);
//   - send: send(t,e,d) ≺ begin(e), sendAtFront(t,e) ≺ begin(e);
//   - external input: external events are conservatively chained;
//   - IPC: rpcCall ≺ rpcHandle, rpcReply ≺ rpcRet, msgSend ≺ msgRecv;
//   - atomicity: if begin(e1) ≺ end(e2) for events of one looper,
//     then end(e1) ≺ begin(e2);
//   - event queue rules 1–4 over ordered sends to the same queue.
//
// The last two rule groups depend on already-derived reachability, so
// Build iterates rule application and transitive closure to a
// fixpoint. The closure is computed in full once; subsequent rounds
// propagate only the reachability contributed by edges added since the
// previous round (closure over a DAG is monotone in its edge set, so
// the incremental result is bit-identical to a recompute).
//
// Because every rule only ever concludes orderings that actually held
// in the traced execution, the happens-before relation is consistent
// with trace order; the graph is a DAG whose topological order is the
// entry sequence. The closure is computed over "reduced nodes" (task
// begins/ends plus cross-edge endpoints); arbitrary operations resolve
// through their nearest reduced anchors.
//
// The single trace scan (node collection plus model-independent base
// edges) is factored into Scan/Prescan so the event-driven and
// conventional variants of one trace share it; BuildFromScan builds a
// graph over a shared Prescan and is safe to call concurrently.
package hb

import (
	"fmt"
	"slices"

	"cafa/internal/obs"
	"cafa/internal/trace"
)

// Graph-construction observability (internal/obs). Counts accumulate
// once per build (from the already-maintained per-graph tallies), and
// the worklist histogram observes the pending-edge batch consumed by
// each incremental-closure round — the shape of the fixpoint tail.
var (
	cBuilds           = obs.NewCounter("hb_builds_total")
	cBaseEdges        = obs.NewCounter("hb_base_edges_total")
	cRuleEdges        = obs.NewCounter("hb_rule_edges_total")
	cFixpointRounds   = obs.NewCounter("hb_fixpoint_rounds_total")
	hWorklistLen      = obs.NewHistogram("hb_closure_worklist_len")
	hClosureRoundsPer = obs.NewHistogram("hb_rounds_per_build")
)

// Options configures graph construction.
type Options struct {
	// Conventional builds the thread-based baseline model of §6.3
	// instead: a total order over all events of each looper thread
	// (what a conventional race detector assumes). Lock edges are not
	// added in either mode, matching the paper's comparator.
	Conventional bool
	// MaxRounds bounds fixpoint iteration (safety; 0 = default 64).
	MaxRounds int
}

// node is one reduced node of the graph.
type node struct {
	seq  int // entry index in the trace
	task trace.TaskID
}

type sendInfo struct {
	node  int32 // reduced node id of the send entry
	event trace.TaskID
	delay int64
	front bool
}

// Graph is the happens-before graph of one trace.
type Graph struct {
	tr    *trace.Trace
	opts  Options
	nodes []node
	// taskNodes holds node ids per task, ascending by seq.
	taskNodes map[trace.TaskID][]int32
	adj       [][]int32
	reach     *bitmat

	begins map[trace.TaskID]int32 // node id of begin(t)
	ends   map[trace.TaskID]int32 // node id of end(t)
	// queueSends lists sends per queue in trace order.
	queueSends map[trace.QueueID][]sendInfo
	// looperEvents lists events per looper in begin order.
	looperEvents map[trace.TaskID][]trace.TaskID

	// pending are edges added since the last closure; the next
	// (incremental) closure round consumes them. changed is that
	// round's per-node dirty scratch, reused across rounds.
	pending []edge
	changed []bool

	rounds    int
	baseEdges int
	ruleEdges int
}

// Build constructs the happens-before graph for a trace.
func Build(tr *trace.Trace, opts Options) (*Graph, error) {
	ps, err := Scan(tr)
	if err != nil {
		return nil, err
	}
	return BuildFromScan(ps, opts)
}

// BuildFromScan constructs a graph over a shared Prescan. Multiple
// calls over one Prescan (e.g. the event-driven and conventional
// models, built concurrently) are safe: the Prescan is read-only.
func BuildFromScan(ps *Prescan, opts Options) (*Graph, error) {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 64
	}
	g := &Graph{
		tr:           ps.tr,
		opts:         opts,
		nodes:        ps.nodes,
		taskNodes:    ps.taskNodes,
		begins:       ps.begins,
		ends:         ps.ends,
		queueSends:   ps.queueSends,
		looperEvents: ps.looperEvents,
	}
	g.adj = make([][]int32, len(g.nodes))
	for _, e := range ps.baseEdges {
		g.adj[e.u] = append(g.adj[e.u], e.v)
		g.baseEdges++
	}
	// Conventional baseline: total event order per looper.
	if opts.Conventional {
		for _, evs := range g.looperEvents {
			for i := 1; i < len(evs); i++ {
				en, ok1 := g.ends[evs[i-1]]
				b, ok2 := g.begins[evs[i]]
				if ok1 && ok2 && g.addEdge(en, b) {
					g.baseEdges++
				}
			}
		}
	}
	g.reach = newBitmat(len(g.nodes))
	for round := 0; ; round++ {
		if round >= opts.MaxRounds {
			return nil, fmt.Errorf("hb: fixpoint did not converge in %d rounds", opts.MaxRounds)
		}
		g.rounds = round + 1
		if round == 0 {
			g.closure()
			g.pending = g.pending[:0]
		} else {
			g.incrementalClosure()
		}
		if !g.applyDerivedRules() {
			break
		}
	}
	cBuilds.Inc()
	cBaseEdges.Add(int64(g.baseEdges))
	cRuleEdges.Add(int64(g.ruleEdges))
	cFixpointRounds.Add(int64(g.rounds))
	hClosureRoundsPer.Observe(int64(g.rounds))
	return g, nil
}

// isReducedOp reports whether an operation is a cross-edge endpoint.
func isReducedOp(op trace.Op) bool {
	switch op {
	case trace.OpBegin, trace.OpEnd, trace.OpFork, trace.OpJoin,
		trace.OpWait, trace.OpNotify, trace.OpSend, trace.OpSendAtFront,
		trace.OpRegister, trace.OpPerform,
		trace.OpRPCCall, trace.OpRPCHandle, trace.OpRPCReply, trace.OpRPCRet,
		trace.OpMsgSend, trace.OpMsgRecv:
		return true
	default:
		return false
	}
}

// addEdge inserts u → v (u, v are node ids). Edges always point
// forward in trace order; violations indicate a malformed trace and
// are dropped.
func (g *Graph) addEdge(u, v int32) bool {
	if u < 0 || v < 0 || u == v {
		return false
	}
	if g.nodes[u].seq >= g.nodes[v].seq {
		return false
	}
	g.adj[u] = append(g.adj[u], v)
	g.pending = append(g.pending, edge{u, v})
	return true
}

// closure computes the transitive-closure matrix in full. Nodes are
// already in topological (trace) order, so one reverse sweep suffices.
func (g *Graph) closure() {
	g.reach.clear()
	for i := len(g.nodes) - 1; i >= 0; i-- {
		g.reach.set(i, i)
		for _, w := range g.adj[i] {
			g.reach.orInto(i, int(w))
		}
	}
}

// incrementalClosure folds the pending edges into the closure matrix
// without recomputing it. For a new edge u → v only u and nodes that
// reach u can gain reachability, so one reverse sweep from the highest
// pending source suffices: a row is re-ORed only when it has a pending
// edge or a successor whose row just changed. Node ids ascend in trace
// (= topological) order, so successors are always finalized first, and
// because closure is monotone in the edge set the result is
// bit-identical to a full recompute.
func (g *Graph) incrementalClosure() {
	if len(g.pending) == 0 {
		return
	}
	hWorklistLen.Observe(int64(len(g.pending)))
	// Bucket the pending edges by descending source so the reverse
	// sweep consumes them in order — no per-node lookup structure.
	slices.SortFunc(g.pending, func(a, b edge) int { return int(b.u) - int(a.u) })
	maxSrc := int(g.pending[0].u)
	if cap(g.changed) < maxSrc+1 {
		g.changed = make([]bool, maxSrc+1)
	}
	changed := g.changed[:maxSrc+1]
	clear(changed)
	k := 0
	for i := maxSrc; i >= 0; i-- {
		ch := false
		for ; k < len(g.pending) && int(g.pending[k].u) == i; k++ {
			if g.reach.orIntoChanged(i, int(g.pending[k].v)) {
				ch = true
			}
		}
		for _, w := range g.adj[i] {
			if int(w) <= maxSrc && changed[w] && g.reach.orIntoChanged(i, int(w)) {
				ch = true
			}
		}
		changed[i] = ch
	}
	g.pending = g.pending[:0]
}

// reachable reports node-level reachability (reflexive).
func (g *Graph) reachable(u, v int32) bool {
	return g.reach.get(int(u), int(v))
}

// applyDerivedRules applies the atomicity rule and the four event
// queue rules, returning whether any new edge was added. The pair
// loops are quadratic in events-per-looper and sends-per-queue, so
// the begin/end node ids are resolved into flat arrays up front —
// each pair test is then one or two bit probes.
func (g *Graph) applyDerivedRules() bool {
	added := false
	// Atomicity rule: events of one looper, in execution order.
	for _, evs := range g.looperEvents {
		type be struct{ b, e int32 }
		nodes := make([]be, len(evs))
		for i, ev := range evs {
			nodes[i] = be{b: -1, e: -1}
			if b, ok := g.begins[ev]; ok {
				nodes[i].b = b
			}
			if e, ok := g.ends[ev]; ok {
				nodes[i].e = e
			}
		}
		for i := 0; i < len(nodes); i++ {
			bi, ei := nodes[i].b, nodes[i].e
			if bi < 0 || ei < 0 {
				continue
			}
			reachRow := g.reach.row(int(bi))
			for j := i + 1; j < len(nodes); j++ {
				ej, bj := nodes[j].e, nodes[j].b
				if ej < 0 || bj < 0 {
					continue
				}
				if reachRow[ej/64]&(1<<(uint(ej)%64)) != 0 && !g.reachable(ei, bj) {
					if g.addEdge(ei, bj) {
						g.ruleEdges++
						added = true
					}
				}
			}
		}
	}
	// Event queue rules over ordered sends to the same queue. The
	// begin/end node ids of each send's event are resolved once per
	// queue; the pair loop runs every round and must stay map-free.
	for _, sends := range g.queueSends {
		begins := make([]int32, len(sends))
		ends := make([]int32, len(sends))
		for i, si := range sends {
			begins[i], ends[i] = -1, -1
			if b, ok := g.begins[si.event]; ok {
				begins[i] = b
			}
			if e, ok := g.ends[si.event]; ok {
				ends[i] = e
			}
		}
		for ai := 0; ai < len(sends); ai++ {
			a := sends[ai]
			reachRow := g.reach.row(int(a.node))
			for bi := ai + 1; bi < len(sends); bi++ {
				b := sends[bi]
				if a.event == b.event {
					continue
				}
				if reachRow[b.node/64]&(1<<(uint(b.node)%64)) == 0 {
					continue
				}
				// a's send happens-before b's send.
				switch {
				case !a.front && !b.front:
					// Rule 1: delays must satisfy d1 <= d2.
					if a.delay <= b.delay {
						g.orderNodes(ends[ai], begins[bi], &added)
					}
				case a.front && !b.front:
					// Rule 3: sendAtFront(e1) ≺ send(e2) ⇒ e1 ≺ e2.
					g.orderNodes(ends[ai], begins[bi], &added)
				case !a.front && b.front:
					// Rule 2: additionally needs sendAtFront(e2) ≺ begin(e1).
					if be := begins[ai]; be >= 0 && g.reachable(b.node, be) {
						g.orderNodes(ends[bi], begins[ai], &added)
					}
				case a.front && b.front:
					// Rule 4: same condition as rule 2.
					if be := begins[ai]; be >= 0 && g.reachable(b.node, be) {
						g.orderNodes(ends[bi], begins[ai], &added)
					}
				}
			}
		}
	}
	return added
}

// orderNodes adds end(e1) → begin(e2) by pre-resolved node ids (-1 =
// the task has no such node) unless already derivable.
func (g *Graph) orderNodes(en, b int32, added *bool) {
	if en < 0 || b < 0 {
		return
	}
	if g.reachable(en, b) {
		return
	}
	if g.addEdge(en, b) {
		g.ruleEdges++
		*added = true
	}
}

// Stats summarizes graph construction.
type Stats struct {
	Entries   int
	Nodes     int
	BaseEdges int
	RuleEdges int
	Rounds    int
}

// Stats returns construction statistics.
func (g *Graph) Stats() Stats {
	return Stats{
		Entries:   g.tr.Len(),
		Nodes:     len(g.nodes),
		BaseEdges: g.baseEdges,
		RuleEdges: g.ruleEdges,
		Rounds:    g.rounds,
	}
}

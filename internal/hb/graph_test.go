package hb

import (
	"testing"

	"cafa/internal/trace"
)

// tb builds hand-written traces for rule tests.
type tb struct {
	tr  *trace.Trace
	seq int64
}

func newTB() *tb { return &tb{tr: trace.New()} }

func (b *tb) thread(id trace.TaskID, name string) trace.TaskID {
	b.tr.Tasks[id] = trace.TaskInfo{ID: id, Kind: trace.KindThread, Name: name}
	return id
}

func (b *tb) event(id trace.TaskID, name string, looper trace.TaskID, q trace.QueueID) trace.TaskID {
	b.tr.Tasks[id] = trace.TaskInfo{ID: id, Kind: trace.KindEvent, Name: name, Looper: looper, Queue: q}
	return id
}

func (b *tb) add(e trace.Entry) int {
	e.Time = b.seq
	b.seq++
	return b.tr.Append(e)
}

func (b *tb) build(t *testing.T, opts Options) *Graph {
	t.Helper()
	if err := b.tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	g, err := Build(b.tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// loopTrace sets up a looper (task 1) and returns the builder.
func loopTrace() *tb {
	b := newTB()
	b.thread(1, "looper")
	b.add(trace.Entry{Task: 1, Op: trace.OpBegin})
	return b
}

func TestProgramOrderWithinTask(t *testing.T) {
	b := newTB()
	b.thread(1, "T")
	b.add(trace.Entry{Task: 1, Op: trace.OpBegin})
	r1 := b.add(trace.Entry{Task: 1, Op: trace.OpRead, Var: 1})
	r2 := b.add(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	g := b.build(t, Options{})
	if !g.Ordered(r1, r2) || g.Ordered(r2, r1) {
		t.Error("program order within a task must hold")
	}
	if g.Concurrent(r1, r2) {
		t.Error("same-task ops are never concurrent")
	}
	if g.Ordered(r1, r1) {
		t.Error("an op is not ordered before itself")
	}
}

func TestEventsOnSameLooperUnorderedByDefault(t *testing.T) {
	// Two events on one looper with unrelated sends from two threads:
	// the model must NOT impose an order (the paper's core departure
	// from thread-based detectors)… except via queue rule 1 if the
	// sends are ordered. Here the sends are concurrent.
	b := loopTrace()
	b.thread(2, "S1")
	b.thread(3, "S2")
	b.event(4, "evA", 1, 1)
	b.event(5, "evB", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 4, Queue: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpSend, Target: 5, Queue: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 4, Op: trace.OpBegin, Queue: 1})
	wA := b.add(trace.Entry{Task: 4, Op: trace.OpWrite, Var: 9})
	b.add(trace.Entry{Task: 4, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 5, Op: trace.OpBegin, Queue: 1})
	wB := b.add(trace.Entry{Task: 5, Op: trace.OpWrite, Var: 9})
	b.add(trace.Entry{Task: 5, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})

	g := b.build(t, Options{})
	if !g.TasksConcurrent(4, 5) {
		t.Error("events with unordered sends must be concurrent")
	}
	if !g.Concurrent(wA, wB) {
		t.Error("writes in concurrent events must be concurrent")
	}
	// The conventional baseline DOES order them (total event order).
	gc := b.build(t, Options{Conventional: true})
	if gc.TasksConcurrent(4, 5) {
		t.Error("conventional model must totally order looper events")
	}
	if gc.Concurrent(wA, wB) {
		t.Error("conventional model must order the writes")
	}
}

func TestFigure4aAtomicityRule(t *testing.T) {
	// Event A forks thread T; T registers listener L; event B performs
	// L. fork(A,T) ≺ perform(B,L) ⇒ (atomicity) end(A) ≺ begin(B).
	b := loopTrace()
	b.thread(2, "S1")
	b.thread(3, "S2")
	b.event(4, "A", 1, 1)
	b.thread(5, "T")
	b.event(6, "B", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 4, Queue: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 3, Op: trace.OpSend, Target: 6, Queue: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 4, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 4, Op: trace.OpFork, Target: 5})
	b.add(trace.Entry{Task: 4, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 5, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 5, Op: trace.OpRegister, Listener: 9})
	b.add(trace.Entry{Task: 5, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 6, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 6, Op: trace.OpPerform, Listener: 9})
	b.add(trace.Entry{Task: 6, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})

	g := b.build(t, Options{})
	if !g.TaskOrdered(4, 6) {
		t.Error("atomicity rule must derive A ≺ B")
	}
	if g.TaskOrdered(6, 4) {
		t.Error("B must not precede A")
	}
	if g.Stats().RuleEdges == 0 {
		t.Error("expected derived rule edges")
	}
}

func TestFigure4bFIFOSameDelay(t *testing.T) {
	// One thread sends A then B with equal delays: rule 1 orders A ≺ B.
	b := loopTrace()
	b.thread(2, "T")
	b.event(3, "A", 1, 1)
	b.event(4, "B", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 3, Queue: 1, Delay: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 4, Queue: 1, Delay: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 4, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 4, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})

	g := b.build(t, Options{})
	if !g.TaskOrdered(3, 4) {
		t.Error("rule 1 must order A ≺ B for equal delays")
	}
}

func TestFigure4cDelayBreaksOrder(t *testing.T) {
	// A sent with delay 5, B sent later with delay 0: B may run first,
	// so no order can be derived (and in this trace B does run first).
	b := loopTrace()
	b.thread(2, "T")
	b.event(3, "A", 1, 1)
	b.event(4, "B", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 3, Queue: 1, Delay: 5})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 4, Queue: 1, Delay: 0})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 4, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 4, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})

	g := b.build(t, Options{})
	if !g.TasksConcurrent(3, 4) {
		t.Error("rule 1 must not fire when the earlier send has a larger delay")
	}
}

func TestFigure4dSendAtFrontFromSameLooperEvent(t *testing.T) {
	// Event C (on the same looper) performs send(A) then
	// sendAtFront(B). Atomicity gives end(C) ≺ begin(A); then rule 2
	// derives B ≺ A.
	b := loopTrace()
	b.event(2, "C", 1, 1)
	b.event(3, "A", 1, 1)
	b.event(4, "B", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin, Queue: 1, External: true})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 3, Queue: 1, Delay: 0})
	b.add(trace.Entry{Task: 2, Op: trace.OpSendAtFront, Target: 4, Queue: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 4, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 4, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})

	g := b.build(t, Options{})
	if !g.TaskOrdered(4, 3) {
		t.Error("rule 2 must derive B ≺ A when sendAtFront ≺ begin(A) is guaranteed")
	}
	if g.TaskOrdered(3, 4) {
		t.Error("A must not precede B")
	}
	if g.Stats().Rounds < 2 {
		t.Errorf("figure 4d needs a multi-round fixpoint, got %d rounds", g.Stats().Rounds)
	}
}

func TestFigure4eSendAtFrontFromThreadNoOrder(t *testing.T) {
	// A thread (not the looper) sends A then sendAtFront B: B's
	// enqueue is not guaranteed to precede begin(A), so no order. In
	// this trace B happens to run first.
	b := loopTrace()
	b.thread(2, "T")
	b.event(3, "A", 1, 1)
	b.event(4, "B", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 3, Queue: 1, Delay: 0})
	b.add(trace.Entry{Task: 2, Op: trace.OpSendAtFront, Target: 4, Queue: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 4, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 4, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})

	g := b.build(t, Options{})
	if !g.TasksConcurrent(3, 4) {
		t.Error("figure 4e: no order must be derived")
	}
}

func TestFigure4fSendAtFrontAfterABegan(t *testing.T) {
	// Same as 4e but A executes before B ever enters the queue.
	b := loopTrace()
	b.thread(2, "T")
	b.event(3, "A", 1, 1)
	b.event(4, "B", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 3, Queue: 1, Delay: 0})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 2, Op: trace.OpSendAtFront, Target: 4, Queue: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 4, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 4, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})

	g := b.build(t, Options{})
	if !g.TasksConcurrent(3, 4) {
		t.Error("figure 4f: no order must be derived")
	}
}

func TestRule3FrontThenSend(t *testing.T) {
	// sendAtFront(A) ≺ send(B) in one thread ⇒ A ≺ B always.
	b := loopTrace()
	b.thread(2, "T")
	b.event(3, "A", 1, 1)
	b.event(4, "B", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpSendAtFront, Target: 3, Queue: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 4, Queue: 1, Delay: 0})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 4, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 4, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})

	g := b.build(t, Options{})
	if !g.TaskOrdered(3, 4) {
		t.Error("rule 3 must order sendAtFront(A) before later send(B)")
	}
}

func TestRule4FrontFrontFromLooperEvent(t *testing.T) {
	// Event C: sendAtFront(A) then sendAtFront(B). Fronts are LIFO, so
	// B runs first; rule 4 derives B ≺ A.
	b := loopTrace()
	b.event(2, "C", 1, 1)
	b.event(3, "A", 1, 1)
	b.event(4, "B", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin, Queue: 1, External: true})
	b.add(trace.Entry{Task: 2, Op: trace.OpSendAtFront, Target: 3, Queue: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpSendAtFront, Target: 4, Queue: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 4, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 4, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})

	g := b.build(t, Options{})
	if !g.TaskOrdered(4, 3) {
		t.Error("rule 4 must derive B ≺ A for LIFO fronts from a looper event")
	}
}

func TestForkJoinRule(t *testing.T) {
	b := newTB()
	b.thread(1, "main")
	b.thread(2, "child")
	b.add(trace.Entry{Task: 1, Op: trace.OpBegin})
	w1 := b.add(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 1, Op: trace.OpFork, Target: 2})
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	w2 := b.add(trace.Entry{Task: 2, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpJoin, Target: 2})
	w3 := b.add(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})

	g := b.build(t, Options{})
	if !g.Ordered(w1, w2) {
		t.Error("write before fork must precede child's write")
	}
	if !g.Ordered(w2, w3) {
		t.Error("child's write must precede write after join")
	}
}

func TestNoForkNoOrder(t *testing.T) {
	b := newTB()
	b.thread(1, "a")
	b.thread(2, "b")
	b.add(trace.Entry{Task: 1, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	w1 := b.add(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1})
	w2 := b.add(trace.Entry{Task: 2, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	g := b.build(t, Options{})
	if !g.Concurrent(w1, w2) {
		t.Error("unsynchronized threads must be concurrent")
	}
}

func TestSignalWaitRule(t *testing.T) {
	b := newTB()
	b.thread(1, "notifier")
	b.thread(2, "waiter")
	b.add(trace.Entry{Task: 1, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	w1 := b.add(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 1, Op: trace.OpNotify, Monitor: 5})
	b.add(trace.Entry{Task: 2, Op: trace.OpWait, Monitor: 5})
	w2 := b.add(trace.Entry{Task: 2, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	g := b.build(t, Options{})
	if !g.Ordered(w1, w2) {
		t.Error("notify must order the waiter's continuation")
	}
}

func TestUnlockLockNoOrder(t *testing.T) {
	// The model deliberately does not order unlock → lock (§3.1).
	b := newTB()
	b.thread(1, "a")
	b.thread(2, "b")
	b.add(trace.Entry{Task: 1, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 1, Op: trace.OpLock, Lock: 9})
	w1 := b.add(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 1, Op: trace.OpUnlock, Lock: 9})
	b.add(trace.Entry{Task: 2, Op: trace.OpLock, Lock: 9})
	w2 := b.add(trace.Entry{Task: 2, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpUnlock, Lock: 9})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	g := b.build(t, Options{})
	if !g.Concurrent(w1, w2) {
		t.Error("critical sections must not be happens-before ordered by locks")
	}
}

func TestExternalInputRule(t *testing.T) {
	b := loopTrace()
	b.event(2, "touch1", 1, 1)
	b.event(3, "touch2", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin, Queue: 1, External: true})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin, Queue: 1, External: true})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	g := b.build(t, Options{})
	if !g.TaskOrdered(2, 3) {
		t.Error("external events must be conservatively chained")
	}
}

func TestRPCAndMsgRules(t *testing.T) {
	b := newTB()
	b.thread(1, "client")
	b.thread(2, "binder")
	b.thread(3, "pipeRecv")
	b.add(trace.Entry{Task: 1, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin})
	w1 := b.add(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 1, Op: trace.OpRPCCall, Txn: 7})
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpRPCHandle, Txn: 7})
	w2 := b.add(trace.Entry{Task: 2, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpMsgSend, Txn: 8})
	b.add(trace.Entry{Task: 2, Op: trace.OpRPCReply, Txn: 7})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpRPCRet, Txn: 7})
	w3 := b.add(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpMsgRecv, Txn: 8})
	w4 := b.add(trace.Entry{Task: 3, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	g := b.build(t, Options{})
	if !g.Ordered(w1, w2) {
		t.Error("rpc call must order client work before handler")
	}
	if !g.Ordered(w2, w3) {
		t.Error("rpc reply must order handler before client continuation")
	}
	if !g.Ordered(w2, w4) {
		t.Error("pipe message must order sender before receiver")
	}
	if g.Ordered(w3, w4) || g.Ordered(w4, w3) {
		t.Error("client continuation and pipe receiver are unrelated")
	}
}

func TestListenerRule(t *testing.T) {
	b := loopTrace()
	b.thread(2, "T")
	b.event(3, "ev", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	w1 := b.add(trace.Entry{Task: 2, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpRegister, Listener: 4})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 3, Queue: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpPerform, Listener: 4})
	w2 := b.add(trace.Entry{Task: 3, Op: trace.OpWrite, Var: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	g := b.build(t, Options{})
	if !g.Ordered(w1, w2) {
		t.Error("register must precede perform")
	}
}

func TestOrderedConsistentWithTraceOrder(t *testing.T) {
	// Ordered(i, j) must be false whenever i > j, for any pair.
	b := loopTrace()
	b.thread(2, "T")
	b.event(3, "ev", 1, 1)
	b.add(trace.Entry{Task: 2, Op: trace.OpBegin})
	b.add(trace.Entry{Task: 2, Op: trace.OpSend, Target: 3, Queue: 1})
	b.add(trace.Entry{Task: 2, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 3, Op: trace.OpBegin, Queue: 1})
	b.add(trace.Entry{Task: 3, Op: trace.OpEnd})
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	g := b.build(t, Options{})
	n := len(b.tr.Entries)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if g.Ordered(i, j) {
				t.Fatalf("Ordered(%d, %d) true against trace order", i, j)
			}
		}
	}
}

func TestStats(t *testing.T) {
	b := loopTrace()
	b.add(trace.Entry{Task: 1, Op: trace.OpEnd})
	g := b.build(t, Options{})
	st := g.Stats()
	if st.Entries != 2 || st.Nodes != 2 {
		t.Errorf("stats = %+v", st)
	}
	if g.Trace() != b.tr {
		t.Error("Trace() identity")
	}
}

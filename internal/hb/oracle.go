package hb

import (
	"sort"

	"cafa/internal/trace"
)

// anchorAfter returns the first reduced node of task t at or after
// entry seq, or -1.
func (g *Graph) anchorAfter(t trace.TaskID, seq int) int32 {
	ns := g.taskNodes[t]
	i := sort.Search(len(ns), func(i int) bool { return g.nodes[ns[i]].seq >= seq })
	if i == len(ns) {
		return -1
	}
	return ns[i]
}

// anchorBefore returns the last reduced node of task t at or before
// entry seq, or -1.
func (g *Graph) anchorBefore(t trace.TaskID, seq int) int32 {
	ns := g.taskNodes[t]
	i := sort.Search(len(ns), func(i int) bool { return g.nodes[ns[i]].seq > seq })
	if i == 0 {
		return -1
	}
	return ns[i-1]
}

// Ordered reports whether entry i happens-before entry j according to
// the model. Within one task it is program order; across tasks it is
// graph reachability through the nearest reduced anchors.
func (g *Graph) Ordered(i, j int) bool {
	return g.OrderedAt(i, g.tr.Entries[i].Task, j, g.tr.Entries[j].Task)
}

// OrderedAt is Ordered with the entries' tasks supplied by the caller
// — the form streaming analyses use, since a streamed trace has no
// materialized Entries to look tasks up in.
func (g *Graph) OrderedAt(i int, ti trace.TaskID, j int, tj trace.TaskID) bool {
	if i == j {
		return false
	}
	if ti == tj {
		return i < j
	}
	if i > j {
		// Happens-before is consistent with trace order.
		return false
	}
	u := g.anchorAfter(ti, i)
	v := g.anchorBefore(tj, j)
	if u < 0 || v < 0 {
		return false
	}
	return g.reachable(u, v)
}

// Concurrent reports whether two entries are unordered in both
// directions (and belong to different tasks).
func (g *Graph) Concurrent(i, j int) bool {
	return g.ConcurrentAt(i, g.tr.Entries[i].Task, j, g.tr.Entries[j].Task)
}

// ConcurrentAt is Concurrent with caller-supplied tasks (see
// OrderedAt).
func (g *Graph) ConcurrentAt(i int, ti trace.TaskID, j int, tj trace.TaskID) bool {
	if i == j || ti == tj {
		return false
	}
	return !g.OrderedAt(i, ti, j, tj) && !g.OrderedAt(j, tj, i, ti)
}

// TaskOrdered reports end(t1) ≺ begin(t2): the whole of task t1
// happens-before the whole of task t2.
func (g *Graph) TaskOrdered(t1, t2 trace.TaskID) bool {
	en, ok1 := g.ends[t1]
	b, ok2 := g.begins[t2]
	if !ok1 || !ok2 {
		return false
	}
	return g.reachable(en, b)
}

// TasksConcurrent reports that neither task is wholly ordered before
// the other.
func (g *Graph) TasksConcurrent(t1, t2 trace.TaskID) bool {
	if t1 == t2 {
		return false
	}
	return !g.TaskOrdered(t1, t2) && !g.TaskOrdered(t2, t1)
}

// Trace returns the underlying trace.
func (g *Graph) Trace() *trace.Trace { return g.tr }

package hb

import (
	"fmt"
	"sort"

	"cafa/internal/trace"
)

// edge is one directed graph edge between reduced nodes.
type edge struct {
	u, v int32
}

// Prescan holds the trace-scan products shared by every graph variant
// built over one trace: the reduced node set, the per-task/per-queue
// indexes, and the base edges common to the event-driven and
// conventional models. A Prescan is immutable after Scan returns, so
// concurrent BuildFromScan calls may share one.
type Prescan struct {
	tr    *trace.Trace
	nodes []node
	// nodeAt maps entry seq -> node id (+1; 0 = none).
	nodeAt []int32
	// taskNodes holds node ids per task, ascending by seq.
	taskNodes map[trace.TaskID][]int32

	begins map[trace.TaskID]int32 // node id of begin(t)
	ends   map[trace.TaskID]int32 // node id of end(t)
	// queueSends lists sends per queue in trace order.
	queueSends map[trace.QueueID][]sendInfo
	// looperEvents lists events per looper in begin order.
	looperEvents map[trace.TaskID][]trace.TaskID

	// baseEdges are the model-independent base edges (every rule group
	// except the conventional looper total order, which only the
	// baseline model adds).
	baseEdges []edge
}

// Scan performs the shared single pass over the trace: reduced-node
// collection plus the model-independent base edges. Both causality
// model variants build from the same Prescan without rescanning the
// trace.
func Scan(tr *trace.Trace) (*Prescan, error) {
	ps := &Prescan{
		tr:           tr,
		nodeAt:       make([]int32, len(tr.Entries)),
		taskNodes:    make(map[trace.TaskID][]int32),
		begins:       make(map[trace.TaskID]int32),
		ends:         make(map[trace.TaskID]int32),
		queueSends:   make(map[trace.QueueID][]sendInfo),
		looperEvents: make(map[trace.TaskID][]trace.TaskID),
	}
	if err := ps.collectNodes(); err != nil {
		return nil, err
	}
	ps.collectBaseEdges()
	return ps, nil
}

// Trace returns the scanned trace.
func (ps *Prescan) Trace() *trace.Trace { return ps.tr }

func (ps *Prescan) collectNodes() error {
	tr := ps.tr
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if !isReducedOp(e.Op) {
			continue
		}
		id := int32(len(ps.nodes))
		ps.nodes = append(ps.nodes, node{seq: i, task: e.Task})
		ps.nodeAt[i] = id + 1
		ps.taskNodes[e.Task] = append(ps.taskNodes[e.Task], id)
		switch e.Op {
		case trace.OpBegin:
			if _, dup := ps.begins[e.Task]; dup {
				return fmt.Errorf("hb: duplicate begin for t%d", e.Task)
			}
			ps.begins[e.Task] = id
			if tr.IsEventTask(e.Task) {
				lo := tr.LooperOf(e.Task)
				ps.looperEvents[lo] = append(ps.looperEvents[lo], e.Task)
			}
		case trace.OpEnd:
			ps.ends[e.Task] = id
		case trace.OpSend, trace.OpSendAtFront:
			ps.queueSends[e.Queue] = append(ps.queueSends[e.Queue], sendInfo{
				node: id, event: e.Target, delay: e.Delay, front: e.Op == trace.OpSendAtFront,
			})
		}
	}
	return nil
}

// addBase records u → v in the shared base-edge list. Edges always
// point forward in trace order; violations indicate a malformed trace
// and are dropped (same policy as Graph.addEdge).
func (ps *Prescan) addBase(u, v int32) bool {
	if u < 0 || v < 0 || u == v {
		return false
	}
	if ps.nodes[u].seq >= ps.nodes[v].seq {
		return false
	}
	ps.baseEdges = append(ps.baseEdges, edge{u, v})
	return true
}

func (ps *Prescan) collectBaseEdges() {
	tr := ps.tr
	// Program-order chains within each task.
	for _, ns := range ps.taskNodes {
		for i := 1; i < len(ns); i++ {
			ps.addBase(ns[i-1], ns[i])
		}
	}

	type monPair struct {
		notifies []int32
		waits    []int32
	}
	monitors := make(map[trace.MonitorID]*monPair)
	listeners := make(map[trace.ListenerID]*monPair) // registers / performs
	type txnNodes struct {
		call, handle, reply, ret int32
	}
	txns := make(map[trace.TxnID]*txnNodes)
	msgs := make(map[trace.TxnID]*txnNodes) // call=send, handle=recv
	var externals []int32                   // begin nodes of external events, in order

	getTxn := func(m map[trace.TxnID]*txnNodes, id trace.TxnID) *txnNodes {
		tn := m[id]
		if tn == nil {
			tn = &txnNodes{call: -1, handle: -1, reply: -1, ret: -1}
			m[id] = tn
		}
		return tn
	}

	for i := range tr.Entries {
		e := &tr.Entries[i]
		id := ps.nodeAt[i] - 1
		if id < 0 {
			continue
		}
		switch e.Op {
		case trace.OpFork:
			if b, ok := ps.begins[e.Target]; ok {
				ps.addBase(id, b)
			}
		case trace.OpJoin:
			if en, ok := ps.ends[e.Target]; ok {
				ps.addBase(en, id)
			}
		case trace.OpNotify:
			mp := monitors[e.Monitor]
			if mp == nil {
				mp = &monPair{}
				monitors[e.Monitor] = mp
			}
			mp.notifies = append(mp.notifies, id)
		case trace.OpWait:
			mp := monitors[e.Monitor]
			if mp == nil {
				mp = &monPair{}
				monitors[e.Monitor] = mp
			}
			mp.waits = append(mp.waits, id)
		case trace.OpSend, trace.OpSendAtFront:
			if b, ok := ps.begins[e.Target]; ok {
				ps.addBase(id, b)
			}
		case trace.OpRegister:
			lp := listeners[e.Listener]
			if lp == nil {
				lp = &monPair{}
				listeners[e.Listener] = lp
			}
			lp.notifies = append(lp.notifies, id)
		case trace.OpPerform:
			lp := listeners[e.Listener]
			if lp == nil {
				lp = &monPair{}
				listeners[e.Listener] = lp
			}
			lp.waits = append(lp.waits, id)
		case trace.OpRPCCall:
			getTxn(txns, e.Txn).call = id
		case trace.OpRPCHandle:
			getTxn(txns, e.Txn).handle = id
		case trace.OpRPCReply:
			getTxn(txns, e.Txn).reply = id
		case trace.OpRPCRet:
			getTxn(txns, e.Txn).ret = id
		case trace.OpMsgSend:
			getTxn(msgs, e.Txn).call = id
		case trace.OpMsgRecv:
			getTxn(msgs, e.Txn).handle = id
		case trace.OpBegin:
			if e.External {
				externals = append(externals, id)
			}
		}
	}

	// Signal-and-wait: notify(m) ≺ every later wait(m).
	for _, mp := range monitors {
		for _, n := range mp.notifies {
			for _, w := range mp.waits {
				if ps.nodes[n].seq < ps.nodes[w].seq {
					ps.addBase(n, w)
				}
			}
		}
	}
	// Event listener: register(l) ≺ every later perform(l).
	for _, lp := range listeners {
		for _, r := range lp.notifies {
			for _, pf := range lp.waits {
				if ps.nodes[r].seq < ps.nodes[pf].seq {
					ps.addBase(r, pf)
				}
			}
		}
	}
	// IPC transactions.
	for _, tn := range txns {
		if tn.call >= 0 && tn.handle >= 0 {
			ps.addBase(tn.call, tn.handle)
		}
		if tn.reply >= 0 && tn.ret >= 0 {
			ps.addBase(tn.reply, tn.ret)
		}
	}
	for _, tn := range msgs {
		if tn.call >= 0 && tn.handle >= 0 {
			ps.addBase(tn.call, tn.handle)
		}
	}
	// External input rule: end(e_i) ≺ begin(e_{i+1}) over external
	// events in begin order (transitivity chains the rest).
	sort.Slice(externals, func(i, j int) bool {
		return ps.nodes[externals[i]].seq < ps.nodes[externals[j]].seq
	})
	for i := 1; i < len(externals); i++ {
		prevTask := ps.nodes[externals[i-1]].task
		if en, ok := ps.ends[prevTask]; ok {
			ps.addBase(en, externals[i])
		}
	}
}

package hb

import (
	"fmt"
	"sort"

	"cafa/internal/trace"
)

// edge is one directed graph edge between reduced nodes.
type edge struct {
	u, v int32
}

// redOp is the compact record retained per reduced node so the
// base-edge pass can run after a streaming scan without the entries.
// arg holds the one cross-edge operand the node's op uses (target
// task, monitor, listener, or transaction id).
type redOp struct {
	op  trace.Op
	arg uint64
	ext bool // OpBegin only: external event
}

// Prescan holds the trace-scan products shared by every graph variant
// built over one trace: the reduced node set, the per-task/per-queue
// indexes, and the base edges common to the event-driven and
// conventional models. A Prescan is immutable after Scan (or
// Scanner.Finish) returns, so concurrent BuildFromScan calls may
// share one. Its memory is O(reduced nodes), never O(trace): a
// streaming scan retains only the redOp records, not the entries.
type Prescan struct {
	tr     *trace.Trace
	nodes  []node
	redOps []redOp
	// taskNodes holds node ids per task, ascending by seq.
	taskNodes map[trace.TaskID][]int32

	begins map[trace.TaskID]int32 // node id of begin(t)
	ends   map[trace.TaskID]int32 // node id of end(t)
	// queueSends lists sends per queue in trace order.
	queueSends map[trace.QueueID][]sendInfo
	// looperEvents lists events per looper in begin order.
	looperEvents map[trace.TaskID][]trace.TaskID

	// baseEdges are the model-independent base edges (every rule group
	// except the conventional looper total order, which only the
	// baseline model adds).
	baseEdges []edge
}

// Scan performs the shared single pass over the trace: reduced-node
// collection plus the model-independent base edges. Both causality
// model variants build from the same Prescan without rescanning the
// trace.
func Scan(tr *trace.Trace) (*Prescan, error) {
	sc := NewScanner(tr)
	for i := range tr.Entries {
		if err := sc.Consume(&tr.Entries[i]); err != nil {
			return nil, err
		}
	}
	return sc.Finish(), nil
}

// Trace returns the scanned trace.
func (ps *Prescan) Trace() *trace.Trace { return ps.tr }

// Scanner is the streaming form of Scan: entries are consumed one at
// a time and may be discarded by the caller immediately after each
// Consume. Finish derives the base edges from the retained redOp
// records and seals the Prescan. The header trace only supplies the
// task table; it need not hold entries.
type Scanner struct {
	ps *Prescan
	i  int
}

// NewScanner returns a Scanner over a header trace (task and name
// tables; Entries may be empty).
func NewScanner(header *trace.Trace) *Scanner {
	return &Scanner{ps: &Prescan{
		tr:           header,
		taskNodes:    make(map[trace.TaskID][]int32),
		begins:       make(map[trace.TaskID]int32),
		ends:         make(map[trace.TaskID]int32),
		queueSends:   make(map[trace.QueueID][]sendInfo),
		looperEvents: make(map[trace.TaskID][]trace.TaskID),
	}}
}

// Consume advances the scan by one entry. The entry is not retained.
func (s *Scanner) Consume(e *trace.Entry) error {
	i := s.i
	s.i++
	ps := s.ps
	if !isReducedOp(e.Op) {
		return nil
	}
	id := int32(len(ps.nodes))
	ps.nodes = append(ps.nodes, node{seq: i, task: e.Task})
	ps.taskNodes[e.Task] = append(ps.taskNodes[e.Task], id)
	ro := redOp{op: e.Op}
	switch e.Op {
	case trace.OpBegin:
		if _, dup := ps.begins[e.Task]; dup {
			return fmt.Errorf("hb: duplicate begin for t%d", e.Task)
		}
		ps.begins[e.Task] = id
		if ps.tr.IsEventTask(e.Task) {
			lo := ps.tr.LooperOf(e.Task)
			ps.looperEvents[lo] = append(ps.looperEvents[lo], e.Task)
		}
		ro.ext = e.External
	case trace.OpEnd:
		ps.ends[e.Task] = id
	case trace.OpSend, trace.OpSendAtFront:
		ps.queueSends[e.Queue] = append(ps.queueSends[e.Queue], sendInfo{
			node: id, event: e.Target, delay: e.Delay, front: e.Op == trace.OpSendAtFront,
		})
		ro.arg = uint64(e.Target)
	case trace.OpFork, trace.OpJoin:
		ro.arg = uint64(e.Target)
	case trace.OpNotify, trace.OpWait:
		ro.arg = uint64(e.Monitor)
	case trace.OpRegister, trace.OpPerform:
		ro.arg = uint64(e.Listener)
	case trace.OpRPCCall, trace.OpRPCHandle, trace.OpRPCReply, trace.OpRPCRet,
		trace.OpMsgSend, trace.OpMsgRecv:
		ro.arg = uint64(e.Txn)
	}
	ps.redOps = append(ps.redOps, ro)
	return nil
}

// Entries returns how many entries have been consumed.
func (s *Scanner) Entries() int { return s.i }

// Finish derives the base edges and returns the sealed Prescan.
func (s *Scanner) Finish() *Prescan {
	s.ps.collectBaseEdges()
	return s.ps
}

// addBase records u → v in the shared base-edge list. Edges always
// point forward in trace order; violations indicate a malformed trace
// and are dropped (same policy as Graph.addEdge).
func (ps *Prescan) addBase(u, v int32) bool {
	if u < 0 || v < 0 || u == v {
		return false
	}
	if ps.nodes[u].seq >= ps.nodes[v].seq {
		return false
	}
	ps.baseEdges = append(ps.baseEdges, edge{u, v})
	return true
}

// collectBaseEdges runs over the retained redOp records (node id
// order is entry order restricted to reduced ops, so this visits the
// same operations in the same order as a full second pass over the
// trace would).
func (ps *Prescan) collectBaseEdges() {
	// Program-order chains within each task.
	for _, ns := range ps.taskNodes {
		for i := 1; i < len(ns); i++ {
			ps.addBase(ns[i-1], ns[i])
		}
	}

	type monPair struct {
		notifies []int32
		waits    []int32
	}
	monitors := make(map[trace.MonitorID]*monPair)
	listeners := make(map[trace.ListenerID]*monPair) // registers / performs
	type txnNodes struct {
		call, handle, reply, ret int32
	}
	txns := make(map[trace.TxnID]*txnNodes)
	msgs := make(map[trace.TxnID]*txnNodes) // call=send, handle=recv
	var externals []int32                   // begin nodes of external events, in order

	getTxn := func(m map[trace.TxnID]*txnNodes, id trace.TxnID) *txnNodes {
		tn := m[id]
		if tn == nil {
			tn = &txnNodes{call: -1, handle: -1, reply: -1, ret: -1}
			m[id] = tn
		}
		return tn
	}

	for id32 := range ps.redOps {
		id := int32(id32)
		ro := &ps.redOps[id32]
		switch ro.op {
		case trace.OpFork:
			if b, ok := ps.begins[trace.TaskID(ro.arg)]; ok {
				ps.addBase(id, b)
			}
		case trace.OpJoin:
			if en, ok := ps.ends[trace.TaskID(ro.arg)]; ok {
				ps.addBase(en, id)
			}
		case trace.OpNotify:
			mp := monitors[trace.MonitorID(ro.arg)]
			if mp == nil {
				mp = &monPair{}
				monitors[trace.MonitorID(ro.arg)] = mp
			}
			mp.notifies = append(mp.notifies, id)
		case trace.OpWait:
			mp := monitors[trace.MonitorID(ro.arg)]
			if mp == nil {
				mp = &monPair{}
				monitors[trace.MonitorID(ro.arg)] = mp
			}
			mp.waits = append(mp.waits, id)
		case trace.OpSend, trace.OpSendAtFront:
			if b, ok := ps.begins[trace.TaskID(ro.arg)]; ok {
				ps.addBase(id, b)
			}
		case trace.OpRegister:
			lp := listeners[trace.ListenerID(ro.arg)]
			if lp == nil {
				lp = &monPair{}
				listeners[trace.ListenerID(ro.arg)] = lp
			}
			lp.notifies = append(lp.notifies, id)
		case trace.OpPerform:
			lp := listeners[trace.ListenerID(ro.arg)]
			if lp == nil {
				lp = &monPair{}
				listeners[trace.ListenerID(ro.arg)] = lp
			}
			lp.waits = append(lp.waits, id)
		case trace.OpRPCCall:
			getTxn(txns, trace.TxnID(ro.arg)).call = id
		case trace.OpRPCHandle:
			getTxn(txns, trace.TxnID(ro.arg)).handle = id
		case trace.OpRPCReply:
			getTxn(txns, trace.TxnID(ro.arg)).reply = id
		case trace.OpRPCRet:
			getTxn(txns, trace.TxnID(ro.arg)).ret = id
		case trace.OpMsgSend:
			getTxn(msgs, trace.TxnID(ro.arg)).call = id
		case trace.OpMsgRecv:
			getTxn(msgs, trace.TxnID(ro.arg)).handle = id
		case trace.OpBegin:
			if ro.ext {
				externals = append(externals, id)
			}
		}
	}

	// Signal-and-wait: notify(m) ≺ every later wait(m).
	for _, mp := range monitors {
		for _, n := range mp.notifies {
			for _, w := range mp.waits {
				if ps.nodes[n].seq < ps.nodes[w].seq {
					ps.addBase(n, w)
				}
			}
		}
	}
	// Event listener: register(l) ≺ every later perform(l).
	for _, lp := range listeners {
		for _, r := range lp.notifies {
			for _, pf := range lp.waits {
				if ps.nodes[r].seq < ps.nodes[pf].seq {
					ps.addBase(r, pf)
				}
			}
		}
	}
	// IPC transactions.
	for _, tn := range txns {
		if tn.call >= 0 && tn.handle >= 0 {
			ps.addBase(tn.call, tn.handle)
		}
		if tn.reply >= 0 && tn.ret >= 0 {
			ps.addBase(tn.reply, tn.ret)
		}
	}
	for _, tn := range msgs {
		if tn.call >= 0 && tn.handle >= 0 {
			ps.addBase(tn.call, tn.handle)
		}
	}
	// External input rule: end(e_i) ≺ begin(e_{i+1}) over external
	// events in begin order (transitivity chains the rest).
	sort.Slice(externals, func(i, j int) bool {
		return ps.nodes[externals[i]].seq < ps.nodes[externals[j]].seq
	})
	for i := 1; i < len(externals); i++ {
		prevTask := ps.nodes[externals[i-1]].task
		if en, ok := ps.ends[prevTask]; ok {
			ps.addBase(en, externals[i])
		}
	}
}

package hb

import (
	"fmt"
	"testing"

	"cafa/internal/synth"
)

// buildFull replicates the pre-incremental fixpoint: recompute the
// entire transitive closure on every round. It is the benchmark
// baseline the incremental closure is measured against.
func buildFull(ps *Prescan, opts Options) (*Graph, error) {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 64
	}
	g := &Graph{
		tr:           ps.tr,
		opts:         opts,
		nodes:        ps.nodes,
		taskNodes:    ps.taskNodes,
		begins:       ps.begins,
		ends:         ps.ends,
		queueSends:   ps.queueSends,
		looperEvents: ps.looperEvents,
	}
	g.adj = make([][]int32, len(g.nodes))
	for _, e := range ps.baseEdges {
		g.adj[e.u] = append(g.adj[e.u], e.v)
		g.baseEdges++
	}
	if opts.Conventional {
		for _, evs := range g.looperEvents {
			for i := 1; i < len(evs); i++ {
				en, ok1 := g.ends[evs[i-1]]
				b, ok2 := g.begins[evs[i]]
				if ok1 && ok2 && g.addEdge(en, b) {
					g.baseEdges++
				}
			}
		}
	}
	g.reach = newBitmat(len(g.nodes))
	for round := 0; ; round++ {
		if round >= opts.MaxRounds {
			return nil, fmt.Errorf("hb: fixpoint did not converge in %d rounds", opts.MaxRounds)
		}
		g.rounds = round + 1
		g.closure()
		g.pending = g.pending[:0]
		if !g.applyDerivedRules() {
			break
		}
	}
	return g, nil
}

// TestBuildFullMatchesIncremental keeps the benchmark baseline honest:
// both fixpoints must produce identical stats and closure bits on the
// synthetic workload the benchmarks use.
func TestBuildFullMatchesIncremental(t *testing.T) {
	tr := synth.Trace(synth.Config{Chain: 4, EventsPer: 8, FreeThreads: 4})
	ps, err := Scan(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, {Conventional: true}} {
		inc, err := BuildFromScan(ps, opts)
		if err != nil {
			t.Fatal(err)
		}
		full, err := buildFull(ps, opts)
		if err != nil {
			t.Fatal(err)
		}
		if inc.Stats() != full.Stats() {
			t.Fatalf("opts %+v: stats diverge: incremental %+v, full %+v", opts, inc.Stats(), full.Stats())
		}
		if len(inc.reach.bits) != len(full.reach.bits) {
			t.Fatalf("opts %+v: closure matrix size mismatch", opts)
		}
		for i := range full.reach.bits {
			if inc.reach.bits[i] != full.reach.bits[i] {
				t.Fatalf("opts %+v: closure bits diverge at word %d", opts, i)
			}
		}
		// The conventional baseline derives everything from its total
		// order in round 0; only the event-driven model must iterate.
		if !opts.Conventional && inc.rounds < 3 {
			t.Fatalf("synthetic chain converged in %d rounds; want a multi-round fixpoint", inc.rounds)
		}
	}
}

// closureBenchSizes spans a small app-like trace up to a large
// chained fan-out where round-over-round recompute dominates.
var closureBenchSizes = []struct {
	name string
	cfg  synth.Config
}{
	{"small", synth.Config{Chain: 2, EventsPer: 4, FreeThreads: 2}},
	{"medium", synth.Config{Chain: 4, EventsPer: 8, FreeThreads: 8, Burst: 4, BurstEvents: 24}},
	{"large", synth.Config{Chain: 8, EventsPer: 4, FreeThreads: 16, Burst: 8, BurstEvents: 48}},
}

// BenchmarkFixpointClosure compares the incremental fixpoint against
// the full-recompute baseline on the same Prescan. The incremental
// variant must be no slower on small traces and faster on large ones.
func BenchmarkFixpointClosure(b *testing.B) {
	for _, size := range closureBenchSizes {
		tr := synth.Trace(size.cfg)
		ps, err := Scan(tr)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(size.name+"/incremental", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildFromScan(ps, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(size.name+"/full", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := buildFull(ps, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

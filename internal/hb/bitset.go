package hb

// bitmat is a dense reachability matrix: one bit row per reduced
// node. Rows are allocated from one backing slice to keep the memory
// layout compact and allocation count low.
type bitmat struct {
	words int
	bits  []uint64
}

func newBitmat(n int) *bitmat {
	words := (n + 63) / 64
	return &bitmat{words: words, bits: make([]uint64, n*words)}
}

func (m *bitmat) row(i int) []uint64 {
	return m.bits[i*m.words : (i+1)*m.words]
}

func (m *bitmat) set(i, j int) {
	m.row(i)[j/64] |= 1 << (uint(j) % 64)
}

func (m *bitmat) get(i, j int) bool {
	return m.row(i)[j/64]&(1<<(uint(j)%64)) != 0
}

// orInto ors row src into row dst.
func (m *bitmat) orInto(dst, src int) {
	d := m.row(dst)
	s := m.row(src)
	for k := range d {
		d[k] |= s[k]
	}
}

// orIntoChanged ors row src into row dst and reports whether dst
// gained any bit — the incremental closure's change-propagation test.
func (m *bitmat) orIntoChanged(dst, src int) bool {
	d := m.row(dst)
	s := m.row(src)
	var diff uint64
	for k := range d {
		old := d[k]
		nv := old | s[k]
		d[k] = nv
		diff |= old ^ nv
	}
	return diff != 0
}

// clear zeroes the whole matrix.
func (m *bitmat) clear() {
	for i := range m.bits {
		m.bits[i] = 0
	}
}

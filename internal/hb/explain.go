package hb

import (
	"fmt"
	"strings"
)

// Explain returns a happens-before derivation from entry i to entry
// j: the trace indexes of the reduced nodes along one shortest path
// (starting at i's forward anchor and ending at j's backward anchor).
// It returns nil when the entries are not ordered.
func (g *Graph) Explain(i, j int) []int {
	if !g.Ordered(i, j) {
		return nil
	}
	ei := &g.tr.Entries[i]
	ej := &g.tr.Entries[j]
	if ei.Task == ej.Task {
		return []int{i, j}
	}
	src := g.anchorAfter(ei.Task, i)
	dst := g.anchorBefore(ej.Task, j)
	if src < 0 || dst < 0 {
		return nil
	}
	// BFS over reduced nodes.
	prev := make([]int32, len(g.nodes))
	for k := range prev {
		prev[k] = -2
	}
	prev[src] = -1
	queue := []int32{src}
	for len(queue) > 0 && prev[dst] == -2 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if prev[w] == -2 {
				prev[w] = u
				queue = append(queue, w)
			}
		}
	}
	if prev[dst] == -2 {
		return nil
	}
	var rev []int
	for v := dst; v >= 0; v = prev[v] {
		rev = append(rev, g.nodes[v].seq)
	}
	path := make([]int, 0, len(rev)+2)
	if rev[len(rev)-1] != i {
		path = append(path, i)
	}
	for k := len(rev) - 1; k >= 0; k-- {
		path = append(path, rev[k])
	}
	if path[len(path)-1] != j {
		path = append(path, j)
	}
	return path
}

// FormatPath renders an Explain result as a readable derivation.
func (g *Graph) FormatPath(path []int) string {
	if len(path) == 0 {
		return "(not ordered)"
	}
	var sb strings.Builder
	for k, idx := range path {
		e := &g.tr.Entries[idx]
		if k > 0 {
			sb.WriteString("\n  ≺ ")
		} else {
			sb.WriteString("    ")
		}
		fmt.Fprintf(&sb, "[%d] %s in %s", idx, e.String(), g.tr.TaskName(e.Task))
	}
	return sb.String()
}

package hb

import (
	"fmt"
	"strings"

	"cafa/internal/trace"
)

// Explain returns a happens-before derivation from entry i to entry
// j: the trace indexes of the reduced nodes along one shortest path
// (starting at i's forward anchor and ending at j's backward anchor).
// It returns nil when the entries are not ordered.
func (g *Graph) Explain(i, j int) []int {
	if !g.Ordered(i, j) {
		return nil
	}
	ei := &g.tr.Entries[i]
	ej := &g.tr.Entries[j]
	if ei.Task == ej.Task {
		return []int{i, j}
	}
	src := g.anchorAfter(ei.Task, i)
	dst := g.anchorBefore(ej.Task, j)
	if src < 0 || dst < 0 {
		return nil
	}
	// BFS over reduced nodes.
	prev := make([]int32, len(g.nodes))
	for k := range prev {
		prev[k] = -2
	}
	prev[src] = -1
	queue := []int32{src}
	for len(queue) > 0 && prev[dst] == -2 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if prev[w] == -2 {
				prev[w] = u
				queue = append(queue, w)
			}
		}
	}
	if prev[dst] == -2 {
		return nil
	}
	var rev []int
	for v := dst; v >= 0; v = prev[v] {
		rev = append(rev, g.nodes[v].seq)
	}
	path := make([]int, 0, len(rev)+2)
	if rev[len(rev)-1] != i {
		path = append(path, i)
	}
	for k := len(rev) - 1; k >= 0; k-- {
		path = append(path, rev[k])
	}
	if path[len(path)-1] != j {
		path = append(path, j)
	}
	return path
}

// CommonAncestor returns the trace index of the nearest common causal
// ancestor of entries i and j: the latest reduced node (the causal
// skeleton — task boundaries and cross-edge endpoints) that
// happens-before both, or -1 when none exists. It is the fork point a
// race's causality subgraph hangs from: the derivations
// Explain(CommonAncestor(i,j), i) and Explain(CommonAncestor(i,j), j)
// show how the execution reached both racy operations.
func (g *Graph) CommonAncestor(i, j int) int {
	// Happens-before is consistent with trace order, so an ancestor of
	// both entries must precede the earlier one. nodes are appended in
	// trace order: binary-search to the last node before min(i,j) and
	// scan backwards from there, visiting candidates latest-first.
	//
	// A candidate reduced node n is its own task's anchor, so
	// Ordered(n.seq, i) reduces to program order within i's task or a
	// single closure-bit test against i's backward anchor — resolved
	// once here instead of re-deriving anchors per candidate.
	ti := g.tr.Entries[i].Task
	tj := g.tr.Entries[j].Task
	vi := g.anchorBefore(ti, i)
	vj := g.anchorBefore(tj, j)
	before := func(n int32, t trace.TaskID, idx int, v int32) bool {
		nd := &g.nodes[n]
		if nd.task == t {
			return nd.seq < idx
		}
		return v >= 0 && g.reachable(n, v)
	}
	lim := i
	if j < lim {
		lim = j
	}
	lo, hi := 0, len(g.nodes)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.nodes[mid].seq < lim {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for n := int32(lo - 1); n >= 0; n-- {
		if before(n, ti, i, vi) && before(n, tj, j, vj) {
			return g.nodes[n].seq
		}
	}
	return -1
}

// FormatPath renders an Explain result as a readable derivation.
func (g *Graph) FormatPath(path []int) string {
	if len(path) == 0 {
		return "(not ordered)"
	}
	var sb strings.Builder
	for k, idx := range path {
		e := &g.tr.Entries[idx]
		if k > 0 {
			sb.WriteString("\n  ≺ ")
		} else {
			sb.WriteString("    ")
		}
		fmt.Fprintf(&sb, "[%d] %s in %s", idx, e.String(), g.tr.TaskName(e.Task))
	}
	return sb.String()
}

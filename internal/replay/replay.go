// Package replay validates reported use-free races by adversarial
// re-execution: it re-runs the application with biased event timing
// (delaying the event containing the use, so the free gets ahead) and
// varied scheduler seeds, and checks whether a NullPointerException
// actually manifests at the racy use. A confirmed crash is direct
// evidence the race is harmful — the §6.2 notion of a use-after-free
// violation.
package replay

import (
	"errors"
	"strings"

	"cafa/internal/sim"
	"cafa/internal/trace"
)

// Builder constructs and wires an application system under a given
// runtime configuration (it must NOT call Run). The same builder run
// under different configurations yields different interleavings of
// the same program.
type Builder func(cfg sim.Config) (*sim.System, error)

// Confirmation records a successful adversarial reproduction.
type Confirmation struct {
	Seed    uint64
	DelayMs int64
	Crash   sim.Crash
}

// Options tunes the search.
type Options struct {
	// Seeds is how many scheduler seeds to try per delay (default 4).
	Seeds int
	// Delays are the extra latencies injected into the use event
	// (default 0, 50, 500 ms).
	Delays []int64
}

func (o *Options) defaults() {
	if o.Seeds <= 0 {
		o.Seeds = 4
	}
	if len(o.Delays) == 0 {
		o.Delays = []int64{0, 50, 500}
	}
}

// crashMatches reports whether a crash is a NullPointerException
// raised while running the named handler.
func crashMatches(c sim.Crash, useMethod string) bool {
	if c.Err == nil || !strings.Contains(c.Err.Error(), "NullPointerException") {
		return false
	}
	return c.Name == useMethod || strings.Contains(c.Err.Error(), useMethod)
}

// Confirm searches for an execution in which delaying useMethod's
// event makes the free win the race and the use crash. It returns nil
// (no error) when no adversarial schedule reproduced the crash —
// evidence the race may be benign.
func Confirm(build Builder, useMethod string, opts Options) (*Confirmation, error) {
	if build == nil || useMethod == "" {
		return nil, errors.New("replay: builder and use method required")
	}
	opts.defaults()
	for _, d := range opts.Delays {
		for seed := uint64(1); seed <= uint64(opts.Seeds); seed++ {
			cfg := sim.Config{
				Tracer: trace.Discard{},
				Seed:   seed,
			}
			delay := d
			bias := func(m string) int64 {
				if m == useMethod {
					return delay
				}
				return 0
			}
			cfg.DelayEvent = bias
			cfg.DelayThread = bias
			sys, err := build(cfg)
			if err != nil {
				return nil, err
			}
			if err := sys.Run(); err != nil {
				return nil, err
			}
			// Uncaught crashes and try-swallowed NPEs both confirm the
			// violation; the paper counts masked exceptions as harmful
			// too (§6.2).
			manifests := append(sys.Crashes(), sys.CaughtNPEs()...)
			for _, c := range manifests {
				if crashMatches(c, useMethod) {
					return &Confirmation{Seed: seed, DelayMs: d, Crash: c}, nil
				}
			}
		}
	}
	return nil, nil
}

// Baseline runs the unbiased application once and reports whether the
// named handler crashed without any adversarial help.
func Baseline(build Builder, useMethod string) (bool, error) {
	sys, err := build(sim.Config{Tracer: trace.Discard{}, Seed: 1})
	if err != nil {
		return false, err
	}
	if err := sys.Run(); err != nil {
		return false, err
	}
	for _, c := range sys.Crashes() {
		if crashMatches(c, useMethod) {
			return true, nil
		}
	}
	return false, nil
}

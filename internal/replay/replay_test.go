package replay

import (
	"testing"

	"cafa/internal/asm"
	"cafa/internal/dvm"
	"cafa/internal/sim"
)

// mytracksSrc is the Figure 1 scenario: in the normal run
// onServiceConnected lands before onDestroy and everything works;
// delaying it flips the order and the use crashes.
const mytracksSrc = `
.method updateTrack(this) regs=1
    return-void
.end

.method onServiceConnected(act) regs=3
    iget v1, act, providerUtils
    invoke-virtual updateTrack, v1
    return-void
.end

.method onBind(act) regs=5
    sget-int v1, mainQ
    const-method v2, onServiceConnected
    const-int v3, #0
    send v1, v2, v3, act
    const-int v4, #0
    return v4
.end

.method onResume(act) regs=5
    new v1, ProviderUtils
    iput v1, act, providerUtils
    sget-int v2, svc
    const-method v3, onBind
    rpc v2, v3, act -> v4
    return-void
.end

.method onDestroy(act) regs=2
    const-null v1
    iput v1, act, providerUtils
    return-void
.end
`

func buildMyTracks(t *testing.T) Builder {
	p, err := asm.Assemble(mytracksSrc)
	if err != nil {
		t.Fatal(err)
	}
	return func(cfg sim.Config) (*sim.System, error) {
		s := sim.NewSystem(p, cfg)
		main := s.AddLooper("main", 0)
		svc := s.AddService("TrackRecordingService", 1)
		s.Heap().SetStatic(p.FieldID("mainQ"), dvm.Int64(main.Handle()))
		s.Heap().SetStatic(p.FieldID("svc"), dvm.Int64(svc))
		act := s.Heap().New("MyTracksActivity")
		if err := s.Inject(0, main, "onResume", dvm.Obj(act.ID), 0); err != nil {
			return nil, err
		}
		if err := s.Inject(100, main, "onDestroy", dvm.Obj(act.ID), 0); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func TestConfirmHarmfulRace(t *testing.T) {
	build := buildMyTracks(t)
	// Unbiased: no crash.
	crashed, err := Baseline(build, "onServiceConnected")
	if err != nil {
		t.Fatal(err)
	}
	if crashed {
		t.Fatal("baseline run should not crash")
	}
	// Adversarial: delaying onServiceConnected past onDestroy must
	// reproduce the use-after-free NPE.
	conf, err := Confirm(build, "onServiceConnected", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if conf == nil {
		t.Fatal("adversarial replay failed to confirm the harmful race")
	}
	if conf.DelayMs < 100 {
		t.Errorf("confirmed with delay %dms; expected >= 100ms to pass onDestroy", conf.DelayMs)
	}
}

// guardedSrc is the benign Figure 5 variant: the use is guarded, so
// no schedule crashes it.
const guardedSrc = `
.method run(this) regs=1
    return-void
.end

.method onFocus(act) regs=3
    iget v1, act, handler
    if-eqz v1, skip
    invoke-virtual run, v1
skip:
    return-void
.end

.method onPause(act) regs=2
    const-null v1
    iput v1, act, handler
    return-void
.end
`

func buildGuarded(t *testing.T) Builder {
	p, err := asm.Assemble(guardedSrc)
	if err != nil {
		t.Fatal(err)
	}
	return func(cfg sim.Config) (*sim.System, error) {
		s := sim.NewSystem(p, cfg)
		main := s.AddLooper("main", 0)
		act := s.Heap().New("Activity")
		h := s.Heap().New("Handler")
		act.Set(p.FieldID("handler"), dvm.Obj(h.ID))
		if err := s.Inject(0, main, "onFocus", dvm.Obj(act.ID), 0); err != nil {
			return nil, err
		}
		if err := s.Inject(10, main, "onPause", dvm.Obj(act.ID), 0); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func TestBenignRaceNotConfirmed(t *testing.T) {
	conf, err := Confirm(buildGuarded(t), "onFocus", Options{Seeds: 3, Delays: []int64{0, 20, 200}})
	if err != nil {
		t.Fatal(err)
	}
	if conf != nil {
		t.Fatalf("guarded use confirmed as harmful: %+v", conf)
	}
}

func TestConfirmValidatesArgs(t *testing.T) {
	if _, err := Confirm(nil, "x", Options{}); err == nil {
		t.Error("nil builder accepted")
	}
	if _, err := Confirm(buildGuarded(t), "", Options{}); err == nil {
		t.Error("empty method accepted")
	}
}

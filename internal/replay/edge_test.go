package replay

import (
	"errors"
	"testing"

	"cafa/internal/sim"
)

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.defaults()
	if o.Seeds != 4 {
		t.Errorf("Seeds = %d, want 4", o.Seeds)
	}
	if len(o.Delays) != 3 || o.Delays[0] != 0 || o.Delays[1] != 50 || o.Delays[2] != 500 {
		t.Errorf("Delays = %v, want [0 50 500]", o.Delays)
	}

	set := Options{Seeds: 2, Delays: []int64{7}}
	set.defaults()
	if set.Seeds != 2 || len(set.Delays) != 1 || set.Delays[0] != 7 {
		t.Errorf("explicit options rewritten: %+v", set)
	}

	neg := Options{Seeds: -1}
	neg.defaults()
	if neg.Seeds != 4 {
		t.Errorf("negative Seeds not defaulted: %d", neg.Seeds)
	}
}

func TestConfirmPropagatesBuilderError(t *testing.T) {
	boom := errors.New("scenario assembly failed")
	build := func(sim.Config) (*sim.System, error) { return nil, boom }
	conf, err := Confirm(build, "onAnything", Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("Confirm err = %v, want %v", err, boom)
	}
	if conf != nil {
		t.Fatalf("Confirm returned a confirmation alongside the error: %+v", conf)
	}
}

func TestBaselinePropagatesBuilderError(t *testing.T) {
	boom := errors.New("no such app")
	build := func(sim.Config) (*sim.System, error) { return nil, boom }
	crashed, err := Baseline(build, "onAnything")
	if !errors.Is(err, boom) {
		t.Fatalf("Baseline err = %v, want %v", err, boom)
	}
	if crashed {
		t.Fatal("Baseline reported a crash alongside the error")
	}
}

// TestConfirmStopsAtFirstBuilderError pins the failure mode: the
// search aborts on the first broken build instead of burning the rest
// of the seed x delay grid.
func TestConfirmStopsAtFirstBuilderError(t *testing.T) {
	calls := 0
	build := func(sim.Config) (*sim.System, error) {
		calls++
		return nil, errors.New("broken")
	}
	_, err := Confirm(build, "m", Options{Seeds: 4, Delays: []int64{0, 50, 500}})
	if err == nil {
		t.Fatal("want error")
	}
	if calls != 1 {
		t.Fatalf("builder called %d times after failing, want 1", calls)
	}
}

package static

import (
	"sort"

	"cafa/internal/dataflow"
	"cafa/internal/dvm"
	"cafa/internal/trace"
)

// LoadSite is a pointer-load instruction (iget/sget/aget) a value may
// originate from. Field is the loaded field id, or 0 for array loads
// (array slot ids are dynamic and have no static field).
type LoadSite struct {
	Method trace.MethodID
	PC     trace.PC
	Field  trace.FieldID
}

// Resolution is the interprocedural origin set of a register value:
// every pointer-load site it may come from, plus flags for fresh
// allocations, null constants, and origins the analysis could not
// determine (unknown callers, intrinsic results, scalar values).
type Resolution struct {
	Sites      []LoadSite
	Fresh      bool
	Null       bool
	Incomplete bool
}

func (r *Resolution) addSite(s LoadSite) {
	for _, have := range r.Sites {
		if have == s {
			return
		}
	}
	r.Sites = append(r.Sites, s)
}

func (r *Resolution) merge(o Resolution) {
	for _, s := range o.Sites {
		r.addSite(s)
	}
	r.Fresh = r.Fresh || o.Fresh
	r.Null = r.Null || o.Null
	r.Incomplete = r.Incomplete || o.Incomplete
}

// Source projects a resolution onto the intra-method dataflow.Source
// contract the detector consumes. The projection is deliberately
// conservative: only a complete, single-load resolution claims
// SrcLoad, only an all-fresh/null resolution claims SrcFresh, and
// everything else is SrcUnknown — the dynamic nearest-read fallback.
// Wherever the intra-method pass already gives a definite answer this
// projection gives the same one, so enabling it can never regress
// precision.
func (r Resolution) Source(derefMethod trace.MethodID) dataflow.Source {
	if r.Incomplete {
		return dataflow.Source{Kind: dataflow.SrcUnknown}
	}
	if len(r.Sites) == 0 {
		if r.Fresh || r.Null {
			return dataflow.Source{Kind: dataflow.SrcFresh}
		}
		return dataflow.Source{Kind: dataflow.SrcUnknown}
	}
	if len(r.Sites) == 1 && !r.Fresh && !r.Null {
		s := r.Sites[0]
		src := dataflow.Source{Kind: dataflow.SrcLoad, LoadPC: s.PC}
		if s.Method != derefMethod {
			src.LoadMethod = s.Method
		}
		return src
	}
	return dataflow.Source{Kind: dataflow.SrcUnknown}
}

// resolver memoizes interprocedural value resolution over the call
// graph.
type resolver struct {
	cg    *CallGraph
	memo  map[valKey]Resolution
	state map[valKey]uint8 // 1 = in progress
}

type valKey struct {
	method trace.MethodID
	pc     int32
	reg    dvm.Reg
}

func newResolver(cg *CallGraph) *resolver {
	return &resolver{
		cg:    cg,
		memo:  make(map[valKey]Resolution),
		state: make(map[valKey]uint8),
	}
}

// value resolves the origins of register reg as observed at
// instruction pc of method id. Cycles in the value-flow graph
// (recursion, mutually-posting handlers) resolve to Incomplete.
func (rv *resolver) value(id trace.MethodID, pc int, reg dvm.Reg) Resolution {
	k := valKey{method: id, pc: int32(pc), reg: reg}
	if res, ok := rv.memo[k]; ok {
		return res
	}
	if rv.state[k] == 1 {
		return Resolution{Incomplete: true}
	}
	rv.state[k] = 1
	res := rv.valueUncached(id, pc, reg)
	delete(rv.state, k)
	rv.memo[k] = res
	return res
}

func (rv *resolver) valueUncached(id trace.MethodID, pc int, reg dvm.Reg) Resolution {
	r := rv.cg.Reach[id]
	if r == nil {
		return Resolution{Incomplete: true}
	}
	defs := r.Defs(pc, reg)
	if len(defs) == 0 {
		return Resolution{Incomplete: true}
	}
	var out Resolution
	for _, d := range defs {
		if d < 0 {
			out.merge(rv.param(id, dataflow.ParamIndex(d)))
		} else {
			out.merge(rv.def(id, d))
		}
	}
	return out
}

// def resolves the value produced by the definition at site.
func (rv *resolver) def(id trace.MethodID, site int32) Resolution {
	m := rv.cg.MethodByID(id)
	in := &m.Code[site]
	switch in.Code {
	case dvm.CIget, dvm.CSget:
		return Resolution{Sites: []LoadSite{{Method: id, PC: trace.PC(site), Field: in.Field}}}
	case dvm.CAget:
		return Resolution{Sites: []LoadSite{{Method: id, PC: trace.PC(site)}}}
	case dvm.CNew, dvm.CNewArray:
		return Resolution{Fresh: true}
	case dvm.CConstNull:
		return Resolution{Null: true}
	case dvm.CMove:
		return rv.value(id, int(site), in.B)
	case dvm.CInvokeVirtual, dvm.CInvokeStatic:
		return rv.callResult(rv.cg.Prog.Methods[in.MethodIdx])
	case dvm.CInvokeValue:
		if callee, ok := rv.cg.methodHandle(m, rv.cg.Reach[id], int(site), in.A); ok {
			return rv.callResult(callee)
		}
		return Resolution{Incomplete: true}
	default:
		// Intrinsic results (thread handles, rpc replies, received
		// messages) and scalar producers: origin unknown.
		return Resolution{Incomplete: true}
	}
}

// callResult unions the origins of every return site of a callee.
func (rv *resolver) callResult(callee *dvm.Method) Resolution {
	var out Resolution
	found := false
	r := rv.cg.Reach[callee.ID]
	for pc := range callee.Code {
		in := &callee.Code[pc]
		if in.Code != dvm.CReturn || !r.Reachable(pc) {
			continue
		}
		found = true
		out.merge(rv.value(callee.ID, pc, in.A))
	}
	if !found {
		out.Incomplete = true
	}
	return out
}

// param resolves parameter p of a method by unioning the bound
// argument at every known call site. Methods the runtime may enter
// outside the bytecode (no static callers, or poisoned by an
// unresolvable handle) resolve to Incomplete — the closed-world
// caveat documented on CallGraph.Unresolved.
func (rv *resolver) param(id trace.MethodID, p int) Resolution {
	if rv.cg.Unresolved[id] {
		return Resolution{Incomplete: true}
	}
	edges := rv.cg.Callers[id]
	if len(edges) == 0 {
		return Resolution{Incomplete: true}
	}
	var out Resolution
	for _, e := range edges {
		if !e.ArgsKnown || p >= len(e.ArgRegs) {
			out.Incomplete = true
			continue
		}
		out.merge(rv.value(e.Caller, int(e.PC), e.ArgRegs[p]))
	}
	return out
}

// ResolveDerefs computes the interprocedural resolution of every
// reachable dereference site in the program, plus the dataflow.Source
// projection consumed by the detector.
func ResolveDerefs(cg *CallGraph) (map[dataflow.Key]Resolution, map[dataflow.Key]dataflow.Source) {
	rv := newResolver(cg)
	res := make(map[dataflow.Key]Resolution)
	srcs := make(map[dataflow.Key]dataflow.Source)
	for _, m := range cg.Prog.Methods {
		r := cg.Reach[m.ID]
		for pc := range m.Code {
			reg, ok := dataflow.DerefReg(&m.Code[pc])
			if !ok || !r.Reachable(pc) {
				continue
			}
			k := dataflow.Key{Method: m.ID, PC: trace.PC(pc)}
			rr := rv.value(m.ID, pc, reg)
			sortSites(rr.Sites)
			res[k] = rr
			srcs[k] = rr.Source(m.ID)
		}
	}
	return res, srcs
}

func sortSites(sites []LoadSite) {
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Method != sites[j].Method {
			return sites[i].Method < sites[j].Method
		}
		return sites[i].PC < sites[j].PC
	})
}

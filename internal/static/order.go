package static

// Static event-order engine: a whole-program must-happens-before
// relation between the use/free sites EnumeratePairs emits, computed
// from the event topology the call graph already exposes — handler
// posts (send/send-front), thread fork/join, blocking RPC, listener
// registration, and program order within a handler.
//
// The engine reasons about *static events*: methods the runtime enters
// asynchronously (thread bodies, injected events, posted handlers).
// Nodes of the order graph are begin(E)/end(E) per event method plus
// the intrinsic call sites inside event methods; an edge means "every
// dynamic occurrence of the source precedes every dynamic occurrence
// of the target". That all-pairs reading is what makes the relation a
// *must*-order usable for pruning, and it is why almost every rule
// requires the participating events to run **exactly once**: a method
// entered twice has interleaving instances and nothing all-pairs can
// be said about its sites.
//
// Multiplicity is decidable only in a closed world. Roots supplies the
// entry-point inventory (how many times the harness enters each method
// directly); a method's activation count is then roots plus the
// statically visible posting edges. With Roots == nil the world is
// open, every multiplicity is unbounded, and the engine computes
// nothing — the conservative bottom the closed-world caveat requires:
// the pass can refine answers but never invent ordering where entry
// points are unknown.
//
// Two relations are derived from one graph:
//
//   - the full (lint) relation uses every rule and feeds cafa-lint's
//     static-ordered verdict — a claim about real executions;
//   - the prune (dyn-sound) relation drops the rules the dynamic HB
//     model does not mirror on every recorded trace: listener edges
//     (uninstrumented listener ids emit no register/perform trace
//     entries) and FIFO edges (adversarial replay may inflate send
//     delays past the static constants). Orders derivable from the
//     remaining rules — post, fork/join, rpc, program order — are
//     HB-ordered in every trace of the program, so the detector may
//     skip the dynamic query for them.

import (
	"fmt"

	"cafa/internal/cfg"
	"cafa/internal/detect"
	"cafa/internal/dvm"
	"cafa/internal/trace"
)

// Options configures the static layer's optional inputs.
type Options struct {
	// Roots counts direct runtime entries per method (thread bodies,
	// injected events) — the closed-world inventory the event-order
	// pass needs. nil leaves the world open: no orders are computed.
	Roots map[trace.MethodID]int
}

// RootsFromNames converts a name-keyed entry inventory (sim.System's
// Roots) to the method-ID keying the static layer uses. Names the
// program does not define are dropped.
func RootsFromNames(p *dvm.Program, names map[string]int) map[trace.MethodID]int {
	out := make(map[trace.MethodID]int, len(names))
	for name, n := range names {
		if i, ok := p.MethodIndex(name); ok {
			out[p.Methods[i].ID] += n
		}
	}
	return out
}

// OrderInfo is one derived must-order between a pair's sites.
type OrderInfo struct {
	// UseBeforeFree is the direction: true means every use occurrence
	// precedes every free occurrence.
	UseBeforeFree bool
	// DynSound: the derivation used only rules mirrored by dynamic HB
	// on every recorded trace, so the detector may prune on it.
	DynSound bool
	// Witness is the human-readable derivation chain.
	Witness []string
}

// Orders is the event-order pass output: per-pair must-orders plus
// the dyn-sound projection the detector prunes with.
type Orders struct {
	// ByKey holds every derived order, keyed like the pair it orders.
	ByKey map[detect.SiteKey]OrderInfo

	prune map[detect.OrderKey]detect.StaticOrder
}

// Lookup returns the derived order for a site pair, if any.
func (o *Orders) Lookup(k detect.SiteKey) (OrderInfo, bool) {
	if o == nil {
		return OrderInfo{}, false
	}
	info, ok := o.ByKey[k]
	return info, ok
}

// Ordered is the number of distinct site pairs with a derived order.
func (o *Orders) Ordered() int {
	if o == nil {
		return 0
	}
	return len(o.ByKey)
}

// PruneMap returns the dyn-sound orders keyed for detect.Input's
// StaticOrders stage. The map is shared, read-only.
func (o *Orders) PruneMap() map[detect.OrderKey]detect.StaticOrder {
	if o == nil {
		return nil
	}
	return o.prune
}

// ComputeOrders runs the event-order engine over the call graph and
// queries it for every enumerated pair. With roots == nil (open
// world) the result is empty.
func ComputeOrders(cg *CallGraph, pairs []Pair, roots map[trace.MethodID]int) *Orders {
	o := &Orders{
		ByKey: make(map[detect.SiteKey]OrderInfo),
		prune: make(map[detect.OrderKey]detect.StaticOrder),
	}
	if cg == nil || roots == nil {
		return o
	}
	e := newOrderEngine(cg, roots)
	e.build()
	for _, p := range pairs {
		if _, done := o.ByKey[p.Key]; done {
			continue // duplicate keys from multiple load sites
		}
		info, ok := e.queryPair(p.Key)
		if !ok {
			continue
		}
		o.ByKey[p.Key] = info
		if info.DynSound {
			o.prune[detect.OrderKey{
				UseMethod: p.Key.UseMethod, UsePC: p.Key.UsePC,
				FreeMethod: p.Key.FreeMethod, FreePC: p.Key.FreePC,
			}] = detect.StaticOrder{UseBeforeFree: info.UseBeforeFree, Witness: info.Witness}
		}
	}
	return o
}

// --- engine -----------------------------------------------------------

type multState uint8

const (
	multUnknown multState = iota
	multInProgress
	// multOnce: the event method is entered exactly once per run.
	multOnce
	// multMany: zero entries, two or more, or unbounded — in every
	// case "exactly once" cannot be claimed.
	multMany
)

type nodeKind uint8

const (
	nBegin nodeKind = iota
	nEnd
	nSite
)

type nodeRef struct {
	kind   nodeKind
	method trace.MethodID // event method (begin/end) or the site's method
	pc     int            // sites only
}

type orderEdge struct {
	to   int
	rule string
	// lintOnly marks rules without a dynamic-HB mirror on arbitrary
	// recorded traces (listener registration, const-delay FIFO); the
	// prune relation excludes them.
	lintOnly bool
}

// anchor places a site into the event whose instances execute it —
// either directly (the site's method is an event method) or through a
// chain of unique synchronous calls.
type anchor struct {
	ok    bool
	event trace.MethodID
	pc    int // position in the event method for intra-order tests
	// once: the site executes at most once per event instance (no
	// link of the call chain and not the site itself sits in a CFG
	// cycle).
	once bool
}

type postInfo struct {
	site   nodeRef
	target trace.MethodID
	qfield trace.FieldID
	front  bool
	delay  int64
}

type orderEngine struct {
	cg    *CallGraph
	roots map[trace.MethodID]int

	entries map[trace.MethodID][]Edge // async entry edges (post/fork/rpc/listener)
	callIn  map[trace.MethodID][]Edge // plain synchronous call edges

	reach    map[trace.MethodID][][]bool // strict pc reachability, try edges included
	dom      map[trace.MethodID][][]bool // dom[b][a]: a dominates b (reflexive)
	mult     map[trace.MethodID]multState
	anchors  map[nodeRef]anchor
	visiting map[trace.MethodID]bool

	nodes map[nodeRef]int
	refs  []nodeRef
	out   [][]orderEdge
}

func newOrderEngine(cg *CallGraph, roots map[trace.MethodID]int) *orderEngine {
	e := &orderEngine{
		cg:       cg,
		roots:    roots,
		entries:  make(map[trace.MethodID][]Edge),
		callIn:   make(map[trace.MethodID][]Edge),
		reach:    make(map[trace.MethodID][][]bool),
		dom:      make(map[trace.MethodID][][]bool),
		mult:     make(map[trace.MethodID]multState),
		anchors:  make(map[nodeRef]anchor),
		visiting: make(map[trace.MethodID]bool),
		nodes:    make(map[nodeRef]int),
	}
	for callee, es := range cg.Callers {
		for _, ed := range es {
			if ed.Kind == KindCall {
				e.callIn[callee] = append(e.callIn[callee], ed)
			} else {
				e.entries[callee] = append(e.entries[callee], ed)
			}
		}
	}
	return e
}

// isEvent: the method is an asynchronous entry point (rooted or
// posted/forked/fired) and never called synchronously — its
// activations are exactly the dynamic tasks the trace would show.
func (e *orderEngine) isEvent(mid trace.MethodID) bool {
	return (e.roots[mid] > 0 || len(e.entries[mid]) > 0) && len(e.callIn[mid]) == 0
}

func (e *orderEngine) methodName(mid trace.MethodID) string {
	if m := e.cg.methods[mid]; m != nil {
		return m.Name
	}
	return fmt.Sprintf("m%d", mid)
}

// succOf returns normal plus exceptional successors.
func succOf(m *dvm.Method) [][]int {
	try := cfg.TryHandlerEdges(m)
	succ := make([][]int, len(m.Code))
	for pc := range m.Code {
		succ[pc] = append(succ[pc], cfg.Successors(m, pc)...)
		succ[pc] = append(succ[pc], try[pc]...)
	}
	return succ
}

// reachOf computes strict (>= 1 edge) pc-to-pc reachability.
func (e *orderEngine) reachOf(mid trace.MethodID) [][]bool {
	if r, ok := e.reach[mid]; ok {
		return r
	}
	m := e.cg.methods[mid]
	succ := succOf(m)
	n := len(m.Code)
	r := make([][]bool, n)
	for pc := 0; pc < n; pc++ {
		row := make([]bool, n)
		stack := append([]int(nil), succ[pc]...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if row[x] {
				continue
			}
			row[x] = true
			stack = append(stack, succ[x]...)
		}
		r[pc] = row
	}
	e.reach[mid] = r
	return r
}

// domOf computes reflexive dominators over the method entry (pc 0),
// restricted to entry-reachable pcs.
func (e *orderEngine) domOf(mid trace.MethodID) [][]bool {
	if d, ok := e.dom[mid]; ok {
		return d
	}
	m := e.cg.methods[mid]
	succ := succOf(m)
	n := len(m.Code)
	reachable := make([]bool, n)
	if n > 0 {
		reachable[0] = true
		for pc, ok := range e.reachOf(mid)[0] {
			if ok {
				reachable[pc] = true
			}
		}
	}
	preds := make([][]int, n)
	for pc := 0; pc < n; pc++ {
		if !reachable[pc] {
			continue
		}
		for _, s := range succ[pc] {
			preds[s] = append(preds[s], pc)
		}
	}
	d := make([][]bool, n)
	for pc := 0; pc < n; pc++ {
		d[pc] = make([]bool, n)
		if pc == 0 {
			d[pc][0] = true
			continue
		}
		for a := 0; a < n; a++ {
			d[pc][a] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for pc := 1; pc < n; pc++ {
			if !reachable[pc] || len(preds[pc]) == 0 {
				continue
			}
			for a := 0; a < n; a++ {
				if a == pc || !d[pc][a] {
					continue
				}
				keep := true
				for _, p := range preds[pc] {
					if !d[p][a] {
						keep = false
						break
					}
				}
				if !keep {
					d[pc][a] = false
					changed = true
				}
			}
		}
	}
	e.dom[mid] = d
	return d
}

// intraBefore: within one instance of the event method, every
// occurrence of p1 precedes every occurrence of p2 — true iff they
// are distinct and no CFG path (exceptional edges included) leads
// from p2 back to p1.
func (e *orderEngine) intraBefore(mid trace.MethodID, p1, p2 int) bool {
	return p1 != p2 && !e.reachOf(mid)[p2][p1]
}

// anchorSite resolves the event instance that executes (mid, pc).
func (e *orderEngine) anchorSite(mid trace.MethodID, pc int) anchor {
	key := nodeRef{kind: nSite, method: mid, pc: pc}
	if a, ok := e.anchors[key]; ok {
		return a
	}
	a := e.computeAnchor(mid, pc)
	e.anchors[key] = a
	return a
}

func (e *orderEngine) computeAnchor(mid trace.MethodID, pc int) anchor {
	m := e.cg.methods[mid]
	if m == nil || pc < 0 || pc >= len(m.Code) {
		return anchor{}
	}
	siteOnce := !e.reachOf(mid)[pc][pc]
	if e.isEvent(mid) {
		return anchor{ok: true, event: mid, pc: pc, once: siteOnce}
	}
	// Synchronous collapse: a method entered by exactly one plain call
	// site (no roots, no async entries, trusted caller set) executes
	// inside its caller's activation — anchor at the call site.
	if e.visiting[mid] || e.cg.Unresolved[mid] || e.roots[mid] > 0 || len(e.entries[mid]) > 0 {
		return anchor{}
	}
	calls := e.callIn[mid]
	if len(calls) != 1 {
		return anchor{}
	}
	e.visiting[mid] = true
	up := e.computeAnchor(calls[0].Caller, int(calls[0].PC))
	delete(e.visiting, mid)
	if !up.ok {
		return anchor{}
	}
	return anchor{ok: true, event: up.event, pc: up.pc, once: up.once && siteOnce}
}

// multOf bounds how many times an event method is entered per run.
func (e *orderEngine) multOf(mid trace.MethodID) multState {
	switch e.mult[mid] {
	case multInProgress:
		return multMany // posting cycle: unbounded
	case multOnce, multMany:
		return e.mult[mid]
	}
	e.mult[mid] = multInProgress
	s := e.computeMult(mid)
	e.mult[mid] = s
	return s
}

func (e *orderEngine) computeMult(mid trace.MethodID) multState {
	if !e.isEvent(mid) || e.cg.Unresolved[mid] {
		return multMany
	}
	n := e.roots[mid]
	for _, ed := range e.entries[mid] {
		if n >= 2 {
			break
		}
		// One entry edge contributes one activation iff its site runs
		// exactly once: anchored in a once-event, outside any cycle.
		a := e.anchorSite(ed.Caller, int(ed.PC))
		if !a.ok || !a.once || e.multOf(a.event) != multOnce {
			n += 2
			break
		}
		n++
	}
	if n == 1 {
		return multOnce
	}
	return multMany
}

// node interns a graph node.
func (e *orderEngine) node(ref nodeRef) int {
	if id, ok := e.nodes[ref]; ok {
		return id
	}
	id := len(e.refs)
	e.nodes[ref] = id
	e.refs = append(e.refs, ref)
	e.out = append(e.out, nil)
	return id
}

func (e *orderEngine) addEdge(from, to int, rule string, lintOnly bool) {
	for _, ed := range e.out[from] {
		if ed.to == to && ed.rule == rule {
			return
		}
	}
	e.out[from] = append(e.out[from], orderEdge{to: to, rule: rule, lintOnly: lintOnly})
}

// orderedIntrinsic reports whether an instruction is a site the order
// graph models.
func orderedIntrinsic(in *dvm.Instr) bool {
	if in.Code != dvm.CIntrinsic {
		return false
	}
	switch in.Intr {
	case dvm.IntrSend, dvm.IntrSendFront, dvm.IntrFork, dvm.IntrJoin,
		dvm.IntrRPC, dvm.IntrRegister:
		return true
	}
	return false
}

// uniqueEntry returns the single async entry edge of an event method,
// requiring a closed caller set and no direct roots.
func (e *orderEngine) uniqueEntry(mid trace.MethodID) (Edge, bool) {
	if e.cg.Unresolved[mid] || e.roots[mid] > 0 || len(e.entries[mid]) != 1 {
		return Edge{}, false
	}
	return e.entries[mid][0], true
}

// siteRunsOnce: the site node executes exactly once per run — inside
// a once-event and outside any CFG cycle. Precondition for every edge
// whose all-pairs claim quantifies over the site's occurrences.
func (e *orderEngine) siteRunsOnce(mid trace.MethodID, pc int) bool {
	a := e.anchorSite(mid, pc)
	return a.ok && a.once && e.multOf(a.event) == multOnce
}

func (e *orderEngine) build() {
	prog := e.cg.Prog

	// Nodes: begin/end per event method, plus its modeled intrinsic
	// sites with containment edges (per-instance program order).
	for _, m := range prog.Methods {
		if !e.isEvent(m.ID) {
			continue
		}
		begin := e.node(nodeRef{kind: nBegin, method: m.ID})
		end := e.node(nodeRef{kind: nEnd, method: m.ID})
		e.addEdge(begin, end, "po", false)
		r := e.cg.Reach[m.ID]
		for pc := range m.Code {
			if !r.Reachable(pc) || !orderedIntrinsic(&m.Code[pc]) {
				continue
			}
			s := e.node(nodeRef{kind: nSite, method: m.ID, pc: pc})
			e.addEdge(begin, s, "po", false)
			e.addEdge(s, end, "po", false)
		}
	}

	// Async entry edges: a uniquely-posted event begins after its one
	// posting site; blocking constructs add the return direction.
	for _, m := range prog.Methods {
		if !e.isEvent(m.ID) {
			continue
		}
		ed, ok := e.uniqueEntry(m.ID)
		if !ok || ed.Kind == KindListener {
			continue
		}
		sref := nodeRef{kind: nSite, method: ed.Caller, pc: int(ed.PC)}
		if _, exists := e.nodes[sref]; !exists {
			continue // posting site not in an event method: unmodeled
		}
		if !e.siteRunsOnce(ed.Caller, int(ed.PC)) {
			continue
		}
		s := e.node(sref)
		begin := e.node(nodeRef{kind: nBegin, method: m.ID})
		e.addEdge(s, begin, ed.Kind.String(), false)
		if ed.Kind == KindRPC {
			// rpc blocks: the handler's end precedes the call's return.
			end := e.node(nodeRef{kind: nEnd, method: m.ID})
			e.addEdge(end, s, "rpc-return", false)
		}
	}

	// Join edges: end(thread) precedes a join whose handle chases to
	// the thread's unique fork site.
	for _, m := range prog.Methods {
		if !e.isEvent(m.ID) {
			continue
		}
		r := e.cg.Reach[m.ID]
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Code != dvm.CIntrinsic || in.Intr != dvm.IntrJoin || !r.Reachable(pc) {
				continue
			}
			fsite, ok := chaseUnique(m, r, pc, argReg(in, 0))
			if !ok || fsite < 0 || m.Code[fsite].Code != dvm.CIntrinsic ||
				m.Code[fsite].Intr != dvm.IntrFork {
				continue
			}
			var callee trace.MethodID
			found := false
			for _, ed := range e.cg.Callees[m.ID] {
				if ed.PC == trace.PC(fsite) && ed.Kind == KindFork {
					callee, found = ed.Callee, true
					break
				}
			}
			if !found {
				continue
			}
			ue, ok := e.uniqueEntry(callee)
			if !ok || ue.Caller != m.ID || ue.PC != trace.PC(fsite) || ue.Kind != KindFork {
				continue
			}
			if !e.siteRunsOnce(m.ID, int(fsite)) {
				continue
			}
			end := e.node(nodeRef{kind: nEnd, method: callee})
			j := e.node(nodeRef{kind: nSite, method: m.ID, pc: pc})
			e.addEdge(end, j, "join", false)
		}
	}

	e.buildListenerEdges()
	e.buildFIFOEdges()
}

// buildListenerEdges adds register-before-callback edges: every
// callback activation follows a fire that found it registered, hence
// follows its one registration site. Lint-only — uninstrumented
// listener ids leave no register/perform entries in recorded traces,
// so the dynamic model cannot confirm the order.
func (e *orderEngine) buildListenerEdges() {
	regSites := make(map[trace.MethodID][]nodeRef)
	for _, m := range e.cg.Prog.Methods {
		r := e.cg.Reach[m.ID]
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Code != dvm.CIntrinsic || in.Intr != dvm.IntrRegister || !r.Reachable(pc) {
				continue
			}
			callee, ok := e.cg.methodHandle(m, r, pc, argReg(in, 1))
			if !ok {
				continue // poisons every handle-taken method via Unresolved
			}
			regSites[callee.ID] = append(regSites[callee.ID],
				nodeRef{kind: nSite, method: m.ID, pc: pc})
		}
	}
	for _, m := range e.cg.Prog.Methods {
		cb := m.ID
		if !e.isEvent(cb) || e.cg.Unresolved[cb] || e.roots[cb] > 0 || len(e.entries[cb]) == 0 {
			continue
		}
		allFires := true
		for _, ed := range e.entries[cb] {
			if ed.Kind != KindListener {
				allFires = false
				break
			}
		}
		if !allFires || len(regSites[cb]) != 1 {
			continue
		}
		rref := regSites[cb][0]
		if _, exists := e.nodes[rref]; !exists {
			continue
		}
		if !e.siteRunsOnce(rref.method, rref.pc) {
			continue
		}
		e.addEdge(e.node(rref), e.node(nodeRef{kind: nBegin, method: cb}), "listener", true)
	}
}

// buildFIFOEdges mirrors the dynamic queue rules 1 and 3 for sends
// whose queue operand chases to a never-stored static field (a fixed
// queue for the whole run): if both posts target the same queue, the
// earlier post is at the back with a delay no larger than the later
// one's (or at the front against a back post), and the posts
// themselves are ordered, then the first event ends before the second
// begins. New edges can order more send pairs, so iterate to a
// fixpoint. Lint-only: adversarial replay may inflate delays past the
// static constants, so the prune relation keeps clear of it.
func (e *orderEngine) buildFIFOEdges() {
	stored := make(map[trace.FieldID]bool)
	for _, m := range e.cg.Prog.Methods {
		for pc := range m.Code {
			if c := m.Code[pc].Code; c == dvm.CSput || c == dvm.CSputInt {
				stored[m.Code[pc].Field] = true
			}
		}
	}
	var posts []postInfo
	for _, m := range e.cg.Prog.Methods {
		if !e.isEvent(m.ID) {
			continue
		}
		r := e.cg.Reach[m.ID]
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Code != dvm.CIntrinsic || (in.Intr != dvm.IntrSend && in.Intr != dvm.IntrSendFront) ||
				!r.Reachable(pc) {
				continue
			}
			sref := nodeRef{kind: nSite, method: m.ID, pc: pc}
			// The target must begin at this site alone (its begin edge
			// exists), or end(target) cannot be attributed to the post.
			var target trace.MethodID
			found := false
			for _, ed := range e.cg.Callees[m.ID] {
				if ed.PC == trace.PC(pc) && ed.Kind == KindPost {
					target, found = ed.Callee, true
					break
				}
			}
			if !found {
				continue
			}
			if ue, ok := e.uniqueEntry(target); !ok || ue.Caller != m.ID || ue.PC != trace.PC(pc) {
				continue
			}
			if !e.siteRunsOnce(m.ID, pc) {
				continue
			}
			qsite, ok := chaseUnique(m, r, pc, argReg(in, 0))
			if !ok || qsite < 0 {
				continue
			}
			qin := &m.Code[qsite]
			if (qin.Code != dvm.CSget && qin.Code != dvm.CSgetInt) || stored[qin.Field] {
				continue
			}
			p := postInfo{site: sref, target: target, qfield: qin.Field, front: in.Intr == dvm.IntrSendFront}
			if !p.front {
				dsite, ok := chaseUnique(m, r, pc, argReg(in, 2))
				if !ok || dsite < 0 || m.Code[dsite].Code != dvm.CConstInt {
					continue
				}
				p.delay = m.Code[dsite].Imm
			}
			posts = append(posts, p)
		}
	}
	for changed := true; changed; {
		changed = false
		for i := range posts {
			for j := range posts {
				a, b := &posts[i], &posts[j]
				if i == j || a.qfield != b.qfield {
					continue
				}
				fifo := (!a.front && !b.front && a.delay <= b.delay) || (a.front && !b.front)
				if !fifo || !e.siteBefore(a.site, b.site) {
					continue
				}
				end := e.node(nodeRef{kind: nEnd, method: a.target})
				begin := e.node(nodeRef{kind: nBegin, method: b.target})
				if !e.hasEdge(end, begin) {
					e.addEdge(end, begin, "fifo", true)
					changed = true
				}
			}
		}
	}
}

func (e *orderEngine) hasEdge(from, to int) bool {
	for _, ed := range e.out[from] {
		if ed.to == to {
			return true
		}
	}
	return false
}

// siteBefore: every occurrence of site a precedes every occurrence of
// site b (both are once-per-run sites in event methods).
func (e *orderEngine) siteBefore(a, b nodeRef) bool {
	if a.method == b.method {
		return e.multOf(a.method) == multOnce && e.intraBefore(a.method, a.pc, b.pc)
	}
	ai, aok := e.nodes[a]
	bi, bok := e.nodes[b]
	if !aok || !bok {
		return false
	}
	_, found := e.bfs([]int{ai}, map[int]bool{bi: true}, false)
	return found
}

// bfs searches forward from the sources to any target, returning the
// node path. dynOnly restricts to the prune relation's edges.
func (e *orderEngine) bfs(sources []int, targets map[int]bool, dynOnly bool) ([]int, bool) {
	parent := make(map[int]int)
	seen := make(map[int]bool)
	queue := append([]int(nil), sources...)
	for _, s := range sources {
		seen[s] = true
	}
	finish := func(n int) []int {
		var rev []int
		for x := n; ; {
			rev = append(rev, x)
			p, ok := parent[x]
			if !ok {
				break
			}
			x = p
		}
		path := make([]int, 0, len(rev))
		for i := len(rev) - 1; i >= 0; i-- {
			path = append(path, rev[i])
		}
		return path
	}
	for _, s := range sources {
		if targets[s] {
			return finish(s), true
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, ed := range e.out[n] {
			if seen[ed.to] || (dynOnly && ed.lintOnly) {
				continue
			}
			seen[ed.to] = true
			parent[ed.to] = n
			if targets[ed.to] {
				return finish(ed.to), true
			}
			queue = append(queue, ed.to)
		}
	}
	return nil, false
}

func (e *orderEngine) nodeLabel(id int) string {
	ref := e.refs[id]
	switch ref.kind {
	case nBegin:
		return "begin(" + e.methodName(ref.method) + ")"
	case nEnd:
		return "end(" + e.methodName(ref.method) + ")"
	default:
		return fmt.Sprintf("%s@%d", e.methodName(ref.method), ref.pc)
	}
}

func (e *orderEngine) edgeRule(from, to int, dynOnly bool) string {
	for _, ed := range e.out[from] {
		if ed.to == to && (!dynOnly || !ed.lintOnly) {
			return ed.rule
		}
	}
	return "?"
}

// queryPair derives a must-order between a pair's use and free sites,
// preferring the dyn-sound relation and the use-before-free direction.
func (e *orderEngine) queryPair(k detect.SiteKey) (OrderInfo, bool) {
	aU := e.anchorSite(k.UseMethod, int(k.UsePC))
	aF := e.anchorSite(k.FreeMethod, int(k.FreePC))
	if !aU.ok || !aF.ok {
		return OrderInfo{}, false
	}
	useName := e.methodName(k.UseMethod)
	freeName := e.methodName(k.FreeMethod)
	if aU.event == aF.event {
		if e.multOf(aU.event) != multOnce {
			return OrderInfo{}, false
		}
		ev := e.methodName(aU.event)
		if e.intraBefore(aU.event, aU.pc, aF.pc) {
			return OrderInfo{UseBeforeFree: true, DynSound: true, Witness: []string{fmt.Sprintf(
				"use %s@%d precedes free %s@%d: program order in single-run event %s (no CFG path free->use)",
				useName, k.UsePC, freeName, k.FreePC, ev)}}, true
		}
		if e.intraBefore(aU.event, aF.pc, aU.pc) {
			return OrderInfo{UseBeforeFree: false, DynSound: true, Witness: []string{fmt.Sprintf(
				"free %s@%d precedes use %s@%d: program order in single-run event %s (no CFG path use->free)",
				freeName, k.FreePC, useName, k.UsePC, ev)}}, true
		}
		return OrderInfo{}, false
	}
	for _, dynOnly := range []bool{true, false} {
		for _, useFirst := range []bool{true, false} {
			a1, a2 := aU, aF
			if !useFirst {
				a1, a2 = aF, aU
			}
			path, ok := e.crossQuery(a1, a2, dynOnly)
			if !ok {
				continue
			}
			w := e.renderWitness(k, useFirst, dynOnly, a1, a2, path)
			return OrderInfo{UseBeforeFree: useFirst, DynSound: dynOnly, Witness: w}, true
		}
	}
	return OrderInfo{}, false
}

// crossQuery searches for a path proving every occurrence anchored at
// a1 precedes every occurrence anchored at a2 (distinct events).
// Sources: a1's event end, plus modeled sites that a1's position
// precedes in every instance — valid only when a1's event runs once.
// Targets: a2's event begin (every occurrence of a2 follows its own
// instance's begin), plus modeled sites dominating a2's position
// (such a site ran before a2 in a2's instance).
func (e *orderEngine) crossQuery(a1, a2 anchor, dynOnly bool) ([]int, bool) {
	if e.multOf(a1.event) != multOnce {
		return nil, false
	}
	var sources []int
	if end, ok := e.nodes[nodeRef{kind: nEnd, method: a1.event}]; ok {
		sources = append(sources, end)
	}
	targets := make(map[int]bool)
	if begin, ok := e.nodes[nodeRef{kind: nBegin, method: a2.event}]; ok {
		targets[begin] = true
	}
	dom := e.domOf(a2.event)
	for id, ref := range e.refs {
		if ref.kind != nSite {
			continue
		}
		if ref.method == a1.event && e.intraBefore(a1.event, a1.pc, ref.pc) {
			sources = append(sources, id)
		}
		if ref.method == a2.event && ref.pc != a2.pc && dom[a2.pc][ref.pc] {
			targets[id] = true
		}
	}
	if len(sources) == 0 || len(targets) == 0 {
		return nil, false
	}
	return e.bfs(sources, targets, dynOnly)
}

func (e *orderEngine) renderWitness(k detect.SiteKey, useFirst, dynOnly bool, a1, a2 anchor, path []int) []string {
	fromName, fromPC := e.methodName(k.UseMethod), int(k.UsePC)
	toName, toPC := e.methodName(k.FreeMethod), int(k.FreePC)
	fromKind, toKind := "use", "free"
	if !useFirst {
		fromName, fromPC, toName, toPC = toName, toPC, fromName, fromPC
		fromKind, toKind = toKind, fromKind
	}
	w := []string{fmt.Sprintf("%s %s@%d [event %s, runs once]", fromKind, fromName, fromPC,
		e.methodName(a1.event))}
	w = append(w, fmt.Sprintf("-> %s [po]", e.nodeLabel(path[0])))
	for i := 1; i < len(path); i++ {
		w = append(w, fmt.Sprintf("-> %s [%s]", e.nodeLabel(path[i]),
			e.edgeRule(path[i-1], path[i], dynOnly)))
	}
	last := e.refs[path[len(path)-1]]
	rel := "po"
	if last.kind == nSite {
		rel = "dominates"
	}
	w = append(w, fmt.Sprintf("-> %s %s@%d [%s]", toKind, toName, toPC, rel))
	return w
}

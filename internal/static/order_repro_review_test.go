package static

import (
	"testing"

	"cafa/internal/detect"
	"cafa/internal/dvm"
)

// Review repro: the join site is conditionally skipped, so end(thread)
// is NOT ordered before the handler's end on every run — yet the
// engine derives a dyn-sound use-before-free order through the
// skipped join site (end(T) -> join -> end(handler) -> rpc-return).
func TestOrderConditionalJoinUnsound(t *testing.T) {
	p := assemble(t, `
.method tbody(h) regs=2
    iget v1, h, ptr
    return-void
.end

.method handler(h) regs=4
    const-method v1, tbody
    fork v1, h -> v2
    iget v3, h, flag
    if-eqz v3, skip
    join v2
skip:
    return-void
.end

.method root(h) regs=5
    sget-int v1, svc
    const-method v2, handler
    rpc v1, v2, h -> v3
    const-null v4
    iput v4, h, ptr
    return-void
.end
`)
	k := detect.SiteKey{
		UseMethod: methodID(t, p, "tbody"), UsePC: pcOf(t, p, "tbody", dvm.CIget),
		FreeMethod: methodID(t, p, "root"), FreePC: pcOf(t, p, "root", dvm.CIput),
	}
	o := ordersFor(t, p, []detect.SiteKey{k}, "root")
	info, ok := o.Lookup(k)
	if ok {
		t.Fatalf("engine derived an order despite the conditional join: %+v\nwitness:\n%s",
			info, witnessText(info))
	}
}

package static

import (
	"sort"

	"cafa/internal/dataflow"
	"cafa/internal/detect"
	"cafa/internal/dvm"
	"cafa/internal/trace"
)

// Pair is one statically-possible use-after-free candidate: a
// dereference whose pointer may come from a load of field Field, and
// a store of null to the same field. Its Key matches the dynamic
// detector's SiteKey exactly, so the two worlds cross-check by map
// lookup.
type Pair struct {
	Key detect.SiteKey
	// Load is the pointer-load site feeding the dereference.
	Load LoadSite
	// Guarded: the dereference is covered by a static null-test
	// (Guards pass) — a dynamic race here would be pruned as benign.
	Guarded bool
	// AllocSafe: the load is dominated by a fresh store of its field
	// (AllocSafe pass) — the use can never see a freed pointer.
	AllocSafe bool
}

// FreeSite is a static null store to a field.
type FreeSite struct {
	Method trace.MethodID
	PC     trace.PC
	Field  trace.FieldID
}

// FreeSites scans every method for stores whose value chases to a
// null constant — the static counterpart of the tracer's
// OpPtrWrite(null) free events.
func FreeSites(cg *CallGraph) []FreeSite {
	var out []FreeSite
	for _, m := range cg.Prog.Methods {
		r := cg.Reach[m.ID]
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Code != dvm.CIput && in.Code != dvm.CSput {
				continue
			}
			if !r.Reachable(pc) {
				continue
			}
			origin, ok := chaseUnique(m, r, pc, in.A)
			if ok && origin >= 0 && m.Code[origin].Code == dvm.CConstNull {
				out = append(out, FreeSite{Method: m.ID, PC: trace.PC(pc), Field: in.Field})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Field != b.Field {
			return a.Field < b.Field
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		return a.PC < b.PC
	})
	return out
}

// EnumeratePairs crosses every dereference-of-field-load with every
// null store to the same field. Array loads (Field 0) are excluded:
// array slots have no static identity. Incomplete resolutions still
// contribute their known sites — the pre-pass wants coverage, and a
// partially-resolved deref may genuinely read the field.
func EnumeratePairs(cg *CallGraph, resolutions map[dataflow.Key]Resolution,
	guards, allocSafe map[dataflow.Key]bool) []Pair {

	frees := FreeSites(cg)
	freesByField := make(map[trace.FieldID][]FreeSite)
	for _, f := range frees {
		freesByField[f.Field] = append(freesByField[f.Field], f)
	}

	var pairs []Pair
	for deref, res := range resolutions {
		for _, site := range res.Sites {
			if site.Field == 0 {
				continue
			}
			for _, free := range freesByField[site.Field] {
				pairs = append(pairs, Pair{
					Key: detect.SiteKey{
						Field:      site.Field,
						UseMethod:  deref.Method,
						UsePC:      deref.PC,
						FreeMethod: free.Method,
						FreePC:     free.PC,
					},
					Load:      site,
					Guarded:   guards[deref],
					AllocSafe: allocSafe[deref],
				})
			}
		}
	}
	// Full tiebreak: distinct load sites can produce the same Key (two
	// loads of one field feeding one deref), and a Key-only comparison
	// under a non-stable sort left their order to map iteration. The
	// Load fields break the tie so output is deterministic.
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.Key != b.Key {
			return a.Key.Less(b.Key)
		}
		if a.Load.Method != b.Load.Method {
			return a.Load.Method < b.Load.Method
		}
		if a.Load.PC != b.Load.PC {
			return a.Load.PC < b.Load.PC
		}
		return a.Load.Field < b.Load.Field
	})
	return pairs
}

// Verdict is the cross-check classification of a dynamic race against
// the static pairs.
type Verdict uint8

// Verdicts, in annotation precedence order.
const (
	// VerdictStaticallyGuarded: the race's dereference is covered by a
	// static null test — the dynamic heuristics should have pruned it,
	// and enabling static guard pruning will.
	VerdictStaticallyGuarded Verdict = iota
	// VerdictAllocSafe: the race's load is allocation-dominated — a
	// static intra-event-allocation witness.
	VerdictAllocSafe
	// VerdictStaticOrdered: the event-order pass proves the sites
	// must-ordered, yet the dynamic run reported a race — the
	// signature of a Type I false positive (an ordering rule the
	// recorded trace could not expose, e.g. an uninstrumented
	// listener registration).
	VerdictStaticOrdered
	// VerdictStaticConfirmed: the static pre-pass independently
	// enumerates this exact site pair.
	VerdictStaticConfirmed
	// VerdictUnmatched: no static pair exists for the reported sites —
	// the hallmark of a Type III mismatch (the dynamic heuristic
	// matched the dereference to the wrong pointer read) or of a free
	// outside the analyzed bytecode.
	VerdictUnmatched
)

func (v Verdict) String() string {
	switch v {
	case VerdictStaticallyGuarded:
		return "statically-guarded"
	case VerdictAllocSafe:
		return "alloc-safe"
	case VerdictStaticOrdered:
		return "static-ordered"
	case VerdictStaticConfirmed:
		return "static-confirmed"
	case VerdictUnmatched:
		return "static-unmatched"
	default:
		return "verdict?"
	}
}

// CheckedRace is a dynamic race annotated with its static verdict.
type CheckedRace struct {
	Race    detect.Race
	Verdict Verdict
	// OrderWitness is the event-order derivation behind a
	// VerdictStaticOrdered annotation.
	OrderWitness []string
}

// Gap is a statically-possible pair the dynamic run never reported —
// either the schedule did not exercise it, or a dynamic heuristic
// pruned it. Unexercised harmful pairs are the coverage signal a
// trace-bound detector cannot produce.
type Gap struct {
	Pair Pair
	// Ordered: the event-order pass proves the sites must-ordered, so
	// the pair is topology-safe, not a coverage hole. UseBeforeFree
	// and Witness carry the derivation.
	Ordered       bool
	UseBeforeFree bool
	Witness       []string
}

// CrossCheck annotates each dynamic race with its static verdict and
// returns the coverage gaps: unguarded, non-alloc-safe static pairs
// absent from the dynamic report, each annotated with the event-order
// pass's must-order when one exists (orders may be nil). Both slices
// come back in deterministic SiteKey order.
func CrossCheck(pairs []Pair, races []detect.Race, orders *Orders) ([]CheckedRace, []Gap) {
	byKey := make(map[detect.SiteKey]Pair, len(pairs))
	for _, p := range pairs {
		if _, ok := byKey[p.Key]; !ok {
			byKey[p.Key] = p
		}
	}
	checked := make([]CheckedRace, 0, len(races))
	reported := make(map[detect.SiteKey]bool, len(races))
	for _, r := range races {
		k := r.Key()
		reported[k] = true
		cr := CheckedRace{Race: r, Verdict: VerdictUnmatched}
		if p, ok := byKey[k]; ok {
			info, ordered := orders.Lookup(k)
			switch {
			case p.Guarded:
				cr.Verdict = VerdictStaticallyGuarded
			case p.AllocSafe:
				cr.Verdict = VerdictAllocSafe
			case ordered:
				cr.Verdict = VerdictStaticOrdered
				cr.OrderWitness = info.Witness
			default:
				cr.Verdict = VerdictStaticConfirmed
			}
		}
		checked = append(checked, cr)
	}
	sort.SliceStable(checked, func(i, j int) bool {
		return checked[i].Race.Key().Less(checked[j].Race.Key())
	})
	var gaps []Gap
	seenGap := make(map[detect.SiteKey]bool)
	for _, p := range pairs {
		if p.Guarded || p.AllocSafe || reported[p.Key] || seenGap[p.Key] {
			continue
		}
		seenGap[p.Key] = true
		g := Gap{Pair: p}
		if info, ok := orders.Lookup(p.Key); ok {
			g.Ordered = true
			g.UseBeforeFree = info.UseBeforeFree
			g.Witness = info.Witness
		}
		gaps = append(gaps, g)
	}
	sort.SliceStable(gaps, func(i, j int) bool { return gaps[i].Pair.Key.Less(gaps[j].Pair.Key) })
	return checked, gaps
}

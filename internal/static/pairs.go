package static

import (
	"sort"

	"cafa/internal/dataflow"
	"cafa/internal/detect"
	"cafa/internal/dvm"
	"cafa/internal/trace"
)

// Pair is one statically-possible use-after-free candidate: a
// dereference whose pointer may come from a load of field Field, and
// a store of null to the same field. Its Key matches the dynamic
// detector's SiteKey exactly, so the two worlds cross-check by map
// lookup.
type Pair struct {
	Key detect.SiteKey
	// Load is the pointer-load site feeding the dereference.
	Load LoadSite
	// Guarded: the dereference is covered by a static null-test
	// (Guards pass) — a dynamic race here would be pruned as benign.
	Guarded bool
	// AllocSafe: the load is dominated by a fresh store of its field
	// (AllocSafe pass) — the use can never see a freed pointer.
	AllocSafe bool
}

// FreeSite is a static null store to a field.
type FreeSite struct {
	Method trace.MethodID
	PC     trace.PC
	Field  trace.FieldID
}

// FreeSites scans every method for stores whose value chases to a
// null constant — the static counterpart of the tracer's
// OpPtrWrite(null) free events.
func FreeSites(cg *CallGraph) []FreeSite {
	var out []FreeSite
	for _, m := range cg.Prog.Methods {
		r := cg.Reach[m.ID]
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Code != dvm.CIput && in.Code != dvm.CSput {
				continue
			}
			if !r.Reachable(pc) {
				continue
			}
			origin, ok := chaseUnique(m, r, pc, in.A)
			if ok && origin >= 0 && m.Code[origin].Code == dvm.CConstNull {
				out = append(out, FreeSite{Method: m.ID, PC: trace.PC(pc), Field: in.Field})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Field != b.Field {
			return a.Field < b.Field
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		return a.PC < b.PC
	})
	return out
}

// EnumeratePairs crosses every dereference-of-field-load with every
// null store to the same field. Array loads (Field 0) are excluded:
// array slots have no static identity. Incomplete resolutions still
// contribute their known sites — the pre-pass wants coverage, and a
// partially-resolved deref may genuinely read the field.
func EnumeratePairs(cg *CallGraph, resolutions map[dataflow.Key]Resolution,
	guards, allocSafe map[dataflow.Key]bool) []Pair {

	frees := FreeSites(cg)
	freesByField := make(map[trace.FieldID][]FreeSite)
	for _, f := range frees {
		freesByField[f.Field] = append(freesByField[f.Field], f)
	}

	var pairs []Pair
	for deref, res := range resolutions {
		for _, site := range res.Sites {
			if site.Field == 0 {
				continue
			}
			for _, free := range freesByField[site.Field] {
				pairs = append(pairs, Pair{
					Key: detect.SiteKey{
						Field:      site.Field,
						UseMethod:  deref.Method,
						UsePC:      deref.PC,
						FreeMethod: free.Method,
						FreePC:     free.PC,
					},
					Load:      site,
					Guarded:   guards[deref],
					AllocSafe: allocSafe[deref],
				})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key.Less(pairs[j].Key) })
	return pairs
}

// Verdict is the cross-check classification of a dynamic race against
// the static pairs.
type Verdict uint8

// Verdicts, in annotation precedence order.
const (
	// VerdictStaticallyGuarded: the race's dereference is covered by a
	// static null test — the dynamic heuristics should have pruned it,
	// and enabling static guard pruning will.
	VerdictStaticallyGuarded Verdict = iota
	// VerdictAllocSafe: the race's load is allocation-dominated — a
	// static intra-event-allocation witness.
	VerdictAllocSafe
	// VerdictStaticConfirmed: the static pre-pass independently
	// enumerates this exact site pair.
	VerdictStaticConfirmed
	// VerdictUnmatched: no static pair exists for the reported sites —
	// the hallmark of a Type III mismatch (the dynamic heuristic
	// matched the dereference to the wrong pointer read) or of a free
	// outside the analyzed bytecode.
	VerdictUnmatched
)

func (v Verdict) String() string {
	switch v {
	case VerdictStaticallyGuarded:
		return "statically-guarded"
	case VerdictAllocSafe:
		return "alloc-safe"
	case VerdictStaticConfirmed:
		return "static-confirmed"
	case VerdictUnmatched:
		return "static-unmatched"
	default:
		return "verdict?"
	}
}

// CheckedRace is a dynamic race annotated with its static verdict.
type CheckedRace struct {
	Race    detect.Race
	Verdict Verdict
}

// Gap is a statically-possible pair the dynamic run never reported —
// either the schedule did not exercise it, or a dynamic heuristic
// pruned it. Unexercised harmful pairs are the coverage signal a
// trace-bound detector cannot produce.
type Gap struct {
	Pair Pair
}

// CrossCheck annotates each dynamic race with its static verdict and
// returns the coverage gaps: unguarded, non-alloc-safe static pairs
// absent from the dynamic report.
func CrossCheck(pairs []Pair, races []detect.Race) ([]CheckedRace, []Gap) {
	byKey := make(map[detect.SiteKey]Pair, len(pairs))
	for _, p := range pairs {
		byKey[p.Key] = p
	}
	checked := make([]CheckedRace, 0, len(races))
	reported := make(map[detect.SiteKey]bool, len(races))
	for _, r := range races {
		k := r.Key()
		reported[k] = true
		cr := CheckedRace{Race: r, Verdict: VerdictUnmatched}
		if p, ok := byKey[k]; ok {
			switch {
			case p.Guarded:
				cr.Verdict = VerdictStaticallyGuarded
			case p.AllocSafe:
				cr.Verdict = VerdictAllocSafe
			default:
				cr.Verdict = VerdictStaticConfirmed
			}
		}
		checked = append(checked, cr)
	}
	var gaps []Gap
	for _, p := range pairs {
		if !p.Guarded && !p.AllocSafe && !reported[p.Key] {
			gaps = append(gaps, Gap{Pair: p})
		}
	}
	return checked, gaps
}

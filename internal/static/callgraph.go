package static

import (
	"sort"

	"cafa/internal/dataflow"
	"cafa/internal/dvm"
	"cafa/internal/trace"
)

// EdgeKind classifies how control reaches a callee.
type EdgeKind uint8

// Edge kinds.
const (
	// KindCall: direct invoke-virtual / invoke-static / resolved
	// invoke-value in the same task.
	KindCall EdgeKind = iota
	// KindPost: send / send-front — the callee runs as a separate
	// looper event.
	KindPost
	// KindFork: fork — the callee runs as a new thread.
	KindFork
	// KindRPC: rpc — the callee runs on a binder thread in the
	// service process.
	KindRPC
	// KindListener: register/fire pair matched by listener id — the
	// callee runs inline at the fire site.
	KindListener
)

func (k EdgeKind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindPost:
		return "post"
	case KindFork:
		return "fork"
	case KindRPC:
		return "rpc"
	case KindListener:
		return "listener"
	default:
		return "edge?"
	}
}

// Edge is one call-graph edge: the call site in Caller transfers
// control (possibly asynchronously) to Callee.
type Edge struct {
	Caller trace.MethodID
	PC     trace.PC
	Callee trace.MethodID
	Kind   EdgeKind
	// ArgRegs[i] is the caller register whose value becomes callee
	// parameter i. ArgsKnown is false when the binding could not be
	// resolved (the callee's parameters must then be treated as
	// unknown).
	ArgRegs   []dvm.Reg
	ArgsKnown bool
}

// CallGraph is the whole-program call graph plus the per-method
// reaching-definitions solutions every static pass shares.
type CallGraph struct {
	Prog *dvm.Program
	// Reach holds the intra-method reaching-definitions solution for
	// every method, keyed by method ID.
	Reach map[trace.MethodID]*dataflow.Reach
	// Callers and Callees index edges by the callee / caller method.
	Callers map[trace.MethodID][]Edge
	Callees map[trace.MethodID][]Edge
	// Unresolved marks methods whose parameters cannot be trusted to
	// the static caller set: some call site takes an unresolvable
	// method handle or listener id, so any handle-taken method may be
	// invoked with unknown arguments. (Methods with zero static
	// callers are implicitly unresolved too: the runtime wires entry
	// points — thread bodies, injected events — outside the bytecode,
	// the closed-world caveat of this analysis.)
	Unresolved map[trace.MethodID]bool

	methods map[trace.MethodID]*dvm.Method
}

// MethodByID returns a method by its trace ID.
func (cg *CallGraph) MethodByID(id trace.MethodID) *dvm.Method { return cg.methods[id] }

// BuildCallGraph scans every method's invoke instructions and
// intrinsic call sites (send, fork, rpc, register/fire) and resolves
// method-handle and listener-id operands through the
// reaching-definitions solution.
func BuildCallGraph(p *dvm.Program) *CallGraph {
	cg := &CallGraph{
		Prog:       p,
		Reach:      make(map[trace.MethodID]*dataflow.Reach, len(p.Methods)),
		Callers:    make(map[trace.MethodID][]Edge),
		Callees:    make(map[trace.MethodID][]Edge),
		Unresolved: make(map[trace.MethodID]bool),
		methods:    make(map[trace.MethodID]*dvm.Method, len(p.Methods)),
	}
	for _, m := range p.Methods {
		cg.methods[m.ID] = m
		cg.Reach[m.ID] = dataflow.Analyze(m)
	}

	// Listener registrations and fires are matched by constant id in a
	// second pass, after all registrations are known.
	type registration struct {
		callee *dvm.Method
	}
	type fireSite struct {
		caller *dvm.Method
		pc     int
		argReg dvm.Reg
		hasArg bool
		lid    int64
		known  bool
	}
	regs := make(map[int64][]registration)
	var fires []fireSite
	anyUnresolvedHandle := false
	handleTaken := make(map[trace.MethodID]bool)

	for _, m := range p.Methods {
		r := cg.Reach[m.ID]
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Code == dvm.CConstMethod {
				handleTaken[p.Methods[in.MethodIdx].ID] = true
			}
			if !r.Reachable(pc) {
				continue
			}
			switch in.Code {
			case dvm.CInvokeVirtual, dvm.CInvokeStatic:
				// Args line up with callee parameters directly; for
				// invoke-virtual, Args[0] is the receiver and also
				// parameter 0.
				callee := p.Methods[in.MethodIdx]
				cg.addEdge(Edge{
					Caller: m.ID, PC: trace.PC(pc), Callee: callee.ID, Kind: KindCall,
					ArgRegs: bindArgs(in.Args, callee.NumParams), ArgsKnown: len(in.Args) >= callee.NumParams,
				})
			case dvm.CInvokeValue:
				if callee, ok := cg.methodHandle(m, r, pc, in.A); ok {
					cg.addEdge(Edge{
						Caller: m.ID, PC: trace.PC(pc), Callee: callee.ID, Kind: KindCall,
						ArgRegs: bindArgs(in.Args, callee.NumParams), ArgsKnown: len(in.Args) >= callee.NumParams,
					})
				} else {
					anyUnresolvedHandle = true
				}
			case dvm.CIntrinsic:
				switch in.Intr {
				case dvm.IntrSend: // send(queue, method, delay, arg)
					cg.intrinsicEdge(m, r, pc, in, 1, 3, &anyUnresolvedHandle)
				case dvm.IntrSendFront: // sendFront(queue, method, arg)
					cg.intrinsicEdge(m, r, pc, in, 1, 2, &anyUnresolvedHandle)
				case dvm.IntrFork: // fork(method, arg)
					cg.intrinsicEdge(m, r, pc, in, 0, 1, &anyUnresolvedHandle)
				case dvm.IntrRPC: // rpc(service, method, arg)
					cg.intrinsicEdge(m, r, pc, in, 1, 2, &anyUnresolvedHandle)
				case dvm.IntrRegister: // register(listener, method)
					callee, ok := cg.methodHandle(m, r, pc, argReg(in, 1))
					if !ok {
						anyUnresolvedHandle = true
						continue
					}
					if lid, ok := cg.constInt(m, r, pc, argReg(in, 0)); ok {
						regs[lid] = append(regs[lid], registration{callee: callee})
					} else {
						// Listener id unknown: any fire may reach it.
						cg.Unresolved[callee.ID] = true
					}
				case dvm.IntrFire: // fire(listener, arg)
					fs := fireSite{caller: m, pc: pc}
					if len(in.Args) > 1 {
						fs.argReg, fs.hasArg = in.Args[1], true
					}
					fs.lid, fs.known = cg.constInt(m, r, pc, argReg(in, 0))
					fires = append(fires, fs)
				}
			}
		}
	}

	for _, fs := range fires {
		if !fs.known {
			// Unknown fire target: every registered handler may run
			// with unknown arguments.
			for _, rs := range regs {
				for _, reg := range rs {
					cg.Unresolved[reg.callee.ID] = true
				}
			}
			continue
		}
		for _, reg := range regs[fs.lid] {
			e := Edge{
				Caller: fs.caller.ID, PC: trace.PC(fs.pc), Callee: reg.callee.ID,
				Kind: KindListener, ArgsKnown: true,
			}
			if reg.callee.NumParams == 1 {
				if fs.hasArg {
					e.ArgRegs = []dvm.Reg{fs.argReg}
				} else {
					e.ArgsKnown = false
				}
			}
			cg.addEdge(e)
		}
	}

	// A single unresolvable handle poisons every handle-taken method:
	// the unknown call site could target any of them.
	if anyUnresolvedHandle {
		for id := range handleTaken {
			cg.Unresolved[id] = true
		}
	}
	for id := range cg.Callers {
		sort.Slice(cg.Callers[id], func(i, j int) bool {
			a, b := cg.Callers[id][i], cg.Callers[id][j]
			if a.Caller != b.Caller {
				return a.Caller < b.Caller
			}
			return a.PC < b.PC
		})
	}
	return cg
}

func (cg *CallGraph) addEdge(e Edge) {
	cg.Callers[e.Callee] = append(cg.Callers[e.Callee], e)
	cg.Callees[e.Caller] = append(cg.Callees[e.Caller], e)
}

// intrinsicEdge adds an edge for a handler-posting intrinsic whose
// method handle is argument methodArg and whose payload (the handler's
// single parameter, if it takes one) is argument payloadArg.
func (cg *CallGraph) intrinsicEdge(m *dvm.Method, r *dataflow.Reach, pc int, in *dvm.Instr, methodArg, payloadArg int, unresolved *bool) {
	callee, ok := cg.methodHandle(m, r, pc, argReg(in, methodArg))
	if !ok {
		*unresolved = true
		return
	}
	kind := KindPost
	switch in.Intr {
	case dvm.IntrFork:
		kind = KindFork
	case dvm.IntrRPC:
		kind = KindRPC
	}
	e := Edge{Caller: m.ID, PC: trace.PC(pc), Callee: callee.ID, Kind: kind, ArgsKnown: true}
	if callee.NumParams >= 1 {
		if payloadArg < len(in.Args) {
			e.ArgRegs = []dvm.Reg{in.Args[payloadArg]}
		} else {
			e.ArgsKnown = false
		}
	}
	cg.addEdge(e)
}

// argReg returns argument register i of an intrinsic, defaulting to
// an out-of-range register that will fail resolution.
func argReg(in *dvm.Instr, i int) dvm.Reg {
	if i < len(in.Args) {
		return in.Args[i]
	}
	return ^dvm.Reg(0)
}

// methodHandle chases (pc, reg) to a unique const-method definition.
func (cg *CallGraph) methodHandle(m *dvm.Method, r *dataflow.Reach, pc int, reg dvm.Reg) (*dvm.Method, bool) {
	site, ok := chaseUnique(m, r, pc, reg)
	if !ok || site < 0 {
		return nil, false
	}
	in := &m.Code[site]
	if in.Code != dvm.CConstMethod {
		return nil, false
	}
	return cg.Prog.Methods[in.MethodIdx], true
}

// constInt chases (pc, reg) to a unique const-int definition.
func (cg *CallGraph) constInt(m *dvm.Method, r *dataflow.Reach, pc int, reg dvm.Reg) (int64, bool) {
	site, ok := chaseUnique(m, r, pc, reg)
	if !ok || site < 0 {
		return 0, false
	}
	in := &m.Code[site]
	if in.Code != dvm.CConstInt {
		return 0, false
	}
	return in.Imm, true
}

// chaseUnique follows the unique reaching definition of (pc, reg)
// through move chains and returns the terminal definition site
// (negative = parameter). The chase is bounded by the method length,
// which any acyclic move chain cannot exceed.
func chaseUnique(m *dvm.Method, r *dataflow.Reach, pc int, reg dvm.Reg) (int32, bool) {
	site, ok := r.UniqueDef(pc, reg)
	for hops := 0; ok && site >= 0 && m.Code[site].Code == dvm.CMove; hops++ {
		if hops > len(m.Code) {
			return 0, false
		}
		site, ok = r.UniqueDef(int(site), m.Code[site].B)
	}
	return site, ok
}

// bindArgs truncates or passes through the argument registers for a
// callee expecting numParams parameters.
func bindArgs(args []dvm.Reg, numParams int) []dvm.Reg {
	if len(args) > numParams {
		return args[:numParams]
	}
	return args
}

package static

import (
	"testing"

	"cafa/internal/detect"
	"cafa/internal/dvm"
)

// Review repro: the register site sits in a CFG cycle, so one fire
// invokes the callback once per dynamic registration — more than one
// activation. The engine must not claim the callback runs once.
func TestOrderListenerRegisterInLoopMult(t *testing.T) {
	p := assemble(t, `
.method cb(h) regs=3
    iget v1, h, ptr
    const-null v2
    iput v2, h, ptr
    return-void
.end

.method root(h) regs=6
loop:
    const-int v1, #7
    const-method v2, cb
    register v1, v2
    iget v3, h, ptr
    if-eqz v3, loop
    const-int v4, #7
    fire v4, h
    return-void
.end
`)
	cb := methodID(t, p, "cb")
	k := detect.SiteKey{
		UseMethod: cb, UsePC: pcOf(t, p, "cb", dvm.CIget),
		FreeMethod: cb, FreePC: pcOf(t, p, "cb", dvm.CIput),
	}
	o := ordersFor(t, p, []detect.SiteKey{k}, "root")
	if info, ok := o.Lookup(k); ok {
		t.Fatalf("engine ordered sites of a multiply-registered callback: %+v\nwitness:\n%s",
			info, witnessText(info))
	}
}

package static

import (
	"testing"

	"cafa/internal/asm"
	"cafa/internal/dataflow"
	"cafa/internal/detect"
	"cafa/internal/dvm"
	"cafa/internal/trace"
)

func assemble(t *testing.T, src string) *dvm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func methodID(t *testing.T, p *dvm.Program, name string) trace.MethodID {
	t.Helper()
	return p.Methods[p.MustMethod(name)].ID
}

const runSink = `
.method run(this) regs=1
    return-void
.end
`

func TestCallGraphDirectAndIntrinsicEdges(t *testing.T) {
	p := assemble(t, runSink+`
.method handler(arg) regs=2
    invoke-virtual run, arg
    return-void
.end

.method body(arg) regs=1
    return-void
.end

.method poster(h) regs=6
    iget v4, h, ptr
    sget-int v1, mainQ
    const-method v2, handler
    const-int v3, #0
    send v1, v2, v3, v4
    const-method v5, body
    fork v5, v4 -> v3
    return-void
.end
`)
	cg := BuildCallGraph(p)
	handler := methodID(t, p, "handler")
	body := methodID(t, p, "body")
	poster := methodID(t, p, "poster")

	post := cg.Callers[handler]
	if len(post) != 1 || post[0].Kind != KindPost || post[0].Caller != poster ||
		!post[0].ArgsKnown || len(post[0].ArgRegs) != 1 || post[0].ArgRegs[0] != 4 {
		t.Errorf("handler callers = %+v, want one post edge from poster binding v4", post)
	}
	forkE := cg.Callers[body]
	if len(forkE) != 1 || forkE[0].Kind != KindFork || !forkE[0].ArgsKnown {
		t.Errorf("body callers = %+v, want one fork edge", forkE)
	}
	if cg.Unresolved[handler] || cg.Unresolved[body] {
		t.Errorf("resolved handles marked Unresolved")
	}
	// run is invoked directly from handler.
	run := methodID(t, p, "run")
	if calls := cg.Callers[run]; len(calls) != 1 || calls[0].Kind != KindCall || calls[0].Caller != handler {
		t.Errorf("run callers = %+v, want one direct call from handler", calls)
	}
}

func TestCallGraphListenerEdges(t *testing.T) {
	p := assemble(t, runSink+`
.method cb(h) regs=1
    return-void
.end

.method reg(h) regs=4
    const-int v1, #7
    const-method v2, cb
    register v1, v2
    return-void
.end

.method firer(h) regs=3
    const-int v1, #7
    fire v1, h
    return-void
.end
`)
	cg := BuildCallGraph(p)
	cb := methodID(t, p, "cb")
	edges := cg.Callers[cb]
	if len(edges) != 1 || edges[0].Kind != KindListener || edges[0].Caller != methodID(t, p, "firer") {
		t.Errorf("cb callers = %+v, want one listener edge from firer", edges)
	}
	if len(edges) == 1 && (len(edges[0].ArgRegs) != 1 || !edges[0].ArgsKnown) {
		t.Errorf("listener edge binding = %+v, want fire arg bound to param 0", edges[0])
	}
}

func TestInterprocParamResolution(t *testing.T) {
	// The interprocedural Type III pattern: the deref sits in a
	// helper, the aliased loads in the caller. The intra-method pass
	// says unknown (parameter); the interprocedural pass resolves the
	// deref to the ptrA load — not the dynamically-nearer ptrB read.
	p := assemble(t, runSink+`
.method helper(obj) regs=1
    invoke-virtual run, obj
    return-void
.end

.method f(h) regs=4
    iget v1, h, ptrA
    iget v2, h, ptrB
    invoke-static helper, v1
    return-void
.end
`)
	helper := methodID(t, p, "helper")
	f := methodID(t, p, "f")

	intra := dataflow.DerefSources(p)
	if got := intra[dataflow.Key{Method: helper, PC: 0}]; got.Kind != dataflow.SrcUnknown {
		t.Fatalf("intra helper deref = %+v, want SrcUnknown (parameter)", got)
	}

	_, srcs := ResolveDerefs(BuildCallGraph(p))
	got := srcs[dataflow.Key{Method: helper, PC: 0}]
	if got.Kind != dataflow.SrcLoad || got.LoadPC != 0 || got.LoadMethod != f {
		t.Errorf("interproc helper deref = %+v, want load at f pc 0", got)
	}
}

func TestInterprocReturnResolution(t *testing.T) {
	p := assemble(t, runSink+`
.method getp(h) regs=2
    iget v1, h, ptr
    return v1
.end

.method g(h) regs=3
    invoke-static getp, h -> v1
    invoke-virtual run, v1
    return-void
.end
`)
	g := methodID(t, p, "g")
	getp := methodID(t, p, "getp")
	_, srcs := ResolveDerefs(BuildCallGraph(p))
	got := srcs[dataflow.Key{Method: g, PC: 1}]
	if got.Kind != dataflow.SrcLoad || got.LoadPC != 0 || got.LoadMethod != getp {
		t.Errorf("call-result deref = %+v, want load at getp pc 0", got)
	}
}

func TestInterprocParamDiamondSameLoad(t *testing.T) {
	// Diamond call graph: top calls mid1 and mid2, both forward the
	// same value to bottom. The two paths join at bottom's parameter;
	// since both bind the one load in top, the union stays a single
	// site and the projection keeps the precise SrcLoad answer.
	p := assemble(t, runSink+`
.method bottom(obj) regs=1
    invoke-virtual run, obj
    return-void
.end

.method mid1(x) regs=1
    invoke-static bottom, x
    return-void
.end

.method mid2(y) regs=1
    invoke-static bottom, y
    return-void
.end

.method top(h) regs=3
    iget v1, h, ptr
    invoke-static mid1, v1
    invoke-static mid2, v1
    return-void
.end
`)
	bottom := methodID(t, p, "bottom")
	top := methodID(t, p, "top")
	res, srcs := ResolveDerefs(BuildCallGraph(p))
	got := srcs[dataflow.Key{Method: bottom, PC: 0}]
	if got.Kind != dataflow.SrcLoad || got.LoadPC != 0 || got.LoadMethod != top {
		t.Errorf("diamond same-load deref = %+v, want load at top pc 0", got)
	}
	if r := res[dataflow.Key{Method: bottom, PC: 0}]; r.Incomplete || len(r.Sites) != 1 {
		t.Errorf("diamond same-load resolution = %+v, want one complete site", r)
	}
}

func TestInterprocParamDiamondDistinctLoads(t *testing.T) {
	// Same diamond, but each path binds a different load. The union
	// is complete (both origins known) yet ambiguous, so the
	// projection must fall back to SrcUnknown rather than pick one.
	p := assemble(t, runSink+`
.method bottom(obj) regs=1
    invoke-virtual run, obj
    return-void
.end

.method mid1(x) regs=1
    invoke-static bottom, x
    return-void
.end

.method mid2(y) regs=1
    invoke-static bottom, y
    return-void
.end

.method top(h) regs=3
    iget v1, h, ptrA
    iget v2, h, ptrB
    invoke-static mid1, v1
    invoke-static mid2, v2
    return-void
.end
`)
	bottom := methodID(t, p, "bottom")
	res, srcs := ResolveDerefs(BuildCallGraph(p))
	if got := srcs[dataflow.Key{Method: bottom, PC: 0}]; got.Kind != dataflow.SrcUnknown {
		t.Errorf("diamond distinct-loads deref = %+v, want SrcUnknown", got)
	}
	r := res[dataflow.Key{Method: bottom, PC: 0}]
	if r.Incomplete || len(r.Sites) != 2 {
		t.Errorf("diamond distinct-loads resolution = %+v, want two complete sites", r)
	}
}

func TestInterprocReturnDiamond(t *testing.T) {
	// The return-side diamond: the callee returns one of two loads
	// depending on a branch; the caller's deref of the call result
	// unions both return sites — complete but ambiguous, SrcUnknown.
	p := assemble(t, runSink+`
.method pick(h, c) regs=4
    if-eqz c, other
    iget v2, h, ptrA
    return v2
other:
    iget v3, h, ptrB
    return v3
.end

.method g(h) regs=3
    invoke-static pick, h, h -> v1
    invoke-virtual run, v1
    return-void
.end
`)
	g := methodID(t, p, "g")
	res, srcs := ResolveDerefs(BuildCallGraph(p))
	if got := srcs[dataflow.Key{Method: g, PC: 1}]; got.Kind != dataflow.SrcUnknown {
		t.Errorf("diamond return deref = %+v, want SrcUnknown", got)
	}
	r := res[dataflow.Key{Method: g, PC: 1}]
	if r.Incomplete || len(r.Sites) != 2 {
		t.Errorf("diamond return resolution = %+v, want two complete sites", r)
	}
}

func TestInterprocSendBinding(t *testing.T) {
	p := assemble(t, runSink+`
.method handler(arg) regs=2
    invoke-virtual run, arg
    return-void
.end

.method poster(h) regs=6
    iget v4, h, ptr
    sget-int v1, mainQ
    const-method v2, handler
    const-int v3, #0
    send v1, v2, v3, v4
    return-void
.end
`)
	handler := methodID(t, p, "handler")
	poster := methodID(t, p, "poster")
	_, srcs := ResolveDerefs(BuildCallGraph(p))
	got := srcs[dataflow.Key{Method: handler, PC: 0}]
	if got.Kind != dataflow.SrcLoad || got.LoadPC != 0 || got.LoadMethod != poster {
		t.Errorf("posted handler deref = %+v, want load at poster pc 0", got)
	}
}

func TestClosedWorldParamsStayUnknown(t *testing.T) {
	// A method with no static callers is a runtime entry point; its
	// parameter derefs must resolve to SrcUnknown so the detector
	// falls back to the dynamic heuristic.
	p := assemble(t, runSink+`
.method entry(h) regs=3
    iget v1, h, ptr
    invoke-virtual run, v1
    return-void
.end
`)
	entry := methodID(t, p, "entry")
	res, srcs := ResolveDerefs(BuildCallGraph(p))
	// pc 0 derefs the parameter h.
	if got := srcs[dataflow.Key{Method: entry, PC: 0}]; got.Kind != dataflow.SrcUnknown {
		t.Errorf("entry param deref = %+v, want SrcUnknown", got)
	}
	if got := res[dataflow.Key{Method: entry, PC: 0}]; !got.Incomplete {
		t.Errorf("entry param resolution = %+v, want Incomplete", got)
	}
	// The local load still resolves.
	if got := srcs[dataflow.Key{Method: entry, PC: 1}]; got.Kind != dataflow.SrcLoad || got.LoadPC != 0 || got.LoadMethod != 0 {
		t.Errorf("entry local deref = %+v, want intra-method load at pc 0", got)
	}
}

func TestInterprocAgreesWithIntraWhereIntraResolves(t *testing.T) {
	// The no-regression property the detector wiring relies on: where
	// the intra-method pass gives a definite answer, the
	// interprocedural projection gives the same one.
	p := assemble(t, runSink+`
.method a(h) regs=4
    iget v1, h, ptr
    move v2, v1
    invoke-virtual run, v2
    new v3, Obj
    invoke-virtual run, v3
    return-void
.end
`)
	intra := dataflow.DerefSources(p)
	_, inter := ResolveDerefs(BuildCallGraph(p))
	for k, is := range intra {
		if is.Kind == dataflow.SrcUnknown {
			continue
		}
		if got := inter[k]; got != is {
			t.Errorf("site %+v: intra %+v but interproc %+v", k, is, got)
		}
	}
}

func TestStaticGuards(t *testing.T) {
	p := assemble(t, runSink+`
.method onFocus(act) regs=3
    iget v1, act, ptr
    if-eqz v1, skip
    invoke-virtual run, v1
skip:
    return-void
.end

.method unguarded(act) regs=3
    iget v1, act, ptr
    invoke-virtual run, v1
    return-void
.end
`)
	guards := Guards(BuildCallGraph(p))
	onFocus := methodID(t, p, "onFocus")
	if !guards[dataflow.Key{Method: onFocus, PC: 2}] {
		t.Errorf("guarded deref not classified; guards = %v", guards)
	}
	ung := methodID(t, p, "unguarded")
	if guards[dataflow.Key{Method: ung, PC: 1}] {
		t.Errorf("unguarded deref wrongly classified as guarded")
	}
	// The iget itself derefs the (untested) holder: must not be guarded.
	if guards[dataflow.Key{Method: onFocus, PC: 0}] {
		t.Errorf("holder deref wrongly classified as guarded")
	}
}

func TestStaticGuardIgnoresOtherOrigin(t *testing.T) {
	// The branch tests ptrA but the deref uses ptrB: no guard.
	p := assemble(t, runSink+`
.method mixed(act) regs=4
    iget v1, act, ptrA
    iget v2, act, ptrB
    if-eqz v1, skip
    invoke-virtual run, v2
skip:
    return-void
.end
`)
	guards := Guards(BuildCallGraph(p))
	mixed := methodID(t, p, "mixed")
	if guards[dataflow.Key{Method: mixed, PC: 3}] {
		t.Errorf("deref of different origin wrongly guarded")
	}
}

func TestAllocSafe(t *testing.T) {
	p := assemble(t, runSink+`
.method onResume(act) regs=3
    new v1, Handler
    iput v1, act, ptr
    iget v2, act, ptr
    invoke-virtual run, v2
    return-void
.end

.method stale(act) regs=3
    iget v1, act, ptr
    invoke-virtual run, v1
    return-void
.end

.method clobbered(act) regs=4
    new v1, Handler
    iput v1, act, ptr
    invoke-virtual run, v1
    iget v2, act, ptr
    invoke-virtual run, v2
    return-void
.end
`)
	safe := AllocSafe(BuildCallGraph(p))
	onResume := methodID(t, p, "onResume")
	if !safe[dataflow.Key{Method: onResume, PC: 3}] {
		t.Errorf("alloc-dominated deref not classified; safe = %v", safe)
	}
	stale := methodID(t, p, "stale")
	if safe[dataflow.Key{Method: stale, PC: 1}] {
		t.Errorf("plain load wrongly alloc-safe")
	}
	// After a call the fresh-field set is cleared: the reload may see
	// anything a callee stored.
	clob := methodID(t, p, "clobbered")
	if safe[dataflow.Key{Method: clob, PC: 4}] {
		t.Errorf("post-call load wrongly alloc-safe")
	}
}

func TestNonEscaping(t *testing.T) {
	p := assemble(t, runSink+`
.method local(h) regs=3
    new v1, Scratch
    array-len v2, v1
    return-void
.end

.method leaks(h) regs=2
    new v1, Handler
    iput v1, h, ptr
    return-void
.end

.method passed(h) regs=2
    new v1, Handler
    invoke-virtual run, v1
    return-void
.end
`)
	ne := NonEscaping(BuildCallGraph(p))
	if !ne[dataflow.Key{Method: methodID(t, p, "local"), PC: 0}] {
		t.Errorf("local-only allocation not classified non-escaping")
	}
	if ne[dataflow.Key{Method: methodID(t, p, "leaks"), PC: 0}] {
		t.Errorf("field-stored allocation wrongly non-escaping")
	}
	if ne[dataflow.Key{Method: methodID(t, p, "passed"), PC: 0}] {
		t.Errorf("call-argument allocation wrongly non-escaping")
	}
}

func TestPairEnumerationAndCrossCheck(t *testing.T) {
	p := assemble(t, runSink+`
.method use(h) regs=3
    iget v1, h, ptr
    invoke-virtual run, v1
    return-void
.end

.method guardedUse(h) regs=3
    iget v1, h, ptr
    if-eqz v1, skip
    invoke-virtual run, v1
skip:
    return-void
.end

.method free(h) regs=2
    const-null v1
    iput v1, h, ptr
    return-void
.end
`)
	st := Analyze(p)
	use := methodID(t, p, "use")
	gUse := methodID(t, p, "guardedUse")
	free := methodID(t, p, "free")
	ptr := p.FieldID("ptr")

	wantPlain := detect.SiteKey{Field: ptr, UseMethod: use, UsePC: 1, FreeMethod: free, FreePC: 1}
	wantGuarded := detect.SiteKey{Field: ptr, UseMethod: gUse, UsePC: 2, FreeMethod: free, FreePC: 1}
	var gotPlain, gotGuarded *Pair
	for i := range st.Pairs {
		switch st.Pairs[i].Key {
		case wantPlain:
			gotPlain = &st.Pairs[i]
		case wantGuarded:
			gotGuarded = &st.Pairs[i]
		}
	}
	if gotPlain == nil || gotPlain.Guarded || gotPlain.AllocSafe {
		t.Fatalf("plain pair = %+v, want unguarded pair %+v (pairs: %+v)", gotPlain, wantPlain, st.Pairs)
	}
	if gotGuarded == nil || !gotGuarded.Guarded {
		t.Fatalf("guarded pair = %+v, want guarded pair %+v", gotGuarded, wantGuarded)
	}

	// Cross-check: a dynamic race at the plain pair is
	// static-confirmed; one at a site the static pass never
	// enumerates is unmatched; the plain pair is a coverage gap when
	// the dynamic report misses it.
	raceAt := func(k detect.SiteKey) detect.Race {
		return detect.Race{
			Use: detect.Use{
				Var: trace.MakeVar(1, k.Field), Method: k.UseMethod, DerefPC: k.UsePC,
			},
			Free: detect.Free{
				Var: trace.MakeVar(1, k.Field), Method: k.FreeMethod, PC: k.FreePC,
			},
		}
	}
	bogus := wantPlain
	bogus.UsePC = 99
	checked, gaps := CrossCheck(st.Pairs, []detect.Race{raceAt(wantPlain), raceAt(bogus)}, st.Orders)
	if checked[0].Verdict != VerdictStaticConfirmed {
		t.Errorf("plain race verdict = %s, want static-confirmed", checked[0].Verdict)
	}
	if checked[1].Verdict != VerdictUnmatched {
		t.Errorf("bogus race verdict = %s, want static-unmatched", checked[1].Verdict)
	}
	if len(gaps) != 0 {
		t.Errorf("gaps = %+v, want none (plain reported, guarded excluded)", gaps)
	}
	_, gaps = CrossCheck(st.Pairs, nil, st.Orders)
	if len(gaps) != 1 || gaps[0].Pair.Key != wantPlain {
		t.Errorf("gaps without dynamic report = %+v, want exactly the plain pair", gaps)
	}
}

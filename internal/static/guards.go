package static

import (
	"cafa/internal/dataflow"
	"cafa/internal/detect"
	"cafa/internal/dvm"
	"cafa/internal/trace"
)

// Guards computes the static if-guard classification: for every
// dereference site, is it covered by a null-test branch on the same
// value in the same method? This is Figure 6 evaluated on the CFG
// instead of the trace window — the branch's safe region is the same
// PC interval the dynamic heuristic uses, but "same pointer" is
// decided by def-use identity (both the branch operand and the
// dereferenced register chase to the same unique definition site)
// rather than by matching logged branch values to logged reads.
//
// Only if-eqz / if-nez null tests are classified; the object-compare
// branch (if-eq vs `this`) has no static null meaning and is left to
// the dynamic heuristic. Classifying fewer sites is always safe:
// pruning happens only for sites this pass positively marks.
func Guards(cg *CallGraph) map[dataflow.Key]bool {
	out := make(map[dataflow.Key]bool)
	for _, m := range cg.Prog.Methods {
		r := cg.Reach[m.ID]
		// Collect null-test branches with a resolvable tested origin.
		type nullTest struct {
			lo, hi trace.PC
			origin int32
		}
		var tests []nullTest
		for pc := range m.Code {
			in := &m.Code[pc]
			var kind trace.BranchKind
			switch in.Code {
			case dvm.CIfEqz:
				kind = trace.BranchIfEqz
			case dvm.CIfNez:
				kind = trace.BranchIfNez
			default:
				continue
			}
			if !r.Reachable(pc) {
				continue
			}
			origin, ok := chaseUnique(m, r, pc, in.A)
			if !ok {
				continue
			}
			lo, hi := detect.GuardRegion(kind, trace.PC(pc), trace.PC(in.Target))
			tests = append(tests, nullTest{lo: lo, hi: hi, origin: origin})
		}
		if len(tests) == 0 {
			continue
		}
		for pc := range m.Code {
			reg, ok := dataflow.DerefReg(&m.Code[pc])
			if !ok || !r.Reachable(pc) {
				continue
			}
			origin, ok := chaseUnique(m, r, pc, reg)
			if !ok {
				continue
			}
			for _, t := range tests {
				if t.origin == origin && trace.PC(pc) >= t.lo && trace.PC(pc) < t.hi {
					out[dataflow.Key{Method: m.ID, PC: trace.PC(pc)}] = true
					break
				}
			}
		}
	}
	return out
}

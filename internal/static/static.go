// Package static is the whole-program static analysis layer over dvm
// bytecode (the paper's §6.3 proposal, generalized): a call graph
// over invoke/return instructions and handler-posting intrinsics, an
// interprocedural extension of the reaching-definitions def-use
// analysis in internal/dataflow (pointer origins flow through
// parameter registers and return values), static versions of the
// detector's two commutativity heuristics (if-guard regions computed
// on the CFG, allocation domination computed by a must-analysis), and
// a trace-free use-after-free pre-pass that enumerates candidate
// site pairs per field and cross-checks them against the dynamic
// detector's report.
//
// Closed-world caveat: the runtime can enter methods outside the
// bytecode (thread bodies and injected events are wired by name), so
// parameters of methods without static callers resolve to Incomplete
// and the detector falls back to its dynamic heuristics there —
// enabling the static layer can refine answers but never invent one
// where the program's entry points are unknown.
package static

import (
	"time"

	"cafa/internal/dataflow"
	"cafa/internal/dvm"
	"cafa/internal/obs"
)

// Static-pass observability (internal/obs): per-pass spans under one
// "static.analyze" span (serial passes — they nest on one track) and
// site counters. The Timing struct keeps feeding BENCH_static.json;
// spans add the same data to the shared trace-event timeline.
var (
	cStaticRuns  = obs.NewCounter("static_analyze_runs_total")
	cDerefSites  = obs.NewCounter("static_deref_sites_total")
	cGuardSites  = obs.NewCounter("static_guarded_sites_total")
	cStaticPairs = obs.NewCounter("static_candidate_pairs_total")
)

// Timing records wall-clock per pass for the static layer
// (BENCH_static.json).
type Timing struct {
	CallGraph time.Duration `json:"callgraph_ns"`
	Resolve   time.Duration `json:"resolve_ns"`
	Guards    time.Duration `json:"guards_ns"`
	Alloc     time.Duration `json:"alloc_ns"`
	Pairs     time.Duration `json:"pairs_ns"`
	Order     time.Duration `json:"order_ns"`
	Total     time.Duration `json:"total_ns"`
}

// Result bundles every static pass over one program.
type Result struct {
	Graph *CallGraph
	// Resolutions is the full interprocedural origin set per
	// dereference site; Derefs is its projection onto the detector's
	// dataflow.Source contract.
	Resolutions map[dataflow.Key]Resolution
	Derefs      map[dataflow.Key]dataflow.Source
	// Guards marks dereference sites covered by a static null test.
	Guards map[dataflow.Key]bool
	// AllocSafe marks dereference sites whose load is dominated by a
	// fresh allocation of its field.
	AllocSafe map[dataflow.Key]bool
	// NonEscaping marks new-sites whose object never leaves the
	// allocating method.
	NonEscaping map[dataflow.Key]bool
	// Pairs is the static use-after-free pre-pass output.
	Pairs []Pair
	// Orders is the static event-order pass output (order.go). Empty
	// unless Options.Roots supplied a closed world of entry points.
	Orders *Orders
	Timing Timing
}

// Analyze runs every static pass over a program with no entry-point
// inventory — the event-order pass stays at its open-world bottom.
func Analyze(p *dvm.Program) *Result { return AnalyzeOpts(p, Options{}) }

// AnalyzeOpts runs every static pass over a program.
func AnalyzeOpts(p *dvm.Program, opts Options) *Result {
	sp := obs.Start("static.analyze")
	defer sp.End()
	res := &Result{}
	start := time.Now()

	pass := func(name string, dst *time.Duration, fn func()) {
		child := sp.Child("static." + name)
		t := time.Now()
		fn()
		*dst = time.Since(t)
		child.End()
	}
	pass("callgraph", &res.Timing.CallGraph, func() { res.Graph = BuildCallGraph(p) })
	pass("interproc", &res.Timing.Resolve, func() { res.Resolutions, res.Derefs = ResolveDerefs(res.Graph) })
	pass("guards", &res.Timing.Guards, func() { res.Guards = Guards(res.Graph) })
	pass("alloc", &res.Timing.Alloc, func() {
		res.AllocSafe = AllocSafe(res.Graph)
		res.NonEscaping = NonEscaping(res.Graph)
	})
	pass("pairs", &res.Timing.Pairs, func() {
		res.Pairs = EnumeratePairs(res.Graph, res.Resolutions, res.Guards, res.AllocSafe)
	})
	pass("order", &res.Timing.Order, func() {
		res.Orders = ComputeOrders(res.Graph, res.Pairs, opts.Roots)
	})

	res.Timing.Total = time.Since(start)
	cStaticRuns.Inc()
	cDerefSites.Add(int64(len(res.Resolutions)))
	guarded := 0
	for _, v := range res.Guards {
		if v {
			guarded++
		}
	}
	cGuardSites.Add(int64(guarded))
	cStaticPairs.Add(int64(len(res.Pairs)))
	return res
}

package static

import (
	"cafa/internal/cfg"
	"cafa/internal/dataflow"
	"cafa/internal/dvm"
	"cafa/internal/trace"
)

// AllocSafe computes the static analog of the intra-event-allocation
// heuristic: a dereference is alloc-safe when the pointer it uses was
// loaded from a field that, on every path from the handler's entry to
// the load, was last stored with a freshly allocated object inside
// the same method. Such a load can never observe a stale pointer
// freed by a concurrent event, so reporting it is always a false
// positive — the onResume re-allocation pattern of Figure 5.
//
// The pass is a forward must-analysis over the CFG: the state is the
// set of fields definitely holding a fresh allocation, intersected at
// joins, cleared by calls and intrinsics (a callee may store
// anything), and invalidated per field by any non-fresh store.
func AllocSafe(cg *CallGraph) map[dataflow.Key]bool {
	out := make(map[dataflow.Key]bool)
	for _, m := range cg.Prog.Methods {
		r := cg.Reach[m.ID]
		freshLoads := freshLoadSites(m, r)
		if len(freshLoads) == 0 {
			continue
		}
		// A deref is alloc-safe when its value comes only from
		// fresh-dominated loads (or fresh allocations directly).
		for pc := range m.Code {
			reg, ok := dataflow.DerefReg(&m.Code[pc])
			if !ok || !r.Reachable(pc) {
				continue
			}
			origin, ok := chaseUnique(m, r, pc, reg)
			if !ok || origin < 0 {
				continue
			}
			if freshLoads[origin] {
				out[dataflow.Key{Method: m.ID, PC: trace.PC(pc)}] = true
			}
		}
	}
	return out
}

// freshLoadSites returns the load sites (by pc) whose field is
// definitely freshly stored on every path from entry.
func freshLoadSites(m *dvm.Method, r *dataflow.Reach) map[int32]bool {
	n := len(m.Code)
	if n == 0 {
		return nil
	}
	// in[pc] is the must-fresh field set; nil = unvisited (top).
	in := make([]map[trace.FieldID]bool, n)
	in[0] = map[trace.FieldID]bool{}
	tryEdges := cfg.TryHandlerEdges(m)
	work := []int{0}
	for len(work) > 0 {
		pc := work[0]
		work = work[1:]
		out := transferFresh(m, r, pc, in[pc])
		for _, s := range cfg.Successors(m, pc) {
			if propagateMust(in, s, out) {
				work = append(work, s)
			}
		}
		// Exceptional edges carry the pre-state, like reaching defs.
		for _, h := range tryEdges[pc] {
			if propagateMust(in, h, in[pc]) {
				work = append(work, h)
			}
		}
	}
	loads := make(map[int32]bool)
	for pc := range m.Code {
		inst := &m.Code[pc]
		if (inst.Code == dvm.CIget || inst.Code == dvm.CSget) && in[pc] != nil && in[pc][inst.Field] {
			loads[int32(pc)] = true
		}
	}
	return loads
}

// transferFresh applies one instruction to the must-fresh set.
func transferFresh(m *dvm.Method, r *dataflow.Reach, pc int, state map[trace.FieldID]bool) map[trace.FieldID]bool {
	in := &m.Code[pc]
	out := make(map[trace.FieldID]bool, len(state))
	for f := range state {
		out[f] = true
	}
	switch in.Code {
	case dvm.CIput, dvm.CSput:
		if origin, ok := chaseUnique(m, r, pc, in.A); ok && origin >= 0 && m.Code[origin].Code == dvm.CNew {
			out[in.Field] = true
		} else {
			delete(out, in.Field)
		}
	case dvm.CIputInt, dvm.CSputInt:
		delete(out, in.Field)
	case dvm.CInvokeVirtual, dvm.CInvokeStatic, dvm.CInvokeValue, dvm.CIntrinsic:
		// A callee (or another event reached through an intrinsic)
		// may overwrite any field.
		return map[trace.FieldID]bool{}
	}
	return out
}

// propagateMust intersects out into in[s]; returns true when in[s]
// changed (or was first visited).
func propagateMust(in []map[trace.FieldID]bool, s int, out map[trace.FieldID]bool) bool {
	if in[s] == nil {
		c := make(map[trace.FieldID]bool, len(out))
		for f := range out {
			c[f] = true
		}
		in[s] = c
		return true
	}
	changed := false
	for f := range in[s] {
		if !out[f] {
			delete(in[s], f)
			changed = true
		}
	}
	return changed
}

// NonEscaping computes the intra-event escape classification: the
// new-object sites whose object never leaves the allocating method —
// not stored to any field, array, or static, not passed to a call or
// intrinsic, and not returned. A non-escaping allocation can never be
// the object of a cross-event use-free pair.
func NonEscaping(cg *CallGraph) map[dataflow.Key]bool {
	out := make(map[dataflow.Key]bool)
	for _, m := range cg.Prog.Methods {
		r := cg.Reach[m.ID]
		escaped := make(map[int32]bool)
		// mark records every new-site that MAY flow into reg at pc —
		// escape must over-approximate, so move chains fan out over
		// all reaching definitions.
		var markSite func(site int32, depth int)
		markSite = func(site int32, depth int) {
			if site < 0 || depth > len(m.Code) {
				return
			}
			switch m.Code[site].Code {
			case dvm.CNew:
				escaped[site] = true
			case dvm.CMove:
				for _, d := range r.Defs(int(site), m.Code[site].B) {
					markSite(d, depth+1)
				}
			}
		}
		mark := func(pc int, reg dvm.Reg) {
			for _, d := range r.Defs(pc, reg) {
				markSite(d, 0)
			}
		}
		for pc := range m.Code {
			in := &m.Code[pc]
			if !r.Reachable(pc) {
				continue
			}
			switch in.Code {
			case dvm.CIput, dvm.CSput, dvm.CAput:
				mark(pc, in.A) // stored value
			case dvm.CReturn:
				mark(pc, in.A)
			case dvm.CInvokeVirtual, dvm.CInvokeStatic, dvm.CInvokeValue, dvm.CIntrinsic:
				for _, a := range in.Args {
					mark(pc, a)
				}
				if in.Code == dvm.CInvokeValue {
					mark(pc, in.A)
				}
			}
		}
		for pc := range m.Code {
			if m.Code[pc].Code == dvm.CNew && r.Reachable(pc) && !escaped[int32(pc)] {
				out[dataflow.Key{Method: m.ID, PC: trace.PC(pc)}] = true
			}
		}
	}
	return out
}

package static

import (
	"strings"
	"testing"

	"cafa/internal/detect"
	"cafa/internal/dvm"
	"cafa/internal/trace"
)

// pcsOf returns every pc in a method holding the given opcode.
func pcsOf(t *testing.T, p *dvm.Program, name string, code dvm.Code) []trace.PC {
	t.Helper()
	m := p.Methods[p.MustMethod(name)]
	var out []trace.PC
	for pc := range m.Code {
		if m.Code[pc].Code == code {
			out = append(out, trace.PC(pc))
		}
	}
	if len(out) == 0 {
		t.Fatalf("no opcode %d in %s", code, name)
	}
	return out
}

func pcOf(t *testing.T, p *dvm.Program, name string, code dvm.Code) trace.PC {
	t.Helper()
	return pcsOf(t, p, name, code)[0]
}

// ordersFor builds the call graph and runs the order engine with the
// named methods as the closed-world root inventory (once each).
func ordersFor(t *testing.T, p *dvm.Program, keys []detect.SiteKey, rootNames ...string) *Orders {
	t.Helper()
	roots := make(map[trace.MethodID]int)
	for _, n := range rootNames {
		roots[methodID(t, p, n)]++
	}
	pairs := make([]Pair, len(keys))
	for i, k := range keys {
		pairs[i] = Pair{Key: k}
	}
	return ComputeOrders(BuildCallGraph(p), pairs, roots)
}

func witnessText(info OrderInfo) string { return strings.Join(info.Witness, "\n") }

// TestOrderPostChain: the use runs in a rooted event that afterwards
// posts the freeing handler — the post rule orders use before free,
// dyn-soundly (the dynamic model has the same post edge).
func TestOrderPostChain(t *testing.T) {
	p := assemble(t, `
.method evB(h) regs=2
    const-null v1
    iput v1, h, ptr
    return-void
.end

.method root(h) regs=5
    iget v4, h, ptr
    sget-int v1, mainQ
    const-method v2, evB
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end
`)
	k := detect.SiteKey{
		UseMethod: methodID(t, p, "root"), UsePC: pcOf(t, p, "root", dvm.CIget),
		FreeMethod: methodID(t, p, "evB"), FreePC: pcOf(t, p, "evB", dvm.CIput),
	}
	o := ordersFor(t, p, []detect.SiteKey{k}, "root")
	info, ok := o.Lookup(k)
	if !ok || !info.UseBeforeFree || !info.DynSound {
		t.Fatalf("post-chain order = %+v, %v; want use-before-free, dyn-sound", info, ok)
	}
	if w := witnessText(info); !strings.Contains(w, "post") {
		t.Errorf("witness does not cite the post rule:\n%s", w)
	}
	ok2 := false
	_, ok2 = o.PruneMap()[detect.OrderKey{
		UseMethod: k.UseMethod, UsePC: k.UsePC, FreeMethod: k.FreeMethod, FreePC: k.FreePC,
	}]
	if !ok2 {
		t.Error("dyn-sound order missing from the prune projection")
	}
}

// TestOrderForkJoin: the free runs on a forked thread that the rooted
// event joins before the use — end(thread) precedes the join site,
// which dominates the use, so free-before-use holds dyn-soundly.
func TestOrderForkJoin(t *testing.T) {
	p := assemble(t, `
.method tbody(h) regs=2
    const-null v1
    iput v1, h, ptr
    return-void
.end

.method root(h) regs=4
    const-method v1, tbody
    fork v1, h -> v2
    join v2
    iget v3, h, ptr
    return-void
.end
`)
	k := detect.SiteKey{
		UseMethod: methodID(t, p, "root"), UsePC: pcOf(t, p, "root", dvm.CIget),
		FreeMethod: methodID(t, p, "tbody"), FreePC: pcOf(t, p, "tbody", dvm.CIput),
	}
	o := ordersFor(t, p, []detect.SiteKey{k}, "root")
	info, ok := o.Lookup(k)
	if !ok || info.UseBeforeFree || !info.DynSound {
		t.Fatalf("fork/join order = %+v, %v; want free-before-use, dyn-sound", info, ok)
	}
	if w := witnessText(info); !strings.Contains(w, "join") {
		t.Errorf("witness does not cite the join rule:\n%s", w)
	}
}

// TestOrderRPCBlocks: rpc is synchronous — the handler's end precedes
// the call's return, so a free inside the handler precedes a use
// after the rpc site.
func TestOrderRPCBlocks(t *testing.T) {
	p := assemble(t, `
.method handler(h) regs=2
    const-null v1
    iput v1, h, ptr
    return-void
.end

.method root(h) regs=5
    sget-int v1, svc
    const-method v2, handler
    rpc v1, v2, h -> v3
    iget v4, h, ptr
    return-void
.end
`)
	k := detect.SiteKey{
		UseMethod: methodID(t, p, "root"), UsePC: pcOf(t, p, "root", dvm.CIget),
		FreeMethod: methodID(t, p, "handler"), FreePC: pcOf(t, p, "handler", dvm.CIput),
	}
	o := ordersFor(t, p, []detect.SiteKey{k}, "root")
	info, ok := o.Lookup(k)
	if !ok || info.UseBeforeFree || !info.DynSound {
		t.Fatalf("rpc order = %+v, %v; want free-before-use, dyn-sound", info, ok)
	}
	if w := witnessText(info); !strings.Contains(w, "rpc-return") {
		t.Errorf("witness does not cite the rpc-return rule:\n%s", w)
	}
}

// TestOrderTryEdgeBreaksDominance: with the rpc site inside a try,
// the exceptional edge lets control reach the handler-block use
// without passing the rpc — the site no longer dominates the use, so
// the rpc-return ordering of TestOrderRPCBlocks must NOT be derived.
func TestOrderTryEdgeBreaksDominance(t *testing.T) {
	p := assemble(t, `
.method handler(h) regs=2
    const-null v1
    iput v1, h, ptr
    return-void
.end

.method root(h) regs=5
    try catch
    sget-int v1, svc
    const-method v2, handler
    rpc v1, v2, h -> v3
    end-try
catch:
    iget v4, h, ptr
    return-void
.end
`)
	k := detect.SiteKey{
		UseMethod: methodID(t, p, "root"), UsePC: pcOf(t, p, "root", dvm.CIget),
		FreeMethod: methodID(t, p, "handler"), FreePC: pcOf(t, p, "handler", dvm.CIput),
	}
	o := ordersFor(t, p, []detect.SiteKey{k}, "root")
	if info, ok := o.Lookup(k); ok {
		t.Errorf("rpc site inside try yielded order %+v; the exceptional edge bypasses it", info)
	}
}

// TestOrderListenerLintOnly: register-before-callback orders the use
// ahead of the free, but uninstrumented listener ids leave no dynamic
// register/perform entries — the rule is lint-only, so the order is
// reported (ByKey) yet excluded from the prune projection.
func TestOrderListenerLintOnly(t *testing.T) {
	p := assemble(t, `
.method cb(h) regs=2
    const-null v1
    iput v1, h, ptr
    return-void
.end

.method rootA(h) regs=4
    iget v3, h, ptr
    const-int v1, #7
    const-method v2, cb
    register v1, v2
    return-void
.end

.method rootB(h) regs=2
    const-int v1, #7
    fire v1, h
    return-void
.end
`)
	k := detect.SiteKey{
		UseMethod: methodID(t, p, "rootA"), UsePC: pcOf(t, p, "rootA", dvm.CIget),
		FreeMethod: methodID(t, p, "cb"), FreePC: pcOf(t, p, "cb", dvm.CIput),
	}
	o := ordersFor(t, p, []detect.SiteKey{k}, "rootA", "rootB")
	info, ok := o.Lookup(k)
	if !ok || !info.UseBeforeFree || info.DynSound {
		t.Fatalf("listener order = %+v, %v; want use-before-free, NOT dyn-sound", info, ok)
	}
	if w := witnessText(info); !strings.Contains(w, "listener") {
		t.Errorf("witness does not cite the listener rule:\n%s", w)
	}
	if len(o.PruneMap()) != 0 {
		t.Errorf("lint-only listener order leaked into the prune projection: %+v", o.PruneMap())
	}
}

// TestOrderTwicePostedNoOrder: an event posted from two sites runs
// more than once, so no all-occurrences claim survives — the engine
// must derive nothing.
func TestOrderTwicePostedNoOrder(t *testing.T) {
	p := assemble(t, `
.method evM(h) regs=2
    const-null v1
    iput v1, h, ptr
    return-void
.end

.method root(h) regs=5
    iget v4, h, ptr
    sget-int v1, mainQ
    const-method v2, evM
    const-int v3, #0
    send v1, v2, v3, h
    send v1, v2, v3, h
    return-void
.end
`)
	k := detect.SiteKey{
		UseMethod: methodID(t, p, "root"), UsePC: pcOf(t, p, "root", dvm.CIget),
		FreeMethod: methodID(t, p, "evM"), FreePC: pcOf(t, p, "evM", dvm.CIput),
	}
	o := ordersFor(t, p, []detect.SiteKey{k}, "root")
	if o.Ordered() != 0 {
		t.Errorf("twice-posted event yielded %d orders, want 0", o.Ordered())
	}
}

// TestOrderPostInCycleConservative: the posting site sits in a CFG
// cycle, so it may run many times — the entry edge (and any order
// through it) must be dropped.
func TestOrderPostInCycleConservative(t *testing.T) {
	p := assemble(t, `
.method evB(h) regs=2
    const-null v1
    iput v1, h, ptr
    return-void
.end

.method root(h) regs=6
    iget v5, h, ptr
loop:
    sget-int v1, mainQ
    const-method v2, evB
    const-int v3, #0
    send v1, v2, v3, h
    iget v4, h, ptr
    if-eqz v4, loop
    return-void
.end
`)
	k := detect.SiteKey{
		UseMethod: methodID(t, p, "root"), UsePC: pcsOf(t, p, "root", dvm.CIget)[0],
		FreeMethod: methodID(t, p, "evB"), FreePC: pcOf(t, p, "evB", dvm.CIput),
	}
	o := ordersFor(t, p, []detect.SiteKey{k}, "root")
	if o.Ordered() != 0 {
		t.Errorf("cyclic posting site yielded %d orders, want 0", o.Ordered())
	}
}

// TestOrderFIFOLintOnly: two zero-delay posts to the same never-stored
// static queue run FIFO — the earlier event ends before the later one
// begins. Lint-only (adversarial replay may inflate delays), so the
// order stays out of the prune projection. Posting the larger delay
// first breaks the rule's premise and no order is derived.
func TestOrderFIFOLintOnly(t *testing.T) {
	const body = `
.method evUse(h) regs=2
    iget v1, h, ptr
    return-void
.end

.method evFree(h) regs=2
    const-null v1
    iput v1, h, ptr
    return-void
.end

.method root(h) regs=8
    sget-int v1, q0
    const-method v2, evUse
    const-int v3, #%s
    send v1, v2, v3, h
    sget-int v4, q0
    const-method v5, evFree
    const-int v6, #0
    send v4, v5, v6, h
    return-void
.end
`
	keyOf := func(p *dvm.Program) detect.SiteKey {
		return detect.SiteKey{
			UseMethod: methodID(t, p, "evUse"), UsePC: pcOf(t, p, "evUse", dvm.CIget),
			FreeMethod: methodID(t, p, "evFree"), FreePC: pcOf(t, p, "evFree", dvm.CIput),
		}
	}

	p := assemble(t, strings.Replace(body, "%s", "0", 1))
	k := keyOf(p)
	o := ordersFor(t, p, []detect.SiteKey{k}, "root")
	info, ok := o.Lookup(k)
	if !ok || !info.UseBeforeFree || info.DynSound {
		t.Fatalf("fifo order = %+v, %v; want use-before-free, NOT dyn-sound", info, ok)
	}
	if w := witnessText(info); !strings.Contains(w, "fifo") {
		t.Errorf("witness does not cite the fifo rule:\n%s", w)
	}
	if len(o.PruneMap()) != 0 {
		t.Errorf("lint-only fifo order leaked into the prune projection: %+v", o.PruneMap())
	}

	// Larger delay posted first: rule premise fails, nothing derived.
	p2 := assemble(t, strings.Replace(body, "%s", "5", 1))
	o2 := ordersFor(t, p2, []detect.SiteKey{keyOf(p2)}, "root")
	if o2.Ordered() != 0 {
		t.Errorf("delay-inverted fifo yielded %d orders, want 0", o2.Ordered())
	}
}

// TestOrderSameEventProgramOrder: use and free anchored in the same
// once-run event order by CFG position, in either direction; inside a
// cycle neither direction holds.
func TestOrderSameEventProgramOrder(t *testing.T) {
	p := assemble(t, `
.method ev(h) regs=4
    iget v1, h, ptr
    const-null v2
    iput v2, h, ptr
    iget v3, h, ptr
    return-void
.end

.method evloop(h) regs=4
    iget v1, h, ptr
loop:
    const-null v2
    iput v2, h, ptr
    iget v3, h, ptr
    if-eqz v3, loop
    return-void
.end
`)
	ev := methodID(t, p, "ev")
	igets := pcsOf(t, p, "ev", dvm.CIget)
	free := pcOf(t, p, "ev", dvm.CIput)
	kBefore := detect.SiteKey{UseMethod: ev, UsePC: igets[0], FreeMethod: ev, FreePC: free}
	kAfter := detect.SiteKey{UseMethod: ev, UsePC: igets[1], FreeMethod: ev, FreePC: free}

	lp := methodID(t, p, "evloop")
	kLoop := detect.SiteKey{
		UseMethod: lp, UsePC: pcsOf(t, p, "evloop", dvm.CIget)[1],
		FreeMethod: lp, FreePC: pcOf(t, p, "evloop", dvm.CIput),
	}

	o := ordersFor(t, p, []detect.SiteKey{kBefore, kAfter, kLoop}, "ev", "evloop")
	if o.Ordered() != 2 {
		t.Fatalf("derived %d orders, want 2 (the loop pair must stay unordered)", o.Ordered())
	}
	if info, ok := o.Lookup(kBefore); !ok || !info.UseBeforeFree || !info.DynSound {
		t.Errorf("use-first intra order = %+v, %v; want use-before-free, dyn-sound", info, ok)
	} else if w := witnessText(info); !strings.Contains(w, "program order") {
		t.Errorf("witness does not cite program order:\n%s", w)
	}
	if info, ok := o.Lookup(kAfter); !ok || info.UseBeforeFree || !info.DynSound {
		t.Errorf("free-first intra order = %+v, %v; want free-before-use, dyn-sound", info, ok)
	}
	if _, ok := o.Lookup(kLoop); ok {
		t.Error("pair inside a CFG cycle must not be ordered")
	}
	if len(o.PruneMap()) != 2 {
		t.Errorf("prune projection holds %d orders, want 2", len(o.PruneMap()))
	}
}

// TestOrderOpenWorldBottom: with no root inventory the world is open
// and the engine answers bottom — no orders at all.
func TestOrderOpenWorldBottom(t *testing.T) {
	p := assemble(t, `
.method evB(h) regs=2
    const-null v1
    iput v1, h, ptr
    return-void
.end

.method root(h) regs=5
    iget v4, h, ptr
    sget-int v1, mainQ
    const-method v2, evB
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end
`)
	k := detect.SiteKey{
		UseMethod: methodID(t, p, "root"), UsePC: pcOf(t, p, "root", dvm.CIget),
		FreeMethod: methodID(t, p, "evB"), FreePC: pcOf(t, p, "evB", dvm.CIput),
	}
	o := ComputeOrders(BuildCallGraph(p), []Pair{{Key: k}}, nil)
	if o.Ordered() != 0 || len(o.PruneMap()) != 0 {
		t.Errorf("open world derived %d orders (%d prunable), want 0",
			o.Ordered(), len(o.PruneMap()))
	}
}

// TestRootsFromNames: name-keyed root counts translate to method IDs,
// dropping names the program does not define.
func TestRootsFromNames(t *testing.T) {
	p := assemble(t, runSink)
	roots := RootsFromNames(p, map[string]int{"run": 2, "ghost": 1})
	if len(roots) != 1 || roots[methodID(t, p, "run")] != 2 {
		t.Errorf("RootsFromNames = %+v, want {run: 2}", roots)
	}
}

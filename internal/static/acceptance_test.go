package static_test

import (
	"strings"
	"testing"

	"cafa/internal/analysis"
	"cafa/internal/apps"
	"cafa/internal/detect"
	"cafa/internal/sim"
	"cafa/internal/static"
	"cafa/internal/trace"
)

// TestStaticCoversDynamic is the cross-check acceptance property over
// all ten app models: every race the dynamic detector reports on a
// planted field that really is (or appears to be) a use-after-free —
// the harmful classes plus the Type I/II false positives, which are
// real site pairs the static world can see — must be enumerated as a
// static candidate pair with the exact same SiteKey. The Type III
// plants are the converse check: the dynamic report blames a site
// pair that does not exist in the bytecode, so the static pre-pass
// must NOT have a pair for it — that mismatch is the Type III signal
// cafa-lint surfaces as `static-unmatched`.
func TestStaticCoversDynamic(t *testing.T) {
	const scale = 16
	for _, spec := range apps.Registry {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			col := trace.NewCollector()
			b, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, scale)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Sys.Run(); err != nil {
				t.Fatal(err)
			}
			res, err := analysis.Analyze(col.T, analysis.Options{})
			if err != nil {
				t.Fatal(err)
			}
			st := static.Analyze(b.Prog)
			pairKeys := make(map[detect.SiteKey]bool, len(st.Pairs))
			for _, p := range st.Pairs {
				pairKeys[p.Key] = true
			}
			truth := b.TruthByField()
			checked, _ := static.CrossCheck(st.Pairs, res.Races, st.Orders)
			for _, cr := range checked {
				field := col.T.FieldName(cr.Race.Use.Var.Field())
				pl, planted := truth[field]
				if !planted {
					continue
				}
				k := cr.Race.Key()
				switch pl.Label {
				case apps.LabelFP3:
					if pairKeys[k] {
						t.Errorf("%s: Type III race %+v has a static pair; the blamed sites should not exist", field, k)
					}
					if cr.Verdict != static.VerdictUnmatched {
						t.Errorf("%s: Type III verdict = %s, want static-unmatched", field, cr.Verdict)
					}
				default:
					if !pairKeys[k] {
						t.Errorf("%s (%s): dynamic race %+v missing from static pairs", field, pl.Label, k)
					}
					if cr.Verdict != static.VerdictStaticConfirmed {
						t.Errorf("%s (%s): verdict = %s, want static-confirmed", field, pl.Label, cr.Verdict)
					}
				}
			}
			// Every harmful plant must be dynamically reported at this
			// scale (the suite's standing property) — so the loop above
			// really did check a static pair for each of them.
			reportedFields := make(map[string]bool)
			for _, r := range res.Races {
				reportedFields[col.T.FieldName(r.Use.Var.Field())] = true
			}
			for _, pl := range b.Truth {
				if pl.Label.Harmful() && !reportedFields[pl.Field] {
					t.Errorf("harmful plant %s not dynamically reported at scale %d", pl.Field, scale)
				}
			}
		})
	}
}

// TestStaticGuardsMatchFilteredPlants asserts the static heuristic
// passes classify the benign plants: every guardedBenign onFocus use
// is statically guarded and every onResume use is alloc-safe, on app
// models that carry them.
func TestStaticGuardsClassifyBenignPlants(t *testing.T) {
	checkedApps := 0
	for _, spec := range apps.Registry {
		col := trace.NewCollector()
		b, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, 64)
		if err != nil {
			t.Fatal(err)
		}
		st := static.Analyze(b.Prog)
		sawGuarded := false
		for _, p := range st.Pairs {
			name := b.Prog.FieldName(p.Key.Field)
			um := st.Graph.MethodByID(p.Key.UseMethod)
			if um == nil {
				t.Fatalf("%s: pair names unknown method %d", spec.Name, p.Key.UseMethod)
			}
			switch {
			case strings.HasPrefix(um.Name, "onFocus_"):
				if !p.Guarded {
					t.Errorf("%s: %s use in %s not statically guarded", spec.Name, name, um.Name)
				}
				sawGuarded = true
			case strings.HasPrefix(um.Name, "onResume_") && strings.HasPrefix(name, "ptr_"):
				if !p.AllocSafe {
					t.Errorf("%s: %s use in %s not alloc-safe", spec.Name, name, um.Name)
				}
			case strings.HasPrefix(um.Name, "lockedUse_"):
				if !p.Guarded {
					t.Errorf("%s: %s use in %s not statically guarded", spec.Name, name, um.Name)
				}
				sawGuarded = true
			}
		}
		if sawGuarded {
			checkedApps++
		}
	}
	if checkedApps == 0 {
		t.Fatal("no app model carried a guarded-benign plant; assertion vacuous")
	}
}

package asm

import (
	"fmt"
	"strconv"
	"strings"

	"cafa/internal/dvm"
)

// intrinsicSpec describes an intrinsic mnemonic: its id, argument
// count, and whether it may produce a result.
type intrinsicSpec struct {
	id     dvm.Intrinsic
	arity  int
	result bool
}

var intrinsics = map[string]intrinsicSpec{
	"send":       {dvm.IntrSend, 4, false},
	"send-front": {dvm.IntrSendFront, 3, false},
	"fork":       {dvm.IntrFork, 2, true},
	"join":       {dvm.IntrJoin, 1, false},
	"lock":       {dvm.IntrLock, 1, false},
	"unlock":     {dvm.IntrUnlock, 1, false},
	"wait":       {dvm.IntrWait, 1, false},
	"notify":     {dvm.IntrNotify, 1, false},
	"register":   {dvm.IntrRegister, 2, false},
	"fire":       {dvm.IntrFire, 2, false},
	"rpc":        {dvm.IntrRPC, 3, true},
	"msg-send":   {dvm.IntrMsgSend, 2, false},
	"msg-recv":   {dvm.IntrMsgRecv, 1, true},
	"sleep":      {dvm.IntrSleep, 1, false},
	"spin":       {dvm.IntrSpin, 1, false},
	"self":       {dvm.IntrSelf, 0, true},
}

// instr parses one instruction line and appends it to the method.
func (a *assembler) instr(line string, ln int) error {
	// Split off an optional "-> vN" result suffix.
	var resTok string
	if i := strings.Index(line, "->"); i >= 0 {
		resTok = strings.TrimSpace(line[i+2:])
		line = strings.TrimSpace(line[:i])
	}
	sp := strings.IndexAny(line, " \t")
	mnem := line
	var opsText string
	if sp >= 0 {
		mnem = line[:sp]
		opsText = strings.TrimSpace(line[sp+1:])
	}
	var ops []string
	if opsText != "" {
		for _, o := range strings.Split(opsText, ",") {
			o = strings.TrimSpace(o)
			if o == "" {
				return errAt(ln, "empty operand in %q", line)
			}
			ops = append(ops, o)
		}
	}

	in := dvm.Instr{}
	if resTok != "" {
		r, err := a.reg(resTok)
		if err != nil {
			return errAt(ln, "%v", err)
		}
		in.Res = r
		in.HasRes = true
	}

	need := func(n int) error {
		if len(ops) != n {
			return errAt(ln, "%s takes %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}
	regOp := func(i int) (dvm.Reg, error) {
		r, err := a.reg(ops[i])
		if err != nil {
			return 0, errAt(ln, "%v", err)
		}
		return r, nil
	}
	noRes := func() error {
		if in.HasRes {
			return errAt(ln, "%s does not produce a result", mnem)
		}
		return nil
	}

	// Intrinsics first: uniform shape.
	if spec, ok := intrinsics[mnem]; ok {
		if err := need(spec.arity); err != nil {
			return err
		}
		if !spec.result {
			if err := noRes(); err != nil {
				return err
			}
		}
		in.Code = dvm.CIntrinsic
		in.Intr = spec.id
		for i := range ops {
			r, err := regOp(i)
			if err != nil {
				return err
			}
			in.Args = append(in.Args, r)
		}
		a.m.Code = append(a.m.Code, in)
		return nil
	}

	switch mnem {
	case "nop":
		if err := need(0); err != nil {
			return err
		}
		in.Code = dvm.CNop

	case "const-null":
		if err := need(1); err != nil {
			return err
		}
		in.Code = dvm.CConstNull
		r, err := regOp(0)
		if err != nil {
			return err
		}
		in.A = r

	case "const-int":
		if err := need(2); err != nil {
			return err
		}
		in.Code = dvm.CConstInt
		r, err := regOp(0)
		if err != nil {
			return err
		}
		imm, err := a.imm(ops[1])
		if err != nil {
			return errAt(ln, "%v", err)
		}
		in.A, in.Imm = r, imm

	case "const-method":
		if err := need(2); err != nil {
			return err
		}
		in.Code = dvm.CConstMethod
		r, err := regOp(0)
		if err != nil {
			return err
		}
		mi, err := a.method(ops[1])
		if err != nil {
			return errAt(ln, "%v", err)
		}
		in.A, in.MethodIdx = r, mi

	case "new":
		if err := need(2); err != nil {
			return err
		}
		in.Code = dvm.CNew
		r, err := regOp(0)
		if err != nil {
			return err
		}
		in.A, in.Class = r, ops[1]

	case "move":
		if err := need(2); err != nil {
			return err
		}
		in.Code = dvm.CMove
		ra, err := regOp(0)
		if err != nil {
			return err
		}
		rb, err := regOp(1)
		if err != nil {
			return err
		}
		in.A, in.B = ra, rb

	case "iget", "iget-int", "iput", "iput-int":
		if err := need(3); err != nil {
			return err
		}
		switch mnem {
		case "iget":
			in.Code = dvm.CIget
		case "iget-int":
			in.Code = dvm.CIgetInt
		case "iput":
			in.Code = dvm.CIput
		case "iput-int":
			in.Code = dvm.CIputInt
		}
		ra, err := regOp(0)
		if err != nil {
			return err
		}
		rb, err := regOp(1)
		if err != nil {
			return err
		}
		in.A, in.B = ra, rb
		in.Field = a.p.FieldID(ops[2])

	case "new-array":
		if err := need(2); err != nil {
			return err
		}
		in.Code = dvm.CNewArray
		ra, err := regOp(0)
		if err != nil {
			return err
		}
		rb, err := regOp(1)
		if err != nil {
			return err
		}
		in.A, in.B = ra, rb

	case "aget", "aget-int", "aput", "aput-int":
		if err := need(3); err != nil {
			return err
		}
		switch mnem {
		case "aget":
			in.Code = dvm.CAget
		case "aget-int":
			in.Code = dvm.CAgetInt
		case "aput":
			in.Code = dvm.CAput
		case "aput-int":
			in.Code = dvm.CAputInt
		}
		ra, err := regOp(0)
		if err != nil {
			return err
		}
		rb, err := regOp(1)
		if err != nil {
			return err
		}
		rc, err := regOp(2)
		if err != nil {
			return err
		}
		in.A, in.B, in.C = ra, rb, rc

	case "array-len":
		if err := need(2); err != nil {
			return err
		}
		in.Code = dvm.CArrayLen
		ra, err := regOp(0)
		if err != nil {
			return err
		}
		rb, err := regOp(1)
		if err != nil {
			return err
		}
		in.A, in.B = ra, rb

	case "sget", "sget-int", "sput", "sput-int":
		if err := need(2); err != nil {
			return err
		}
		switch mnem {
		case "sget":
			in.Code = dvm.CSget
		case "sget-int":
			in.Code = dvm.CSgetInt
		case "sput":
			in.Code = dvm.CSput
		case "sput-int":
			in.Code = dvm.CSputInt
		}
		r, err := regOp(0)
		if err != nil {
			return err
		}
		in.A = r
		in.Field = a.p.FieldID(ops[1])

	case "if-eqz", "if-nez":
		if err := need(2); err != nil {
			return err
		}
		if mnem == "if-eqz" {
			in.Code = dvm.CIfEqz
		} else {
			in.Code = dvm.CIfNez
		}
		r, err := regOp(0)
		if err != nil {
			return err
		}
		in.A = r
		a.fixups = append(a.fixups, fixup{pc: len(a.m.Code), label: ops[1], line: ln})

	case "if-eq", "if-int-eq", "if-int-ne", "if-int-lt", "if-int-le", "if-int-gt", "if-int-ge":
		if err := need(3); err != nil {
			return err
		}
		switch mnem {
		case "if-eq":
			in.Code = dvm.CIfEq
		case "if-int-eq":
			in.Code = dvm.CIfIntEq
		case "if-int-ne":
			in.Code = dvm.CIfIntNe
		case "if-int-lt":
			in.Code = dvm.CIfIntLt
		case "if-int-le":
			in.Code = dvm.CIfIntLe
		case "if-int-gt":
			in.Code = dvm.CIfIntGt
		case "if-int-ge":
			in.Code = dvm.CIfIntGe
		}
		ra, err := regOp(0)
		if err != nil {
			return err
		}
		rb, err := regOp(1)
		if err != nil {
			return err
		}
		in.A, in.B = ra, rb
		a.fixups = append(a.fixups, fixup{pc: len(a.m.Code), label: ops[2], line: ln})

	case "goto", "try":
		if err := need(1); err != nil {
			return err
		}
		if mnem == "goto" {
			in.Code = dvm.CGoto
		} else {
			in.Code = dvm.CTry
		}
		a.fixups = append(a.fixups, fixup{pc: len(a.m.Code), label: ops[0], line: ln})

	case "end-try":
		if err := need(0); err != nil {
			return err
		}
		in.Code = dvm.CEndTry

	case "throw-npe":
		if err := need(0); err != nil {
			return err
		}
		in.Code = dvm.CThrow

	case "add-int", "sub-int", "mul-int":
		if err := need(3); err != nil {
			return err
		}
		switch mnem {
		case "add-int":
			in.Code = dvm.CAdd
		case "sub-int":
			in.Code = dvm.CSub
		case "mul-int":
			in.Code = dvm.CMul
		}
		rr, err := regOp(0)
		if err != nil {
			return err
		}
		ra, err := regOp(1)
		if err != nil {
			return err
		}
		rb, err := regOp(2)
		if err != nil {
			return err
		}
		in.Res, in.A, in.B = rr, ra, rb
		in.HasRes = true

	case "invoke-virtual", "invoke-static":
		if len(ops) < 1 {
			return errAt(ln, "%s needs a method operand", mnem)
		}
		if mnem == "invoke-virtual" {
			in.Code = dvm.CInvokeVirtual
			if len(ops) < 2 {
				return errAt(ln, "invoke-virtual needs a receiver register")
			}
		} else {
			in.Code = dvm.CInvokeStatic
		}
		mi, err := a.method(ops[0])
		if err != nil {
			return errAt(ln, "%v", err)
		}
		in.MethodIdx = mi
		for i := 1; i < len(ops); i++ {
			r, err := regOp(i)
			if err != nil {
				return err
			}
			in.Args = append(in.Args, r)
		}

	case "invoke-value":
		if len(ops) < 1 {
			return errAt(ln, "invoke-value needs a handle register")
		}
		in.Code = dvm.CInvokeValue
		r, err := regOp(0)
		if err != nil {
			return err
		}
		in.A = r
		for i := 1; i < len(ops); i++ {
			rr, err := regOp(i)
			if err != nil {
				return err
			}
			in.Args = append(in.Args, rr)
		}

	case "return-void":
		if err := need(0); err != nil {
			return err
		}
		in.Code = dvm.CReturnVoid

	case "return":
		if err := need(1); err != nil {
			return err
		}
		in.Code = dvm.CReturn
		r, err := regOp(0)
		if err != nil {
			return err
		}
		in.A = r

	default:
		return errAt(ln, "unknown mnemonic %q", mnem)
	}

	a.m.Code = append(a.m.Code, in)
	return nil
}

// reg resolves a register operand: vN or a parameter name.
func (a *assembler) reg(tok string) (dvm.Reg, error) {
	for i, p := range a.params {
		if tok == p {
			return dvm.Reg(i), nil
		}
	}
	if len(tok) >= 2 && tok[0] == 'v' {
		n, err := strconv.Atoi(tok[1:])
		if err == nil {
			if n < 0 || n >= a.m.NumRegs {
				return 0, fmt.Errorf("register %s out of range (regs=%d)", tok, a.m.NumRegs)
			}
			return dvm.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", tok)
}

func (a *assembler) imm(tok string) (int64, error) {
	if !strings.HasPrefix(tok, "#") {
		return 0, fmt.Errorf("bad immediate %q (want #N)", tok)
	}
	n, err := strconv.ParseInt(tok[1:], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q: %v", tok, err)
	}
	return n, nil
}

func (a *assembler) method(tok string) (int, error) {
	idx, ok := a.p.MethodIndex(tok)
	if !ok {
		return 0, fmt.Errorf("unknown method %q", tok)
	}
	return idx, nil
}

package asm

import (
	"math/rand"
	"strings"
	"testing"

	"cafa/internal/dvm"
)

func TestAssembleArrays(t *testing.T) {
	p := MustAssemble(`
.method main() regs=6
    const-int v0, #4
    new-array v1, v0
    array-len v2, v1
    sput-int v2, alen
    const-int v3, #2
    const-int v4, #99
    aput-int v4, v1, v3
    aget-int v5, v1, v3
    sput-int v5, got
    new v4, El
    aput v4, v1, v3
    aget v5, v1, v3
    if-eq v4, v5, same
    return-void
same:
    const-int v0, #1
    sput-int v0, matched
    return-void
.end
`)
	c, _ := runMethod(t, p, "main")
	if got := c.Heap.GetStatic(p.FieldID("alen"), dvm.KInt); got.Int != 4 {
		t.Errorf("alen = %d, want 4", got.Int)
	}
	if got := c.Heap.GetStatic(p.FieldID("got"), dvm.KInt); got.Int != 99 {
		t.Errorf("got = %d, want 99", got.Int)
	}
	if got := c.Heap.GetStatic(p.FieldID("matched"), dvm.KInt); got.Int != 1 {
		t.Error("aget did not return the aput object")
	}
}

func TestArrayMnemonicArity(t *testing.T) {
	for _, src := range []string{
		".method m() regs=2\n new-array v0\n.end\n",
		".method m() regs=2\n aget v0, v1\n.end\n",
		".method m() regs=2\n array-len v0\n.end\n",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("bad arity accepted: %q", src)
		}
	}
}

// TestAssemblerNeverPanics fuzzes the assembler with random line
// soups built from plausible tokens: it must always return (either a
// program or an error), never panic.
func TestAssemblerNeverPanics(t *testing.T) {
	tokens := []string{
		".method", ".end", "m()", "regs=2", "regs=x", "(a,b)",
		"iget", "iput", "sget", "sput", "goto", "try", "end-try",
		"if-eqz", "invoke-virtual", "invoke-static", "send", "fork",
		"v0", "v1", "v99", "#5", "#", "label:", ":", "->", "x,", ",",
		"field", "method", "nop", "return-void", "aget", "new-array",
	}
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		var sb strings.Builder
		lines := 1 + r.Intn(12)
		for l := 0; l < lines; l++ {
			words := 1 + r.Intn(5)
			for w := 0; w < words; w++ {
				sb.WriteString(tokens[r.Intn(len(tokens))])
				sb.WriteString(" ")
			}
			sb.WriteString("\n")
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("iter %d: assembler panicked on %q: %v", iter, sb.String(), rec)
				}
			}()
			_, _ = Assemble(sb.String())
		}()
	}
}

// TestMutatedValidSourceNeverPanics mutates a valid program by
// deleting and duplicating random lines.
func TestMutatedValidSourceNeverPanics(t *testing.T) {
	base := `
.method run(this) regs=1
    return-void
.end

.method f(h) regs=4
    iget v1, h, ptr
    if-eqz v1, skip
    invoke-virtual run, v1
skip:
    try handler
    sput v1, out
    end-try
    return-void
handler:
    return-void
.end
`
	lines := strings.Split(base, "\n")
	r := rand.New(rand.NewSource(4))
	for iter := 0; iter < 300; iter++ {
		mut := append([]string(nil), lines...)
		switch r.Intn(3) {
		case 0: // delete a line
			i := r.Intn(len(mut))
			mut = append(mut[:i], mut[i+1:]...)
		case 1: // duplicate a line
			i := r.Intn(len(mut))
			mut = append(mut[:i+1], mut[i:]...)
		case 2: // swap two lines
			i, j := r.Intn(len(mut)), r.Intn(len(mut))
			mut[i], mut[j] = mut[j], mut[i]
		}
		src := strings.Join(mut, "\n")
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("iter %d: panicked on mutated source: %v\n%s", iter, rec, src)
				}
			}()
			_, _ = Assemble(src)
		}()
	}
}

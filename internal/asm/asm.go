// Package asm assembles a textual, Dalvik-smali-like assembly syntax
// into dvm programs. Application models (internal/apps) and tests are
// written in this syntax.
//
// Syntax overview:
//
//	; line comment
//	.method onFocus(this) regs=4
//	    iget v1, this, handler      ; params are register aliases (this = v0)
//	    if-eqz v1, skip
//	    invoke-virtual run, v1
//	skip:
//	    return-void
//	.end
//
// Registers are written vN or by parameter name. Integer immediates
// are written #N. Field, method, and label operands are bare
// identifiers. Instructions with results use "-> vN".
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"cafa/internal/dvm"
)

// Assemble compiles source into a fresh program.
func Assemble(src string) (*dvm.Program, error) {
	p := dvm.NewProgram()
	if err := AssembleInto(p, src); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble for static program text; it panics on
// error.
func MustAssemble(src string) *dvm.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// AssembleInto compiles source into an existing program, so apps can
// mix generated and handwritten methods. Methods in src may call
// methods already present in p and vice versa only if assembled in
// one AssembleInto call or declared earlier.
func AssembleInto(p *dvm.Program, src string) error {
	lines := strings.Split(src, "\n")

	// Pass 1: collect method headers so invokes can reference methods
	// defined later in the same source.
	type rawMethod struct {
		header string
		hline  int
		body   []string
		blines []int
	}
	var methods []*rawMethod
	var cur *rawMethod
	for i, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, ".method"):
			if cur != nil {
				return errAt(i+1, "nested .method")
			}
			cur = &rawMethod{header: line, hline: i + 1}
		case line == ".end":
			if cur == nil {
				return errAt(i+1, ".end without .method")
			}
			methods = append(methods, cur)
			cur = nil
		default:
			if cur == nil {
				return errAt(i+1, "instruction outside .method: %q", line)
			}
			cur.body = append(cur.body, line)
			cur.blines = append(cur.blines, i+1)
		}
	}
	if cur != nil {
		return errAt(cur.hline, ".method %s missing .end", cur.header)
	}

	type parsedHeader struct {
		name   string
		params []string
		regs   int
	}
	headers := make([]parsedHeader, len(methods))
	compiled := make([]*dvm.Method, len(methods))
	for i, rm := range methods {
		h, err := parseHeader(rm.header)
		if err != nil {
			return errAt(rm.hline, "%v", err)
		}
		headers[i] = h
		m := &dvm.Method{Name: h.name, NumParams: len(h.params), NumRegs: h.regs}
		if _, err := p.AddMethod(m); err != nil {
			return errAt(rm.hline, "%v", err)
		}
		compiled[i] = m
	}

	// Pass 2: assemble bodies.
	for i, rm := range methods {
		a := &assembler{p: p, m: compiled[i], params: headers[i].params}
		if err := a.assemble(rm.body, rm.blines); err != nil {
			return err
		}
	}
	return p.Validate()
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func errAt(line int, format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", line, fmt.Sprintf(format, args...))
}

func parseHeader(line string) (h struct {
	name   string
	params []string
	regs   int
}, err error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, ".method"))
	open := strings.IndexByte(rest, '(')
	close := strings.IndexByte(rest, ')')
	if open < 0 || close < open {
		return h, fmt.Errorf("bad .method header %q (want NAME(params) regs=N)", line)
	}
	h.name = strings.TrimSpace(rest[:open])
	if h.name == "" {
		return h, fmt.Errorf("missing method name in %q", line)
	}
	plist := strings.TrimSpace(rest[open+1 : close])
	if plist != "" {
		for _, s := range strings.Split(plist, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				return h, fmt.Errorf("empty parameter name in %q", line)
			}
			h.params = append(h.params, s)
		}
	}
	tail := strings.TrimSpace(rest[close+1:])
	if !strings.HasPrefix(tail, "regs=") {
		return h, fmt.Errorf("missing regs=N in %q", line)
	}
	n, err := strconv.Atoi(strings.TrimPrefix(tail, "regs="))
	if err != nil || n <= 0 || n > 256 {
		return h, fmt.Errorf("bad register count in %q", line)
	}
	h.regs = n
	if len(h.params) > n {
		return h, fmt.Errorf("%d params exceed %d regs in %q", len(h.params), n, line)
	}
	return h, nil
}

type fixup struct {
	pc    int
	label string
	line  int
}

type assembler struct {
	p      *dvm.Program
	m      *dvm.Method
	params []string
	labels map[string]int
	fixups []fixup
}

func (a *assembler) assemble(body []string, lineNos []int) error {
	a.labels = make(map[string]int)
	for li, line := range body {
		ln := lineNos[li]
		// Peel leading labels ("name:" possibly followed by an instr).
		for {
			rest, label, ok := peelLabel(line)
			if !ok {
				break
			}
			if _, dup := a.labels[label]; dup {
				return errAt(ln, "duplicate label %q", label)
			}
			a.labels[label] = len(a.m.Code)
			line = rest
		}
		if line == "" {
			continue
		}
		if err := a.instr(line, ln); err != nil {
			return err
		}
	}
	for _, fx := range a.fixups {
		target, ok := a.labels[fx.label]
		if !ok {
			return errAt(fx.line, "undefined label %q", fx.label)
		}
		a.m.Code[fx.pc].Target = target
	}
	return nil
}

// peelLabel splits a leading "label:" off a line.
func peelLabel(line string) (rest, label string, ok bool) {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return line, "", false
	}
	cand := strings.TrimSpace(line[:i])
	if !isIdent(cand) {
		return line, "", false
	}
	return strings.TrimSpace(line[i+1:]), cand, true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '$', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

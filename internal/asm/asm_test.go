package asm

import (
	"strings"
	"testing"

	"cafa/internal/dvm"
	"cafa/internal/trace"
)

type nullEnv struct{}

func (nullEnv) Now() int64 { return 0 }
func (nullEnv) Intrinsic(c *dvm.Context, in dvm.Intrinsic, args []dvm.Value) (dvm.Value, bool, error) {
	return dvm.Int64(0), false, nil
}

func runMethod(t *testing.T, p *dvm.Program, name string, args ...dvm.Value) (*dvm.Context, *trace.Collector) {
	t.Helper()
	col := trace.NewCollector()
	idx, ok := p.MethodIndex(name)
	if !ok {
		t.Fatalf("no method %q", name)
	}
	c, err := dvm.NewContext(p, dvm.NewHeap(), nullEnv{}, col, 1, p.Methods[idx], args)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Run(0); st != dvm.Finished {
		t.Fatalf("%s: state=%v err=%v", name, st, c.Err)
	}
	return c, col
}

func TestAssembleFigure5OnFocus(t *testing.T) {
	// The onFocus handler from Figure 5 of the paper.
	p := MustAssemble(`
.method run(this) regs=1
    return-void
.end

.method onFocus(this) regs=4
    iget v1, this, handler
    if-eqz v1, skip
    invoke-virtual run, v1
skip:
    return-void
.end
`)
	// Null handler: guard skips the call, no crash, no branch logged.
	col := trace.NewCollector()
	h := dvm.NewHeap()
	act := h.New("Activity")
	idx := p.MustMethod("onFocus")
	c, err := dvm.NewContext(p, h, nullEnv{}, col, 1, p.Methods[idx], []dvm.Value{dvm.Obj(act.ID)})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Run(0); st != dvm.Finished {
		t.Fatalf("state=%v err=%v", st, c.Err)
	}
	for _, e := range col.T.Entries {
		if e.Op == trace.OpBranch {
			t.Error("taken if-eqz must not be logged")
		}
	}
	// Non-null handler: call happens, branch logged.
	handler := h.New("Handler")
	act.Set(p.FieldID("handler"), dvm.Obj(handler.ID))
	col2 := trace.NewCollector()
	c2, err := dvm.NewContext(p, h, nullEnv{}, col2, 1, p.Methods[idx], []dvm.Value{dvm.Obj(act.ID)})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Run(0); st != dvm.Finished {
		t.Fatalf("state=%v err=%v", st, c2.Err)
	}
	var sawBranch, sawInvoke bool
	for _, e := range col2.T.Entries {
		if e.Op == trace.OpBranch && e.Branch == trace.BranchIfEqz && e.Value == handler.ID {
			sawBranch = true
		}
		if e.Op == trace.OpInvoke {
			sawInvoke = true
		}
	}
	if !sawBranch || !sawInvoke {
		t.Errorf("sawBranch=%v sawInvoke=%v", sawBranch, sawInvoke)
	}
}

func TestParamAliases(t *testing.T) {
	p := MustAssemble(`
.method store(this, val) regs=3
    iput val, this, x
    return-void
.end
`)
	h := dvm.NewHeap()
	o := h.New("X")
	pay := h.New("Y")
	col := trace.NewCollector()
	c, err := dvm.NewContext(p, h, nullEnv{}, col, 1, p.Methods[p.MustMethod("store")],
		[]dvm.Value{dvm.Obj(o.ID), dvm.Obj(pay.ID)})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Run(0); st != dvm.Finished {
		t.Fatalf("state=%v err=%v", st, c.Err)
	}
	if v, ok := o.Get(p.FieldID("x")); !ok || v.Obj != pay.ID {
		t.Error("param-aliased store failed")
	}
}

func TestForwardMethodReference(t *testing.T) {
	p := MustAssemble(`
.method main() regs=2
    invoke-static later -> v0
    sput-int v0, out
    return-void
.end

.method later() regs=1
    const-int v0, #11
    return v0
.end
`)
	c, _ := runMethod(t, p, "main")
	if got := c.Heap.GetStatic(p.FieldID("out"), dvm.KInt); got.Int != 11 {
		t.Errorf("out = %d, want 11", got.Int)
	}
}

func TestIntLoopAndArithmetic(t *testing.T) {
	p := MustAssemble(`
.method main() regs=5
    const-int v0, #0    ; i
    const-int v1, #0    ; sum
    const-int v2, #10   ; limit
    const-int v3, #1
loop:
    if-int-ge v0, v2, done
    add-int v1, v1, v0
    add-int v0, v0, v3
    goto loop
done:
    sput-int v1, total
    mul-int v4, v3, v2
    sub-int v4, v4, v3
    sput-int v4, nine
    return-void
.end
`)
	c, _ := runMethod(t, p, "main")
	if got := c.Heap.GetStatic(p.FieldID("total"), dvm.KInt); got.Int != 45 {
		t.Errorf("total = %d, want 45", got.Int)
	}
	if got := c.Heap.GetStatic(p.FieldID("nine"), dvm.KInt); got.Int != 9 {
		t.Errorf("nine = %d, want 9", got.Int)
	}
}

func TestTryCatch(t *testing.T) {
	p := MustAssemble(`
.method main() regs=2
    try handler
    throw-npe
    end-try
    return-void
handler:
    const-int v0, #1
    sput-int v0, caught
    return-void
.end
`)
	c, _ := runMethod(t, p, "main")
	if got := c.Heap.GetStatic(p.FieldID("caught"), dvm.KInt); got.Int != 1 {
		t.Error("handler did not run")
	}
}

func TestIntrinsicMnemonics(t *testing.T) {
	// Every intrinsic mnemonic must assemble with its arity.
	src := `
.method target(arg) regs=1
    return-void
.end

.method main() regs=6
    const-int v0, #1
    const-method v1, target
    const-null v2
    send v0, v1, v0, v2
    send-front v0, v1, v2
    fork v1, v2 -> v3
    join v3
    new v4, Lock
    lock v4
    unlock v4
    wait v4
    notify v4
    register v0, v1
    fire v0, v2
    rpc v0, v1, v2 -> v5
    msg-send v0, v2
    msg-recv v0 -> v5
    sleep v0
    spin v0
    self -> v5
    return-void
.end
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Methods[p.MustMethod("main")]
	var n int
	for i := range m.Code {
		if m.Code[i].Code == dvm.CIntrinsic {
			n++
		}
	}
	if n != 16 {
		t.Errorf("assembled %d intrinsics, want 16", n)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no end", ".method m() regs=1\n return-void\n", "missing .end"},
		{"orphan end", ".end\n", ".end without .method"},
		{"nested method", ".method a() regs=1\n.method b() regs=1\n", "nested"},
		{"instr outside", "nop\n", "outside .method"},
		{"bad header", ".method broken regs=1\n.end\n", "bad .method header"},
		{"missing regs", ".method m()\n.end\n", "missing regs"},
		{"bad regcount", ".method m() regs=0\n.end\n", "bad register count"},
		{"too many params", ".method m(a,b,c) regs=2\n.end\n", "exceed"},
		{"dup method", ".method m() regs=1\n.end\n.method m() regs=1\n.end\n", "duplicate method"},
		{"unknown mnemonic", ".method m() regs=1\n frobnicate v0\n.end\n", "unknown mnemonic"},
		{"bad register", ".method m() regs=1\n const-null v9\n.end\n", "out of range"},
		{"bad reg name", ".method m() regs=1\n const-null w0\n.end\n", "bad register"},
		{"bad immediate", ".method m() regs=1\n const-int v0, 5\n.end\n", "bad immediate"},
		{"unknown method ref", ".method m() regs=1\n invoke-static nope\n.end\n", "unknown method"},
		{"undefined label", ".method m() regs=1\n goto nowhere\n.end\n", "undefined label"},
		{"dup label", ".method m() regs=1\nx:\nx:\n return-void\n.end\n", "duplicate label"},
		{"wrong arity", ".method m() regs=1\n move v0\n.end\n", "takes 2 operands"},
		{"res on void", ".method m() regs=1\n join v0 -> v0\n.end\n", "does not produce a result"},
		{"virtual no recv", ".method m() regs=1\n.end\n.method n() regs=1\n invoke-virtual m\n.end\n", "receiver"},
		{"empty operand", ".method m() regs=1\n move v0,, v0\n.end\n", "empty operand"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatal("assembled unexpectedly")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q missing %q", err, tc.want)
			}
		})
	}
}

func TestCommentsAndLabels(t *testing.T) {
	p := MustAssemble(`
; leading comment
.method main() regs=2   ; trailing comment
    const-int v0, #1    ; set
start: add-int v0, v0, v0
    if-int-lt v0, v0, start ; never taken
    sput-int v0, out
    return-void
.end
`)
	c, _ := runMethod(t, p, "main")
	if got := c.Heap.GetStatic(p.FieldID("out"), dvm.KInt); got.Int != 2 {
		t.Errorf("out = %d, want 2", got.Int)
	}
}

func TestAssembleIntoSharedProgram(t *testing.T) {
	p := dvm.NewProgram()
	if err := AssembleInto(p, ".method a() regs=1\n return-void\n.end\n"); err != nil {
		t.Fatal(err)
	}
	if err := AssembleInto(p, ".method b() regs=1\n invoke-static a\n return-void\n.end\n"); err != nil {
		t.Fatal(err)
	}
	if len(p.Methods) != 2 {
		t.Errorf("methods = %d, want 2", len(p.Methods))
	}
	runMethod(t, p, "b")
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad input")
		}
	}()
	MustAssemble("garbage\n")
}

func TestRoundTripThroughDisasm(t *testing.T) {
	p := MustAssemble(`
.method f(this) regs=3
    iget v1, this, ptr
    if-nez v1, use
    return-void
use:
    invoke-virtual f, v1
    return-void
.end
`)
	out := p.DisasmMethod(p.Methods[p.MustMethod("f")])
	for _, want := range []string{"iget", "if-nez", "invoke-virtual"} {
		if !strings.Contains(out, want) {
			t.Errorf("disasm missing %q", want)
		}
	}
}

package trace

import (
	"fmt"
	"sort"
)

// Trace is one recorded execution: the ordered operation list plus the
// metadata tables the offline analyzer needs (task kinds, interned
// names). The entry index in Entries is the global sequence number;
// the happens-before relation of §3 is always consistent with it.
type Trace struct {
	Entries []Entry

	// Tasks maps each TaskID appearing in the trace to its metadata.
	Tasks map[TaskID]TaskInfo

	// Interned name tables for diagnostics (may be partially empty).
	Fields  map[FieldID]string
	Methods map[MethodID]string
	Queues  map[QueueID]string

	// StreamLen is the entry count of a streamed trace whose Entries
	// were consumed rather than materialized. It is zero for batch
	// traces; Len() prefers it only when Entries is empty.
	StreamLen int
}

// New returns an empty trace with initialized tables.
func New() *Trace {
	return &Trace{
		Tasks:   make(map[TaskID]TaskInfo),
		Fields:  make(map[FieldID]string),
		Methods: make(map[MethodID]string),
		Queues:  make(map[QueueID]string),
	}
}

// Append adds an entry and returns its sequence number.
func (tr *Trace) Append(e Entry) int {
	tr.Entries = append(tr.Entries, e)
	return len(tr.Entries) - 1
}

// Len returns the number of entries: the materialized count, or the
// streamed count for a header-only trace whose entries were consumed
// one at a time.
func (tr *Trace) Len() int {
	if n := len(tr.Entries); n > 0 || tr.StreamLen == 0 {
		return n
	}
	return tr.StreamLen
}

// TaskName returns a diagnostic name for a task.
func (tr *Trace) TaskName(t TaskID) string {
	if ti, ok := tr.Tasks[t]; ok && ti.Name != "" {
		return ti.Name
	}
	return fmt.Sprintf("t%d", t)
}

// FieldName returns a diagnostic name for a field.
func (tr *Trace) FieldName(f FieldID) string {
	if n, ok := tr.Fields[f]; ok && n != "" {
		return n
	}
	return fmt.Sprintf("f%d", f)
}

// MethodName returns a diagnostic name for a method.
func (tr *Trace) MethodName(m MethodID) string {
	if n, ok := tr.Methods[m]; ok && n != "" {
		return n
	}
	return fmt.Sprintf("m%d", m)
}

// VarName renders a variable as owner.field.
func (tr *Trace) VarName(v VarID) string {
	if v.Owner() == NullObj {
		return fmt.Sprintf("static.%s", tr.FieldName(v.Field()))
	}
	return fmt.Sprintf("o%d.%s", v.Owner(), tr.FieldName(v.Field()))
}

// IsEventTask reports whether t is an event (as opposed to a regular
// or looper thread).
func (tr *Trace) IsEventTask(t TaskID) bool {
	return tr.Tasks[t].Kind == KindEvent
}

// LooperOf returns the looper thread that processed event t, or NoTask
// if t is not an event.
func (tr *Trace) LooperOf(t TaskID) TaskID {
	ti := tr.Tasks[t]
	if ti.Kind != KindEvent {
		return NoTask
	}
	return ti.Looper
}

// TaskIDs returns all task ids in ascending order.
func (tr *Trace) TaskIDs() []TaskID {
	ids := make([]TaskID, 0, len(tr.Tasks))
	for id := range tr.Tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EventCount returns the number of event tasks in the trace; this is
// the "Events" column of Table 1.
func (tr *Trace) EventCount() int {
	n := 0
	for _, ti := range tr.Tasks {
		if ti.Kind == KindEvent {
			n++
		}
	}
	return n
}

// Validate performs structural well-formedness checks:
//
//   - every entry's Op is valid and its Task is declared in Tasks;
//   - every task with entries has exactly one begin, preceding all its
//     other entries, and at most one end, following them;
//   - no entry follows a task's end;
//   - a task never begins before it is sent/forked (when the
//     sender/forker is present in the trace);
//   - entry Times are non-decreasing.
//
// It returns the first violation found, or nil.
func (tr *Trace) Validate() error {
	v := NewValidator(tr)
	for i := range tr.Entries {
		if err := v.Entry(&tr.Entries[i]); err != nil {
			return err
		}
	}
	return v.Finish()
}

// Validator performs the Validate checks incrementally, one entry at
// a time, so a streamed trace can be validated without materializing
// Entries. State is O(tasks), not O(trace). The header trace supplies
// the task table; Finish runs the end-of-trace table checks.
type Validator struct {
	tr       *Trace
	states   map[TaskID]*taskValState
	created  map[TaskID]int // seq of fork/send creating the task
	lastTime int64
	i        int
}

type taskValState struct {
	begun, ended bool
}

// NewValidator returns a Validator over the header's task table.
func NewValidator(header *Trace) *Validator {
	return &Validator{
		tr:      header,
		states:  make(map[TaskID]*taskValState),
		created: make(map[TaskID]int),
	}
}

// Entry checks the next entry in sequence; messages are identical to
// the batch Validate.
func (v *Validator) Entry(e *Entry) error {
	tr, i := v.tr, v.i
	v.i++
	if !e.Op.Valid() {
		return fmt.Errorf("trace: entry %d: invalid op %d", i, uint8(e.Op))
	}
	if e.Task == NoTask {
		return fmt.Errorf("trace: entry %d (%s): zero task id", i, e)
	}
	if _, ok := tr.Tasks[e.Task]; !ok {
		return fmt.Errorf("trace: entry %d (%s): task t%d not declared", i, e, e.Task)
	}
	if e.Time < v.lastTime {
		return fmt.Errorf("trace: entry %d (%s): time goes backwards (%d < %d)", i, e, e.Time, v.lastTime)
	}
	v.lastTime = e.Time

	st := v.states[e.Task]
	if st == nil {
		st = &taskValState{}
		v.states[e.Task] = st
	}
	switch e.Op {
	case OpBegin:
		if st.begun {
			return fmt.Errorf("trace: entry %d: task %s begins twice", i, tr.TaskName(e.Task))
		}
		st.begun = true
	case OpEnd:
		if !st.begun {
			return fmt.Errorf("trace: entry %d: task %s ends before beginning", i, tr.TaskName(e.Task))
		}
		if st.ended {
			return fmt.Errorf("trace: entry %d: task %s ends twice", i, tr.TaskName(e.Task))
		}
		st.ended = true
	default:
		if !st.begun {
			return fmt.Errorf("trace: entry %d (%s): operation before begin of %s", i, e, tr.TaskName(e.Task))
		}
		if st.ended {
			return fmt.Errorf("trace: entry %d (%s): operation after end of %s", i, e, tr.TaskName(e.Task))
		}
	}
	switch e.Op {
	case OpFork, OpSend, OpSendAtFront:
		if e.Target == NoTask {
			return fmt.Errorf("trace: entry %d (%s): zero target", i, e)
		}
		if tst := v.states[e.Target]; tst != nil && tst.begun {
			return fmt.Errorf("trace: entry %d (%s): target t%d already began", i, e, e.Target)
		}
		if prev, dup := v.created[e.Target]; dup {
			return fmt.Errorf("trace: entry %d (%s): task t%d created twice (first at %d)", i, e, e.Target, prev)
		}
		v.created[e.Target] = i
	}
	return nil
}

// Finish runs the end-of-trace task-table checks.
func (v *Validator) Finish() error {
	tr := v.tr
	for id, ti := range tr.Tasks {
		if ti.ID != 0 && ti.ID != id {
			return fmt.Errorf("trace: task table entry %d has mismatched ID %d", id, ti.ID)
		}
		if ti.Kind == KindEvent {
			if ti.Looper == NoTask {
				return fmt.Errorf("trace: event %s has no looper", tr.TaskName(id))
			}
			if lt, ok := tr.Tasks[ti.Looper]; !ok || lt.Kind != KindThread {
				return fmt.Errorf("trace: event %s: looper t%d is not a thread", tr.TaskName(id), ti.Looper)
			}
		}
	}
	return nil
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"cafa/internal/obs"
)

// Codec observability (internal/obs): bytes and entries written by
// the binary and text encoders (trace emission volume). The counting
// wrapper sits under bufio, so the hot append path is untouched.
var (
	cEncodedTraces  = obs.NewCounter("trace_encoded_traces_total")
	cEncodedEntries = obs.NewCounter("trace_encoded_entries_total")
	cEncodedBytes   = obs.NewCounter("trace_encoded_bytes_total")
)

// countingWriter counts bytes flowing to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Binary trace format ("logger device" format):
//
//	magic "CAFA" | version uvarint | task table | name tables | entry count | entries
//
// Every integer is an unsigned varint; signed quantities (Time, Delay)
// use zigzag encoding. Each entry is an op byte, a field-presence
// bitmask, then the present fields in field order. The format is
// self-contained: a decoded trace compares equal to the encoded one.

const (
	magic         = "CAFA"
	formatVersion = 1
)

// Field-presence bits, in encoding order.
const (
	fTarget = 1 << iota
	fQueue
	fDelay
	fExternal
	fMonitor
	fLock
	fListener
	fVar
	fValue
	fTxn
	fPC
	fTargetPC
	fBranch
	fMethod
	fTime
)

// Encode writes the trace in binary form.
func (tr *Trace) Encode(w io.Writer) error {
	cw := &countingWriter{w: w}
	defer func() {
		cEncodedTraces.Inc()
		cEncodedEntries.Add(int64(len(tr.Entries)))
		cEncodedBytes.Add(cw.n)
	}()
	bw := bufio.NewWriter(cw)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	putUvarint(bw, formatVersion)

	// Task table.
	putUvarint(bw, uint64(len(tr.Tasks)))
	for _, id := range tr.TaskIDs() {
		ti := tr.Tasks[id]
		putUvarint(bw, uint64(id))
		putUvarint(bw, uint64(ti.Kind))
		putString(bw, ti.Name)
		putUvarint(bw, uint64(ti.Looper))
		putUvarint(bw, uint64(ti.Queue))
		putVarint(bw, int64(ti.Proc))
	}
	putNameTable(bw, toU32Map(tr.Fields))
	putNameTable(bw, toU32Map(tr.Methods))
	putNameTable(bw, toU32Map(tr.Queues))

	putUvarint(bw, uint64(len(tr.Entries)))
	for i := range tr.Entries {
		if err := encodeEntry(bw, &tr.Entries[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeEntry(bw *bufio.Writer, e *Entry) error {
	if !e.Op.Valid() {
		return fmt.Errorf("trace: encode: invalid op %d", uint8(e.Op))
	}
	if err := bw.WriteByte(byte(e.Op)); err != nil {
		return err
	}
	putUvarint(bw, uint64(e.Task))
	var mask uint64
	if e.Target != 0 {
		mask |= fTarget
	}
	if e.Queue != 0 {
		mask |= fQueue
	}
	if e.Delay != 0 {
		mask |= fDelay
	}
	if e.External {
		mask |= fExternal
	}
	if e.Monitor != 0 {
		mask |= fMonitor
	}
	if e.Lock != 0 {
		mask |= fLock
	}
	if e.Listener != 0 {
		mask |= fListener
	}
	if e.Var != 0 {
		mask |= fVar
	}
	if e.Value != 0 {
		mask |= fValue
	}
	if e.Txn != 0 {
		mask |= fTxn
	}
	if e.PC != 0 {
		mask |= fPC
	}
	if e.TargetPC != 0 {
		mask |= fTargetPC
	}
	if e.Branch != 0 {
		mask |= fBranch
	}
	if e.Method != 0 {
		mask |= fMethod
	}
	if e.Time != 0 {
		mask |= fTime
	}
	putUvarint(bw, mask)
	if mask&fTarget != 0 {
		putUvarint(bw, uint64(e.Target))
	}
	if mask&fQueue != 0 {
		putUvarint(bw, uint64(e.Queue))
	}
	if mask&fDelay != 0 {
		putVarint(bw, e.Delay)
	}
	if mask&fMonitor != 0 {
		putUvarint(bw, uint64(e.Monitor))
	}
	if mask&fLock != 0 {
		putUvarint(bw, uint64(e.Lock))
	}
	if mask&fListener != 0 {
		putUvarint(bw, uint64(e.Listener))
	}
	if mask&fVar != 0 {
		putUvarint(bw, uint64(e.Var))
	}
	if mask&fValue != 0 {
		putUvarint(bw, uint64(e.Value))
	}
	if mask&fTxn != 0 {
		putUvarint(bw, uint64(e.Txn))
	}
	if mask&fPC != 0 {
		putUvarint(bw, uint64(e.PC))
	}
	if mask&fTargetPC != 0 {
		putUvarint(bw, uint64(e.TargetPC))
	}
	if mask&fBranch != 0 {
		putUvarint(bw, uint64(e.Branch))
	}
	if mask&fMethod != 0 {
		putUvarint(bw, uint64(e.Method))
	}
	if mask&fTime != 0 {
		putVarint(bw, e.Time)
	}
	return nil
}

// Decode reads a binary trace written by Encode. It is a collect-all
// wrapper over the streaming decoder; entry-section errors are
// *PosError values with the entry index and byte offset.
func Decode(r io.Reader) (*Trace, error) {
	d, err := newBinaryStream(asBufio(r))
	if err != nil {
		return nil, err
	}
	return collect(d)
}

// decodeBinaryHeader reads magic, version, the task table, the name
// tables, and the declared entry count. The returned trace has no
// Entries; StreamLen carries the declared count.
func decodeBinaryHeader(br byteReader) (*Trace, int, error) {
	var mg [4]byte
	if _, err := io.ReadFull(br, mg[:]); err != nil {
		return nil, 0, fmt.Errorf("trace: decode: %w", err)
	}
	if string(mg[:]) != magic {
		return nil, 0, errors.New("trace: decode: bad magic")
	}
	ver, err := getUvarint(br)
	if err != nil {
		return nil, 0, err
	}
	if ver != formatVersion {
		return nil, 0, fmt.Errorf("trace: decode: unsupported version %d", ver)
	}
	tr := New()

	ntasks, err := getUvarint(br)
	if err != nil {
		return nil, 0, err
	}
	for i := uint64(0); i < ntasks; i++ {
		var ti TaskInfo
		id, err := getUvarint(br)
		if err != nil {
			return nil, 0, err
		}
		kind, err := getUvarint(br)
		if err != nil {
			return nil, 0, err
		}
		name, err := getString(br)
		if err != nil {
			return nil, 0, err
		}
		looper, err := getUvarint(br)
		if err != nil {
			return nil, 0, err
		}
		queue, err := getUvarint(br)
		if err != nil {
			return nil, 0, err
		}
		proc, err := getVarint(br)
		if err != nil {
			return nil, 0, err
		}
		ti.ID = TaskID(id)
		ti.Kind = TaskKind(kind)
		ti.Name = name
		ti.Looper = TaskID(looper)
		ti.Queue = QueueID(queue)
		ti.Proc = int32(proc)
		tr.Tasks[ti.ID] = ti
	}
	fields, err := getNameTable(br)
	if err != nil {
		return nil, 0, err
	}
	methods, err := getNameTable(br)
	if err != nil {
		return nil, 0, err
	}
	queues, err := getNameTable(br)
	if err != nil {
		return nil, 0, err
	}
	for k, v := range fields {
		tr.Fields[FieldID(k)] = v
	}
	for k, v := range methods {
		tr.Methods[MethodID(k)] = v
	}
	for k, v := range queues {
		tr.Queues[QueueID(k)] = v
	}

	n, err := getUvarint(br)
	if err != nil {
		return nil, 0, err
	}
	if n > math.MaxInt32 {
		return nil, 0, fmt.Errorf("trace: decode: absurd entry count %d", n)
	}
	tr.StreamLen = int(n)
	return tr, int(n), nil
}

func decodeEntry(br byteReader) (Entry, error) {
	var e Entry
	op, err := br.ReadByte()
	if err != nil {
		return e, err
	}
	e.Op = Op(op)
	if !e.Op.Valid() {
		return e, fmt.Errorf("invalid op %d", op)
	}
	task, err := getUvarint(br)
	if err != nil {
		return e, err
	}
	e.Task = TaskID(task)
	mask, err := getUvarint(br)
	if err != nil {
		return e, err
	}
	e.External = mask&fExternal != 0
	read := func(bit uint64) (uint64, error) {
		if mask&bit == 0 {
			return 0, nil
		}
		return getUvarint(br)
	}
	var v uint64
	if v, err = read(fTarget); err != nil {
		return e, err
	}
	e.Target = TaskID(v)
	if v, err = read(fQueue); err != nil {
		return e, err
	}
	e.Queue = QueueID(v)
	if mask&fDelay != 0 {
		if e.Delay, err = getVarint(br); err != nil {
			return e, err
		}
	}
	if v, err = read(fMonitor); err != nil {
		return e, err
	}
	e.Monitor = MonitorID(v)
	if v, err = read(fLock); err != nil {
		return e, err
	}
	e.Lock = LockID(v)
	if v, err = read(fListener); err != nil {
		return e, err
	}
	e.Listener = ListenerID(v)
	if v, err = read(fVar); err != nil {
		return e, err
	}
	e.Var = VarID(v)
	if v, err = read(fValue); err != nil {
		return e, err
	}
	e.Value = ObjID(v)
	if v, err = read(fTxn); err != nil {
		return e, err
	}
	e.Txn = TxnID(v)
	if v, err = read(fPC); err != nil {
		return e, err
	}
	e.PC = PC(v)
	if v, err = read(fTargetPC); err != nil {
		return e, err
	}
	e.TargetPC = PC(v)
	if v, err = read(fBranch); err != nil {
		return e, err
	}
	e.Branch = BranchKind(v)
	if v, err = read(fMethod); err != nil {
		return e, err
	}
	e.Method = MethodID(v)
	if mask&fTime != 0 {
		if e.Time, err = getVarint(br); err != nil {
			return e, err
		}
	}
	return e, nil
}

// --- varint helpers ---

func putUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n]) //nolint:errcheck // flushed error surfaces at Flush
}

func putVarint(bw *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	bw.Write(buf[:n]) //nolint:errcheck
}

func putString(bw *bufio.Writer, s string) {
	putUvarint(bw, uint64(len(s)))
	bw.WriteString(s) //nolint:errcheck
}

func getUvarint(br io.ByteReader) (uint64, error) {
	return binary.ReadUvarint(br)
}

func getVarint(br io.ByteReader) (int64, error) {
	return binary.ReadVarint(br)
}

func getString(br byteReader) (string, error) {
	n, err := getUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trace: decode: absurd string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func toU32Map[K ~uint32](m map[K]string) map[uint32]string {
	out := make(map[uint32]string, len(m))
	for k, v := range m {
		out[uint32(k)] = v
	}
	return out
}

func putNameTable(bw *bufio.Writer, m map[uint32]string) {
	putUvarint(bw, uint64(len(m)))
	// Deterministic order.
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		putUvarint(bw, uint64(k))
		putString(bw, m[k])
	}
}

func getNameTable(br byteReader) (map[uint32]string, error) {
	n, err := getUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("trace: decode: absurd table size %d", n)
	}
	m := make(map[uint32]string, n)
	for i := uint64(0); i < n; i++ {
		k, err := getUvarint(br)
		if err != nil {
			return nil, err
		}
		v, err := getString(br)
		if err != nil {
			return nil, err
		}
		m[uint32(k)] = v
	}
	return m, nil
}

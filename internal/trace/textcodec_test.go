package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestTextRoundTrip: the text codec is lossless on a trace exercising
// every operand kind.
func TestTextRoundTrip(t *testing.T) {
	tr := fuzzSeedTrace()
	var buf bytes.Buffer
	if err := tr.EncodeText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode:\n%s\n%v", buf.String(), err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip changed the trace:\nwant %+v\ngot  %+v", tr, got)
	}
}

// TestDecodeAutoSniffsBoth: DecodeAuto picks the right codec from the
// leading bytes.
func TestDecodeAutoSniffsBoth(t *testing.T) {
	tr := fuzzSeedTrace()
	var bin, txt bytes.Buffer
	if err := tr.Encode(&bin); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeText(&txt); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"binary": bin.Bytes(), "text": txt.Bytes()} {
		got, err := DecodeAuto(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Errorf("%s: DecodeAuto changed the trace", name)
		}
	}
	if _, err := DecodeAuto(strings.NewReader("")); err == nil {
		t.Error("empty input: want error")
	}
}

// TestTextRejectsMalformed spot-checks the parser's error paths.
func TestTextRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := fuzzSeedTrace().EncodeText(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	for name, bad := range map[string]string{
		"bad header":       "CAFA-TEXT 9\ntasks 0\n",
		"missing section":  "CAFA-TEXT 1\nentries 0\n",
		"absurd count":     "CAFA-TEXT 1\ntasks 99999999999\n",
		"truncated":        good[:len(good)/2],
		"unknown op":       strings.Replace(good, "\nbegin task=1", "\nbgein task=1", 1),
		"unknown operand":  strings.Replace(good, "lock=4", "lokc=4", 1),
		"entry sans task":  strings.Replace(good, "begin task=1", "begin time=0", 1),
		"unquoted name":    strings.Replace(good, `"mainQ"`, "mainQ", 1),
		"duplicate method": strings.Replace(good, "methods 1\n9 \"onDestroy\"", "methods 2\n9 \"onDestroy\"\n9 \"x\"", 1),
	} {
		if _, err := DecodeText(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

// FuzzTextTraceRoundTrip locks the text codec the same way the binary
// fuzz target does: anything that parses must re-encode canonically
// and round-trip to the identical trace; malformed input must error,
// never panic.
func FuzzTextTraceRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := fuzzSeedTrace().EncodeText(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("CAFA-TEXT 1\ntasks 0\nfields 0\nmethods 0\nqueues 0\nentries 0\n"))
	f.Add([]byte("CAFA-TEXT 1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeText(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.EncodeText(&buf); err != nil {
			t.Fatalf("decoded trace failed to encode: %v", err)
		}
		tr2, err := DecodeText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode:\n%s\n%v", buf.String(), err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round trip changed the trace:\n first: %+v\nsecond: %+v", tr, tr2)
		}
		var buf2 bytes.Buffer
		if err := tr2.EncodeText(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("encoding is not canonical: same trace produced different bytes")
		}
		// The two codecs must agree: a text-decoded trace round-trips
		// through the binary codec unchanged.
		var bin bytes.Buffer
		if err := tr.Encode(&bin); err != nil {
			t.Fatalf("binary encode of text-decoded trace: %v", err)
		}
		tr3, err := Decode(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("binary round trip: %v", err)
		}
		if !reflect.DeepEqual(tr, tr3) {
			t.Fatal("binary codec disagrees with text codec on the same trace")
		}
	})
}

package trace

import (
	"bytes"
	"strings"
	"testing"
)

// minimalText is a well-formed text trace small enough to reason
// about line numbers exactly:
//
//	1  CAFA-TEXT 1
//	2  tasks 1
//	3  task 1 kind=0 looper=0 queue=0 proc=0 "T"
//	4  fields 0
//	5  methods 0
//	6  queues 0
//	7  entries 2
//	8  begin task=1
//	9  end task=1
const minimalText = "CAFA-TEXT 1\n" +
	"tasks 1\n" +
	"task 1 kind=0 looper=0 queue=0 proc=0 \"T\"\n" +
	"fields 0\n" +
	"methods 0\n" +
	"queues 0\n" +
	"entries 2\n" +
	"begin task=1\n" +
	"end task=1\n"

func TestMinimalTextDecodes(t *testing.T) {
	tr, err := DecodeText(strings.NewReader(minimalText))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 2 || len(tr.Tasks) != 1 {
		t.Fatalf("unexpected shape: %d entries, %d tasks", len(tr.Entries), len(tr.Tasks))
	}
}

// TestTextErrorsCarryLineNumbers locks the position reporting: every
// decode failure inside the body must name the line it happened on,
// so a corrupted multi-megabyte trace points at the damage instead of
// just failing.
func TestTextErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  []string // substrings the error must contain
	}{
		{
			// entries says 2 but the file ends after one — EOF while
			// reading the entry section; the last good line is 8.
			name:  "truncated file",
			input: strings.TrimSuffix(minimalText, "end task=1\n"),
			want:  []string{"line 8", "entries", "EOF"},
		},
		{
			// A line that stops mid-record: "begin" alone has no
			// operands at all.
			name:  "truncated entry line",
			input: strings.Replace(minimalText, "begin task=1", "begin", 1),
			want:  []string{"line 8", "malformed entry"},
		},
		{
			name:  "bad record tag",
			input: strings.Replace(minimalText, "end task=1", "bogus task=1", 1),
			want:  []string{"line 9", `unknown op "bogus"`},
		},
		{
			name:  "bad operand value",
			input: strings.Replace(minimalText, "end task=1", "end task=banana", 1),
			want:  []string{"line 9", `bad task "banana"`},
		},
		{
			name:  "task table truncated",
			input: "CAFA-TEXT 1\ntasks 2\ntask 1 kind=0 looper=0 queue=0 proc=0 \"T\"\n",
			want:  []string{"line 3", "task table"},
		},
		{
			name:  "table id not a number",
			input: strings.Replace(minimalText, "methods 0", "methods 1\nx \"m\"", 1),
			want:  []string{"line 6", "methods table", `bad id "x"`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeText(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			for _, sub := range tc.want {
				if !strings.Contains(err.Error(), sub) {
					t.Errorf("error %q missing %q", err, sub)
				}
			}
		})
	}
}

// TestDecodeAutoMixedFormats checks the sniffing boundary: a file
// claiming one format with the other format's body fails inside the
// claimed codec with that codec's diagnostics — the sniffer never
// silently falls back.
func TestDecodeAutoMixedFormats(t *testing.T) {
	// Text header, binary body: routed to the text decoder, which
	// reports the offending line.
	tr := fuzzSeedTrace()
	var bin bytes.Buffer
	if err := tr.Encode(&bin); err != nil {
		t.Fatal(err)
	}
	mixed := append([]byte("CAFA-TEXT 1\n"), bin.Bytes()...)
	_, err := DecodeAuto(bytes.NewReader(mixed))
	if err == nil {
		t.Fatal("text header with binary body: want error")
	}
	if !strings.Contains(err.Error(), "decode text") || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want a text-decoder error naming line 2, got %q", err)
	}

	// Binary magic, text junk: routed to the binary decoder. "CAFA"
	// followed by text is a bad varint/section, never a text parse.
	_, err = DecodeAuto(strings.NewReader("CAFA\ntasks 1\nbegin task=1\n"))
	if err == nil {
		t.Fatal("binary magic with text body: want error")
	}
	if strings.Contains(err.Error(), "decode text") {
		t.Errorf("binary-magic input must not reach the text decoder: %q", err)
	}

	// A header that is neither magic goes to the binary decoder and
	// fails on magic, naming what was found.
	_, err = DecodeAuto(strings.NewReader("CAFE-TEXT 1\n"))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Errorf("near-miss magic: want bad-magic error, got %v", err)
	}
}

package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for op := OpBegin; op < opMax; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "Op(") {
			t.Errorf("op %d has no name", uint8(op))
		}
		if !op.Valid() {
			t.Errorf("op %d should be valid", uint8(op))
		}
	}
	if OpInvalid.Valid() {
		t.Error("OpInvalid should not be valid")
	}
	if opMax.Valid() {
		t.Error("opMax should not be valid")
	}
}

func TestMakeVar(t *testing.T) {
	cases := []struct {
		owner ObjID
		field FieldID
	}{
		{0, 0}, {1, 2}, {NullObj, 7}, {0xffffffff, 0xffffffff}, {42, 0},
	}
	for _, c := range cases {
		v := MakeVar(c.owner, c.field)
		if v.Owner() != c.owner || v.Field() != c.field {
			t.Errorf("MakeVar(%d,%d) round-trip = (%d,%d)", c.owner, c.field, v.Owner(), v.Field())
		}
	}
}

func TestMakeVarQuick(t *testing.T) {
	f := func(owner uint32, field uint32) bool {
		v := MakeVar(ObjID(owner), FieldID(field))
		return v.Owner() == ObjID(owner) && v.Field() == FieldID(field)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntryFreeAlloc(t *testing.T) {
	free := Entry{Op: OpPtrWrite, Value: NullObj}
	if !free.IsFree() || free.IsAlloc() {
		t.Error("null pointer write should be a free")
	}
	alloc := Entry{Op: OpPtrWrite, Value: 5}
	if alloc.IsFree() || !alloc.IsAlloc() {
		t.Error("non-null pointer write should be an allocation")
	}
	read := Entry{Op: OpPtrRead, Value: NullObj}
	if read.IsFree() || read.IsAlloc() {
		t.Error("pointer read is neither free nor alloc")
	}
}

// validTrace builds a small well-formed trace exercising all ops.
func validTrace() *Trace {
	tr := New()
	tr.Tasks[1] = TaskInfo{ID: 1, Kind: KindThread, Name: "looper"}
	tr.Tasks[2] = TaskInfo{ID: 2, Kind: KindThread, Name: "worker"}
	tr.Tasks[3] = TaskInfo{ID: 3, Kind: KindEvent, Name: "onCreate", Looper: 1, Queue: 1}
	tr.Tasks[4] = TaskInfo{ID: 4, Kind: KindEvent, Name: "onDestroy", Looper: 1, Queue: 1}
	tr.Fields[1] = "providerUtils"
	tr.Methods[1] = "onCreate"
	tr.Queues[1] = "main"
	es := []Entry{
		{Task: 1, Op: OpBegin},
		{Task: 1, Op: OpFork, Target: 2},
		{Task: 2, Op: OpBegin},
		{Task: 2, Op: OpSend, Target: 3, Queue: 1, Delay: 5},
		{Task: 2, Op: OpSendAtFront, Target: 4, Queue: 1},
		{Task: 2, Op: OpLock, Lock: 9},
		{Task: 2, Op: OpWrite, Var: MakeVar(7, 1)},
		{Task: 2, Op: OpUnlock, Lock: 9},
		{Task: 2, Op: OpNotify, Monitor: 3},
		{Task: 2, Op: OpEnd},
		{Task: 1, Op: OpJoin, Target: 2},
		{Task: 4, Op: OpBegin, Queue: 1},
		{Task: 4, Op: OpRegister, Listener: 11},
		{Task: 4, Op: OpPtrWrite, Var: MakeVar(7, 1), Value: NullObj, PC: 3, Method: 1},
		{Task: 4, Op: OpEnd},
		{Task: 3, Op: OpBegin, Queue: 1},
		{Task: 3, Op: OpPerform, Listener: 11},
		{Task: 3, Op: OpPtrRead, Var: MakeVar(7, 1), Value: 12, PC: 5, Method: 1},
		{Task: 3, Op: OpBranch, Value: 12, PC: 6, TargetPC: 9, Branch: BranchIfNez, Method: 1},
		{Task: 3, Op: OpDeref, Value: 12, PC: 7, Method: 1},
		{Task: 3, Op: OpInvoke, Method: 1, PC: 7},
		{Task: 3, Op: OpRead, Var: 99},
		{Task: 3, Op: OpReturn, Method: 1, PC: 8},
		{Task: 3, Op: OpRPCCall, Txn: 77},
		{Task: 3, Op: OpRPCRet, Txn: 77},
		{Task: 3, Op: OpMsgSend, Txn: 78},
		{Task: 3, Op: OpWait, Monitor: 3},
		{Task: 3, Op: OpEnd},
		{Task: 1, Op: OpEnd},
	}
	for i, e := range es {
		e.Time = int64(i)
		tr.Append(e)
	}
	return tr
}

func TestValidateOK(t *testing.T) {
	tr := validTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func(mut func(tr *Trace)) *Trace {
		tr := validTrace()
		mut(tr)
		return tr
	}
	cases := []struct {
		name string
		tr   *Trace
		want string
	}{
		{"invalid op", mk(func(tr *Trace) { tr.Entries[0].Op = opMax }), "invalid op"},
		{"zero task", mk(func(tr *Trace) { tr.Entries[0].Task = 0 }), "zero task"},
		{"undeclared task", mk(func(tr *Trace) { tr.Entries[0].Task = 999 }), "not declared"},
		{"time backwards", mk(func(tr *Trace) { tr.Entries[5].Time = 0 }), "time goes backwards"},
		{"double begin", mk(func(tr *Trace) { tr.Entries[1] = Entry{Task: 1, Op: OpBegin, Time: 1} }), "begins twice"},
		{"op before begin", mk(func(tr *Trace) { tr.Entries[2] = Entry{Task: 2, Op: OpRead, Time: 2} }), "before begin"},
		{"end before begin", mk(func(tr *Trace) { tr.Entries[2] = Entry{Task: 2, Op: OpEnd, Time: 2} }), "ends before beginning"},
		{"zero fork target", mk(func(tr *Trace) { tr.Entries[1].Target = 0 }), "zero target"},
		{"event without looper", mk(func(tr *Trace) {
			ti := tr.Tasks[3]
			ti.Looper = 0
			tr.Tasks[3] = ti
		}), "no looper"},
		{"event looper not thread", mk(func(tr *Trace) {
			ti := tr.Tasks[3]
			ti.Looper = 4
			tr.Tasks[3] = ti
		}), "not a thread"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.tr.Validate()
			if err == nil {
				t.Fatal("validation unexpectedly passed")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := validTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Entries, got.Entries) {
		t.Error("entries differ after round trip")
	}
	if !reflect.DeepEqual(tr.Tasks, got.Tasks) {
		t.Error("task tables differ after round trip")
	}
	if !reflect.DeepEqual(tr.Fields, got.Fields) || !reflect.DeepEqual(tr.Methods, got.Methods) || !reflect.DeepEqual(tr.Queues, got.Queues) {
		t.Error("name tables differ after round trip")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	tr := validTrace()
	var a, b bytes.Buffer
	if err := tr.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("encoding is not deterministic")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(bytes.NewReader([]byte("CAFA\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncation at every prefix must error, not panic.
	tr := validTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for n := 0; n < len(data)-1; n += 7 {
		if _, err := Decode(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncated input of %d bytes accepted", n)
		}
	}
}

// randomEntry builds a structurally plausible random entry for the
// codec property test.
func randomEntry(r *rand.Rand) Entry {
	ops := []Op{
		OpBegin, OpEnd, OpRead, OpWrite, OpFork, OpJoin, OpWait, OpNotify,
		OpSend, OpSendAtFront, OpRegister, OpPerform, OpLock, OpUnlock,
		OpPtrRead, OpPtrWrite, OpDeref, OpBranch, OpInvoke, OpReturn,
		OpRPCCall, OpRPCHandle, OpRPCReply, OpRPCRet, OpMsgSend, OpMsgRecv,
	}
	return Entry{
		Task:     TaskID(r.Uint32()%1000 + 1),
		Op:       ops[r.Intn(len(ops))],
		Time:     r.Int63n(1 << 40),
		Target:   TaskID(r.Uint32() % 100),
		Queue:    QueueID(r.Uint32() % 8),
		Delay:    r.Int63n(1000) - 100,
		External: r.Intn(2) == 0,
		Monitor:  MonitorID(r.Uint32() % 50),
		Lock:     LockID(r.Uint32() % 50),
		Listener: ListenerID(r.Uint32() % 50),
		Var:      VarID(r.Uint64()),
		Value:    ObjID(r.Uint32()),
		Txn:      TxnID(r.Uint32()),
		PC:       PC(r.Uint32() % 10000),
		TargetPC: PC(r.Uint32() % 10000),
		Branch:   BranchKind(r.Intn(3)),
		Method:   MethodID(r.Uint32() % 500),
	}
}

func TestCodecQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		tr := New()
		n := r.Intn(50)
		for i := 0; i < n; i++ {
			e := randomEntry(r)
			tr.Append(e)
			if _, ok := tr.Tasks[e.Task]; !ok {
				tr.Tasks[e.Task] = TaskInfo{ID: e.Task, Kind: KindThread, Name: "t"}
			}
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(got.Entries) != len(tr.Entries) {
			t.Fatalf("iter %d: %d entries, want %d", iter, len(got.Entries), len(tr.Entries))
		}
		if len(tr.Entries) > 0 && !reflect.DeepEqual(tr.Entries, got.Entries) {
			t.Fatalf("iter %d: entries differ", iter)
		}
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.DeclareTask(TaskInfo{ID: 1, Kind: KindThread, Name: "main"})
	c.InternField(2, "x")
	c.InternMethod(3, "run")
	c.InternQueue(4, "main")
	c.Emit(Entry{Task: 1, Op: OpBegin})
	c.Emit(Entry{Task: 1, Op: OpEnd})
	if c.T.Len() != 2 {
		t.Fatalf("collector has %d entries, want 2", c.T.Len())
	}
	if c.T.TaskName(1) != "main" || c.T.FieldName(2) != "x" || c.T.MethodName(3) != "run" {
		t.Error("name tables not populated")
	}
	if got := c.T.VarName(MakeVar(0, 2)); got != "static.x" {
		t.Errorf("VarName static = %q", got)
	}
	if got := c.T.VarName(MakeVar(9, 2)); got != "o9.x" {
		t.Errorf("VarName instance = %q", got)
	}
	// Discard must be a no-op and never panic.
	var d Discard
	d.DeclareTask(TaskInfo{})
	d.Emit(Entry{})
	d.InternField(0, "")
	d.InternMethod(0, "")
	d.InternQueue(0, "")
}

func TestWriteTextAndStrings(t *testing.T) {
	tr := validTrace()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"send(", "sendAtFront(", "fork(", "if-nez", "rpcCall", "txn77"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines != tr.Len() {
		t.Errorf("text dump has %d lines, want %d", lines, tr.Len())
	}
}

func TestEventCountAndLooperOf(t *testing.T) {
	tr := validTrace()
	if got := tr.EventCount(); got != 2 {
		t.Errorf("EventCount = %d, want 2", got)
	}
	if got := tr.LooperOf(3); got != 1 {
		t.Errorf("LooperOf(event) = %d, want 1", got)
	}
	if got := tr.LooperOf(1); got != NoTask {
		t.Errorf("LooperOf(thread) = %d, want 0", got)
	}
	if !tr.IsEventTask(3) || tr.IsEventTask(2) {
		t.Error("IsEventTask misclassifies")
	}
	ids := tr.TaskIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Error("TaskIDs not ascending")
		}
	}
}

func TestTaskKindString(t *testing.T) {
	if KindThread.String() != "thread" || KindEvent.String() != "event" {
		t.Error("TaskKind strings wrong")
	}
	if s := TaskKind(9).String(); !strings.Contains(s, "9") {
		t.Error("unknown TaskKind string should include the value")
	}
	if s := BranchKind(9).String(); !strings.Contains(s, "9") {
		t.Error("unknown BranchKind string should include the value")
	}
}

package trace

import (
	"fmt"
	"io"
)

// Tracer is the sink the runtime writes entries into. The production
// sink is a Collector (the in-memory analogue of the paper's kernel
// logger device); the Fig. 8 uninstrumented baseline uses Discard.
type Tracer interface {
	// Emit records one operation.
	Emit(Entry)
	// DeclareTask records task metadata for the trace header.
	DeclareTask(TaskInfo)
	// InternField, InternMethod, InternQueue record names for ids.
	InternField(FieldID, string)
	InternMethod(MethodID, string)
	InternQueue(QueueID, string)
}

// Collector accumulates entries into a Trace.
type Collector struct {
	T *Trace
}

// NewCollector returns a collector over a fresh trace.
func NewCollector() *Collector { return &Collector{T: New()} }

// Emit implements Tracer.
func (c *Collector) Emit(e Entry) { c.T.Append(e) }

// DeclareTask implements Tracer.
func (c *Collector) DeclareTask(ti TaskInfo) { c.T.Tasks[ti.ID] = ti }

// InternField implements Tracer.
func (c *Collector) InternField(id FieldID, name string) { c.T.Fields[id] = name }

// InternMethod implements Tracer.
func (c *Collector) InternMethod(id MethodID, name string) { c.T.Methods[id] = name }

// InternQueue implements Tracer.
func (c *Collector) InternQueue(id QueueID, name string) { c.T.Queues[id] = name }

// Discard is a Tracer that drops everything. It models the
// uninstrumented execution of Fig. 8.
type Discard struct{}

// Emit implements Tracer.
func (Discard) Emit(Entry) {}

// DeclareTask implements Tracer.
func (Discard) DeclareTask(TaskInfo) {}

// InternField implements Tracer.
func (Discard) InternField(FieldID, string) {}

// InternMethod implements Tracer.
func (Discard) InternMethod(MethodID, string) {}

// InternQueue implements Tracer.
func (Discard) InternQueue(QueueID, string) {}

var (
	_ Tracer = (*Collector)(nil)
	_ Tracer = Discard{}
)

// WriteText writes the trace in a line-oriented human-readable form:
// one entry per line, prefixed with its sequence number and the task
// name.
func (tr *Trace) WriteText(w io.Writer) error {
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if _, err := fmt.Fprintf(w, "%6d  %-24s %s\n", i, tr.TaskName(e.Task), e.String()); err != nil {
			return err
		}
	}
	return nil
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text trace format — the lossless, line-oriented sibling of the
// binary codec (WriteText remains the lossy human dump):
//
//	CAFA-TEXT 1
//	tasks <n>
//	task <id> kind=<k> looper=<id> queue=<id> proc=<p> <quoted name>
//	fields <n>
//	<id> <quoted name>
//	methods <n> / queues <n>   (same shape)
//	entries <n>
//	<op> task=<id> [key=value ...]
//
// Zero-valued operands are omitted, keys appear in a fixed order, and
// tables are sorted by id, so encoding is canonical: decode∘encode is
// the identity on well-formed text, exactly like the binary codec.

const (
	textMagic   = "CAFA-TEXT"
	textVersion = 1
)

// EncodeText writes the trace in the lossless text form.
func (tr *Trace) EncodeText(w io.Writer) error {
	cw := &countingWriter{w: w}
	defer func() {
		cEncodedTraces.Inc()
		cEncodedEntries.Add(int64(len(tr.Entries)))
		cEncodedBytes.Add(cw.n)
	}()
	bw := bufio.NewWriter(cw)
	fmt.Fprintf(bw, "%s %d\n", textMagic, textVersion)

	fmt.Fprintf(bw, "tasks %d\n", len(tr.Tasks))
	for _, id := range tr.TaskIDs() {
		ti := tr.Tasks[id]
		fmt.Fprintf(bw, "task %d kind=%d looper=%d queue=%d proc=%d %s\n",
			id, ti.Kind, ti.Looper, ti.Queue, ti.Proc, strconv.Quote(ti.Name))
	}
	writeTextTable(bw, "fields", toU32Map(tr.Fields))
	writeTextTable(bw, "methods", toU32Map(tr.Methods))
	writeTextTable(bw, "queues", toU32Map(tr.Queues))

	fmt.Fprintf(bw, "entries %d\n", len(tr.Entries))
	for i := range tr.Entries {
		if err := encodeTextEntry(bw, &tr.Entries[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeTextTable(bw *bufio.Writer, section string, m map[uint32]string) {
	fmt.Fprintf(bw, "%s %d\n", section, len(m))
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		fmt.Fprintf(bw, "%d %s\n", k, strconv.Quote(m[k]))
	}
}

func encodeTextEntry(bw *bufio.Writer, e *Entry) error {
	if !e.Op.Valid() {
		return fmt.Errorf("trace: encode text: invalid op %d", uint8(e.Op))
	}
	fmt.Fprintf(bw, "%s task=%d", e.Op, e.Task)
	// Same presence rule and field order as the binary codec's mask.
	if e.Target != 0 {
		fmt.Fprintf(bw, " target=%d", e.Target)
	}
	if e.Queue != 0 {
		fmt.Fprintf(bw, " queue=%d", e.Queue)
	}
	if e.Delay != 0 {
		fmt.Fprintf(bw, " delay=%d", e.Delay)
	}
	if e.External {
		fmt.Fprint(bw, " ext")
	}
	if e.Monitor != 0 {
		fmt.Fprintf(bw, " monitor=%d", e.Monitor)
	}
	if e.Lock != 0 {
		fmt.Fprintf(bw, " lock=%d", e.Lock)
	}
	if e.Listener != 0 {
		fmt.Fprintf(bw, " listener=%d", e.Listener)
	}
	if e.Var != 0 {
		fmt.Fprintf(bw, " var=%d", uint64(e.Var))
	}
	if e.Value != 0 {
		fmt.Fprintf(bw, " value=%d", e.Value)
	}
	if e.Txn != 0 {
		fmt.Fprintf(bw, " txn=%d", e.Txn)
	}
	if e.PC != 0 {
		fmt.Fprintf(bw, " pc=%d", e.PC)
	}
	if e.TargetPC != 0 {
		fmt.Fprintf(bw, " tpc=%d", e.TargetPC)
	}
	if e.Branch != 0 {
		fmt.Fprintf(bw, " branch=%d", e.Branch)
	}
	if e.Method != 0 {
		fmt.Fprintf(bw, " method=%d", e.Method)
	}
	if e.Time != 0 {
		fmt.Fprintf(bw, " time=%d", e.Time)
	}
	fmt.Fprintln(bw)
	return nil
}

// opByName maps text op names back to codes.
var opByName = func() map[string]Op {
	m := make(map[string]Op, int(opMax))
	for op := OpInvalid + 1; op < opMax; op++ {
		m[op.String()] = op
	}
	return m
}()

// textReader wraps line-by-line parsing with position reporting.
type textReader struct {
	br   *bufio.Reader
	line int
}

func (r *textReader) next() (string, error) {
	s, err := r.br.ReadString('\n')
	if err == io.EOF && s != "" {
		err = nil // final unterminated line is fine
	}
	if err != nil {
		return "", err
	}
	r.line++
	return strings.TrimSuffix(s, "\n"), nil
}

// errf builds a *PosError at the current line; the rendered message
// keeps the historical "trace: decode text: line N: ..." format.
func (r *textReader) errf(format string, args ...any) error {
	return &PosError{Entry: -1, Line: r.line, Err: fmt.Errorf(format, args...)}
}

// DecodeText reads a trace written by EncodeText. It is a collect-all
// wrapper over the streaming decoder; positioned errors are *PosError
// values carrying the line number.
func DecodeText(rd io.Reader) (*Trace, error) {
	d, err := newTextStream(asBufio(rd))
	if err != nil {
		return nil, err
	}
	return collect(d)
}

// decodeTextHeader reads the magic line, the task table, the name
// tables, and the "entries <n>" count line. The returned trace has no
// Entries; StreamLen carries the declared count.
func decodeTextHeader(r *textReader) (*Trace, int, error) {
	header, err := r.next()
	if err != nil {
		return nil, 0, fmt.Errorf("trace: decode text: %w", err)
	}
	if header != fmt.Sprintf("%s %d", textMagic, textVersion) {
		return nil, 0, fmt.Errorf("trace: decode text: bad header %q", header)
	}
	tr := New()

	ntasks, err := sectionCount(r, "tasks")
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < ntasks; i++ {
		line, err := r.next()
		if err != nil {
			return nil, 0, r.errf("task table: %v", err)
		}
		ti, err := parseTaskLine(line)
		if err != nil {
			return nil, 0, r.errf("%v", err)
		}
		if _, dup := tr.Tasks[ti.ID]; dup {
			return nil, 0, r.errf("duplicate task %d", ti.ID)
		}
		tr.Tasks[ti.ID] = ti
	}
	if err := readTextTable(r, "fields", func(k uint32, v string) { tr.Fields[FieldID(k)] = v }); err != nil {
		return nil, 0, err
	}
	if err := readTextTable(r, "methods", func(k uint32, v string) { tr.Methods[MethodID(k)] = v }); err != nil {
		return nil, 0, err
	}
	if err := readTextTable(r, "queues", func(k uint32, v string) { tr.Queues[QueueID(k)] = v }); err != nil {
		return nil, 0, err
	}

	n, err := sectionCount(r, "entries")
	if err != nil {
		return nil, 0, err
	}
	tr.StreamLen = n
	return tr, n, nil
}

// sectionCount parses a "<section> <n>" line with a sanity bound.
func sectionCount(r *textReader, section string) (int, error) {
	line, err := r.next()
	if err != nil {
		return 0, r.errf("missing %q section: %v", section, err)
	}
	rest, ok := strings.CutPrefix(line, section+" ")
	if !ok {
		return 0, r.errf("want %q section, got %q", section, line)
	}
	n, err := strconv.ParseUint(rest, 10, 32)
	if err != nil || n > 1<<24 {
		return 0, r.errf("bad %s count %q", section, rest)
	}
	return int(n), nil
}

func readTextTable(r *textReader, section string, set func(k uint32, v string)) error {
	n, err := sectionCount(r, section)
	if err != nil {
		return err
	}
	seen := make(map[uint32]bool, n)
	for i := 0; i < n; i++ {
		line, err := r.next()
		if err != nil {
			return r.errf("%s table: %v", section, err)
		}
		idTok, quoted, ok := strings.Cut(line, " ")
		if !ok {
			return r.errf("%s table: malformed line %q", section, line)
		}
		id, err := strconv.ParseUint(idTok, 10, 32)
		if err != nil {
			return r.errf("%s table: bad id %q", section, idTok)
		}
		name, err := strconv.Unquote(quoted)
		if err != nil {
			return r.errf("%s table: bad name %q", section, quoted)
		}
		if seen[uint32(id)] {
			return r.errf("%s table: duplicate id %d", section, id)
		}
		seen[uint32(id)] = true
		set(uint32(id), name)
	}
	return nil
}

func parseTaskLine(line string) (TaskInfo, error) {
	var ti TaskInfo
	q := strings.Index(line, `"`)
	if q < 0 {
		return ti, fmt.Errorf("task line missing quoted name: %q", line)
	}
	toks := strings.Fields(line[:q])
	if len(toks) != 6 || toks[0] != "task" {
		return ti, fmt.Errorf("malformed task line %q", line)
	}
	name, err := strconv.Unquote(line[q:])
	if err != nil {
		return ti, fmt.Errorf("task line: bad name: %v", err)
	}
	ti.Name = name
	id, err := strconv.ParseUint(toks[1], 10, 32)
	if err != nil {
		return ti, fmt.Errorf("task line: bad id %q", toks[1])
	}
	ti.ID = TaskID(id)
	for _, tok := range toks[2:] {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return ti, fmt.Errorf("task line: malformed %q", tok)
		}
		switch key {
		case "kind", "looper", "queue":
			u, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return ti, fmt.Errorf("task line: bad %s %q", key, val)
			}
			switch key {
			case "kind":
				ti.Kind = TaskKind(u)
			case "looper":
				ti.Looper = TaskID(u)
			case "queue":
				ti.Queue = QueueID(u)
			}
		case "proc":
			p, err := strconv.ParseInt(val, 10, 32)
			if err != nil {
				return ti, fmt.Errorf("task line: bad proc %q", val)
			}
			ti.Proc = int32(p)
		default:
			return ti, fmt.Errorf("task line: unknown key %q", key)
		}
	}
	return ti, nil
}

func parseEntryLine(line string) (Entry, error) {
	var e Entry
	toks := strings.Fields(line)
	if len(toks) < 2 {
		return e, fmt.Errorf("malformed entry %q", line)
	}
	op, ok := opByName[toks[0]]
	if !ok {
		return e, fmt.Errorf("unknown op %q", toks[0])
	}
	e.Op = op
	sawTask := false
	for _, tok := range toks[1:] {
		if tok == "ext" {
			e.External = true
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return e, fmt.Errorf("malformed operand %q", tok)
		}
		switch key {
		case "delay", "time":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return e, fmt.Errorf("bad %s %q", key, val)
			}
			if key == "delay" {
				e.Delay = v
			} else {
				e.Time = v
			}
			continue
		}
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return e, fmt.Errorf("bad %s %q", key, val)
		}
		switch key {
		case "task":
			e.Task = TaskID(v)
			sawTask = true
		case "target":
			e.Target = TaskID(v)
		case "queue":
			e.Queue = QueueID(v)
		case "monitor":
			e.Monitor = MonitorID(v)
		case "lock":
			e.Lock = LockID(v)
		case "listener":
			e.Listener = ListenerID(v)
		case "var":
			e.Var = VarID(v)
		case "value":
			e.Value = ObjID(v)
		case "txn":
			e.Txn = TxnID(v)
		case "pc":
			e.PC = PC(v)
		case "tpc":
			e.TargetPC = PC(v)
		case "branch":
			e.Branch = BranchKind(v)
		case "method":
			e.Method = MethodID(v)
		default:
			return e, fmt.Errorf("unknown operand %q", key)
		}
	}
	if !sawTask {
		return e, fmt.Errorf("entry %q missing task", line)
	}
	return e, nil
}

// DecodeAuto sniffs the format (binary "CAFA" vs text "CAFA-TEXT")
// from a peek buffer and decodes accordingly. Sniffing never consumes
// bytes and tolerates streams shorter than the peek window.
func DecodeAuto(rd io.Reader) (*Trace, error) {
	d, err := NewStreamDecoder(rd)
	if err != nil {
		return nil, err
	}
	return collect(d)
}

// Package trace defines the execution-trace vocabulary of CAFA: the
// operations of an event-driven Android-like program (Figure 3 of the
// paper) extended with the low-level entries the instrumented Dalvik VM
// emits for use-free race detection (§5.3) and the IPC entries emitted
// by the Binder framework (§5.2).
//
// A Trace is an ordered list of Entry values produced by one execution.
// Traces can be serialized to a compact binary form (the "logger
// device" format) and to a human-readable text form, and are the only
// interface between the online tracing side (internal/sim, internal/dvm,
// internal/ipc) and the offline analysis side (internal/hb,
// internal/detect).
package trace

import "fmt"

// TaskID identifies a logically concurrent task: either a regular
// thread or a single event executed by a looper thread. Task 0 is
// reserved and never used by a real task.
type TaskID uint32

// NoTask is the zero TaskID; it marks "no task" in entry operands.
const NoTask TaskID = 0

// QueueID identifies an event queue. Each looper thread owns exactly
// one queue (the model of §2.1 assumes a 1:1 association).
type QueueID uint32

// NoQueue is the zero QueueID.
const NoQueue QueueID = 0

// ObjID identifies a heap object. ObjID 0 is the null reference, so a
// pointer write with Value==NullObj is a "free" in the paper's sense
// and any other value is an "allocation".
type ObjID uint32

// NullObj is the null reference.
const NullObj ObjID = 0

// VarID identifies a memory location (a "variable" x in Figure 3):
// an instance field of a particular object, a static field, or an
// array slot. The runtime packs the owner object and field into one
// identifier via MakeVar.
type VarID uint64

// MakeVar packs an owner object and a field into a VarID. Static
// fields use owner NullObj.
func MakeVar(owner ObjID, field FieldID) VarID {
	return VarID(owner)<<32 | VarID(field)
}

// Owner returns the object that owns the location (NullObj for
// statics).
func (v VarID) Owner() ObjID { return ObjID(v >> 32) }

// Field returns the field component of the location.
func (v VarID) Field() FieldID { return FieldID(v & 0xffffffff) }

// FieldID identifies a field symbol (interned name).
type FieldID uint32

// MonitorID identifies a monitor used by wait/notify.
type MonitorID uint32

// LockID identifies a mutual-exclusion lock.
type LockID uint32

// ListenerID identifies an event-listener registration site.
type ListenerID uint32

// TxnID identifies a Binder RPC transaction or a one-way IPC message.
type TxnID uint32

// MethodID identifies a method symbol (interned name).
type MethodID uint32

// PC is a program counter inside a method's code array.
type PC uint32

// TaskKind distinguishes the kinds of tasks in a trace.
type TaskKind uint8

// Task kinds.
const (
	KindThread TaskKind = iota // a regular (or looper) thread
	KindEvent                  // an event processed by a looper thread
)

func (k TaskKind) String() string {
	switch k {
	case KindThread:
		return "thread"
	case KindEvent:
		return "event"
	default:
		return fmt.Sprintf("TaskKind(%d)", uint8(k))
	}
}

// TaskInfo is per-task metadata recorded in the trace header. The
// offline analyzer needs it to know which tasks are events, which
// looper processed each event, and which queue the event was drawn
// from.
type TaskInfo struct {
	ID     TaskID
	Kind   TaskKind
	Name   string  // diagnostic name ("onDestroy", "binder-1", ...)
	Looper TaskID  // for events: the looper thread that executed it
	Queue  QueueID // for events: the queue it was drawn from
	Proc   int32   // process index (IPC spans processes)
}

// IsEvent reports whether the task is an event.
func (ti TaskInfo) IsEvent() bool { return ti.Kind == KindEvent }

package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Streaming decode layer. A StreamDecoder yields entries one at a time
// so callers can analyze a trace without materializing Entries; the
// batch Decode/DecodeText/DecodeAuto functions are thin collect-all
// wrappers over it. Decode errors inside the entry section are
// *PosError values carrying the entry index plus a byte offset
// (binary) or line number (text).

// Format identifies the wire encoding of a trace stream.
type Format int

const (
	FormatUnknown Format = iota
	FormatBinary         // magic "CAFA"
	FormatText           // magic "CAFA-TEXT"
)

func (f Format) String() string {
	switch f {
	case FormatBinary:
		return "binary"
	case FormatText:
		return "text"
	}
	return "unknown"
}

// PosError is a decode error with position information. Text-format
// errors render as "trace: decode text: line N: ..." (the historical
// format); binary errors render the entry index and the byte offset
// at which the failing entry starts.
type PosError struct {
	Entry  int   // entry index, -1 when the error is outside the entry section
	Offset int64 // absolute byte offset of the failing entry (binary only)
	Line   int   // 1-based line number (text only, 0 for binary)
	Err    error
}

func (e *PosError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("trace: decode text: line %d: %v", e.Line, e.Err)
	}
	return fmt.Sprintf("trace: decode entry %d at byte %d: %v", e.Entry, e.Offset, e.Err)
}

func (e *PosError) Unwrap() error { return e.Err }

// byteReader is what the binary decoding helpers need: varints read
// byte-at-a-time, strings in bulk.
type byteReader interface {
	io.Reader
	io.ByteReader
}

// posReader counts bytes consumed from the wrapped buffered reader so
// binary decode errors can report absolute offsets. It sits above
// bufio, so counting costs one add per read and no extra copying.
type posReader struct {
	br *bufio.Reader
	n  int64
}

func (p *posReader) ReadByte() (byte, error) {
	b, err := p.br.ReadByte()
	if err == nil {
		p.n++
	}
	return b, err
}

func (p *posReader) Read(buf []byte) (int, error) {
	n, err := p.br.Read(buf)
	p.n += int64(n)
	return n, err
}

// sniffWindow is how many bytes NewStreamDecoder peeks to identify
// the format. Peeking tolerates short streams: a trace smaller than
// the window (or whose first line is shorter than it) still sniffs
// correctly from whatever bytes are available.
const sniffWindow = 64

// StreamDecoder decodes a trace incrementally: header first, then one
// entry per Next call. Memory use is O(header), not O(trace).
type StreamDecoder struct {
	format   Format
	hdr      *Trace
	declared int
	next     int
	err      error

	pr *posReader  // binary state
	tx *textReader // text state
}

func asBufio(rd io.Reader) *bufio.Reader {
	if br, ok := rd.(*bufio.Reader); ok {
		return br
	}
	return bufio.NewReader(rd)
}

// NewStreamDecoder sniffs the format from a peek buffer (no
// consumption) and reads the header: task table, name tables, and the
// declared entry count. Entries are then pulled with Next.
func NewStreamDecoder(rd io.Reader) (*StreamDecoder, error) {
	br := asBufio(rd)
	head, err := br.Peek(sniffWindow)
	if len(head) == 0 && err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if bytes.HasPrefix(head, []byte(textMagic)) {
		return newTextStream(br)
	}
	return newBinaryStream(br)
}

func newBinaryStream(br *bufio.Reader) (*StreamDecoder, error) {
	pr := &posReader{br: br}
	hdr, n, err := decodeBinaryHeader(pr)
	if err != nil {
		return nil, err
	}
	return &StreamDecoder{format: FormatBinary, hdr: hdr, declared: n, pr: pr}, nil
}

func newTextStream(br *bufio.Reader) (*StreamDecoder, error) {
	tx := &textReader{br: br}
	hdr, n, err := decodeTextHeader(tx)
	if err != nil {
		return nil, err
	}
	return &StreamDecoder{format: FormatText, hdr: hdr, declared: n, tx: tx}, nil
}

// Format reports the sniffed wire format.
func (d *StreamDecoder) Format() Format { return d.format }

// Header returns the table-only trace: Tasks and name tables filled,
// Entries nil, StreamLen set to the declared entry count so Len()
// reports the full length. The same *Trace is shared with collect-all
// wrappers; callers must not retain it across decoders.
func (d *StreamDecoder) Header() *Trace { return d.hdr }

// Len returns the declared entry count.
func (d *StreamDecoder) Len() int { return d.declared }

// Next returns the next entry, or io.EOF after the declared count has
// been delivered. Decode failures return a *PosError and poison the
// decoder (subsequent calls repeat the error).
func (d *StreamDecoder) Next() (Entry, error) {
	if d.err != nil {
		return Entry{}, d.err
	}
	if d.next >= d.declared {
		d.err = io.EOF
		return Entry{}, io.EOF
	}
	switch d.format {
	case FormatBinary:
		start := d.pr.n
		e, err := decodeEntry(d.pr)
		if err != nil {
			d.err = &PosError{Entry: d.next, Offset: start, Err: err}
			return Entry{}, d.err
		}
		d.next++
		return e, nil
	default: // FormatText
		line, err := d.tx.next()
		if err != nil {
			d.err = d.tx.errf("entries: %v", err)
			d.err.(*PosError).Entry = d.next
			return Entry{}, d.err
		}
		e, err := parseEntryLine(line)
		if err != nil {
			pe := d.tx.errf("%v", err)
			pe.(*PosError).Entry = d.next
			d.err = pe
			return Entry{}, d.err
		}
		d.next++
		return e, nil
	}
}

// DecodeStream sniffs the format and invokes fn once per entry in
// order, stopping at the first error (decode failure or a non-nil
// return from fn). It returns the header trace — tables plus
// StreamLen, no Entries — so callers have the metadata without the
// O(trace) entry slice.
func DecodeStream(rd io.Reader, fn func(i int, e Entry) error) (*Trace, error) {
	d, err := NewStreamDecoder(rd)
	if err != nil {
		return nil, err
	}
	for {
		e, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := fn(d.next-1, e); err != nil {
			return nil, err
		}
	}
	return d.hdr, nil
}

// collect drains a StreamDecoder into its header trace, producing the
// same *Trace the historical batch decoders returned.
func collect(d *StreamDecoder) (*Trace, error) {
	tr := d.hdr
	if d.declared > 0 {
		tr.Entries = make([]Entry, 0, min(d.declared, 1<<20))
	}
	for {
		e, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tr.Entries = append(tr.Entries, e)
	}
	tr.StreamLen = 0 // fully materialized; Len() is len(Entries) again
	return tr, nil
}

package trace

import (
	"fmt"
	"strings"
)

// Entry is one operation in an execution trace. Operand fields are
// used according to Op; unused operands are zero.
type Entry struct {
	Task TaskID // the task performing the operation
	Op   Op
	Time int64 // virtual milliseconds at which the operation executed

	// Operands (per-Op meaning):
	//   OpFork, OpJoin:            Target = the thread forked/joined.
	//   OpSend, OpSendAtFront:     Target = event sent, Queue = destination
	//                              queue, Delay = delay ms (OpSend only),
	//                              External = event originates outside the app.
	//   OpBegin (event tasks):     Queue = queue it was drawn from.
	//   OpWait, OpNotify:          Monitor.
	//   OpLock, OpUnlock:          Lock.
	//   OpRegister, OpPerform:     Listener.
	//   OpRead, OpWrite:           Var.
	//   OpPtrRead:                 Var, Value = object obtained, PC, Method.
	//   OpPtrWrite:                Var, Value = object stored (NullObj ⇒ free), PC, Method.
	//   OpDeref:                   Value = object dereferenced, PC, Method.
	//   OpBranch:                  Value = object tested, PC, TargetPC, Branch, Method.
	//   OpInvoke, OpReturn:        Method, PC = call/return site.
	//   OpRPC*, OpMsg*:            Txn.
	Target   TaskID
	Queue    QueueID
	Delay    int64
	External bool
	Monitor  MonitorID
	Lock     LockID
	Listener ListenerID
	Var      VarID
	Value    ObjID
	Txn      TxnID
	PC       PC
	TargetPC PC
	Branch   BranchKind
	Method   MethodID
}

// IsFree reports whether the entry is a "free" in the paper's sense: a
// pointer write storing null (§4.1).
func (e *Entry) IsFree() bool { return e.Op == OpPtrWrite && e.Value == NullObj }

// IsAlloc reports whether the entry is an "allocation": a pointer
// write storing a non-null object (§4.1).
func (e *Entry) IsAlloc() bool { return e.Op == OpPtrWrite && e.Value != NullObj }

// String renders the entry in the trace text format, e.g.
// "send(t3, e7, 5) @12".
func (e *Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(t%d", e.Op, e.Task)
	switch e.Op {
	case OpFork, OpJoin:
		fmt.Fprintf(&b, ", t%d", e.Target)
	case OpSend:
		fmt.Fprintf(&b, ", e%d, q%d, %d", e.Target, e.Queue, e.Delay)
		if e.External {
			b.WriteString(", ext")
		}
	case OpSendAtFront:
		fmt.Fprintf(&b, ", e%d, q%d", e.Target, e.Queue)
		if e.External {
			b.WriteString(", ext")
		}
	case OpBegin:
		if e.Queue != NoQueue {
			fmt.Fprintf(&b, ", q%d", e.Queue)
		}
	case OpWait, OpNotify:
		fmt.Fprintf(&b, ", m%d", e.Monitor)
	case OpLock, OpUnlock:
		fmt.Fprintf(&b, ", l%d", e.Lock)
	case OpRegister, OpPerform:
		fmt.Fprintf(&b, ", L%d", e.Listener)
	case OpRead, OpWrite:
		fmt.Fprintf(&b, ", x%x", uint64(e.Var))
	case OpPtrRead, OpPtrWrite:
		fmt.Fprintf(&b, ", o%d.f%d, v=o%d, pc=%d", e.Var.Owner(), e.Var.Field(), e.Value, e.PC)
	case OpDeref:
		fmt.Fprintf(&b, ", o%d, pc=%d", e.Value, e.PC)
	case OpBranch:
		fmt.Fprintf(&b, ", %s, o%d, pc=%d->%d", e.Branch, e.Value, e.PC, e.TargetPC)
	case OpInvoke, OpReturn:
		fmt.Fprintf(&b, ", m%d, pc=%d", e.Method, e.PC)
	case OpRPCCall, OpRPCHandle, OpRPCReply, OpRPCRet, OpMsgSend, OpMsgRecv:
		fmt.Fprintf(&b, ", txn%d", e.Txn)
	}
	fmt.Fprintf(&b, ") @%d", e.Time)
	return b.String()
}

package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
)

// cloneTables copies a trace's header tables without its entries.
func cloneTables(tr *Trace) *Trace {
	c := New()
	for id, ti := range tr.Tasks {
		c.Tasks[id] = ti
	}
	for k, v := range tr.Fields {
		c.Fields[k] = v
	}
	for k, v := range tr.Methods {
		c.Methods[k] = v
	}
	for k, v := range tr.Queues {
		c.Queues[k] = v
	}
	return c
}

// TestDecodeStreamMatchesDecode: the streaming decoder delivers the
// same entries, in order with contiguous indices, as batch decoding —
// on both wire formats.
func TestDecodeStreamMatchesDecode(t *testing.T) {
	seed := fuzzSeedTrace()
	var bin, txt bytes.Buffer
	if err := seed.Encode(&bin); err != nil {
		t.Fatal(err)
	}
	if err := seed.EncodeText(&txt); err != nil {
		t.Fatal(err)
	}
	for name, enc := range map[string][]byte{"binary": bin.Bytes(), "text": txt.Bytes()} {
		var got []Entry
		hdr, err := DecodeStream(bytes.NewReader(enc), func(i int, e Entry) error {
			if i != len(got) {
				t.Fatalf("%s: entry index %d out of order (want %d)", name, i, len(got))
			}
			got = append(got, e)
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, seed.Entries) {
			t.Errorf("%s: streamed entries differ from the originals", name)
		}
		if len(hdr.Entries) != 0 {
			t.Errorf("%s: header trace materialized %d entries", name, len(hdr.Entries))
		}
		if hdr.Len() != len(seed.Entries) {
			t.Errorf("%s: header Len() = %d, want %d", name, hdr.Len(), len(seed.Entries))
		}
		if !reflect.DeepEqual(hdr.Tasks, seed.Tasks) {
			t.Errorf("%s: header task table differs", name)
		}
	}

	// A non-nil fn error stops the stream and surfaces unchanged.
	sentinel := errors.New("stop here")
	_, err := DecodeStream(bytes.NewReader(bin.Bytes()), func(i int, e Entry) error {
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Errorf("fn error = %v, want the sentinel", err)
	}
}

// TestStreamDecoderFormatAndEOF covers the decoder surface: sniffed
// format, declared length, and the poisoned io.EOF after the last
// entry.
func TestStreamDecoderFormatAndEOF(t *testing.T) {
	seed := fuzzSeedTrace()
	var bin, txt bytes.Buffer
	if err := seed.Encode(&bin); err != nil {
		t.Fatal(err)
	}
	if err := seed.EncodeText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		enc    []byte
		format Format
	}{
		{bin.Bytes(), FormatBinary},
		{txt.Bytes(), FormatText},
	} {
		d, err := NewStreamDecoder(bytes.NewReader(tc.enc))
		if err != nil {
			t.Fatal(err)
		}
		if d.Format() != tc.format {
			t.Errorf("format = %v, want %v", d.Format(), tc.format)
		}
		if d.Len() != len(seed.Entries) {
			t.Errorf("%v: Len() = %d, want %d", tc.format, d.Len(), len(seed.Entries))
		}
		for i := 0; i < len(seed.Entries); i++ {
			if _, err := d.Next(); err != nil {
				t.Fatalf("%v: entry %d: %v", tc.format, i, err)
			}
		}
		for i := 0; i < 2; i++ {
			if _, err := d.Next(); err != io.EOF {
				t.Fatalf("%v: after last entry Next() = %v, want io.EOF", tc.format, err)
			}
		}
	}
}

// TestBinaryErrorsCarryOffsets locks the binary position reporting: a
// failure inside the entry section is a *PosError naming the entry
// index and the byte offset where that entry starts.
func TestBinaryErrorsCarryOffsets(t *testing.T) {
	seed := fuzzSeedTrace()
	var full, hdrOnly, one bytes.Buffer
	if err := seed.Encode(&full); err != nil {
		t.Fatal(err)
	}
	if err := cloneTables(seed).Encode(&hdrOnly); err != nil {
		t.Fatal(err)
	}
	ct := cloneTables(seed)
	ct.Entries = seed.Entries[:1]
	if err := ct.Encode(&one); err != nil {
		t.Fatal(err)
	}
	// Entry counts (0, 1, 13) all fit one uvarint byte, so the header
	// is the same length in every encoding and these arithmetic
	// identities hold.
	headerLen := int64(hdrOnly.Len())
	entry1Start := int64(one.Len())

	// Truncated right at the entry section: entry 0 fails at its own
	// start offset.
	_, err := Decode(bytes.NewReader(full.Bytes()[:headerLen]))
	var pe *PosError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PosError, got %T: %v", err, err)
	}
	if pe.Entry != 0 || pe.Offset != headerLen || pe.Line != 0 {
		t.Errorf("PosError = %+v, want entry 0 at byte %d", pe, headerLen)
	}
	wantMsg := fmt.Sprintf("trace: decode entry 0 at byte %d:", headerLen)
	if !strings.HasPrefix(err.Error(), wantMsg) {
		t.Errorf("error %q does not start with %q", err, wantMsg)
	}

	// Truncated one byte into entry 1: the reported offset is entry 1's
	// start, not the truncation point.
	_, err = Decode(bytes.NewReader(full.Bytes()[:entry1Start+1]))
	if !errors.As(err, &pe) {
		t.Fatalf("want *PosError, got %T: %v", err, err)
	}
	if pe.Entry != 1 || pe.Offset != entry1Start {
		t.Errorf("PosError = %+v, want entry 1 at byte %d", pe, entry1Start)
	}

	// The streaming decoder reports the same positions and poisons.
	d, err := NewStreamDecoder(bytes.NewReader(full.Bytes()[:entry1Start]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err != nil {
		t.Fatalf("entry 0: %v", err)
	}
	_, err1 := d.Next()
	if !errors.As(err1, &pe) || pe.Entry != 1 || pe.Offset != entry1Start {
		t.Errorf("stream PosError = %v, want entry 1 at byte %d", err1, entry1Start)
	}
	if _, err2 := d.Next(); err2 != err1 {
		t.Errorf("poisoned decoder returned %v, want the original %v", err2, err1)
	}

	// Header errors are not PosErrors (no entry to blame).
	_, err = Decode(bytes.NewReader(full.Bytes()[:2]))
	if err == nil || errors.As(err, &pe) {
		t.Errorf("header error should not be a PosError: %v", err)
	}
}

// TestTextStreamErrorsCarryEntryAndLine: text-format entry failures
// keep the historical line-numbered message and additionally carry the
// entry index in the PosError.
func TestTextStreamErrorsCarryEntryAndLine(t *testing.T) {
	corrupted := strings.Replace(minimalText, "end task=1", "end task=banana", 1)
	d, err := NewStreamDecoder(strings.NewReader(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err != nil {
		t.Fatalf("entry 0: %v", err)
	}
	_, err = d.Next()
	var pe *PosError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PosError, got %T: %v", err, err)
	}
	if pe.Entry != 1 || pe.Line != 9 || pe.Offset != 0 {
		t.Errorf("PosError = %+v, want entry 1 on line 9", pe)
	}
	if !strings.Contains(err.Error(), "line 9") || !strings.Contains(err.Error(), `bad task "banana"`) {
		t.Errorf("message %q lost the historical line format", err)
	}
}

// TestSniffShortInput is the regression for format sniffing on inputs
// shorter than the peek window: a complete trace smaller than
// sniffWindow bytes (necessarily with a first line shorter than it)
// must sniff and decode on both the batch and streaming paths.
func TestSniffShortInput(t *testing.T) {
	tinyText := "CAFA-TEXT 1\ntasks 0\nfields 0\nmethods 0\nqueues 0\nentries 0\n"
	if len(tinyText) >= sniffWindow {
		t.Fatalf("test input is %d bytes; must stay under the %d-byte sniff window", len(tinyText), sniffWindow)
	}
	tr, err := DecodeAuto(strings.NewReader(tinyText))
	if err != nil {
		t.Fatalf("DecodeAuto: %v", err)
	}
	if len(tr.Entries) != 0 || len(tr.Tasks) != 0 {
		t.Errorf("unexpected shape: %+v", tr)
	}
	d, err := NewStreamDecoder(strings.NewReader(tinyText))
	if err != nil {
		t.Fatalf("NewStreamDecoder: %v", err)
	}
	if d.Format() != FormatText || d.Len() != 0 {
		t.Errorf("format = %v len = %d, want text/0", d.Format(), d.Len())
	}
	if _, err := d.Next(); err != io.EOF {
		t.Errorf("Next() = %v, want io.EOF", err)
	}

	// Same for a binary trace smaller than the window.
	small := New()
	small.Tasks[1] = TaskInfo{ID: 1, Kind: KindThread, Name: "T"}
	small.Append(Entry{Task: 1, Op: OpBegin})
	small.Append(Entry{Task: 1, Op: OpEnd, Time: 1})
	var buf bytes.Buffer
	if err := small.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= sniffWindow {
		t.Fatalf("binary input is %d bytes; must stay under the window", buf.Len())
	}
	d, err = NewStreamDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Format() != FormatBinary || d.Len() != 2 {
		t.Errorf("format = %v len = %d, want binary/2", d.Format(), d.Len())
	}
	got, err := DecodeAuto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, small) {
		t.Error("short binary trace did not round-trip through DecodeAuto")
	}
}

// FuzzDecodeStream proves streaming and batch decoding agree on
// arbitrary input: the same entries on success, the same error
// otherwise. DecodeAuto is itself built on the stream decoder, so this
// guards the collect wrapper and the per-entry path against drift.
func FuzzDecodeStream(f *testing.F) {
	var bin, txt bytes.Buffer
	if err := fuzzSeedTrace().Encode(&bin); err != nil {
		f.Fatal(err)
	}
	if err := fuzzSeedTrace().EncodeText(&txt); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add(txt.Bytes())
	f.Add([]byte("CAFA"))
	f.Add([]byte("CAFA-TEXT 1\n"))
	f.Add([]byte(minimalText))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := DecodeAuto(bytes.NewReader(data))
		var entries []Entry
		hdr, err := DecodeStream(bytes.NewReader(data), func(i int, e Entry) error {
			if i != len(entries) {
				t.Fatalf("entry index %d, want %d", i, len(entries))
			}
			entries = append(entries, e)
			return nil
		})
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("error disagreement: batch %v, stream %v", wantErr, err)
		}
		if err != nil {
			if err.Error() != wantErr.Error() {
				t.Fatalf("different errors:\n  batch:  %v\n  stream: %v", wantErr, err)
			}
			return
		}
		got := cloneTables(hdr)
		got.Entries = entries
		if len(entries) == 0 {
			got.Entries = want.Entries // nil-vs-empty: both mean no entries
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("decoded traces differ:\n  batch:  %+v\n  stream: %+v", want, got)
		}
	})
}

// TestFuzzDecodeStreamSeeds runs the agreement property on the seed
// corpus under plain `go test`.
func TestFuzzDecodeStreamSeeds(t *testing.T) {
	var bin, txt bytes.Buffer
	if err := fuzzSeedTrace().Encode(&bin); err != nil {
		t.Fatal(err)
	}
	if err := fuzzSeedTrace().EncodeText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, data := range [][]byte{bin.Bytes(), txt.Bytes(), []byte("CAFA"), []byte(minimalText), nil} {
		want, wantErr := DecodeAuto(bytes.NewReader(data))
		var entries []Entry
		hdr, err := DecodeStream(bytes.NewReader(data), func(i int, e Entry) error {
			entries = append(entries, e)
			return nil
		})
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("error disagreement: batch %v, stream %v", wantErr, err)
		}
		if err != nil {
			if err.Error() != wantErr.Error() {
				t.Fatalf("different errors: %v vs %v", wantErr, err)
			}
			continue
		}
		got := cloneTables(hdr)
		got.Entries = entries
		if len(entries) == 0 {
			got.Entries = want.Entries
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("decoded traces differ")
		}
	}
}

package trace

import (
	"bufio"
	"bytes"
)

// DeviceSink is a Tracer that pushes every entry through the binary
// codec into an in-memory buffer — the moral equivalent of CAFA's
// kernel logger device (§5.1). Fig. 8 measures the execution-time
// dilation of exactly this path, so the sink does the real
// serialization work per entry rather than just buffering structs.
type DeviceSink struct {
	buf    bytes.Buffer
	w      *bufio.Writer
	tasks  map[TaskID]TaskInfo
	fields map[FieldID]string
	meths  map[MethodID]string
	queues map[QueueID]string
	n      int
}

// NewDeviceSink returns an empty sink.
func NewDeviceSink() *DeviceSink {
	d := &DeviceSink{
		tasks:  make(map[TaskID]TaskInfo),
		fields: make(map[FieldID]string),
		meths:  make(map[MethodID]string),
		queues: make(map[QueueID]string),
	}
	d.w = bufio.NewWriter(&d.buf)
	return d
}

// Emit implements Tracer by serializing the entry immediately.
func (d *DeviceSink) Emit(e Entry) {
	// encodeEntry only fails on invalid ops, which the runtime never
	// emits; the write error path of the underlying buffer is nil.
	_ = encodeEntry(d.w, &e)
	d.n++
}

// DeclareTask implements Tracer.
func (d *DeviceSink) DeclareTask(ti TaskInfo) { d.tasks[ti.ID] = ti }

// InternField implements Tracer.
func (d *DeviceSink) InternField(id FieldID, name string) { d.fields[id] = name }

// InternMethod implements Tracer.
func (d *DeviceSink) InternMethod(id MethodID, name string) { d.meths[id] = name }

// InternQueue implements Tracer.
func (d *DeviceSink) InternQueue(id QueueID, name string) { d.queues[id] = name }

// Entries returns the number of entries written.
func (d *DeviceSink) Entries() int { return d.n }

// Bytes flushes and returns the serialized size.
func (d *DeviceSink) Bytes() int {
	_ = d.w.Flush()
	return d.buf.Len()
}

var _ Tracer = (*DeviceSink)(nil)

package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedTrace builds a small trace exercising every operand kind
// the codec encodes.
func fuzzSeedTrace() *Trace {
	tr := New()
	tr.Tasks[1] = TaskInfo{ID: 1, Kind: KindThread, Name: "main", Proc: 0}
	tr.Tasks[2] = TaskInfo{ID: 2, Kind: KindThread, Name: "worker", Proc: 1}
	tr.Tasks[3] = TaskInfo{ID: 3, Kind: KindEvent, Name: "onClick", Looper: 1, Queue: 1}
	tr.Fields[7] = "session"
	tr.Methods[9] = "onDestroy"
	tr.Queues[1] = "mainQ"
	tr.Append(Entry{Task: 1, Op: OpBegin})
	tr.Append(Entry{Task: 1, Op: OpFork, Target: 2, Time: 1})
	tr.Append(Entry{Task: 2, Op: OpBegin, Time: 2})
	tr.Append(Entry{Task: 1, Op: OpSend, Target: 3, Queue: 1, Delay: 25, External: true, Time: 3})
	tr.Append(Entry{Task: 2, Op: OpLock, Lock: 4, Time: 4})
	tr.Append(Entry{Task: 2, Op: OpPtrWrite, Var: MakeVar(5, 7), Value: 0, PC: 12, Method: 9, Time: 5})
	tr.Append(Entry{Task: 2, Op: OpUnlock, Lock: 4, Time: 6})
	tr.Append(Entry{Task: 3, Op: OpBegin, Queue: 1, Time: 7})
	tr.Append(Entry{Task: 3, Op: OpPtrRead, Var: MakeVar(5, 7), Value: 5, PC: 3, Method: 9, Time: 8})
	tr.Append(Entry{Task: 3, Op: OpBranch, Value: 5, PC: 4, TargetPC: 9, Branch: 1, Method: 9, Time: 9})
	tr.Append(Entry{Task: 3, Op: OpDeref, Value: 5, PC: 5, Method: 9, Time: 10})
	tr.Append(Entry{Task: 3, Op: OpRPCCall, Txn: 11, Time: 11})
	tr.Append(Entry{Task: 3, Op: OpEnd, Time: 12})
	return tr
}

// FuzzTraceRoundTrip locks the binary codec: any bytes that decode
// must re-encode and decode to the identical trace, and the re-encoded
// bytes must be canonical (encode∘decode is idempotent on bytes).
// Batch mode reads many files from disk, so the codec is load-bearing.
func FuzzTraceRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := fuzzSeedTrace().Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("CAFA"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // malformed input must only error, never panic
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("decoded trace failed to encode: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round trip changed the trace:\n first: %+v\nsecond: %+v", tr, tr2)
		}
		var buf2 bytes.Buffer
		if err := tr2.Encode(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("encoding is not canonical: same trace produced different bytes")
		}
	})
}

// TestFuzzSeedRoundTrip runs the fuzz property on the seed corpus
// explicitly, so plain `go test` covers it without -fuzz.
func TestFuzzSeedRoundTrip(t *testing.T) {
	tr := fuzzSeedTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip changed the trace:\nwant %+v\ngot  %+v", tr, got)
	}
}

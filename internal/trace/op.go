package trace

import "fmt"

// Op enumerates the operations that may appear in a trace. The first
// group is the Figure 3 vocabulary; the second group is the §5.3
// instrumentation for use-free detection; the third group is the §5.2
// IPC instrumentation.
type Op uint8

// Operations.
const (
	OpInvalid Op = iota

	// Figure 3 operations.
	OpBegin       // begin(t): task t starts
	OpEnd         // end(t): task t finishes
	OpRead        // rd(t,x): low-level read of variable x
	OpWrite       // wr(t,x): low-level write of variable x
	OpFork        // fork(t,u): t forks thread u
	OpJoin        // join(t,u): t joins thread u
	OpWait        // wait(t,m)
	OpNotify      // notify(t,m)
	OpSend        // send(t,e,delay): enqueue event e with delay
	OpSendAtFront // sendAtFront(t,e): enqueue event e at queue front
	OpRegister    // register(t,l): register listener l
	OpPerform     // perform(t,l): event t performs listener l

	// Locking. The model derives no happens-before from these (§3.1);
	// they feed the lockset mutual-exclusion check.
	OpLock   // acquire lock
	OpUnlock // release lock

	// §5.3 instrumentation (Dalvik interpreter).
	OpPtrRead  // pointer read (iget/sget/aget-object): Var, Value=object obtained
	OpPtrWrite // pointer write (iput/sput/aput-object): Var, Value (NullObj ⇒ free, else allocation)
	OpDeref    // dereference of Obj (field access or method invocation receiver)
	OpBranch   // guard branch on an object pointer (if-eqz/if-nez/if-eq), per §5.3 logging rules
	OpInvoke   // method invocation (calling-context stack)
	OpReturn   // method return (calling-context stack)

	// §5.2 IPC instrumentation.
	OpRPCCall   // client issues RPC transaction Txn
	OpRPCHandle // server begins handling transaction Txn
	OpRPCReply  // server replies to transaction Txn
	OpRPCRet    // client resumes after reply of transaction Txn
	OpMsgSend   // one-way pipe/socket message Txn sent
	OpMsgRecv   // one-way pipe/socket message Txn received

	opMax // number of ops; keep last
)

var opNames = [...]string{
	OpInvalid:     "invalid",
	OpBegin:       "begin",
	OpEnd:         "end",
	OpRead:        "rd",
	OpWrite:       "wr",
	OpFork:        "fork",
	OpJoin:        "join",
	OpWait:        "wait",
	OpNotify:      "notify",
	OpSend:        "send",
	OpSendAtFront: "sendAtFront",
	OpRegister:    "register",
	OpPerform:     "perform",
	OpLock:        "lock",
	OpUnlock:      "unlock",
	OpPtrRead:     "ptrRead",
	OpPtrWrite:    "ptrWrite",
	OpDeref:       "deref",
	OpBranch:      "branch",
	OpInvoke:      "invoke",
	OpReturn:      "return",
	OpRPCCall:     "rpcCall",
	OpRPCHandle:   "rpcHandle",
	OpRPCReply:    "rpcReply",
	OpRPCRet:      "rpcRet",
	OpMsgSend:     "msgSend",
	OpMsgRecv:     "msgRecv",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Valid reports whether op is a known operation.
func (op Op) Valid() bool { return op > OpInvalid && op < opMax }

// BranchKind describes which guard instruction produced an OpBranch
// entry.
type BranchKind uint8

// Guard branch kinds (§5.3 "If-Guard Check" logging).
const (
	BranchIfEqz BranchKind = iota // if-eqz, logged when NOT taken (pointer non-null on fallthrough)
	BranchIfNez                   // if-nez, logged when taken (pointer non-null at target)
	BranchIfEq                    // if-eq vs `this`, logged when taken (pointer non-null at target)
)

func (k BranchKind) String() string {
	switch k {
	case BranchIfEqz:
		return "if-eqz"
	case BranchIfNez:
		return "if-nez"
	case BranchIfEq:
		return "if-eq"
	default:
		return fmt.Sprintf("BranchKind(%d)", uint8(k))
	}
}

// Package synth generates synthetic event-driven traces with
// controllable send/event fan-out. The shape stresses exactly the
// analyzer paths the app models keep small: long chained-looper
// fixpoints (each level's queue order becomes derivable only after
// the previous level's round lands) and wide per-queue send sets
// (quadratic queue-rule pair scans), plus concurrent use/free traffic
// for the detector. Benchmarks and tests size it well past the app
// models to measure scaling.
package synth

import (
	"fmt"

	"cafa/internal/obs"
	"cafa/internal/trace"
)

// Generator observability (internal/obs): volume counters for
// synthetic workload production, accumulated once per generated
// trace.
var (
	cSynthTraces  = obs.NewCounter("synth_traces_total")
	cSynthEntries = obs.NewCounter("synth_entries_emitted_total")
)

// Config sizes a synthetic trace.
type Config struct {
	// Chain is the number of chained loopers. Events on looper i send
	// events to looper i+1, so the hb fixpoint needs about Chain
	// rounds — the incremental-closure stress axis.
	Chain int
	// EventsPer is the events sent to each looper (the per-queue send
	// fan-out; queue-rule work grows quadratically in it).
	EventsPer int
	// FreeThreads is the number of concurrent freeing threads; each
	// frees one pointer that events on every looper use, producing
	// Chain×FreeThreads use/free race candidates.
	FreeThreads int
	// Burst adds this many independent loopers whose queues receive
	// BurstEvents events directly from the driver. Their orderings all
	// resolve in the first fixpoint round — the bulk volume real app
	// traces are dominated by, against the Chain's multi-round tail.
	Burst int
	// BurstEvents is the events sent to each burst looper.
	BurstEvents int
	// AccessesPer pads every event body with this many benign scalar
	// reads of an event-private variable. They add no reduced nodes, no
	// detection candidates, and no lock traffic — pure trace length.
	// The knob scales entry volume independently of analysis work,
	// which is exactly what separates O(trace) batch memory from
	// O(window) streaming memory in the RSS benchmark.
	AccessesPer int
}

// Trace builds the synthetic trace. The result passes
// trace.Validate() and every derived ordering is consistent with the
// emitted execution order, matching a trace a real run would produce.
func Trace(cfg Config) *trace.Trace {
	if cfg.Chain < 1 {
		cfg.Chain = 1
	}
	if cfg.EventsPer < 1 {
		cfg.EventsPer = 1
	}
	tr := trace.New()
	var now int64
	add := func(e trace.Entry) {
		e.Time = now
		now++
		tr.Append(e)
	}

	next := trace.TaskID(1)
	newTask := func(kind trace.TaskKind, name string, looper trace.TaskID, q trace.QueueID) trace.TaskID {
		id := next
		next++
		tr.Tasks[id] = trace.TaskInfo{ID: id, Kind: kind, Name: name, Looper: looper, Queue: q}
		return id
	}

	driver := newTask(trace.KindThread, "driver", 0, 0)
	loopers := make([]trace.TaskID, cfg.Chain)
	queues := make([]trace.QueueID, cfg.Chain)
	for i := range loopers {
		loopers[i] = newTask(trace.KindThread, fmt.Sprintf("L%d", i), 0, 0)
		queues[i] = trace.QueueID(i + 1)
	}
	events := make([][]trace.TaskID, cfg.Chain)
	for i := range events {
		events[i] = make([]trace.TaskID, cfg.EventsPer)
		for j := range events[i] {
			events[i][j] = newTask(trace.KindEvent, fmt.Sprintf("ev%d_%d", i, j), loopers[i], queues[i])
		}
	}
	bloopers := make([]trace.TaskID, cfg.Burst)
	bqueues := make([]trace.QueueID, cfg.Burst)
	bevents := make([][]trace.TaskID, cfg.Burst)
	for l := range bloopers {
		bloopers[l] = newTask(trace.KindThread, fmt.Sprintf("B%d", l), 0, 0)
		bqueues[l] = trace.QueueID(cfg.Chain + l + 1)
		bevents[l] = make([]trace.TaskID, cfg.BurstEvents)
		for j := range bevents[l] {
			bevents[l][j] = newTask(trace.KindEvent, fmt.Sprintf("bv%d_%d", l, j), bloopers[l], bqueues[l])
		}
	}
	// A front-sent event on the first looper, executed before the
	// normal sends (queue rule 3 traffic).
	front := newTask(trace.KindEvent, "front", loopers[0], queues[0])
	freers := make([]trace.TaskID, cfg.FreeThreads)
	for j := range freers {
		freers[j] = newTask(trace.KindThread, fmt.Sprintf("freer%d", j), 0, 0)
	}

	// Shared pointers: freer j races with the ptr_j uses on every
	// looper. Field j, owner object j+1, value object j+1.
	varOf := func(j int) trace.VarID { return trace.MakeVar(trace.ObjID(j+1), trace.FieldID(j+1)) }
	// Method ids: one per (level, event) use site so sites stay
	// distinct after dedup, plus one per freer.
	useMethod := func(i, j int) trace.MethodID { return trace.MethodID(1 + i*cfg.EventsPer + j) }
	freeMethod := func(j int) trace.MethodID {
		return trace.MethodID(1 + cfg.Chain*cfg.EventsPer + j)
	}
	burstMethod := func(l, j int) trace.MethodID {
		return trace.MethodID(1 + cfg.Chain*cfg.EventsPer + cfg.FreeThreads + l*cfg.BurstEvents + j)
	}

	add(trace.Entry{Task: driver, Op: trace.OpBegin})
	for i := range loopers {
		add(trace.Entry{Task: loopers[i], Op: trace.OpBegin})
	}
	for l := range bloopers {
		add(trace.Entry{Task: bloopers[l], Op: trace.OpBegin})
	}
	for _, f := range freers {
		add(trace.Entry{Task: driver, Op: trace.OpFork, Target: f})
	}
	// The driver seeds level 0: one sendAtFront, then ordered sends
	// with ascending delays (rule 1 applies to every ordered pair).
	add(trace.Entry{Task: driver, Op: trace.OpSendAtFront, Target: front, Queue: queues[0]})
	for j, ev := range events[0] {
		add(trace.Entry{Task: driver, Op: trace.OpSend, Target: ev, Queue: queues[0], Delay: int64(j)})
	}
	// Burst traffic: every send from the driver, ascending delays, so
	// queue rule 1 orders each burst queue completely in round one.
	for l := range bloopers {
		for j, ev := range bevents[l] {
			add(trace.Entry{Task: driver, Op: trace.OpSend, Target: ev, Queue: bqueues[l], Delay: int64(j)})
		}
	}
	add(trace.Entry{Task: driver, Op: trace.OpEnd})

	// Freeing threads run concurrently with everything below.
	for j, f := range freers {
		add(trace.Entry{Task: f, Op: trace.OpBegin})
		add(trace.Entry{Task: f, Op: trace.OpPtrWrite, Var: varOf(j), Value: trace.NullObj,
			PC: 1, Method: freeMethod(j)})
		add(trace.Entry{Task: f, Op: trace.OpEnd})
	}

	// The front event runs first on looper 0.
	add(trace.Entry{Task: front, Op: trace.OpBegin, Queue: queues[0]})
	add(trace.Entry{Task: front, Op: trace.OpEnd})

	// Benign filler: scalar reads of an event-private variable, a
	// no-op for every pass (see Config.AccessesPer).
	filler := func(ev trace.TaskID) {
		v := trace.MakeVar(trace.ObjID(1<<20+uint64(ev)), trace.FieldID(1<<20))
		for a := 0; a < cfg.AccessesPer; a++ {
			add(trace.Entry{Task: ev, Op: trace.OpRead, Var: v})
		}
	}

	// Each level's events run in send order; each uses its chain's
	// shared pointer and seeds the next level.
	for i := 0; i < cfg.Chain; i++ {
		for j, ev := range events[i] {
			add(trace.Entry{Task: ev, Op: trace.OpBegin, Queue: queues[i]})
			filler(ev)
			if j < cfg.FreeThreads {
				m := useMethod(i, j)
				add(trace.Entry{Task: ev, Op: trace.OpPtrRead, Var: varOf(j),
					Value: trace.ObjID(j + 1), PC: 1, Method: m})
				add(trace.Entry{Task: ev, Op: trace.OpDeref,
					Value: trace.ObjID(j + 1), PC: 2, Method: m})
			}
			if i+1 < cfg.Chain {
				add(trace.Entry{Task: ev, Op: trace.OpSend, Target: events[i+1][j],
					Queue: queues[i+1], Delay: int64(j)})
			}
			add(trace.Entry{Task: ev, Op: trace.OpEnd})
		}
	}

	// Burst events run last, in send order; each uses a shared pointer
	// so the detector sees candidate pairs against the freers.
	for l := range bloopers {
		for j, ev := range bevents[l] {
			add(trace.Entry{Task: ev, Op: trace.OpBegin, Queue: bqueues[l]})
			filler(ev)
			if cfg.FreeThreads > 0 {
				v := j % cfg.FreeThreads
				m := burstMethod(l, j)
				add(trace.Entry{Task: ev, Op: trace.OpPtrRead, Var: varOf(v),
					Value: trace.ObjID(v + 1), PC: 1, Method: m})
				add(trace.Entry{Task: ev, Op: trace.OpDeref,
					Value: trace.ObjID(v + 1), PC: 2, Method: m})
			}
			add(trace.Entry{Task: ev, Op: trace.OpEnd})
		}
	}
	cSynthTraces.Inc()
	cSynthEntries.Add(int64(len(tr.Entries)))
	return tr
}

package synth

import "testing"

func TestTraceValidates(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Chain: 1, EventsPer: 1, FreeThreads: 1},
		{Chain: 4, EventsPer: 8, FreeThreads: 4},
		{Chain: 8, EventsPer: 32, FreeThreads: 8},
		{Chain: 4, EventsPer: 4, FreeThreads: 4, Burst: 6, BurstEvents: 16},
	} {
		tr := Trace(cfg)
		if err := tr.Validate(); err != nil {
			t.Errorf("Trace(%+v): invalid trace: %v", cfg, err)
		}
		if tr.EventCount() == 0 {
			t.Errorf("Trace(%+v): no events", cfg)
		}
	}
}

package lockset

import (
	"strings"
	"testing"

	"cafa/internal/trace"
)

func mkTrace(entries []trace.Entry) *trace.Trace {
	tr := trace.New()
	tr.Tasks[1] = trace.TaskInfo{ID: 1, Kind: trace.KindThread, Name: "a"}
	tr.Tasks[2] = trace.TaskInfo{ID: 2, Kind: trace.KindThread, Name: "b"}
	for i, e := range entries {
		e.Time = int64(i)
		tr.Append(e)
	}
	return tr
}

func TestHeldSets(t *testing.T) {
	tr := mkTrace([]trace.Entry{
		{Task: 1, Op: trace.OpBegin},
		{Task: 1, Op: trace.OpWrite, Var: 1}, // no locks
		{Task: 1, Op: trace.OpLock, Lock: 5},
		{Task: 1, Op: trace.OpWrite, Var: 1}, // {5}
		{Task: 1, Op: trace.OpLock, Lock: 3},
		{Task: 1, Op: trace.OpWrite, Var: 1}, // {3,5}
		{Task: 1, Op: trace.OpUnlock, Lock: 5},
		{Task: 1, Op: trace.OpWrite, Var: 1}, // {3}
		{Task: 1, Op: trace.OpUnlock, Lock: 3},
		{Task: 1, Op: trace.OpEnd},
	})
	s, err := Compute(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.At(1)) != 0 {
		t.Errorf("At(1) = %v, want empty", s.At(1))
	}
	if got := s.At(3); len(got) != 1 || got[0] != 5 {
		t.Errorf("At(3) = %v, want [5]", got)
	}
	if got := s.At(5); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("At(5) = %v, want [3 5]", got)
	}
	if got := s.At(7); len(got) != 1 || got[0] != 3 {
		t.Errorf("At(7) = %v, want [3]", got)
	}
}

func TestIntersects(t *testing.T) {
	tr := mkTrace([]trace.Entry{
		{Task: 1, Op: trace.OpBegin},
		{Task: 2, Op: trace.OpBegin},
		{Task: 1, Op: trace.OpLock, Lock: 5},
		{Task: 1, Op: trace.OpWrite, Var: 1}, // 3: t1 {5}
		{Task: 1, Op: trace.OpUnlock, Lock: 5},
		{Task: 2, Op: trace.OpLock, Lock: 5},
		{Task: 2, Op: trace.OpWrite, Var: 1}, // 6: t2 {5}
		{Task: 2, Op: trace.OpUnlock, Lock: 5},
		{Task: 2, Op: trace.OpLock, Lock: 7},
		{Task: 2, Op: trace.OpWrite, Var: 1}, // 9: t2 {7}
		{Task: 2, Op: trace.OpUnlock, Lock: 7},
		{Task: 1, Op: trace.OpEnd},
		{Task: 2, Op: trace.OpEnd},
	})
	s, err := Compute(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Intersects(3, 6) {
		t.Error("common lock 5 not detected")
	}
	if s.Intersects(3, 9) {
		t.Error("disjoint sets reported as intersecting")
	}
	if s.Intersects(1, 6) {
		t.Error("empty set cannot intersect")
	}
}

func TestErrors(t *testing.T) {
	_, err := Compute(mkTrace([]trace.Entry{
		{Task: 1, Op: trace.OpBegin},
		{Task: 1, Op: trace.OpLock, Lock: 5},
		{Task: 1, Op: trace.OpLock, Lock: 5},
	}))
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("double acquire: err = %v", err)
	}
	_, err = Compute(mkTrace([]trace.Entry{
		{Task: 1, Op: trace.OpBegin},
		{Task: 1, Op: trace.OpUnlock, Lock: 5},
	}))
	if err == nil || !strings.Contains(err.Error(), "not held") {
		t.Errorf("bad unlock: err = %v", err)
	}
}

func TestSnapshotsAreStablePerOp(t *testing.T) {
	// The snapshot at an op must reflect the set at that moment even
	// after later lock changes.
	tr := mkTrace([]trace.Entry{
		{Task: 1, Op: trace.OpBegin},
		{Task: 1, Op: trace.OpLock, Lock: 1},
		{Task: 1, Op: trace.OpWrite, Var: 9}, // 2: {1}
		{Task: 1, Op: trace.OpLock, Lock: 2},
		{Task: 1, Op: trace.OpUnlock, Lock: 1},
		{Task: 1, Op: trace.OpWrite, Var: 9}, // 5: {2}
		{Task: 1, Op: trace.OpUnlock, Lock: 2},
		{Task: 1, Op: trace.OpEnd},
	})
	s, err := Compute(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("At(2) = %v, want [1]", got)
	}
	if got := s.At(5); len(got) != 1 || got[0] != 2 {
		t.Errorf("At(5) = %v, want [2]", got)
	}
}

func TestCommon(t *testing.T) {
	tr := mkTrace([]trace.Entry{
		{Task: 1, Op: trace.OpBegin},
		{Task: 1, Op: trace.OpLock, Lock: 3},
		{Task: 1, Op: trace.OpLock, Lock: 5},
		{Task: 1, Op: trace.OpWrite, Var: 1}, // {3,5}
		{Task: 1, Op: trace.OpUnlock, Lock: 5},
		{Task: 1, Op: trace.OpUnlock, Lock: 3},
		{Task: 1, Op: trace.OpEnd},
		{Task: 2, Op: trace.OpBegin},
		{Task: 2, Op: trace.OpLock, Lock: 5},
		{Task: 2, Op: trace.OpLock, Lock: 7},
		{Task: 2, Op: trace.OpWrite, Var: 1}, // {5,7}
		{Task: 2, Op: trace.OpUnlock, Lock: 7},
		{Task: 2, Op: trace.OpUnlock, Lock: 5},
		{Task: 2, Op: trace.OpEnd},
	})
	s, err := Compute(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Common(3, 10); len(got) != 1 || got[0] != 5 {
		t.Errorf("Common(3,10) = %v, want [5]", got)
	}
	if got := s.Common(3, 3); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("Common(3,3) = %v, want [3 5]", got)
	}
	if got := s.Common(0, 3); len(got) != 0 {
		t.Errorf("Common(0,3) = %v, want empty", got)
	}
}

// Package lockset computes the set of locks held at each operation of
// a trace. The causality model deliberately derives no happens-before
// from unlock → lock (§3.1); instead, conflicting operations whose
// lock sets intersect are assumed race-free, since the programmer
// explicitly protects them (§3.2).
package lockset

import (
	"fmt"
	"sort"

	"cafa/internal/trace"
)

// Sets holds, for every entry index of a trace, the locks its task
// held when the operation executed. Snapshots are interned: consecutive
// operations under an unchanged lock set share one slice.
type Sets struct {
	at [][]trace.LockID
}

// Compute scans the trace once and records held-lock snapshots.
func Compute(tr *trace.Trace) (*Sets, error) {
	s := &Sets{at: make([][]trace.LockID, len(tr.Entries))}
	held := make(map[trace.TaskID][]trace.LockID)
	for i := range tr.Entries {
		e := &tr.Entries[i]
		cur := held[e.Task]
		switch e.Op {
		case trace.OpLock:
			for _, l := range cur {
				if l == e.Lock {
					return nil, fmt.Errorf("lockset: entry %d: lock l%d acquired twice by t%d", i, e.Lock, e.Task)
				}
			}
			next := make([]trace.LockID, len(cur)+1)
			copy(next, cur)
			next[len(cur)] = e.Lock
			sort.Slice(next, func(a, b int) bool { return next[a] < next[b] })
			held[e.Task] = next
			cur = next
		case trace.OpUnlock:
			idx := -1
			for j, l := range cur {
				if l == e.Lock {
					idx = j
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("lockset: entry %d: unlock of l%d not held by t%d", i, e.Lock, e.Task)
			}
			next := make([]trace.LockID, 0, len(cur)-1)
			next = append(next, cur[:idx]...)
			next = append(next, cur[idx+1:]...)
			held[e.Task] = next
			cur = next
		}
		s.at[i] = cur
	}
	return s, nil
}

// At returns the locks held at entry i (sorted; shared slice — do not
// mutate).
func (s *Sets) At(i int) []trace.LockID { return s.at[i] }

// Common returns the locks held at both entries i and j, sorted — the
// witness behind a lockset prune. The result is freshly allocated.
func (s *Sets) Common(i, j int) []trace.LockID {
	a, b := s.at[i], s.at[j]
	var out []trace.LockID
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] == b[y]:
			out = append(out, a[x])
			x++
			y++
		case a[x] < b[y]:
			x++
		default:
			y++
		}
	}
	return out
}

// Intersects reports whether the lock sets at entries i and j share a
// lock — the mutual-exclusion condition that suppresses a race
// report.
func (s *Sets) Intersects(i, j int) bool {
	a, b := s.at[i], s.at[j]
	// Both are sorted; merge-scan.
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] == b[y]:
			return true
		case a[x] < b[y]:
			x++
		default:
			y++
		}
	}
	return false
}

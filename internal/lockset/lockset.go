// Package lockset computes the set of locks held at each operation of
// a trace. The causality model deliberately derives no happens-before
// from unlock → lock (§3.1); instead, conflicting operations whose
// lock sets intersect are assumed race-free, since the programmer
// explicitly protects them (§3.2).
package lockset

import (
	"fmt"
	"sort"

	"cafa/internal/trace"
)

// Sets holds held-lock snapshots by entry index. Dense mode (the
// batch Compute path) records every entry; sparse mode (the streaming
// Tracker) records only the entries the detector ever queries —
// pointer accesses — so memory is O(accesses), not O(trace).
// Snapshots are interned: consecutive operations under an unchanged
// lock set share one slice.
type Sets struct {
	at     [][]trace.LockID
	sparse map[int][]trace.LockID
}

// Compute scans the trace once and records held-lock snapshots.
func Compute(tr *trace.Trace) (*Sets, error) {
	tk := NewTracker(len(tr.Entries))
	for i := range tr.Entries {
		if err := tk.Consume(i, &tr.Entries[i]); err != nil {
			return nil, err
		}
	}
	return tk.Sets(), nil
}

// Tracker advances lock state one entry at a time. With a non-zero
// size hint it records a dense snapshot per entry (the batch layout);
// with hint 0 it records snapshots sparsely, only at entries whose
// lock set the detector can later query (pointer reads and writes).
type Tracker struct {
	s    *Sets
	held map[trace.TaskID][]trace.LockID
}

// NewTracker returns a Tracker. sizeHint is the entry count for dense
// recording, or 0 for sparse (streaming) recording.
func NewTracker(sizeHint int) *Tracker {
	s := &Sets{}
	if sizeHint > 0 {
		s.at = make([][]trace.LockID, sizeHint)
	} else {
		s.sparse = make(map[int][]trace.LockID)
	}
	return &Tracker{s: s, held: make(map[trace.TaskID][]trace.LockID)}
}

// Consume processes entry i. Entries must arrive in order.
func (tk *Tracker) Consume(i int, e *trace.Entry) error {
	cur := tk.held[e.Task]
	switch e.Op {
	case trace.OpLock:
		for _, l := range cur {
			if l == e.Lock {
				return fmt.Errorf("lockset: entry %d: lock l%d acquired twice by t%d", i, e.Lock, e.Task)
			}
		}
		next := make([]trace.LockID, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = e.Lock
		sort.Slice(next, func(a, b int) bool { return next[a] < next[b] })
		tk.held[e.Task] = next
		cur = next
	case trace.OpUnlock:
		idx := -1
		for j, l := range cur {
			if l == e.Lock {
				idx = j
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("lockset: entry %d: unlock of l%d not held by t%d", i, e.Lock, e.Task)
		}
		next := make([]trace.LockID, 0, len(cur)-1)
		next = append(next, cur[:idx]...)
		next = append(next, cur[idx+1:]...)
		tk.held[e.Task] = next
		cur = next
	}
	if tk.s.sparse != nil {
		// Only pointer accesses are ever queried (use ReadIdx / free
		// Idx are both pointer-access entries), and empty sets load as
		// nil anyway.
		if (e.Op == trace.OpPtrRead || e.Op == trace.OpPtrWrite) && len(cur) > 0 {
			tk.s.sparse[i] = cur
		}
		return nil
	}
	tk.s.at[i] = cur
	return nil
}

// Sets returns the accumulated snapshots.
func (tk *Tracker) Sets() *Sets { return tk.s }

// At returns the locks held at entry i (sorted; shared slice — do not
// mutate). In sparse mode, unrecorded entries report no locks.
func (s *Sets) At(i int) []trace.LockID {
	if s.sparse != nil {
		return s.sparse[i]
	}
	return s.at[i]
}

// Common returns the locks held at both entries i and j, sorted — the
// witness behind a lockset prune. The result is freshly allocated.
func (s *Sets) Common(i, j int) []trace.LockID {
	a, b := s.At(i), s.At(j)
	var out []trace.LockID
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] == b[y]:
			out = append(out, a[x])
			x++
			y++
		case a[x] < b[y]:
			x++
		default:
			y++
		}
	}
	return out
}

// Intersects reports whether the lock sets at entries i and j share a
// lock — the mutual-exclusion condition that suppresses a race
// report.
func (s *Sets) Intersects(i, j int) bool {
	a, b := s.At(i), s.At(j)
	// Both are sorted; merge-scan.
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] == b[y]:
			return true
		case a[x] < b[y]:
			x++
		default:
			y++
		}
	}
	return false
}

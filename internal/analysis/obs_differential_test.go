package analysis

import (
	"bytes"
	"fmt"
	"testing"

	"cafa/internal/apps"
	"cafa/internal/obs"
	"cafa/internal/trace"
)

// renderResult flattens everything the analyzer reports — rendered
// race lines, detector stats, graph stats — into one byte string so
// the differential check below is a single bytes.Equal.
func renderResult(tr *trace.Trace, res *Result) []byte {
	var buf bytes.Buffer
	for _, r := range res.Races {
		buf.WriteString(r.Describe(tr))
		buf.WriteByte('\n')
	}
	fmt.Fprintf(&buf, "stats: %+v\n", res.Stats)
	fmt.Fprintf(&buf, "graph: %+v\n", res.GraphStats)
	fmt.Fprintf(&buf, "conv: %+v\n", res.ConvStats)
	return buf.Bytes()
}

// TestObsDoesNotChangeResults is the observability differential proof:
// on every one of the ten app scenarios the pipeline's output (races,
// stats, rendered report) must be byte-identical with instrumentation
// enabled and disabled. The obs layer only observes — the analysis
// never reads anything back from it.
func TestObsDoesNotChangeResults(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("obs unexpectedly enabled at test start")
	}
	p := New(Options{})
	for _, spec := range apps.Registry {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tr := appTrace(t, spec)

			off, err := p.Analyze(tr)
			if err != nil {
				t.Fatal(err)
			}
			wantBytes := renderResult(tr, off)

			obs.Enable()
			defer func() {
				obs.Disable()
				obs.Reset()
			}()
			on, err := p.Analyze(tr)
			if err != nil {
				t.Fatal(err)
			}
			gotBytes := renderResult(tr, on)

			if !bytes.Equal(wantBytes, gotBytes) {
				t.Errorf("enabling obs changed the output:\n--- off\n%s--- on\n%s", wantBytes, gotBytes)
			}
			// And the instrumentation actually observed the run.
			if len(obs.Spans()) == 0 {
				t.Error("obs enabled but no spans recorded")
			}
		})
	}
}

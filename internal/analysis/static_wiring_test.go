package analysis

import (
	"reflect"
	"testing"

	"cafa/internal/apps"
	"cafa/internal/dataflow"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

func appTraceAndProgram(t testing.TB, spec apps.Spec) (*trace.Trace, *apps.BuildOut) {
	t.Helper()
	col := trace.NewCollector()
	out, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Sys.Run(); err != nil {
		t.Fatal(err)
	}
	return col.T, out
}

// TestStaticGuardPruneDifferential: on the app suite the static
// if-guard prune changes nothing — every statically guarded use is
// also caught by the dynamic window heuristic here — so the run with
// pruning on must be race- and stats-identical to the plain run. The
// pass only ever fires on guards the dynamic matching loses (see
// detect's TestStaticGuardPruning); this differential pins down that
// it cannot introduce divergence elsewhere.
func TestStaticGuardPruneDifferential(t *testing.T) {
	for _, spec := range apps.Registry {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			tr, b := appTraceAndProgram(t, spec)
			plain, err := Analyze(tr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			pruned, err := Analyze(tr, Options{Program: b.Prog, StaticGuardPrune: true})
			if err != nil {
				t.Fatal(err)
			}
			if pruned.Static == nil {
				t.Fatal("Result.Static not populated")
			}
			if !reflect.DeepEqual(pruned.Races, plain.Races) {
				t.Errorf("races differ with static guard pruning on:\n  plain:  %+v\n  pruned: %+v",
					plain.Races, pruned.Races)
			}
			if pruned.Stats != plain.Stats {
				t.Errorf("stats differ: plain %+v, pruned %+v", plain.Stats, pruned.Stats)
			}
		})
	}
}

// TestInterprocMatchesIntraOnApps: the interprocedural deref
// resolution must agree with the intra-method §6.3 pass on every app
// model — wherever the intra pass pins a deref to a load site or a
// fresh allocation, the interprocedural projection resolves
// identically, and the handler-parameter cases it cannot close under
// the open world fall back to dynamic matching exactly like
// SrcUnknown does. Identical races means in particular the same Type
// III eliminations (no precision regression).
func TestInterprocMatchesIntraOnApps(t *testing.T) {
	for _, spec := range apps.Registry {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			tr, b := appTraceAndProgram(t, spec)
			intra, err := Analyze(tr, Options{DerefSources: dataflow.DerefSources(b.Prog)})
			if err != nil {
				t.Fatal(err)
			}
			inter, err := Analyze(tr, Options{Program: b.Prog, Interproc: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(inter.Races, intra.Races) {
				t.Errorf("races differ:\n  intra: %+v\n  interproc: %+v", intra.Races, inter.Races)
			}
			if inter.Stats != intra.Stats {
				t.Errorf("stats differ: intra %+v, interproc %+v", intra.Stats, inter.Stats)
			}
		})
	}
}

// TestStaticResultCachedAcrossTraces: one Pipeline computes the
// static passes once even across a batch.
func TestStaticResultCachedAcrossTraces(t *testing.T) {
	spec := apps.Registry[0]
	tr, b := appTraceAndProgram(t, spec)
	tr2, _ := appTraceAndProgram(t, spec)
	p := New(Options{Program: b.Prog, Interproc: true, StaticGuardPrune: true})
	r1, err := p.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Analyze(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Static == nil || r1.Static != r2.Static {
		t.Error("static result not shared across traces of one Pipeline")
	}
}

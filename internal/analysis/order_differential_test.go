package analysis

import (
	"reflect"
	"strings"
	"testing"

	"cafa/internal/apps"
	"cafa/internal/detect"
	"cafa/internal/static"
)

// TestStaticOrderPruneDifferential is the soundness differential for
// the static event-order prune, over all ten app models: with the
// prune on, the detector must report exactly the same races as the
// plain run, and the candidates it skipped must obey a conservation
// law — every pair the static pass pruned would have been filtered by
// the dynamic ordered stage anyway, so
//
//	FilteredOrdered(off) == FilteredOrdered(on) + FilteredStaticOrder(on)
//
// with every other stage count unchanged. On top of the aggregate law,
// every statically-must-ordered pair is checked against the dynamic
// happens-before graph directly: ConcurrentAt must be false for its
// instances, i.e. the static relation is a subset of the dynamic one
// on every recorded schedule.
func TestStaticOrderPruneDifferential(t *testing.T) {
	for _, spec := range apps.Registry {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			tr, b := appTraceAndProgram(t, spec)
			plain, err := Analyze(tr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			roots := static.RootsFromNames(b.Prog, b.Sys.Roots())
			pruned, err := Analyze(tr, Options{
				Program:          b.Prog,
				Roots:            roots,
				StaticOrderPrune: true,
				Evidence:         true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if pruned.Static == nil || pruned.Static.Orders == nil {
				t.Fatal("static order pass not populated")
			}
			if !reflect.DeepEqual(pruned.Races, plain.Races) {
				t.Errorf("races differ with static order pruning on:\n  plain:  %+v\n  pruned: %+v",
					plain.Races, pruned.Races)
			}

			// Conservation: the prune may only steal from the dynamic
			// ordered stage.
			want := plain.Stats
			got := pruned.Stats
			got.FilteredOrdered += got.FilteredStaticOrder
			got.FilteredStaticOrder = 0
			if got != want {
				t.Errorf("stats violate the ordered-stage conservation law:\n  plain:  %+v\n  pruned: %+v",
					plain.Stats, pruned.Stats)
			}

			// Subset check: every candidate instance the static pass
			// pruned (each leaves a provenance witness) is dynamically
			// HB-ordered in the recorded schedule.
			checkedInstances := 0
			for _, rec := range pruned.Evidence.PrunedRecords() {
				if rec.W.Stage != detect.PruneStaticOrder {
					continue
				}
				u, f := rec.Use, rec.Free
				if plain.Graph.ConcurrentAt(u.ReadIdx, u.Task, f.Idx, f.Task) {
					t.Errorf("statically-ordered pair %+v is dynamically concurrent at (%d, %d)",
						rec.Site(), u.ReadIdx, f.Idx)
				}
				if len(rec.W.StaticPath) == 0 {
					t.Errorf("static-order prune witness for %+v carries no derivation path", rec.Site())
				}
				checkedInstances++
			}
			if pruned.Stats.FilteredStaticOrder == 0 || checkedInstances == 0 {
				// The ordered scenario runs on every app, so the prune
				// must fire and every firing must leave a witness.
				t.Errorf("static-order prune fired %d time(s), %d witnessed; want > 0 on every app",
					pruned.Stats.FilteredStaticOrder, checkedInstances)
			}
		})
	}
}

// TestStaticOrderOpenWorldBottom: without a root inventory the order
// pass returns the conservative bottom — no pair is pruned and the
// run is bit-identical to plain analysis (the closed-world caveat).
func TestStaticOrderOpenWorldBottom(t *testing.T) {
	spec := apps.Registry[0]
	tr, b := appTraceAndProgram(t, spec)
	plain, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bottom, err := Analyze(tr, Options{Program: b.Prog, StaticOrderPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if bottom.Static.Orders.Ordered() != 0 {
		t.Errorf("open-world order pass proved %d pairs ordered, want 0", bottom.Static.Orders.Ordered())
	}
	if bottom.Stats != plain.Stats {
		t.Errorf("open-world stats differ: plain %+v, bottom %+v", plain.Stats, bottom.Stats)
	}
	if !reflect.DeepEqual(bottom.Races, plain.Races) {
		t.Errorf("open-world races differ from plain run")
	}
}

// TestStaticOrderPruneReportBytes: the rendered report is
// byte-identical with the prune on vs off — Table 1 and the problem
// list cannot tell the runs apart. (Rendering lives in
// internal/report; here the per-trace race descriptions stand in, and
// report's own TestTable1StaticOrderDifferential covers the tables.)
func TestStaticOrderPruneReportBytes(t *testing.T) {
	for _, spec := range apps.Registry[:3] {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			tr, b := appTraceAndProgram(t, spec)
			render := func(res *Result) string {
				var sb strings.Builder
				for _, r := range res.Races {
					sb.WriteString(r.Class.String())
					sb.WriteString(" ")
					sb.WriteString(r.Describe(res.Trace))
					sb.WriteString("\n")
				}
				return sb.String()
			}
			plain, err := Analyze(tr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			pruned, err := Analyze(tr, Options{
				Program:          b.Prog,
				Roots:            static.RootsFromNames(b.Prog, b.Sys.Roots()),
				StaticOrderPrune: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if render(plain) != render(pruned) {
				t.Errorf("rendered race report differs:\n--- plain\n%s--- pruned\n%s",
					render(plain), render(pruned))
			}
		})
	}
}

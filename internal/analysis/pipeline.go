// Package analysis orchestrates CAFA's offline half as a concurrent,
// reusable pipeline. One Analyze call fans the three independent
// trace passes — the event-driven causality graph, the conventional
// baseline graph, and the lockset computation — out to goroutines
// over a shared hb.Prescan, then joins them into the use-free
// detector. A Pipeline additionally analyzes many traces in parallel
// under a bounded worker pool (batch mode).
//
// Results are bit-identical to running the passes serially: the
// passes share no mutable state (the Prescan is immutable, each graph
// owns its adjacency and closure), and the detector runs after the
// join, so concurrency changes only wall-clock time.
package analysis

import (
	"fmt"
	"runtime"
	"sync"

	"cafa/internal/dataflow"
	"cafa/internal/detect"
	"cafa/internal/hb"
	"cafa/internal/lockset"
	"cafa/internal/trace"
)

// Options configures a Pipeline.
type Options struct {
	// Detect carries the detector's ablation switches.
	Detect detect.Options
	// Naive additionally runs the low-level conflicting-access
	// baseline (the paper's §4.1 motivation).
	Naive bool
	// DerefSources, when non-nil, enables the static data-flow use
	// matching extension (§6.3); see detect.Input.DerefSources.
	DerefSources map[dataflow.Key]dataflow.Source
	// Workers bounds batch-mode concurrency (AnalyzeAll). 0 means
	// GOMAXPROCS. Per-trace pass concurrency is fixed at the three
	// independent passes and is not affected.
	Workers int
}

// Result is the analysis of one trace.
type Result struct {
	// Trace is the analyzed trace.
	Trace *trace.Trace
	// Races are the reported use-free races, deduplicated by code
	// site and in deterministic SiteKey order.
	Races []detect.Race
	// Stats counts the detector's pipeline stages.
	Stats detect.Stats
	// GraphStats summarizes event-driven causality-model construction.
	GraphStats hb.Stats
	// ConvStats summarizes the conventional baseline model.
	ConvStats hb.Stats
	// Naive holds the low-level baseline races when requested.
	Naive []detect.NaiveRace
	// Graph and Conventional expose the built models for consumers
	// that need ordering queries after detection (explain mode).
	Graph        *hb.Graph
	Conventional *hb.Graph
	// Locks are the per-operation held-lock sets.
	Locks *lockset.Sets
}

// Pipeline is a reusable analyzer. The zero value is ready to use;
// New applies Options.
type Pipeline struct {
	opts Options
}

// New returns a Pipeline with the given options.
func New(opts Options) *Pipeline {
	return &Pipeline{opts: opts}
}

// Analyze runs the full offline pipeline on one trace. The trace scan
// runs once; the two causality models and the lockset pass then run
// concurrently, and the detector joins them.
func (p *Pipeline) Analyze(tr *trace.Trace) (*Result, error) {
	ps, err := hb.Scan(tr)
	if err != nil {
		return nil, err
	}
	var (
		wg                   sync.WaitGroup
		g, conv              *hb.Graph
		ls                   *lockset.Sets
		gErr, convErr, lsErr error
	)
	wg.Add(3)
	go func() {
		defer wg.Done()
		g, gErr = hb.BuildFromScan(ps, hb.Options{})
	}()
	go func() {
		defer wg.Done()
		conv, convErr = hb.BuildFromScan(ps, hb.Options{Conventional: true})
	}()
	go func() {
		defer wg.Done()
		ls, lsErr = lockset.Compute(tr)
	}()
	wg.Wait()
	if gErr != nil {
		return nil, gErr
	}
	if convErr != nil {
		return nil, convErr
	}
	if lsErr != nil {
		return nil, lsErr
	}
	res, err := detect.Detect(detect.Input{
		Trace:        tr,
		Graph:        g,
		Conventional: conv,
		Locks:        ls,
		DerefSources: p.opts.DerefSources,
	}, p.opts.Detect)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Trace:        tr,
		Races:        res.Races,
		Stats:        res.Stats,
		GraphStats:   g.Stats(),
		ConvStats:    conv.Stats(),
		Graph:        g,
		Conventional: conv,
		Locks:        ls,
	}
	if p.opts.Naive {
		out.Naive = detect.Naive(g)
	}
	return out, nil
}

// AnalyzeAll analyzes many traces under a bounded worker pool,
// returning results in input order. The first error encountered is
// returned (after all workers drain); its result slot and any
// unanalyzed slots are nil.
func (p *Pipeline) AnalyzeAll(traces []*trace.Trace) ([]*Result, error) {
	results := make([]*Result, len(traces))
	errs := make([]error, len(traces))
	ForEach(p.opts.Workers, len(traces), func(i int) {
		results[i], errs[i] = p.Analyze(traces[i])
	})
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("analysis: trace %d: %w", i, err)
		}
	}
	return results, nil
}

// Analyze is the one-shot convenience form of Pipeline.Analyze.
func Analyze(tr *trace.Trace, opts Options) (*Result, error) {
	return New(opts).Analyze(tr)
}

// ForEach calls fn(i) for every i in [0, n) from up to `workers`
// concurrent goroutines (0 = GOMAXPROCS) and waits for all calls to
// finish. It is the bounded batch primitive shared by AnalyzeAll, the
// report harness, and the CLIs; fn must handle its own
// synchronization for any shared state beyond its own index.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

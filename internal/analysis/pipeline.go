// Package analysis orchestrates CAFA's offline half as a concurrent,
// reusable pipeline. One Analyze call fans the three independent
// trace passes — the event-driven causality graph, the conventional
// baseline graph, and the lockset computation — out to goroutines
// over a shared hb.Prescan, then joins them into the use-free
// detector. A Pipeline additionally analyzes many traces in parallel
// under a bounded worker pool (batch mode).
//
// Results are bit-identical to running the passes serially: the
// passes share no mutable state (the Prescan is immutable, each graph
// owns its adjacency and closure), and the detector runs after the
// join, so concurrency changes only wall-clock time.
package analysis

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"cafa/internal/dataflow"
	"cafa/internal/detect"
	"cafa/internal/dvm"
	"cafa/internal/hb"
	"cafa/internal/lockset"
	"cafa/internal/obs"
	"cafa/internal/provenance"
	"cafa/internal/static"
	"cafa/internal/trace"
)

// Pipeline observability (internal/obs). Each analyzed trace gets a
// span tree: the per-trace span (one track — batch concurrency shows
// up as parallel tracks) with a serial prescan child, forked spans
// for the concurrently-built passes, and a serial detect child after
// the join. Counters track batch scheduling.
var (
	cTracesAnalyzed = obs.NewCounter("analysis_traces_analyzed_total")
	cTraceErrors    = obs.NewCounter("analysis_trace_errors_total")
	cBatchTraces    = obs.NewCounter("analysis_batch_traces_total")
)

// Options configures a Pipeline.
type Options struct {
	// Detect carries the detector's ablation switches.
	Detect detect.Options
	// Naive additionally runs the low-level conflicting-access
	// baseline (the paper's §4.1 motivation).
	Naive bool
	// DerefSources, when non-nil, enables the static data-flow use
	// matching extension (§6.3); see detect.Input.DerefSources.
	DerefSources map[dataflow.Key]dataflow.Source
	// Program, when non-nil, makes the whole-program static passes
	// (internal/static) available to the pipeline. It is required by
	// Interproc and StaticGuardPrune and is computed at most once per
	// Pipeline — the program does not change across traces.
	Program *dvm.Program
	// Interproc matches dereferences through the interprocedural
	// resolution (call-graph def-use chains) instead of the
	// intra-method DerefSources. Requires Program; overrides
	// DerefSources.
	Interproc bool
	// StaticGuardPrune additionally prunes uses whose deref site the
	// static if-guard pass proves covered by a null test. Requires
	// Program.
	StaticGuardPrune bool
	// Roots is the closed-world entry-point inventory (method →
	// injection/thread-start count) feeding the static event-order
	// pass. Nil leaves the pass at its open-world bottom.
	Roots map[trace.MethodID]int
	// StaticOrderPrune skips the dynamic HB query for candidate pairs
	// the static event-order pass proves must-ordered. Requires
	// Program and Roots; sound only because the prune projection
	// excludes lint-only ordering rules.
	StaticOrderPrune bool
	// Evidence attaches a provenance.Collector to each Detect call:
	// Result.Evidence then carries per-race evidence records and
	// per-filtered-candidate prune witnesses. Detection results are
	// identical either way; the switch only buys the bookkeeping.
	Evidence bool
	// EvidenceOptions configures the collector when Evidence is set.
	EvidenceOptions provenance.Options
	// Workers bounds batch-mode concurrency (AnalyzeAll). 0 means
	// GOMAXPROCS. Per-trace pass concurrency is fixed at the three
	// independent passes and is not affected.
	Workers int
}

// wantStatic reports whether the pipeline needs the static result.
func (o *Options) wantStatic() bool {
	return o.Program != nil && (o.Interproc || o.StaticGuardPrune || o.StaticOrderPrune)
}

// Result is the analysis of one trace.
type Result struct {
	// Trace is the analyzed trace.
	Trace *trace.Trace
	// Races are the reported use-free races, deduplicated by code
	// site and in deterministic SiteKey order.
	Races []detect.Race
	// Stats counts the detector's pipeline stages.
	Stats detect.Stats
	// GraphStats summarizes event-driven causality-model construction.
	GraphStats hb.Stats
	// ConvStats summarizes the conventional baseline model.
	ConvStats hb.Stats
	// Naive holds the low-level baseline races when requested.
	Naive []detect.NaiveRace
	// Graph and Conventional expose the built models for consumers
	// that need ordering queries after detection (explain mode).
	Graph        *hb.Graph
	Conventional *hb.Graph
	// Locks are the per-operation held-lock sets.
	Locks *lockset.Sets
	// Static is the whole-program static analysis result when the
	// pipeline computed one (Options.Program with Interproc or
	// StaticGuardPrune). Shared across traces of one Pipeline.
	Static *static.Result
	// Evidence is the provenance collector attached to the detector
	// run, populated when Options.Evidence is set (nil otherwise).
	Evidence *provenance.Collector
	// Stacks are the call stacks captured at each use's deref and each
	// free during a streaming analysis, keyed by trace index. Nil for
	// batch results, where report rendering reconstructs stacks from
	// the materialized trace via detect.CallStack.
	Stacks map[int][]trace.MethodID
}

// StackAt returns the call stack at trace index idx: the stack
// captured during streaming when present, otherwise reconstructed
// from the materialized trace. Report rendering goes through this so
// batch and streaming runs emit identical context lines.
func (r *Result) StackAt(idx int) []trace.MethodID {
	if r.Stacks != nil {
		return r.Stacks[idx]
	}
	return detect.CallStack(r.Trace, idx)
}

// Pipeline is a reusable analyzer. The zero value is ready to use;
// New applies Options.
type Pipeline struct {
	opts Options

	// The static result depends only on the program, so one Pipeline
	// computes it at most once even across AnalyzeAll batches.
	staticOnce sync.Once
	static     *static.Result
}

// New returns a Pipeline with the given options.
func New(opts Options) *Pipeline {
	return &Pipeline{opts: opts}
}

// Analyze runs the full offline pipeline on one trace. The trace scan
// runs once; the two causality models and the lockset pass then run
// concurrently, and the detector joins them.
func (p *Pipeline) Analyze(tr *trace.Trace) (*Result, error) {
	sp := obs.Start("pipeline.analyze")
	defer sp.End()
	return p.AnalyzeSpanned(tr, sp)
}

// AnalyzeSpanned is Analyze under a caller-owned obs span (nil is
// fine): per-pass sub-spans attach to it and it gains a "races"
// attribute on success, so callers that label per-trace spans (the
// cafa-analyze batch driver, the -progress stream) see the detector
// outcome on the span itself. The caller Ends sp.
func (p *Pipeline) AnalyzeSpanned(tr *trace.Trace, sp *obs.Span) (*Result, error) {
	spScan := sp.Child("hb.prescan")
	ps, err := hb.Scan(tr)
	spScan.End()
	if err != nil {
		cTraceErrors.Inc()
		return nil, err
	}
	var (
		wg                   sync.WaitGroup
		g, conv              *hb.Graph
		ls                   *lockset.Sets
		gErr, convErr, lsErr error
		st                   *static.Result
	)
	wg.Add(3)
	go func() {
		defer wg.Done()
		spG := sp.Fork("hb.graph")
		defer spG.End()
		g, gErr = hb.BuildFromScan(ps, hb.Options{})
	}()
	go func() {
		defer wg.Done()
		spC := sp.Fork("hb.conventional")
		defer spC.End()
		conv, convErr = hb.BuildFromScan(ps, hb.Options{Conventional: true})
	}()
	go func() {
		defer wg.Done()
		spL := sp.Fork("lockset")
		defer spL.End()
		ls, lsErr = lockset.Compute(tr)
	}()
	if p.opts.wantStatic() {
		// The static passes need only the program, not the trace, so
		// they overlap with the graph builds. sync.Once caches the
		// result across traces (and makes concurrent first calls safe).
		wg.Add(1)
		go func() {
			defer wg.Done()
			spS := sp.Fork("static")
			defer spS.End()
			p.staticOnce.Do(func() {
				p.static = static.AnalyzeOpts(p.opts.Program, static.Options{Roots: p.opts.Roots})
			})
			st = p.static
		}()
	}
	wg.Wait()
	if gErr != nil {
		cTraceErrors.Inc()
		return nil, gErr
	}
	if convErr != nil {
		cTraceErrors.Inc()
		return nil, convErr
	}
	if lsErr != nil {
		cTraceErrors.Inc()
		return nil, lsErr
	}
	in := detect.Input{
		Trace:        tr,
		Graph:        g,
		Conventional: conv,
		Locks:        ls,
		DerefSources: p.opts.DerefSources,
	}
	if st != nil {
		if p.opts.Interproc {
			in.DerefSources = st.Derefs
		}
		if p.opts.StaticGuardPrune {
			in.StaticGuards = st.Guards
		}
		if p.opts.StaticOrderPrune {
			in.StaticOrders = st.Orders.PruneMap()
		}
	}
	var col *provenance.Collector
	if p.opts.Evidence {
		col = provenance.NewCollector(tr, g, conv, ls, p.opts.EvidenceOptions)
		in.Collector = col
	}
	spDet := sp.Child("detect")
	res, err := detect.Detect(in, p.opts.Detect)
	spDet.End()
	if err != nil {
		cTraceErrors.Inc()
		return nil, err
	}
	out := &Result{
		Trace:        tr,
		Races:        res.Races,
		Stats:        res.Stats,
		GraphStats:   g.Stats(),
		ConvStats:    conv.Stats(),
		Graph:        g,
		Conventional: conv,
		Locks:        ls,
		Static:       st,
		Evidence:     col,
	}
	if p.opts.Naive {
		spN := sp.Child("detect.naive")
		out.Naive = detect.Naive(g)
		spN.End()
	}
	cTracesAnalyzed.Inc()
	sp.SetAttr(obs.Int("races", len(out.Races)))
	return out, nil
}

// AnalyzeAll analyzes many traces under a bounded worker pool,
// returning results in input order. The first error encountered is
// returned (after all workers drain); its result slot and any
// unanalyzed slots are nil.
func (p *Pipeline) AnalyzeAll(traces []*trace.Trace) ([]*Result, error) {
	results := make([]*Result, len(traces))
	errs := make([]error, len(traces))
	cBatchTraces.Add(int64(len(traces)))
	ForEach(p.opts.Workers, len(traces), func(i int) {
		sp := obs.Start("pipeline.analyze", obs.Int("idx", i))
		results[i], errs[i] = p.AnalyzeSpanned(traces[i], sp)
		sp.End()
	})
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("analysis: trace %d: %w", i, err)
		}
	}
	return results, nil
}

// Analyze is the one-shot convenience form of Pipeline.Analyze.
func Analyze(tr *trace.Trace, opts Options) (*Result, error) {
	return New(opts).Analyze(tr)
}

// Source is one input to AnalyzeSources: a materialized trace (batch
// mode) or a reader whose entries are streamed (Reader non-nil wins).
type Source struct {
	Trace  *trace.Trace
	Reader io.Reader
}

// AnalyzeSources analyzes a mixed batch of materialized and streamed
// inputs under the same bounded worker pool as AnalyzeAll, returning
// results in input order. Batch and streamed inputs produce identical
// results for identical traces; the mode only changes peak memory.
func (p *Pipeline) AnalyzeSources(srcs []Source) ([]*Result, error) {
	results := make([]*Result, len(srcs))
	errs := make([]error, len(srcs))
	cBatchTraces.Add(int64(len(srcs)))
	ForEach(p.opts.Workers, len(srcs), func(i int) {
		if srcs[i].Reader != nil {
			sp := obs.Start("pipeline.analyze.stream", obs.Int("idx", i))
			results[i], errs[i] = p.AnalyzeStreamSpanned(srcs[i].Reader, sp)
			sp.End()
			return
		}
		sp := obs.Start("pipeline.analyze", obs.Int("idx", i))
		results[i], errs[i] = p.AnalyzeSpanned(srcs[i].Trace, sp)
		sp.End()
	})
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("analysis: trace %d: %w", i, err)
		}
	}
	return results, nil
}

// ForEach calls fn(i) for every i in [0, n) from up to `workers`
// concurrent goroutines (0 = GOMAXPROCS) and waits for all calls to
// finish. It is the bounded batch primitive shared by AnalyzeAll, the
// report harness, and the CLIs; fn must handle its own
// synchronization for any shared state beyond its own index.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

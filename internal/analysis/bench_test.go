package analysis

import (
	"testing"

	"cafa/internal/hb"
	"cafa/internal/synth"
	"cafa/internal/trace"
)

// benchTraces spans an app-sized trace up to a large chained fan-out.
// The shapes mirror internal/hb's closure benchmarks so graph-level
// and pipeline-level numbers line up; the baseline lives in
// BENCH_analysis.json at the repo root.
var benchTraces = []struct {
	name string
	cfg  synth.Config
}{
	{"small", synth.Config{Chain: 2, EventsPer: 4, FreeThreads: 2}},
	{"large", synth.Config{Chain: 8, EventsPer: 4, FreeThreads: 16, Burst: 8, BurstEvents: 48}},
}

// BenchmarkBuildGraph measures one event-driven hb graph build — the
// incremental-closure fixpoint — over the synthetic traces.
func BenchmarkBuildGraph(b *testing.B) {
	for _, bt := range benchTraces {
		tr := synth.Trace(bt.cfg)
		b.Run(bt.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hb.Build(tr, hb.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzePipeline measures the full concurrent pipeline
// (shared prescan, both graph variants and lockset in parallel, then
// the detector) over the synthetic traces.
func BenchmarkAnalyzePipeline(b *testing.B) {
	for _, bt := range benchTraces {
		tr := synth.Trace(bt.cfg)
		b.Run(bt.name, func(b *testing.B) {
			b.ReportAllocs()
			p := New(Options{})
			for i := 0; i < b.N; i++ {
				if _, err := p.Analyze(tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeAll measures the batch path: the large synthetic
// trace analyzed repeatedly under the bounded worker pool.
func BenchmarkAnalyzeAll(b *testing.B) {
	traces := make([]*trace.Trace, 8)
	for i := range traces {
		traces[i] = synth.Trace(benchTraces[1].cfg)
	}
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			p := New(Options{Workers: workers})
			for i := 0; i < b.N; i++ {
				if _, err := p.AnalyzeAll(traces); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

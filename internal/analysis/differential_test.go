package analysis

import (
	"bytes"
	"reflect"
	"testing"

	"cafa/internal/apps"
	"cafa/internal/detect"
	"cafa/internal/hb"
	"cafa/internal/lockset"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

const testScale = 16

func appTrace(t testing.TB, spec apps.Spec) *trace.Trace {
	t.Helper()
	col := trace.NewCollector()
	out, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Sys.Run(); err != nil {
		t.Fatal(err)
	}
	return col.T
}

// serialAnalyze is the seed pipeline, verbatim: three strictly serial
// full passes over the trace, each graph built stand-alone.
func serialAnalyze(t *testing.T, tr *trace.Trace, opts detect.Options) (*detect.Result, hb.Stats, hb.Stats) {
	t.Helper()
	g, err := hb.Build(tr, hb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := hb.Build(tr, hb.Options{Conventional: true})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := lockset.Compute(tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := detect.Detect(detect.Input{Trace: tr, Graph: g, Conventional: conv, Locks: ls}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, g.Stats(), conv.Stats()
}

// TestPipelineMatchesSerialOnAllApps is the differential acceptance
// test: on every one of the ten app scenarios the concurrent pipeline
// with the incremental closure must report byte-identical races and
// identical DetectStats / hb.Stats versus the serial seed path.
func TestPipelineMatchesSerialOnAllApps(t *testing.T) {
	p := New(Options{})
	for _, spec := range apps.Registry {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tr := appTrace(t, spec)
			wantRes, wantG, wantConv := serialAnalyze(t, tr, detect.Options{})
			got, err := p.Analyze(tr)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Races, wantRes.Races) {
				t.Errorf("races differ:\n  pipeline: %+v\n  serial:   %+v", got.Races, wantRes.Races)
			}
			if got.Stats != wantRes.Stats {
				t.Errorf("DetectStats differ: pipeline %+v, serial %+v", got.Stats, wantRes.Stats)
			}
			if got.GraphStats != wantG {
				t.Errorf("hb.Stats differ: pipeline %+v, serial %+v", got.GraphStats, wantG)
			}
			if got.ConvStats != wantConv {
				t.Errorf("conventional hb.Stats differ: pipeline %+v, serial %+v", got.ConvStats, wantConv)
			}
			// Byte-identical reports: the rendered lines must match too.
			var a, b bytes.Buffer
			for _, r := range wantRes.Races {
				a.WriteString(r.Describe(tr))
				a.WriteByte('\n')
			}
			for _, r := range got.Races {
				b.WriteString(r.Describe(tr))
				b.WriteByte('\n')
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("rendered reports differ:\n--- serial\n%s--- pipeline\n%s", a.String(), b.String())
			}
		})
	}
}

// TestPipelineMatchesSerialWithAblations spot-checks option plumbing:
// ablation switches and the naive baseline must flow through the
// pipeline unchanged.
func TestPipelineMatchesSerialWithAblations(t *testing.T) {
	spec, _ := apps.ByName("Firefox")
	tr := appTrace(t, spec)
	for _, dopts := range []detect.Options{
		{DisableIfGuard: true},
		{DisableLockset: true, KeepDuplicates: true},
		{DisableIfGuard: true, DisableIntraEventAlloc: true, DisableLockset: true},
	} {
		wantRes, _, _ := serialAnalyze(t, tr, dopts)
		got, err := Analyze(tr, Options{Detect: dopts, Naive: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Races, wantRes.Races) || got.Stats != wantRes.Stats {
			t.Errorf("opts %+v: pipeline diverges from serial", dopts)
		}
		g, err := hb.Build(tr, hb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Naive, detect.Naive(g)) {
			t.Errorf("opts %+v: naive baseline differs", dopts)
		}
	}
}

// TestAnalyzeAllOrderAndErrors checks batch mode: results come back
// in input order regardless of worker count, and an invalid trace
// surfaces an error without losing the good results.
func TestAnalyzeAllOrderAndErrors(t *testing.T) {
	var traces []*trace.Trace
	var names []string
	for _, spec := range apps.Registry[:4] {
		traces = append(traces, appTrace(t, spec))
		names = append(names, spec.Name)
	}
	for _, workers := range []int{0, 1, 2, 8} {
		p := New(Options{Workers: workers})
		results, err := p.AnalyzeAll(traces)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(traces) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(results), len(traces))
		}
		for i, res := range results {
			if res == nil || res.Trace != traces[i] {
				t.Fatalf("workers=%d: result %d out of order", workers, i)
			}
			want, _, _ := serialAnalyze(t, traces[i], detect.Options{})
			if !reflect.DeepEqual(res.Races, want.Races) {
				t.Errorf("workers=%d: %s: races diverge from serial", workers, names[i])
			}
		}
	}

	// A malformed trace (duplicate begin) fails its slot but not the
	// others.
	bad := trace.New()
	bad.Tasks[1] = trace.TaskInfo{ID: 1, Kind: trace.KindThread, Name: "T"}
	bad.Append(trace.Entry{Task: 1, Op: trace.OpBegin})
	bad.Append(trace.Entry{Task: 1, Op: trace.OpBegin})
	p := New(Options{Workers: 2})
	results, err := p.AnalyzeAll([]*trace.Trace{traces[0], bad, traces[1]})
	if err == nil {
		t.Fatal("want error for malformed trace")
	}
	if results[0] == nil || results[2] == nil {
		t.Error("good traces should still have results")
	}
	if results[1] != nil {
		t.Error("malformed trace should have a nil result")
	}
}

// Streaming mode: the same pipeline advanced one entry at a time.
//
// Batch analysis materializes the trace, then runs three passes over
// it. Streaming analysis turns each pass's scan into a per-event
// consumer — hb.Scanner, lockset.Tracker, detect.Extractor, and the
// structural trace.Validator — and feeds every decoded entry through
// all four before discarding it. What survives an entry's consumption
// is a windowed frontier of compact records:
//
//   - hb: one reduced node + redOp record per reduced operation
//     (begins/ends/sends/...), never the scalar accesses between them;
//   - lockset: a snapshot only at pointer accesses whose set is
//     non-empty (the only entries the detector ever queries);
//   - detect: use/free/alloc/guard records plus the per-task
//     last-read frontier; a read retires as soon as a newer read of
//     the same object supersedes it or a deref promotes it.
//
// Peak memory is therefore O(reduced nodes + accesses-of-interest),
// not O(trace): the dominant cost of long traces — the entry slice
// itself and the per-entry lockset snapshots — is never allocated.
// The happens-before closure itself is still built at Finish over the
// reduced nodes, exactly as in batch mode, so results are
// bit-identical; only the entry stream is never retained.
//
// Evidence and the naive baseline need the full entry list (call
// walks, Explain paths); when Options request them the analyzer
// retains decoded entries in the header trace and everything works
// unchanged — the streaming win is then overlap (analyze during
// ingest), not bounded memory.
package analysis

import (
	"fmt"
	"io"
	"sync"

	"cafa/internal/detect"
	"cafa/internal/hb"
	"cafa/internal/lockset"
	"cafa/internal/obs"
	"cafa/internal/provenance"
	"cafa/internal/static"
	"cafa/internal/trace"
)

// Streaming observability (internal/obs): traces/entries consumed via
// the streaming path, and the live frontier window (unpromoted pinned
// reads), sampled periodically and at Finish. The retirement counter
// and stall histogram live in internal/detect with the frontier.
var (
	cStreamTraces  = obs.NewCounter("analysis_stream_traces_total")
	cStreamEntries = obs.NewCounter("analysis_stream_entries_total")
	gStreamWindow  = obs.NewGauge("stream_window_live")
)

// windowSampleEvery is how often (in entries) Consume refreshes the
// stream_window_live gauge.
const windowSampleEvery = 4096

// Consumer is the per-event analysis interface: entries arrive in
// trace order, each at most once, and Finish seals the analysis.
type Consumer interface {
	Consume(e trace.Entry) error
	Finish() (*Result, error)
}

// StreamAnalyzer runs the pipeline over a stream of entries. Create
// one per trace with Pipeline.NewStream, Consume every entry, then
// Finish. It implements Consumer.
type StreamAnalyzer struct {
	p   *Pipeline
	hdr *trace.Trace
	st  *static.Result

	val     *trace.Validator
	scanner *hb.Scanner
	locks   *lockset.Tracker
	ext     *detect.Extractor

	// retain keeps decoded entries in hdr: required by Evidence
	// (provenance walks the trace) and Naive. Without them the entry
	// stream is discarded and memory stays O(window).
	retain bool
	i      int
}

// NewStream returns a StreamAnalyzer over a header trace (task and
// name tables; Entries empty). Options.Evidence and Options.Naive
// force entry retention — the analysis still streams, but memory is
// O(trace) again because provenance needs the materialized entries.
func (p *Pipeline) NewStream(hdr *trace.Trace) *StreamAnalyzer {
	var st *static.Result
	if p.opts.wantStatic() {
		p.staticOnce.Do(func() {
			p.static = static.AnalyzeOpts(p.opts.Program, static.Options{Roots: p.opts.Roots})
		})
		st = p.static
	}
	sources := p.opts.DerefSources
	if st != nil && p.opts.Interproc {
		sources = st.Derefs
	}
	return &StreamAnalyzer{
		p:       p,
		hdr:     hdr,
		st:      st,
		val:     trace.NewValidator(hdr),
		scanner: hb.NewScanner(hdr),
		locks:   lockset.NewTracker(0),
		ext:     detect.NewExtractor(sources, true),
		retain:  p.opts.Evidence || p.opts.Naive,
	}
}

// Retaining reports whether the analyzer keeps decoded entries (see
// NewStream).
func (sa *StreamAnalyzer) Retaining() bool { return sa.retain }

// Entries returns how many entries have been consumed so far.
func (sa *StreamAnalyzer) Entries() int { return sa.i }

// Consume advances every pass by one entry. Entries must arrive in
// trace order; the entry is not retained unless Retaining.
func (sa *StreamAnalyzer) Consume(e trace.Entry) error {
	i := sa.i
	if err := sa.val.Entry(&e); err != nil {
		return err
	}
	if err := sa.scanner.Consume(&e); err != nil {
		return err
	}
	if err := sa.locks.Consume(i, &e); err != nil {
		return err
	}
	sa.ext.Consume(i, &e)
	if sa.retain {
		sa.hdr.Entries = append(sa.hdr.Entries, e)
	}
	sa.i++
	if sa.i%windowSampleEvery == 0 {
		gStreamWindow.Set(int64(sa.ext.Live()))
	}
	return nil
}

// Finish validates trace-level invariants, builds both causality
// models concurrently over the scanned frontier, and runs the
// detector over the streamed extraction. The Result is identical to
// batch Analyze on the materialized trace.
func (sa *StreamAnalyzer) Finish() (*Result, error) {
	sp := obs.Start("pipeline.analyze.stream")
	defer sp.End()
	return sa.FinishSpanned(sp)
}

// FinishSpanned is Finish under a caller-owned span (nil is fine);
// the caller Ends sp.
func (sa *StreamAnalyzer) FinishSpanned(sp *obs.Span) (*Result, error) {
	gStreamWindow.Set(int64(sa.ext.Live()))
	if err := sa.val.Finish(); err != nil {
		cTraceErrors.Inc()
		return nil, err
	}
	if sa.hdr.StreamLen != 0 && sa.i != sa.hdr.StreamLen {
		cTraceErrors.Inc()
		return nil, fmt.Errorf("analysis: stream ended after %d of %d declared entries", sa.i, sa.hdr.StreamLen)
	}
	spScan := sp.Child("hb.prescan")
	ps := sa.scanner.Finish()
	spScan.End()

	var (
		wg            sync.WaitGroup
		g, conv       *hb.Graph
		gErr, convErr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		spG := sp.Fork("hb.graph")
		defer spG.End()
		g, gErr = hb.BuildFromScan(ps, hb.Options{})
	}()
	go func() {
		defer wg.Done()
		spC := sp.Fork("hb.conventional")
		defer spC.End()
		conv, convErr = hb.BuildFromScan(ps, hb.Options{Conventional: true})
	}()
	wg.Wait()
	if gErr != nil {
		cTraceErrors.Inc()
		return nil, gErr
	}
	if convErr != nil {
		cTraceErrors.Inc()
		return nil, convErr
	}
	ls := sa.locks.Sets()
	in := detect.Input{
		Trace:        sa.hdr,
		Graph:        g,
		Conventional: conv,
		Locks:        ls,
		DerefSources: sa.p.opts.DerefSources,
	}
	if sa.st != nil {
		if sa.p.opts.Interproc {
			in.DerefSources = sa.st.Derefs
		}
		if sa.p.opts.StaticGuardPrune {
			in.StaticGuards = sa.st.Guards
		}
		if sa.p.opts.StaticOrderPrune {
			in.StaticOrders = sa.st.Orders.PruneMap()
		}
	}
	var col *provenance.Collector
	if sa.p.opts.Evidence {
		col = provenance.NewCollector(sa.hdr, g, conv, ls, sa.p.opts.EvidenceOptions)
		in.Collector = col
	}
	spDet := sp.Child("detect")
	res, err := detect.DetectExtracted(in, sa.ext, sa.p.opts.Detect)
	spDet.End()
	if err != nil {
		cTraceErrors.Inc()
		return nil, err
	}
	out := &Result{
		Trace:        sa.hdr,
		Races:        res.Races,
		Stats:        res.Stats,
		GraphStats:   g.Stats(),
		ConvStats:    conv.Stats(),
		Graph:        g,
		Conventional: conv,
		Locks:        ls,
		Static:       sa.st,
		Evidence:     col,
		Stacks:       sa.ext.Stacks(),
	}
	if sa.p.opts.Naive {
		spN := sp.Child("detect.naive")
		out.Naive = detect.Naive(g)
		spN.End()
	}
	cStreamTraces.Inc()
	cStreamEntries.Add(int64(sa.i))
	cTracesAnalyzed.Inc()
	sp.SetAttr(obs.Int("races", len(out.Races)))
	return out, nil
}

// AnalyzeStream decodes rd with trace.NewStreamDecoder and runs the
// streaming pipeline over it: decode, validate, and analyze advance
// together per entry, so a long trace is analyzed in O(window) memory
// (unless Options force retention). The result is identical to
// decoding fully and calling Analyze.
func (p *Pipeline) AnalyzeStream(rd io.Reader) (*Result, error) {
	sp := obs.Start("pipeline.analyze.stream")
	defer sp.End()
	return p.AnalyzeStreamSpanned(rd, sp)
}

// AnalyzeStreamSpanned is AnalyzeStream under a caller-owned span;
// the caller Ends sp.
func (p *Pipeline) AnalyzeStreamSpanned(rd io.Reader, sp *obs.Span) (*Result, error) {
	dec, err := trace.NewStreamDecoder(rd)
	if err != nil {
		return nil, err
	}
	sa := p.NewStream(dec.Header())
	spIngest := sp.Child("stream.ingest")
	for {
		e, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			spIngest.End()
			cTraceErrors.Inc()
			return nil, err
		}
		if err := sa.Consume(e); err != nil {
			spIngest.End()
			cTraceErrors.Inc()
			return nil, err
		}
	}
	spIngest.End()
	return sa.FinishSpanned(sp)
}

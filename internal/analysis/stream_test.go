package analysis

import (
	"bytes"
	"reflect"
	"testing"

	"cafa/internal/apps"
	"cafa/internal/detect"
	"cafa/internal/synth"
	"cafa/internal/trace"
)

// encodeBoth returns the binary and text encodings of tr.
func encodeBoth(t testing.TB, tr *trace.Trace) (bin, txt []byte) {
	t.Helper()
	var b, x bytes.Buffer
	if err := tr.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeText(&x); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), x.Bytes()
}

// assertStreamMatchesBatch runs the streaming pipeline over both
// encodings of tr and requires bit-identical results versus batch
// Analyze, including the captured call stacks versus the batch-mode
// reconstruction.
func assertStreamMatchesBatch(t *testing.T, tr *trace.Trace, opts Options) {
	t.Helper()
	want, err := Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	bin, txt := encodeBoth(t, tr)
	for name, enc := range map[string][]byte{"binary": bin, "text": txt} {
		p := New(opts)
		got, err := p.AnalyzeStream(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Races, want.Races) {
			t.Errorf("%s: races differ:\n  stream: %+v\n  batch:  %+v", name, got.Races, want.Races)
		}
		if got.Stats != want.Stats {
			t.Errorf("%s: detect stats differ: stream %+v, batch %+v", name, got.Stats, want.Stats)
		}
		if got.GraphStats != want.GraphStats {
			t.Errorf("%s: graph stats differ: stream %+v, batch %+v", name, got.GraphStats, want.GraphStats)
		}
		if got.ConvStats != want.ConvStats {
			t.Errorf("%s: conventional stats differ: stream %+v, batch %+v", name, got.ConvStats, want.ConvStats)
		}
		if !reflect.DeepEqual(got.Naive, want.Naive) {
			t.Errorf("%s: naive baseline differs", name)
		}
		if got.Trace.Len() != tr.Len() {
			t.Errorf("%s: Len() = %d, want %d", name, got.Trace.Len(), tr.Len())
		}
		// Captured stacks must match what batch rendering would
		// reconstruct at every index report rendering queries.
		for _, r := range want.Races {
			for _, idx := range []int{r.Use.DerefIdx, r.Free.Idx} {
				ws := detect.CallStack(tr, idx)
				gs, ok := got.Stacks[idx]
				if !ok {
					t.Errorf("%s: no captured stack for idx %d", name, idx)
					continue
				}
				if !reflect.DeepEqual(gs, ws) && !(len(gs) == 0 && len(ws) == 0) {
					t.Errorf("%s: stack at %d: stream %v, batch %v", name, idx, gs, ws)
				}
			}
		}
	}
}

// TestStreamMatchesBatchOnApps: streaming analysis over both codecs
// is bit-identical to batch analysis on every app scenario.
func TestStreamMatchesBatchOnApps(t *testing.T) {
	for _, spec := range apps.Registry {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			assertStreamMatchesBatch(t, appTrace(t, spec), Options{})
		})
	}
}

// TestStreamMatchesBatchOnSynth covers the synthetic shapes the app
// models keep small: chained fixpoints, wide bursts, lock traffic.
func TestStreamMatchesBatchOnSynth(t *testing.T) {
	for _, cfg := range []synth.Config{
		{Chain: 1, EventsPer: 1},
		{Chain: 4, EventsPer: 8, FreeThreads: 4},
		{Chain: 3, EventsPer: 6, FreeThreads: 3, Burst: 4, BurstEvents: 24},
	} {
		assertStreamMatchesBatch(t, synth.Trace(cfg), Options{})
	}
}

// TestStreamRetainsForEvidenceAndNaive: Evidence/Naive force entry
// retention, and the retained trace supports provenance identically.
func TestStreamRetainsForEvidenceAndNaive(t *testing.T) {
	tr := synth.Trace(synth.Config{Chain: 3, EventsPer: 4, FreeThreads: 3})
	for _, opts := range []Options{{Naive: true}, {Evidence: true}} {
		p := New(opts)
		sa := p.NewStream(headerOf(tr))
		if !sa.Retaining() {
			t.Fatalf("opts %+v: expected retention", opts)
		}
		for _, e := range tr.Entries {
			if err := sa.Consume(e); err != nil {
				t.Fatal(err)
			}
		}
		got, err := sa.Finish()
		if err != nil {
			t.Fatal(err)
		}
		want, err := Analyze(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Races, want.Races) {
			t.Errorf("opts %+v: races differ", opts)
		}
		if !reflect.DeepEqual(got.Naive, want.Naive) {
			t.Errorf("opts %+v: naive differs", opts)
		}
		if opts.Evidence {
			if got.Evidence == nil {
				t.Fatal("no evidence collector")
			}
			a := got.Evidence.Evidence()
			b := want.Evidence.Evidence()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("evidence records differ:\n  stream: %+v\n  batch:  %+v", a, b)
			}
		}
		if len(got.Trace.Entries) != len(tr.Entries) {
			t.Errorf("opts %+v: retained %d entries, want %d", opts, len(got.Trace.Entries), len(tr.Entries))
		}
	}
	// Without those options the entry stream is discarded.
	sa := New(Options{}).NewStream(headerOf(tr))
	if sa.Retaining() {
		t.Fatal("plain options should not retain")
	}
	for _, e := range tr.Entries {
		if err := sa.Consume(e); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sa.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Entries) != 0 {
		t.Errorf("plain streaming retained %d entries", len(res.Trace.Entries))
	}
	if res.Trace.Len() != len(tr.Entries) {
		t.Errorf("Len() = %d, want %d", res.Trace.Len(), len(tr.Entries))
	}
}

// headerOf clones tr's tables without entries, as a stream decoder
// would produce, with the declared entry count set.
func headerOf(tr *trace.Trace) *trace.Trace {
	hdr := trace.New()
	for id, info := range tr.Tasks {
		hdr.Tasks[id] = info
	}
	for id, n := range tr.Fields {
		hdr.Fields[id] = n
	}
	for id, n := range tr.Methods {
		hdr.Methods[id] = n
	}
	for id, n := range tr.Queues {
		hdr.Queues[id] = n
	}
	hdr.StreamLen = len(tr.Entries)
	return hdr
}

// TestStreamTruncationDetected: a stream that ends before the declared
// entry count is an error, not a silent partial result.
func TestStreamTruncationDetected(t *testing.T) {
	tr := synth.Trace(synth.Config{Chain: 2, EventsPer: 3, FreeThreads: 2})
	sa := New(Options{}).NewStream(headerOf(tr))
	for _, e := range tr.Entries[:len(tr.Entries)-5] {
		if err := sa.Consume(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sa.Finish(); err == nil {
		t.Fatal("want error for truncated stream")
	}
}

// TestAnalyzeSourcesMixed: batch and streamed inputs mix in one call
// and come back in input order with identical results.
func TestAnalyzeSourcesMixed(t *testing.T) {
	var traces []*trace.Trace
	for _, spec := range apps.Registry[:3] {
		traces = append(traces, appTrace(t, spec))
	}
	bin0, _ := encodeBoth(t, traces[0])
	_, txt2 := encodeBoth(t, traces[2])
	srcs := []Source{
		{Reader: bytes.NewReader(bin0)},
		{Trace: traces[1]},
		{Reader: bytes.NewReader(txt2)},
	}
	p := New(Options{Workers: 2})
	results, err := p.AnalyzeSources(srcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		want, err := Analyze(traces[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Races, want.Races) || res.Stats != want.Stats {
			t.Errorf("source %d diverges from batch", i)
		}
	}

	// A malformed streamed input (duplicate begin) fails its slot but
	// not the others.
	bad := trace.New()
	bad.Tasks[1] = trace.TaskInfo{ID: 1, Kind: trace.KindThread, Name: "T"}
	bad.Append(trace.Entry{Task: 1, Op: trace.OpBegin})
	bad.Append(trace.Entry{Task: 1, Op: trace.OpBegin, Time: 1})
	var bb bytes.Buffer
	if err := bad.Encode(&bb); err != nil {
		t.Fatal(err)
	}
	results, err = p.AnalyzeSources([]Source{
		{Trace: traces[0]},
		{Reader: bytes.NewReader(bb.Bytes())},
	})
	if err == nil {
		t.Fatal("want error for malformed streamed trace")
	}
	if results[0] == nil {
		t.Error("good trace should still have a result")
	}
	if results[1] != nil {
		t.Error("malformed trace should have a nil result")
	}
}

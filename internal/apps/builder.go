package apps

import "cafa/internal/sim"

// ReplayBuilder adapts an application model to the builder shape
// internal/replay searches over: the returned function rebuilds the
// whole app under the adversarial sim.Config replay chooses (biased
// event delays, varied scheduler seeds). The signature matches
// replay.Builder structurally, so this package does not import
// replay. scale divides the benign filler volume exactly as Build
// does; confirmation only needs the planted scenarios, so callers use
// a large scale to keep re-executions fast.
func ReplayBuilder(spec Spec, scale int) func(cfg sim.Config) (*sim.System, error) {
	return func(cfg sim.Config) (*sim.System, error) {
		out, err := Build(spec, cfg, scale)
		if err != nil {
			return nil, err
		}
		return out.Sys, nil
	}
}

package apps

import (
	"fmt"
	"strings"

	"cafa/internal/asm"
	"cafa/internal/dvm"
	"cafa/internal/sim"
)

// PaperRow is one row of Table 1.
type PaperRow struct {
	Events        int
	Reported      int
	A, B, C       int // true races by class
	FP1, FP2, FP3 int
}

// Total returns A+B+C+FP1+FP2+FP3 (must equal Reported).
func (r PaperRow) Total() int { return r.A + r.B + r.C + r.FP1 + r.FP2 + r.FP3 }

// Harmful returns the true-race count.
func (r PaperRow) Harmful() int { return r.A + r.B + r.C }

// Spec describes one application model.
type Spec struct {
	Name  string
	Paper PaperRow
	// NaiveTarget, when nonzero, is the paper-reported count of
	// low-level conflicting-access races for this app (only ConnectBot
	// has one: 1,664 in §4.1). Build adds thread-only conflict pairs
	// to approach it.
	NaiveTarget int
	// TryCatchUses wraps class-(a) uses in catch-all handlers — the
	// ToDoList data-loss pattern of §6.2.
	TryCatchUses bool
	// FieldWork and ArithWork set each filler event's body: traced
	// field-update iterations vs. untraced arithmetic iterations. The
	// mix determines the app's Fig. 8 tracing slowdown.
	FieldWork, ArithWork int
	// Workload is a short description of the §6.1 interaction session
	// the model stands in for.
	Workload string
}

// Registry lists the ten evaluated applications with their Table 1
// rows.
var Registry = []Spec{
	{
		Name:        "ConnectBot",
		FieldWork:   12,
		ArithWork:   30,
		Paper:       PaperRow{Events: 3058, Reported: 3, B: 2, FP1: 1},
		NaiveTarget: 1664,
		Workload:    "connect to a host, type a password, log in",
	},
	{
		Name:      "MyTracks",
		FieldWork: 16,
		ArithWork: 16,
		Paper:     PaperRow{Events: 6628, Reported: 8, A: 1, B: 3, FP2: 4},
		Workload:  "record a GPS track, pause by switching away, switch back",
	},
	{
		Name:      "ZXing",
		FieldWork: 8,
		ArithWork: 60,
		Paper:     PaperRow{Events: 4554, Reported: 5, B: 2, FP1: 1, FP2: 1, FP3: 1},
		Workload:  "scan a barcode, pause to home screen, scan again",
	},
	{
		Name:         "ToDoList",
		FieldWork:    24,
		ArithWork:    6,
		Paper:        PaperRow{Events: 7122, Reported: 9, A: 8, FP2: 1},
		TryCatchUses: true,
		Workload:     "add two notes to the widget, delete them",
	},
	{
		Name:      "Browser",
		FieldWork: 10,
		ArithWork: 40,
		Paper:     PaperRow{Events: 3965, Reported: 35, B: 8, C: 19, FP1: 1, FP2: 7},
		Workload:  "load the Google homepage, search, follow a link, go back",
	},
	{
		Name:      "Firefox",
		FieldWork: 10,
		ArithWork: 50,
		Paper:     PaperRow{Events: 5467, Reported: 25, B: 6, C: 10, FP1: 4, FP2: 5},
		Workload:  "same browsing session as Browser",
	},
	{
		Name:      "VLC",
		FieldWork: 6,
		ArithWork: 70,
		Paper:     PaperRow{Events: 2805, Reported: 7, C: 1, FP2: 5, FP3: 1},
		Workload:  "play a clip, pause to home screen, resume playing",
	},
	{
		Name:      "FBReader",
		FieldWork: 14,
		ArithWork: 20,
		Paper:     PaperRow{Events: 3528, Reported: 9, A: 1, B: 3, C: 1, FP1: 2, FP2: 2},
		Workload:  "read the tutorial, rotate the phone, page back",
	},
	{
		Name:      "Camera",
		FieldWork: 16,
		ArithWork: 20,
		Paper:     PaperRow{Events: 7287, Reported: 9, A: 1, B: 1, FP2: 5, FP3: 2},
		Workload:  "take a picture, switch away and back, take another",
	},
	{
		Name:      "Music",
		FieldWork: 20,
		ArithWork: 8,
		Paper:     PaperRow{Events: 6684, Reported: 5, A: 2, FP2: 2, FP3: 1},
		Workload:  "play an MP3, pause to home screen, resume",
	},
}

// Names returns the registry's app names in order.
func Names() []string {
	out := make([]string, len(Registry))
	for i, s := range Registry {
		out[i] = s.Name
	}
	return out
}

// ByName looks an app up case-insensitively.
func ByName(name string) (Spec, bool) {
	for _, s := range Registry {
		if strings.EqualFold(s.Name, name) {
			return s, true
		}
	}
	return Spec{}, false
}

// BuildOut is a fully wired application, ready to Run.
type BuildOut struct {
	Sys   *sim.System
	Prog  *dvm.Program
	Spec  Spec
	Truth []Planted
	// FillerPairs and NaivePairs record the generated volumes.
	FillerPairs int
	NaivePairs  int
}

// TruthByField indexes ground truth by racy field name.
func (b *BuildOut) TruthByField() map[string]Planted {
	out := make(map[string]Planted, len(b.Truth))
	for _, pl := range b.Truth {
		out[pl.Field] = pl
	}
	return out
}

// Build constructs an application model. scale divides the filler
// volume (scale 1 reproduces the paper's event counts; tests use a
// larger scale for speed). The cfg's Tracer/Seed/DelayEvent are
// honored, so the same builder serves tracing, Fig. 8 timing, and
// replay validation.
func Build(spec Spec, cfg sim.Config, scale int) (*BuildOut, error) {
	if scale < 1 {
		scale = 1
	}
	scens, err := makeScenarios(spec)
	if err != nil {
		return nil, err
	}
	var src strings.Builder
	src.WriteString(prelude(spec.FieldWork, spec.ArithWork))
	scenEvents := 0
	for _, sc := range scens {
		src.WriteString(sc.src)
		src.WriteString("\n")
		scenEvents += sc.planted.Events
	}
	prog, err := asm.Assemble(src.String())
	if err != nil {
		return nil, fmt.Errorf("apps: %s: %w", spec.Name, err)
	}
	sys := sim.NewSystem(prog, cfg)
	main := sys.AddLooper("main", 0)
	sys.Heap().SetStatic(prog.FieldID("mainQ"), dvm.Int64(main.Handle()))
	needsSvc := false
	for _, sc := range scens {
		if strings.Contains(sc.src, "svcH") {
			needsSvc = true
			break
		}
	}
	if needsSvc {
		svc := sys.AddService(spec.Name+"Service", 1)
		sys.Heap().SetStatic(prog.FieldID("svcH"), dvm.Int64(svc))
	}

	out := &BuildOut{Sys: sys, Prog: prog, Spec: spec}
	for _, sc := range scens {
		if err := sc.wire(sys, prog); err != nil {
			return nil, fmt.Errorf("apps: %s: wiring %s: %w", spec.Name, sc.planted.Field, err)
		}
		out.Truth = append(out.Truth, sc.planted)
	}

	// Benign commutative filler to reach the Table 1 event volume.
	fillerEvents := spec.Paper.Events - scenEvents
	if fillerEvents < 0 {
		fillerEvents = 0
	}
	fillerEvents /= scale
	pairs := fillerEvents / 2
	odd := fillerEvents%2 == 1
	fflag := prog.FieldID("fflag")
	fq := prog.FieldID("fq")
	// Larger apps also run a background HandlerThread-style looper; a
	// quarter of their event traffic lands on it.
	var worker *sim.Looper
	if spec.Paper.Events >= 4000 {
		worker = sys.AddLooper("worker", 0)
	}
	for i := 0; i < pairs; i++ {
		h := sys.Heap().New("FillHolder")
		h.Set(fflag, dvm.Int64(1))
		q := main
		if worker != nil && i%4 == 3 {
			q = worker
		}
		h.Set(fq, dvm.Int64(q.Handle()))
		if err := startThread(sys, fmt.Sprintf("fw%d", i), "fillSendW", dvm.Obj(h.ID)); err != nil {
			return nil, err
		}
		if err := startThread(sys, fmt.Sprintf("fr%d", i), "fillSendR", dvm.Obj(h.ID)); err != nil {
			return nil, err
		}
	}
	if odd {
		if err := sys.Inject(1, main, "fillOne", dvm.Null(), 0); err != nil {
			return nil, err
		}
	}
	out.FillerPairs = pairs

	// Thread-only conflict pairs to approach the paper's low-level
	// race count (ConnectBot's 1,664): each filler pair already
	// contributes one low-level race, so only the gap is topped up.
	if spec.NaiveTarget > 0 {
		extra := spec.NaiveTarget/scale - pairs
		if extra < 0 {
			extra = 0
		}
		nflag := prog.FieldID("nflag")
		for i := 0; i < extra; i++ {
			h := sys.Heap().New("NFHolder")
			h.Set(nflag, dvm.Int64(1))
			if err := startThread(sys, fmt.Sprintf("nw%d", i), "nfW", dvm.Obj(h.ID)); err != nil {
				return nil, err
			}
			if err := startThread(sys, fmt.Sprintf("nr%d", i), "nfR", dvm.Obj(h.ID)); err != nil {
				return nil, err
			}
		}
		out.NaivePairs = extra
	}
	return out, nil
}

// makeScenarios expands a spec's Table 1 row into concrete scenario
// instances with unique ids.
func makeScenarios(spec Spec) ([]scenario, error) {
	if spec.Paper.Total() != spec.Paper.Reported {
		return nil, fmt.Errorf("apps: %s: row columns sum to %d, reported is %d",
			spec.Name, spec.Paper.Total(), spec.Paper.Reported)
	}
	var out []scenario
	for i := 0; i < spec.Paper.A; i++ {
		id := fmt.Sprintf("a%d", i)
		if i == 0 && !spec.TryCatchUses {
			// The first intra-thread race of each app takes the
			// Figure 1 RPC shape.
			out = append(out, trueRPC(id))
		} else {
			out = append(out, truePlain(id, spec.TryCatchUses))
		}
	}
	for i := 0; i < spec.Paper.B; i++ {
		out = append(out, trueFork(fmt.Sprintf("b%d", i)))
	}
	for i := 0; i < spec.Paper.C; i++ {
		out = append(out, trueThreads(fmt.Sprintf("c%d", i)))
	}
	for i := 0; i < spec.Paper.FP1; i++ {
		out = append(out, fpListener(fmt.Sprintf("f1x%d", i), sim.UninstrumentedListenerBase+int64(i)))
	}
	for i := 0; i < spec.Paper.FP2; i++ {
		out = append(out, fpFlag(fmt.Sprintf("f2x%d", i)))
	}
	for i := 0; i < spec.Paper.FP3; i++ {
		out = append(out, fpAlias(fmt.Sprintf("f3x%d", i)))
	}
	// Every app also carries guarded-benign traffic (the Figure 5
	// pattern) that the heuristics must prune; Table 1's counts are
	// post-filter.
	for i := 0; i < guardedPerApp; i++ {
		out = append(out, guardedBenign(fmt.Sprintf("g%d", i)))
	}
	for i := 0; i < lockedPerApp; i++ {
		out = append(out, lockedBenign(fmt.Sprintf("lk%d", i)))
	}
	for i := 0; i < orderedPerApp; i++ {
		out = append(out, orderedBenign(fmt.Sprintf("ord%d", i)))
	}
	return out, nil
}

// guardedPerApp, lockedPerApp, and orderedPerApp are the
// benign-but-racy-looking scenarios planted per application; the
// heuristics, the lockset check, and the causality model itself must
// prune all of them.
const (
	guardedPerApp = 3
	lockedPerApp  = 2
	orderedPerApp = 1
)

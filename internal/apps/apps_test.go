package apps

import (
	"strings"
	"testing"

	"cafa/internal/sim"
	"cafa/internal/trace"
)

func TestRegistryRowsSumToReported(t *testing.T) {
	if len(Registry) != 10 {
		t.Fatalf("registry has %d apps, want 10", len(Registry))
	}
	var reported, harmful int
	for _, s := range Registry {
		if s.Paper.Total() != s.Paper.Reported {
			t.Errorf("%s: columns sum to %d, reported %d", s.Name, s.Paper.Total(), s.Paper.Reported)
		}
		reported += s.Paper.Reported
		harmful += s.Paper.Harmful()
	}
	if reported != 115 {
		t.Errorf("total reported = %d, want 115", reported)
	}
	if harmful != 69 {
		t.Errorf("total harmful = %d, want 69", harmful)
	}
}

func TestNamesAndByName(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Fatal("Names length mismatch")
	}
	if _, ok := ByName("mytracks"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := ByName("NotAnApp"); ok {
		t.Error("unknown app found")
	}
}

func TestLabelStringsAndHarmful(t *testing.T) {
	for l := LabelTrueA; l <= LabelFP3; l++ {
		if s := l.String(); s == "" || strings.HasPrefix(s, "Label(") {
			t.Errorf("label %d unnamed", l)
		}
	}
	if !LabelTrueA.Harmful() || !LabelTrueC.Harmful() || LabelFP1.Harmful() || LabelFP3.Harmful() {
		t.Error("Harmful misclassifies")
	}
}

func TestBuildAndRunEveryApp(t *testing.T) {
	for _, spec := range Registry {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			col := trace.NewCollector()
			b, err := Build(spec, sim.Config{Tracer: col, Seed: 1}, 60)
			if err != nil {
				t.Fatal(err)
			}
			wantScenarios := spec.Paper.Reported + guardedPerApp + lockedPerApp + orderedPerApp
			if len(b.Truth) != wantScenarios {
				t.Errorf("planted %d scenarios, want %d", len(b.Truth), wantScenarios)
			}
			var filtered int
			for _, pl := range b.Truth {
				if pl.Label == LabelFiltered {
					filtered++
				}
			}
			if filtered != guardedPerApp+lockedPerApp+orderedPerApp {
				t.Errorf("benign scenarios = %d, want %d", filtered, guardedPerApp+lockedPerApp+orderedPerApp)
			}
			if err := b.Sys.Run(); err != nil {
				t.Fatal(err)
			}
			if err := col.T.Validate(); err != nil {
				t.Fatalf("trace invalid: %v", err)
			}
			if b.Sys.Deadlocked() {
				t.Fatalf("deadlocked: %v", b.Sys.BlockedTasks())
			}
			// No scenario may crash during the benign recorded run: the
			// free sides are all delayed past the uses.
			if n := len(b.Sys.Crashes()); n != 0 {
				t.Errorf("crashes during recording: %v", b.Sys.Crashes())
			}
			// Ground-truth fields must be unique.
			seen := map[string]bool{}
			for _, pl := range b.Truth {
				if seen[pl.Field] {
					t.Errorf("duplicate truth field %s", pl.Field)
				}
				seen[pl.Field] = true
				if pl.UseMethod == "" {
					t.Errorf("%s: missing use method", pl.Field)
				}
			}
		})
	}
}

func TestEventVolumeAtScaleOne(t *testing.T) {
	spec, _ := ByName("ConnectBot")
	col := trace.NewCollector()
	b, err := Build(spec, sim.Config{Tracer: col, Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := col.T.EventCount(); got != spec.Paper.Events {
		t.Errorf("events = %d, want exactly %d", got, spec.Paper.Events)
	}
}

func TestScaleReducesVolume(t *testing.T) {
	spec, _ := ByName("VLC")
	small, err := Build(spec, sim.Config{Tracer: trace.Discard{}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(spec, sim.Config{Tracer: trace.Discard{}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if small.FillerPairs >= big.FillerPairs {
		t.Errorf("scale 100 pairs (%d) not smaller than scale 10 (%d)", small.FillerPairs, big.FillerPairs)
	}
}

func TestDeterministicTraces(t *testing.T) {
	spec, _ := ByName("Music")
	gen := func() *trace.Trace {
		col := trace.NewCollector()
		b, err := Build(spec, sim.Config{Tracer: col, Seed: 5}, 80)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Sys.Run(); err != nil {
			t.Fatal(err)
		}
		return col.T
	}
	a, b := gen(), gen()
	if a.Len() != b.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d differs: %s vs %s", i, a.Entries[i].String(), b.Entries[i].String())
		}
	}
}

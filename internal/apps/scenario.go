// Package apps models the ten open-source Android applications of the
// paper's evaluation (§6.1). The original APKs and the hand-driven
// 10–30-second interaction sessions cannot be re-run offline, so each
// app is a scripted workload over the simulated runtime that plants
// the same per-category race population Table 1 reports for it — with
// machine-checkable ground truth — plus enough benign commutative
// event traffic (the Figure 2 pattern) to reach the paper's event
// volumes and low-level-race counts.
//
// Six scenario generators cover the taxonomy:
//
//	TrueA  — use-after-free between two events of one looper (col. a);
//	         the first instance per app uses the Figure 1 RPC shape.
//	TrueB  — use in an event vs. free in a thread forked by a later
//	         event; a conventional detector orders them (col. b).
//	TrueC  — plain cross-thread use/free both models catch (col. c).
//	FP1    — real ordering through an uninstrumented listener the
//	         tracer cannot see (Type I false positive).
//	FP2    — commutative events guarded by a boolean flag the
//	         if-guard heuristic cannot recognize (Type II).
//	FP3    — aliased pointer reads that make the deref-matching
//	         heuristic blame the wrong location (Type III).
package apps

import (
	"fmt"

	"cafa/internal/dvm"
	"cafa/internal/sim"
)

// Label is the ground-truth category of a planted scenario, matching
// Table 1's columns.
type Label uint8

// Ground-truth labels.
const (
	LabelTrueA    Label = iota // harmful, intra-thread (a)
	LabelTrueB                 // harmful, inter-thread, conventional misses (b)
	LabelTrueC                 // harmful, conventional also finds (c)
	LabelFP1                   // false race: missing listener instrumentation
	LabelFP2                   // benign race: commutativity heuristics too weak
	LabelFP3                   // false race: deref matched to wrong pointer read
	LabelFiltered              // benign and correctly pruned by the heuristics: must NOT be reported
)

func (l Label) String() string {
	switch l {
	case LabelTrueA:
		return "true(a)"
	case LabelTrueB:
		return "true(b)"
	case LabelTrueC:
		return "true(c)"
	case LabelFP1:
		return "fp(I)"
	case LabelFP2:
		return "fp(II)"
	case LabelFP3:
		return "fp(III)"
	case LabelFiltered:
		return "benign(filtered)"
	default:
		return fmt.Sprintf("Label(%d)", uint8(l))
	}
}

// Harmful reports whether the label is a true race.
func (l Label) Harmful() bool { return l <= LabelTrueC }

// Planted is one ground-truth entry: the racy field the detector
// should (or should not) blame, and the handler containing the use
// (for replay validation).
type Planted struct {
	Field     string
	Label     Label
	UseMethod string
	// Events is how many looper events the scenario contributes.
	Events int
}

// scenario couples generated assembly with its runtime wiring.
type scenario struct {
	src     string
	planted Planted
	wire    func(s *sim.System, p *dvm.Program) error
}

// startThread is a small helper that propagates wiring errors.
func startThread(s *sim.System, name, method string, arg dvm.Value) error {
	_, err := s.StartThread(name, method, arg)
	return err
}

// newHolder allocates a holder object with field set to a fresh
// payload.
func newHolder(s *sim.System, p *dvm.Program, class, field string) *dvm.Object {
	h := s.Heap().New(class)
	pay := s.Heap().New("Payload")
	h.Set(p.FieldID(field), dvm.Obj(pay.ID))
	return h
}

// truePlain is the generic class-(a) scenario: two concurrent events
// of the main looper, use vs. free, no guard and no allocation. With
// tryCatch the use is wrapped in a catch-all handler — the ToDoList
// pattern of §6.2 where the crash is masked but the data is lost.
func truePlain(id string, tryCatch bool) scenario {
	ptr := "ptr_" + id
	use := "use_" + id
	var useBody string
	if tryCatch {
		useBody = fmt.Sprintf(`
.method %s(h) regs=3
    try swallow
    iget v1, h, %s
    invoke-virtual run, v1
    end-try
swallow:
    return-void
.end`, use, ptr)
	} else {
		useBody = fmt.Sprintf(`
.method %s(h) regs=3
    iget v1, h, %s
    invoke-virtual run, v1
    return-void
.end`, use, ptr)
	}
	src := useBody + fmt.Sprintf(`
.method free_%[1]s(h) regs=2
    const-null v1
    iput v1, h, ptr_%[1]s
    return-void
.end

.method sendUse_%[1]s(h) regs=5
    sget-int v1, mainQ
    const-method v2, use_%[1]s
    const-int v3, #0
    send v1, v2, v3, h
    send v1, v2, v3, h
    return-void
.end

.method sendFree_%[1]s(h) regs=5
    const-int v3, #20
    sleep v3
    sget-int v1, mainQ
    const-method v2, free_%[1]s
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end

.method boot_%[1]s(h) regs=5
    const-method v1, sendUse_%[1]s
    fork v1, h -> v2
    const-method v3, sendFree_%[1]s
    fork v3, h -> v4
    return-void
.end`, id)
	// The use event is posted twice: a real interaction session
	// re-triggers the same handler, so each racy code site shows up as
	// several dynamic instances. Both instances precede the (delayed)
	// free in queue order, so recording stays crash-free; the detector
	// reports the site once and counts the second pair as a duplicate.
	//
	// One bootstrap thread forks both senders (the lifecycle component
	// that installs its workers), so use and free share a nearest
	// common causal ancestor — the first fork — while the senders stay
	// mutually concurrent.
	return scenario{
		src:     src,
		planted: Planted{Field: ptr, Label: LabelTrueA, UseMethod: use, Events: 3},
		wire: func(s *sim.System, p *dvm.Program) error {
			h := newHolder(s, p, "Activity", ptr)
			return startThread(s, "boot_"+id, "boot_"+id, dvm.Obj(h.ID))
		},
	}
}

// trueRPC is the Figure 1 MyTracks shape: an external onResume event
// binds to a remote service over Binder RPC; the service posts
// onServiceConnected back to the main looper, whose use of
// providerUtils races with the external onDestroy's free.
func trueRPC(id string) scenario {
	ptr := "ptr_" + id
	use := "onConn_" + id
	src := fmt.Sprintf(`
.method onConn_%[1]s(h) regs=3
    iget v1, h, ptr_%[1]s
    invoke-virtual run, v1
    return-void
.end

.method onBind_%[1]s(h) regs=5
    sget-int v1, mainQ
    const-method v2, onConn_%[1]s
    const-int v3, #0
    send v1, v2, v3, h
    const-int v4, #0
    return v4
.end

.method onResume_%[1]s(h) regs=5
    new v1, ProviderUtils
    iput v1, h, ptr_%[1]s
    sget-int v2, svcH
    const-method v3, onBind_%[1]s
    rpc v2, v3, h -> v4
    return-void
.end

.method onDestroy_%[1]s(h) regs=2
    const-null v1
    iput v1, h, ptr_%[1]s
    return-void
.end`, id)
	return scenario{
		src:     src,
		planted: Planted{Field: ptr, Label: LabelTrueA, UseMethod: use, Events: 3},
		wire: func(s *sim.System, p *dvm.Program) error {
			h := s.Heap().New("Activity")
			if err := s.Inject(0, mainLooper(s), "onResume_"+id, dvm.Obj(h.ID), 0); err != nil {
				return err
			}
			return s.Inject(100, mainLooper(s), "onDestroy_"+id, dvm.Obj(h.ID), 0)
		},
	}
}

// trueFork is the class-(b) scenario: the free runs on a thread forked
// (and joined) by an event that executes after the using event, so
// the conventional total event order hides the race.
func trueFork(id string) scenario {
	ptr := "ptr_" + id
	use := "use_" + id
	src := fmt.Sprintf(`
.method use_%[1]s(h) regs=3
    iget v1, h, ptr_%[1]s
    invoke-virtual run, v1
    return-void
.end

.method freeBody_%[1]s(h) regs=2
    const-null v1
    iput v1, h, ptr_%[1]s
    return-void
.end

.method spawn_%[1]s(h) regs=4
    const-method v1, freeBody_%[1]s
    fork v1, h -> v2
    join v2
    return-void
.end

.method sendUse_%[1]s(h) regs=5
    sget-int v1, mainQ
    const-method v2, use_%[1]s
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end

.method sendSpawn_%[1]s(h) regs=5
    const-int v3, #20
    sleep v3
    sget-int v1, mainQ
    const-method v2, spawn_%[1]s
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end

.method boot_%[1]s(h) regs=5
    const-method v1, sendUse_%[1]s
    fork v1, h -> v2
    const-method v3, sendSpawn_%[1]s
    fork v3, h -> v4
    return-void
.end`, id)
	// As in truePlain, one bootstrap thread forks both senders so the
	// racy pair hangs from a nearest common causal ancestor (the first
	// fork) instead of two disconnected harness roots.
	return scenario{
		src:     src,
		planted: Planted{Field: ptr, Label: LabelTrueB, UseMethod: use, Events: 2},
		wire: func(s *sim.System, p *dvm.Program) error {
			h := newHolder(s, p, "Activity", ptr)
			return startThread(s, "boot_"+id, "boot_"+id, dvm.Obj(h.ID))
		},
	}
}

// trueThreads is the class-(c) scenario: two unsynchronized regular
// threads; any happens-before detector finds it.
func trueThreads(id string) scenario {
	ptr := "ptr_" + id
	use := "user_" + id
	src := fmt.Sprintf(`
.method user_%[1]s(h) regs=3
    iget v1, h, ptr_%[1]s
    invoke-virtual run, v1
    return-void
.end

.method freer_%[1]s(h) regs=3
    const-int v1, #20
    sleep v1
    const-null v2
    iput v2, h, ptr_%[1]s
    return-void
.end`, id)
	return scenario{
		src:     src,
		planted: Planted{Field: ptr, Label: LabelTrueC, UseMethod: use, Events: 0},
		wire: func(s *sim.System, p *dvm.Program) error {
			h := newHolder(s, p, "Worker", ptr)
			if err := startThread(s, "u_"+id, "user_"+id, dvm.Obj(h.ID)); err != nil {
				return err
			}
			return startThread(s, "f_"+id, "freer_"+id, dvm.Obj(h.ID))
		},
	}
}

// fpListener is the Type I scenario: the use event registers a
// callback with a listener living in an uninstrumented framework
// package; a later event fires it, running the free. Really ordered
// (register ≺ perform), but the tracer never sees the edge.
func fpListener(id string, lid int64) scenario {
	ptr := "ptr_" + id
	use := "useReg_" + id
	src := fmt.Sprintf(`
.method cb_%[1]s(h) regs=2
    const-null v1
    iput v1, h, ptr_%[1]s
    return-void
.end

.method useReg_%[1]s(h) regs=5
    iget v1, h, ptr_%[1]s
    invoke-virtual run, v1
    const-int v2, #%[2]d
    const-method v3, cb_%[1]s
    register v2, v3
    return-void
.end

.method fire_%[1]s(h) regs=4
    const-int v1, #%[2]d
    fire v1, h
    return-void
.end

.method sendUseReg_%[1]s(h) regs=5
    sget-int v1, mainQ
    const-method v2, useReg_%[1]s
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end

.method sendFire_%[1]s(h) regs=5
    const-int v3, #30
    sleep v3
    sget-int v1, mainQ
    const-method v2, fire_%[1]s
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end`, id, lid)
	return scenario{
		src:     src,
		planted: Planted{Field: ptr, Label: LabelFP1, UseMethod: use, Events: 2},
		wire: func(s *sim.System, p *dvm.Program) error {
			h := newHolder(s, p, "View", ptr)
			if err := startThread(s, "sr_"+id, "sendUseReg_"+id, dvm.Obj(h.ID)); err != nil {
				return err
			}
			return startThread(s, "sp_"+id, "sendFire_"+id, dvm.Obj(h.ID))
		},
	}
}

// fpFlag is the Type II scenario: the free event clears a boolean
// flag that guards the use, so the events are commutative — but the
// if-guard heuristic only understands pointer null tests (§6.3).
func fpFlag(id string) scenario {
	ptr := "ptr_" + id
	use := "use_" + id
	src := fmt.Sprintf(`
.method use_%[1]s(h) regs=5
    iget-int v1, h, flag_%[1]s
    const-int v2, #0
    if-int-eq v1, v2, skip
    iget v3, h, ptr_%[1]s
    invoke-virtual run, v3
skip:
    return-void
.end

.method free_%[1]s(h) regs=3
    const-int v1, #0
    iput-int v1, h, flag_%[1]s
    const-null v2
    iput v2, h, ptr_%[1]s
    return-void
.end

.method sendUse_%[1]s(h) regs=5
    sget-int v1, mainQ
    const-method v2, use_%[1]s
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end

.method sendFree_%[1]s(h) regs=5
    const-int v3, #20
    sleep v3
    sget-int v1, mainQ
    const-method v2, free_%[1]s
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end`, id)
	return scenario{
		src:     src,
		planted: Planted{Field: ptr, Label: LabelFP2, UseMethod: use, Events: 2},
		wire: func(s *sim.System, p *dvm.Program) error {
			h := newHolder(s, p, "Player", ptr)
			h.Set(p.FieldID("flag_"+id), dvm.Int64(1))
			if err := startThread(s, "su_"+id, "sendUse_"+id, dvm.Obj(h.ID)); err != nil {
				return err
			}
			return startThread(s, "sf_"+id, "sendFree_"+id, dvm.Obj(h.ID))
		},
	}
}

// fpAlias is the Type III scenario: two pointer fields alias one
// object; the dereference goes through the first but the matching
// heuristic blames the second (most recent) read, whose field is the
// one being freed.
func fpAlias(id string) scenario {
	ptrB := "ptrB_" + id
	use := "use_" + id
	src := fmt.Sprintf(`
.method use_%[1]s(h) regs=4
    iget v1, h, ptrA_%[1]s
    iget v2, h, ptrB_%[1]s
    invoke-virtual run, v1
    return-void
.end

.method free_%[1]s(h) regs=2
    const-null v1
    iput v1, h, ptrB_%[1]s
    return-void
.end

.method sendUse_%[1]s(h) regs=5
    sget-int v1, mainQ
    const-method v2, use_%[1]s
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end

.method sendFree_%[1]s(h) regs=5
    const-int v3, #20
    sleep v3
    sget-int v1, mainQ
    const-method v2, free_%[1]s
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end`, id)
	return scenario{
		src:     src,
		planted: Planted{Field: ptrB, Label: LabelFP3, UseMethod: use, Events: 2},
		wire: func(s *sim.System, p *dvm.Program) error {
			h := s.Heap().New("Decoder")
			pay := s.Heap().New("Payload")
			h.Set(p.FieldID("ptrA_"+id), dvm.Obj(pay.ID))
			h.Set(p.FieldID("ptrB_"+id), dvm.Obj(pay.ID))
			if err := startThread(s, "su_"+id, "sendUse_"+id, dvm.Obj(h.ID)); err != nil {
				return err
			}
			return startThread(s, "sf_"+id, "sendFree_"+id, dvm.Obj(h.ID))
		},
	}
}

// guardedBenign is the Figure 5 pattern the heuristics exist for:
// onPause frees handler; onFocus uses it behind a null check (pruned
// by if-guard); onResume re-allocates before using (pruned by
// intra-event-allocation). The detector must report nothing here —
// these scenarios are what Table 1's counts have already been
// filtered of.
func guardedBenign(id string) scenario {
	ptr := "ptr_" + id
	src := fmt.Sprintf(`
.method onPause_%[1]s(act) regs=2
    const-null v1
    iput v1, act, ptr_%[1]s
    return-void
.end

.method onFocus_%[1]s(act) regs=3
    iget v1, act, ptr_%[1]s
    if-eqz v1, skip
    invoke-virtual run, v1
skip:
    return-void
.end

.method onResume_%[1]s(act) regs=3
    new v1, Handler
    iput v1, act, ptr_%[1]s
    iget v2, act, ptr_%[1]s
    invoke-virtual run, v2
    return-void
.end

.method sendBenign_%[1]s(act) regs=5
    sget-int v1, mainQ
    const-int v3, #0
    const-method v2, onFocus_%[1]s
    send v1, v2, v3, act
    const-method v2, onResume_%[1]s
    send v1, v2, v3, act
    return-void
.end

.method sendPause_%[1]s(act) regs=5
    const-int v3, #20
    sleep v3
    sget-int v1, mainQ
    const-method v2, onPause_%[1]s
    const-int v3, #0
    send v1, v2, v3, act
    return-void
.end`, id)
	return scenario{
		src:     src,
		planted: Planted{Field: ptr, Label: LabelFiltered, UseMethod: "onFocus_" + id, Events: 3},
		wire: func(s *sim.System, p *dvm.Program) error {
			h := newHolder(s, p, "Activity", ptr)
			if err := startThread(s, "sb_"+id, "sendBenign_"+id, dvm.Obj(h.ID)); err != nil {
				return err
			}
			return startThread(s, "sp_"+id, "sendPause_"+id, dvm.Obj(h.ID))
		},
	}
}

// lockedBenign plants a use and a free in two threads, both inside
// critical sections on the same lock. The model derives no
// happens-before from the lock (§3.1), but the lockset
// mutual-exclusion check must prune the pair (§3.2).
func lockedBenign(id string) scenario {
	ptr := "ptr_" + id
	src := fmt.Sprintf(`
.method lockedUse_%[1]s(h) regs=4
    iget v3, h, lk_%[1]s
    lock v3
    iget v1, h, ptr_%[1]s
    if-eqz v1, lskip
    invoke-virtual run, v1
lskip:
    unlock v3
    return-void
.end

.method lockedFree_%[1]s(h) regs=4
    const-int v1, #20
    sleep v1
    iget v3, h, lk_%[1]s
    lock v3
    const-null v2
    iput v2, h, ptr_%[1]s
    unlock v3
    return-void
.end`, id)
	return scenario{
		src:     src,
		planted: Planted{Field: ptr, Label: LabelFiltered, UseMethod: "lockedUse_" + id, Events: 0},
		wire: func(s *sim.System, p *dvm.Program) error {
			h := newHolder(s, p, "Store", ptr)
			lk := s.Heap().New("Lock")
			h.Set(p.FieldID("lk_"+id), dvm.Obj(lk.ID))
			if err := startThread(s, "lu_"+id, "lockedUse_"+id, dvm.Obj(h.ID)); err != nil {
				return err
			}
			return startThread(s, "lf_"+id, "lockedFree_"+id, dvm.Obj(h.ID))
		},
	}
}

// orderedBenign plants a use event that itself posts the free event to
// the same looper: the send edge orders use ≺ free in the event-driven
// model, so the candidate pair dies at the detector's ordered stage —
// the teardown-after-use idiom every app has, and the prune whose
// provenance witness is a happens-before path. The use is deliberately
// unguarded: without the static event-order pass cafa-lint counts the
// pair as a coverage gap, and the post-containment chain
// (use ≺ end(ordUse) ≺ begin(ordFree) ≺ free) is exactly what -order
// proves to reclassify it as statically ordered.
func orderedBenign(id string) scenario {
	ptr := "ptr_" + id
	use := "ordUse_" + id
	src := fmt.Sprintf(`
.method ordUse_%[1]s(h) regs=6
    iget v1, h, ptr_%[1]s
    invoke-virtual run, v1
    sget-int v2, mainQ
    const-method v3, ordFree_%[1]s
    const-int v4, #0
    send v2, v3, v4, h
    return-void
.end

.method ordFree_%[1]s(h) regs=2
    const-null v1
    iput v1, h, ptr_%[1]s
    return-void
.end

.method sendOrd_%[1]s(h) regs=5
    sget-int v1, mainQ
    const-method v2, ordUse_%[1]s
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end`, id)
	return scenario{
		src:     src,
		planted: Planted{Field: ptr, Label: LabelFiltered, UseMethod: use, Events: 2},
		wire: func(s *sim.System, p *dvm.Program) error {
			h := newHolder(s, p, "Activity", ptr)
			return startThread(s, "so_"+id, "sendOrd_"+id, dvm.Obj(h.ID))
		},
	}
}

// prelude generates the per-app shared methods: the virtual-call
// sink, the benign commutative filler events (the Figure 2 pattern),
// the thread-only conflict filler, and a no-op external event handler.
//
// fieldWork and arithWork set each filler event's body: iterations of
// a field-update loop (every iteration is traced — a pointer-dense
// widget app) versus iterations of pure register arithmetic (invisible
// to the tracer — a compute/native-heavy app). Their ratio determines
// where the app lands in the 2×–6× Fig. 8 slowdown band.
func prelude(fieldWork, arithWork int) string {
	if fieldWork < 1 {
		fieldWork = 1
	}
	if arithWork < 1 {
		arithWork = 1
	}
	return fmt.Sprintf(sharedPreludeTmpl, fieldWork, arithWork)
}

const sharedPreludeTmpl = `
.method run(this) regs=1
    return-void
.end

.method fillW(h) regs=7
    const-int v1, #0
    iput-int v1, h, fflag
    const-int v2, #%[1]d   ; traced field-update work
    const-int v3, #1
    const-int v4, #0
wloop:
    iget-int v5, h, fwork
    add-int v5, v5, v3
    iput-int v5, h, fwork
    sub-int v2, v2, v3
    if-int-gt v2, v4, wloop
    const-int v2, #%[2]d   ; untraced compute work
    const-int v5, #7
aloop:
    add-int v5, v5, v3
    mul-int v5, v5, v3
    sub-int v2, v2, v3
    if-int-gt v2, v4, aloop
    return-void
.end

.method fillR(h) regs=7
    iget-int v1, h, fflag
    const-int v2, #0
    if-int-eq v1, v2, skip
    const-int v3, #%[1]d   ; traced layout recomputation
    const-int v4, #1
rloop:
    iget-int v5, h, fcols
    add-int v5, v5, v4
    iput-int v5, h, fcols
    sub-int v3, v3, v4
    if-int-gt v3, v2, rloop
    const-int v3, #%[2]d   ; untraced compute work
    const-int v5, #7
bloop:
    add-int v5, v5, v4
    mul-int v5, v5, v4
    sub-int v3, v3, v4
    if-int-gt v3, v2, bloop
skip:
    return-void
.end

; Filler senders read their destination queue from the holder, so the
; same pair can target the main looper or a background HandlerThread.
.method fillSendW(h) regs=5
    iget-int v1, h, fq
    const-method v2, fillW
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end

.method fillSendR(h) regs=5
    iget-int v1, h, fq
    const-method v2, fillR
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end

.method nfW(h) regs=2
    const-int v1, #0
    iput-int v1, h, nflag
    return-void
.end

.method nfR(h) regs=2
    iget-int v1, h, nflag
    return-void
.end

.method fillOne(h) regs=2
    const-int v1, #1
    sput-int v1, fillOneRan
    return-void
.end
`

// mainLooper returns the looper registered as "main" by Build. Build
// always creates it first.
func mainLooper(s *sim.System) *sim.Looper {
	return s.LooperAt(0)
}

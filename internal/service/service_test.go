package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cafa/internal/analysis"
	"cafa/internal/apps"
	"cafa/internal/service/api"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// testTrace records one ZXing run at a small scale; distinct seeds
// yield distinct trace bytes (distinct cache keys).
func testTrace(t testing.TB, seed uint64) []byte {
	t.Helper()
	spec, ok := apps.ByName("ZXing")
	if !ok {
		t.Fatal("ZXing model missing")
	}
	col := trace.NewCollector()
	b, err := apps.Build(spec, sim.Config{Tracer: col, Seed: seed}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Sys.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.T.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	return s
}

// post submits raw trace bytes over the HTTP surface.
func post(t testing.TB, s *Server, raw []byte, query string) (*httptest.ResponseRecorder, api.Job) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs"+query, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var j api.Job
	if rec.Code == http.StatusOK || rec.Code == http.StatusAccepted {
		if err := json.Unmarshal(rec.Body.Bytes(), &j); err != nil {
			t.Fatalf("submit response: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, j
}

func get(t testing.TB, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// waitDone long-polls one job to a settled state.
func waitDone(t testing.TB, s *Server, id string) api.Job {
	t.Helper()
	rec := get(t, s, "/v1/jobs/"+id+"?wait=30s")
	var j api.Job
	if err := json.Unmarshal(rec.Body.Bytes(), &j); err != nil {
		t.Fatal(err)
	}
	if !j.Terminal() {
		t.Fatalf("job %s not terminal after wait: %s", id, j.State)
	}
	return j
}

func TestSubmitAnalyzeFetchArtifacts(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	raw := testTrace(t, 1)

	rec, j := post(t, s, raw, "?name=zxing.trace&app=ZXing")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body.String())
	}
	j = waitDone(t, s, j.ID)
	if j.State != api.StateDone || j.Races == 0 {
		t.Fatalf("job = %+v", j)
	}

	for path, wantType := range map[string]string{
		"/report":   "application/json",
		"/evidence": "application/json",
		"/triage":   "text/html; charset=utf-8",
	} {
		rec := get(t, s, "/v1/jobs/"+j.ID+path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != wantType {
			t.Fatalf("%s content-type = %q, want %q", path, ct, wantType)
		}
		if rec.Body.Len() == 0 {
			t.Fatalf("%s body empty", path)
		}
	}
	if rec := get(t, s, "/v1/jobs/nope/report"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job artifact = %d, want 404", rec.Code)
	}
}

func TestCachedResubmissionServesIdenticalBytes(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	raw := testTrace(t, 1)
	_, j1 := post(t, s, raw, "")
	waitDone(t, s, j1.ID)
	rec, j2 := post(t, s, raw, "")
	if rec.Code != http.StatusOK || !j2.Cached || j2.State != api.StateDone {
		t.Fatalf("resubmit = %d, job = %+v", rec.Code, j2)
	}
	r1 := get(t, s, "/v1/jobs/"+j1.ID+"/report").Body.Bytes()
	r2 := get(t, s, "/v1/jobs/"+j2.ID+"/report").Body.Bytes()
	if !bytes.Equal(r1, r2) {
		t.Fatal("cached job served different report bytes")
	}
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestSubmitRejectsGarbageAndEmpty(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if rec, _ := post(t, s, []byte("not a trace at all"), ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage = %d, want 400", rec.Code)
	}
	if rec, _ := post(t, s, nil, ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty = %d, want 400", rec.Code)
	}
	if rec, _ := post(t, s, bytes.Repeat([]byte("x"), 64), ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("junk = %d, want 400", rec.Code)
	}
}

func TestBodyLimit413(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 128})
	rec, _ := post(t, s, bytes.Repeat([]byte("y"), 4096), "")
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", rec.Code)
	}
}

// TestBackpressure429 holds the single worker, fills the one queue
// slot, and checks the next distinct submission bounces with 429
// without blocking — then that the held work still completes.
func TestBackpressure429(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	var once sync.Once
	running := make(chan struct{}, 8)
	s.testHookRunning = func(*job) {
		running <- struct{}{}
		<-release
	}
	defer once.Do(func() { close(release) })

	_, j1 := post(t, s, testTrace(t, 1), "") // grabbed by the worker
	<-running                                // worker is now held
	_, j2 := post(t, s, testTrace(t, 2), "") // fills the queue slot

	done := make(chan int)
	go func() {
		rec, _ := post(t, s, testTrace(t, 3), "")
		done <- rec.Code
	}()
	select {
	case code := <-done:
		if code != http.StatusTooManyRequests {
			t.Fatalf("third submit = %d, want 429", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("submission blocked on a full queue; want an immediate 429")
	}

	// The rejected job must leave no record behind.
	var listed []api.Job
	if err := json.Unmarshal(get(t, s, "/v1/jobs").Body.Bytes(), &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 {
		t.Fatalf("%d jobs listed after 429, want 2", len(listed))
	}

	once.Do(func() { close(release) })
	for _, id := range []string{j1.ID, j2.ID} {
		if j := waitDone(t, s, id); j.State != api.StateDone {
			t.Fatalf("job %s = %s after release: %s", id, j.State, j.Error)
		}
	}
}

// TestShutdownDrains verifies Shutdown finishes queued and running
// jobs and persists their artifacts before returning, and that intake
// answers 503 once draining.
func TestShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, QueueDepth: 4, ResultsDir: dir})
	release := make(chan struct{})
	var once sync.Once
	running := make(chan struct{}, 8)
	s.testHookRunning = func(*job) {
		running <- struct{}{}
		<-release
	}
	_, j1 := post(t, s, testTrace(t, 1), "")
	<-running
	_, j2 := post(t, s, testTrace(t, 2), "") // queued behind the held worker

	shutDone := make(chan error)
	go func() { shutDone <- s.Shutdown(context.Background()) }()
	// Intake must close even while jobs drain.
	deadline := time.After(10 * time.Second)
	for {
		rec, _ := post(t, s, testTrace(t, 3), "")
		if rec.Code == http.StatusServiceUnavailable {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("intake still open during drain (last status %d)", rec.Code)
		case <-time.After(10 * time.Millisecond):
		}
	}
	once.Do(func() { close(release) })
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, j := range []api.Job{j1, j2} {
		snap := waitDone(t, s, j.ID)
		if snap.State != api.StateDone {
			t.Fatalf("job %s drained to %s: %s", j.ID, snap.State, snap.Error)
		}
		for _, f := range []string{"report.json", "evidence.json", "triage.html", "job.json"} {
			p := filepath.Join(dir, j.ID, f)
			if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
				t.Fatalf("persisted %s: %v", p, err)
			}
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.testHookAnalyze = func(j *job) {
		if j.name == "boom" {
			panic("injected")
		}
	}
	_, bad := post(t, s, testTrace(t, 1), "?name=boom")
	j := waitDone(t, s, bad.ID)
	if j.State != api.StateFailed || !strings.Contains(j.Error, "panicked") {
		t.Fatalf("panicking job = %+v", j)
	}
	if rec := get(t, s, "/v1/jobs/"+bad.ID+"/report"); rec.Code != http.StatusGone {
		t.Fatalf("failed job artifact = %d, want 410", rec.Code)
	}
	// The worker that recovered must still serve the next job.
	_, good := post(t, s, testTrace(t, 2), "")
	if j := waitDone(t, s, good.ID); j.State != api.StateDone {
		t.Fatalf("job after panic = %+v", j)
	}
}

func TestJobTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, JobTimeout: 50 * time.Millisecond})
	stall := make(chan struct{})
	s.testHookAnalyze = func(*job) { <-stall }
	defer close(stall)
	_, j := post(t, s, testTrace(t, 1), "")
	snap := waitDone(t, s, j.ID)
	if snap.State != api.StateFailed || !strings.Contains(snap.Error, "timeout") {
		t.Fatalf("stalled job = %+v", snap)
	}
}

func TestSSEStreamsUntilSettled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	_, j := post(t, s, testTrace(t, 1), "")
	waitDone(t, s, j.ID)
	rec := get(t, s, "/v1/jobs/"+j.ID+"/events")
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "event: state") || !strings.Contains(body, `"state":"done"`) {
		t.Fatalf("SSE body:\n%s", body)
	}
}

func TestConfirmAttachesRecords(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, ReplayScale: 32})
	raw := testTrace(t, 1)
	_, j := post(t, s, raw, "?app=ZXing")
	waitDone(t, s, j.ID)
	pristine := get(t, s, "/v1/jobs/"+j.ID+"/evidence").Body.Bytes()

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs/"+j.ID+"/confirm", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("confirm = %d: %s", rec.Code, rec.Body.String())
	}
	snap := waitDone(t, s, j.ID)
	if snap.Confirm == nil || snap.Confirm.State != api.ConfirmDone {
		t.Fatalf("confirm = %+v", snap.Confirm)
	}
	if len(snap.Confirm.Confirmations) == 0 {
		t.Fatal("no races reproduced; the ZXing model plants reproducible NPEs")
	}
	annotated := get(t, s, "/v1/jobs/"+j.ID+"/evidence").Body.Bytes()
	if !bytes.Contains(annotated, []byte(`"confirmed"`)) {
		t.Fatal("evidence not annotated with confirmation records")
	}
	if bytes.Equal(annotated, pristine) {
		t.Fatal("evidence unchanged after confirm")
	}

	// Idempotent: a second confirm reports the finished run.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs/"+j.ID+"/confirm", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("second confirm = %d, want 200", rec.Code)
	}

	// A cached duplicate of the same trace serves pristine evidence —
	// confirm annotations are job-local, not cache mutations.
	_, dup := post(t, s, raw, "?app=ZXing")
	dupEv := get(t, s, "/v1/jobs/"+dup.ID+"/evidence").Body.Bytes()
	if !bytes.Equal(dupEv, pristine) {
		t.Fatal("cache entry mutated by confirm annotation")
	}
}

func TestConfirmPreconditions(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	var once sync.Once
	running := make(chan struct{}, 1)
	s.testHookRunning = func(*job) {
		running <- struct{}{}
		<-release
	}
	defer once.Do(func() { close(release) })
	_, j := post(t, s, testTrace(t, 1), "")
	<-running

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs/"+j.ID+"/confirm?app=ZXing", nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("confirm on running job = %d, want 409", rec.Code)
	}
	once.Do(func() { close(release) })
	waitDone(t, s, j.ID)

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs/"+j.ID+"/confirm", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("confirm without app = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs/"+j.ID+"/confirm?app=NoSuchApp", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("confirm with unknown app = %d, want 400", rec.Code)
	}
}

// TestFingerprintDistinguishesConfigs guards the cache key: two
// servers with different detector switches must never share entries.
func TestFingerprintDistinguishesConfigs(t *testing.T) {
	var base, naive, nolockset analysis.Options
	naive.Naive = true
	nolockset.Detect.DisableLockset = true
	fps := map[string]bool{
		fingerprint(base):      true,
		fingerprint(naive):     true,
		fingerprint(nolockset): true,
	}
	if len(fps) != 3 {
		t.Fatalf("fingerprints collide: %v", fps)
	}
}

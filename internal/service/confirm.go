package service

import (
	"bytes"
	"net/http"

	"cafa/internal/apps"
	"cafa/internal/obs"
	"cafa/internal/provenance"
	"cafa/internal/replay"
	"cafa/internal/service/api"
)

// handleConfirm starts (or reports) the asynchronous adversarial
// confirmation of a finished job's races: each reported race is
// replayed against the named app model's builder under biased
// schedules (internal/replay), and every reproduction is attached to
// the job record and its evidence bundle. The app comes from ?app=,
// falling back to the one named at submission. 202 = replay started,
// 200 = already ran (idempotent), 409 = job not finished.
func (s *Server) handleConfirm(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	appName := r.URL.Query().Get("app")
	if appName == "" {
		appName = j.snapshot().App
	}
	if appName == "" {
		writeErr(w, http.StatusBadRequest, "no app model: pass ?app= (or submit with one)")
		return
	}
	spec, ok := apps.ByName(appName)
	if !ok {
		writeErr(w, http.StatusBadRequest, "unknown app model %q", appName)
		return
	}
	if _, ok := j.artifact(); !ok {
		writeErr(w, http.StatusConflict, "job not finished; confirm needs the race report")
		return
	}

	// The closed check and the WaitGroup Add are atomic against
	// Shutdown (both under s.mu), so a confirm never starts after the
	// drain began waiting on it.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	already := false
	j.mu.Lock()
	if j.confirm != nil {
		already = true
	} else {
		j.confirm = &api.Confirm{State: api.ConfirmRunning, App: spec.Name, Confirmations: []api.Confirmation{}}
	}
	j.mu.Unlock()
	if !already {
		s.confirmWG.Add(1)
	}
	s.mu.Unlock()
	if already {
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	cConfirms.Inc()
	go s.runConfirm(j, spec)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// runConfirm is the async replay worker for one job.
func (s *Server) runConfirm(j *job, spec apps.Spec) {
	defer s.confirmWG.Done()
	sp := obs.Start("serve.confirm", obs.String("job", j.id), obs.String("app", spec.Name))
	defer sp.End()
	build := apps.ReplayBuilder(spec, s.cfg.ReplayScale)
	art, _ := j.artifact()
	for _, rm := range art.Races {
		conf, err := replay.Confirm(build, rm.UseMethod, replay.Options{})
		if err != nil {
			j.update(func() {
				j.confirm.State = api.ConfirmFailed
				j.confirm.Error = err.Error()
			})
			s.persistConfirm(j)
			return
		}
		j.update(func() {
			j.confirm.Checked++
			if conf != nil {
				j.confirm.Confirmations = append(j.confirm.Confirmations, api.Confirmation{
					Site:      rm.Site,
					UseMethod: rm.UseMethod,
					Seed:      conf.Seed,
					DelayMs:   conf.DelayMs,
					Crash:     conf.Crash.Err.Error(),
				})
			}
		})
	}
	annotated := annotateEvidence(art.Evidence, j.snapshot().Confirm.Confirmations)
	j.update(func() {
		j.confirm.State = api.ConfirmDone
		if annotated != nil {
			j.evidenceConfirmed = annotated
		}
	})
	s.persistConfirm(j)
}

// annotateEvidence re-renders an evidence bundle with Confirmation
// records attached to the matching race sites. The pristine bytes are
// left alone (and returned nil) when nothing was confirmed or the
// bundle does not parse, so unconfirmed evidence stays byte-identical
// to the batch CLI's.
func annotateEvidence(evidence []byte, confs []api.Confirmation) []byte {
	if len(confs) == 0 {
		return nil
	}
	b, err := provenance.ReadBundle(bytes.NewReader(evidence))
	if err != nil {
		return nil
	}
	bySite := make(map[string]api.Confirmation, len(confs))
	for _, c := range confs {
		bySite[c.Site] = c
	}
	for i := range b.Inputs {
		for k := range b.Inputs[i].Races {
			re := &b.Inputs[i].Races[k]
			if c, ok := bySite[re.Site]; ok {
				re.Confirmed = &provenance.ConfirmationRecord{
					Seed:    c.Seed,
					DelayMs: c.DelayMs,
					Crash:   c.Crash,
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		return nil
	}
	return buf.Bytes()
}

package service

import (
	"container/list"
	"sync"

	"cafa/internal/detect"
	"cafa/internal/service/api"
)

// artifacts is one completed analysis, fully rendered: the three
// served artifact formats plus the race metadata the confirm step
// replays from. Entries are immutable once cached — confirm-annotated
// evidence is a job-local copy, never a cache mutation — so one entry
// can back any number of duplicate submissions.
type artifacts struct {
	Report   []byte
	Evidence []byte
	Triage   []byte
	Races    []raceMeta
	Stats    detect.Stats
}

// raceMeta is the replay handle for one reported race.
type raceMeta struct {
	Site      string
	UseMethod string
}

// size is the entry's cache-budget charge (artifact bytes; the small
// metadata slices ride along uncharged).
func (a *artifacts) size() int64 {
	return int64(len(a.Report) + len(a.Evidence) + len(a.Triage))
}

// resultCache is the content-addressed result cache: key =
// SHA-256(trace bytes) + analysis-config fingerprint, value = the
// rendered artifacts, evicted least-recently-used once the byte
// budget is exceeded. Hit/miss/eviction tallies are kept here (not
// only in obs counters) so behavior is assertable with obs disabled.
type resultCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used *cacheEntry
	items   map[string]*list.Element
	hits    int64
	misses  int64
	evicted int64
}

type cacheEntry struct {
	key string
	art *artifacts
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{budget: budget, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached artifacts for key, refreshing its recency.
func (c *resultCache) get(key string) (*artifacts, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).art, true
}

// put inserts (or replaces) the entry and evicts from the cold end
// until the byte budget holds. An entry larger than the whole budget
// is admitted alone — the submission that produced it still needs to
// be served — and evicted by the next insertion.
func (c *resultCache) put(key string, art *artifacts) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		old := el.Value.(*cacheEntry)
		c.used += art.size() - old.art.size()
		old.art = art
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, art: art})
		c.used += art.size()
	}
	for c.used > c.budget && c.ll.Len() > 1 {
		back := c.ll.Back()
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.used -= ent.art.size()
		c.evicted++
	}
}

// stats snapshots the cache for /v1/stats and the obs gauges.
func (c *resultCache) stats() api.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return api.CacheStats{
		Entries: c.ll.Len(),
		Bytes:   c.used,
		Budget:  c.budget,
		Hits:    c.hits,
		Misses:  c.misses,
		Evicted: c.evicted,
	}
}

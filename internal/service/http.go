package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"cafa/internal/obs"
	"cafa/internal/service/api"
	"cafa/internal/trace"
)

// httpError pairs a status code with a client-facing message.
type httpError struct {
	status int
	msg    string
}

// writeJSON emits a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr emits the JSON error envelope.
func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, api.Error{Error: fmt.Sprintf(format, args...)})
}

// routes mounts the API. Go 1.22 pattern routing keys method and
// path wildcards.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleArtifact("report"))
	mux.HandleFunc("GET /v1/jobs/{id}/evidence", s.handleArtifact("evidence"))
	mux.HandleFunc("GET /v1/jobs/{id}/triage", s.handleArtifact("triage"))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/confirm", s.handleConfirm)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.statsSnapshot())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux
}

// ServeHTTP makes the Server mountable under any http.Server.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handleSubmit accepts a trace upload: the raw trace bytes (binary or
// text codec) as the request body, with optional ?name= (report
// label; defaults to upload-<sha8>.trace) and ?app= (app model for
// later confirm). 200 = served from cache, 202 = queued, 400 =
// undecodable, 413 = too large, 429 = queue full, 503 = draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Stream {
		s.handleSubmitStream(w, r)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	raw, err := io.ReadAll(body)
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge,
			"request body rejected (limit %d bytes): %v", s.cfg.MaxBodyBytes, err)
		return
	}
	if len(raw) == 0 {
		writeErr(w, http.StatusBadRequest, "empty request body; POST the trace bytes")
		return
	}
	sum := sha256.Sum256(raw)
	sha := hex.EncodeToString(sum[:])
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "upload-" + sha[:8] + ".trace"
	}
	j, cached, herr := s.submit(raw, name, r.URL.Query().Get("app"), sha)
	if herr != nil {
		writeErr(w, herr.status, "%s", herr.msg)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, j.snapshot())
}

// handleSubmitStream accepts a trace upload in streaming mode
// (Config.Stream): entries are decoded, validated, and fed through the
// per-event analysis passes while the body arrives, and the SHA-256
// cache key is accumulated over the same bytes. Status codes match
// handleSubmit; a cache hit is recognized once the body is complete
// and served without finalizing the streamed analysis.
func (s *Server) handleSubmitStream(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	h := sha256.New()
	cr := &countingReader{r: io.TeeReader(body, h)}
	dec, err := trace.NewStreamDecoder(cr)
	if err != nil {
		if cr.n == 0 {
			writeErr(w, http.StatusBadRequest, "empty request body; POST the trace bytes")
			return
		}
		writeErr(w, uploadErrStatus(err), "decode: %v", err)
		return
	}
	sa := s.pipeline.NewStream(dec.Header())
	for {
		e, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeErr(w, uploadErrStatus(err), "decode: %v", err)
			return
		}
		if err := sa.Consume(e); err != nil {
			writeErr(w, http.StatusBadRequest, "trace validation: %v", err)
			return
		}
	}
	// Hash whatever the decoder left unread, so the cache key is the
	// digest of the complete body, exactly as the buffered path hashes
	// it.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		writeErr(w, uploadErrStatus(err), "read: %v", err)
		return
	}
	sha := hex.EncodeToString(h.Sum(nil))
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "upload-" + sha[:8] + ".trace"
	}
	j, cached, herr := s.submitStreamed(sa, name, r.URL.Query().Get("app"), sha)
	if herr != nil {
		writeErr(w, herr.status, "%s", herr.msg)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, j.snapshot())
}

// countingReader counts the bytes its reads deliver.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// uploadErrStatus distinguishes an over-limit body (413) from a
// malformed one (400) in streaming mode, where MaxBytesReader errors
// surface through the decoder.
func uploadErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// handleList returns every job in submission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]api.Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

// maxWait bounds ?wait= long-polls.
const maxWait = 5 * time.Minute

// handleJob returns one job record. With ?wait=<duration> it
// long-polls: the response is deferred until the job (and any running
// confirm) reaches a terminal state or the wait expires.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad wait duration %q: %v", waitStr, err)
			return
		}
		if d > maxWait {
			d = maxWait
		}
		deadline := time.NewTimer(d)
		defer deadline.Stop()
	poll:
		for {
			ch := j.waitCh()
			if settled(j.snapshot()) {
				break
			}
			select {
			case <-ch:
			case <-deadline.C:
				break poll
			case <-r.Context().Done():
				break poll
			}
		}
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// settled reports whether there is nothing left to wait for: the job
// is terminal and no confirm replay is still running.
func settled(j api.Job) bool {
	if !j.Terminal() {
		return false
	}
	return j.Confirm == nil || j.Confirm.State != api.ConfirmRunning
}

// handleArtifact serves one rendered artifact of a finished job.
// Unfinished jobs answer 409 (poll the job record first); failed jobs
// answer 410 with the failure message.
func (s *Server) handleArtifact(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.lookup(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "no such job")
			return
		}
		snap := j.snapshot()
		if snap.State == api.StateFailed {
			writeErr(w, http.StatusGone, "job failed: %s", snap.Error)
			return
		}
		var body []byte
		var ctype string
		switch kind {
		case "report":
			if art, ok := j.artifact(); ok {
				body, ctype = art.Report, "application/json"
			}
		case "evidence":
			if ev, ok := j.evidenceBytes(); ok {
				body, ctype = ev, "application/json"
			}
		case "triage":
			if art, ok := j.artifact(); ok {
				body, ctype = art.Triage, "text/html; charset=utf-8"
			}
		}
		if body == nil {
			writeErr(w, http.StatusConflict, "job %s not finished (state %s); poll /v1/jobs/%s",
				snap.ID, snap.State, snap.ID)
			return
		}
		w.Header().Set("Content-Type", ctype)
		_, _ = w.Write(body)
	}
}

// handleEvents streams job lifecycle transitions as server-sent
// events: one `state` event with the full job record per change,
// closing after the job (and any confirm run) settles. Progress
// stages mirrored from the obs span stream arrive as they happen.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		ch := j.waitCh()
		snap := j.snapshot()
		raw, err := json.Marshal(snap)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: state\ndata: %s\n\n", raw)
		flusher.Flush()
		if settled(snap) {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

package service

import "testing"

func art(n int) *artifacts {
	return &artifacts{Report: make([]byte, n)}
}

func TestCacheHitMissTallies(t *testing.T) {
	c := newResultCache(100)
	if _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("a", art(10))
	if _, ok := c.get("a"); !ok {
		t.Fatal("miss after put")
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newResultCache(30)
	c.put("a", art(10))
	c.put("b", art(10))
	c.put("c", art(10))
	// Touch a so b is the coldest, then overflow.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("d", art(10))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived; want LRU eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted; want only b gone", k)
		}
	}
	if st := c.stats(); st.Evicted != 1 || st.Bytes != 30 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheReplaceAdjustsBytes(t *testing.T) {
	c := newResultCache(100)
	c.put("a", art(10))
	c.put("a", art(40))
	if st := c.stats(); st.Entries != 1 || st.Bytes != 40 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheOversizedEntryAdmittedAlone(t *testing.T) {
	c := newResultCache(30)
	c.put("big", art(50))
	if _, ok := c.get("big"); !ok {
		t.Fatal("oversized entry not admitted")
	}
	// The next insertion pushes it out.
	c.put("small", art(10))
	if _, ok := c.get("big"); ok {
		t.Fatal("oversized entry survived a later insertion")
	}
	if _, ok := c.get("small"); !ok {
		t.Fatal("small entry missing")
	}
}

// Package client is the thin Go client for cafa-serve's HTTP API.
// It wraps the wire types in internal/service/api; the CI smoke job
// and the -selftest path drive the service through it.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"cafa/internal/service/api"
)

// APIError is a non-2xx response, carrying the server's error
// envelope when one was parseable.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("cafa-serve: HTTP %d: %s", e.Status, e.Msg)
}

// Client talks to one cafa-serve instance.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:7420".
	Base string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
}

func New(base string) *Client { return &Client{Base: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues the request and decodes a JSON body into out (when
// non-nil). Non-2xx statuses become *APIError.
func (c *Client) do(method, path string, query url.Values, body io.Reader, out any) error {
	u := c.Base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequest(method, u, body)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var envelope api.Error
		msg := string(bytes.TrimSpace(raw))
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		return &APIError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Submit uploads raw trace bytes. name labels the report (optional);
// app names the app model for later Confirm calls (optional). The
// returned job is already done when the server answered from cache.
func (c *Client) Submit(raw []byte, name, app string) (api.Job, error) {
	q := url.Values{}
	if name != "" {
		q.Set("name", name)
	}
	if app != "" {
		q.Set("app", app)
	}
	var j api.Job
	err := c.do(http.MethodPost, "/v1/jobs", q, bytes.NewReader(raw), &j)
	return j, err
}

// SubmitFile uploads a trace file, labeling the job with its path.
func (c *Client) SubmitFile(path, app string) (api.Job, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return api.Job{}, err
	}
	return c.Submit(raw, path, app)
}

// Job fetches one job record.
func (c *Client) Job(id string) (api.Job, error) {
	var j api.Job
	err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, nil, &j)
	return j, err
}

// Wait long-polls the job until it (and any running confirm) settles
// or the wait expires; the server caps one poll at its own maximum,
// so Wait re-polls until the deadline.
func (c *Client) Wait(id string, timeout time.Duration) (api.Job, error) {
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			j, err := c.Job(id)
			if err != nil {
				return j, err
			}
			return j, fmt.Errorf("job %s not settled after %v (state %s)", id, timeout, j.State)
		}
		q := url.Values{"wait": []string{remain.Round(time.Millisecond).String()}}
		var j api.Job
		if err := c.do(http.MethodGet, "/v1/jobs/"+id, q, nil, &j); err != nil {
			return j, err
		}
		if j.Terminal() && (j.Confirm == nil || j.Confirm.State != api.ConfirmRunning) {
			return j, nil
		}
	}
}

// artifact fetches one rendered artifact body.
func (c *Client) artifact(id, kind string) ([]byte, error) {
	u := fmt.Sprintf("%s/v1/jobs/%s/%s", c.Base, id, kind)
	resp, err := c.httpClient().Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var envelope api.Error
		msg := string(bytes.TrimSpace(raw))
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		return nil, &APIError{Status: resp.StatusCode, Msg: msg}
	}
	return raw, nil
}

// Report fetches the job's JSON race report.
func (c *Client) Report(id string) ([]byte, error) { return c.artifact(id, "report") }

// Evidence fetches the job's evidence bundle (confirm-annotated when
// a confirm run reproduced races).
func (c *Client) Evidence(id string) ([]byte, error) { return c.artifact(id, "evidence") }

// Triage fetches the job's HTML triage page.
func (c *Client) Triage(id string) ([]byte, error) { return c.artifact(id, "triage") }

// Confirm starts (or reports) the job's adversarial replay run. app
// overrides the model named at submission (optional).
func (c *Client) Confirm(id, app string) (api.Job, error) {
	q := url.Values{}
	if app != "" {
		q.Set("app", app)
	}
	var j api.Job
	err := c.do(http.MethodPost, "/v1/jobs/"+id+"/confirm", q, nil, &j)
	return j, err
}

// Jobs lists every job in submission order.
func (c *Client) Jobs() ([]api.Job, error) {
	var out []api.Job
	err := c.do(http.MethodGet, "/v1/jobs", nil, nil, &out)
	return out, err
}

// Stats fetches the server's queue and cache statistics.
func (c *Client) Stats() (api.Stats, error) {
	var st api.Stats
	err := c.do(http.MethodGet, "/v1/stats", nil, nil, &st)
	return st, err
}

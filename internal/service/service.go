// Package service is the long-running half of CAFA: cafa-serve's job
// manager. It accepts trace uploads over HTTP, runs them through the
// existing analysis pipeline on a bounded worker pool behind a
// backpressured queue (submissions get 429, never a blocked accept
// loop), and serves the same three artifacts the batch CLI writes —
// JSON report, provenance evidence bundle, HTML triage — per job,
// byte-identical to `cafa-analyze` for the same trace and
// configuration (the rendering code is shared, internal/report).
//
// Results are keyed by content: SHA-256 of the uploaded trace bytes
// plus a fingerprint of the analysis configuration. Re-submitting a
// known trace is a cache hit that skips decoding and analysis
// entirely. A job that crashes the pipeline fails alone (panic
// isolation per job); a job that runs too long is abandoned at the
// per-job timeout. POST /v1/jobs/{id}/confirm replays reported races
// adversarially (internal/replay against the matching internal/apps
// builder) and attaches Confirmation records to the job and its
// evidence bundle. Shutdown drains queued and in-flight jobs and
// persists their results before returning.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"cafa/internal/analysis"
	"cafa/internal/obs"
	"cafa/internal/provenance"
	"cafa/internal/report"
	"cafa/internal/service/api"
	"cafa/internal/trace"
)

// Service observability: job lifecycle counters, queue/cache gauges.
// The same numbers are kept in plain fields (cache tallies, state
// counts) so behavior is assertable with obs disabled.
var (
	cJobsSubmitted = obs.NewCounter("serve_jobs_submitted_total")
	cJobsCompleted = obs.NewCounter("serve_jobs_completed_total")
	cJobsFailed    = obs.NewCounter("serve_jobs_failed_total")
	cJobsRejected  = obs.NewCounter("serve_jobs_rejected_total")
	cCacheHits     = obs.NewCounter("serve_cache_hits_total")
	cCacheMisses   = obs.NewCounter("serve_cache_misses_total")
	cConfirms      = obs.NewCounter("serve_confirm_requests_total")
	gQueueDepth    = obs.NewGauge("serve_queue_depth")
	gJobsQueued    = obs.NewGauge("serve_jobs_queued")
	gJobsRunning   = obs.NewGauge("serve_jobs_running")
	gJobsDone      = obs.NewGauge("serve_jobs_done")
	gJobsFailed    = obs.NewGauge("serve_jobs_failed")
	gCacheBytes    = obs.NewGauge("serve_cache_bytes")
	gCacheEntries  = obs.NewGauge("serve_cache_entries")
)

// Config tunes a Server. The zero value is usable; defaults fill in.
type Config struct {
	// Workers bounds concurrent analyses (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (default
	// 64); submissions beyond it are rejected with 429.
	QueueDepth int
	// MaxBodyBytes bounds one trace upload (default 64 MiB); larger
	// requests are rejected with 413.
	MaxBodyBytes int64
	// JobTimeout abandons an analysis that runs longer (default 2m;
	// the job fails, the server lives on).
	JobTimeout time.Duration
	// CacheBytes is the result cache's artifact byte budget (default
	// 256 MiB).
	CacheBytes int64
	// ResultsDir, when set, persists every finished job's artifacts
	// under <dir>/<job-id>/ before the job is marked terminal — the
	// graceful-shutdown durability guarantee.
	ResultsDir string
	// ReplayScale divides app filler volume when rebuilding models
	// for confirm replays (default 100, as cafa-bench -validate).
	ReplayScale int
	// Stream analyzes uploads while the request body arrives: the
	// decoder, validator, and per-event analysis passes advance
	// together during the upload, and the worker only finalizes (graph
	// closure + detection). The cache is still keyed on the SHA-256 of
	// the complete body, so a re-submitted trace is recognized once
	// the upload finishes and served from cache. Artifacts are
	// byte-identical to the buffered path.
	Stream bool
	// Analysis carries the pipeline configuration. Evidence is forced
	// on (the service always serves evidence bundles); Workers is
	// ignored (per-job passes already fan out, job-level concurrency
	// is the pool's).
	Analysis analysis.Options
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.ReplayScale <= 0 {
		c.ReplayScale = 100
	}
	c.Analysis.Evidence = true
}

// fingerprint renders the cache-relevant configuration: every switch
// that changes the served bytes, plus the evidence schema version so
// schema bumps invalidate stale entries. Program-dependent options
// (Interproc, StaticGuardPrune, DerefSources) are keyed by presence —
// the service runs one program configuration for its lifetime.
func fingerprint(o analysis.Options) string {
	return fmt.Sprintf("v1|bundle%d|ifguard=%t|intraalloc=%t|lockset=%t|dups=%t|naive=%t|interproc=%t|staticguard=%t|derefs=%t",
		provenance.BundleVersion,
		!o.Detect.DisableIfGuard, !o.Detect.DisableIntraEventAlloc, !o.Detect.DisableLockset,
		o.Detect.KeepDuplicates, o.Naive, o.Interproc, o.StaticGuardPrune, o.DerefSources != nil)
}

// Server is the job manager plus its HTTP surface (it implements
// http.Handler). New starts the worker pool; Shutdown drains it.
type Server struct {
	cfg      Config
	pipeline *analysis.Pipeline
	fp       string
	cache    *resultCache
	mux      *http.ServeMux

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	seq    int
	closed bool
	states map[string]int

	queue     chan *job
	workersWG sync.WaitGroup
	confirmWG sync.WaitGroup

	// testHookRunning, when set (tests only), is called by a worker
	// after a job transitions to running and before analysis starts —
	// the hook lets tests hold workers to fill the queue
	// deterministically. testHookAnalyze runs inside the panic-isolated
	// analysis goroutine, so tests can inject panics and stalls.
	testHookRunning func(*job)
	testHookAnalyze func(*job)
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:      cfg,
		pipeline: analysis.New(cfg.Analysis),
		fp:       fingerprint(cfg.Analysis),
		cache:    newResultCache(cfg.CacheBytes),
		jobs:     make(map[string]*job),
		states:   make(map[string]int),
		queue:    make(chan *job, cfg.QueueDepth),
	}
	s.routes()
	s.workersWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Fingerprint exposes the configuration fingerprint (cache keying).
func (s *Server) Fingerprint() string { return s.fp }

// CacheStats exposes the result-cache tallies.
func (s *Server) CacheStats() api.CacheStats { return s.cache.stats() }

// Shutdown stops intake, drains queued and running jobs (their
// results are persisted by the workers before this returns), waits
// for in-flight confirm replays, and returns. The context bounds the
// wait; on expiry the error is returned with workers still running.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.workersWG.Wait()
		s.confirmWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown: %w", ctx.Err())
	}
}

// register files a new job under the server lock. It fails when
// intake is closed (shutting down).
func (s *Server) register(name, app, sha string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("shutting down")
	}
	s.seq++
	j := newJob(fmt.Sprintf("j%06d", s.seq), name, app, sha)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.states[api.StateQueued]++
	s.publishStateGauges()
	cJobsSubmitted.Inc()
	return j, nil
}

// lookup finds a job by id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// setState transitions a job and keeps the per-state tallies and
// gauges current. Extra mutations ride along under the job lock.
func (s *Server) setState(j *job, state string, extra func()) {
	j.update(func() {
		s.mu.Lock()
		s.states[j.state]--
		s.states[state]++
		s.publishStateGauges()
		s.mu.Unlock()
		j.state = state
		if extra != nil {
			extra()
		}
	})
}

// publishStateGauges mirrors the state tallies to obs. Caller holds
// s.mu.
func (s *Server) publishStateGauges() {
	gJobsQueued.Set(int64(s.states[api.StateQueued]))
	gJobsRunning.Set(int64(s.states[api.StateRunning]))
	gJobsDone.Set(int64(s.states[api.StateDone]))
	gJobsFailed.Set(int64(s.states[api.StateFailed]))
}

// stage publishes a job progress transition both to watchers and to
// the obs span stream: a zero-duration serve.stage marker span
// carrying the job id, so SSE consumers and the -trace-out timeline
// see the same lifecycle.
func (s *Server) stage(j *job, name string) {
	sp := obs.Start("serve.stage", obs.String("job", j.id), obs.String("stage", name))
	sp.End()
	j.update(func() { j.progress = name })
}

// worker drains the job queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workersWG.Done()
	for j := range s.queue {
		gQueueDepth.Set(int64(len(s.queue)))
		s.runJob(j)
	}
}

// runJob executes one job with panic isolation and the per-job
// timeout. The analysis runs in a child goroutine; on timeout the job
// fails and the stray computation is abandoned (its result, sent to a
// buffered channel, is dropped — the goroutine cannot block).
func (s *Server) runJob(j *job) {
	s.setState(j, api.StateRunning, nil)
	if s.testHookRunning != nil {
		s.testHookRunning(j)
	}
	type outcome struct {
		art *artifacts
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{err: fmt.Errorf("analysis panicked: %v", p)}
			}
		}()
		art, err := s.analyze(j)
		done <- outcome{art: art, err: err}
	}()
	timer := time.NewTimer(s.cfg.JobTimeout)
	defer timer.Stop()
	select {
	case o := <-done:
		if o.err != nil {
			s.failJob(j, o.err)
			return
		}
		s.cache.put(j.sha+"|"+s.fp, o.art)
		s.publishCacheGauges()
		s.persist(j, o.art)
		s.setState(j, api.StateDone, func() {
			j.art = o.art
			j.tr = nil
			j.stream = nil
			j.progress = ""
		})
		cJobsCompleted.Inc()
	case <-timer.C:
		s.failJob(j, fmt.Errorf("job exceeded the %v timeout and was abandoned", s.cfg.JobTimeout))
	}
}

// failJob marks a job failed and persists the failure record.
func (s *Server) failJob(j *job, err error) {
	s.setState(j, api.StateFailed, func() {
		j.errMsg = err.Error()
		j.tr = nil
		j.stream = nil
		j.progress = ""
	})
	cJobsFailed.Inc()
	s.persist(j, nil)
}

// analyze runs the pipeline on the job's trace and renders all served
// artifacts. The root obs span carries the job id; the pipeline's
// pass spans nest under it.
func (s *Server) analyze(j *job) (*artifacts, error) {
	sp := obs.Start("serve.job", obs.String("job", j.id), obs.String("name", j.name))
	defer sp.End()
	if s.testHookAnalyze != nil {
		s.testHookAnalyze(j)
	}
	s.stage(j, "analyze")
	var res *analysis.Result
	var err error
	if j.stream != nil {
		// Streamed upload: the per-event passes already ran while the
		// body arrived; only the closure and detection remain.
		res, err = j.stream.FinishSpanned(sp)
	} else {
		res, err = s.pipeline.AnalyzeSpanned(j.tr, sp)
	}
	if err != nil {
		return nil, err
	}
	s.stage(j, "render")
	tr := res.Trace
	rep := &report.FileReport{File: j.name, Trace: tr, Result: res}
	art := &artifacts{Stats: res.Stats}
	var buf bytes.Buffer
	if err := report.RenderJSON(&buf, []*report.FileReport{rep}); err != nil {
		return nil, fmt.Errorf("render report: %w", err)
	}
	art.Report = append([]byte(nil), buf.Bytes()...)
	bundle := report.BuildBundle([]*report.FileReport{rep})
	buf.Reset()
	if err := bundle.WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("render evidence: %w", err)
	}
	art.Evidence = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := provenance.WriteHTML(&buf, bundle); err != nil {
		return nil, fmt.Errorf("render triage: %w", err)
	}
	art.Triage = append([]byte(nil), buf.Bytes()...)
	for _, r := range res.Races {
		art.Races = append(art.Races, raceMeta{
			Site:      provenance.SiteString(tr, r.Key()),
			UseMethod: tr.MethodName(r.Use.Method),
		})
	}
	sp.SetAttr(obs.Int("races", len(art.Races)))
	return art, nil
}

// publishCacheGauges mirrors cache occupancy to obs.
func (s *Server) publishCacheGauges() {
	st := s.cache.stats()
	gCacheBytes.Set(st.Bytes)
	gCacheEntries.Set(int64(st.Entries))
}

// persist writes a finished job's artifacts (or its failure record)
// under ResultsDir/<job-id>/ before the job turns terminal, so a
// draining shutdown leaves every accepted job's outcome on disk.
func (s *Server) persist(j *job, art *artifacts) {
	if s.cfg.ResultsDir == "" {
		return
	}
	s.stage(j, "persist")
	dir := filepath.Join(s.cfg.ResultsDir, j.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	if art != nil {
		_ = os.WriteFile(filepath.Join(dir, "report.json"), art.Report, 0o644)
		_ = os.WriteFile(filepath.Join(dir, "evidence.json"), art.Evidence, 0o644)
		_ = os.WriteFile(filepath.Join(dir, "triage.html"), art.Triage, 0o644)
	}
	snap := j.snapshot()
	// The snapshot runs before the terminal transition; record the
	// state the job is about to enter.
	if art != nil {
		snap.State = api.StateDone
		snap.Races = len(art.Races)
	} else {
		snap.State = api.StateFailed
	}
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err == nil {
		_ = os.WriteFile(filepath.Join(dir, "job.json"), append(raw, '\n'), 0o644)
	}
}

// persistConfirm refreshes the persisted job record and evidence
// after a confirm run completes.
func (s *Server) persistConfirm(j *job) {
	if s.cfg.ResultsDir == "" {
		return
	}
	dir := filepath.Join(s.cfg.ResultsDir, j.id)
	snap := j.snapshot()
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err == nil {
		_ = os.WriteFile(filepath.Join(dir, "job.json"), append(raw, '\n'), 0o644)
	}
	if ev, ok := j.evidenceBytes(); ok {
		_ = os.WriteFile(filepath.Join(dir, "evidence.json"), ev, 0o644)
	}
}

// submit is the accept path: cache lookup by content, then decode,
// then a non-blocking enqueue. It returns the registered job and
// whether it was answered from the cache; errors carry an HTTP
// status.
func (s *Server) submit(raw []byte, name, app, sha string) (*job, bool, *httpError) {
	key := sha + "|" + s.fp
	if art, ok := s.cache.get(key); ok {
		cCacheHits.Inc()
		j, err := s.register(name, app, sha)
		if err != nil {
			return nil, false, &httpError{http.StatusServiceUnavailable, err.Error()}
		}
		s.setState(j, api.StateDone, func() {
			j.cached = true
			j.art = art
		})
		cJobsCompleted.Inc()
		s.persist(j, art)
		return j, true, nil
	}
	cCacheMisses.Inc()
	tr, err := trace.DecodeAuto(bytes.NewReader(raw))
	if err != nil {
		return nil, false, &httpError{http.StatusBadRequest, fmt.Sprintf("decode: %v", err)}
	}
	if err := tr.Validate(); err != nil {
		return nil, false, &httpError{http.StatusBadRequest, fmt.Sprintf("trace validation: %v", err)}
	}
	j, rerr := s.register(name, app, sha)
	if rerr != nil {
		return nil, false, &httpError{http.StatusServiceUnavailable, rerr.Error()}
	}
	j.tr = tr
	select {
	case s.queue <- j:
		gQueueDepth.Set(int64(len(s.queue)))
		return j, false, nil
	default:
		// Queue full: reject without blocking. The job record is
		// withdrawn — a 429 submission never existed.
		s.withdraw(j)
		cJobsRejected.Inc()
		return nil, false, &httpError{http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d queued); retry later", s.cfg.QueueDepth)}
	}
}

// submitStreamed is the accept path for a streamed upload
// (Config.Stream): the per-event analysis already ran while the body
// arrived, so there is no decode step — just the post-upload cache
// lookup and a non-blocking enqueue of the finalization work. On a
// cache hit the streamed analysis is discarded unfinished.
func (s *Server) submitStreamed(sa *analysis.StreamAnalyzer, name, app, sha string) (*job, bool, *httpError) {
	key := sha + "|" + s.fp
	if art, ok := s.cache.get(key); ok {
		cCacheHits.Inc()
		j, err := s.register(name, app, sha)
		if err != nil {
			return nil, false, &httpError{http.StatusServiceUnavailable, err.Error()}
		}
		s.setState(j, api.StateDone, func() {
			j.cached = true
			j.art = art
		})
		cJobsCompleted.Inc()
		s.persist(j, art)
		return j, true, nil
	}
	cCacheMisses.Inc()
	j, rerr := s.register(name, app, sha)
	if rerr != nil {
		return nil, false, &httpError{http.StatusServiceUnavailable, rerr.Error()}
	}
	j.stream = sa
	select {
	case s.queue <- j:
		gQueueDepth.Set(int64(len(s.queue)))
		return j, false, nil
	default:
		s.withdraw(j)
		cJobsRejected.Inc()
		return nil, false, &httpError{http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d queued); retry later", s.cfg.QueueDepth)}
	}
}

// withdraw removes a just-registered job that could not be enqueued.
func (s *Server) withdraw(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, j.id)
	if n := len(s.order); n > 0 && s.order[n-1] == j.id {
		s.order = s.order[:n-1]
	}
	s.states[api.StateQueued]--
	s.publishStateGauges()
}

// statsSnapshot renders /v1/stats.
func (s *Server) statsSnapshot() api.Stats {
	s.mu.Lock()
	by := make(map[string]int, len(s.states))
	for k, v := range s.states {
		if v != 0 {
			by[k] = v
		}
	}
	s.mu.Unlock()
	return api.Stats{
		JobsByState: by,
		QueueDepth:  len(s.queue),
		QueueCap:    s.cfg.QueueDepth,
		Cache:       s.cache.stats(),
	}
}

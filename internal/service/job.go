package service

import (
	"sync"

	"cafa/internal/analysis"
	"cafa/internal/service/api"
	"cafa/internal/trace"
)

// job is one submission's lifecycle record. State mutations go
// through update so every change wakes long-poll and SSE watchers;
// reads go through snapshot, which hands out the api.Job wire form.
type job struct {
	mu sync.Mutex

	id     string
	name   string
	app    string
	sha    string
	cached bool

	state    string
	progress string
	errMsg   string

	// tr holds the decoded trace between accept and analysis; the
	// worker drops it once artifacts exist so finished jobs retain
	// only their rendered outputs.
	tr *trace.Trace

	// stream holds the per-event analysis advanced during the upload
	// (Config.Stream); the worker finalizes it instead of running the
	// batch pipeline, then drops it with tr.
	stream *analysis.StreamAnalyzer

	// art is the rendered result (owned by the cache on hits). The
	// confirm step stores its annotated evidence separately in
	// evidenceConfirmed — cache entries stay immutable.
	art               *artifacts
	evidenceConfirmed []byte

	confirm *api.Confirm

	// notify is closed and replaced on every update; watchers grab
	// the current channel, then re-snapshot when it closes.
	notify chan struct{}
}

func newJob(id, name, app, sha string) *job {
	return &job{
		id: id, name: name, app: app, sha: sha,
		state:  api.StateQueued,
		notify: make(chan struct{}),
	}
}

// update applies fn under the job lock and broadcasts the change.
func (j *job) update(fn func()) {
	j.mu.Lock()
	fn()
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// waitCh returns the channel closed at the next update. Grab it
// before snapshotting to avoid missing a transition.
func (j *job) waitCh() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.notify
}

// snapshot renders the job's wire form.
func (j *job) snapshot() api.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := api.Job{
		ID:       j.id,
		State:    j.state,
		Name:     j.name,
		App:      j.app,
		SHA256:   j.sha,
		Cached:   j.cached,
		Progress: j.progress,
		Error:    j.errMsg,
	}
	if j.art != nil {
		out.Races = len(j.art.Races)
	}
	if j.confirm != nil {
		c := *j.confirm
		c.Confirmations = append([]api.Confirmation(nil), j.confirm.Confirmations...)
		out.Confirm = &c
	}
	return out
}

// artifact returns the rendered artifacts if the job completed.
func (j *job) artifact() (*artifacts, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != api.StateDone || j.art == nil {
		return nil, false
	}
	return j.art, true
}

// evidenceBytes returns the served evidence: the confirm-annotated
// copy when present, the pristine artifact otherwise.
func (j *job) evidenceBytes() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != api.StateDone || j.art == nil {
		return nil, false
	}
	if j.evidenceConfirmed != nil {
		return j.evidenceConfirmed, true
	}
	return j.art.Evidence, true
}

package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cafa/internal/service/api"
	"cafa/internal/trace"
)

// TestStreamSubmitParity: a streaming server serves byte-identical
// artifacts to a buffered one for the same trace, over both codecs.
func TestStreamSubmitParity(t *testing.T) {
	raw := testTrace(t, 1)
	tr, err := trace.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := tr.EncodeText(&txt); err != nil {
		t.Fatal(err)
	}
	buffered := newTestServer(t, Config{Workers: 2})
	streamed := newTestServer(t, Config{Workers: 2, Stream: true})
	for name, enc := range map[string][]byte{"binary": raw, "text": txt.Bytes()} {
		var bodies [2]map[string][]byte
		for i, s := range []*Server{buffered, streamed} {
			rec, j := post(t, s, enc, "?name=zxing.trace")
			if rec.Code != http.StatusAccepted {
				t.Fatalf("%s: submit = %d: %s", name, rec.Code, rec.Body.String())
			}
			j = waitDone(t, s, j.ID)
			if j.State != api.StateDone {
				t.Fatalf("%s: job = %+v", name, j)
			}
			bodies[i] = map[string][]byte{}
			for _, path := range []string{"/report", "/evidence", "/triage"} {
				rec := get(t, s, "/v1/jobs/"+j.ID+path)
				if rec.Code != http.StatusOK {
					t.Fatalf("%s%s = %d", name, path, rec.Code)
				}
				bodies[i][path] = append([]byte(nil), rec.Body.Bytes()...)
			}
		}
		for _, path := range []string{"/report", "/evidence", "/triage"} {
			if !bytes.Equal(bodies[0][path], bodies[1][path]) {
				t.Errorf("%s: %s differs between buffered and streamed servers", name, path)
			}
		}
	}
}

// TestStreamCacheHitAfterUpload: the cache key is the digest of the
// complete body, so a re-submitted trace is served from cache even
// though streaming cannot short-circuit the upload.
func TestStreamCacheHitAfterUpload(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, Stream: true})
	raw := testTrace(t, 2)

	rec, j := post(t, s, raw, "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", rec.Code, rec.Body.String())
	}
	first := waitDone(t, s, j.ID)
	if first.State != api.StateDone {
		t.Fatalf("first job = %+v", first)
	}

	rec, j2 := post(t, s, raw, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	if !j2.Cached || j2.State != api.StateDone {
		t.Fatalf("resubmit job = %+v, want cached+done", j2)
	}
	if j2.SHA256 != first.SHA256 {
		t.Fatalf("sha mismatch: %s vs %s", j2.SHA256, first.SHA256)
	}
	st := s.CacheStats()
	if st.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.Hits)
	}

	// The cached artifact serves for the second job too.
	a := get(t, s, "/v1/jobs/"+first.ID+"/report")
	b := get(t, s, "/v1/jobs/"+j2.ID+"/report")
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Error("cached report differs from computed one")
	}
}

// TestStreamChunkedUpload: the body arrives over a pipe in small
// chunks (no Content-Length, as with chunked transfer encoding); the
// analysis ingests it as it arrives and completes normally.
func TestStreamChunkedUpload(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Stream: true})
	raw := testTrace(t, 3)

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		defer pw.Close()
		for len(raw) > 0 {
			n := 256
			if n > len(raw) {
				n = len(raw)
			}
			if _, err := pw.Write(raw[:n]); err != nil {
				done <- err
				return
			}
			raw = raw[n:]
		}
		done <- nil
	}()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs?name=chunked.trace", pr)
	req.ContentLength = -1
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body.String())
	}
	var j api.Job
	if err := json.Unmarshal(rec.Body.Bytes(), &j); err != nil {
		t.Fatal(err)
	}
	j = waitDone(t, s, j.ID)
	if j.State != api.StateDone {
		t.Fatalf("job = %+v", j)
	}
}

// TestStreamSubmitErrors: streaming rejects garbage, validation
// failures, and empty bodies with the same statuses as buffered mode.
func TestStreamSubmitErrors(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Stream: true})

	if rec, _ := post(t, s, []byte("not a trace at all"), ""); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage = %d, want 400", rec.Code)
	}
	if rec, _ := post(t, s, nil, ""); rec.Code != http.StatusBadRequest {
		t.Errorf("empty = %d, want 400", rec.Code)
	} else if !strings.Contains(rec.Body.String(), "empty request body") {
		t.Errorf("empty body message = %s", rec.Body.String())
	}

	// Structurally decodable but semantically invalid: duplicate begin.
	bad := trace.New()
	bad.Tasks[1] = trace.TaskInfo{ID: 1, Kind: trace.KindThread, Name: "T"}
	bad.Append(trace.Entry{Task: 1, Op: trace.OpBegin})
	bad.Append(trace.Entry{Task: 1, Op: trace.OpBegin, Time: 1})
	var buf bytes.Buffer
	if err := bad.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	rec, _ := post(t, s, buf.Bytes(), "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("invalid trace = %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "validation") {
		t.Errorf("invalid trace message = %s", rec.Body.String())
	}
}

// Package api defines the wire types of the cafa-serve HTTP API,
// shared by the server (internal/service) and the Go client
// (internal/service/client). Artifact endpoints (report, evidence,
// triage) serve the same byte formats the batch CLIs write, so they
// need no types here.
package api

// Job states. A job is terminal in StateDone or StateFailed.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is the job-lifecycle record returned by POST /v1/jobs,
// GET /v1/jobs/{id}, and streamed by GET /v1/jobs/{id}/events.
type Job struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Name   string `json:"name"`
	App    string `json:"app,omitempty"`
	SHA256 string `json:"sha256"`
	// Cached reports that the submission was answered from the
	// content-addressed result cache without re-running analysis.
	Cached bool `json:"cached"`
	// Progress is the current pipeline stage while running (mirrors
	// the obs span stream's serve.stage markers).
	Progress string `json:"progress,omitempty"`
	// Races is the reported use-free race count, valid once done.
	Races int    `json:"races"`
	Error string `json:"error,omitempty"`
	// Confirm is the async replay-confirmation status, present once
	// POST /v1/jobs/{id}/confirm has been accepted.
	Confirm *Confirm `json:"confirm,omitempty"`
}

// Terminal reports whether the job reached a final state.
func (j *Job) Terminal() bool { return j.State == StateDone || j.State == StateFailed }

// Confirm states (Confirm.State).
const (
	ConfirmRunning = "running"
	ConfirmDone    = "done"
	ConfirmFailed  = "failed"
)

// Confirm is the adversarial-replay confirmation attached to a job.
type Confirm struct {
	State string `json:"state"`
	App   string `json:"app"`
	// Checked counts races replayed so far (streams while running).
	Checked       int            `json:"checked"`
	Confirmations []Confirmation `json:"confirmations"`
	Error         string         `json:"error,omitempty"`
}

// Confirmation is one successful adversarial reproduction: the
// schedule under which the reported race actually crashed.
type Confirmation struct {
	Site      string `json:"site"`
	UseMethod string `json:"useMethod"`
	Seed      uint64 `json:"seed"`
	DelayMs   int64  `json:"delayMs"`
	Crash     string `json:"crash"`
}

// Stats is the operational snapshot served by GET /v1/stats.
type Stats struct {
	JobsByState map[string]int `json:"jobsByState"`
	QueueDepth  int            `json:"queueDepth"`
	QueueCap    int            `json:"queueCap"`
	Cache       CacheStats     `json:"cache"`
}

// CacheStats describes the content-addressed result cache.
type CacheStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	Budget  int64 `json:"budget"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Evicted int64 `json:"evicted"`
}

// Error is the JSON error envelope for non-2xx responses.
type Error struct {
	Error string `json:"error"`
}

package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cafa/internal/hb"
	"cafa/internal/trace"
)

func TestVCBasics(t *testing.T) {
	a := New(3)
	b := New(3)
	if !a.LEQ(b) || !b.LEQ(a) {
		t.Error("zero clocks must be equal")
	}
	a.Tick(1)
	if a.LEQ(b) {
		t.Error("ticked clock cannot be <= zero")
	}
	if !b.LEQ(a) {
		t.Error("zero must be <= ticked")
	}
	b.Tick(2)
	if a.LEQ(b) || b.LEQ(a) {
		t.Error("incomparable clocks compared as ordered")
	}
	c := a.Copy()
	c.Join(b)
	if !a.LEQ(c) || !b.LEQ(c) {
		t.Error("join must dominate both operands")
	}
	if c.Get(1) != 1 || c.Get(2) != 1 || c.Get(0) != 0 || c.Get(99) != 0 {
		t.Errorf("join = %v", c)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func TestVCQuickProperties(t *testing.T) {
	// Join is an upper bound; LEQ is reflexive and transitive.
	mk := func(xs []uint8) VC {
		v := New(4)
		for i, x := range xs {
			if i >= 4 {
				break
			}
			v[i] = uint64(x)
		}
		return v
	}
	upper := func(a, b []uint8) bool {
		va, vb := mk(a), mk(b)
		j := va.Copy()
		j.Join(vb)
		return va.LEQ(j) && vb.LEQ(j)
	}
	if err := quick.Check(upper, nil); err != nil {
		t.Error(err)
	}
	refl := func(a []uint8) bool {
		v := mk(a)
		return v.LEQ(v)
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
	trans := func(a, b, c []uint8) bool {
		va, vb, vc := mk(a), mk(b), mk(c)
		if va.LEQ(vb) && vb.LEQ(vc) {
			return va.LEQ(vc)
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Error(err)
	}
}

func TestEpoch(t *testing.T) {
	v := New(3)
	v[1] = 5
	if !(Epoch{Slot: 1, Clock: 5}).LEQVC(v) {
		t.Error("epoch 5@1 must be <= clock with slot1=5")
	}
	if (Epoch{Slot: 1, Clock: 6}).LEQVC(v) {
		t.Error("epoch 6@1 must not be <= clock with slot1=5")
	}
}

// mkThreadTrace builds a simple two-thread trace with a fork edge.
func mkForkTrace() *trace.Trace {
	tr := trace.New()
	tr.Tasks[1] = trace.TaskInfo{ID: 1, Kind: trace.KindThread, Name: "main"}
	tr.Tasks[2] = trace.TaskInfo{ID: 2, Kind: trace.KindThread, Name: "child"}
	es := []trace.Entry{
		{Task: 1, Op: trace.OpBegin},
		{Task: 1, Op: trace.OpWrite, Var: 7}, // 1
		{Task: 1, Op: trace.OpFork, Target: 2},
		{Task: 2, Op: trace.OpBegin},
		{Task: 2, Op: trace.OpRead, Var: 7},  // 4
		{Task: 1, Op: trace.OpWrite, Var: 7}, // 5 — races with 4
		{Task: 2, Op: trace.OpEnd},
		{Task: 1, Op: trace.OpJoin, Target: 2},
		{Task: 1, Op: trace.OpWrite, Var: 7}, // 8 — ordered after join
		{Task: 1, Op: trace.OpEnd},
	}
	for i, e := range es {
		e.Time = int64(i)
		tr.Append(e)
	}
	return tr
}

func TestComputeOrdering(t *testing.T) {
	tr := mkForkTrace()
	c, err := Compute(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Ordered(tr, 1, 4) {
		t.Error("write before fork must order before child's read")
	}
	if c.Ordered(tr, 5, 4) || c.Ordered(tr, 4, 5) {
		t.Error("post-fork write and child read must be concurrent")
	}
	if !c.Ordered(tr, 4, 8) {
		t.Error("child read must order before post-join write")
	}
}

func TestFastTrackFindsThreadRace(t *testing.T) {
	tr := mkForkTrace()
	reports, err := FastTrack(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("FastTrack missed the read-write race")
	}
	found := false
	for _, r := range reports {
		if r.AIdx == 4 && r.BIdx == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("reports = %+v, want (4,5)", reports)
	}
}

func TestFastTrackRespectsLocks(t *testing.T) {
	tr := trace.New()
	tr.Tasks[1] = trace.TaskInfo{ID: 1, Kind: trace.KindThread, Name: "a"}
	tr.Tasks[2] = trace.TaskInfo{ID: 2, Kind: trace.KindThread, Name: "b"}
	es := []trace.Entry{
		{Task: 1, Op: trace.OpBegin},
		{Task: 2, Op: trace.OpBegin},
		{Task: 1, Op: trace.OpLock, Lock: 3},
		{Task: 1, Op: trace.OpWrite, Var: 7},
		{Task: 1, Op: trace.OpUnlock, Lock: 3},
		{Task: 2, Op: trace.OpLock, Lock: 3},
		{Task: 2, Op: trace.OpWrite, Var: 7},
		{Task: 2, Op: trace.OpUnlock, Lock: 3},
		{Task: 1, Op: trace.OpEnd},
		{Task: 2, Op: trace.OpEnd},
	}
	for i, e := range es {
		e.Time = int64(i)
		tr.Append(e)
	}
	reports, err := FastTrack(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Errorf("lock-protected accesses reported: %+v", reports)
	}
}

func TestFastTrackBlindToIntraLooperRaces(t *testing.T) {
	// Two concurrent events on one looper conflict; the conventional
	// detector folds them into the looper's program order and reports
	// nothing — the paper's core criticism.
	tr := trace.New()
	tr.Tasks[1] = trace.TaskInfo{ID: 1, Kind: trace.KindThread, Name: "looper"}
	tr.Tasks[2] = trace.TaskInfo{ID: 2, Kind: trace.KindThread, Name: "s1"}
	tr.Tasks[3] = trace.TaskInfo{ID: 3, Kind: trace.KindThread, Name: "s2"}
	tr.Tasks[4] = trace.TaskInfo{ID: 4, Kind: trace.KindEvent, Name: "evA", Looper: 1, Queue: 1}
	tr.Tasks[5] = trace.TaskInfo{ID: 5, Kind: trace.KindEvent, Name: "evB", Looper: 1, Queue: 1}
	es := []trace.Entry{
		{Task: 1, Op: trace.OpBegin},
		{Task: 2, Op: trace.OpBegin},
		{Task: 3, Op: trace.OpBegin},
		{Task: 2, Op: trace.OpSend, Target: 4, Queue: 1},
		{Task: 3, Op: trace.OpSend, Target: 5, Queue: 1},
		{Task: 2, Op: trace.OpEnd},
		{Task: 3, Op: trace.OpEnd},
		{Task: 4, Op: trace.OpBegin, Queue: 1},
		{Task: 4, Op: trace.OpWrite, Var: 7},
		{Task: 4, Op: trace.OpEnd},
		{Task: 5, Op: trace.OpBegin, Queue: 1},
		{Task: 5, Op: trace.OpWrite, Var: 7},
		{Task: 5, Op: trace.OpEnd},
		{Task: 1, Op: trace.OpEnd},
	}
	for i, e := range es {
		e.Time = int64(i)
		tr.Append(e)
	}
	reports, err := FastTrack(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Errorf("conventional detector should miss intra-looper races, got %+v", reports)
	}
	// The event-driven model sees it.
	g, err := hb.Build(tr, hb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Concurrent(8, 11) {
		t.Error("event-driven model must see the conflicting writes as concurrent")
	}
}

// genThreadTrace generates a random structurally-valid thread-only
// trace (no locks: the two models deliberately differ on lock edges).
func genThreadTrace(r *rand.Rand) *trace.Trace {
	tr := trace.New()
	type th struct {
		id    trace.TaskID
		live  bool
		ended bool
	}
	var threads []*th
	nextID := trace.TaskID(1)
	add := func() *th {
		t := &th{id: nextID}
		nextID++
		tr.Tasks[t.id] = trace.TaskInfo{ID: t.id, Kind: trace.KindThread, Name: "t"}
		return t
	}
	emit := func(e trace.Entry) {
		e.Time = int64(len(tr.Entries))
		tr.Append(e)
	}
	root := add()
	root.live = true
	threads = append(threads, root)
	emit(trace.Entry{Task: root.id, Op: trace.OpBegin})
	var pending []*th
	livePick := func() *th {
		var cands []*th
		for _, t := range threads {
			if t.live {
				cands = append(cands, t)
			}
		}
		if len(cands) == 0 {
			return nil
		}
		return cands[r.Intn(len(cands))]
	}
	steps := 30 + r.Intn(40)
	for i := 0; i < steps; i++ {
		t := livePick()
		if t == nil {
			break
		}
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			op := trace.OpRead
			if r.Intn(2) == 0 {
				op = trace.OpWrite
			}
			emit(trace.Entry{Task: t.id, Op: op, Var: trace.VarID(1 + r.Intn(4))})
		case 4:
			if len(threads) < 8 {
				u := add()
				threads = append(threads, u)
				pending = append(pending, u)
				emit(trace.Entry{Task: t.id, Op: trace.OpFork, Target: u.id})
			}
		case 5:
			if len(pending) > 0 {
				u := pending[0]
				pending = pending[1:]
				u.live = true
				emit(trace.Entry{Task: u.id, Op: trace.OpBegin})
			}
		case 6:
			emit(trace.Entry{Task: t.id, Op: trace.OpNotify, Monitor: trace.MonitorID(1 + r.Intn(2))})
		case 7:
			emit(trace.Entry{Task: t.id, Op: trace.OpWait, Monitor: trace.MonitorID(1 + r.Intn(2))})
		case 8:
			var ended *th
			for _, u := range threads {
				if u.ended && u.id != t.id {
					ended = u
					break
				}
			}
			if ended != nil {
				emit(trace.Entry{Task: t.id, Op: trace.OpJoin, Target: ended.id})
			}
		case 9:
			live := 0
			for _, u := range threads {
				if u.live {
					live++
				}
			}
			if live > 1 {
				t.live = false
				t.ended = true
				emit(trace.Entry{Task: t.id, Op: trace.OpEnd})
			}
		}
	}
	for _, t := range threads {
		if t.live {
			emit(trace.Entry{Task: t.id, Op: trace.OpEnd})
		}
	}
	return tr
}

func TestCrossValidateAgainstGraphModel(t *testing.T) {
	// Property: on thread-only traces (no locks), the vector-clock
	// model and the happens-before graph agree on every ordering of
	// memory accesses.
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 120; iter++ {
		tr := genThreadTrace(r)
		if err := tr.Validate(); err != nil {
			t.Fatalf("iter %d: generated trace invalid: %v", iter, err)
		}
		g, err := hb.Build(tr, hb.Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		c, err := Compute(tr)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		var accesses []int
		for i := range tr.Entries {
			switch tr.Entries[i].Op {
			case trace.OpRead, trace.OpWrite:
				accesses = append(accesses, i)
			}
		}
		for _, i := range accesses {
			for _, j := range accesses {
				if i == j {
					continue
				}
				want := g.Ordered(i, j)
				got := c.Ordered(tr, i, j)
				if want != got {
					t.Fatalf("iter %d: Ordered(%d,%d): graph=%v vclock=%v\nentry i: %s\nentry j: %s",
						iter, i, j, want, got, tr.Entries[i].String(), tr.Entries[j].String())
				}
			}
		}
	}
}

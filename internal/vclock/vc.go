// Package vclock implements a classic thread-based happens-before
// race detector in the style of FastTrack (Flanagan & Freund, PLDI
// 2009): vector clocks, lock release→acquire edges, and total program
// order per thread.
//
// Applied to an event-driven trace it does what §7.1 of the CAFA
// paper criticizes: every event of a looper thread is folded into the
// looper's single timeline, so logically concurrent events appear
// ordered and intra-looper races are invisible. The package exists as
// (a) that baseline, and (b) an independent implementation of
// happens-before used to cross-validate the graph engine on
// thread-only traces.
package vclock

import "fmt"

// VC is a vector clock: one logical clock per task slot.
type VC []uint64

// New returns a zero clock of width n.
func New(n int) VC { return make(VC, n) }

// Copy returns an independent copy.
func (v VC) Copy() VC {
	w := make(VC, len(v))
	copy(w, v)
	return w
}

// Tick increments slot i.
func (v VC) Tick(i int) { v[i]++ }

// Join sets v to the pointwise maximum of v and w.
func (v VC) Join(w VC) {
	for i := range w {
		if w[i] > v[i] {
			v[i] = w[i]
		}
	}
}

// LEQ reports v ≤ w pointwise (v happens-before-or-equals w).
func (v VC) LEQ(w VC) bool {
	for i := range v {
		var wi uint64
		if i < len(w) {
			wi = w[i]
		}
		if v[i] > wi {
			return false
		}
	}
	return true
}

// Get returns slot i (0 beyond the width).
func (v VC) Get(i int) uint64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

func (v VC) String() string { return fmt.Sprintf("%v", []uint64(v)) }

// Epoch is FastTrack's scalar clock@slot representation of a single
// access.
type Epoch struct {
	Slot  int
	Clock uint64
}

// LEQVC reports epoch ≤ the clock's slot entry.
func (e Epoch) LEQVC(v VC) bool { return e.Clock <= v.Get(e.Slot) }

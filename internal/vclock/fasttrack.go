package vclock

import (
	"cafa/internal/trace"
)

// Report is a low-level race found by the thread-based detector.
type Report struct {
	Var  trace.VarID
	AIdx int // earlier access
	BIdx int // later access
}

// Clocks holds the per-entry vector clocks of the thread-based model.
// It materializes one clock copy per entry, so it is meant for the
// ordering oracle on small traces (tests); the FastTrack detector
// itself streams and never builds it.
type Clocks struct {
	At    []VC // clock of the performing task at each entry
	Slots map[trace.TaskID]int
}

// slotOf folds events into their looper thread: the naive application
// of a thread-based tool to an event-driven trace.
func slotOf(tr *trace.Trace, slots map[trace.TaskID]int, next *int, t trace.TaskID) int {
	id := taskKey(tr, t)
	if s, ok := slots[id]; ok {
		return s
	}
	s := *next
	*next = s + 1
	slots[id] = s
	return s
}

func taskKey(tr *trace.Trace, t trace.TaskID) trace.TaskID {
	if ti, ok := tr.Tasks[t]; ok && ti.Kind == trace.KindEvent {
		return ti.Looper
	}
	return t
}

// engine is the streaming state of the conventional happens-before
// model: total program order per thread (events folded in),
// fork/join, notify/wait, unlock→lock, send→begin, and IPC edges.
type engine struct {
	tr        *trace.Trace
	slots     map[trace.TaskID]int
	clocks    []VC
	lockRel   map[trace.LockID]VC
	monRel    map[trace.MonitorID]VC
	sendClock map[trace.TaskID]VC
	txnClock  map[trace.TxnID]VC
	endClock  map[trace.TaskID]VC
}

func newEngine(tr *trace.Trace) *engine {
	slots := make(map[trace.TaskID]int)
	next := 0
	// Pre-assign slots in first-appearance order for determinism. Fork
	// and send targets get slots too, even if they never begin within
	// the trace window.
	for i := range tr.Entries {
		e := &tr.Entries[i]
		slotOf(tr, slots, &next, e.Task)
		switch e.Op {
		case trace.OpFork, trace.OpJoin, trace.OpSend, trace.OpSendAtFront:
			slotOf(tr, slots, &next, e.Target)
		}
	}
	clocks := make([]VC, next)
	for i := range clocks {
		clocks[i] = New(next)
		clocks[i].Tick(i)
	}
	return &engine{
		tr:        tr,
		slots:     slots,
		clocks:    clocks,
		lockRel:   make(map[trace.LockID]VC),
		monRel:    make(map[trace.MonitorID]VC),
		sendClock: make(map[trace.TaskID]VC),
		txnClock:  make(map[trace.TxnID]VC),
		endClock:  make(map[trace.TaskID]VC),
	}
}

// step applies entry i and returns the performing slot and its
// current clock (a live reference — copy before storing).
func (en *engine) step(i int) (int, VC) {
	e := &en.tr.Entries[i]
	s := en.slots[taskKey(en.tr, e.Task)]
	c := en.clocks[s]
	switch e.Op {
	case trace.OpBegin:
		if sc, ok := en.sendClock[e.Task]; ok {
			c.Join(sc)
		}
	case trace.OpEnd:
		en.endClock[e.Task] = c.Copy()
	case trace.OpFork:
		ts := en.slots[taskKey(en.tr, e.Target)]
		en.clocks[ts].Join(c)
		c.Tick(s)
	case trace.OpJoin:
		if ec, ok := en.endClock[e.Target]; ok {
			c.Join(ec)
		}
	case trace.OpLock:
		if rc, ok := en.lockRel[e.Lock]; ok {
			c.Join(rc)
		}
	case trace.OpUnlock:
		en.lockRel[e.Lock] = c.Copy()
		c.Tick(s)
	case trace.OpNotify:
		// Accumulate across notifiers: a wait is ordered after every
		// earlier notify on the monitor, matching the graph model.
		acc := en.monRel[e.Monitor]
		if acc == nil {
			acc = New(len(en.clocks))
			en.monRel[e.Monitor] = acc
		}
		acc.Join(c)
		c.Tick(s)
	case trace.OpWait:
		if rc, ok := en.monRel[e.Monitor]; ok {
			c.Join(rc)
		}
	case trace.OpSend, trace.OpSendAtFront:
		en.sendClock[e.Target] = c.Copy()
		c.Tick(s)
	case trace.OpRPCCall, trace.OpRPCReply, trace.OpMsgSend:
		en.txnClock[e.Txn] = c.Copy()
		c.Tick(s)
	case trace.OpRPCHandle, trace.OpRPCRet, trace.OpMsgRecv:
		if tc, ok := en.txnClock[e.Txn]; ok {
			c.Join(tc)
		}
	}
	return s, c
}

// Compute walks the trace once, materializing the per-entry clocks of
// the conventional model (for the ordering oracle; O(entries × slots)
// memory — use on small traces).
func Compute(tr *trace.Trace) (*Clocks, error) {
	en := newEngine(tr)
	out := &Clocks{At: make([]VC, len(tr.Entries)), Slots: en.slots}
	for i := range tr.Entries {
		_, c := en.step(i)
		out.At[i] = c.Copy()
	}
	return out, nil
}

// Ordered reports entry i happens-before entry j under the
// conventional model.
func (c *Clocks) Ordered(tr *trace.Trace, i, j int) bool {
	if i >= j {
		return false
	}
	si := c.Slots[taskKey(tr, tr.Entries[i].Task)]
	// i ≺ j iff i's clock component is included in j's view.
	return c.At[i].Get(si) <= c.At[j].Get(si)
}

// varState is FastTrack's per-location metadata. The read set is kept
// sparse (slot → clock), bounding memory by the number of distinct
// reading threads rather than the total thread count.
type varState struct {
	write    Epoch
	lastWIdx int
	read     map[int]uint64 // slot -> last read clock
	readIdx  map[int]int    // slot -> entry index of that read
}

// FastTrack runs the epoch-based detector over the trace's memory
// accesses (both scalar and pointer) in one streaming pass. Folding
// events into loopers makes this exactly the "conventional data-race
// detector" the paper contrasts with: it cannot see intra-looper
// races.
func FastTrack(tr *trace.Trace) ([]Report, error) {
	en := newEngine(tr)
	vars := make(map[trace.VarID]*varState)
	var reports []Report
	for i := range tr.Entries {
		s, c := en.step(i)
		e := &tr.Entries[i]
		var isWrite bool
		switch e.Op {
		case trace.OpRead, trace.OpPtrRead:
			isWrite = false
		case trace.OpWrite, trace.OpPtrWrite:
			isWrite = true
		default:
			continue
		}
		vs := vars[e.Var]
		if vs == nil {
			vs = &varState{write: Epoch{Slot: -1}, lastWIdx: -1,
				read: make(map[int]uint64), readIdx: make(map[int]int)}
			vars[e.Var] = vs
		}
		// Write-X race: previous write not ordered before this access.
		if vs.write.Slot >= 0 && vs.write.Slot != s && !vs.write.LEQVC(c) {
			reports = append(reports, Report{Var: e.Var, AIdx: vs.lastWIdx, BIdx: i})
		}
		if isWrite {
			// Read-write races against the read set.
			for slot, clk := range vs.read {
				if slot != s && clk > c.Get(slot) {
					reports = append(reports, Report{Var: e.Var, AIdx: vs.readIdx[slot], BIdx: i})
				}
			}
			vs.write = Epoch{Slot: s, Clock: c.Get(s)}
			vs.lastWIdx = i
			vs.read = make(map[int]uint64)
			vs.readIdx = make(map[int]int)
		} else {
			vs.read[s] = c.Get(s)
			vs.readIdx[s] = i
		}
	}
	return reports, nil
}

package detect

import (
	"testing"

	"cafa/internal/asm"
	"cafa/internal/dataflow"
	"cafa/internal/dvm"
	"cafa/internal/hb"
	"cafa/internal/lockset"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// pipeline assembles src, wires the system via build, runs it, and
// runs the full analysis with the given detector options.
func pipeline(t *testing.T, src string, opts Options, build func(s *sim.System, p *dvm.Program)) (*Result, *hb.Graph) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	s := sim.NewSystem(p, sim.Config{Tracer: col, Seed: 1})
	build(s, p)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := col.T.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	g, err := hb.Build(col.T, hb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := hb.Build(col.T, hb.Options{Conventional: true})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := lockset.Compute(col.T)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(Input{Trace: col.T, Graph: g, Conventional: conv, Locks: ls}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, g
}

// mytracksSrc reproduces Figure 1: onResume binds to a remote service
// over RPC; the service posts onServiceConnected back to the main
// looper; onDestroy nulls providerUtils. The use in
// onServiceConnected races with the free in onDestroy.
const mytracksSrc = `
.method updateTrack(this) regs=1
    return-void
.end

.method onServiceConnected(act) regs=3
    iget v1, act, providerUtils
    invoke-virtual updateTrack, v1
    return-void
.end

.method onBind(act) regs=5
    sget-int v1, mainQ
    const-method v2, onServiceConnected
    const-int v3, #0
    send v1, v2, v3, act
    const-int v4, #0
    return v4
.end

.method onResume(act) regs=5
    new v1, ProviderUtils
    iput v1, act, providerUtils
    sget-int v2, svc
    const-method v3, onBind
    rpc v2, v3, act -> v4
    return-void
.end

.method onDestroy(act) regs=2
    const-null v1
    iput v1, act, providerUtils
    return-void
.end
`

func buildMyTracks(t *testing.T) func(s *sim.System, p *dvm.Program) {
	return func(s *sim.System, p *dvm.Program) {
		main := s.AddLooper("main", 0)
		svc := s.AddService("TrackRecordingService", 1)
		s.Heap().SetStatic(p.FieldID("mainQ"), dvm.Int64(main.Handle()))
		s.Heap().SetStatic(p.FieldID("svc"), dvm.Int64(svc))
		act := s.Heap().New("MyTracksActivity")
		if err := s.Inject(0, main, "onResume", dvm.Obj(act.ID), 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Inject(100, main, "onDestroy", dvm.Obj(act.ID), 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFigure1MyTracksUseFreeRace(t *testing.T) {
	res, _ := pipeline(t, mytracksSrc, Options{}, buildMyTracks(t))
	if len(res.Races) != 1 {
		t.Fatalf("races = %d (%+v), want 1", len(res.Races), res.Stats)
	}
	r := res.Races[0]
	if r.Class != ClassIntraThread {
		t.Errorf("class = %v, want intra-thread", r.Class)
	}
	if got := r.Use.Var.Field(); got == 0 {
		t.Error("race has no field")
	}
}

// figure2Src reproduces Figure 2: a benign read-write conflict on a
// scalar between two concurrent events of one looper. The naive
// detector flags it; the use-free detector must not.
const figure2Src = `
.method onPause(term) regs=2
    const-int v1, #0
    iput-int v1, term, resizeAllowed
    return-void
.end

.method onLayout(term) regs=4
    iget-int v1, term, resizeAllowed
    const-int v2, #0
    if-int-eq v1, v2, out
    const-int v3, #80
    iput-int v3, term, columns
    iput-int v3, term, rows
out:
    return-void
.end

.method sysThread(arg) regs=4
    sget-int v1, mainQ
    const-method v2, onLayout
    const-int v3, #0
    sget v0, termObj
    send v1, v2, v3, v0
    return-void
.end
`

func buildFigure2(t *testing.T) func(s *sim.System, p *dvm.Program) {
	return func(s *sim.System, p *dvm.Program) {
		main := s.AddLooper("main", 0)
		s.Heap().SetStatic(p.FieldID("mainQ"), dvm.Int64(main.Handle()))
		term := s.Heap().New("TerminalView")
		term.Set(p.FieldID("resizeAllowed"), dvm.Int64(1))
		s.Heap().SetStatic(p.FieldID("termObj"), dvm.Obj(term.ID))
		if _, err := s.StartThread("sys", "sysThread", dvm.Null()); err != nil {
			t.Fatal(err)
		}
		if err := s.Inject(0, main, "onPause", dvm.Obj(term.ID), 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFigure2CommutativeEventsNotReported(t *testing.T) {
	res, g := pipeline(t, figure2Src, Options{}, buildFigure2(t))
	if len(res.Races) != 0 {
		t.Fatalf("use-free detector reported %d races on a scalar conflict", len(res.Races))
	}
	naive := Naive(g)
	if len(naive) == 0 {
		t.Fatal("naive detector must flag the read-write conflict")
	}
	foundResize := false
	for _, nr := range naive {
		f := nr.Var.Field()
		name := g.Trace().FieldName(f)
		if name == "resizeAllowed" {
			foundResize = true
			if nr.AWrite && nr.BWrite {
				t.Error("resizeAllowed conflict should be read-write")
			}
		}
	}
	if !foundResize {
		t.Error("naive detector missed the resizeAllowed conflict")
	}
}

// figure5Src reproduces Figure 5: onPause frees handler; onFocus uses
// it behind an if-eqz guard; onResume allocates before using. Both
// uses are commutative with the free and must be filtered.
const figure5Src = `
.method run(this) regs=1
    return-void
.end

.method onPause(act) regs=2
    const-null v1
    iput v1, act, handler
    return-void
.end

.method onFocus(act) regs=3
    iget v1, act, handler
    if-eqz v1, skip
    invoke-virtual run, v1
skip:
    return-void
.end

.method onResume(act) regs=3
    new v1, Handler
    iput v1, act, handler
    iget v2, act, handler
    invoke-virtual run, v2
    return-void
.end

.method sysThread(arg) regs=5
    sget-int v1, mainQ
    const-method v2, onFocus
    const-int v3, #0
    sget v0, actObj
    send v1, v2, v3, v0
    const-method v2, onResume
    send v1, v2, v3, v0
    return-void
.end
`

func buildFigure5(t *testing.T) func(s *sim.System, p *dvm.Program) {
	return func(s *sim.System, p *dvm.Program) {
		main := s.AddLooper("main", 0)
		s.Heap().SetStatic(p.FieldID("mainQ"), dvm.Int64(main.Handle()))
		act := s.Heap().New("Activity")
		h := s.Heap().New("Handler")
		act.Set(p.FieldID("handler"), dvm.Obj(h.ID))
		s.Heap().SetStatic(p.FieldID("actObj"), dvm.Obj(act.ID))
		if _, err := s.StartThread("sys", "sysThread", dvm.Null()); err != nil {
			t.Fatal(err)
		}
		// onPause arrives after onFocus/onResume so the uses actually
		// execute; the race is detected predictively either way, but
		// the guard branch is only logged when the pointer is non-null.
		if err := s.Inject(50, main, "onPause", dvm.Obj(act.ID), 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFigure5HeuristicsFilterCommutativeEvents(t *testing.T) {
	res, _ := pipeline(t, figure5Src, Options{}, buildFigure5(t))
	if len(res.Races) != 0 {
		for _, r := range res.Races {
			t.Logf("unexpected: %+v", r)
		}
		t.Fatalf("races = %d, want 0 (stats %+v)", len(res.Races), res.Stats)
	}
	if res.Stats.FilteredIfGuard == 0 {
		t.Error("if-guard filter never fired")
	}
	if res.Stats.FilteredIntraAlloc == 0 {
		t.Error("intra-event-allocation filter never fired")
	}
}

func TestFigure5AblationWithoutHeuristics(t *testing.T) {
	res, _ := pipeline(t, figure5Src, Options{DisableIfGuard: true, DisableIntraEventAlloc: true}, buildFigure5(t))
	if len(res.Races) < 2 {
		t.Fatalf("with heuristics off, races = %d, want >= 2", len(res.Races))
	}
}

// locksetSrc: a use and a free in two threads, both under the same
// lock — mutual exclusion, not a race.
const locksetSrc = `
.method run(this) regs=1
    return-void
.end

.method user(arg) regs=4
    sget v0, lockObj
    lock v0
    sget v1, sharedHolder
    iget v2, v1, ptr
    invoke-virtual run, v2
    unlock v0
    return-void
.end

.method freer(d) regs=4
    sleep d
    sget v0, lockObj
    lock v0
    sget v1, sharedHolder
    const-null v2
    iput v2, v1, ptr
    unlock v0
    return-void
.end
`

func buildLockset(t *testing.T, delayFree int64) func(s *sim.System, p *dvm.Program) {
	return func(s *sim.System, p *dvm.Program) {
		lk := s.Heap().New("Lock")
		holder := s.Heap().New("Holder")
		pay := s.Heap().New("Payload")
		holder.Set(p.FieldID("ptr"), dvm.Obj(pay.ID))
		s.Heap().SetStatic(p.FieldID("lockObj"), dvm.Obj(lk.ID))
		s.Heap().SetStatic(p.FieldID("sharedHolder"), dvm.Obj(holder.ID))
		if _, err := s.StartThread("user", "user", dvm.Null()); err != nil {
			t.Fatal(err)
		}
		if _, err := s.StartThread("freer", "freer", dvm.Int64(delayFree)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLocksetFiltersMutualExclusion(t *testing.T) {
	res, _ := pipeline(t, locksetSrc, Options{}, buildLockset(t, 20))
	if len(res.Races) != 0 {
		t.Fatalf("races = %d, want 0 (lock-protected)", len(res.Races))
	}
	if res.Stats.FilteredLockset == 0 {
		t.Error("lockset filter never fired")
	}
	// Ablation: without the lockset filter the pair is reported as a
	// conventional-class race (threads, unordered).
	res2, _ := pipeline(t, locksetSrc, Options{DisableLockset: true}, buildLockset(t, 20))
	if len(res2.Races) != 1 {
		t.Fatalf("without lockset filter: races = %d, want 1", len(res2.Races))
	}
	if res2.Races[0].Class != ClassConventional {
		t.Errorf("class = %v, want conventional", res2.Races[0].Class)
	}
}

// interThreadSrc plants a class (b) race: event useEv uses ptr; a
// later event spawnEv forks a thread that frees it. A conventional
// detector orders useEv ≺ spawnEv ≺ thread and misses it.
const interThreadSrc = `
.method run(this) regs=1
    return-void
.end

.method useEv(holder) regs=3
    iget v1, holder, ptr
    invoke-virtual run, v1
    return-void
.end

.method freeBody(holder) regs=2
    const-null v1
    iput v1, holder, ptr
    return-void
.end

.method spawnEv(holder) regs=4
    const-method v1, freeBody
    fork v1, holder -> v2
    join v2
    return-void
.end

.method sender(arg) regs=5
    sget-int v1, mainQ
    sget v0, holderObj
    const-method v2, useEv
    const-int v3, #0
    send v1, v2, v3, v0
    return-void
.end

.method sender2(arg) regs=5
    const-int v3, #20
    sleep v3                 ; keep the sends unordered but the free late
    sget-int v1, mainQ
    sget v0, holderObj
    const-method v2, spawnEv
    const-int v3, #0
    send v1, v2, v3, v0
    return-void
.end
`

func TestClassBInterThreadRace(t *testing.T) {
	res, _ := pipeline(t, interThreadSrc, Options{}, func(s *sim.System, p *dvm.Program) {
		main := s.AddLooper("main", 0)
		s.Heap().SetStatic(p.FieldID("mainQ"), dvm.Int64(main.Handle()))
		holder := s.Heap().New("Holder")
		pay := s.Heap().New("Payload")
		holder.Set(p.FieldID("ptr"), dvm.Obj(pay.ID))
		s.Heap().SetStatic(p.FieldID("holderObj"), dvm.Obj(holder.ID))
		if _, err := s.StartThread("s1", "sender", dvm.Null()); err != nil {
			t.Fatal(err)
		}
		if _, err := s.StartThread("s2", "sender2", dvm.Null()); err != nil {
			t.Fatal(err)
		}
	})
	if len(res.Races) != 1 {
		t.Fatalf("races = %d, want 1 (stats %+v)", len(res.Races), res.Stats)
	}
	if res.Races[0].Class != ClassInterThread {
		t.Errorf("class = %v, want inter-thread (missed by conventional detector)", res.Races[0].Class)
	}
}

func TestSameTaskUseFreeNotARace(t *testing.T) {
	src := `
.method run(this) regs=1
    return-void
.end

.method ev(holder) regs=3
    iget v1, holder, ptr
    invoke-virtual run, v1
    const-null v2
    iput v2, holder, ptr
    return-void
.end
`
	res, _ := pipeline(t, src, Options{}, func(s *sim.System, p *dvm.Program) {
		main := s.AddLooper("main", 0)
		holder := s.Heap().New("Holder")
		pay := s.Heap().New("Payload")
		holder.Set(p.FieldID("ptr"), dvm.Obj(pay.ID))
		if err := s.Inject(0, main, "ev", dvm.Obj(holder.ID), 0); err != nil {
			t.Fatal(err)
		}
	})
	if len(res.Races) != 0 {
		t.Fatalf("races = %d, want 0", len(res.Races))
	}
	if res.Stats.Uses != 1 || res.Stats.Frees != 1 {
		t.Errorf("uses=%d frees=%d, want 1/1", res.Stats.Uses, res.Stats.Frees)
	}
}

func TestDeduplicationBySite(t *testing.T) {
	// The same racy site pair, instantiated on three different holder
	// objects, must be reported once (three times with KeepDuplicates).
	src := `
.method run(this) regs=1
    return-void
.end

.method useEv(holder) regs=3
    iget v1, holder, ptr
    invoke-virtual run, v1
    return-void
.end

.method freeEv(holder) regs=2
    const-null v1
    iput v1, holder, ptr
    return-void
.end

.method sender(holder) regs=6
    sget-int v1, mainQ
    const-method v2, useEv
    const-method v3, freeEv
    const-int v4, #0
    send v1, v2, v4, holder
    return-void
.end

.method sender2(holder) regs=6
    const-int v4, #20
    sleep v4
    sget-int v1, mainQ
    const-method v3, freeEv
    const-int v4, #0
    send v1, v3, v4, holder
    return-void
.end
`
	build := func(s *sim.System, p *dvm.Program) {
		main := s.AddLooper("main", 0)
		s.Heap().SetStatic(p.FieldID("mainQ"), dvm.Int64(main.Handle()))
		for i := 0; i < 3; i++ {
			holder := s.Heap().New("Holder")
			pay := s.Heap().New("Payload")
			holder.Set(p.FieldID("ptr"), dvm.Obj(pay.ID))
			if _, err := s.StartThread("sa", "sender", dvm.Obj(holder.ID)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.StartThread("sb", "sender2", dvm.Obj(holder.ID)); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, _ := pipeline(t, src, Options{}, build)
	if len(res.Races) != 1 {
		t.Fatalf("deduped races = %d, want 1", len(res.Races))
	}
	if res.Stats.Duplicates < 2 {
		t.Errorf("duplicates = %d, want >= 2", res.Stats.Duplicates)
	}
	res2, _ := pipeline(t, src, Options{KeepDuplicates: true}, build)
	if len(res2.Races) != 3 {
		t.Fatalf("KeepDuplicates races = %d, want 3", len(res2.Races))
	}
}

func TestGuardRegions(t *testing.T) {
	cases := []struct {
		kind       trace.BranchKind
		pc, target trace.PC
		in, out    trace.PC
	}{
		// if-eqz forward: safe strictly between branch and target.
		{trace.BranchIfEqz, 10, 20, 15, 25},
		// if-eqz backward: safe after the branch to the end.
		{trace.BranchIfEqz, 10, 2, 11, 9},
		// if-nez forward: safe from target onward.
		{trace.BranchIfNez, 10, 20, 30, 15},
		// if-nez backward: safe between target and branch.
		{trace.BranchIfNez, 10, 2, 5, 15},
		// if-eq behaves like if-nez.
		{trace.BranchIfEq, 10, 20, 22, 11},
	}
	for _, c := range cases {
		lo, hi := GuardRegion(c.kind, c.pc, c.target)
		if !(c.in >= lo && c.in < hi) {
			t.Errorf("%v pc=%d target=%d: pc %d should be in [%d,%d)", c.kind, c.pc, c.target, c.in, lo, hi)
		}
		if c.out >= lo && c.out < hi {
			t.Errorf("%v pc=%d target=%d: pc %d should be outside [%d,%d)", c.kind, c.pc, c.target, c.out, lo, hi)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if ClassIntraThread.String() != "intra-thread" ||
		ClassInterThread.String() != "inter-thread" ||
		ClassConventional.String() != "conventional" {
		t.Error("class strings wrong")
	}
}

func TestDetectRequiresInputs(t *testing.T) {
	if _, err := Detect(Input{}, Options{}); err == nil {
		t.Error("Detect must reject nil inputs")
	}
}

func TestCountByClass(t *testing.T) {
	r := &Result{Races: []Race{
		{Class: ClassIntraThread}, {Class: ClassInterThread},
		{Class: ClassInterThread}, {Class: ClassConventional},
	}}
	a, b, c := r.CountByClass()
	if a != 1 || b != 2 || c != 1 {
		t.Errorf("counts = %d/%d/%d", a, b, c)
	}
}

// aliasEvictSrc is the case the static if-guard pass exists for: the
// tested pointer's last read is evicted by an aliased read of the
// same object between the branch and the dereference, so the dynamic
// window matching binds the use to aliasQ but the guard to ptrQ and
// fails to prune. Statically the deref register chains to the ptrQ
// load the branch tests, inside the Figure 6 region.
const aliasEvictSrc = `
.method sink(o) regs=1
    return-void
.end

.method setup(act) regs=2
    new v1, Obj
    iput v1, act, ptrQ
    iput v1, act, aliasQ
    return-void
.end

.method doUse(act) regs=3
    iget v1, act, ptrQ
    if-eqz v1, out
    iget v2, act, aliasQ
    invoke-virtual sink, v1
out:
    return-void
.end

.method onBind(act) regs=5
    sget-int v1, mainQ
    const-method v2, doUse
    const-int v3, #0
    send v1, v2, v3, act
    const-int v4, #0
    return v4
.end

.method onStart(act) regs=4
    sget-int v1, svc
    const-method v2, onBind
    rpc v1, v2, act -> v3
    return-void
.end

.method onFree(act) regs=2
    const-null v1
    iput v1, act, aliasQ
    return-void
.end
`

func buildAliasEvict(t *testing.T) func(s *sim.System, p *dvm.Program) {
	return func(s *sim.System, p *dvm.Program) {
		main := s.AddLooper("main", 0)
		svc := s.AddService("Svc", 1)
		s.Heap().SetStatic(p.FieldID("mainQ"), dvm.Int64(main.Handle()))
		s.Heap().SetStatic(p.FieldID("svc"), dvm.Int64(svc))
		act := s.Heap().New("Activity")
		for i, m := range []string{"setup", "onStart", "onFree"} {
			if err := s.Inject(int64(100*i), main, m, dvm.Obj(act.ID), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestStaticGuardPruning checks the StaticGuards input: a guarded use
// the dynamic heuristic misses (alias eviction) is reported without
// it, pruned with it, and kept again under DisableIfGuard (the static
// prune rides the same ablation flag).
func TestStaticGuardPruning(t *testing.T) {
	res, _ := pipeline(t, aliasEvictSrc, Options{}, buildAliasEvict(t))
	if len(res.Races) != 1 {
		t.Fatalf("without static guards: races = %d (%+v), want 1 (dynamic matching must miss this guard)", len(res.Races), res.Stats)
	}
	if res.Stats.FilteredIfGuard != 0 {
		t.Fatalf("FilteredIfGuard = %d, want 0: the dynamic heuristic should not see this guard", res.Stats.FilteredIfGuard)
	}
	u := res.Races[0].Use

	// Re-run with the deref site statically marked guarded.
	p, err := asm.Assemble(aliasEvictSrc)
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	s := sim.NewSystem(p, sim.Config{Tracer: col, Seed: 1})
	buildAliasEvict(t)(s, p)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	g, err := hb.Build(col.T, hb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	guards := map[dataflow.Key]bool{{Method: u.Method, PC: u.DerefPC}: true}
	got, err := Detect(Input{Trace: col.T, Graph: g, StaticGuards: guards}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Races) != 0 {
		t.Errorf("with static guards: races = %d, want 0", len(got.Races))
	}
	if got.Stats.FilteredStaticGuard != 1 {
		t.Errorf("FilteredStaticGuard = %d, want 1", got.Stats.FilteredStaticGuard)
	}

	// DisableIfGuard must disable the static prune too.
	got, err = Detect(Input{Trace: col.T, Graph: g, StaticGuards: guards}, Options{DisableIfGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Races) != 1 || got.Stats.FilteredStaticGuard != 0 {
		t.Errorf("DisableIfGuard: races = %d, FilteredStaticGuard = %d; want 1, 0",
			len(got.Races), got.Stats.FilteredStaticGuard)
	}
}

package detect

import (
	"fmt"
	"strings"

	"cafa/internal/trace"
)

// CallStack reconstructs the calling-context stack active at trace
// index idx, from the invoke/return entries logged by the
// instrumented interpreter (§5.3). The result lists the open method
// invocations of idx's task, outermost first, ending with the method
// containing the operation itself.
func CallStack(tr *trace.Trace, idx int) []trace.MethodID {
	if idx < 0 || idx >= len(tr.Entries) {
		return nil
	}
	task := tr.Entries[idx].Task
	var stack []trace.MethodID
	for i := 0; i < idx; i++ {
		e := &tr.Entries[i]
		if e.Task != task {
			continue
		}
		switch e.Op {
		case trace.OpInvoke:
			stack = append(stack, e.Method)
		case trace.OpReturn:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	// The innermost frame is the method of the queried entry; include
	// it when the invoke log does not already name it (the entry task's
	// root handler is invoked by the runtime, not by bytecode).
	if m := tr.Entries[idx].Method; m != 0 {
		if len(stack) == 0 || stack[len(stack)-1] != m {
			stack = append(stack, m)
		}
	}
	return stack
}

// MaxStackFrames caps FormatStack's rendering: stacks deeper than
// this elide their outermost frames, so one pathological (or
// recursive) calling context cannot flood a report line.
const MaxStackFrames = 12

// FormatStack renders a call stack as "outer > inner". Stacks deeper
// than MaxStackFrames keep the innermost frames and summarize the
// elided outer ones as "(+N outer)".
func FormatStack(tr *trace.Trace, stack []trace.MethodID) string {
	if len(stack) == 0 {
		return "(no context)"
	}
	elided := 0
	if len(stack) > MaxStackFrames {
		elided = len(stack) - MaxStackFrames
		stack = stack[elided:]
	}
	parts := make([]string, len(stack))
	for i, m := range stack {
		parts[i] = tr.MethodName(m)
	}
	joined := strings.Join(parts, " > ")
	if elided > 0 {
		return fmt.Sprintf("(+%d outer) > %s", elided, joined)
	}
	return joined
}

// DescribeWithContext renders a race with the calling contexts of
// both racy operations.
func (r Race) DescribeWithContext(tr *trace.Trace) string {
	return r.Describe(tr) +
		"\n    use context:  " + FormatStack(tr, CallStack(tr, r.Use.DerefIdx)) +
		"\n    free context: " + FormatStack(tr, CallStack(tr, r.Free.Idx))
}

package detect

import (
	"strings"

	"cafa/internal/trace"
)

// CallStack reconstructs the calling-context stack active at trace
// index idx, from the invoke/return entries logged by the
// instrumented interpreter (§5.3). The result lists the open method
// invocations of idx's task, outermost first, ending with the method
// containing the operation itself.
func CallStack(tr *trace.Trace, idx int) []trace.MethodID {
	if idx < 0 || idx >= len(tr.Entries) {
		return nil
	}
	task := tr.Entries[idx].Task
	var stack []trace.MethodID
	for i := 0; i < idx; i++ {
		e := &tr.Entries[i]
		if e.Task != task {
			continue
		}
		switch e.Op {
		case trace.OpInvoke:
			stack = append(stack, e.Method)
		case trace.OpReturn:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	// The innermost frame is the method of the queried entry; include
	// it when the invoke log does not already name it (the entry task's
	// root handler is invoked by the runtime, not by bytecode).
	if m := tr.Entries[idx].Method; m != 0 {
		if len(stack) == 0 || stack[len(stack)-1] != m {
			stack = append(stack, m)
		}
	}
	return stack
}

// FormatStack renders a call stack as "outer > inner".
func FormatStack(tr *trace.Trace, stack []trace.MethodID) string {
	if len(stack) == 0 {
		return "(no context)"
	}
	parts := make([]string, len(stack))
	for i, m := range stack {
		parts[i] = tr.MethodName(m)
	}
	return strings.Join(parts, " > ")
}

// DescribeWithContext renders a race with the calling contexts of
// both racy operations.
func (r Race) DescribeWithContext(tr *trace.Trace) string {
	return r.Describe(tr) +
		"\n    use context:  " + FormatStack(tr, CallStack(tr, r.Use.DerefIdx)) +
		"\n    free context: " + FormatStack(tr, CallStack(tr, r.Free.Idx))
}

package detect

import (
	"fmt"
	"sort"

	"cafa/internal/dataflow"
	"cafa/internal/hb"
	"cafa/internal/lockset"
	"cafa/internal/obs"
	"cafa/internal/trace"
)

// Detector observability (internal/obs): the pipeline-stage tallies
// as live process-wide counters, so a long batch run's progress is
// visible (via -debug-addr /metrics or the -metrics table) while it
// runs — end-of-run Stats structs only aggregate after the fact.
var (
	cCandidates     = obs.NewCounter("detect_candidates_total")
	cFilteredOrder  = obs.NewCounter("detect_filtered_ordered_total")
	cFilteredLocks  = obs.NewCounter("detect_filtered_lockset_total")
	cFilteredAlloc  = obs.NewCounter("detect_filtered_intra_alloc_total")
	cFilteredGuard  = obs.NewCounter("detect_filtered_ifguard_total")
	cFilteredStatic = obs.NewCounter("detect_filtered_static_guard_total")
	cFilteredSOrder = obs.NewCounter("detect_filtered_static_order_total")
	cDuplicates     = obs.NewCounter("detect_duplicates_total")
	cRacesReported  = obs.NewCounter("detect_races_reported_total")
)

// Class categorizes a reported race per Table 1.
type Class uint8

// Race classes.
const (
	// ClassIntraThread: both racy operations run in events of the same
	// looper thread (column a).
	ClassIntraThread Class = iota
	// ClassInterThread: cross-thread race a conventional detector
	// misses because it totally orders looper events (column b).
	ClassInterThread
	// ClassConventional: cross-thread race a conventional detector
	// also finds (column c).
	ClassConventional
)

func (c Class) String() string {
	switch c {
	case ClassIntraThread:
		return "intra-thread"
	case ClassInterThread:
		return "inter-thread"
	case ClassConventional:
		return "conventional"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Race is a reported use-free race.
type Race struct {
	Use   Use
	Free  Free
	Class Class
}

// SiteKey identifies the static code-site pair of a race; reports are
// deduplicated on it so repeated dynamic instances of one buggy pair
// count once.
type SiteKey struct {
	Field      trace.FieldID
	UseMethod  trace.MethodID
	UsePC      trace.PC
	FreeMethod trace.MethodID
	FreePC     trace.PC
}

// Less orders SiteKeys lexicographically by (Field, UseMethod, UsePC,
// FreeMethod, FreePC) — the canonical report order.
func (k SiteKey) Less(o SiteKey) bool {
	switch {
	case k.Field != o.Field:
		return k.Field < o.Field
	case k.UseMethod != o.UseMethod:
		return k.UseMethod < o.UseMethod
	case k.UsePC != o.UsePC:
		return k.UsePC < o.UsePC
	case k.FreeMethod != o.FreeMethod:
		return k.FreeMethod < o.FreeMethod
	default:
		return k.FreePC < o.FreePC
	}
}

// Key returns the race's deduplication key.
func (r Race) Key() SiteKey {
	return SiteKey{
		Field:      r.Use.Var.Field(),
		UseMethod:  r.Use.Method,
		UsePC:      r.Use.DerefPC,
		FreeMethod: r.Free.Method,
		FreePC:     r.Free.PC,
	}
}

// Describe renders a human-readable report line.
func (r Race) Describe(tr *trace.Trace) string {
	return fmt.Sprintf("%s race on %s: use in %s (%s pc=%d) vs free in %s (%s pc=%d)",
		r.Class, tr.VarName(r.Use.Var),
		tr.TaskName(r.Use.Task), tr.MethodName(r.Use.Method), r.Use.DerefPC,
		tr.TaskName(r.Free.Task), tr.MethodName(r.Free.Method), r.Free.PC)
}

// PruneStage identifies the detector pipeline stage that eliminated a
// candidate pair.
type PruneStage uint8

// Prune stages, in the order the detector applies them.
const (
	PruneOrdered PruneStage = iota
	PruneLockset
	PruneIntraAlloc
	PruneIfGuard
	PruneStaticGuard
	PruneDedup
	PruneStaticOrder
	numPruneStages
)

// NumPruneStages is the number of prune stages (for per-stage tallies).
const NumPruneStages = int(numPruneStages)

func (s PruneStage) String() string {
	switch s {
	case PruneOrdered:
		return "ordered"
	case PruneLockset:
		return "lockset"
	case PruneIntraAlloc:
		return "intra-alloc"
	case PruneIfGuard:
		return "if-guard"
	case PruneStaticGuard:
		return "static-guard"
	case PruneDedup:
		return "dedup"
	case PruneStaticOrder:
		return "static-order"
	default:
		return fmt.Sprintf("PruneStage(%d)", uint8(s))
	}
}

// PruneWitness carries the stage-specific fact that justified a prune,
// resolved at the moment the detector decided. Only the fields of the
// witnessing stage are meaningful.
type PruneWitness struct {
	Stage PruneStage
	// UseBeforeFree is the happens-before direction (PruneOrdered).
	UseBeforeFree bool
	// CommonLocks is the lockset intersection (PruneLockset).
	CommonLocks []trace.LockID
	// AllocIdx is the trace index of the intra-event allocation that
	// re-establishes the pointer (PruneIntraAlloc).
	AllocIdx int
	// GuardIdx is the trace index of the matched branch and
	// [GuardLo, GuardHi) its safe region (PruneIfGuard).
	GuardIdx         int
	GuardLo, GuardHi trace.PC
	// Class is the classification the duplicate pair had already
	// received (PruneDedup); the kept instance shares its SiteKey.
	Class Class
	// StaticPath is the static event-order derivation that proved the
	// pair must-ordered without a dynamic HB query (PruneStaticOrder);
	// UseBeforeFree carries its direction.
	StaticPath []string
}

// OrderKey identifies a use/free code-site pair independent of the
// field raced on — the granularity of the static ordering pass, which
// reasons about sites and events, not heap values.
type OrderKey struct {
	UseMethod  trace.MethodID
	UsePC      trace.PC
	FreeMethod trace.MethodID
	FreePC     trace.PC
}

// StaticOrder is one statically-proven must-ordering between a use
// site and a free site (internal/static's event-order pass). Every
// derivation rule it may rely on is mirrored by a dynamic HB rule, so
// a pair carrying one is HB-ordered in every recorded trace of the
// program — the soundness contract the StaticOrders prune depends on.
type StaticOrder struct {
	UseBeforeFree bool
	Witness       []string
}

// Collector observes detector decisions for provenance. Detect calls
// it synchronously from the candidate loop, so implementations must be
// cheap; a nil collector keeps the hot loop counter-only. Collectors
// never influence detection — results are identical with or without
// one.
type Collector interface {
	// Pruned is called once per filtered candidate pair.
	Pruned(u Use, f Free, w PruneWitness)
	// Reported is called once per reported race, in detection order
	// (the result slice is later sorted by SiteKey).
	Reported(r Race)
}

// Options toggles the detector's pruning stages — the ablation knobs
// of the evaluation.
type Options struct {
	// DisableIfGuard turns off the if-guard heuristic.
	DisableIfGuard bool
	// DisableIntraEventAlloc turns off intra-event-allocation.
	DisableIntraEventAlloc bool
	// DisableLockset turns off the mutual-exclusion filter.
	DisableLockset bool
	// KeepDuplicates reports every dynamic instance instead of
	// deduplicating by code site.
	KeepDuplicates bool
}

// Stats counts the detector's pipeline stages.
type Stats struct {
	Uses, Frees, Allocs int
	Candidates          int // concurrent same-location use/free pairs considered
	FilteredOrdered     int // pairs ordered by the causality model
	FilteredLockset     int
	FilteredIfGuard     int
	FilteredIntraAlloc  int
	FilteredStaticGuard int // pruned by the static if-guard classification
	FilteredStaticOrder int // pruned by the static event-order pass, no HB query
	Duplicates          int
}

// Add folds other into s field by field. It is the one aggregation
// point for multi-trace reports (CLI aggregate section, live triage,
// evidence bundles, the service), so new Stats fields only need to be
// wired here.
func (s *Stats) Add(other Stats) {
	s.Uses += other.Uses
	s.Frees += other.Frees
	s.Allocs += other.Allocs
	s.Candidates += other.Candidates
	s.FilteredOrdered += other.FilteredOrdered
	s.FilteredLockset += other.FilteredLockset
	s.FilteredIfGuard += other.FilteredIfGuard
	s.FilteredIntraAlloc += other.FilteredIntraAlloc
	s.FilteredStaticGuard += other.FilteredStaticGuard
	s.FilteredStaticOrder += other.FilteredStaticOrder
	s.Duplicates += other.Duplicates
}

// Result is the detector output.
type Result struct {
	Races []Race
	Stats Stats
}

// Input wires the detector's dependencies.
type Input struct {
	Trace *trace.Trace
	// Graph is the event-driven causality model (hb.Options{}).
	Graph *hb.Graph
	// Conventional, when non-nil, is the baseline model used to split
	// inter-thread races into classes (b) and (c). Without it every
	// cross-thread race is ClassInterThread.
	Conventional *hb.Graph
	// Locks are the per-operation held-lock sets.
	Locks *lockset.Sets
	// DerefSources, when non-nil, enables the static data-flow
	// extension (§6.3): dereference instructions are matched to the
	// exact pointer-load site computed by
	// dataflow.DerefSources(program), eliminating Type III false
	// positives. It requires the application's bytecode and is
	// therefore optional.
	DerefSources map[dataflow.Key]dataflow.Source
	// StaticGuards, when non-nil, marks dereference sites covered by
	// a static null-test (internal/static's Figure 6 on the CFG).
	// Uses at marked sites are pruned like dynamically-guarded ones —
	// the static pass catches guards the trace-window matching misses
	// (e.g. when an aliased read evicts the tested pointer's last
	// read). Plain data keeps detect independent of internal/static.
	StaticGuards map[dataflow.Key]bool
	// StaticOrders, when non-nil, maps use/free site pairs the static
	// event-order pass proved must-ordered. Candidates at those sites
	// skip the dynamic HB query entirely — a trace-free pre-filter.
	// Sound because the pass derives orders only from rules the dynamic
	// model also enforces (post, fork/join, rpc, program order) under a
	// closed world of entry points; open-world sites get no entry and
	// the map stays empty there (refine, never invent).
	StaticOrders map[OrderKey]StaticOrder
	// Collector, when non-nil, receives per-decision provenance
	// callbacks (internal/provenance implements it). Nil keeps the
	// candidate loop counter-only.
	Collector Collector
}

// Detect runs the use-free race detector (§4.2, §4.3).
func Detect(in Input, opts Options) (*Result, error) {
	if in.Trace == nil || in.Graph == nil {
		return nil, fmt.Errorf("detect: trace and graph are required")
	}
	x := NewExtractor(in.DerefSources, false)
	tr := in.Trace
	for i := range tr.Entries {
		x.Consume(i, &tr.Entries[i])
	}
	return DetectExtracted(in, x, opts)
}

// DetectExtracted runs the detector over a finished extraction — the
// streaming entry point, where the Extractor consumed the entries as
// they arrived and in.Trace may be a header-only trace (task tables
// but no Entries). Results are identical to Detect on the
// materialized trace.
func DetectExtracted(in Input, x *Extractor, opts Options) (*Result, error) {
	if in.Trace == nil || in.Graph == nil {
		return nil, fmt.Errorf("detect: trace and graph are required")
	}
	tr := in.Trace
	ex := x.ex
	res := &Result{}
	res.Stats.Uses = len(ex.uses)
	res.Stats.Frees = len(ex.frees)
	res.Stats.Allocs = len(ex.allocs)

	freesByVar := make(map[trace.VarID][]Free)
	for _, f := range ex.frees {
		freesByVar[f.Var] = append(freesByVar[f.Var], f)
	}

	col := in.Collector
	seen := make(map[SiteKey]bool)
	for _, u := range ex.uses {
		for _, f := range freesByVar[u.Var] {
			if u.Task == f.Task {
				continue // program order within one task
			}
			res.Stats.Candidates++
			if in.StaticOrders != nil {
				ok := OrderKey{UseMethod: u.Method, UsePC: u.DerefPC,
					FreeMethod: f.Method, FreePC: f.PC}
				if so, hit := in.StaticOrders[ok]; hit {
					res.Stats.FilteredStaticOrder++
					if col != nil {
						col.Pruned(u, f, PruneWitness{
							Stage:         PruneStaticOrder,
							UseBeforeFree: so.UseBeforeFree,
							StaticPath:    so.Witness,
						})
					}
					continue
				}
			}
			if !in.Graph.ConcurrentAt(u.ReadIdx, u.Task, f.Idx, f.Task) {
				res.Stats.FilteredOrdered++
				if col != nil {
					col.Pruned(u, f, PruneWitness{
						Stage:         PruneOrdered,
						UseBeforeFree: in.Graph.OrderedAt(u.ReadIdx, u.Task, f.Idx, f.Task),
					})
				}
				continue
			}
			if !opts.DisableLockset && in.Locks != nil && in.Locks.Intersects(u.ReadIdx, f.Idx) {
				res.Stats.FilteredLockset++
				if col != nil {
					col.Pruned(u, f, PruneWitness{
						Stage:       PruneLockset,
						CommonLocks: in.Locks.Common(u.ReadIdx, f.Idx),
					})
				}
				continue
			}
			// The commutativity heuristics only apply when both events
			// run on the same looper thread (§4.3): there, looper
			// atomicity makes whole-event reasoning sound enough.
			sameLooper := tr.IsEventTask(u.Task) && tr.IsEventTask(f.Task) &&
				tr.LooperOf(u.Task) == tr.LooperOf(f.Task)
			if sameLooper {
				if !opts.DisableIntraEventAlloc {
					// The free side's witness (an alloc after the free)
					// takes precedence, matching the historical
					// short-circuit evaluation order.
					ai := ex.allocAfterIdx(f.Task, f.Var, f.Idx)
					if ai < 0 {
						ai = ex.allocBeforeIdx(u.Task, u.Var, u.ReadIdx)
					}
					if ai >= 0 {
						res.Stats.FilteredIntraAlloc++
						if col != nil {
							col.Pruned(u, f, PruneWitness{Stage: PruneIntraAlloc, AllocIdx: ai})
						}
						continue
					}
				}
				if !opts.DisableIfGuard {
					if g, ok := ex.guardWitness(u); ok {
						res.Stats.FilteredIfGuard++
						if col != nil {
							lo, hi := GuardRegion(g.kind, g.pc, g.target)
							col.Pruned(u, f, PruneWitness{
								Stage: PruneIfGuard, GuardIdx: g.idx, GuardLo: lo, GuardHi: hi,
							})
						}
						continue
					}
				}
				if !opts.DisableIfGuard && in.StaticGuards != nil &&
					in.StaticGuards[dataflow.Key{Method: u.Method, PC: u.DerefPC}] {
					res.Stats.FilteredStaticGuard++
					if col != nil {
						col.Pruned(u, f, PruneWitness{Stage: PruneStaticGuard})
					}
					continue
				}
			}
			r := Race{Use: u, Free: f}
			if sameLooper {
				r.Class = ClassIntraThread
			} else if in.Conventional != nil && in.Conventional.ConcurrentAt(u.ReadIdx, u.Task, f.Idx, f.Task) {
				r.Class = ClassConventional
			} else {
				r.Class = ClassInterThread
			}
			if !opts.KeepDuplicates {
				k := r.Key()
				if seen[k] {
					res.Stats.Duplicates++
					if col != nil {
						col.Pruned(u, f, PruneWitness{Stage: PruneDedup, Class: r.Class})
					}
					continue
				}
				seen[k] = true
			}
			res.Races = append(res.Races, r)
			if col != nil {
				col.Reported(r)
			}
		}
	}
	// Canonical report order: stable sort by SiteKey, so output never
	// depends on extraction order and concurrent analysis can never
	// reorder it. The stable tie-break keeps dynamic instances (under
	// KeepDuplicates) in trace order.
	sort.SliceStable(res.Races, func(i, j int) bool {
		return res.Races[i].Key().Less(res.Races[j].Key())
	})
	// Metrics are batched per Detect call: per-candidate atomic
	// increments in the loop above cost measurable wall-clock on large
	// traces, and the Stats struct already tallies every stage.
	cCandidates.Add(int64(res.Stats.Candidates))
	cFilteredOrder.Add(int64(res.Stats.FilteredOrdered))
	cFilteredLocks.Add(int64(res.Stats.FilteredLockset))
	cFilteredAlloc.Add(int64(res.Stats.FilteredIntraAlloc))
	cFilteredGuard.Add(int64(res.Stats.FilteredIfGuard))
	cFilteredStatic.Add(int64(res.Stats.FilteredStaticGuard))
	cFilteredSOrder.Add(int64(res.Stats.FilteredStaticOrder))
	cDuplicates.Add(int64(res.Stats.Duplicates))
	cRacesReported.Add(int64(len(res.Races)))
	return res, nil
}

// CountByClass tallies races per class.
func (r *Result) CountByClass() (intra, inter, conv int) {
	for _, rc := range r.Races {
		switch rc.Class {
		case ClassIntraThread:
			intra++
		case ClassInterThread:
			inter++
		case ClassConventional:
			conv++
		}
	}
	return
}

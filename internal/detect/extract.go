// Package detect implements CAFA's use-free race detection (§4): it
// extracts uses (pointer reads that are later dereferenced) and frees
// (null stores) from a trace, enumerates concurrent use/free pairs
// under the event-driven causality model, and prunes false positives
// with the if-guard and intra-event-allocation heuristics plus the
// lockset mutual-exclusion check. It also provides the naive
// low-level conflicting-access detector used as the paper's
// motivation baseline (§4.1).
package detect

import (
	"cafa/internal/dataflow"
	"cafa/internal/trace"
)

// Use is a pointer read whose value is later dereferenced (§4.1). The
// read is the racy operation; the deref records where it would blow
// up.
type Use struct {
	ReadIdx  int // trace index of the OpPtrRead
	DerefIdx int // trace index of the matched OpDeref
	Var      trace.VarID
	Obj      trace.ObjID // object the read obtained
	Task     trace.TaskID
	Method   trace.MethodID // method containing the deref
	ReadPC   trace.PC
	DerefPC  trace.PC
}

// Free is a null store to an object pointer.
type Free struct {
	Idx    int
	Var    trace.VarID
	Task   trace.TaskID
	Method trace.MethodID
	PC     trace.PC
}

// Alloc is a non-null store to an object pointer.
type Alloc struct {
	Idx  int
	Var  trace.VarID
	Task trace.TaskID
}

// guard is a logged branch matched to the pointer it tests.
type guard struct {
	idx    int
	kind   trace.BranchKind
	pc     trace.PC
	target trace.PC
	method trace.MethodID
	vr     trace.VarID // matched pointer location
	ok     bool        // matching succeeded
}

// extraction is the per-trace scan result.
type extraction struct {
	uses   []Use
	frees  []Free
	allocs []Alloc
	// guards per task, in trace order.
	guards map[trace.TaskID][]guard
	// allocSeqs maps (task, var) to ascending trace indexes of allocs.
	allocSeqs map[taskVar][]int
}

type taskVar struct {
	task trace.TaskID
	vr   trace.VarID
}

// lastRead tracks the most recent pointer read per object per task —
// the paper's "nearest previous pointer read that gets the same
// object ID" matching heuristic (§5.3). The heuristic is neither
// sound nor complete (Type III false positives come from exactly
// this), and we reproduce it faithfully.
type lastRead struct {
	idx    int
	vr     trace.VarID
	pc     trace.PC
	method trace.MethodID
}

// siteKey identifies a static instruction site.
type siteKey struct {
	method trace.MethodID
	pc     trace.PC
}

// extract scans the trace once. When sources is non-nil (the static
// data-flow extension of §6.3), dereferences resolve to the exact
// pointer-load site instead of the nearest same-object read.
func extract(tr *trace.Trace, sources map[dataflow.Key]dataflow.Source) *extraction {
	ex := &extraction{
		guards:    make(map[trace.TaskID][]guard),
		allocSeqs: make(map[taskVar][]int),
	}
	reads := make(map[trace.TaskID]map[trace.ObjID]lastRead)
	readsBySite := make(map[trace.TaskID]map[siteKey]lastRead)
	usedReads := make(map[int]bool) // read idx already promoted to a Use

	for i := range tr.Entries {
		e := &tr.Entries[i]
		switch e.Op {
		case trace.OpPtrRead:
			m := reads[e.Task]
			if m == nil {
				m = make(map[trace.ObjID]lastRead)
				reads[e.Task] = m
			}
			m[e.Value] = lastRead{idx: i, vr: e.Var, pc: e.PC, method: e.Method}
			if sources != nil {
				sm := readsBySite[e.Task]
				if sm == nil {
					sm = make(map[siteKey]lastRead)
					readsBySite[e.Task] = sm
				}
				sm[siteKey{e.Method, e.PC}] = lastRead{idx: i, vr: e.Var, pc: e.PC, method: e.Method}
			}

		case trace.OpPtrWrite:
			if e.Value == trace.NullObj {
				ex.frees = append(ex.frees, Free{
					Idx: i, Var: e.Var, Task: e.Task, Method: e.Method, PC: e.PC,
				})
			} else {
				ex.allocs = append(ex.allocs, Alloc{Idx: i, Var: e.Var, Task: e.Task})
				tv := taskVar{e.Task, e.Var}
				ex.allocSeqs[tv] = append(ex.allocSeqs[tv], i)
			}

		case trace.OpDeref:
			var lr lastRead
			var ok bool
			if sources != nil {
				src, known := sources[dataflow.Key{Method: e.Method, PC: e.PC}]
				switch {
				case known && src.Kind == dataflow.SrcFresh:
					// Freshly allocated object: never a use.
					continue
				case known && src.Kind == dataflow.SrcLoad:
					// LoadMethod 0 means the load is in the deref's own
					// method; otherwise the interprocedural resolution
					// placed it in a caller (same task, earlier frame).
					lm := src.LoadMethod
					if lm == 0 {
						lm = e.Method
					}
					lr, ok = readsBySite[e.Task][siteKey{lm, src.LoadPC}]
				default:
					lr, ok = reads[e.Task][e.Value]
				}
			} else {
				lr, ok = reads[e.Task][e.Value]
			}
			if !ok || usedReads[lr.idx] {
				continue
			}
			usedReads[lr.idx] = true
			ex.uses = append(ex.uses, Use{
				ReadIdx: lr.idx, DerefIdx: i, Var: lr.vr, Obj: e.Value,
				Task: e.Task, Method: e.Method, ReadPC: lr.pc, DerefPC: e.PC,
			})

		case trace.OpBranch:
			g := guard{
				idx: i, kind: e.Branch, pc: e.PC, target: e.TargetPC, method: e.Method,
			}
			if lr, ok := reads[e.Task][e.Value]; ok {
				g.vr = lr.vr
				g.ok = true
			}
			ex.guards[e.Task] = append(ex.guards[e.Task], g)
		}
	}
	return ex
}

// allocAfterIdx returns the first allocation to vr in task after
// trace index i (the free side of intra-event-allocation), or -1.
func (ex *extraction) allocAfterIdx(task trace.TaskID, vr trace.VarID, i int) int {
	seqs := ex.allocSeqs[taskVar{task, vr}]
	// seqs ascending; first > i?
	lo, hi := 0, len(seqs)
	for lo < hi {
		mid := (lo + hi) / 2
		if seqs[mid] <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(seqs) {
		return seqs[lo]
	}
	return -1
}

// allocBeforeIdx returns the first allocation to vr in task before
// trace index i (the use side of intra-event-allocation), or -1.
func (ex *extraction) allocBeforeIdx(task trace.TaskID, vr trace.VarID, i int) int {
	seqs := ex.allocSeqs[taskVar{task, vr}]
	if len(seqs) > 0 && seqs[0] < i {
		return seqs[0]
	}
	return -1
}

// Package detect implements CAFA's use-free race detection (§4): it
// extracts uses (pointer reads that are later dereferenced) and frees
// (null stores) from a trace, enumerates concurrent use/free pairs
// under the event-driven causality model, and prunes false positives
// with the if-guard and intra-event-allocation heuristics plus the
// lockset mutual-exclusion check. It also provides the naive
// low-level conflicting-access detector used as the paper's
// motivation baseline (§4.1).
package detect

import (
	"cafa/internal/dataflow"
	"cafa/internal/obs"
	"cafa/internal/trace"
)

// Use is a pointer read whose value is later dereferenced (§4.1). The
// read is the racy operation; the deref records where it would blow
// up.
type Use struct {
	ReadIdx  int // trace index of the OpPtrRead
	DerefIdx int // trace index of the matched OpDeref
	Var      trace.VarID
	Obj      trace.ObjID // object the read obtained
	Task     trace.TaskID
	Method   trace.MethodID // method containing the deref
	ReadPC   trace.PC
	DerefPC  trace.PC
}

// Free is a null store to an object pointer.
type Free struct {
	Idx    int
	Var    trace.VarID
	Task   trace.TaskID
	Method trace.MethodID
	PC     trace.PC
}

// Alloc is a non-null store to an object pointer.
type Alloc struct {
	Idx  int
	Var  trace.VarID
	Task trace.TaskID
}

// guard is a logged branch matched to the pointer it tests.
type guard struct {
	idx    int
	kind   trace.BranchKind
	pc     trace.PC
	target trace.PC
	method trace.MethodID
	vr     trace.VarID // matched pointer location
	ok     bool        // matching succeeded
}

// extraction is the per-trace scan result.
type extraction struct {
	uses   []Use
	frees  []Free
	allocs []Alloc
	// guards per task, in trace order.
	guards map[trace.TaskID][]guard
	// allocSeqs maps (task, var) to ascending trace indexes of allocs.
	allocSeqs map[taskVar][]int
}

type taskVar struct {
	task trace.TaskID
	vr   trace.VarID
}

// lastRead tracks the most recent pointer read per object per task —
// the paper's "nearest previous pointer read that gets the same
// object ID" matching heuristic (§5.3). The heuristic is neither
// sound nor complete (Type III false positives come from exactly
// this), and we reproduce it faithfully.
type lastRead struct {
	idx    int
	vr     trace.VarID
	pc     trace.PC
	method trace.MethodID
}

// siteKey identifies a static instruction site.
type siteKey struct {
	method trace.MethodID
	pc     trace.PC
}

// Streaming-path observability (internal/obs): reads retire from the
// extractor's frontier either by eviction (a later read of the same
// object supersedes them) or by promotion to a Use; the stall
// histogram observes how many entries each read stayed pinned — the
// retirement lag that bounds the streaming window.
var (
	cStreamRetired = obs.NewCounter("stream_retired_reads_total")
	hStreamStall   = obs.NewHistogram("stream_read_stall_entries")
)

// extract scans the trace once. When sources is non-nil (the static
// data-flow extension of §6.3), dereferences resolve to the exact
// pointer-load site instead of the nearest same-object read.
func extract(tr *trace.Trace, sources map[dataflow.Key]dataflow.Source) *extraction {
	x := NewExtractor(sources, false)
	for i := range tr.Entries {
		x.Consume(i, &tr.Entries[i])
	}
	return x.ex
}

// Extractor is the streaming form of the extraction scan: entries are
// consumed one at a time and discarded; only the compact use / free /
// alloc / guard records and the per-task read frontier are retained.
// In streaming mode it additionally captures the call stack live at
// each use and free (a streamed trace cannot reconstruct them later
// the way CallStack does) and emits frontier-retirement metrics.
type Extractor struct {
	ex          *extraction
	sources     map[dataflow.Key]dataflow.Source
	reads       map[trace.TaskID]map[trace.ObjID]lastRead
	readsBySite map[trace.TaskID]map[siteKey]lastRead
	usedReads   map[int]bool // read idx already promoted to a Use

	streaming  bool
	liveStacks map[trace.TaskID][]trace.MethodID
	stacks     map[int][]trace.MethodID
	live       int // unpromoted pinned reads (the frontier window)
}

// NewExtractor returns an Extractor. streaming enables call-stack
// capture at uses/frees and frontier metrics; the batch extract path
// leaves it off and reconstructs stacks from the trace on demand.
func NewExtractor(sources map[dataflow.Key]dataflow.Source, streaming bool) *Extractor {
	x := &Extractor{
		ex: &extraction{
			guards:    make(map[trace.TaskID][]guard),
			allocSeqs: make(map[taskVar][]int),
		},
		sources:   sources,
		reads:     make(map[trace.TaskID]map[trace.ObjID]lastRead),
		usedReads: make(map[int]bool),
		streaming: streaming,
	}
	if sources != nil {
		x.readsBySite = make(map[trace.TaskID]map[siteKey]lastRead)
	}
	if streaming {
		x.liveStacks = make(map[trace.TaskID][]trace.MethodID)
		x.stacks = make(map[int][]trace.MethodID)
	}
	return x
}

// retire records one read leaving the frontier at entry i.
func (x *Extractor) retire(i, readIdx int) {
	cStreamRetired.Inc()
	hStreamStall.Observe(int64(i - readIdx))
}

// captureStack snapshots the live calling context of task at entry i,
// applying CallStack's innermost-frame rule.
func (x *Extractor) captureStack(i int, task trace.TaskID, m trace.MethodID) {
	live := x.liveStacks[task]
	stack := make([]trace.MethodID, len(live), len(live)+1)
	copy(stack, live)
	if m != 0 && (len(stack) == 0 || stack[len(stack)-1] != m) {
		stack = append(stack, m)
	}
	x.stacks[i] = stack
}

// Live returns the number of unpromoted reads currently pinned — the
// frontier window size.
func (x *Extractor) Live() int { return x.live }

// Stacks returns the captured per-use/per-free call stacks keyed by
// trace index (streaming mode only; nil otherwise).
func (x *Extractor) Stacks() map[int][]trace.MethodID { return x.stacks }

// Consume processes entry i. Entries must arrive in trace order.
func (x *Extractor) Consume(i int, e *trace.Entry) {
	ex := x.ex
	switch e.Op {
	case trace.OpPtrRead:
		m := x.reads[e.Task]
		if m == nil {
			m = make(map[trace.ObjID]lastRead)
			x.reads[e.Task] = m
		}
		if x.streaming {
			if old, had := m[e.Value]; had && !x.usedReads[old.idx] {
				x.retire(i, old.idx) // evicted by a newer read of the same object
			} else {
				x.live++
			}
		}
		m[e.Value] = lastRead{idx: i, vr: e.Var, pc: e.PC, method: e.Method}
		if x.sources != nil {
			sm := x.readsBySite[e.Task]
			if sm == nil {
				sm = make(map[siteKey]lastRead)
				x.readsBySite[e.Task] = sm
			}
			sm[siteKey{e.Method, e.PC}] = lastRead{idx: i, vr: e.Var, pc: e.PC, method: e.Method}
		}

	case trace.OpPtrWrite:
		if e.Value == trace.NullObj {
			ex.frees = append(ex.frees, Free{
				Idx: i, Var: e.Var, Task: e.Task, Method: e.Method, PC: e.PC,
			})
			if x.streaming {
				x.captureStack(i, e.Task, e.Method)
			}
		} else {
			ex.allocs = append(ex.allocs, Alloc{Idx: i, Var: e.Var, Task: e.Task})
			tv := taskVar{e.Task, e.Var}
			ex.allocSeqs[tv] = append(ex.allocSeqs[tv], i)
		}

	case trace.OpDeref:
		var lr lastRead
		var ok bool
		if x.sources != nil {
			src, known := x.sources[dataflow.Key{Method: e.Method, PC: e.PC}]
			switch {
			case known && src.Kind == dataflow.SrcFresh:
				// Freshly allocated object: never a use.
				return
			case known && src.Kind == dataflow.SrcLoad:
				// LoadMethod 0 means the load is in the deref's own
				// method; otherwise the interprocedural resolution
				// placed it in a caller (same task, earlier frame).
				lm := src.LoadMethod
				if lm == 0 {
					lm = e.Method
				}
				lr, ok = x.readsBySite[e.Task][siteKey{lm, src.LoadPC}]
			default:
				lr, ok = x.reads[e.Task][e.Value]
			}
		} else {
			lr, ok = x.reads[e.Task][e.Value]
		}
		if !ok || x.usedReads[lr.idx] {
			return
		}
		x.usedReads[lr.idx] = true
		ex.uses = append(ex.uses, Use{
			ReadIdx: lr.idx, DerefIdx: i, Var: lr.vr, Obj: e.Value,
			Task: e.Task, Method: e.Method, ReadPC: lr.pc, DerefPC: e.PC,
		})
		if x.streaming {
			x.live--
			x.retire(i, lr.idx) // promoted to a Use
			x.captureStack(i, e.Task, e.Method)
		}

	case trace.OpBranch:
		g := guard{
			idx: i, kind: e.Branch, pc: e.PC, target: e.TargetPC, method: e.Method,
		}
		if lr, ok := x.reads[e.Task][e.Value]; ok {
			g.vr = lr.vr
			g.ok = true
		}
		ex.guards[e.Task] = append(ex.guards[e.Task], g)

	case trace.OpInvoke:
		if x.streaming {
			x.liveStacks[e.Task] = append(x.liveStacks[e.Task], e.Method)
		}
	case trace.OpReturn:
		if x.streaming {
			if s := x.liveStacks[e.Task]; len(s) > 0 {
				x.liveStacks[e.Task] = s[:len(s)-1]
			}
		}
	}
}

// allocAfterIdx returns the first allocation to vr in task after
// trace index i (the free side of intra-event-allocation), or -1.
func (ex *extraction) allocAfterIdx(task trace.TaskID, vr trace.VarID, i int) int {
	seqs := ex.allocSeqs[taskVar{task, vr}]
	// seqs ascending; first > i?
	lo, hi := 0, len(seqs)
	for lo < hi {
		mid := (lo + hi) / 2
		if seqs[mid] <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(seqs) {
		return seqs[lo]
	}
	return -1
}

// allocBeforeIdx returns the first allocation to vr in task before
// trace index i (the use side of intra-event-allocation), or -1.
func (ex *extraction) allocBeforeIdx(task trace.TaskID, vr trace.VarID, i int) int {
	seqs := ex.allocSeqs[taskVar{task, vr}]
	if len(seqs) > 0 && seqs[0] < i {
		return seqs[0]
	}
	return -1
}

package detect

import (
	"cafa/internal/hb"
	"cafa/internal/trace"
)

// NaiveRace is one low-level conflicting-access race: a pair of
// accesses to the same memory location, at least one a write,
// unordered under the causality model. This is the conventional
// definition the paper shows drowns in false positives (1,664 in a
// 30-second ConnectBot trace, §4.1).
type NaiveRace struct {
	Var    trace.VarID
	AIdx   int // first access (trace order)
	BIdx   int // second access
	AWrite bool
	BWrite bool
}

type accessSite struct {
	method trace.MethodID
	pc     trace.PC
	write  bool
}

type access struct {
	idx  int
	task trace.TaskID
	site accessSite
}

// Naive runs the low-level detector: it reports one race per (memory
// location, site pair). Both scalar accesses (rd/wr) and pointer
// accesses participate.
func Naive(g *hb.Graph) []NaiveRace {
	tr := g.Trace()
	byVar := make(map[trace.VarID][]access)
	var varOrder []trace.VarID
	for i := range tr.Entries {
		e := &tr.Entries[i]
		var write bool
		switch e.Op {
		case trace.OpRead, trace.OpPtrRead:
			write = false
		case trace.OpWrite, trace.OpPtrWrite:
			write = true
		default:
			continue
		}
		if _, ok := byVar[e.Var]; !ok {
			varOrder = append(varOrder, e.Var)
		}
		byVar[e.Var] = append(byVar[e.Var], access{
			idx: i, task: e.Task, site: accessSite{method: e.Method, pc: e.PC, write: write},
		})
	}

	var out []NaiveRace
	type sitePair struct{ a, b accessSite }
	for _, v := range varOrder {
		accs := byVar[v]
		reported := make(map[sitePair]bool)
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				a, b := accs[i], accs[j]
				if !a.site.write && !b.site.write {
					continue
				}
				if a.task == b.task {
					continue
				}
				sp := sitePair{a.site, b.site}
				if reported[sp] {
					continue
				}
				if g.Concurrent(a.idx, b.idx) {
					reported[sp] = true
					out = append(out, NaiveRace{
						Var: v, AIdx: a.idx, BIdx: b.idx,
						AWrite: a.site.write, BWrite: b.site.write,
					})
				}
			}
		}
	}
	return out
}

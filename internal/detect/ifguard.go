package detect

import "cafa/internal/trace"

// maxPC stands in for the end of the function (∞ in Figure 6).
const maxPC = trace.PC(1<<32 - 1)

// GuardRegion returns the half-open PC interval [lo, hi) within the
// guard's method in which a dereference of the tested pointer is
// assumed safe (Figure 6). It is exported so the static if-guard pass
// in internal/static evaluates exactly the same region on the CFG
// that the dynamic heuristic evaluates on the trace window.
func GuardRegion(kind trace.BranchKind, pc, target trace.PC) (lo, hi trace.PC) {
	switch kind {
	case trace.BranchIfEqz:
		// Logged when NOT taken: the fallthrough path has a non-null
		// pointer. Forward jump: safe between the branch and the
		// target. Backward jump: safe from the branch to the end.
		if target > pc {
			return pc + 1, target
		}
		return pc + 1, maxPC
	case trace.BranchIfNez, trace.BranchIfEq:
		// Logged when taken: the target path has a non-null pointer.
		// Forward jump: safe from the target to the end. Backward
		// jump: safe between the target and the branch.
		if target > pc {
			return target, maxPC
		}
		return target, pc
	default:
		return 0, 0
	}
}

// guardWitness finds the first if-guard covering a use's dereference:
// a logged branch in the same task and method, matched to the same
// pointer location, executed before the dereference, whose safe
// region contains the dereference PC (§4.3). The returned guard is
// the provenance witness for the prune.
func (ex *extraction) guardWitness(u Use) (guard, bool) {
	for _, g := range ex.guards[u.Task] {
		if !g.ok || g.idx >= u.DerefIdx {
			continue
		}
		if g.vr != u.Var || g.method != u.Method {
			continue
		}
		lo, hi := GuardRegion(g.kind, g.pc, g.target)
		if u.DerefPC >= lo && u.DerefPC < hi {
			return g, true
		}
	}
	return guard{}, false
}

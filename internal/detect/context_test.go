package detect

import (
	"fmt"
	"strings"
	"testing"

	"cafa/internal/asm"
	"cafa/internal/dvm"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

func TestCallStackReconstruction(t *testing.T) {
	src := `
.method leaf(h) regs=3
    iget v1, h, ptr
    sput v1, out
    return-void
.end

.method mid(h) regs=2
    invoke-static leaf, h
    return-void
.end

.method top(h) regs=2
    invoke-static mid, h
    return-void
.end
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	s := sim.NewSystem(p, sim.Config{Tracer: col, Seed: 1})
	h := s.Heap().New("H")
	pay := s.Heap().New("P")
	h.Set(p.FieldID("ptr"), dvm.Obj(pay.ID))
	if _, err := s.StartThread("t", "top", dvm.Obj(h.ID)); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Find the pointer read inside leaf.
	var readIdx = -1
	for i := range col.T.Entries {
		if col.T.Entries[i].Op == trace.OpPtrRead {
			readIdx = i
		}
	}
	if readIdx < 0 {
		t.Fatal("no pointer read in trace")
	}
	stack := CallStack(col.T, readIdx)
	got := FormatStack(col.T, stack)
	if !strings.Contains(got, "mid") || !strings.HasSuffix(got, "leaf") {
		t.Errorf("stack = %q, want ... mid > leaf", got)
	}
	if CallStack(col.T, -1) != nil {
		t.Error("out-of-range index should yield nil")
	}
	if FormatStack(col.T, nil) == "" {
		t.Error("empty stack should render a placeholder")
	}
}

func TestDescribeWithContext(t *testing.T) {
	res, g := pipeline(t, mytracksSrc, Options{}, buildMyTracks(t))
	if len(res.Races) != 1 {
		t.Fatal("expected the MyTracks race")
	}
	out := res.Races[0].DescribeWithContext(g.Trace())
	if !strings.Contains(out, "use context:") || !strings.Contains(out, "free context:") {
		t.Errorf("DescribeWithContext = %q", out)
	}
	if !strings.Contains(out, "onServiceConnected") {
		t.Errorf("use context missing handler name: %q", out)
	}
}

// TestCallStackEdgeCases covers the reconstruction corners: an entry
// with no enclosing call, a trace truncated mid-call (an invoke whose
// return was never logged), and a stack deeper than the render cap.
func TestCallStackEdgeCases(t *testing.T) {
	t.Run("no enclosing call", func(t *testing.T) {
		tr := trace.New()
		tr.Methods[7] = "handler"
		tr.Append(trace.Entry{Task: 1, Op: trace.OpBegin})
		idx := tr.Append(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1, Method: 7})
		stack := CallStack(tr, idx)
		if len(stack) != 1 || stack[0] != 7 {
			t.Fatalf("stack = %v, want just the entry's own method", stack)
		}
		if got := FormatStack(tr, stack); got != "handler" {
			t.Errorf("FormatStack = %q, want %q", got, "handler")
		}
	})

	t.Run("no method at all", func(t *testing.T) {
		tr := trace.New()
		tr.Append(trace.Entry{Task: 1, Op: trace.OpBegin})
		idx := tr.Append(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1})
		if got := FormatStack(tr, CallStack(tr, idx)); got != "(no context)" {
			t.Errorf("FormatStack = %q, want placeholder", got)
		}
	})

	t.Run("truncated mid-call", func(t *testing.T) {
		// The trace ends inside `inner`: invokes logged, returns never
		// reached. The open frames must all be reported.
		tr := trace.New()
		tr.Methods[1], tr.Methods[2], tr.Methods[3] = "outer", "mid", "inner"
		tr.Append(trace.Entry{Task: 1, Op: trace.OpBegin})
		tr.Append(trace.Entry{Task: 1, Op: trace.OpInvoke, Method: 1})
		tr.Append(trace.Entry{Task: 1, Op: trace.OpInvoke, Method: 2})
		tr.Append(trace.Entry{Task: 1, Op: trace.OpInvoke, Method: 3})
		idx := tr.Append(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1, Method: 3})
		got := FormatStack(tr, CallStack(tr, idx))
		if got != "outer > mid > inner" {
			t.Errorf("FormatStack = %q, want %q", got, "outer > mid > inner")
		}
		// Unbalanced return on an empty stack must not panic.
		tr2 := trace.New()
		tr2.Methods[4] = "late"
		tr2.Append(trace.Entry{Task: 1, Op: trace.OpReturn})
		idx2 := tr2.Append(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1, Method: 4})
		if got := FormatStack(tr2, CallStack(tr2, idx2)); got != "late" {
			t.Errorf("FormatStack after stray return = %q, want %q", got, "late")
		}
	})

	t.Run("deeper than render cap", func(t *testing.T) {
		tr := trace.New()
		depth := MaxStackFrames + 3
		tr.Append(trace.Entry{Task: 1, Op: trace.OpBegin})
		for d := 0; d < depth; d++ {
			m := trace.MethodID(d + 1)
			tr.Methods[m] = fmt.Sprintf("f%02d", d)
			tr.Append(trace.Entry{Task: 1, Op: trace.OpInvoke, Method: m})
		}
		idx := tr.Append(trace.Entry{Task: 1, Op: trace.OpWrite, Var: 1, Method: trace.MethodID(depth)})
		stack := CallStack(tr, idx)
		if len(stack) != depth {
			t.Fatalf("stack depth = %d, want %d", len(stack), depth)
		}
		got := FormatStack(tr, stack)
		if !strings.HasPrefix(got, "(+3 outer) > ") {
			t.Errorf("FormatStack = %q, want elision prefix for 3 outer frames", got)
		}
		if strings.Count(got, " > ") != MaxStackFrames {
			t.Errorf("FormatStack = %q, want %d rendered frames", got, MaxStackFrames)
		}
		if !strings.HasSuffix(got, fmt.Sprintf("f%02d", depth-1)) {
			t.Errorf("FormatStack = %q, must keep the innermost frame", got)
		}
	})
}

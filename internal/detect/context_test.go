package detect

import (
	"strings"
	"testing"

	"cafa/internal/asm"
	"cafa/internal/dvm"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

func TestCallStackReconstruction(t *testing.T) {
	src := `
.method leaf(h) regs=3
    iget v1, h, ptr
    sput v1, out
    return-void
.end

.method mid(h) regs=2
    invoke-static leaf, h
    return-void
.end

.method top(h) regs=2
    invoke-static mid, h
    return-void
.end
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	s := sim.NewSystem(p, sim.Config{Tracer: col, Seed: 1})
	h := s.Heap().New("H")
	pay := s.Heap().New("P")
	h.Set(p.FieldID("ptr"), dvm.Obj(pay.ID))
	if _, err := s.StartThread("t", "top", dvm.Obj(h.ID)); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Find the pointer read inside leaf.
	var readIdx = -1
	for i := range col.T.Entries {
		if col.T.Entries[i].Op == trace.OpPtrRead {
			readIdx = i
		}
	}
	if readIdx < 0 {
		t.Fatal("no pointer read in trace")
	}
	stack := CallStack(col.T, readIdx)
	got := FormatStack(col.T, stack)
	if !strings.Contains(got, "mid") || !strings.HasSuffix(got, "leaf") {
		t.Errorf("stack = %q, want ... mid > leaf", got)
	}
	if CallStack(col.T, -1) != nil {
		t.Error("out-of-range index should yield nil")
	}
	if FormatStack(col.T, nil) == "" {
		t.Error("empty stack should render a placeholder")
	}
}

func TestDescribeWithContext(t *testing.T) {
	res, g := pipeline(t, mytracksSrc, Options{}, buildMyTracks(t))
	if len(res.Races) != 1 {
		t.Fatal("expected the MyTracks race")
	}
	out := res.Races[0].DescribeWithContext(g.Trace())
	if !strings.Contains(out, "use context:") || !strings.Contains(out, "free context:") {
		t.Errorf("DescribeWithContext = %q", out)
	}
	if !strings.Contains(out, "onServiceConnected") {
		t.Errorf("use context missing handler name: %q", out)
	}
}

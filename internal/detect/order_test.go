package detect

import (
	"sort"
	"testing"

	"cafa/internal/apps"
	"cafa/internal/hb"
	"cafa/internal/lockset"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// TestRaceOrderDeterministic asserts the detector's report order is
// the canonical SiteKey order (and therefore independent of
// extraction order), so concurrent analysis can never reorder output.
func TestRaceOrderDeterministic(t *testing.T) {
	for _, name := range []string{"Browser", "ToDoList"} {
		spec, ok := apps.ByName(name)
		if !ok {
			t.Fatalf("no app %q", name)
		}
		col := trace.NewCollector()
		out, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Sys.Run(); err != nil {
			t.Fatal(err)
		}
		g, err := hb.Build(col.T, hb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ls, err := lockset.Compute(col.T)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{{}, {KeepDuplicates: true}} {
			res, err := Detect(Input{Trace: col.T, Graph: g, Locks: ls}, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Races) < 2 {
				t.Fatalf("%s: want ≥ 2 races to check ordering, got %d", name, len(res.Races))
			}
			if !sort.SliceIsSorted(res.Races, func(i, j int) bool {
				return res.Races[i].Key().Less(res.Races[j].Key())
			}) {
				t.Errorf("%s (opts %+v): races not in SiteKey order", name, opts)
			}
			for i := 1; i < len(res.Races); i++ {
				ki, kj := res.Races[i-1].Key(), res.Races[i].Key()
				if !opts.KeepDuplicates && !ki.Less(kj) && ki != kj {
					t.Errorf("%s: adjacent races unordered: %+v vs %+v", name, ki, kj)
				}
			}
		}
	}
}

// TestSiteKeyLess pins the comparator's field precedence.
func TestSiteKeyLess(t *testing.T) {
	base := SiteKey{Field: 1, UseMethod: 2, UsePC: 3, FreeMethod: 4, FreePC: 5}
	cases := []struct {
		name string
		a, b SiteKey
		want bool
	}{
		{"equal", base, base, false},
		{"field", base, SiteKey{Field: 2}, true},
		{"field dominates", SiteKey{Field: 1, UsePC: 9}, SiteKey{Field: 2}, true},
		{"use method", base, SiteKey{Field: 1, UseMethod: 3}, true},
		{"use pc", base, SiteKey{Field: 1, UseMethod: 2, UsePC: 4}, true},
		{"free method", base, SiteKey{Field: 1, UseMethod: 2, UsePC: 3, FreeMethod: 5}, true},
		{"free pc", base, SiteKey{Field: 1, UseMethod: 2, UsePC: 3, FreeMethod: 4, FreePC: 6}, true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%s: Less(%+v, %+v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
		if c.want && c.b.Less(c.a) {
			t.Errorf("%s: comparator not antisymmetric", c.name)
		}
	}
}

package sim

import (
	"math/rand"
	"testing"

	"cafa/internal/dvm"
)

// refQueue is a simple reference model: a slice kept in the exact
// order Android's MessageQueue would deliver (head insertion for
// fronts, stable sort by ready time otherwise).
type refQueue struct {
	items []queuedEvent
}

func (r *refQueue) pushBack(ev queuedEvent) {
	i := len(r.items)
	for i > 0 && !r.items[i-1].frontFlag() && r.items[i-1].when > ev.when {
		i--
	}
	r.items = append(r.items, queuedEvent{})
	copy(r.items[i+1:], r.items[i:])
	r.items[i] = ev
}

func (r *refQueue) pushFront(ev queuedEvent) {
	ev.seq |= refFrontBit
	r.items = append([]queuedEvent{ev}, r.items...)
}

const refFrontBit = uint64(1) << 63

func (ev queuedEvent) frontFlag() bool { return ev.seq&refFrontBit != 0 }

func (r *refQueue) pop(now int64) (queuedEvent, bool) {
	if len(r.items) == 0 {
		return queuedEvent{}, false
	}
	head := r.items[0]
	if !head.frontFlag() && head.when > now {
		return queuedEvent{}, false
	}
	r.items = r.items[1:]
	head.seq &^= refFrontBit
	return head, true
}

func TestQueueMatchesReferenceModel(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		var q eventQueue
		var ref refQueue
		now := int64(0)
		seq := uint64(0)
		for step := 0; step < 40; step++ {
			switch r.Intn(4) {
			case 0, 1: // send with random delay
				seq++
				ev := queuedEvent{task: &Task{id: 1000 + 1}, when: now + int64(r.Intn(5)), seq: seq}
				ev.arg = dvm.Int64(int64(seq))
				q.pushBack(ev)
				ref.pushBack(ev)
			case 2: // sendAtFront
				seq++
				ev := queuedEvent{task: &Task{id: 1000 + 1}, when: now, seq: seq}
				ev.arg = dvm.Int64(int64(seq))
				q.pushFront(ev)
				ref.pushFront(ev)
			case 3: // pop (and occasionally advance time)
				if r.Intn(2) == 0 {
					now++
				}
				got, okG := q.pop(now)
				want, okR := ref.pop(now)
				if okG != okR {
					t.Fatalf("iter %d step %d: pop disagreement: impl=%v ref=%v", iter, step, okG, okR)
				}
				if okG && got.arg.Int != want.arg.Int {
					t.Fatalf("iter %d step %d: popped %d, reference %d", iter, step, got.arg.Int, want.arg.Int)
				}
			}
		}
		// Drain both at a far-future time; orders must agree exactly.
		now += 1000
		for {
			got, okG := q.pop(now)
			want, okR := ref.pop(now)
			if okG != okR {
				t.Fatalf("iter %d drain: availability disagreement", iter)
			}
			if !okG {
				break
			}
			if got.arg.Int != want.arg.Int {
				t.Fatalf("iter %d drain: popped %d, reference %d", iter, got.arg.Int, want.arg.Int)
			}
		}
		if !q.empty() {
			t.Fatalf("iter %d: queue not empty after drain", iter)
		}
	}
}

func TestQueueReadyAt(t *testing.T) {
	var q eventQueue
	if !q.empty() || q.size() != 0 {
		t.Error("fresh queue not empty")
	}
	q.pushBack(queuedEvent{when: 50, seq: 1})
	if got := q.readyAt(); got != 50 {
		t.Errorf("readyAt = %d, want 50", got)
	}
	q.pushBack(queuedEvent{when: 30, seq: 2})
	if got := q.readyAt(); got != 30 {
		t.Errorf("readyAt = %d, want 30 after earlier event", got)
	}
	q.pushFront(queuedEvent{when: 99, seq: 3})
	if got := q.readyAt(); got != 0 {
		t.Errorf("readyAt = %d, want 0 with a front message", got)
	}
	if q.size() != 3 {
		t.Errorf("size = %d, want 3", q.size())
	}
	// Fronts pop LIFO before any sorted event.
	q.pushFront(queuedEvent{when: 98, seq: 4})
	ev, ok := q.pop(0)
	if !ok || ev.seq != 4 {
		t.Errorf("pop = %v/%v, want front seq 4", ev.seq, ok)
	}
	ev, ok = q.pop(0)
	if !ok || ev.seq != 3 {
		t.Errorf("pop = %v/%v, want front seq 3", ev.seq, ok)
	}
	// Sorted event not ready yet.
	if _, ok := q.pop(10); ok {
		t.Error("popped an event before its ready time")
	}
	ev, ok = q.pop(30)
	if !ok || ev.seq != 2 {
		t.Errorf("pop = %v/%v, want seq 2 at t=30", ev.seq, ok)
	}
}

package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cafa/internal/dvm"
	"cafa/internal/obs"
	"cafa/internal/trace"
)

// Runtime observability (internal/obs). Dispatch is counted per event
// (not per instruction — steps accumulate once per Run) so the
// tracing half stays unmeasurably cheap with obs enabled.
var (
	cEventsDispatched = obs.NewCounter("sim_events_dispatched_total")
	cThreadsStarted   = obs.NewCounter("sim_threads_started_total")
	cSimSteps         = obs.NewCounter("sim_steps_total")
	cSimRuns          = obs.NewCounter("sim_runs_total")
)

// UninstrumentedListenerBase partitions listener handles: listeners at
// or above this value model listeners living in framework packages
// CAFA does not instrument (§5.2 notes only android.app, android.view,
// android.widget, and android.content are covered). The runtime still
// sequences them, but emits no register/perform entries — the source
// of the paper's Type I false positives.
const UninstrumentedListenerBase = 1 << 16

// Config tunes a System.
type Config struct {
	// Tracer receives all emitted entries. Defaults to trace.Discard.
	Tracer trace.Tracer
	// Seed drives the deterministic scheduler.
	Seed uint64
	// Slice is the number of instructions a task runs before the
	// scheduler rotates. Defaults to 32.
	Slice int
	// MaxSteps bounds total executed instructions (safety net against
	// runaway app scripts). Defaults to 100 million.
	MaxSteps uint64
	// Choose, when non-nil, overrides the scheduler's pick among n
	// runnable candidates (used by the replay module to force
	// adversarial interleavings). It must return a value in [0, n).
	Choose func(n int) int
	// DelayEvent, when non-nil, returns extra enqueue delay (ms) for
	// events whose handler has the given method name. The replay
	// module uses it to model adversarial timing (slow network, slow
	// services) and flip the order of racy events.
	DelayEvent func(method string) int64
	// DelayThread, when non-nil, returns an extra start delay (ms) for
	// threads whose entry method has the given name — the
	// OS-scheduling analogue of DelayEvent.
	DelayThread func(method string) int64
}

// Looper is a looper thread bound 1:1 to an event queue (§2.1).
type Looper struct {
	thread  *Task
	queue   eventQueue
	qid     trace.QueueID
	current *Task
	name    string
	proc    int32
}

// Queue returns the looper's queue id.
func (l *Looper) Queue() trace.QueueID { return l.qid }

// Handle returns the integer handle bytecode uses to address the
// looper's queue.
func (l *Looper) Handle() int64 { return int64(l.qid) }

// Pending returns the number of events waiting in the queue.
func (l *Looper) Pending() int { return l.queue.size() }

// LooperAt returns the i-th looper created on the system (nil when
// out of range). The first looper of an app is its main looper.
func (s *System) LooperAt(i int) *Looper {
	if i < 0 || i >= len(s.loopers) {
		return nil
	}
	return s.loopers[i]
}

type service struct {
	name string
	proc int32
}

type channelMsg struct {
	val dvm.Value
	txn trace.TxnID
}

type channel struct {
	buf     []channelMsg
	waiters []*Task
}

type listenerEntry struct {
	method *dvm.Method
}

type lockState struct {
	holder  *Task
	depth   int
	waiters []*Task
}

type injection struct {
	at       int64
	looper   *Looper
	method   *dvm.Method
	arg      dvm.Value
	delay    int64
	external bool
	seq      int
}

// System is one simulated device: processes, loopers, threads, a
// shared heap, and the virtual clock.
type System struct {
	prog   *dvm.Program
	heap   *dvm.Heap
	tracer trace.Tracer
	cfg    Config

	now      int64
	rng      uint64
	nextTask trace.TaskID
	nextQ    trace.QueueID
	nextTxn  trace.TxnID
	enqSeq   uint64

	tasks      map[trace.TaskID]*Task
	order      []*Task // creation order (diagnostics, final sweeps)
	ready      []*Task // runnable tasks (may contain stale entries)
	sleepers   []*Task // tasks in timed sleep
	loopers    []*Looper
	loopersByQ map[trace.QueueID]*Looper
	services   []*service
	channels   []*channel
	listeners  map[int64][]listenerEntry
	locks      map[trace.ObjID]*lockState
	monitors   map[trace.ObjID][]*Task
	injections []injection
	injSeq     int
	roots      map[string]int

	crashes    []Crash
	steps      uint64
	deadlocked bool
	ran        bool
}

// NewSystem builds a system over a program.
func NewSystem(prog *dvm.Program, cfg Config) *System {
	if cfg.Tracer == nil {
		cfg.Tracer = trace.Discard{}
	}
	if cfg.Slice <= 0 {
		cfg.Slice = 32
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 100_000_000
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	s := &System{
		prog:       prog,
		heap:       dvm.NewHeap(),
		tracer:     cfg.Tracer,
		cfg:        cfg,
		rng:        seed,
		nextTask:   1,
		nextQ:      1,
		nextTxn:    1,
		tasks:      make(map[trace.TaskID]*Task),
		loopersByQ: make(map[trace.QueueID]*Looper),
		listeners:  make(map[int64][]listenerEntry),
		locks:      make(map[trace.ObjID]*lockState),
		monitors:   make(map[trace.ObjID][]*Task),
		roots:      make(map[string]int),
	}
	prog.DeclareNames(cfg.Tracer)
	return s
}

// Heap exposes the shared heap so app builders can pre-allocate
// objects and set static handles before Run.
func (s *System) Heap() *dvm.Heap { return s.heap }

// Program returns the program under execution.
func (s *System) Program() *dvm.Program { return s.prog }

// Now returns the virtual clock (implements dvm.Env).
func (s *System) Now() int64 { return s.now }

// Crashes returns the uncaught exceptions observed during Run.
func (s *System) Crashes() []Crash { return s.crashes }

// Deadlocked reports whether Run ended with blocked tasks and no way
// to make progress.
func (s *System) Deadlocked() bool { return s.deadlocked }

// Steps returns the total executed bytecode instructions.
func (s *System) Steps() uint64 { return s.steps }

func (s *System) allocTask(name string, kind trace.TaskKind, proc int32) *Task {
	t := &Task{id: s.nextTask, name: name, kind: kind, proc: proc, state: tsBlocked}
	s.nextTask++
	s.tasks[t.id] = t
	s.order = append(s.order, t)
	return t
}

// AddLooper creates a looper thread with its event queue.
func (s *System) AddLooper(name string, proc int32) *Looper {
	t := s.allocTask(name, trace.KindThread, proc)
	t.isLooperThread = true
	l := &Looper{thread: t, qid: s.nextQ, name: name, proc: proc}
	s.nextQ++
	s.loopers = append(s.loopers, l)
	s.loopersByQ[l.qid] = l
	s.tracer.DeclareTask(trace.TaskInfo{ID: t.id, Kind: trace.KindThread, Name: name, Proc: proc})
	s.tracer.InternQueue(l.qid, name)
	return l
}

// AddService registers an RPC service hosted in a process; RPC calls
// to it run on fresh binder threads of that process. The returned
// handle is what bytecode passes to the rpc intrinsic.
func (s *System) AddService(name string, proc int32) int64 {
	s.services = append(s.services, &service{name: name, proc: proc})
	return int64(len(s.services))
}

// AddChannel creates a one-way message channel (the pipe/Unix-socket
// IPC of §5.2). The returned handle is what bytecode passes to
// msg-send / msg-recv.
func (s *System) AddChannel() int64 {
	s.channels = append(s.channels, &channel{})
	return int64(len(s.channels))
}

// StartThread creates a regular thread running method(arg), runnable
// at time zero. It returns the thread's task.
func (s *System) StartThread(name, method string, arg dvm.Value) (*Task, error) {
	m, err := s.handlerMethod(method)
	if err != nil {
		return nil, err
	}
	t := s.allocTask(name, trace.KindThread, 0)
	cThreadsStarted.Inc()
	s.tracer.DeclareTask(trace.TaskInfo{ID: t.id, Kind: trace.KindThread, Name: name, Proc: 0})
	ctx, err := s.newContext(t, m, arg)
	if err != nil {
		return nil, err
	}
	t.ctx = ctx
	s.roots[m.Name]++
	s.startOrDelay(t, m.Name)
	return t, nil
}

// Roots returns how many times each method name is entered directly by
// the harness — thread bodies (StartThread) and injected events
// (Inject). This is the closed-world entry-point inventory the static
// event-order pass needs: with it, a method's activation count is
// exactly roots plus statically-visible posts, so "runs at most once"
// becomes decidable. The map is a copy.
func (s *System) Roots() map[string]int {
	out := make(map[string]int, len(s.roots))
	for k, v := range s.roots {
		out[k] = v
	}
	return out
}

// startOrDelay makes a freshly created thread runnable, honoring the
// DelayThread scheduling bias.
func (s *System) startOrDelay(t *Task, method string) {
	if s.cfg.DelayThread != nil {
		if d := s.cfg.DelayThread(method); d > 0 {
			t.state = tsSleeping
			t.wakeAt = s.now + d
			t.blockedOn = "start delay"
			s.sleepers = append(s.sleepers, t)
			return
		}
	}
	t.state = tsReady
	s.pushReady(t)
}

// Inject schedules an external event: at virtual time at, method(arg)
// is enqueued on the looper's queue with the given delay. External
// events model sensor/user input and are conservatively chained by the
// external-input rule of §3.3.
func (s *System) Inject(at int64, l *Looper, method string, arg dvm.Value, delay int64) error {
	m, err := s.handlerMethod(method)
	if err != nil {
		return err
	}
	if at < 0 || delay < 0 {
		return fmt.Errorf("sim: negative injection time")
	}
	s.injections = append(s.injections, injection{
		at: at, looper: l, method: m, arg: arg, delay: delay, external: true, seq: s.injSeq,
	})
	s.injSeq++
	s.roots[m.Name]++
	return nil
}

func (s *System) handlerMethod(name string) (*dvm.Method, error) {
	idx, ok := s.prog.MethodIndex(name)
	if !ok {
		return nil, fmt.Errorf("sim: unknown method %q", name)
	}
	m := s.prog.Methods[idx]
	if m.NumParams > 1 {
		return nil, fmt.Errorf("sim: handler %q must take 0 or 1 params, has %d", name, m.NumParams)
	}
	return m, nil
}

func (s *System) newContext(t *Task, m *dvm.Method, arg dvm.Value) (*dvm.Context, error) {
	var args []dvm.Value
	if m.NumParams == 1 {
		args = []dvm.Value{arg}
	}
	return dvm.NewContext(s.prog, s.heap, s, s.tracer, t.id, m, args)
}

func (s *System) emit(e trace.Entry) {
	e.Time = s.now
	s.tracer.Emit(e)
}

// nextRand is a xorshift64* PRNG step.
func (s *System) nextRand() uint64 {
	x := s.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.rng = x
	return x * 0x2545F4914F6CDD1D
}

func (s *System) choose(n int) int {
	if n == 1 {
		return 0
	}
	if s.cfg.Choose != nil {
		c := s.cfg.Choose(n)
		if c < 0 || c >= n {
			c = 0
		}
		return c
	}
	return int(s.nextRand() % uint64(n))
}

// ErrMaxSteps is returned when the instruction budget is exhausted.
var ErrMaxSteps = errors.New("sim: max steps exceeded")

// Run drives the system to quiescence: all threads finished, all
// queues drained, all injections delivered. It returns ErrMaxSteps if
// the instruction budget runs out; deadlock is not an error (inspect
// Deadlocked).
func (s *System) Run() error {
	if s.ran {
		return errors.New("sim: Run called twice")
	}
	s.ran = true
	// Sort injections by (time, seq) for deterministic delivery.
	sort.SliceStable(s.injections, func(i, j int) bool {
		if s.injections[i].at != s.injections[j].at {
			return s.injections[i].at < s.injections[j].at
		}
		return s.injections[i].seq < s.injections[j].seq
	})
	// Looper threads begin first, in creation order.
	for _, l := range s.loopers {
		s.emit(trace.Entry{Task: l.thread.id, Op: trace.OpBegin})
		l.thread.beginEmitted = true
		l.thread.state = tsBlocked // loopers are "scheduled" via their queues
		l.thread.blockedOn = "event loop"
	}
	for {
		s.deliverInjections()
		s.wakeSleepers()
		if s.steps > s.cfg.MaxSteps {
			return ErrMaxSteps
		}
		progressed := s.scheduleOnce()
		if progressed {
			continue
		}
		if !s.advanceClock() {
			break
		}
	}
	s.finish()
	cSimRuns.Inc()
	cSimSteps.Add(int64(s.steps))
	return nil
}

// deliverInjections enqueues all injections due at or before now.
func (s *System) deliverInjections() {
	for len(s.injections) > 0 && s.injections[0].at <= s.now {
		inj := s.injections[0]
		s.injections = s.injections[1:]
		ev := s.allocTask(inj.method.Name, trace.KindEvent, inj.looper.proc)
		ev.looper = inj.looper
		ev.external = true
		s.tracer.DeclareTask(trace.TaskInfo{
			ID: ev.id, Kind: trace.KindEvent, Name: inj.method.Name,
			Looper: inj.looper.thread.id, Queue: inj.looper.qid, Proc: inj.looper.proc,
		})
		s.enqSeq++
		delay := inj.delay
		if s.cfg.DelayEvent != nil {
			delay += s.cfg.DelayEvent(inj.method.Name)
		}
		inj.looper.queue.pushBack(queuedEvent{
			task: ev, method: inj.method, arg: inj.arg,
			when: s.now + delay, seq: s.enqSeq,
		})
	}
}

// wakeSleepers resumes tasks whose sleep deadline has passed.
func (s *System) wakeSleepers() {
	kept := s.sleepers[:0]
	for _, t := range s.sleepers {
		if t.state == tsSleeping && t.wakeAt <= s.now {
			s.wake(t, dvm.Int64(0))
		} else if t.state == tsSleeping {
			kept = append(kept, t)
		}
	}
	s.sleepers = kept
}

// pushReady enqueues a task for scheduling.
func (s *System) pushReady(t *Task) { s.ready = append(s.ready, t) }

// scheduleOnce picks one runnable unit and runs a slice. It returns
// false when nothing is runnable right now.
func (s *System) scheduleOnce() bool {
	// Drop stale ready entries (tasks that blocked or finished after
	// being queued).
	for len(s.ready) > 0 {
		// Peek a random candidate among ready tasks and eligible
		// loopers; swap-remove keeps this O(1) and deterministic.
		var eligible []*Looper
		for _, l := range s.loopers {
			if l.current == nil && l.queue.readyAt() <= s.now {
				eligible = append(eligible, l)
			}
		}
		n := len(s.ready) + len(eligible)
		c := s.choose(n)
		if c >= len(s.ready) {
			s.popEvent(eligible[c-len(s.ready)])
			return true
		}
		t := s.ready[c]
		last := len(s.ready) - 1
		s.ready[c] = s.ready[last]
		s.ready = s.ready[:last]
		if t.state != tsReady || t.ctx == nil {
			continue // stale
		}
		s.runSlice(t)
		if t.state == tsReady {
			s.pushReady(t)
		}
		return true
	}
	for _, l := range s.loopers {
		if l.current == nil && l.queue.readyAt() <= s.now {
			s.popEvent(l)
			return true
		}
	}
	return false
}

// popEvent takes the next eligible event off a looper's queue and
// makes it the looper's current task.
func (s *System) popEvent(l *Looper) {
	ev, ok := l.queue.pop(s.now)
	if !ok {
		return
	}
	t := ev.task
	ctx, err := s.newContext(t, ev.method, ev.arg)
	if err != nil {
		// Handler arity was validated at send; this is unreachable in
		// practice but must not wedge the looper.
		s.crashes = append(s.crashes, Crash{Task: t.id, Name: t.name, Time: s.now, Err: err})
		t.state = tsCrashed
		return
	}
	t.ctx = ctx
	t.state = tsReady
	l.current = t
	cEventsDispatched.Inc()
	s.emit(trace.Entry{Task: t.id, Op: trace.OpBegin, Queue: l.qid, External: t.external})
	t.beginEmitted = true
	if t.rpcTxn != 0 {
		s.emit(trace.Entry{Task: t.id, Op: trace.OpRPCHandle, Txn: t.rpcTxn})
	}
	s.runSlice(t)
	if t.state == tsReady {
		s.pushReady(t)
	}
}

// runSlice executes up to cfg.Slice instructions of t.
func (s *System) runSlice(t *Task) {
	if !t.beginEmitted {
		s.emit(trace.Entry{Task: t.id, Op: trace.OpBegin})
		t.beginEmitted = true
		if t.rpcTxn != 0 {
			s.emit(trace.Entry{Task: t.id, Op: trace.OpRPCHandle, Txn: t.rpcTxn})
		}
	}
	for i := 0; i < s.cfg.Slice; i++ {
		st := t.ctx.Step()
		s.steps++
		switch st {
		case dvm.Running:
			continue
		case dvm.Blocked:
			return // intrinsic parked the task already
		case dvm.Finished:
			s.finishTask(t, nil)
			return
		case dvm.Crashed:
			s.finishTask(t, t.ctx.Err)
			return
		}
	}
}

// finishTask emits the end entry, wakes joiners, releases looper
// slots, and answers pending RPC clients.
func (s *System) finishTask(t *Task, crashErr error) {
	if crashErr != nil {
		t.state = tsCrashed
		t.err = crashErr
		s.crashes = append(s.crashes, Crash{Task: t.id, Name: t.name, Time: s.now, Err: crashErr})
	} else {
		t.state = tsDone
	}
	if t.rpcClient != nil {
		s.emit(trace.Entry{Task: t.id, Op: trace.OpRPCReply, Txn: t.rpcTxn})
	}
	s.emit(trace.Entry{Task: t.id, Op: trace.OpEnd})
	if t.rpcClient != nil {
		client := t.rpcClient
		s.emit(trace.Entry{Task: client.id, Op: trace.OpRPCRet, Txn: t.rpcTxn})
		result := dvm.Null()
		if crashErr == nil {
			result = t.ctx.Result
		}
		s.wake(client, result)
	}
	for _, j := range t.joiners {
		s.emit(trace.Entry{Task: j.id, Op: trace.OpJoin, Target: t.id})
		s.wake(j, dvm.Int64(0))
	}
	t.joiners = nil
	if t.looper != nil && t.looper.current == t {
		t.looper.current = nil
	}
}

// wake resumes a blocked task with a result value.
func (s *System) wake(t *Task, v dvm.Value) {
	if t.state != tsBlocked && t.state != tsSleeping {
		return
	}
	t.state = tsReady
	t.blockedOn = ""
	// Start-delayed threads have a runnable context that never entered
	// a blocking intrinsic; only suspended contexts need a Resume.
	if t.ctx.State() == dvm.Blocked {
		t.ctx.Resume(v)
	}
	s.pushReady(t)
}

// advanceClock jumps virtual time to the next actionable instant. It
// returns false when the system is quiescent or deadlocked.
func (s *System) advanceClock() bool {
	next := int64(math.MaxInt64)
	for _, t := range s.sleepers {
		if t.state == tsSleeping && t.wakeAt < next {
			next = t.wakeAt
		}
	}
	for _, l := range s.loopers {
		if l.current == nil {
			if ra := l.queue.readyAt(); ra < next {
				if ra < s.now {
					ra = s.now
				}
				// A ready queue at the current instant means scheduleOnce
				// would have run it; only future times reach here.
				next = ra
			}
		}
	}
	if len(s.injections) > 0 && s.injections[0].at < next {
		next = s.injections[0].at
	}
	if next == int64(math.MaxInt64) {
		// Nothing timed. Any blocked tasks now can never wake.
		for _, t := range s.order {
			if t.state == tsBlocked && !t.isLooperThread {
				s.deadlocked = true
				break
			}
		}
		return false
	}
	if next <= s.now {
		// Guard against livelock: force time forward.
		next = s.now + 1
	}
	s.now = next
	return true
}

// finish emits end entries for looper threads.
func (s *System) finish() {
	for _, l := range s.loopers {
		s.emit(trace.Entry{Task: l.thread.id, Op: trace.OpEnd})
		l.thread.state = tsDone
	}
}

// CaughtNPEs lists NullPointerExceptions that were swallowed by try
// handlers during the run — not crashes, but still use-after-free
// manifestations (the §6.2 data-loss pattern).
func (s *System) CaughtNPEs() []Crash {
	var out []Crash
	for _, t := range s.order {
		if t.ctx == nil {
			continue
		}
		for _, npe := range t.ctx.CaughtNPEs {
			out = append(out, Crash{Task: t.id, Name: t.name, Time: s.now, Err: npe})
		}
	}
	return out
}

// BlockedTasks lists tasks still blocked (deadlock diagnostics).
func (s *System) BlockedTasks() []string {
	var out []string
	for _, t := range s.order {
		if t.state == tsBlocked && !t.isLooperThread {
			out = append(out, fmt.Sprintf("%s (t%d) on %s", t.name, t.id, t.blockedOn))
		}
	}
	return out
}

package sim

import (
	"strings"
	"testing"

	"cafa/internal/asm"
	"cafa/internal/dvm"
	"cafa/internal/trace"
)

const rpcCrashSrc = `
.method onBind(arg) regs=2
    throw-npe
    return-void
.end

.method main(svc) regs=5
    const-method v1, onBind
    const-null v2
    rpc svc, v1, v2 -> v3
    if-eqz v3, gotNull
    return-void
gotNull:
    const-int v4, #1
    sput-int v4, sawNull
    return-void
.end
`

func TestRPCServerCrashYieldsNullReply(t *testing.T) {
	s, tr := runSrc(t, rpcCrashSrc, func(s *System, p *dvm.Program) {
		svc := s.AddService("Svc", 1)
		if _, err := s.StartThread("main", "main", dvm.Int64(svc)); err != nil {
			t.Fatal(err)
		}
	})
	if got := s.Heap().GetStatic(s.Program().FieldID("sawNull"), dvm.KInt); got.Int != 1 {
		t.Error("crashed RPC handler should reply null")
	}
	if len(s.Crashes()) != 1 {
		t.Errorf("crashes = %d, want 1 (the binder thread)", len(s.Crashes()))
	}
	// The reply/ret entries still exist so causality is preserved.
	if len(findOps(tr, trace.OpRPCReply)) != 1 || len(findOps(tr, trace.OpRPCRet)) != 1 {
		t.Error("rpc reply/ret entries missing after server crash")
	}
}

const multiListenerSrc = `
.method cb1(arg) regs=2
    sget-int v1, order
    const-int v0, #10
    add-int v1, v1, v0
    sput-int v1, order
    return-void
.end

.method cb2(arg) regs=3
    sget-int v1, order
    const-int v2, #3
    mul-int v1, v1, v2
    sput-int v1, order
    return-void
.end

.method main(arg) regs=4
    const-int v1, #5
    const-method v2, cb1
    register v1, v2
    const-method v2, cb2
    register v1, v2
    const-null v3
    fire v1, v3
    return-void
.end
`

func TestMultipleListenersRunInRegistrationOrder(t *testing.T) {
	s, tr := runSrc(t, multiListenerSrc, func(s *System, p *dvm.Program) {
		l := s.AddLooper("main", 0)
		if err := s.Inject(0, l, "main", dvm.Null(), 0); err != nil {
			t.Fatal(err)
		}
	})
	// order starts 0: cb1 adds 10 (=10), cb2 multiplies by 3 (=30).
	// Reversed order would give 0*3+10 = 10.
	if got := s.Heap().GetStatic(s.Program().FieldID("order"), dvm.KInt); got.Int != 30 {
		t.Errorf("order = %d, want 30 (registration order)", got.Int)
	}
	if performs := findOps(tr, trace.OpPerform); len(performs) != 2 {
		t.Errorf("perform entries = %d, want 2", len(performs))
	}
}

const bufferedChannelSrc = `
.method producer(ch) regs=4
    const-int v1, #1
    msg-send ch, v1
    const-int v1, #2
    msg-send ch, v1
    const-int v1, #3
    msg-send ch, v1
    return-void
.end

.method consumer(ch) regs=6
    const-int v4, #20
    sleep v4
    msg-recv ch -> v1
    msg-recv ch -> v2
    msg-recv ch -> v3
    const-int v5, #100
    mul-int v1, v1, v5
    add-int v1, v1, v2
    mul-int v1, v1, v5
    add-int v1, v1, v3
    sput-int v1, combined
    return-void
.end
`

func TestBufferedChannelPreservesFIFO(t *testing.T) {
	var ch int64
	s, _ := runSrc(t, bufferedChannelSrc, func(s *System, p *dvm.Program) {
		ch = s.AddChannel()
		if _, err := s.StartThread("prod", "producer", dvm.Int64(ch)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.StartThread("cons", "consumer", dvm.Int64(ch)); err != nil {
			t.Fatal(err)
		}
	})
	// 1,2,3 in order → ((1*100)+2)*100+3 = 10203.
	if got := s.Heap().GetStatic(s.Program().FieldID("combined"), dvm.KInt); got.Int != 10203 {
		t.Errorf("combined = %d, want 10203 (FIFO delivery)", got.Int)
	}
}

func TestMaxStepsEnforced(t *testing.T) {
	src := `
.method main(arg) regs=2
loop:
    goto loop
.end
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(p, Config{MaxSteps: 1000})
	if _, err := s.StartThread("main", "main", dvm.Null()); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != ErrMaxSteps {
		t.Errorf("Run = %v, want ErrMaxSteps", err)
	}
}

func TestCaughtNPEsRecorded(t *testing.T) {
	src := `
.method main(arg) regs=2
    try handler
    throw-npe
    end-try
    return-void
handler:
    return-void
.end
`
	s, _ := runSrc(t, src, func(s *System, p *dvm.Program) {
		if _, err := s.StartThread("main", "main", dvm.Null()); err != nil {
			t.Fatal(err)
		}
	})
	if len(s.Crashes()) != 0 {
		t.Error("caught NPE must not be a crash")
	}
	caught := s.CaughtNPEs()
	if len(caught) != 1 {
		t.Fatalf("caught NPEs = %d, want 1", len(caught))
	}
	if !strings.Contains(caught[0].Err.Error(), "NullPointerException") {
		t.Errorf("caught = %v", caught[0])
	}
}

func TestDelayThreadBias(t *testing.T) {
	src := `
.method first(arg) regs=2
    sget-int v1, mark
    const-int v0, #1
    add-int v1, v1, v0
    sput-int v1, mark
    return-void
.end

.method second(arg) regs=3
    sget-int v1, mark
    const-int v2, #10
    mul-int v1, v1, v2
    sput-int v1, mark
    return-void
.end
`
	run := func(delaySecond bool) int64 {
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Seed: 1}
		if delaySecond {
			cfg.DelayThread = func(m string) int64 {
				if m == "first" {
					return 50
				}
				return 0
			}
		}
		s := NewSystem(p, cfg)
		if _, err := s.StartThread("a", "first", dvm.Null()); err != nil {
			t.Fatal(err)
		}
		if _, err := s.StartThread("b", "second", dvm.Null()); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Heap().GetStatic(p.FieldID("mark"), dvm.KInt).Int
	}
	// Delayed "first": second runs first → 0*10=0, then +1 → 1.
	if got := run(true); got != 1 {
		t.Errorf("biased run mark = %d, want 1", got)
	}
}

func TestLooperAtAndHandles(t *testing.T) {
	p, err := asm.Assemble(loopbackSrc)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(p, Config{})
	if s.LooperAt(0) != nil {
		t.Error("LooperAt on empty system should be nil")
	}
	l := s.AddLooper("main", 0)
	if s.LooperAt(0) != l || s.LooperAt(1) != nil || s.LooperAt(-1) != nil {
		t.Error("LooperAt indexing wrong")
	}
	if l.Handle() != int64(l.Queue()) {
		t.Error("handle must equal queue id")
	}
	if l.Pending() != 0 {
		t.Error("fresh queue should be empty")
	}
}

func TestDeviceSinkCountsAndBytes(t *testing.T) {
	p, err := asm.Assemble(loopbackSrc)
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewDeviceSink()
	s := NewSystem(p, Config{Tracer: sink})
	l := s.AddLooper("main", 0)
	if err := s.Inject(0, l, "onA", dvm.Null(), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.Entries() == 0 {
		t.Error("device sink saw no entries")
	}
	if sink.Bytes() == 0 {
		t.Error("device sink wrote no bytes")
	}
}

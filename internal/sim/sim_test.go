package sim

import (
	"bytes"
	"strings"
	"testing"

	"cafa/internal/asm"
	"cafa/internal/dvm"
	"cafa/internal/trace"
)

// runSrc assembles src, applies build to wire the system, runs it, and
// returns the system and its trace.
func runSrc(t *testing.T, src string, build func(s *System, p *dvm.Program)) (*System, *trace.Trace) {
	t.Helper()
	return runSrcSeed(t, src, 1, build)
}

func runSrcSeed(t *testing.T, src string, seed uint64, build func(s *System, p *dvm.Program)) (*System, *trace.Trace) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	s := NewSystem(p, Config{Tracer: col, Seed: seed})
	build(s, p)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := col.T.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	return s, col.T
}

// opsOf extracts (op, taskName) pairs for inspection.
func findOps(tr *trace.Trace, op trace.Op) []trace.Entry {
	var out []trace.Entry
	for _, e := range tr.Entries {
		if e.Op == op {
			out = append(out, e)
		}
	}
	return out
}

// eventOrder returns the names of event tasks in begin order.
func eventOrder(tr *trace.Trace) []string {
	var names []string
	for _, e := range tr.Entries {
		if e.Op == trace.OpBegin && tr.IsEventTask(e.Task) {
			names = append(names, tr.TaskName(e.Task))
		}
	}
	return names
}

const loopbackSrc = `
.method onA(arg) regs=2
    const-int v1, #1
    sput-int v1, sawA
    return-void
.end

.method onB(arg) regs=2
    const-int v1, #1
    sput-int v1, sawB
    return-void
.end
`

func TestExternalEventRuns(t *testing.T) {
	s, tr := runSrc(t, loopbackSrc, func(s *System, p *dvm.Program) {
		l := s.AddLooper("main", 0)
		if err := s.Inject(0, l, "onA", dvm.Null(), 0); err != nil {
			t.Fatal(err)
		}
	})
	if got := s.Heap().GetStatic(s.Program().FieldID("sawA"), dvm.KInt); got.Int != 1 {
		t.Error("handler did not run")
	}
	begins := findOps(tr, trace.OpBegin)
	var evBegin *trace.Entry
	for i := range begins {
		if tr.IsEventTask(begins[i].Task) {
			evBegin = &begins[i]
		}
	}
	if evBegin == nil {
		t.Fatal("no event begin entry")
	}
	if !evBegin.External {
		t.Error("externally injected event not marked external")
	}
	if len(findOps(tr, trace.OpSend)) != 0 {
		t.Error("external events must not have send entries")
	}
	if tr.EventCount() != 1 {
		t.Errorf("EventCount = %d, want 1", tr.EventCount())
	}
}

const senderSrc = `
.method onA(arg) regs=1
    return-void
.end

.method onB(arg) regs=1
    return-void
.end

.method sender(q) regs=5
    const-method v1, onA
    const-method v2, onB
    const-null v3
    const-int v4, #0
    send q, v1, v4, v3
    send q, v2, v4, v3
    return-void
.end
`

func TestFIFOSameDelay(t *testing.T) {
	// Figure 4b: two sends, same delay → A before B, every seed.
	for seed := uint64(1); seed <= 5; seed++ {
		_, tr := runSrcSeed(t, senderSrc, seed, func(s *System, p *dvm.Program) {
			l := s.AddLooper("main", 0)
			if _, err := s.StartThread("T", "sender", dvm.Int64(l.Handle())); err != nil {
				t.Fatal(err)
			}
		})
		order := eventOrder(tr)
		if len(order) != 2 || order[0] != "onA" || order[1] != "onB" {
			t.Fatalf("seed %d: event order %v, want [onA onB]", seed, order)
		}
	}
}

const delaySrc = `
.method onA(arg) regs=1
    return-void
.end

.method onB(arg) regs=1
    return-void
.end

.method sender(q) regs=6
    const-method v1, onA
    const-method v2, onB
    const-null v3
    const-int v4, #5
    send q, v1, v4, v3    ; A with delay 5
    const-int v5, #2
    sleep v5              ; two ms pass
    const-int v4, #0
    send q, v2, v4, v3    ; B with delay 0
    return-void
.end
`

func TestDelayReordersEvents(t *testing.T) {
	// Figure 4c: A sent first with delay 5, B sent at t+2 with delay 0
	// → B runs before A.
	_, tr := runSrc(t, delaySrc, func(s *System, p *dvm.Program) {
		l := s.AddLooper("main", 0)
		if _, err := s.StartThread("T", "sender", dvm.Int64(l.Handle())); err != nil {
			t.Fatal(err)
		}
	})
	order := eventOrder(tr)
	if len(order) != 2 || order[0] != "onB" || order[1] != "onA" {
		t.Fatalf("event order %v, want [onB onA]", order)
	}
}

const frontSrc = `
.method onA(arg) regs=1
    return-void
.end

.method onB(arg) regs=1
    return-void
.end

.method onC(q) regs=5
    const-method v1, onA
    const-method v2, onB
    const-null v3
    const-int v4, #0
    send q, v1, v4, v3        ; send(A)
    send-front q, v2, v3      ; sendAtFront(B)
    return-void
.end
`

func TestSendAtFrontFromSameLooper(t *testing.T) {
	// Figure 4d: C executes on the same looper; its sendAtFront(B) is
	// guaranteed enqueued before A can run → B before A.
	for seed := uint64(1); seed <= 5; seed++ {
		_, tr := runSrcSeed(t, frontSrc, seed, func(s *System, p *dvm.Program) {
			l := s.AddLooper("main", 0)
			if err := s.Inject(0, l, "onC", dvm.Int64(l.Handle()), 0); err != nil {
				t.Fatal(err)
			}
		})
		order := eventOrder(tr)
		if len(order) != 3 || order[0] != "onC" || order[1] != "onB" || order[2] != "onA" {
			t.Fatalf("seed %d: event order %v, want [onC onB onA]", seed, order)
		}
	}
}

const forkJoinSrc = `
.method worker(arg) regs=2
    const-int v1, #7
    sput-int v1, fromWorker
    return-void
.end

.method main(arg) regs=4
    const-method v1, worker
    const-null v2
    fork v1, v2 -> v3
    join v3
    sget-int v1, fromWorker
    sput-int v1, afterJoin
    return-void
.end
`

func TestForkJoin(t *testing.T) {
	s, tr := runSrc(t, forkJoinSrc, func(s *System, p *dvm.Program) {
		if _, err := s.StartThread("main", "main", dvm.Null()); err != nil {
			t.Fatal(err)
		}
	})
	if got := s.Heap().GetStatic(s.Program().FieldID("afterJoin"), dvm.KInt); got.Int != 7 {
		t.Errorf("afterJoin = %d, want 7", got.Int)
	}
	forks := findOps(tr, trace.OpFork)
	joins := findOps(tr, trace.OpJoin)
	if len(forks) != 1 || len(joins) != 1 {
		t.Fatalf("forks=%d joins=%d", len(forks), len(joins))
	}
	// end(u) must precede join(t,u) in trace order.
	var endSeq, joinSeq int
	for i, e := range tr.Entries {
		if e.Op == trace.OpEnd && e.Task == forks[0].Target {
			endSeq = i
		}
		if e.Op == trace.OpJoin {
			joinSeq = i
		}
	}
	if endSeq > joinSeq {
		t.Error("join entry precedes target's end entry")
	}
}

const lockSrc = `
.method worker(lk) regs=4
    lock lk
    lock lk              ; reentrant
    sget-int v1, counter
    const-int v2, #1
    add-int v1, v1, v2
    sput-int v1, counter
    unlock lk
    unlock lk
    return-void
.end

.method main(arg) regs=6
    new v0, Lock
    sput v0, theLock
    const-method v1, worker
    fork v1, v0 -> v2
    fork v1, v0 -> v3
    fork v1, v0 -> v4
    join v2
    join v3
    join v4
    return-void
.end
`

func TestLockMutualExclusionAndReentrancy(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		s, tr := runSrcSeed(t, lockSrc, seed, func(s *System, p *dvm.Program) {
			if _, err := s.StartThread("main", "main", dvm.Null()); err != nil {
				t.Fatal(err)
			}
		})
		if got := s.Heap().GetStatic(s.Program().FieldID("counter"), dvm.KInt); got.Int != 3 {
			t.Errorf("seed %d: counter = %d, want 3", seed, got.Int)
		}
		// Exactly one lock/unlock pair per worker (reentrancy collapsed).
		if locks := findOps(tr, trace.OpLock); len(locks) != 3 {
			t.Errorf("seed %d: lock entries = %d, want 3", seed, len(locks))
		}
		if unlocks := findOps(tr, trace.OpUnlock); len(unlocks) != 3 {
			t.Errorf("seed %d: unlock entries = %d, want 3", seed, len(unlocks))
		}
		if s.Deadlocked() {
			t.Errorf("seed %d: deadlocked: %v", seed, s.BlockedTasks())
		}
	}
}

const waitNotifySrc = `
.method waiter(mon) regs=3
    wait mon
    const-int v1, #1
    sput-int v1, woke
    return-void
.end

.method main(arg) regs=6
    new v0, Monitor
    const-method v1, waiter
    fork v1, v0 -> v2
    const-int v3, #5
    sleep v3
    notify v0
    join v2
    return-void
.end
`

func TestWaitNotify(t *testing.T) {
	s, tr := runSrc(t, waitNotifySrc, func(s *System, p *dvm.Program) {
		if _, err := s.StartThread("main", "main", dvm.Null()); err != nil {
			t.Fatal(err)
		}
	})
	if got := s.Heap().GetStatic(s.Program().FieldID("woke"), dvm.KInt); got.Int != 1 {
		t.Error("waiter never woke")
	}
	notifies := findOps(tr, trace.OpNotify)
	waits := findOps(tr, trace.OpWait)
	if len(notifies) != 1 || len(waits) != 1 {
		t.Fatalf("notifies=%d waits=%d", len(notifies), len(waits))
	}
	// notify must precede wait in trace order (signal-and-wait rule).
	var ni, wi int
	for i, e := range tr.Entries {
		if e.Op == trace.OpNotify {
			ni = i
		}
		if e.Op == trace.OpWait {
			wi = i
		}
	}
	if ni > wi {
		t.Error("wait entry precedes notify entry")
	}
}

const rpcSrc = `
.method onBind(arg) regs=2
    const-int v1, #42
    return v1
.end

.method main(svc) regs=5
    const-method v1, onBind
    const-null v2
    rpc svc, v1, v2 -> v3
    sput-int v3, reply
    return-void
.end
`

func TestRPCRoundTrip(t *testing.T) {
	var svc int64
	s, tr := runSrc(t, rpcSrc, func(s *System, p *dvm.Program) {
		svc = s.AddService("TrackRecordingService", 1)
		if _, err := s.StartThread("main", "main", dvm.Int64(svc)); err != nil {
			t.Fatal(err)
		}
	})
	if got := s.Heap().GetStatic(s.Program().FieldID("reply"), dvm.KInt); got.Int != 42 {
		t.Errorf("reply = %d, want 42", got.Int)
	}
	var call, handle, reply, ret int
	for i, e := range tr.Entries {
		switch e.Op {
		case trace.OpRPCCall:
			call = i
		case trace.OpRPCHandle:
			handle = i
		case trace.OpRPCReply:
			reply = i
		case trace.OpRPCRet:
			ret = i
		}
	}
	if !(call < handle && handle < reply && reply < ret) {
		t.Errorf("rpc entry order call=%d handle=%d reply=%d ret=%d", call, handle, reply, ret)
	}
	// The binder thread must run in the service's process.
	for _, ti := range tr.Tasks {
		if strings.HasPrefix(ti.Name, "binder:") && ti.Proc != 1 {
			t.Errorf("binder thread in proc %d, want 1", ti.Proc)
		}
	}
}

const msgSrc = `
.method producer(ch) regs=4
    const-int v1, #99
    msg-send ch, v1
    return-void
.end

.method consumer(ch) regs=3
    msg-recv ch -> v1
    sput-int v1, got
    return-void
.end
`

func TestMessageChannelBothOrders(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		var ch int64
		s, tr := runSrcSeed(t, msgSrc, seed, func(s *System, p *dvm.Program) {
			ch = s.AddChannel()
			if _, err := s.StartThread("prod", "producer", dvm.Int64(ch)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.StartThread("cons", "consumer", dvm.Int64(ch)); err != nil {
				t.Fatal(err)
			}
		})
		if got := s.Heap().GetStatic(s.Program().FieldID("got"), dvm.KInt); got.Int != 99 {
			t.Fatalf("seed %d: got = %d, want 99", seed, got.Int)
		}
		var si, ri = -1, -1
		for i, e := range tr.Entries {
			if e.Op == trace.OpMsgSend {
				si = i
			}
			if e.Op == trace.OpMsgRecv {
				ri = i
			}
		}
		if si < 0 || ri < 0 || si > ri {
			t.Fatalf("seed %d: msg order send=%d recv=%d", seed, si, ri)
		}
	}
}

const listenerSrc = `
.method onConnected(arg) regs=2
    const-int v1, #1
    sput-int v1, performed
    return-void
.end

.method registrar(arg) regs=4
    const-int v1, #7
    const-method v2, onConnected
    register v1, v2
    return-void
.end

.method firer(arg) regs=4
    const-int v1, #7
    const-null v2
    fire v1, v2
    return-void
.end
`

func TestListenersInstrumented(t *testing.T) {
	s, tr := runSrc(t, listenerSrc, func(s *System, p *dvm.Program) {
		l := s.AddLooper("main", 0)
		if err := s.Inject(0, l, "registrar", dvm.Null(), 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Inject(1, l, "firer", dvm.Null(), 0); err != nil {
			t.Fatal(err)
		}
	})
	if got := s.Heap().GetStatic(s.Program().FieldID("performed"), dvm.KInt); got.Int != 1 {
		t.Error("listener did not perform")
	}
	if len(findOps(tr, trace.OpRegister)) != 1 || len(findOps(tr, trace.OpPerform)) != 1 {
		t.Error("register/perform entries missing")
	}
}

const rawListenerSrc = `
.method onConnected(arg) regs=2
    const-int v1, #1
    sput-int v1, performed
    return-void
.end

.method registrar(arg) regs=4
    const-int v1, #65543     ; >= UninstrumentedListenerBase
    const-method v2, onConnected
    register v1, v2
    return-void
.end

.method firer(arg) regs=4
    const-int v1, #65543
    const-null v2
    fire v1, v2
    return-void
.end
`

func TestListenersUninstrumented(t *testing.T) {
	s, tr := runSrc(t, rawListenerSrc, func(s *System, p *dvm.Program) {
		l := s.AddLooper("main", 0)
		if err := s.Inject(0, l, "registrar", dvm.Null(), 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Inject(1, l, "firer", dvm.Null(), 0); err != nil {
			t.Fatal(err)
		}
	})
	if got := s.Heap().GetStatic(s.Program().FieldID("performed"), dvm.KInt); got.Int != 1 {
		t.Error("listener did not perform")
	}
	if len(findOps(tr, trace.OpRegister)) != 0 || len(findOps(tr, trace.OpPerform)) != 0 {
		t.Error("uninstrumented listener must not emit register/perform entries")
	}
}

const crashSrc = `
.method onDestroy(this) regs=2
    const-null v1
    iput v1, this, providerUtils
    return-void
.end

.method onConnected(this) regs=2
    iget v1, this, providerUtils
    invoke-virtual onConnected, v1   ; NPE when providerUtils is null
    return-void
.end
`

func TestCrashRecordedAndTraceStaysValid(t *testing.T) {
	s, tr := runSrc(t, crashSrc, func(s *System, p *dvm.Program) {
		l := s.AddLooper("main", 0)
		act := s.Heap().New("Activity")
		if err := s.Inject(0, l, "onDestroy", dvm.Obj(act.ID), 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Inject(1, l, "onConnected", dvm.Obj(act.ID), 0); err != nil {
			t.Fatal(err)
		}
	})
	if len(s.Crashes()) != 1 {
		t.Fatalf("crashes = %v, want 1", s.Crashes())
	}
	c := s.Crashes()[0]
	if !strings.Contains(c.Err.Error(), "NullPointerException") {
		t.Errorf("crash err = %v", c.Err)
	}
	if c.String() == "" {
		t.Error("empty crash string")
	}
	// Even with the crash, every begun task has an end entry.
	begun := map[trace.TaskID]bool{}
	for _, e := range tr.Entries {
		if e.Op == trace.OpBegin {
			begun[e.Task] = true
		}
		if e.Op == trace.OpEnd {
			delete(begun, e.Task)
		}
	}
	if len(begun) != 0 {
		t.Errorf("tasks without end entries: %v", begun)
	}
}

func TestDeterminism(t *testing.T) {
	gen := func(seed uint64) *trace.Trace {
		_, tr := runSrcSeed(t, lockSrc, seed, func(s *System, p *dvm.Program) {
			if _, err := s.StartThread("main", "main", dvm.Null()); err != nil {
				t.Fatal(err)
			}
		})
		return tr
	}
	a, b := gen(3), gen(3)
	var ba, bb bytes.Buffer
	if err := a.Encode(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("same seed produced different traces")
	}
}

const deadlockSrc = `
.method main(arg) regs=2
    new v0, Monitor
    wait v0
    return-void
.end
`

func TestDeadlockDetected(t *testing.T) {
	s, _ := runSrc(t, deadlockSrc, func(s *System, p *dvm.Program) {
		if _, err := s.StartThread("main", "main", dvm.Null()); err != nil {
			t.Fatal(err)
		}
	})
	if !s.Deadlocked() {
		t.Error("deadlock not detected")
	}
	if len(s.BlockedTasks()) != 1 {
		t.Errorf("blocked tasks = %v", s.BlockedTasks())
	}
}

const selfSleepSrc = `
.method main(arg) regs=3
    self -> v1
    sput-int v1, myId
    const-int v2, #50
    sleep v2
    const-int v2, #3
    spin v2
    return-void
.end
`

func TestSelfSleepSpin(t *testing.T) {
	s, _ := runSrc(t, selfSleepSrc, func(s *System, p *dvm.Program) {
		if _, err := s.StartThread("main", "main", dvm.Null()); err != nil {
			t.Fatal(err)
		}
	})
	if got := s.Heap().GetStatic(s.Program().FieldID("myId"), dvm.KInt); got.Int == 0 {
		t.Error("self returned 0")
	}
	if s.Now() < 50 {
		t.Errorf("clock = %d, want >= 50 after sleep", s.Now())
	}
}

func TestRunTwiceRejected(t *testing.T) {
	p, err := asm.Assemble(loopbackSrc)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(p, Config{})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err == nil {
		t.Error("second Run must fail")
	}
}

func TestIntrinsicErrorsCrashTask(t *testing.T) {
	src := `
.method main(arg) regs=2
    const-int v1, #999
    join v1              ; bad thread handle
    return-void
.end
`
	s, _ := runSrc(t, src, func(s *System, p *dvm.Program) {
		if _, err := s.StartThread("main", "main", dvm.Null()); err != nil {
			t.Fatal(err)
		}
	})
	if len(s.Crashes()) != 1 {
		t.Fatalf("crashes = %v, want 1", s.Crashes())
	}
}

func TestChooseHookOverridesScheduler(t *testing.T) {
	// Force the scheduler to always pick the last candidate; the run
	// must still complete correctly.
	p, err := asm.Assemble(msgSrc)
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	s := NewSystem(p, Config{Tracer: col, Choose: func(n int) int { return n - 1 }})
	ch := s.AddChannel()
	if _, err := s.StartThread("prod", "producer", dvm.Int64(ch)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartThread("cons", "consumer", dvm.Int64(ch)); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Heap().GetStatic(p.FieldID("got"), dvm.KInt); got.Int != 99 {
		t.Errorf("got = %d, want 99", got.Int)
	}
}

package sim

import (
	"fmt"
	"sync/atomic"

	"cafa/internal/dvm"
	"cafa/internal/trace"
)

// Intrinsic implements dvm.Env: the runtime services bytecode reaches
// through the intrinsic instruction.
func (s *System) Intrinsic(c *dvm.Context, in dvm.Intrinsic, args []dvm.Value) (dvm.Value, bool, error) {
	t := s.tasks[c.Task]
	if t == nil {
		return dvm.Value{}, false, fmt.Errorf("sim: intrinsic from unknown task t%d", c.Task)
	}
	switch in {
	case dvm.IntrSend, dvm.IntrSendFront:
		return s.doSend(t, in, args)
	case dvm.IntrFork:
		return s.doFork(t, args)
	case dvm.IntrJoin:
		return s.doJoin(t, args)
	case dvm.IntrLock:
		return s.doLock(t, args)
	case dvm.IntrUnlock:
		return s.doUnlock(t, args)
	case dvm.IntrWait:
		return s.doWait(t, args)
	case dvm.IntrNotify:
		return s.doNotify(t, args)
	case dvm.IntrRegister:
		return s.doRegister(t, args)
	case dvm.IntrFire:
		return s.doFire(t, c, args)
	case dvm.IntrRPC:
		return s.doRPC(t, args)
	case dvm.IntrMsgSend:
		return s.doMsgSend(t, args)
	case dvm.IntrMsgRecv:
		return s.doMsgRecv(t, args)
	case dvm.IntrSleep:
		return s.doSleep(t, args)
	case dvm.IntrSpin:
		return s.doSpin(args)
	case dvm.IntrSelf:
		return dvm.Int64(int64(t.id)), false, nil
	default:
		return dvm.Value{}, false, fmt.Errorf("sim: unimplemented intrinsic %s", in)
	}
}

func wantInt(args []dvm.Value, i int, what string) (int64, error) {
	if i >= len(args) || args[i].Kind != dvm.KInt {
		return 0, fmt.Errorf("sim: %s must be an int", what)
	}
	return args[i].Int, nil
}

func wantObj(args []dvm.Value, i int, what string) (trace.ObjID, error) {
	if i >= len(args) || args[i].Kind != dvm.KObj {
		return 0, fmt.Errorf("sim: %s must be an object", what)
	}
	if args[i].Obj == trace.NullObj {
		return 0, fmt.Errorf("sim: %s is null", what)
	}
	return args[i].Obj, nil
}

func (s *System) wantMethod(args []dvm.Value, i int, what string) (*dvm.Method, error) {
	if i >= len(args) || args[i].Kind != dvm.KMethod {
		return nil, fmt.Errorf("sim: %s must be a method handle", what)
	}
	idx := args[i].Method
	if idx < 0 || idx >= len(s.prog.Methods) {
		return nil, fmt.Errorf("sim: %s: bad method handle %d", what, idx)
	}
	m := s.prog.Methods[idx]
	if m.NumParams > 1 {
		return nil, fmt.Errorf("sim: handler %s must take 0 or 1 params", m.Name)
	}
	return m, nil
}

func (s *System) looperByHandle(h int64) (*Looper, error) {
	l, ok := s.loopersByQ[trace.QueueID(h)]
	if !ok {
		return nil, fmt.Errorf("sim: bad queue handle %d", h)
	}
	return l, nil
}

// doSend implements send(queue, method, delay, arg) and
// sendFront(queue, method, arg).
func (s *System) doSend(t *Task, in dvm.Intrinsic, args []dvm.Value) (dvm.Value, bool, error) {
	qh, err := wantInt(args, 0, "send queue")
	if err != nil {
		return dvm.Value{}, false, err
	}
	l, err := s.looperByHandle(qh)
	if err != nil {
		return dvm.Value{}, false, err
	}
	m, err := s.wantMethod(args, 1, "send handler")
	if err != nil {
		return dvm.Value{}, false, err
	}
	var delay int64
	var arg dvm.Value
	if in == dvm.IntrSend {
		delay, err = wantInt(args, 2, "send delay")
		if err != nil {
			return dvm.Value{}, false, err
		}
		if delay < 0 {
			return dvm.Value{}, false, fmt.Errorf("sim: negative send delay %d", delay)
		}
		arg = args[3]
	} else {
		arg = args[2]
	}
	ev := s.allocTask(m.Name, trace.KindEvent, l.proc)
	ev.looper = l
	s.tracer.DeclareTask(trace.TaskInfo{
		ID: ev.id, Kind: trace.KindEvent, Name: m.Name,
		Looper: l.thread.id, Queue: l.qid, Proc: l.proc,
	})
	s.enqSeq++
	if in == dvm.IntrSend {
		if s.cfg.DelayEvent != nil {
			delay += s.cfg.DelayEvent(m.Name)
		}
		s.emit(trace.Entry{Task: t.id, Op: trace.OpSend, Target: ev.id, Queue: l.qid, Delay: delay})
		l.queue.pushBack(queuedEvent{task: ev, method: m, arg: arg, when: s.now + delay, seq: s.enqSeq})
	} else {
		s.emit(trace.Entry{Task: t.id, Op: trace.OpSendAtFront, Target: ev.id, Queue: l.qid})
		l.queue.pushFront(queuedEvent{task: ev, method: m, arg: arg, when: s.now, seq: s.enqSeq})
	}
	return dvm.Value{}, false, nil
}

// doFork implements fork(method, arg) -> thread handle.
func (s *System) doFork(t *Task, args []dvm.Value) (dvm.Value, bool, error) {
	m, err := s.wantMethod(args, 0, "fork entry")
	if err != nil {
		return dvm.Value{}, false, err
	}
	nt := s.allocTask("thread:"+m.Name, trace.KindThread, t.proc)
	s.tracer.DeclareTask(trace.TaskInfo{ID: nt.id, Kind: trace.KindThread, Name: nt.name, Proc: t.proc})
	ctx, err := s.newContext(nt, m, args[1])
	if err != nil {
		return dvm.Value{}, false, err
	}
	nt.ctx = ctx
	s.startOrDelay(nt, m.Name)
	s.emit(trace.Entry{Task: t.id, Op: trace.OpFork, Target: nt.id})
	return dvm.Int64(int64(nt.id)), false, nil
}

// doJoin implements join(threadHandle); the join entry is emitted when
// the join completes so the end(u) ≺ join(t,u) rule holds in trace
// order.
func (s *System) doJoin(t *Task, args []dvm.Value) (dvm.Value, bool, error) {
	h, err := wantInt(args, 0, "join target")
	if err != nil {
		return dvm.Value{}, false, err
	}
	target := s.tasks[trace.TaskID(h)]
	if target == nil || target.kind != trace.KindThread || target.isLooperThread {
		return dvm.Value{}, false, fmt.Errorf("sim: join on bad thread handle %d", h)
	}
	if target.state == tsDone || target.state == tsCrashed {
		s.emit(trace.Entry{Task: t.id, Op: trace.OpJoin, Target: target.id})
		return dvm.Int64(0), false, nil
	}
	target.joiners = append(target.joiners, t)
	t.state = tsBlocked
	t.blockedOn = fmt.Sprintf("join t%d", target.id)
	return dvm.Value{}, true, nil
}

// doLock implements reentrant monitor-enter. Lock/unlock entries are
// emitted only at the outermost transition, which is what the lockset
// check consumes.
func (s *System) doLock(t *Task, args []dvm.Value) (dvm.Value, bool, error) {
	obj, err := wantObj(args, 0, "lock object")
	if err != nil {
		return dvm.Value{}, false, err
	}
	ls := s.locks[obj]
	if ls == nil {
		ls = &lockState{}
		s.locks[obj] = ls
	}
	switch {
	case ls.holder == nil:
		ls.holder = t
		ls.depth = 1
		s.emit(trace.Entry{Task: t.id, Op: trace.OpLock, Lock: trace.LockID(obj)})
		return dvm.Value{}, false, nil
	case ls.holder == t:
		ls.depth++
		return dvm.Value{}, false, nil
	default:
		ls.waiters = append(ls.waiters, t)
		t.state = tsBlocked
		t.blockedOn = fmt.Sprintf("lock o%d (held by t%d)", obj, ls.holder.id)
		return dvm.Value{}, true, nil
	}
}

// doUnlock implements monitor-exit, granting the lock FIFO.
func (s *System) doUnlock(t *Task, args []dvm.Value) (dvm.Value, bool, error) {
	obj, err := wantObj(args, 0, "unlock object")
	if err != nil {
		return dvm.Value{}, false, err
	}
	ls := s.locks[obj]
	if ls == nil || ls.holder != t {
		return dvm.Value{}, false, fmt.Errorf("sim: unlock of o%d not held by t%d", obj, t.id)
	}
	ls.depth--
	if ls.depth > 0 {
		return dvm.Value{}, false, nil
	}
	s.emit(trace.Entry{Task: t.id, Op: trace.OpUnlock, Lock: trace.LockID(obj)})
	ls.holder = nil
	if len(ls.waiters) > 0 {
		w := ls.waiters[0]
		ls.waiters = ls.waiters[1:]
		ls.holder = w
		ls.depth = 1
		s.emit(trace.Entry{Task: w.id, Op: trace.OpLock, Lock: trace.LockID(obj)})
		s.wake(w, dvm.Value{})
	}
	return dvm.Value{}, false, nil
}

// doWait parks the task on a monitor; the wait entry is emitted at
// wake-up so notify ≺ wait holds in trace order.
func (s *System) doWait(t *Task, args []dvm.Value) (dvm.Value, bool, error) {
	obj, err := wantObj(args, 0, "wait monitor")
	if err != nil {
		return dvm.Value{}, false, err
	}
	s.monitors[obj] = append(s.monitors[obj], t)
	t.state = tsBlocked
	t.blockedOn = fmt.Sprintf("wait o%d", obj)
	return dvm.Value{}, true, nil
}

// doNotify wakes all waiters (notifyAll semantics).
func (s *System) doNotify(t *Task, args []dvm.Value) (dvm.Value, bool, error) {
	obj, err := wantObj(args, 0, "notify monitor")
	if err != nil {
		return dvm.Value{}, false, err
	}
	s.emit(trace.Entry{Task: t.id, Op: trace.OpNotify, Monitor: trace.MonitorID(obj)})
	waiters := s.monitors[obj]
	delete(s.monitors, obj)
	for _, w := range waiters {
		s.emit(trace.Entry{Task: w.id, Op: trace.OpWait, Monitor: trace.MonitorID(obj)})
		s.wake(w, dvm.Value{})
	}
	return dvm.Value{}, false, nil
}

// instrumentedListener reports whether a listener handle falls in the
// framework packages CAFA instruments.
func instrumentedListener(h int64) bool { return h < UninstrumentedListenerBase }

// doRegister implements register(listener, method).
func (s *System) doRegister(t *Task, args []dvm.Value) (dvm.Value, bool, error) {
	lid, err := wantInt(args, 0, "listener id")
	if err != nil {
		return dvm.Value{}, false, err
	}
	m, err := s.wantMethod(args, 1, "listener handler")
	if err != nil {
		return dvm.Value{}, false, err
	}
	s.listeners[lid] = append(s.listeners[lid], listenerEntry{method: m})
	if instrumentedListener(lid) {
		s.emit(trace.Entry{Task: t.id, Op: trace.OpRegister, Listener: trace.ListenerID(lid)})
	}
	return dvm.Value{}, false, nil
}

// doFire performs all handlers registered for a listener inline in the
// current task (the Android pattern of framework code invoking
// registered callbacks during event processing).
func (s *System) doFire(t *Task, c *dvm.Context, args []dvm.Value) (dvm.Value, bool, error) {
	lid, err := wantInt(args, 0, "listener id")
	if err != nil {
		return dvm.Value{}, false, err
	}
	arg := args[1]
	regs := s.listeners[lid]
	// Push in reverse so handlers execute in registration order.
	for i := len(regs) - 1; i >= 0; i-- {
		m := regs[i].method
		if instrumentedListener(lid) {
			s.emit(trace.Entry{Task: t.id, Op: trace.OpPerform, Listener: trace.ListenerID(lid)})
		}
		var callArgs []dvm.Value
		if m.NumParams == 1 {
			callArgs = []dvm.Value{arg}
		}
		if err := c.PushCall(m, callArgs); err != nil {
			return dvm.Value{}, false, err
		}
	}
	return dvm.Value{}, false, nil
}

// doRPC implements a Binder transaction: the call blocks the client,
// a fresh binder thread in the service's process runs the handler, and
// the reply resumes the client with the handler's return value. The
// four transaction entries let the offline analyzer stitch causality
// across process boundaries (§5.2).
func (s *System) doRPC(t *Task, args []dvm.Value) (dvm.Value, bool, error) {
	h, err := wantInt(args, 0, "rpc service")
	if err != nil {
		return dvm.Value{}, false, err
	}
	if h < 1 || int(h) > len(s.services) {
		return dvm.Value{}, false, fmt.Errorf("sim: bad service handle %d", h)
	}
	svc := s.services[h-1]
	m, err := s.wantMethod(args, 1, "rpc handler")
	if err != nil {
		return dvm.Value{}, false, err
	}
	txn := s.nextTxn
	s.nextTxn++
	s.emit(trace.Entry{Task: t.id, Op: trace.OpRPCCall, Txn: txn})
	bt := s.allocTask(fmt.Sprintf("binder:%s.%s", svc.name, m.Name), trace.KindThread, svc.proc)
	s.tracer.DeclareTask(trace.TaskInfo{ID: bt.id, Kind: trace.KindThread, Name: bt.name, Proc: svc.proc})
	ctx, err := s.newContext(bt, m, args[2])
	if err != nil {
		return dvm.Value{}, false, err
	}
	bt.ctx = ctx
	bt.state = tsReady
	s.pushReady(bt)
	bt.rpcClient = t
	bt.rpcTxn = txn
	t.state = tsBlocked
	t.blockedOn = fmt.Sprintf("rpc txn%d to %s", txn, svc.name)
	return dvm.Value{}, true, nil
}

// doMsgSend implements the one-way pipe IPC: each message carries a
// unique id the analyzer correlates into a happens-before edge.
func (s *System) doMsgSend(t *Task, args []dvm.Value) (dvm.Value, bool, error) {
	h, err := wantInt(args, 0, "channel")
	if err != nil {
		return dvm.Value{}, false, err
	}
	if h < 1 || int(h) > len(s.channels) {
		return dvm.Value{}, false, fmt.Errorf("sim: bad channel handle %d", h)
	}
	ch := s.channels[h-1]
	txn := s.nextTxn
	s.nextTxn++
	s.emit(trace.Entry{Task: t.id, Op: trace.OpMsgSend, Txn: txn})
	if len(ch.waiters) > 0 {
		w := ch.waiters[0]
		ch.waiters = ch.waiters[1:]
		s.emit(trace.Entry{Task: w.id, Op: trace.OpMsgRecv, Txn: txn})
		s.wake(w, args[1])
		return dvm.Value{}, false, nil
	}
	ch.buf = append(ch.buf, channelMsg{val: args[1], txn: txn})
	return dvm.Value{}, false, nil
}

// doMsgRecv blocks until a message is available.
func (s *System) doMsgRecv(t *Task, args []dvm.Value) (dvm.Value, bool, error) {
	h, err := wantInt(args, 0, "channel")
	if err != nil {
		return dvm.Value{}, false, err
	}
	if h < 1 || int(h) > len(s.channels) {
		return dvm.Value{}, false, fmt.Errorf("sim: bad channel handle %d", h)
	}
	ch := s.channels[h-1]
	if len(ch.buf) > 0 {
		msg := ch.buf[0]
		ch.buf = ch.buf[1:]
		s.emit(trace.Entry{Task: t.id, Op: trace.OpMsgRecv, Txn: msg.txn})
		return msg.val, false, nil
	}
	ch.waiters = append(ch.waiters, t)
	t.state = tsBlocked
	t.blockedOn = fmt.Sprintf("msg-recv ch%d", h)
	return dvm.Value{}, true, nil
}

// doSleep suspends the task for a stretch of virtual time.
func (s *System) doSleep(t *Task, args []dvm.Value) (dvm.Value, bool, error) {
	ms, err := wantInt(args, 0, "sleep duration")
	if err != nil {
		return dvm.Value{}, false, err
	}
	if ms <= 0 {
		return dvm.Value{}, false, nil
	}
	t.state = tsSleeping
	t.wakeAt = s.now + ms
	t.blockedOn = fmt.Sprintf("sleep until %d", t.wakeAt)
	s.sleepers = append(s.sleepers, t)
	return dvm.Value{}, true, nil
}

// spinSink defeats dead-code elimination in doSpin. Accessed
// atomically: independent Systems may run concurrently (batch mode).
var spinSink atomic.Uint64

// doSpin burns host CPU proportional to n — the simulated
// "application work" whose dilation Fig. 8 measures.
func (s *System) doSpin(args []dvm.Value) (dvm.Value, bool, error) {
	n, err := wantInt(args, 0, "spin count")
	if err != nil {
		return dvm.Value{}, false, err
	}
	acc := spinSink.Load()
	for i := int64(0); i < n*64; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	spinSink.Store(acc)
	return dvm.Value{}, false, nil
}

// Package sim is a deterministic, discrete-virtual-time simulation of
// the Android event-driven runtime described in §2 of the paper:
// looper threads draining FIFO event queues (with delays and
// sendAtFront), regular threads with fork/join, Java-style monitors
// and reentrant locks, event listeners, Binder-like RPC across
// simulated processes, and one-way message channels.
//
// The runtime executes dvm bytecode and emits the §3/§5 trace entries
// through a trace.Tracer, exactly mirroring what CAFA's instrumented
// ROM logs. Scheduling is seeded-pseudo-random but fully
// deterministic, so every trace is reproducible bit-for-bit.
package sim

import (
	"fmt"

	"cafa/internal/dvm"
	"cafa/internal/trace"
)

type taskState uint8

const (
	tsReady taskState = iota
	tsBlocked
	tsSleeping
	tsDone
	tsCrashed
)

func (s taskState) String() string {
	switch s {
	case tsReady:
		return "ready"
	case tsBlocked:
		return "blocked"
	case tsSleeping:
		return "sleeping"
	case tsDone:
		return "done"
	case tsCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("taskState(%d)", uint8(s))
	}
}

// Task is a schedulable unit: a regular thread, a binder thread, or an
// event popped from a queue. Looper threads also have a Task identity
// (for begin/end entries and TaskInfo) but never carry a context —
// their work is popping events.
type Task struct {
	id   trace.TaskID
	name string
	kind trace.TaskKind
	proc int32

	ctx   *dvm.Context
	state taskState
	// blockedOn is a diagnostic for deadlock reports.
	blockedOn string
	// wakeAt applies while sleeping.
	wakeAt int64
	// joiners are tasks blocked in join on this task.
	joiners []*Task
	// beginEmitted guards one-shot begin entries.
	beginEmitted bool
	// isLooperThread marks the pseudo-task of a looper.
	isLooperThread bool
	// event state (kind == KindEvent).
	looper   *Looper
	external bool
	// rpc server plumbing: reply to this client with this txn at end.
	rpcClient *Task
	rpcTxn    trace.TxnID
	// crash error when state == tsCrashed.
	err error
}

// ID returns the task's trace identity.
func (t *Task) ID() trace.TaskID { return t.id }

// Name returns the diagnostic name.
func (t *Task) Name() string { return t.name }

// Crash describes a task that died on an uncaught exception — the
// observable manifestation of a use-after-free violation.
type Crash struct {
	Task trace.TaskID
	Name string
	Time int64
	Err  error
}

func (c Crash) String() string {
	return fmt.Sprintf("t%d (%s) crashed at %dms: %v", c.Task, c.Name, c.Time, c.Err)
}

package sim

import (
	"math"

	"cafa/internal/dvm"
)

// queuedEvent is one pending event in a queue.
type queuedEvent struct {
	task   *Task
	method *dvm.Method
	arg    dvm.Value
	// when is the earliest virtual time the event may be processed
	// (enqueue time + delay).
	when int64
	seq  uint64 // global enqueue sequence for FIFO stability
}

// eventQueue models the Android MessageQueue: messages sorted by their
// ready time (stable on ties), except sendAtFront messages, which are
// pushed at the head — so the most recent sendAtFront is frontmost
// (LIFO among fronts), matching the AOSP head-insertion behaviour the
// paper's queue rules 2 and 4 rely on.
type eventQueue struct {
	front  []queuedEvent // stack: last element is the queue head
	sorted []queuedEvent // ascending (when, seq)
}

// pushBack inserts a normal send: stable sorted insert by ready time.
func (q *eventQueue) pushBack(ev queuedEvent) {
	i := len(q.sorted)
	for i > 0 && q.sorted[i-1].when > ev.when {
		i--
	}
	q.sorted = append(q.sorted, queuedEvent{})
	copy(q.sorted[i+1:], q.sorted[i:])
	q.sorted[i] = ev
}

// pushFront inserts a sendAtFront message at the head.
func (q *eventQueue) pushFront(ev queuedEvent) {
	q.front = append(q.front, ev)
}

// empty reports whether no events are pending.
func (q *eventQueue) empty() bool { return len(q.front) == 0 && len(q.sorted) == 0 }

// readyAt returns the earliest time the head event can be popped, or
// math.MaxInt64 when the queue is empty.
func (q *eventQueue) readyAt() int64 {
	if len(q.front) > 0 {
		return 0 // front messages are immediately eligible
	}
	if len(q.sorted) > 0 {
		return q.sorted[0].when
	}
	return math.MaxInt64
}

// pop removes the head event if it is eligible at time now.
func (q *eventQueue) pop(now int64) (queuedEvent, bool) {
	if n := len(q.front); n > 0 {
		ev := q.front[n-1]
		q.front = q.front[:n-1]
		return ev, true
	}
	if len(q.sorted) > 0 && q.sorted[0].when <= now {
		ev := q.sorted[0]
		q.sorted = q.sorted[1:]
		return ev, true
	}
	return queuedEvent{}, false
}

// size returns the number of pending events.
func (q *eventQueue) size() int { return len(q.front) + len(q.sorted) }

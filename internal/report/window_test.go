package report

import (
	"testing"

	"cafa/internal/apps"
	"cafa/internal/detect"
	"cafa/internal/hb"
	"cafa/internal/lockset"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// TestTruncatedTraceWindow: a trace is a finite window over a live
// system (the paper records 10–30 s sessions); the analyzer must
// handle prefixes in which tasks never end and sent events never
// begin. Every prefix that passes structural validation must analyze
// without error, and all reports must still be concurrent pairs.
func TestTruncatedTraceWindow(t *testing.T) {
	spec, _ := apps.ByName("FBReader")
	col := trace.NewCollector()
	b, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Sys.Run(); err != nil {
		t.Fatal(err)
	}
	full := col.T
	for _, frac := range []int{95, 80, 60, 40, 20, 5} {
		n := len(full.Entries) * frac / 100
		win := trace.New()
		win.Entries = full.Entries[:n]
		for k, v := range full.Tasks {
			win.Tasks[k] = v
		}
		for k, v := range full.Fields {
			win.Fields[k] = v
		}
		for k, v := range full.Methods {
			win.Methods[k] = v
		}
		if err := win.Validate(); err != nil {
			t.Fatalf("frac %d%%: prefix invalid: %v", frac, err)
		}
		g, err := hb.Build(win, hb.Options{})
		if err != nil {
			t.Fatalf("frac %d%%: %v", frac, err)
		}
		conv, err := hb.Build(win, hb.Options{Conventional: true})
		if err != nil {
			t.Fatalf("frac %d%%: %v", frac, err)
		}
		ls, err := lockset.Compute(win)
		if err != nil {
			t.Fatalf("frac %d%%: %v", frac, err)
		}
		res, err := detect.Detect(detect.Input{Trace: win, Graph: g, Conventional: conv, Locks: ls}, detect.Options{})
		if err != nil {
			t.Fatalf("frac %d%%: %v", frac, err)
		}
		for _, r := range res.Races {
			if !g.Concurrent(r.Use.ReadIdx, r.Free.Idx) {
				t.Fatalf("frac %d%%: ordered pair reported", frac)
			}
		}
	}
}

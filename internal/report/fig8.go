package report

import (
	"fmt"
	"strings"
	"time"

	"cafa/internal/apps"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// Fig8Row is one bar of Figure 8: the execution-time dilation of
// running an app with the tracer enabled (entries serialized through
// the logger-device codec) versus the uninstrumented run.
type Fig8Row struct {
	Name         string
	Baseline     time.Duration
	Instrumented time.Duration
	Slowdown     float64
	Entries      int
	TraceBytes   int
}

// Fig8Options tunes the measurement.
type Fig8Options struct {
	Seed  uint64
	Scale int
	// Iters is the number of timed repetitions; the minimum is kept
	// (default 3).
	Iters int
}

// MeasureApp times one application model with and without tracing.
func MeasureApp(spec apps.Spec, opts Fig8Options) (Fig8Row, error) {
	if opts.Iters <= 0 {
		opts.Iters = 3
	}
	if opts.Scale < 1 {
		opts.Scale = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	row := Fig8Row{Name: spec.Name}
	timeRun := func(mk func() trace.Tracer) (time.Duration, trace.Tracer, error) {
		best := time.Duration(0)
		var lastTracer trace.Tracer
		for i := 0; i < opts.Iters; i++ {
			tracer := mk()
			b, err := apps.Build(spec, sim.Config{Tracer: tracer, Seed: opts.Seed}, opts.Scale)
			if err != nil {
				return 0, nil, err
			}
			start := time.Now()
			if err := b.Sys.Run(); err != nil {
				return 0, nil, err
			}
			d := time.Since(start)
			if best == 0 || d < best {
				best = d
			}
			lastTracer = tracer
		}
		return best, lastTracer, nil
	}
	base, _, err := timeRun(func() trace.Tracer { return trace.Discard{} })
	if err != nil {
		return row, err
	}
	instr, tracer, err := timeRun(func() trace.Tracer { return trace.NewDeviceSink() })
	if err != nil {
		return row, err
	}
	row.Baseline = base
	row.Instrumented = instr
	if base > 0 {
		row.Slowdown = float64(instr) / float64(base)
	}
	if sink, ok := tracer.(*trace.DeviceSink); ok {
		row.Entries = sink.Entries()
		row.TraceBytes = sink.Bytes()
	}
	return row, nil
}

// Fig8 measures every registered application.
func Fig8(opts Fig8Options) ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, spec := range apps.Registry {
		r, err := MeasureApp(spec, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Fig8Table renders the slowdown series with an ASCII bar per app
// (the paper reports 2×–6×).
func Fig8Table(rows []Fig8Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %12s %12s %9s %10s %10s\n",
		"Application", "baseline", "traced", "slowdown", "entries", "bytes")
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 72))
	for _, r := range rows {
		bar := strings.Repeat("#", int(r.Slowdown*4+0.5))
		fmt.Fprintf(&sb, "%-12s %12s %12s %8.2fx %10d %10d  %s\n",
			r.Name, r.Baseline.Round(time.Microsecond), r.Instrumented.Round(time.Microsecond),
			r.Slowdown, r.Entries, r.TraceBytes, bar)
	}
	return sb.String()
}

// Package report drives the end-to-end evaluation pipeline (app model
// → trace → causality graphs → detector) and renders the paper's
// Table 1 and Figure 8 with paper-vs-measured columns, scoring the
// detector's output against each app's planted ground truth.
package report

import (
	"fmt"
	"sort"
	"strings"

	"cafa/internal/analysis"
	"cafa/internal/apps"
	"cafa/internal/dataflow"
	"cafa/internal/detect"
	"cafa/internal/hb"
	"cafa/internal/sim"
	"cafa/internal/static"
	"cafa/internal/trace"
)

// AppResult is the measured Table 1 row for one application, scored
// against ground truth.
type AppResult struct {
	Name          string
	Paper         apps.PaperRow
	Events        int // measured event count
	Reported      int
	A, B, C       int // true races, classified by the detector
	FP1, FP2, FP3 int
	// Misclassified lists true races whose detector class differs
	// from the planted class; Missed lists planted races that were
	// not reported; Unexpected counts reports on unplanted fields.
	Misclassified []string
	Missed        []string
	Unexpected    int
	NaiveRaces    int
	DetectStats   detect.Stats
	HBStats       hb.Stats
	Crashes       int
}

// Harmful returns the measured true-race count.
func (r *AppResult) Harmful() int { return r.A + r.B + r.C }

// RunOptions configures an evaluation run.
type RunOptions struct {
	// Seed drives the simulated scheduler.
	Seed uint64
	// Scale divides the benign filler volume (1 = the paper's full
	// event counts; tests use larger scales).
	Scale int
	// Naive additionally runs the low-level baseline detector (it is
	// quadratic per location and adds noticeable time at scale 1).
	Naive bool
	// Detect carries detector ablation switches.
	Detect detect.Options
	// Precise enables the static data-flow use-matching extension
	// (§6.3 future work): Type III false positives disappear.
	Precise bool
	// Interproc matches uses through the interprocedural def-use
	// resolution (internal/static) instead of the intra-method pass.
	// Implies the Precise guarantees: it never resolves a deref to a
	// site the intra-method pass pinpoints differently, so Type III
	// false positives disappear here too.
	Interproc bool
	// StaticGuards prunes uses at statically-proven guarded deref
	// sites (the static Figure 6 pass) on top of the dynamic if-guard
	// heuristic.
	StaticGuards bool
	// StaticOrders skips the dynamic HB query for candidate pairs the
	// static event-order pass proves must-ordered, under the
	// closed-world entry-point inventory the app build records.
	StaticOrders bool
	// Workers bounds RunAll's app-level concurrency (0 = GOMAXPROCS).
	Workers int
}

// RunApp executes one application model and analyzes its trace.
func RunApp(spec apps.Spec, opts RunOptions) (*AppResult, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Scale < 1 {
		opts.Scale = 1
	}
	col := trace.NewCollector()
	b, err := apps.Build(spec, sim.Config{Tracer: col, Seed: opts.Seed}, opts.Scale)
	if err != nil {
		return nil, err
	}
	if err := b.Sys.Run(); err != nil {
		return nil, fmt.Errorf("report: %s: %w", spec.Name, err)
	}
	tr := col.T
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("report: %s: invalid trace: %w", spec.Name, err)
	}
	res, err := analyze(tr, b, opts)
	if err != nil {
		return nil, err
	}
	res.Crashes = len(b.Sys.Crashes())
	return res, nil
}

func analyze(tr *trace.Trace, b *apps.BuildOut, opts RunOptions) (*AppResult, error) {
	popts := analysis.Options{Detect: opts.Detect, Naive: opts.Naive}
	if opts.Precise {
		popts.DerefSources = dataflow.DerefSources(b.Prog)
	}
	if opts.Interproc || opts.StaticGuards || opts.StaticOrders {
		popts.Program = b.Prog
		popts.Interproc = opts.Interproc
		popts.StaticGuardPrune = opts.StaticGuards
		popts.StaticOrderPrune = opts.StaticOrders
		if opts.StaticOrders {
			popts.Roots = static.RootsFromNames(b.Prog, b.Sys.Roots())
		}
	}
	det, err := analysis.Analyze(tr, popts)
	if err != nil {
		return nil, err
	}
	res := &AppResult{
		Name:        b.Spec.Name,
		Paper:       b.Spec.Paper,
		Events:      tr.EventCount(),
		Reported:    len(det.Races),
		DetectStats: det.Stats,
		HBStats:     det.GraphStats,
	}
	truth := b.TruthByField()
	seen := make(map[string]bool)
	for _, race := range det.Races {
		field := tr.FieldName(race.Use.Var.Field())
		pl, ok := truth[field]
		if !ok {
			res.Unexpected++
			continue
		}
		seen[field] = true
		switch pl.Label {
		case apps.LabelTrueA, apps.LabelTrueB, apps.LabelTrueC:
			want := map[apps.Label]detect.Class{
				apps.LabelTrueA: detect.ClassIntraThread,
				apps.LabelTrueB: detect.ClassInterThread,
				apps.LabelTrueC: detect.ClassConventional,
			}[pl.Label]
			if race.Class != want {
				res.Misclassified = append(res.Misclassified,
					fmt.Sprintf("%s: planted %s, detected %s", field, pl.Label, race.Class))
			}
			switch race.Class {
			case detect.ClassIntraThread:
				res.A++
			case detect.ClassInterThread:
				res.B++
			case detect.ClassConventional:
				res.C++
			}
		case apps.LabelFP1:
			res.FP1++
		case apps.LabelFP2:
			res.FP2++
		case apps.LabelFP3:
			res.FP3++
		case apps.LabelFiltered:
			// Guarded-benign traffic must be pruned by the heuristics;
			// a report here is a filter failure.
			res.Misclassified = append(res.Misclassified,
				fmt.Sprintf("%s: benign scenario reported (heuristics failed to prune)", field))
		}
	}
	for _, pl := range b.Truth {
		if pl.Label == apps.LabelFiltered {
			continue // absence is the expected outcome
		}
		if (opts.Precise || opts.Interproc) && pl.Label == apps.LabelFP3 {
			continue // the data-flow extension eliminates these by design
		}
		if !seen[pl.Field] {
			res.Missed = append(res.Missed, fmt.Sprintf("%s (%s)", pl.Field, pl.Label))
		}
	}
	sort.Strings(res.Missed)
	if opts.Naive {
		res.NaiveRaces = len(det.Naive)
	}
	return res, nil
}

// RunAll evaluates every registered application. The apps run and
// analyze concurrently under a bounded worker pool (opts.Workers);
// results keep registry order and are identical to a serial run.
func RunAll(opts RunOptions) ([]*AppResult, error) {
	out := make([]*AppResult, len(apps.Registry))
	errs := make([]error, len(apps.Registry))
	analysis.ForEach(opts.Workers, len(apps.Registry), func(i int) {
		out[i], errs[i] = RunApp(apps.Registry[i], opts)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Table1 renders the paper-vs-measured Table 1. Each cell is
// "measured/paper".
func Table1(results []*AppResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %9s %9s | %7s %7s %7s | %7s %7s %7s\n",
		"Application", "Events", "Reported", "a", "b", "c", "I", "II", "III")
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 96))
	var tot, pTot AppResult
	for _, r := range results {
		fmt.Fprintf(&sb, "%-12s %9s %9s | %7s %7s %7s | %7s %7s %7s\n",
			r.Name,
			cell(r.Events, r.Paper.Events),
			cell(r.Reported, r.Paper.Reported),
			cell(r.A, r.Paper.A), cell(r.B, r.Paper.B), cell(r.C, r.Paper.C),
			cell(r.FP1, r.Paper.FP1), cell(r.FP2, r.Paper.FP2), cell(r.FP3, r.Paper.FP3))
		tot.Reported += r.Reported
		tot.A += r.A
		tot.B += r.B
		tot.C += r.C
		tot.FP1 += r.FP1
		tot.FP2 += r.FP2
		tot.FP3 += r.FP3
		pTot.Reported += r.Paper.Reported
		pTot.A += r.Paper.A
		pTot.B += r.Paper.B
		pTot.C += r.Paper.C
		pTot.FP1 += r.Paper.FP1
		pTot.FP2 += r.Paper.FP2
		pTot.FP3 += r.Paper.FP3
	}
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 96))
	fmt.Fprintf(&sb, "%-12s %9s %9s | %7s %7s %7s | %7s %7s %7s\n",
		"Overall", "",
		cell(tot.Reported, pTot.Reported),
		cell(tot.A, pTot.A), cell(tot.B, pTot.B), cell(tot.C, pTot.C),
		cell(tot.FP1, pTot.FP1), cell(tot.FP2, pTot.FP2), cell(tot.FP3, pTot.FP3))
	harm := tot.A + tot.B + tot.C
	pharm := pTot.A + pTot.B + pTot.C
	prec, pprec := 0.0, 0.0
	if tot.Reported > 0 {
		prec = 100 * float64(harm) / float64(tot.Reported)
	}
	if pTot.Reported > 0 {
		pprec = 100 * float64(pharm) / float64(pTot.Reported)
	}
	fmt.Fprintf(&sb, "\nHarmful races: measured %d (paper %d); precision measured %.0f%% (paper %.0f%%)\n",
		harm, pharm, prec, pprec)
	return sb.String()
}

// cell renders "measured/paper".
func cell(measured, paper int) string {
	return fmt.Sprintf("%d/%d", measured, paper)
}

// Problems summarizes ground-truth mismatches across results (empty
// string when the reproduction is exact).
func Problems(results []*AppResult) string {
	var sb strings.Builder
	for _, r := range results {
		for _, m := range r.Missed {
			fmt.Fprintf(&sb, "%s: missed %s\n", r.Name, m)
		}
		for _, m := range r.Misclassified {
			fmt.Fprintf(&sb, "%s: misclassified %s\n", r.Name, m)
		}
		if r.Unexpected > 0 {
			fmt.Fprintf(&sb, "%s: %d unexpected reports\n", r.Name, r.Unexpected)
		}
	}
	return sb.String()
}

package report

// The machine-readable race report and the evidence-bundle assembly
// used to live inside cmd/cafa-analyze. They are shared here so the
// analysis service (internal/service) serves byte-identical artifacts
// for the same trace and configuration — the differential guarantee
// is structural, not a test-only coincidence.

import (
	"encoding/json"
	"io"

	"cafa/internal/analysis"
	"cafa/internal/detect"
	"cafa/internal/provenance"
	"cafa/internal/trace"
)

// FileReport is the analysis of one named input: the label under
// which the trace was submitted (a file path in the CLI, an upload
// name in the service), the decoded trace, and its pipeline result.
type FileReport struct {
	File   string
	Trace  *trace.Trace
	Result *analysis.Result
}

// RaceJSON is the machine-readable race record.
type RaceJSON struct {
	Class      string `json:"class"`
	Field      string `json:"field"`
	Var        string `json:"var"`
	UseTask    string `json:"useTask"`
	UseMethod  string `json:"useMethod"`
	UsePC      uint32 `json:"usePC"`
	UseStack   string `json:"useStack"`
	FreeTask   string `json:"freeTask"`
	FreeMethod string `json:"freeMethod"`
	FreePC     uint32 `json:"freePC"`
	FreeStack  string `json:"freeStack"`
}

// InputJSON is the per-trace section of the aggregated JSON report.
type InputJSON struct {
	File    string       `json:"file"`
	Events  int          `json:"events"`
	Entries int          `json:"entries"`
	Races   []RaceJSON   `json:"races"`
	Stats   detect.Stats `json:"stats"`
	Naive   int          `json:"naiveRaces,omitempty"`
}

// ReportJSON is the aggregated machine-readable report.
type ReportJSON struct {
	Inputs     []InputJSON    `json:"inputs"`
	Events     int            `json:"events"`
	TotalRaces int            `json:"totalRaces"`
	ByClass    map[string]int `json:"byClass"`
	Stats      detect.Stats   `json:"stats"`
}

// BuildJSON assembles the aggregated machine-readable report.
func BuildJSON(reports []*FileReport) *ReportJSON {
	out := &ReportJSON{
		Inputs:  []InputJSON{},
		ByClass: map[string]int{},
	}
	for _, rep := range reports {
		tr, res := rep.Trace, rep.Result
		in := InputJSON{
			File:    rep.File,
			Events:  tr.EventCount(),
			Entries: tr.Len(),
			Races:   []RaceJSON{},
			Stats:   res.Stats,
			Naive:   len(res.Naive),
		}
		for _, r := range res.Races {
			in.Races = append(in.Races, RaceJSON{
				Class:      r.Class.String(),
				Field:      tr.FieldName(r.Use.Var.Field()),
				Var:        tr.VarName(r.Use.Var),
				UseTask:    tr.TaskName(r.Use.Task),
				UseMethod:  tr.MethodName(r.Use.Method),
				UsePC:      uint32(r.Use.DerefPC),
				UseStack:   detect.FormatStack(tr, res.StackAt(r.Use.DerefIdx)),
				FreeTask:   tr.TaskName(r.Free.Task),
				FreeMethod: tr.MethodName(r.Free.Method),
				FreePC:     uint32(r.Free.PC),
				FreeStack:  detect.FormatStack(tr, res.StackAt(r.Free.Idx)),
			})
			out.ByClass[r.Class.String()]++
		}
		out.Inputs = append(out.Inputs, in)
		out.Events += in.Events
		out.TotalRaces += len(res.Races)
		out.Stats.Add(res.Stats)
	}
	return out
}

// RenderJSON writes the aggregated report as indented JSON — the
// exact bytes `cafa-analyze -json` emits.
func RenderJSON(w io.Writer, reports []*FileReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildJSON(reports))
}

// BuildBundle assembles the run's evidence bundle in input order.
// Every report must carry an evidence collector (analysis
// Options.Evidence).
func BuildBundle(reports []*FileReport) *provenance.Bundle {
	b := &provenance.Bundle{Version: provenance.BundleVersion}
	for _, rep := range reports {
		in := rep.Result.Evidence.Bundle(rep.File)
		in.Stats = rep.Result.Stats
		b.Inputs = append(b.Inputs, in)
		b.Stats.Add(rep.Result.Stats)
	}
	return b
}

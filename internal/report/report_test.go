package report

import (
	"strings"
	"testing"

	"cafa/internal/apps"
	"cafa/internal/detect"
)

// TestTable1Reproduction is the headline test: at reduced filler
// volume (races are volume-independent), every app must reproduce its
// Table 1 row exactly — counts, classes, and false-positive types.
func TestTable1Reproduction(t *testing.T) {
	results, err := RunAll(RunOptions{Scale: 40})
	if err != nil {
		t.Fatal(err)
	}
	var reported, harmful int
	for _, r := range results {
		if r.Reported != r.Paper.Reported {
			t.Errorf("%s: reported %d, paper %d", r.Name, r.Reported, r.Paper.Reported)
		}
		if r.A != r.Paper.A || r.B != r.Paper.B || r.C != r.Paper.C {
			t.Errorf("%s: true races %d/%d/%d, paper %d/%d/%d",
				r.Name, r.A, r.B, r.C, r.Paper.A, r.Paper.B, r.Paper.C)
		}
		if r.FP1 != r.Paper.FP1 || r.FP2 != r.Paper.FP2 || r.FP3 != r.Paper.FP3 {
			t.Errorf("%s: FPs %d/%d/%d, paper %d/%d/%d",
				r.Name, r.FP1, r.FP2, r.FP3, r.Paper.FP1, r.Paper.FP2, r.Paper.FP3)
		}
		if len(r.Missed) != 0 || len(r.Misclassified) != 0 || r.Unexpected != 0 {
			t.Errorf("%s: missed=%v misclassified=%v unexpected=%d",
				r.Name, r.Missed, r.Misclassified, r.Unexpected)
		}
		reported += r.Reported
		harmful += r.Harmful()
	}
	if reported != 115 {
		t.Errorf("total reported = %d, want 115", reported)
	}
	if harmful != 69 {
		t.Errorf("total harmful = %d, want 69 (60%% precision)", harmful)
	}
	if p := Problems(results); p != "" {
		t.Errorf("problems:\n%s", p)
	}
	table := Table1(results)
	for _, want := range []string{"ConnectBot", "Overall", "115/115", "60%"} {
		if !strings.Contains(table, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestHeuristicAblationIncreasesFalsePositives(t *testing.T) {
	// With the commutativity heuristics disabled, the same traces
	// produce strictly more reports (the paper's motivation for the
	// filters). MyTracks' four FP(II) scenarios already pass the
	// heuristics, so use an app whose heuristics actually fire —
	// every app's intra-event allocations come from the RPC (a)
	// scenario.
	spec, _ := apps.ByName("MyTracks")
	base, err := RunApp(spec, RunOptions{Scale: 60})
	if err != nil {
		t.Fatal(err)
	}
	abl, err := RunApp(spec, RunOptions{Scale: 60, Detect: detect.Options{
		DisableIfGuard: true, DisableIntraEventAlloc: true, DisableLockset: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if abl.Reported < base.Reported {
		t.Errorf("ablation reported %d < base %d", abl.Reported, base.Reported)
	}
}

func TestPreciseMatchingEliminatesTypeIII(t *testing.T) {
	// The §6.3 future-work extension: static data-flow use matching
	// removes exactly the Type III false positives and nothing else.
	for _, name := range []string{"ZXing", "Camera", "Music"} {
		spec, _ := apps.ByName(name)
		base, err := RunApp(spec, RunOptions{Scale: 60})
		if err != nil {
			t.Fatal(err)
		}
		prec, err := RunApp(spec, RunOptions{Scale: 60, Precise: true})
		if err != nil {
			t.Fatal(err)
		}
		if base.FP3 != spec.Paper.FP3 || base.FP3 == 0 {
			t.Fatalf("%s: baseline FP3 = %d, want %d", name, base.FP3, spec.Paper.FP3)
		}
		if prec.FP3 != 0 {
			t.Errorf("%s: precise FP3 = %d, want 0", name, prec.FP3)
		}
		if prec.A != base.A || prec.B != base.B || prec.C != base.C ||
			prec.FP1 != base.FP1 || prec.FP2 != base.FP2 {
			t.Errorf("%s: precise mode changed non-III counts: base=%+v precise=%+v", name, base, prec)
		}
		if len(prec.Missed) != 0 || len(prec.Misclassified) != 0 || prec.Unexpected != 0 {
			t.Errorf("%s: precise mode problems: %v %v %d", name, prec.Missed, prec.Misclassified, prec.Unexpected)
		}
	}
}

func TestNaiveBaselineVolume(t *testing.T) {
	// The low-level detector must report roughly the filler volume
	// (the paper's thousands-of-false-positives motivation, §4.1).
	spec, _ := apps.ByName("ConnectBot")
	r, err := RunApp(spec, RunOptions{Scale: 20, Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.NaiveRaces < 50 {
		t.Errorf("naive races = %d, want >> reported (%d)", r.NaiveRaces, r.Reported)
	}
	if r.NaiveRaces <= r.Reported*5 {
		t.Errorf("naive (%d) should dwarf use-free reports (%d)", r.NaiveRaces, r.Reported)
	}
}

func TestFig8Measurement(t *testing.T) {
	spec, _ := apps.ByName("VLC")
	row, err := MeasureApp(spec, Fig8Options{Scale: 8, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if row.Slowdown <= 1.0 {
		t.Errorf("tracing slowdown = %.2fx, want > 1x", row.Slowdown)
	}
	if row.Entries == 0 || row.TraceBytes == 0 {
		t.Error("device sink recorded nothing")
	}
	out := Fig8Table([]Fig8Row{row})
	if !strings.Contains(out, "VLC") || !strings.Contains(out, "x") {
		t.Error("Fig8Table output malformed")
	}
}

func TestRunAppSeedVariation(t *testing.T) {
	// Different seeds shuffle the schedule but the planted races are
	// schedule-robust by construction — for every app.
	for _, spec := range apps.Registry {
		for seed := uint64(1); seed <= 3; seed++ {
			r, err := RunApp(spec, RunOptions{Scale: 150, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if r.Reported != spec.Paper.Reported {
				t.Errorf("%s seed %d: reported %d, want %d", spec.Name, seed, r.Reported, spec.Paper.Reported)
			}
			if len(r.Missed) != 0 || r.Unexpected != 0 || len(r.Misclassified) != 0 {
				t.Errorf("%s seed %d: missed=%v misclass=%v unexpected=%d",
					spec.Name, seed, r.Missed, r.Misclassified, r.Unexpected)
			}
		}
	}
}

// TestTable1StaticOrderDifferential: the static event-order prune is
// invisible in the rendered evaluation — Table 1 and the problem list
// are byte-identical with the prune on and off — while the detector
// stats show it actually fired (the skipped dynamic HB queries moved
// from the ordered stage to the static-order stage).
func TestTable1StaticOrderDifferential(t *testing.T) {
	plain, err := RunAll(RunOptions{Scale: 40})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := RunAll(RunOptions{Scale: 40, StaticOrders: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := Table1(pruned), Table1(plain); got != want {
		t.Errorf("Table 1 differs with static order pruning on:\n--- plain\n%s\n--- pruned\n%s", want, got)
	}
	if got, want := Problems(pruned), Problems(plain); got != want {
		t.Errorf("problem list differs with static order pruning on:\n--- plain\n%s\n--- pruned\n%s", want, got)
	}
	fired := 0
	for i, r := range pruned {
		fired += r.DetectStats.FilteredStaticOrder
		p := plain[i].DetectStats
		q := r.DetectStats
		if q.FilteredOrdered+q.FilteredStaticOrder != p.FilteredOrdered+p.FilteredStaticOrder {
			t.Errorf("%s: ordered-stage totals differ: plain %+v, pruned %+v", r.Name, p, q)
		}
	}
	if fired == 0 {
		t.Error("static-order prune never fired across the suite")
	}
}

package report

import (
	"math/rand"
	"testing"

	"cafa/internal/detect"
	"cafa/internal/dvm"
	"cafa/internal/hb"
	"cafa/internal/lockset"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// randomProgram builds a random event-driven application directly in
// bytecode: a handful of handlers randomly composed of pointer loads
// and dereferences (guarded or not), frees, allocations, scalar
// traffic, sends of other handlers, fork/join, and lock-protected
// sections. Crashes and even deadlocks are acceptable outcomes — the
// invariants under test must hold for any execution.
//
// Register discipline: v0 = holder param, v1/v5 = object scratch,
// v2 = int scratch, v3 = method handle, v4 = queue handle.
func randomProgram(r *rand.Rand) (*dvm.Program, int, int) {
	p := dvm.NewProgram()
	run := &dvm.Method{Name: "run", NumParams: 1, NumRegs: 1,
		Code: []dvm.Instr{{Code: dvm.CReturnVoid}}}
	runIdx, err := p.AddMethod(run)
	if err != nil {
		panic(err)
	}
	nHandlers := 4 + r.Intn(4)
	nBodies := 2 + r.Intn(2)
	var handlers, bodies []*dvm.Method
	for i := 0; i < nHandlers; i++ {
		m := &dvm.Method{Name: "h" + string(rune('A'+i)), NumParams: 1, NumRegs: 8}
		if _, err := p.AddMethod(m); err != nil {
			panic(err)
		}
		handlers = append(handlers, m)
	}
	for i := 0; i < nBodies; i++ {
		m := &dvm.Method{Name: "body" + string(rune('A'+i)), NumParams: 1, NumRegs: 8}
		if _, err := p.AddMethod(m); err != nil {
			panic(err)
		}
		bodies = append(bodies, m)
	}
	mainQ := p.FieldID("mainQ")
	lkFld := p.FieldID("lk")
	nPtr, nInt := 4, 3
	ptrFld := func(i int) trace.FieldID { return p.FieldID("p" + string(rune('0'+i))) }
	intFld := func(i int) trace.FieldID { return p.FieldID("g" + string(rune('0'+i))) }

	fill := func(m *dvm.Method, canSend bool) {
		var code []dvm.Instr
		blocks := 2 + r.Intn(6)
		for b := 0; b < blocks; b++ {
			switch r.Intn(8) {
			case 0: // load + guarded deref
				f := ptrFld(r.Intn(nPtr))
				code = append(code,
					dvm.Instr{Code: dvm.CIget, A: 1, B: 0, Field: f},
					dvm.Instr{Code: dvm.CIfEqz, A: 1, Target: len(code) + 3},
					dvm.Instr{Code: dvm.CInvokeVirtual, MethodIdx: runIdx, Args: []dvm.Reg{1}},
				)
			case 1: // load + unguarded deref (may NPE)
				f := ptrFld(r.Intn(nPtr))
				code = append(code,
					dvm.Instr{Code: dvm.CIget, A: 1, B: 0, Field: f},
					dvm.Instr{Code: dvm.CTry, Target: len(code) + 4},
					dvm.Instr{Code: dvm.CInvokeVirtual, MethodIdx: runIdx, Args: []dvm.Reg{1}},
					dvm.Instr{Code: dvm.CEndTry},
				)
			case 2: // free
				f := ptrFld(r.Intn(nPtr))
				code = append(code,
					dvm.Instr{Code: dvm.CConstNull, A: 1},
					dvm.Instr{Code: dvm.CIput, A: 1, B: 0, Field: f},
				)
			case 3: // alloc
				f := ptrFld(r.Intn(nPtr))
				code = append(code,
					dvm.Instr{Code: dvm.CNew, A: 1, Class: "X"},
					dvm.Instr{Code: dvm.CIput, A: 1, B: 0, Field: f},
				)
			case 4: // scalar traffic
				f := intFld(r.Intn(nInt))
				if r.Intn(2) == 0 {
					code = append(code,
						dvm.Instr{Code: dvm.CConstInt, A: 2, Imm: int64(r.Intn(10))},
						dvm.Instr{Code: dvm.CIputInt, A: 2, B: 0, Field: f},
					)
				} else {
					code = append(code, dvm.Instr{Code: dvm.CIgetInt, A: 2, B: 0, Field: f})
				}
			case 5: // send another handler, bounded by a global budget
				if canSend {
					target := handlers[r.Intn(len(handlers))]
					idx, _ := p.MethodIndex(target.Name)
					budget := p.FieldID("budget")
					base := len(code)
					code = append(code,
						dvm.Instr{Code: dvm.CSgetInt, A: 2, Field: budget},
						dvm.Instr{Code: dvm.CConstInt, A: 4, Imm: 0},
						dvm.Instr{Code: dvm.CIfIntLe, A: 2, B: 4, Target: base + 10},
						dvm.Instr{Code: dvm.CConstInt, A: 4, Imm: 1},
						dvm.Instr{Code: dvm.CSub, Res: 2, A: 2, B: 4, HasRes: true},
						dvm.Instr{Code: dvm.CSputInt, A: 2, Field: budget},
						dvm.Instr{Code: dvm.CSgetInt, A: 4, Field: mainQ},
						dvm.Instr{Code: dvm.CConstMethod, A: 3, MethodIdx: idx},
						dvm.Instr{Code: dvm.CConstInt, A: 2, Imm: int64(r.Intn(4))},
						dvm.Instr{Code: dvm.CIntrinsic, Intr: dvm.IntrSend, Args: []dvm.Reg{4, 3, 2, 0}},
					)
				}
			case 6: // fork + join a body (handlers only: a body forking
				// bodies would recurse without bound)
				if canSend {
					target := bodies[r.Intn(len(bodies))]
					idx, _ := p.MethodIndex(target.Name)
					code = append(code,
						dvm.Instr{Code: dvm.CConstMethod, A: 3, MethodIdx: idx},
						dvm.Instr{Code: dvm.CIntrinsic, Intr: dvm.IntrFork, Args: []dvm.Reg{3, 0}, Res: 2, HasRes: true},
						dvm.Instr{Code: dvm.CIntrinsic, Intr: dvm.IntrJoin, Args: []dvm.Reg{2}},
					)
				}
			case 7: // lock-protected scalar
				f := intFld(r.Intn(nInt))
				code = append(code,
					dvm.Instr{Code: dvm.CIget, A: 5, B: 0, Field: lkFld},
					dvm.Instr{Code: dvm.CIntrinsic, Intr: dvm.IntrLock, Args: []dvm.Reg{5}},
					dvm.Instr{Code: dvm.CConstInt, A: 2, Imm: 1},
					dvm.Instr{Code: dvm.CIputInt, A: 2, B: 0, Field: f},
					dvm.Instr{Code: dvm.CIntrinsic, Intr: dvm.IntrUnlock, Args: []dvm.Reg{5}},
				)
			}
		}
		code = append(code, dvm.Instr{Code: dvm.CReturnVoid})
		m.Code = code
	}
	for _, m := range handlers {
		fill(m, true)
	}
	for _, m := range bodies {
		fill(m, false) // bodies do not send (keeps event volume bounded)
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p, nHandlers, nBodies
}

// runRandomSystem wires and executes one random system.
func runRandomSystem(t *testing.T, r *rand.Rand) *trace.Trace {
	t.Helper()
	p, nHandlers, nBodies := randomProgram(r)
	col := trace.NewCollector()
	sys := sim.NewSystem(p, sim.Config{Tracer: col, Seed: r.Uint64() | 1, MaxSteps: 2_000_000})
	main := sys.AddLooper("main", 0)
	sys.Heap().SetStatic(p.FieldID("mainQ"), dvm.Int64(main.Handle()))
	holder := sys.Heap().New("Holder")
	lk := sys.Heap().New("Lock")
	holder.Set(p.FieldID("lk"), dvm.Obj(lk.ID))
	sys.Heap().SetStatic(p.FieldID("budget"), dvm.Int64(40))
	for i := 0; i < 4; i++ {
		pay := sys.Heap().New("Payload")
		holder.Set(p.FieldID("p"+string(rune('0'+i))), dvm.Obj(pay.ID))
	}
	// External stimuli.
	for i := 0; i < 2+r.Intn(3); i++ {
		h := "h" + string(rune('A'+r.Intn(nHandlers)))
		if err := sys.Inject(int64(r.Intn(50)), main, h, dvm.Obj(holder.ID), int64(r.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	// Background threads.
	for i := 0; i < 1+r.Intn(2); i++ {
		b := "body" + string(rune('A'+r.Intn(nBodies)))
		if _, err := sys.StartThread(b, b, dvm.Obj(holder.ID)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return col.T
}

// TestRandomSystemInvariants fuzzes whole systems and checks the
// cross-cutting guarantees of the pipeline.
func TestRandomSystemInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 80; iter++ {
		tr := runRandomSystem(t, r)
		if err := tr.Validate(); err != nil {
			t.Fatalf("iter %d: invalid trace: %v", iter, err)
		}
		g, err := hb.Build(tr, hb.Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		conv, err := hb.Build(tr, hb.Options{Conventional: true})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		ls, err := lockset.Compute(tr)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}

		// Invariant 1: happens-before is consistent with trace order,
		// and the conventional model only ever ADDS order.
		n := tr.Len()
		for k := 0; k < 400; k++ {
			i, j := r.Intn(n), r.Intn(n)
			if g.Ordered(i, j) {
				if i >= j {
					t.Fatalf("iter %d: Ordered(%d,%d) against trace order", iter, i, j)
				}
				if !conv.Ordered(i, j) {
					t.Fatalf("iter %d: conventional model lost ordering (%d,%d)", iter, i, j)
				}
			}
		}

		// Invariant 2: every reported race is concurrent, on one
		// location, across tasks, and not lock-protected.
		res, err := detect.Detect(detect.Input{Trace: tr, Graph: g, Conventional: conv, Locks: ls},
			detect.Options{KeepDuplicates: true})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for _, race := range res.Races {
			if race.Use.Var != race.Free.Var {
				t.Fatalf("iter %d: race across locations", iter)
			}
			if race.Use.Task == race.Free.Task {
				t.Fatalf("iter %d: race within one task", iter)
			}
			if !g.Concurrent(race.Use.ReadIdx, race.Free.Idx) {
				t.Fatalf("iter %d: reported race is ordered", iter)
			}
			if ls.Intersects(race.Use.ReadIdx, race.Free.Idx) {
				t.Fatalf("iter %d: reported race is lock-protected", iter)
			}
			// Classification sanity: conventional-class races must be
			// concurrent under the conventional model too.
			if race.Class == detect.ClassConventional &&
				!conv.Concurrent(race.Use.ReadIdx, race.Free.Idx) {
				t.Fatalf("iter %d: conventional-class race ordered conventionally", iter)
			}
			if race.Class == detect.ClassInterThread &&
				conv.Concurrent(race.Use.ReadIdx, race.Free.Idx) {
				t.Fatalf("iter %d: inter-thread-class race should be conventional", iter)
			}
		}

		// Invariant 3: the naive baseline's reports are concurrent
		// conflicting accesses.
		for _, nr := range detect.Naive(g) {
			if !g.Concurrent(nr.AIdx, nr.BIdx) {
				t.Fatalf("iter %d: naive race is ordered", iter)
			}
			if !nr.AWrite && !nr.BWrite {
				t.Fatalf("iter %d: naive race without a write", iter)
			}
		}
	}
}

// Package cfg provides the shared control-flow-graph view of dvm
// bytecode used by every static pass (intra-method reaching
// definitions in internal/dataflow, the whole-program analyses in
// internal/static). There is exactly one definition of "successor"
// and of the exceptional try-handler edges, so the passes can never
// disagree about the shape of a method.
package cfg

import "cafa/internal/dvm"

// Successors returns the normal CFG successor pcs of an instruction.
// Exceptional edges to try handlers are reported separately by
// TryHandlerEdges because they carry the instruction's PRE-state (a
// faulting instruction never defines its result).
func Successors(m *dvm.Method, pc int) []int {
	in := &m.Code[pc]
	var out []int
	switch in.Code {
	case dvm.CGoto:
		out = append(out, in.Target)
	case dvm.CReturnVoid, dvm.CReturn, dvm.CThrow:
		// no normal successor
	case dvm.CIfEqz, dvm.CIfNez, dvm.CIfEq,
		dvm.CIfIntEq, dvm.CIfIntNe, dvm.CIfIntLt, dvm.CIfIntLe, dvm.CIfIntGt, dvm.CIfIntGe:
		out = append(out, pc+1, in.Target)
	default:
		out = append(out, pc+1)
	}
	kept := out[:0]
	for _, s := range out {
		if s >= 0 && s < len(m.Code) {
			kept = append(kept, s)
		}
	}
	return kept
}

// TryHandlerEdges computes exceptional edges: every instruction
// lexically inside a try/end-try pair may jump to the handler.
// Dynamic try scopes follow the lexical structure in well-formed
// code, so a lexical scan with a stack suffices.
func TryHandlerEdges(m *dvm.Method) map[int][]int {
	edges := make(map[int][]int)
	var stack []int // open handler pcs
	for pc := range m.Code {
		switch m.Code[pc].Code {
		case dvm.CTry:
			stack = append(stack, m.Code[pc].Target)
		case dvm.CEndTry:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		default:
			for _, h := range stack {
				edges[pc] = append(edges[pc], h)
			}
		}
	}
	return edges
}

package cfg

import (
	"reflect"
	"testing"

	"cafa/internal/asm"
	"cafa/internal/dvm"
)

func method(t *testing.T, src, name string) *dvm.Method {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p.Methods[p.MustMethod(name)]
}

func TestSuccessors(t *testing.T) {
	m := method(t, `
.method f(h, c) regs=5
    const-int v3, #0       ; pc 0 -> 1
    if-int-eq c, v3, other ; pc 1 -> 2, 4
    goto done              ; pc 2 -> 5  (skips pc 3... none; target label)
    nop                    ; pc 3 -> 4
other:
    nop                    ; pc 4 -> 5
done:
    return-void            ; pc 5 -> none
.end
`, "f")
	want := map[int][]int{
		0: {1},
		1: {2, 4},
		2: {5},
		3: {4},
		4: {5},
		5: nil,
	}
	for pc, w := range want {
		got := Successors(m, pc)
		if len(got) == 0 && len(w) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, w) {
			t.Errorf("Successors(pc=%d) = %v, want %v", pc, got, w)
		}
	}
}

func TestSuccessorsClampsOutOfRange(t *testing.T) {
	// A trailing fallthrough must not produce a successor past the
	// method end.
	m := method(t, `
.method f(h) regs=2
    nop
.end
`, "f")
	if got := Successors(m, 0); len(got) != 0 {
		t.Errorf("trailing nop successors = %v, want none", got)
	}
}

func TestTryHandlerEdges(t *testing.T) {
	m := method(t, `
.method f(h) regs=3
    nop                    ; pc 0: outside try
    try handler            ; pc 1
    iget v1, h, ptr        ; pc 2: inside
    end-try                ; pc 3
    nop                    ; pc 4: outside again
    return-void            ; pc 5
handler:
    return-void            ; pc 6
.end
`, "f")
	edges := TryHandlerEdges(m)
	if got := edges[2]; !reflect.DeepEqual(got, []int{6}) {
		t.Errorf("edges[2] = %v, want [6]", got)
	}
	for _, pc := range []int{0, 1, 3, 4, 5, 6} {
		if got := edges[pc]; len(got) != 0 {
			t.Errorf("edges[%d] = %v, want none", pc, got)
		}
	}
}

func TestTryEdgesCoverBranchArms(t *testing.T) {
	// Every instruction lexically inside the try/end-try pair gets the
	// handler edge — both arms of a branch included — and a stray
	// end-try with no open try is ignored rather than corrupting the
	// scope stack.
	m := method(t, `
.method f(h) regs=3
    end-try                ; pc 0: stray, no open scope
    try handler            ; pc 1
    if-eqz h, alt          ; pc 2: inside
    nop                    ; pc 3: inside (then arm)
alt:
    nop                    ; pc 4: inside (else arm)
    end-try                ; pc 5
    return-void            ; pc 6
handler:
    return-void            ; pc 7
.end
`, "f")
	edges := TryHandlerEdges(m)
	for _, pc := range []int{2, 3, 4} {
		if got := edges[pc]; !reflect.DeepEqual(got, []int{7}) {
			t.Errorf("edges[%d] = %v, want [7]", pc, got)
		}
	}
	for _, pc := range []int{0, 1, 5, 6, 7} {
		if got := edges[pc]; len(got) != 0 {
			t.Errorf("edges[%d] = %v, want none", pc, got)
		}
	}
}

func TestNestedTryEdges(t *testing.T) {
	m := method(t, `
.method f(h) regs=3
    try outer              ; pc 0
    try inner              ; pc 1
    iget v1, h, ptr        ; pc 2: inside both
    end-try                ; pc 3
    iget v1, h, ptr        ; pc 4: inside outer only
    end-try                ; pc 5
    return-void            ; pc 6
inner:
    return-void            ; pc 7
outer:
    return-void            ; pc 8
.end
`, "f")
	edges := TryHandlerEdges(m)
	if got := edges[2]; !reflect.DeepEqual(got, []int{8, 7}) {
		t.Errorf("edges[2] = %v, want [8 7]", got)
	}
	if got := edges[4]; !reflect.DeepEqual(got, []int{8}) {
		t.Errorf("edges[4] = %v, want [8]", got)
	}
}

package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// The metric registry is process-wide: NewCounter("x") anywhere
// returns the same *Counter, so instrumented packages hold their
// handles in package-level vars with zero lookup cost on the hot
// path. Mutations are gated on the enabled flag (one atomic load);
// reads (Value, exporters) are never gated so a snapshot can be taken
// after Disable.

var registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter returns the process-wide counter with the given name,
// creating it on first use.
func NewCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.counters == nil {
		registry.counters = make(map[string]*Counter)
	}
	if c, ok := registry.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	registry.counters[name] = c
	return c
}

// Add increments the counter by n when obs is enabled.
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one when obs is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a set-to-current-value metric.
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge returns the process-wide gauge with the given name.
func NewGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.gauges == nil {
		registry.gauges = make(map[string]*Gauge)
	}
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	registry.gauges[name] = g
	return g
}

// Set stores v when obs is enabled.
func (g *Gauge) Set(v int64) {
	if enabled.Load() {
		g.v.Store(v)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// histBuckets is the number of exponential histogram buckets: bucket
// i counts observations v with 2^(i-1) < v <= 2^i (bucket 0 counts
// v <= 1), and the last bucket is the +Inf overflow.
const histBuckets = 32

// Histogram is a fixed power-of-two-bucket histogram of non-negative
// integer observations (lengths, sizes, iteration counts).
type Histogram struct {
	name    string
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns the process-wide histogram with the given name.
func NewHistogram(name string) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.hists == nil {
		registry.hists = make(map[string]*Histogram)
	}
	if h, ok := registry.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	registry.hists[name] = h
	return h
}

// bucketIndex maps an observation to its bucket: ceil(log2(v)),
// clamped to the overflow bucket.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1)) // ceil(log2 v) for v >= 2
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one observation when obs is enabled. Negative
// values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// snapshot views for the exporters, sorted by name for deterministic
// output.

func counterSnapshot() []*Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]*Counter, 0, len(registry.counters))
	for _, c := range registry.counters {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func gaugeSnapshot() []*Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]*Gauge, 0, len(registry.gauges))
	for _, g := range registry.gauges {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func histSnapshot() []*Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]*Histogram, 0, len(registry.hists))
	for _, h := range registry.hists {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func resetMetrics() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.v.Store(0)
	}
	for _, h := range registry.hists {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
	}
}

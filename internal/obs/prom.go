package obs

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Prometheus text exposition (version 0.0.4) of the metric registry,
// plus the human -metrics summary table the CLIs append.

// WritePrometheus writes every registered metric in Prometheus text
// exposition format, sorted by name. Zero-valued metrics are emitted
// too: a scrape must see every series the process owns.
func WritePrometheus(w io.Writer) error {
	for _, c := range counterSnapshot() {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gaugeSnapshot() {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.Value()); err != nil {
			return err
		}
	}
	for _, h := range histSnapshot() {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.name); err != nil {
			return err
		}
		cum := int64(0)
		bound := int64(1)
		for i := 0; i < histBuckets-1; i++ {
			cum += h.buckets[i].Load()
			// Trailing empty buckets collapse into +Inf; intermediate
			// bounds print so cumulative counts stay well-formed.
			if cum > 0 || i == 0 {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.name, bound, cum); err != nil {
					return err
				}
			}
			if bound > h.Max() {
				break
			}
			bound <<= 1
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			h.name, h.Count(), h.name, h.Sum(), h.name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary writes the human-readable metrics table (the -metrics
// flag of cafa-analyze / cafa-lint / cafa-bench). Only nonzero
// metrics print, so short runs stay short.
func WriteSummary(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "--- metrics ---")
	for _, c := range counterSnapshot() {
		if v := c.Value(); v != 0 {
			fmt.Fprintf(tw, "%s\t%d\n", c.name, v)
		}
	}
	for _, g := range gaugeSnapshot() {
		if v := g.Value(); v != 0 {
			fmt.Fprintf(tw, "%s\t%d\n", g.name, v)
		}
	}
	for _, h := range histSnapshot() {
		if n := h.Count(); n != 0 {
			fmt.Fprintf(tw, "%s\tcount=%d sum=%d mean=%.1f max=%d\n",
				h.name, n, h.Sum(), float64(h.Sum())/float64(n), h.Max())
		}
	}
	if d := DroppedSpans(); d != 0 {
		fmt.Fprintf(tw, "obs_spans_dropped\t%d\n", d)
	}
	return tw.Flush()
}

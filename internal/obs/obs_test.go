package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// withObs runs fn with instrumentation enabled and a clean slate,
// restoring the disabled default afterwards.
func withObs(t *testing.T, fn func()) {
	t.Helper()
	Enable()
	Reset()
	defer func() {
		Disable()
		Reset()
	}()
	fn()
}

func TestDisabledIsNoop(t *testing.T) {
	Disable()
	Reset()
	sp := Start("root")
	if sp != nil {
		t.Fatalf("Start while disabled: got %v, want nil", sp)
	}
	// The whole span API must be nil-safe.
	child := sp.Child("c")
	child.SetAttr(String("k", "v"))
	child.End()
	sp.Fork("f").End()
	sp.End()
	c := NewCounter("test_disabled_total")
	c.Add(5)
	h := NewHistogram("test_disabled_hist")
	h.Observe(3)
	g := NewGauge("test_disabled_gauge")
	g.Set(7)
	if c.Value() != 0 || h.Count() != 0 || g.Value() != 0 {
		t.Errorf("disabled metrics mutated: counter=%d hist=%d gauge=%d", c.Value(), h.Count(), g.Value())
	}
	if n := len(Spans()); n != 0 {
		t.Errorf("disabled run recorded %d spans", n)
	}
}

func TestSpanHierarchyAndTracks(t *testing.T) {
	withObs(t, func() {
		root := Start("root", String("file", "a.trace"))
		child := root.Child("child")
		fork := root.Fork("fork")
		fork.End()
		child.SetAttr(Int("races", 3))
		child.End()
		root.End()
		root.End() // duplicate End is ignored

		spans := Spans()
		if len(spans) != 3 {
			t.Fatalf("got %d spans, want 3", len(spans))
		}
		byName := map[string]SpanData{}
		for _, s := range spans {
			byName[s.Name] = s
		}
		if byName["child"].Track != byName["root"].Track {
			t.Errorf("Child changed track: child=%d root=%d", byName["child"].Track, byName["root"].Track)
		}
		if byName["fork"].Track == byName["root"].Track {
			t.Errorf("Fork kept parent track %d", byName["root"].Track)
		}
		if got := byName["root"].Attr("file"); got != "a.trace" {
			t.Errorf("root file attr = %q", got)
		}
		if got := byName["child"].Attr("races"); got != "3" {
			t.Errorf("child races attr = %q", got)
		}
		// Child's window is contained in root's.
		r, c := byName["root"], byName["child"]
		if c.Start < r.Start || c.Start+c.Dur > r.Start+r.Dur {
			t.Errorf("child [%v+%v] not contained in root [%v+%v]", c.Start, c.Dur, r.Start, r.Dur)
		}
	})
}

func TestSubscribe(t *testing.T) {
	withObs(t, func() {
		var mu sync.Mutex
		var seen []string
		cancel := Subscribe(func(d SpanData) {
			mu.Lock()
			seen = append(seen, d.Name)
			mu.Unlock()
		})
		Start("a").End()
		Start("b").End()
		cancel()
		Start("c").End()
		mu.Lock()
		defer mu.Unlock()
		if strings.Join(seen, ",") != "a,b" {
			t.Errorf("subscriber saw %v, want [a b]", seen)
		}
	})
}

func TestRegistryIdempotent(t *testing.T) {
	withObs(t, func() {
		a := NewCounter("test_idem_total")
		b := NewCounter("test_idem_total")
		if a != b {
			t.Error("NewCounter not idempotent")
		}
		a.Inc()
		b.Add(2)
		if a.Value() != 3 {
			t.Errorf("counter = %d, want 3", a.Value())
		}
	})
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1 << 40, histBuckets - 1}}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	withObs(t, func() {
		h := NewHistogram("test_hist")
		for _, v := range []int64{1, 2, 4, 100} {
			h.Observe(v)
		}
		if h.Count() != 4 || h.Sum() != 107 || h.Max() != 100 {
			t.Errorf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
		}
	})
}

func TestPrometheusExposition(t *testing.T) {
	withObs(t, func() {
		NewCounter("test_prom_total").Add(42)
		NewGauge("test_prom_gauge").Set(-7)
		h := NewHistogram("test_prom_hist")
		h.Observe(1)
		h.Observe(3)
		h.Observe(300)
		var buf bytes.Buffer
		if err := WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, want := range []string{
			"# TYPE test_prom_total counter\ntest_prom_total 42\n",
			"# TYPE test_prom_gauge gauge\ntest_prom_gauge -7\n",
			"# TYPE test_prom_hist histogram\n",
			`test_prom_hist_bucket{le="1"} 1`,
			`test_prom_hist_bucket{le="4"} 2`,
			`test_prom_hist_bucket{le="+Inf"} 3`,
			"test_prom_hist_sum 304",
			"test_prom_hist_count 3",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("exposition missing %q:\n%s", want, out)
			}
		}
		// Cumulative bucket counts must be monotone.
		last := int64(-1)
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, "test_prom_hist_bucket") {
				continue
			}
			var n int64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
				t.Fatalf("bad bucket line %q", line)
			}
			if n < last {
				t.Errorf("non-monotone buckets: %q after %d", line, last)
			}
			last = n
		}
	})
}

func TestSummaryTable(t *testing.T) {
	withObs(t, func() {
		NewCounter("test_sum_total").Add(9)
		NewCounter("test_zero_total") // zero-valued: omitted
		var buf bytes.Buffer
		if err := WriteSummary(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "test_sum_total") {
			t.Errorf("summary missing nonzero counter:\n%s", buf.String())
		}
		if strings.Contains(buf.String(), "test_zero_total") {
			t.Errorf("summary includes zero counter:\n%s", buf.String())
		}
	})
}

func TestTraceEventExport(t *testing.T) {
	withObs(t, func() {
		root := Start("root")
		root.Child("child").End()
		root.End()
		var buf bytes.Buffer
		if err := WriteTraceEvents(&buf); err != nil {
			t.Fatal(err)
		}
		var out struct {
			TraceEvents []struct {
				Name string            `json:"name"`
				Ph   string            `json:"ph"`
				Ts   float64           `json:"ts"`
				Dur  float64           `json:"dur"`
				Pid  int               `json:"pid"`
				Tid  int               `json:"tid"`
				Args map[string]string `json:"args"`
			} `json:"traceEvents"`
			DisplayTimeUnit string `json:"displayTimeUnit"`
		}
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("invalid trace-event JSON: %v", err)
		}
		if len(out.TraceEvents) != 2 {
			t.Fatalf("got %d events, want 2", len(out.TraceEvents))
		}
		// Sorted by start: root precedes child; both complete events.
		if out.TraceEvents[0].Name != "root" || out.TraceEvents[1].Name != "child" {
			t.Errorf("order: %q, %q", out.TraceEvents[0].Name, out.TraceEvents[1].Name)
		}
		for _, ev := range out.TraceEvents {
			if ev.Ph != "X" || ev.Ts < 0 || ev.Dur < 0 || ev.Pid != 1 {
				t.Errorf("malformed event %+v", ev)
			}
		}
	})
}

func TestDebugServer(t *testing.T) {
	withObs(t, func() {
		NewCounter("test_debug_total").Add(3)
		ds, err := ServeDebug("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		get := func(path string) string {
			resp, err := http.Get("http://" + ds.Addr() + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d", path, resp.StatusCode)
			}
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return string(b)
		}
		if body := get("/metrics"); !strings.Contains(body, "test_debug_total 3") {
			t.Errorf("/metrics missing counter:\n%s", body)
		}
		if body := get("/debug/pprof/cmdline"); body == "" {
			t.Error("/debug/pprof/cmdline empty")
		}
	})
}

func TestResetClearsValuesKeepsHandles(t *testing.T) {
	withObs(t, func() {
		c := NewCounter("test_reset_total")
		c.Add(5)
		Start("s").End()
		Reset()
		if c.Value() != 0 {
			t.Errorf("counter survived Reset: %d", c.Value())
		}
		if len(Spans()) != 0 {
			t.Error("spans survived Reset")
		}
		c.Inc() // handle still registered and live
		if c.Value() != 1 {
			t.Errorf("handle dead after Reset: %d", c.Value())
		}
	})
}

func TestSpanTimesAreMonotone(t *testing.T) {
	withObs(t, func() {
		sp := Start("timed")
		time.Sleep(time.Millisecond)
		sp.End()
		d := Spans()[0]
		if d.Dur < time.Millisecond/2 {
			t.Errorf("span dur %v, want >= ~1ms", d.Dur)
		}
	})
}

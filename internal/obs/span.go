package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value span attribute. Values are strings so the
// span sink stays allocation-predictable; Int formats for callers.
type Attr struct {
	Key string
	Val string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Val: strconv.Itoa(v)} }

// Span is one timed region of work. A nil *Span is a valid no-op span
// (Start returns nil while obs is disabled), so call sites never need
// an enabled check of their own.
type Span struct {
	name  string
	track int32
	start time.Duration // since epoch
	attrs []Attr
	ended atomic.Bool
}

// SpanData is a finished span as recorded in the sink and handed to
// subscribers.
type SpanData struct {
	Name  string
	Track int32
	Start time.Duration // since process epoch
	Dur   time.Duration
	Attrs []Attr
}

// Attr returns the value of the named attribute ("" when absent).
func (d SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// nextTrack allocates goroutine-track ids for Start/Fork spans.
var nextTrack atomic.Int32

// Start begins a top-level span on a fresh track. Returns nil (a
// no-op span) while obs is disabled.
func Start(name string, attrs ...Attr) *Span {
	if !enabled.Load() {
		return nil
	}
	return &Span{name: name, track: nextTrack.Add(1), start: sinceEpoch(), attrs: attrs}
}

// Child begins a sub-span on the same track as s: serial phases of
// one logical thread of work, rendered as nested slices.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{name: name, track: s.track, start: sinceEpoch(), attrs: attrs}
}

// Fork begins a sub-span on a fresh track: work that runs
// concurrently with its parent (or with sibling forks), rendered side
// by side.
func (s *Span) Fork(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{name: name, track: nextTrack.Add(1), start: sinceEpoch(), attrs: attrs}
}

// SetAttr attaches (or appends) an attribute; call before End.
func (s *Span) SetAttr(a Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, a)
}

// End finishes the span and records it. Safe to call at most once per
// span effectively; duplicate Ends are ignored.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	record(SpanData{
		Name:  s.name,
		Track: s.track,
		Start: s.start,
		Dur:   sinceEpoch() - s.start,
		Attrs: s.attrs,
	})
}

// maxRecordedSpans bounds sink memory; beyond it spans are counted as
// dropped but still delivered to subscribers (streaming consumers —
// the -progress printer — keep working on arbitrarily long runs).
const maxRecordedSpans = 1 << 20

var sink struct {
	mu      sync.Mutex
	spans   []SpanData
	dropped int64
	subs    map[int]func(SpanData)
	nextSub int
}

// record stores a finished span and notifies subscribers. Subscribers
// run synchronously under the sink lock, so their side effects (e.g.
// progress lines) never interleave.
func record(d SpanData) {
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.spans) < maxRecordedSpans {
		sink.spans = append(sink.spans, d)
	} else {
		sink.dropped++
	}
	for _, fn := range sink.subs {
		fn(d)
	}
}

// Subscribe registers fn to be called for every span that ends, and
// returns a cancel function. fn runs under the span sink lock: keep
// it short and never start/end spans from inside it.
func Subscribe(fn func(SpanData)) (cancel func()) {
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.subs == nil {
		sink.subs = make(map[int]func(SpanData))
	}
	id := sink.nextSub
	sink.nextSub++
	sink.subs[id] = fn
	return func() {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		delete(sink.subs, id)
	}
}

// Spans returns a snapshot of the recorded spans, in completion order.
func Spans() []SpanData {
	sink.mu.Lock()
	defer sink.mu.Unlock()
	out := make([]SpanData, len(sink.spans))
	copy(out, sink.spans)
	return out
}

// DroppedSpans reports spans discarded past the sink bound.
func DroppedSpans() int64 {
	sink.mu.Lock()
	defer sink.mu.Unlock()
	return sink.dropped
}

func resetSpans() {
	sink.mu.Lock()
	defer sink.mu.Unlock()
	sink.spans = nil
	sink.dropped = 0
}

package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event exporter: the recorded spans rendered as
// complete ("X") events, loadable in Perfetto or chrome://tracing.
// Each obs track becomes one tid; Child spans nest inside their
// parent's slice by time containment, Fork/Start tracks render side
// by side — concurrent per-trace analysis shows up as parallel rows.

// traceEvent is one entry of the trace-event JSON array.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds since epoch
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the top-level trace-event JSON object.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents writes every recorded span as Chrome trace-event
// JSON. Events are sorted by (start, track, name) so the output is
// independent of span completion order (and therefore of analysis
// parallelism, up to the timestamps themselves).
func WriteTraceEvents(w io.Writer) error {
	spans := Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Name < b.Name
	})
	out := traceFile{TraceEvents: make([]traceEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, sp := range spans {
		ev := traceEvent{
			Name: sp.Name,
			Cat:  "cafa",
			Ph:   "X",
			Ts:   float64(sp.Start.Nanoseconds()) / 1e3,
			Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  int(sp.Track),
		}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the optional -debug-addr HTTP listener: /metrics
// serves the Prometheus text snapshot, /debug/pprof/* the standard
// Go profiles, and callers may mount extra routes (cafa-analyze's
// live /triage report). It lives for the duration of a batch run;
// Close stops the listener.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Route is an extra handler mounted on the debug listener.
type Route struct {
	Pattern string
	Handler http.Handler
}

// ServeDebug starts the debug listener on addr (e.g. "localhost:0")
// and serves until Close. Extra routes are mounted alongside the
// built-in ones. It returns immediately.
func ServeDebug(addr string, extra ...Route) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Addr returns the bound listen address (useful with port 0).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener immediately, dropping in-flight requests.
func (d *DebugServer) Close() error { return d.srv.Close() }

// Shutdown stops the listener gracefully: the port is released at
// once (no new connections), in-flight requests get until the context
// deadline to finish, and stragglers are then closed hard, so the
// listener never outlives the run that opened it.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	if err := d.srv.Shutdown(ctx); err != nil {
		return d.srv.Close()
	}
	return nil
}

// shutdownGrace is how long CLI runs wait for in-flight debug
// requests (a /triage render, a pprof snapshot) on exit.
const shutdownGrace = 2 * time.Second

// ShutdownOnExit is the deferred form used by the CLIs: a bounded
// graceful shutdown with the default grace period.
func (d *DebugServer) ShutdownOnExit() {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	_ = d.Shutdown(ctx)
}

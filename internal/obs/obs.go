// Package obs is CAFA's zero-dependency instrumentation layer:
// hierarchical timed spans, a process-wide registry of atomic
// counters/gauges/histograms, and three exporters (Chrome trace-event
// JSON for Perfetto, Prometheus text exposition, a human summary
// table) plus an optional debug HTTP listener mounting /metrics and
// net/http/pprof.
//
// The layer is off by default and costs ~nothing while off: Start
// returns a nil *Span (all Span methods are nil-safe no-ops) and every
// metric mutation is gated on one atomic bool load. Because obs only
// ever observes — no instrumented package reads anything back from it
// — enabling it cannot change analysis results; the differential test
// in internal/analysis proves race reports and stats are
// byte-identical with instrumentation on and off, and the overhead
// test at the repo root (BENCH_obs.json) bounds the enabled cost.
//
// Span hierarchy maps onto Chrome trace-event tracks: Start and Fork
// allocate a fresh track (concurrent work renders side by side),
// Child inherits its parent's track (serial phases render as nested
// slices, since a child's [start, end) is contained in its parent's).
package obs

import (
	"sync/atomic"
	"time"
)

// enabled gates all instrumentation. Off by default.
var enabled atomic.Bool

// Enable turns instrumentation on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns instrumentation off. Spans already started still
// record on End (their data is real); new Starts return nil.
func Disable() { enabled.Store(false) }

// Enabled reports whether instrumentation is on.
func Enabled() bool { return enabled.Load() }

// epoch anchors span timestamps; sinceEpoch is monotonic.
var epoch = time.Now()

func sinceEpoch() time.Duration { return time.Since(epoch) }

// Reset clears recorded spans and zeroes every registered metric
// (registrations persist — package-level metric handles stay valid).
// Intended for tests and for CLIs that run repeated measured phases.
func Reset() {
	resetSpans()
	resetMetrics()
}

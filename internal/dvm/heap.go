package dvm

import (
	"fmt"

	"cafa/internal/trace"
)

// Object is a heap object: a class name and a field store. Object IDs
// are unique across the whole simulated system (the paper's DVM
// assigns a unique object ID per allocation, §5.2).
type Object struct {
	ID    trace.ObjID
	Class string
	// IsArray marks array objects; ArrayLen is their length. Array
	// slots are stored in fields keyed by slot index.
	IsArray  bool
	ArrayLen int
	fields   map[trace.FieldID]Value
}

// Get reads a field (zero Value as int 0 if unset; object fields
// default to null only if written as such — callers that care use
// typed accessors below).
func (o *Object) Get(f trace.FieldID) (Value, bool) {
	v, ok := o.fields[f]
	return v, ok
}

// Set writes a field.
func (o *Object) Set(f trace.FieldID, v Value) { o.fields[f] = v }

// Heap is the shared object store of a simulated system. It also
// holds the static field table (one global static area; field IDs are
// program-interned, so statics are per-field-name).
type Heap struct {
	next    trace.ObjID
	objs    map[trace.ObjID]*Object
	statics map[trace.FieldID]Value
}

// NewHeap returns an empty heap. Object IDs start at 1 (0 is null).
func NewHeap() *Heap {
	return &Heap{
		next:    1,
		objs:    make(map[trace.ObjID]*Object),
		statics: make(map[trace.FieldID]Value),
	}
}

// New allocates an object of the given class.
func (h *Heap) New(class string) *Object {
	o := &Object{ID: h.next, Class: class, fields: make(map[trace.FieldID]Value)}
	h.next++
	h.objs[o.ID] = o
	return o
}

// NewArray allocates an array object of the given length.
func (h *Heap) NewArray(n int) *Object {
	o := h.New("[]")
	o.IsArray = true
	o.ArrayLen = n
	return o
}

// Object resolves an object ID; nil for null or unknown ids.
func (h *Heap) Object(id trace.ObjID) *Object {
	if id == trace.NullObj {
		return nil
	}
	return h.objs[id]
}

// Count returns the number of live objects.
func (h *Heap) Count() int { return len(h.objs) }

// GetStatic reads a static field; unset object-typed statics read as
// null and unset scalars as 0 — callers pass the expected kind.
func (h *Heap) GetStatic(f trace.FieldID, kind Kind) Value {
	if v, ok := h.statics[f]; ok {
		return v
	}
	if kind == KObj {
		return Null()
	}
	return Int64(0)
}

// SetStatic writes a static field.
func (h *Heap) SetStatic(f trace.FieldID, v Value) { h.statics[f] = v }

// GetField reads an instance field with a typed default (null /
// zero).
func (h *Heap) GetField(o *Object, f trace.FieldID, kind Kind) Value {
	if v, ok := o.Get(f); ok {
		return v
	}
	if kind == KObj {
		return Null()
	}
	return Int64(0)
}

// NPE is the error produced by a null-pointer dereference — the
// use-after-free manifestation the paper targets.
type NPE struct {
	Method string
	PC     int
	What   string
}

func (e *NPE) Error() string {
	return fmt.Sprintf("NullPointerException in %s at pc=%d (%s)", e.Method, e.PC, e.What)
}

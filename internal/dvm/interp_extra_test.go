package dvm

import (
	"strings"
	"testing"
)

func TestInvokeValue(t *testing.T) {
	p := NewProgram()
	callee := buildMethod("callee", 1, 2,
		Instr{Code: CConstInt, A: 1, Imm: 9},
		Instr{Code: CReturn, A: 1},
	)
	ci, err := p.AddMethod(callee)
	if err != nil {
		t.Fatal(err)
	}
	m := buildMethod("main", 0, 3,
		Instr{Code: CConstMethod, A: 0, MethodIdx: ci},
		Instr{Code: CConstNull, A: 1},
		Instr{Code: CInvokeValue, A: 0, Args: []Reg{1}, Res: 2, HasRes: true},
		Instr{Code: CSputInt, A: 2, Field: p.FieldID("got")},
		Instr{Code: CReturnVoid},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, _, _ := newTestContext(t, p, "main")
	if st := c.Run(0); st != Finished {
		t.Fatalf("state=%v err=%v", st, c.Err)
	}
	if got := c.Heap.GetStatic(p.FieldID("got"), KInt); got.Int != 9 {
		t.Errorf("got = %d, want 9", got.Int)
	}
}

func TestInvokeValueOnNonHandle(t *testing.T) {
	p := NewProgram()
	m := buildMethod("main", 0, 2,
		Instr{Code: CConstInt, A: 0, Imm: 5},
		Instr{Code: CInvokeValue, A: 0},
		Instr{Code: CReturnVoid},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, _, _ := newTestContext(t, p, "main")
	if st := c.Run(0); st != Crashed || !strings.Contains(c.Err.Error(), "invoke-value") {
		t.Errorf("state=%v err=%v", st, c.Err)
	}
}

func TestFallOffEndActsLikeReturn(t *testing.T) {
	p := NewProgram()
	m := buildMethod("main", 0, 1,
		Instr{Code: CNop},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, _, _ := newTestContext(t, p, "main")
	if st := c.Run(0); st != Finished {
		t.Fatalf("state=%v err=%v", st, c.Err)
	}
	if !c.Result.IsNull() {
		t.Error("implicit return should yield null result")
	}
}

func TestResultCapturedAtTopLevel(t *testing.T) {
	p := NewProgram()
	m := buildMethod("main", 0, 1,
		Instr{Code: CConstInt, A: 0, Imm: 77},
		Instr{Code: CReturn, A: 0},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, _, _ := newTestContext(t, p, "main")
	if st := c.Run(0); st != Finished {
		t.Fatalf("state=%v err=%v", st, c.Err)
	}
	if c.Result.Kind != KInt || c.Result.Int != 77 {
		t.Errorf("Result = %v, want #77", c.Result)
	}
}

func TestStatesAndStrings(t *testing.T) {
	for _, s := range []Control{Running, Blocked, Finished, Crashed} {
		if s.String() == "" || strings.HasPrefix(s.String(), "Control(") {
			t.Errorf("state %d unnamed", s)
		}
	}
	if s := Control(9).String(); !strings.Contains(s, "9") {
		t.Error("unknown state should include value")
	}
	for c := CNop; c < codeMax; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "Code(") {
			t.Errorf("opcode %d unnamed", c)
		}
	}
	for in := IntrSend; in < intrMax; in++ {
		if s := in.String(); s == "" || strings.HasPrefix(s, "Intrinsic(") {
			t.Errorf("intrinsic %d unnamed", in)
		}
	}
}

func TestResumePanicsWhenNotBlocked(t *testing.T) {
	p := NewProgram()
	m := buildMethod("main", 0, 1, Instr{Code: CReturnVoid})
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, _, _ := newTestContext(t, p, "main")
	defer func() {
		if recover() == nil {
			t.Error("Resume on runnable context must panic")
		}
	}()
	c.Resume(Int64(0))
}

func TestContextArityMismatch(t *testing.T) {
	p := NewProgram()
	m := buildMethod("needsTwo", 2, 3, Instr{Code: CReturnVoid})
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	if _, err := NewContext(p, NewHeap(), &fakeEnv{}, nil, 1, m, nil); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestPushCallErrors(t *testing.T) {
	p := NewProgram()
	m := buildMethod("main", 0, 1, Instr{Code: CNop}, Instr{Code: CReturnVoid})
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	two := buildMethod("two", 2, 2, Instr{Code: CReturnVoid})
	if _, err := p.AddMethod(two); err != nil {
		t.Fatal(err)
	}
	c, _, _ := newTestContext(t, p, "main")
	if err := c.PushCall(two, nil); err == nil {
		t.Error("PushCall arity mismatch accepted")
	}
	if err := c.PushCall(two, []Value{Null(), Null()}); err != nil {
		t.Errorf("valid PushCall failed: %v", err)
	}
	if got := c.CurrentMethod(); got == nil || got.Name != "two" {
		t.Error("CurrentMethod should be the pushed frame")
	}
}

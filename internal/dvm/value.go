// Package dvm implements a register-based, Dalvik-like bytecode
// virtual machine: the instruction subset the paper's instrumented
// interpreter traces (object-pointer gets/puts, guard branches,
// invokes) plus enough scalar arithmetic and control flow to write
// realistic application code.
//
// The interpreter is resumable: executing a blocking runtime intrinsic
// (wait, join, RPC, ...) suspends the context, and the event-driven
// runtime (internal/sim) resumes it with a result later. All tracing
// of §5.3 (pointer reads/writes, dereferences, if-guard branches,
// calling context) is emitted here, mirroring the paper's DVM
// bytecode-interpreter instrumentation.
package dvm

import (
	"fmt"

	"cafa/internal/trace"
)

// Kind discriminates the runtime value kinds.
type Kind uint8

// Value kinds.
const (
	KInt    Kind = iota // 64-bit integer (also used for handles: queues, threads, listeners, ...)
	KObj                // object reference (ObjID; NullObj is null)
	KMethod             // method handle (index into Program.Methods)
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KObj:
		return "obj"
	case KMethod:
		return "method"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a VM register value.
type Value struct {
	Kind   Kind
	Int    int64
	Obj    trace.ObjID
	Method int // index into Program.Methods
}

// Int64 returns an integer value.
func Int64(v int64) Value { return Value{Kind: KInt, Int: v} }

// Obj returns an object-reference value.
func Obj(id trace.ObjID) Value { return Value{Kind: KObj, Obj: id} }

// Null is the null object reference.
func Null() Value { return Value{Kind: KObj, Obj: trace.NullObj} }

// MethodHandle returns a method-handle value.
func MethodHandle(idx int) Value { return Value{Kind: KMethod, Method: idx} }

// IsNull reports whether the value is the null reference.
func (v Value) IsNull() bool { return v.Kind == KObj && v.Obj == trace.NullObj }

func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprintf("#%d", v.Int)
	case KObj:
		if v.Obj == trace.NullObj {
			return "null"
		}
		return fmt.Sprintf("o%d", v.Obj)
	case KMethod:
		return fmt.Sprintf("mh%d", v.Method)
	default:
		return fmt.Sprintf("?%d", v.Kind)
	}
}

// Equal reports value equality (used by if-eq).
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KInt:
		return v.Int == w.Int
	case KObj:
		return v.Obj == w.Obj
	case KMethod:
		return v.Method == w.Method
	default:
		return false
	}
}

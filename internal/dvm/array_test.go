package dvm

import (
	"strings"
	"testing"

	"cafa/internal/trace"
)

func TestArrayBasics(t *testing.T) {
	p := NewProgram()
	m := buildMethod("main", 0, 6,
		Instr{Code: CConstInt, A: 0, Imm: 3},
		Instr{Code: CNewArray, A: 1, B: 0}, // v1 = new[3]
		Instr{Code: CArrayLen, A: 2, B: 1}, // v2 = len
		Instr{Code: CSputInt, A: 2, Field: p.FieldID("len")},
		Instr{Code: CConstInt, A: 3, Imm: 1}, // index
		Instr{Code: CNew, A: 4, Class: "El"}, // element
		Instr{Code: CAput, A: 4, B: 1, C: 3}, // v1[1] = v4
		Instr{Code: CAget, A: 5, B: 1, C: 3}, // v5 = v1[1]
		Instr{Code: CIfEq, A: 4, B: 5, Target: 10},
		Instr{Code: CReturnVoid},
		Instr{Code: CConstInt, A: 2, Imm: 1},
		Instr{Code: CSputInt, A: 2, Field: p.FieldID("same")},
		Instr{Code: CConstInt, A: 0, Imm: 7},
		Instr{Code: CAputInt, A: 0, B: 1, C: 3}, // v1[1] = 7 (int now)
		Instr{Code: CAgetInt, A: 2, B: 1, C: 3},
		Instr{Code: CSputInt, A: 2, Field: p.FieldID("seven")},
		Instr{Code: CReturnVoid},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, col, _ := newTestContext(t, p, "main")
	if st := c.Run(0); st != Finished {
		t.Fatalf("state=%v err=%v", st, c.Err)
	}
	if got := c.Heap.GetStatic(p.FieldID("len"), KInt); got.Int != 3 {
		t.Errorf("len = %d, want 3", got.Int)
	}
	if got := c.Heap.GetStatic(p.FieldID("same"), KInt); got.Int != 1 {
		t.Error("aget did not return the aput value")
	}
	if got := c.Heap.GetStatic(p.FieldID("seven"), KInt); got.Int != 7 {
		t.Errorf("seven = %d, want 7", got.Int)
	}
	// aput emits a pointer write (an allocation: non-null).
	var ptrWrites, ptrReads int
	for _, e := range col.T.Entries {
		switch e.Op {
		case trace.OpPtrWrite:
			ptrWrites++
			if !e.IsAlloc() {
				t.Error("aput of a non-null element must be an allocation")
			}
		case trace.OpPtrRead:
			ptrReads++
		}
	}
	if ptrWrites != 1 || ptrReads != 1 {
		t.Errorf("ptrWrites=%d ptrReads=%d, want 1/1", ptrWrites, ptrReads)
	}
}

func TestArrayErrors(t *testing.T) {
	run := func(code ...Instr) (*Context, Control) {
		p := NewProgram()
		m := buildMethod("main", 0, 4, code...)
		if _, err := p.AddMethod(m); err != nil {
			t.Fatal(err)
		}
		c, _, _ := newTestContext(t, p, "main")
		return c, c.Run(0)
	}
	// Out-of-bounds index crashes.
	c, st := run(
		Instr{Code: CConstInt, A: 0, Imm: 2},
		Instr{Code: CNewArray, A: 1, B: 0},
		Instr{Code: CConstInt, A: 2, Imm: 5},
		Instr{Code: CAget, A: 3, B: 1, C: 2},
		Instr{Code: CReturnVoid},
	)
	if st != Crashed || !strings.Contains(c.Err.Error(), "out of bounds") {
		t.Errorf("oob: state=%v err=%v", st, c.Err)
	}
	// Negative length crashes.
	c, st = run(
		Instr{Code: CConstInt, A: 0, Imm: -1},
		Instr{Code: CNewArray, A: 1, B: 0},
		Instr{Code: CReturnVoid},
	)
	if st != Crashed || !strings.Contains(c.Err.Error(), "bad array length") {
		t.Errorf("neg len: state=%v err=%v", st, c.Err)
	}
	// Array access on a non-array object crashes.
	c, st = run(
		Instr{Code: CNew, A: 1, Class: "X"},
		Instr{Code: CConstInt, A: 2, Imm: 0},
		Instr{Code: CAget, A: 3, B: 1, C: 2},
		Instr{Code: CReturnVoid},
	)
	if st != Crashed || !strings.Contains(c.Err.Error(), "not an array") {
		t.Errorf("non-array: state=%v err=%v", st, c.Err)
	}
	// Array access on null throws NPE (catchable).
	c, st = run(
		Instr{Code: CConstNull, A: 1},
		Instr{Code: CConstInt, A: 2, Imm: 0},
		Instr{Code: CAget, A: 3, B: 1, C: 2},
		Instr{Code: CReturnVoid},
	)
	if st != Crashed {
		t.Fatalf("null array: state=%v", st)
	}
	if _, ok := c.Err.(*NPE); !ok {
		t.Errorf("null array err = %T %v, want NPE", c.Err, c.Err)
	}
}

func TestArrayAsm(t *testing.T) {
	// Assembled via the asm package in asm tests; here confirm the
	// disassembler covers array opcodes.
	p := NewProgram()
	m := buildMethod("arr", 0, 4,
		Instr{Code: CNewArray, A: 0, B: 1},
		Instr{Code: CAget, A: 2, B: 0, C: 1},
		Instr{Code: CAputInt, A: 2, B: 0, C: 1},
		Instr{Code: CArrayLen, A: 3, B: 0},
		Instr{Code: CReturnVoid},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	out := p.DisasmMethod(m)
	for _, want := range []string{"new-array", "aget", "aput-int", "array-len"} {
		if !strings.Contains(out, want) {
			t.Errorf("disasm missing %q:\n%s", want, out)
		}
	}
}

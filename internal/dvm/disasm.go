package dvm

import (
	"fmt"
	"strings"
)

// Disasm renders one instruction in assembler-like syntax.
func (p *Program) Disasm(in *Instr) string {
	var b strings.Builder
	b.WriteString(in.Code.String())
	arg := func(format string, args ...any) {
		if b.Len() > len(in.Code.String()) {
			b.WriteString(",")
		}
		b.WriteString(" ")
		fmt.Fprintf(&b, format, args...)
	}
	switch in.Code {
	case CConstNull:
		arg("v%d", in.A)
	case CConstInt:
		arg("v%d", in.A)
		arg("#%d", in.Imm)
	case CConstMethod:
		arg("v%d", in.A)
		arg("%s", p.Methods[in.MethodIdx].Name)
	case CNew:
		arg("v%d", in.A)
		arg("%s", in.Class)
	case CMove:
		arg("v%d", in.A)
		arg("v%d", in.B)
	case CIget, CIgetInt:
		arg("v%d", in.A)
		arg("v%d", in.B)
		arg("%s", p.FieldName(in.Field))
	case CIput, CIputInt:
		arg("v%d", in.A)
		arg("v%d", in.B)
		arg("%s", p.FieldName(in.Field))
	case CSget, CSgetInt, CSput, CSputInt:
		arg("v%d", in.A)
		arg("%s", p.FieldName(in.Field))
	case CNewArray, CArrayLen:
		arg("v%d", in.A)
		arg("v%d", in.B)
	case CAget, CAgetInt, CAput, CAputInt:
		arg("v%d", in.A)
		arg("v%d", in.B)
		arg("v%d", in.C)
	case CIfEqz, CIfNez:
		arg("v%d", in.A)
		arg("@%d", in.Target)
	case CIfEq, CIfIntEq, CIfIntNe, CIfIntLt, CIfIntLe, CIfIntGt, CIfIntGe:
		arg("v%d", in.A)
		arg("v%d", in.B)
		arg("@%d", in.Target)
	case CGoto, CTry:
		arg("@%d", in.Target)
	case CAdd, CSub, CMul:
		arg("v%d", in.Res)
		arg("v%d", in.A)
		arg("v%d", in.B)
	case CInvokeVirtual, CInvokeStatic:
		arg("%s", p.Methods[in.MethodIdx].Name)
		for _, r := range in.Args {
			arg("v%d", r)
		}
		if in.HasRes {
			arg("-> v%d", in.Res)
		}
	case CInvokeValue:
		arg("v%d", in.A)
		for _, r := range in.Args {
			arg("v%d", r)
		}
		if in.HasRes {
			arg("-> v%d", in.Res)
		}
	case CReturn:
		arg("v%d", in.A)
	case CIntrinsic:
		arg("%s", in.Intr)
		for _, r := range in.Args {
			arg("v%d", r)
		}
		if in.HasRes {
			arg("-> v%d", in.Res)
		}
	}
	return b.String()
}

// DisasmMethod renders a whole method.
func (p *Program) DisasmMethod(m *Method) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".method %s params=%d regs=%d\n", m.Name, m.NumParams, m.NumRegs)
	for pc := range m.Code {
		fmt.Fprintf(&b, "  %4d: %s\n", pc, p.Disasm(&m.Code[pc]))
	}
	b.WriteString(".end\n")
	return b.String()
}

package dvm

import (
	"errors"
	"fmt"

	"cafa/internal/trace"
)

// Control is the interpreter state after a Step.
type Control uint8

// Interpreter states.
const (
	Running  Control = iota // more instructions to execute
	Blocked                 // suspended in a blocking intrinsic; Resume to continue
	Finished                // entry method returned
	Crashed                 // uncaught exception or VM error; see Context.Err
)

func (c Control) String() string {
	switch c {
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Finished:
		return "finished"
	case Crashed:
		return "crashed"
	default:
		return fmt.Sprintf("Control(%d)", uint8(c))
	}
}

// Env provides the runtime services a Context needs: the virtual
// clock and the intrinsic operations (event queues, threads, locks,
// IPC). internal/sim implements it.
type Env interface {
	// Now returns the current virtual time in milliseconds.
	Now() int64
	// Intrinsic performs a runtime operation. If blocked is true the
	// context suspends; the runtime must later call Resume with the
	// result. A non-nil error crashes the task.
	Intrinsic(c *Context, in Intrinsic, args []Value) (result Value, blocked bool, err error)
}

type frame struct {
	m        *Method
	pc       int
	regs     []Value
	handlers []int // try/catch NPE handler pcs, innermost last
}

// Context is one resumable execution of bytecode: the call stack of a
// task (thread body or event handler).
type Context struct {
	Prog   *Program
	Heap   *Heap
	Env    Env
	Tracer trace.Tracer
	Task   trace.TaskID

	frames []frame
	state  Control
	traced bool
	// Pending blocking-intrinsic result plumbing.
	pendingRes    Reg
	pendingHasRes bool
	// Err holds the crash cause when state == Crashed.
	Err error
	// Result holds the value returned by the entry method once the
	// context finishes (null when it returned void).
	Result Value
	// CaughtNPEs records NullPointerExceptions that were swallowed by
	// try handlers — invisible as crashes but still harmful (the
	// ToDoList data-loss pattern of §6.2).
	CaughtNPEs []*NPE
	// Steps counts executed instructions.
	Steps uint64
}

// ErrStackOverflow guards against unbounded recursion in app scripts.
var ErrStackOverflow = errors.New("dvm: call stack overflow")

const maxFrames = 256

// NewContext prepares an execution of entry(args...).
func NewContext(prog *Program, heap *Heap, env Env, tracer trace.Tracer, task trace.TaskID, entry *Method, args []Value) (*Context, error) {
	if len(args) != entry.NumParams {
		return nil, fmt.Errorf("dvm: %s takes %d params, got %d", entry.Name, entry.NumParams, len(args))
	}
	c := &Context{Prog: prog, Heap: heap, Env: env, Tracer: tracer, Task: task}
	// The uninstrumented configuration (Fig. 8 baseline) compiles the
	// instrumentation out entirely: with a Discard tracer the
	// interpreter skips all entry construction, like the stock
	// fast-interpreter build of Android next to CAFA's instrumented
	// portable interpreter.
	if _, off := tracer.(trace.Discard); !off {
		c.traced = true
	}
	c.push(entry, args)
	return c, nil
}

func (c *Context) push(m *Method, args []Value) {
	regs := make([]Value, m.NumRegs)
	copy(regs, args)
	c.frames = append(c.frames, frame{m: m, regs: regs})
}

// State returns the current control state.
func (c *Context) State() Control { return c.state }

// Crashed reports whether the context died on an uncaught exception.
func (c *Context) Crashed() bool { return c.state == Crashed }

// Resume delivers the result of a blocking intrinsic and makes the
// context runnable again.
func (c *Context) Resume(v Value) {
	if c.state != Blocked {
		panic("dvm: Resume on non-blocked context")
	}
	if c.pendingHasRes {
		c.top().regs[c.pendingRes] = v
		c.pendingHasRes = false
	}
	c.state = Running
}

func (c *Context) top() *frame { return &c.frames[len(c.frames)-1] }

func (c *Context) crash(err error) Control {
	c.state = Crashed
	c.Err = err
	return Crashed
}

// emit writes a trace entry, filling the per-context fields.
func (c *Context) emit(e trace.Entry) {
	if !c.traced {
		return
	}
	e.Task = c.Task
	e.Time = c.Env.Now()
	c.Tracer.Emit(e)
}

// CurrentMethod returns the method executing on top of the stack (nil
// when finished).
func (c *Context) CurrentMethod() *Method {
	if len(c.frames) == 0 {
		return nil
	}
	return c.top().m
}

// objIn extracts an object reference from a register, crashing the
// context on kind confusion (an app-script bug, not a modeled race).
func (c *Context) objIn(f *frame, r Reg) (trace.ObjID, error) {
	v := f.regs[r]
	if v.Kind != KObj {
		return 0, fmt.Errorf("dvm: %s pc=%d: v%d holds %s, want obj", f.m.Name, f.pc, r, v.Kind)
	}
	return v.Obj, nil
}

func (c *Context) intIn(f *frame, r Reg) (int64, error) {
	v := f.regs[r]
	if v.Kind != KInt {
		return 0, fmt.Errorf("dvm: %s pc=%d: v%d holds %s, want int", f.m.Name, f.pc, r, v.Kind)
	}
	return v.Int, nil
}

// throwNPE implements exception flow: unwind to the innermost active
// try handler, emitting OpReturn for every frame exited via the
// exception (§5.3 logs method exits through exception throwing). With
// no handler the context crashes.
func (c *Context) throwNPE(what string) Control {
	f := c.top()
	npe := &NPE{Method: f.m.Name, PC: f.pc, What: what}
	for len(c.frames) > 0 {
		fr := c.top()
		if n := len(fr.handlers); n > 0 {
			fr.pc = fr.handlers[n-1]
			fr.handlers = fr.handlers[:n-1]
			c.CaughtNPEs = append(c.CaughtNPEs, npe)
			return Running
		}
		c.emit(trace.Entry{Op: trace.OpReturn, Method: fr.m.ID, PC: trace.PC(fr.pc)})
		c.frames = c.frames[:len(c.frames)-1]
	}
	return c.crash(npe)
}

// deref emits the dereference entry for obj and throws NPE when obj
// is null.
func (c *Context) deref(f *frame, obj trace.ObjID, what string) (Control, bool) {
	if obj == trace.NullObj {
		return c.throwNPE(what), false
	}
	c.emit(trace.Entry{Op: trace.OpDeref, Value: obj, Method: f.m.ID, PC: trace.PC(f.pc)})
	return Running, true
}

// Step executes one instruction. It returns the context state after
// the instruction.
func (c *Context) Step() Control {
	if c.state != Running {
		return c.state
	}
	if len(c.frames) == 0 {
		c.state = Finished
		return Finished
	}
	c.Steps++
	f := c.top()
	if f.pc >= len(f.m.Code) {
		// Falling off the end acts like return-void.
		return c.doReturn(f, Value{}, false)
	}
	in := &f.m.Code[f.pc]
	pc := f.pc
	next := pc + 1

	switch in.Code {
	case CNop:

	case CConstNull:
		f.regs[in.A] = Null()
	case CConstInt:
		f.regs[in.A] = Int64(in.Imm)
	case CConstMethod:
		f.regs[in.A] = MethodHandle(in.MethodIdx)
	case CNew:
		o := c.Heap.New(in.Class)
		f.regs[in.A] = Obj(o.ID)
	case CMove:
		f.regs[in.A] = f.regs[in.B]

	case CIget, CIgetInt:
		recv, err := c.objIn(f, in.B)
		if err != nil {
			return c.crash(err)
		}
		ctl, ok := c.deref(f, recv, "field read on null")
		if !ok {
			return ctl
		}
		obj := c.Heap.Object(recv)
		if obj == nil {
			return c.crash(fmt.Errorf("dvm: %s pc=%d: dangling object o%d", f.m.Name, pc, recv))
		}
		v := MakeVarEntry(recv, in.Field)
		if in.Code == CIget {
			val := c.Heap.GetField(obj, in.Field, KObj)
			if val.Kind != KObj {
				return c.crash(fmt.Errorf("dvm: %s pc=%d: field %d holds %s, want obj", f.m.Name, pc, in.Field, val.Kind))
			}
			c.emit(trace.Entry{Op: trace.OpPtrRead, Var: v, Value: val.Obj, Method: f.m.ID, PC: trace.PC(pc)})
			f.regs[in.A] = val
		} else {
			val := c.Heap.GetField(obj, in.Field, KInt)
			if val.Kind != KInt {
				return c.crash(fmt.Errorf("dvm: %s pc=%d: field %d holds %s, want int", f.m.Name, pc, in.Field, val.Kind))
			}
			c.emit(trace.Entry{Op: trace.OpRead, Var: v, Method: f.m.ID, PC: trace.PC(pc)})
			f.regs[in.A] = val
		}

	case CIput, CIputInt:
		recv, err := c.objIn(f, in.B)
		if err != nil {
			return c.crash(err)
		}
		ctl, ok := c.deref(f, recv, "field write on null")
		if !ok {
			return ctl
		}
		obj := c.Heap.Object(recv)
		if obj == nil {
			return c.crash(fmt.Errorf("dvm: %s pc=%d: dangling object o%d", f.m.Name, pc, recv))
		}
		v := MakeVarEntry(recv, in.Field)
		if in.Code == CIput {
			val := f.regs[in.A]
			if val.Kind != KObj {
				return c.crash(fmt.Errorf("dvm: %s pc=%d: iput of %s, want obj", f.m.Name, pc, val.Kind))
			}
			c.emit(trace.Entry{Op: trace.OpPtrWrite, Var: v, Value: val.Obj, Method: f.m.ID, PC: trace.PC(pc)})
			obj.Set(in.Field, val)
		} else {
			val := f.regs[in.A]
			if val.Kind != KInt {
				return c.crash(fmt.Errorf("dvm: %s pc=%d: iput-int of %s, want int", f.m.Name, pc, val.Kind))
			}
			c.emit(trace.Entry{Op: trace.OpWrite, Var: v, Method: f.m.ID, PC: trace.PC(pc)})
			obj.Set(in.Field, val)
		}

	case CSget:
		val := c.Heap.GetStatic(in.Field, KObj)
		if val.Kind != KObj {
			return c.crash(fmt.Errorf("dvm: %s pc=%d: static %d holds %s, want obj", f.m.Name, pc, in.Field, val.Kind))
		}
		c.emit(trace.Entry{Op: trace.OpPtrRead, Var: MakeVarEntry(trace.NullObj, in.Field), Value: val.Obj, Method: f.m.ID, PC: trace.PC(pc)})
		f.regs[in.A] = val
	case CSput:
		val := f.regs[in.A]
		if val.Kind != KObj {
			return c.crash(fmt.Errorf("dvm: %s pc=%d: sput of %s, want obj", f.m.Name, pc, val.Kind))
		}
		c.emit(trace.Entry{Op: trace.OpPtrWrite, Var: MakeVarEntry(trace.NullObj, in.Field), Value: val.Obj, Method: f.m.ID, PC: trace.PC(pc)})
		c.Heap.SetStatic(in.Field, val)
	case CSgetInt:
		val := c.Heap.GetStatic(in.Field, KInt)
		if val.Kind != KInt {
			return c.crash(fmt.Errorf("dvm: %s pc=%d: static %d holds %s, want int", f.m.Name, pc, in.Field, val.Kind))
		}
		c.emit(trace.Entry{Op: trace.OpRead, Var: MakeVarEntry(trace.NullObj, in.Field), Method: f.m.ID, PC: trace.PC(pc)})
		f.regs[in.A] = val
	case CSputInt:
		val := f.regs[in.A]
		if val.Kind != KInt {
			return c.crash(fmt.Errorf("dvm: %s pc=%d: sput-int of %s, want int", f.m.Name, pc, val.Kind))
		}
		c.emit(trace.Entry{Op: trace.OpWrite, Var: MakeVarEntry(trace.NullObj, in.Field), Method: f.m.ID, PC: trace.PC(pc)})
		c.Heap.SetStatic(in.Field, val)

	case CNewArray:
		n, err := c.intIn(f, in.B)
		if err != nil {
			return c.crash(err)
		}
		if n < 0 || n > 1<<20 {
			return c.crash(fmt.Errorf("dvm: %s pc=%d: bad array length %d", f.m.Name, pc, n))
		}
		o := c.Heap.NewArray(int(n))
		f.regs[in.A] = Obj(o.ID)

	case CAget, CAgetInt, CAput, CAputInt:
		arrID, err := c.objIn(f, in.B)
		if err != nil {
			return c.crash(err)
		}
		ctl, ok := c.deref(f, arrID, "array access on null")
		if !ok {
			return ctl
		}
		arr := c.Heap.Object(arrID)
		if arr == nil || !arr.IsArray {
			return c.crash(fmt.Errorf("dvm: %s pc=%d: o%d is not an array", f.m.Name, pc, arrID))
		}
		idx, err := c.intIn(f, in.C)
		if err != nil {
			return c.crash(err)
		}
		if idx < 0 || idx >= int64(arr.ArrayLen) {
			return c.crash(fmt.Errorf("dvm: %s pc=%d: index %d out of bounds (len %d)", f.m.Name, pc, idx, arr.ArrayLen))
		}
		v := MakeVarEntry(arrID, trace.FieldID(idx))
		switch in.Code {
		case CAget:
			val := c.Heap.GetField(arr, trace.FieldID(idx), KObj)
			if val.Kind != KObj {
				return c.crash(fmt.Errorf("dvm: %s pc=%d: slot %d holds %s, want obj", f.m.Name, pc, idx, val.Kind))
			}
			c.emit(trace.Entry{Op: trace.OpPtrRead, Var: v, Value: val.Obj, Method: f.m.ID, PC: trace.PC(pc)})
			f.regs[in.A] = val
		case CAgetInt:
			val := c.Heap.GetField(arr, trace.FieldID(idx), KInt)
			if val.Kind != KInt {
				return c.crash(fmt.Errorf("dvm: %s pc=%d: slot %d holds %s, want int", f.m.Name, pc, idx, val.Kind))
			}
			c.emit(trace.Entry{Op: trace.OpRead, Var: v, Method: f.m.ID, PC: trace.PC(pc)})
			f.regs[in.A] = val
		case CAput:
			val := f.regs[in.A]
			if val.Kind != KObj {
				return c.crash(fmt.Errorf("dvm: %s pc=%d: aput of %s, want obj", f.m.Name, pc, val.Kind))
			}
			c.emit(trace.Entry{Op: trace.OpPtrWrite, Var: v, Value: val.Obj, Method: f.m.ID, PC: trace.PC(pc)})
			arr.Set(trace.FieldID(idx), val)
		case CAputInt:
			val := f.regs[in.A]
			if val.Kind != KInt {
				return c.crash(fmt.Errorf("dvm: %s pc=%d: aput-int of %s, want int", f.m.Name, pc, val.Kind))
			}
			c.emit(trace.Entry{Op: trace.OpWrite, Var: v, Method: f.m.ID, PC: trace.PC(pc)})
			arr.Set(trace.FieldID(idx), val)
		}

	case CArrayLen:
		arrID, err := c.objIn(f, in.B)
		if err != nil {
			return c.crash(err)
		}
		ctl, ok := c.deref(f, arrID, "array-len on null")
		if !ok {
			return ctl
		}
		arr := c.Heap.Object(arrID)
		if arr == nil || !arr.IsArray {
			return c.crash(fmt.Errorf("dvm: %s pc=%d: o%d is not an array", f.m.Name, pc, arrID))
		}
		f.regs[in.A] = Int64(int64(arr.ArrayLen))

	case CIfEqz:
		objID, err := c.objIn(f, in.A)
		if err != nil {
			return c.crash(err)
		}
		if objID == trace.NullObj {
			next = in.Target // taken: not logged
		} else {
			c.emit(trace.Entry{Op: trace.OpBranch, Branch: trace.BranchIfEqz, Value: objID, PC: trace.PC(pc), TargetPC: trace.PC(in.Target), Method: f.m.ID})
		}
	case CIfNez:
		objID, err := c.objIn(f, in.A)
		if err != nil {
			return c.crash(err)
		}
		if objID != trace.NullObj {
			c.emit(trace.Entry{Op: trace.OpBranch, Branch: trace.BranchIfNez, Value: objID, PC: trace.PC(pc), TargetPC: trace.PC(in.Target), Method: f.m.ID})
			next = in.Target
		}
	case CIfEq:
		a, err := c.objIn(f, in.A)
		if err != nil {
			return c.crash(err)
		}
		b, err := c.objIn(f, in.B)
		if err != nil {
			return c.crash(err)
		}
		if a == b {
			if a != trace.NullObj {
				c.emit(trace.Entry{Op: trace.OpBranch, Branch: trace.BranchIfEq, Value: a, PC: trace.PC(pc), TargetPC: trace.PC(in.Target), Method: f.m.ID})
			}
			next = in.Target
		}

	case CIfIntEq, CIfIntNe, CIfIntLt, CIfIntLe, CIfIntGt, CIfIntGe:
		a, err := c.intIn(f, in.A)
		if err != nil {
			return c.crash(err)
		}
		b, err := c.intIn(f, in.B)
		if err != nil {
			return c.crash(err)
		}
		var taken bool
		switch in.Code {
		case CIfIntEq:
			taken = a == b
		case CIfIntNe:
			taken = a != b
		case CIfIntLt:
			taken = a < b
		case CIfIntLe:
			taken = a <= b
		case CIfIntGt:
			taken = a > b
		case CIfIntGe:
			taken = a >= b
		}
		if taken {
			next = in.Target
		}
	case CGoto:
		next = in.Target

	case CAdd, CSub, CMul:
		a, err := c.intIn(f, in.A)
		if err != nil {
			return c.crash(err)
		}
		b, err := c.intIn(f, in.B)
		if err != nil {
			return c.crash(err)
		}
		var r int64
		switch in.Code {
		case CAdd:
			r = a + b
		case CSub:
			r = a - b
		case CMul:
			r = a * b
		}
		f.regs[in.Res] = Int64(r)

	case CInvokeVirtual, CInvokeStatic, CInvokeValue:
		var callee *Method
		switch in.Code {
		case CInvokeValue:
			h := f.regs[in.A]
			if h.Kind != KMethod {
				return c.crash(fmt.Errorf("dvm: %s pc=%d: invoke-value on %s", f.m.Name, pc, h.Kind))
			}
			if h.Method < 0 || h.Method >= len(c.Prog.Methods) {
				return c.crash(fmt.Errorf("dvm: %s pc=%d: bad method handle %d", f.m.Name, pc, h.Method))
			}
			callee = c.Prog.Methods[h.Method]
		default:
			callee = c.Prog.Methods[in.MethodIdx]
		}
		args := make([]Value, len(in.Args))
		for i, r := range in.Args {
			args[i] = f.regs[r]
		}
		if in.Code == CInvokeVirtual {
			recv, err := c.objIn(f, in.Args[0])
			if err != nil {
				return c.crash(err)
			}
			ctl, ok := c.deref(f, recv, "invoke on null")
			if !ok {
				return ctl
			}
		}
		if len(args) != callee.NumParams {
			return c.crash(fmt.Errorf("dvm: %s pc=%d: %s takes %d params, got %d", f.m.Name, pc, callee.Name, callee.NumParams, len(args)))
		}
		if len(c.frames) >= maxFrames {
			return c.crash(ErrStackOverflow)
		}
		c.emit(trace.Entry{Op: trace.OpInvoke, Method: callee.ID, PC: trace.PC(pc)})
		f.pc = next // return address
		c.push(callee, args)
		return Running

	case CReturnVoid:
		return c.doReturn(f, Value{}, false)
	case CReturn:
		return c.doReturn(f, f.regs[in.A], true)

	case CTry:
		f.handlers = append(f.handlers, in.Target)
	case CEndTry:
		if len(f.handlers) == 0 {
			return c.crash(fmt.Errorf("dvm: %s pc=%d: end-try without try", f.m.Name, pc))
		}
		f.handlers = f.handlers[:len(f.handlers)-1]
	case CThrow:
		return c.throwNPE("explicit throw")

	case CIntrinsic:
		args := make([]Value, len(in.Args))
		for i, r := range in.Args {
			args[i] = f.regs[r]
		}
		f.pc = next // resume point
		res, blocked, err := c.Env.Intrinsic(c, in.Intr, args)
		if err != nil {
			return c.crash(err)
		}
		if blocked {
			c.pendingHasRes = in.HasRes
			c.pendingRes = in.Res
			c.state = Blocked
			return Blocked
		}
		if in.HasRes {
			// The frame stack may have been swapped by a re-entrant
			// intrinsic (fire); store into the frame we started with.
			f.regs[in.Res] = res
		}
		return c.state

	default:
		return c.crash(fmt.Errorf("dvm: %s pc=%d: bad opcode %d", f.m.Name, pc, in.Code))
	}

	f.pc = next
	return Running
}

// doReturn pops the current frame, emitting the §5.3 return entry,
// and delivers the result to the caller's result register.
func (c *Context) doReturn(f *frame, v Value, hasVal bool) Control {
	c.emit(trace.Entry{Op: trace.OpReturn, Method: f.m.ID, PC: trace.PC(f.pc)})
	c.frames = c.frames[:len(c.frames)-1]
	if len(c.frames) == 0 {
		if hasVal {
			c.Result = v
		} else {
			c.Result = Null()
		}
		c.state = Finished
		return Finished
	}
	caller := c.top()
	// caller.pc was advanced past the invoke before pushing; the
	// invoke instruction is at pc-1. Frames pushed externally (fire
	// stacking several listener callbacks) can sit above a frame that
	// has not executed anything yet, so only deliver a result when
	// pc-1 really is a call instruction.
	if caller.pc > 0 {
		call := &caller.m.Code[caller.pc-1]
		switch call.Code {
		case CInvokeVirtual, CInvokeStatic, CInvokeValue, CIntrinsic:
			if call.HasRes {
				if !hasVal {
					v = Null()
				}
				caller.regs[call.Res] = v
			}
		}
	}
	return Running
}

// PushCall pushes a nested call onto the context (used by the runtime
// to run listener callbacks inline within the current task, emitting
// the same invoke entry a bytecode call would).
func (c *Context) PushCall(m *Method, args []Value) error {
	if len(args) != m.NumParams {
		return fmt.Errorf("dvm: %s takes %d params, got %d", m.Name, m.NumParams, len(args))
	}
	if len(c.frames) >= maxFrames {
		return ErrStackOverflow
	}
	var pc trace.PC
	if len(c.frames) > 0 {
		pc = trace.PC(c.top().pc)
	}
	c.emit(trace.Entry{Op: trace.OpInvoke, Method: m.ID, PC: pc})
	c.push(m, args)
	return nil
}

// Run steps until the context blocks, finishes, or crashes, or until
// limit instructions have executed (0 = no limit). It returns the
// final state.
func (c *Context) Run(limit int) Control {
	for n := 0; ; n++ {
		if limit > 0 && n >= limit {
			return c.state
		}
		st := c.Step()
		if st != Running {
			return st
		}
	}
}

// MakeVarEntry builds the trace VarID for a field of an object (or a
// static when owner is NullObj).
func MakeVarEntry(owner trace.ObjID, field trace.FieldID) trace.VarID {
	return trace.MakeVar(owner, field)
}

package dvm

import (
	"fmt"

	"cafa/internal/trace"
)

// Reg is a register index inside a frame.
type Reg uint8

// Code enumerates the instruction opcodes.
type Code uint8

// Opcodes. Mnemonics follow Dalvik where an analogue exists.
const (
	CNop Code = iota

	// Constants and moves.
	CConstNull   // vA := null
	CConstInt    // vA := Imm
	CConstMethod // vA := method handle MethodIdx
	CNew         // vA := new Class (fresh object)
	CMove        // vA := vB

	// Object field access (traced: deref + pointer read/write).
	CIget // vA := vB.Field        (object-typed field)
	CIput // vB.Field := vA
	CSget // vA := static Field
	CSput // static Field := vA

	// Scalar field access (traced: deref + rd/wr).
	CIgetInt // vA := vB.Field (int-typed)
	CIputInt // vB.Field := vA
	CSgetInt // vA := static Field
	CSputInt // static Field := vA

	// Arrays (traced like instance fields; the slot index is the
	// field component of the location id).
	CNewArray // vA := new array of length vB
	CAget     // vA := vB[vC]   (object-typed slot)
	CAput     // vB[vC] := vA
	CAgetInt  // vA := vB[vC]   (int-typed slot)
	CAputInt  // vB[vC] := vA
	CArrayLen // vA := len(vB)

	// Object guard branches (traced per §5.3 If-Guard rules).
	CIfEqz // if vA == null goto Target       (logged when NOT taken)
	CIfNez // if vA != null goto Target       (logged when taken)
	CIfEq  // if vA == vB goto Target         (logged when taken; object compare)

	// Scalar branches and arithmetic (untraced).
	CIfIntEq // if vA == vB goto Target
	CIfIntNe
	CIfIntLt
	CIfIntLe
	CIfIntGt
	CIfIntGe
	CGoto
	CAdd // vRes := vA + vB
	CSub
	CMul

	// Calls (traced: invoke/return; virtual receiver deref).
	CInvokeVirtual // call Methods[MethodIdx] with Args (Args[0] is receiver)
	CInvokeStatic  // call Methods[MethodIdx] with Args
	CInvokeValue   // call method handle in vA with Args (receiverless)
	CReturnVoid
	CReturn // return vA

	// Exception scaffolding: a per-frame stack of NPE handlers.
	CTry    // push handler at Target
	CEndTry // pop innermost handler
	CThrow  // throw NPE explicitly

	// Runtime intrinsic (event queue, threads, locks, IPC, ...).
	CIntrinsic

	codeMax
)

var codeNames = [...]string{
	CNop: "nop", CConstNull: "const-null", CConstInt: "const-int",
	CConstMethod: "const-method", CNew: "new", CMove: "move",
	CIget: "iget", CIput: "iput", CSget: "sget", CSput: "sput",
	CIgetInt: "iget-int", CIputInt: "iput-int", CSgetInt: "sget-int", CSputInt: "sput-int",
	CNewArray: "new-array", CAget: "aget", CAput: "aput",
	CAgetInt: "aget-int", CAputInt: "aput-int", CArrayLen: "array-len",
	CIfEqz: "if-eqz", CIfNez: "if-nez", CIfEq: "if-eq",
	CIfIntEq: "if-int-eq", CIfIntNe: "if-int-ne", CIfIntLt: "if-int-lt",
	CIfIntLe: "if-int-le", CIfIntGt: "if-int-gt", CIfIntGe: "if-int-ge",
	CGoto: "goto", CAdd: "add-int", CSub: "sub-int", CMul: "mul-int",
	CInvokeVirtual: "invoke-virtual", CInvokeStatic: "invoke-static",
	CInvokeValue: "invoke-value", CReturnVoid: "return-void", CReturn: "return",
	CTry: "try", CEndTry: "end-try", CThrow: "throw-npe",
	CIntrinsic: "intrinsic",
}

func (c Code) String() string {
	if int(c) < len(codeNames) && codeNames[c] != "" {
		return codeNames[c]
	}
	return fmt.Sprintf("Code(%d)", uint8(c))
}

// Intrinsic identifies a runtime service callable from bytecode.
type Intrinsic uint8

// Intrinsics. Argument conventions are documented per intrinsic;
// handles (queues, threads, listeners, services, channels) are KInt
// values handed out by the runtime.
const (
	IntrNone      Intrinsic = iota
	IntrSend                // send(queue, methodHandle, delayMs, arg) — enqueue event
	IntrSendFront           // sendFront(queue, methodHandle, arg) — enqueue at front
	IntrFork                // fork(methodHandle, arg) -> threadHandle
	IntrJoin                // join(threadHandle); blocks
	IntrLock                // lock(obj)
	IntrUnlock              // unlock(obj)
	IntrWait                // wait(obj); blocks until notify
	IntrNotify              // notify(obj)
	IntrRegister            // register(listener, methodHandle)
	IntrFire                // fire(listener, arg) — perform registered listeners inline
	IntrRPC                 // rpc(service, methodHandle, arg) -> reply; blocks
	IntrMsgSend             // msgSend(channel, arg)
	IntrMsgRecv             // msgRecv(channel) -> arg; blocks
	IntrSleep               // sleep(ms); blocks until the virtual clock advances
	IntrSpin                // spin(n) — burn n units of simulated CPU work
	IntrSelf                // self() -> current task id as int

	intrMax
)

var intrNames = [...]string{
	IntrNone: "none", IntrSend: "send", IntrSendFront: "send-front",
	IntrFork: "fork", IntrJoin: "join", IntrLock: "lock", IntrUnlock: "unlock",
	IntrWait: "wait", IntrNotify: "notify", IntrRegister: "register",
	IntrFire: "fire", IntrRPC: "rpc", IntrMsgSend: "msg-send",
	IntrMsgRecv: "msg-recv", IntrSleep: "sleep", IntrSpin: "spin", IntrSelf: "self",
}

func (in Intrinsic) String() string {
	if int(in) < len(intrNames) && intrNames[in] != "" {
		return intrNames[in]
	}
	return fmt.Sprintf("Intrinsic(%d)", uint8(in))
}

// Instr is one decoded instruction.
type Instr struct {
	Code      Code
	A, B, C   Reg  // primary operand registers
	Res       Reg  // result register (when HasRes)
	HasRes    bool // instruction stores a result
	Field     trace.FieldID
	MethodIdx int // CConstMethod / CInvoke*
	Intr      Intrinsic
	Args      []Reg // invoke/intrinsic argument registers
	Target    int   // branch target pc / try handler pc
	Imm       int64
	Class     string // CNew
}

// Method is a compiled method.
type Method struct {
	Name      string
	ID        trace.MethodID
	NumParams int // parameters arrive in registers 0..NumParams-1
	NumRegs   int
	Code      []Instr
}

// Program is a compiled unit: methods plus the field intern table.
type Program struct {
	Methods  []*Method
	byName   map[string]int
	fields   map[string]trace.FieldID
	fieldRev map[trace.FieldID]string
	nextFld  trace.FieldID
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		byName:   make(map[string]int),
		fields:   make(map[string]trace.FieldID),
		fieldRev: make(map[trace.FieldID]string),
		nextFld:  1,
	}
}

// AddMethod appends a method and returns its index. The method's ID
// is assigned from its index (offset by 1 so 0 stays invalid).
func (p *Program) AddMethod(m *Method) (int, error) {
	if _, dup := p.byName[m.Name]; dup {
		return 0, fmt.Errorf("dvm: duplicate method %q", m.Name)
	}
	idx := len(p.Methods)
	m.ID = trace.MethodID(idx + 1)
	p.Methods = append(p.Methods, m)
	p.byName[m.Name] = idx
	return idx, nil
}

// MethodIndex returns the index of a method by name.
func (p *Program) MethodIndex(name string) (int, bool) {
	idx, ok := p.byName[name]
	return idx, ok
}

// MustMethod returns a method index, panicking if absent (for
// test/app construction code).
func (p *Program) MustMethod(name string) int {
	idx, ok := p.byName[name]
	if !ok {
		panic(fmt.Sprintf("dvm: unknown method %q", name))
	}
	return idx
}

// FieldID interns a field name.
func (p *Program) FieldID(name string) trace.FieldID {
	if id, ok := p.fields[name]; ok {
		return id
	}
	id := p.nextFld
	p.nextFld++
	p.fields[name] = id
	p.fieldRev[id] = name
	return id
}

// FieldName returns the interned name for a field id.
func (p *Program) FieldName(id trace.FieldID) string { return p.fieldRev[id] }

// Fields returns a copy of the field intern table.
func (p *Program) Fields() map[trace.FieldID]string {
	out := make(map[trace.FieldID]string, len(p.fieldRev))
	for k, v := range p.fieldRev {
		out[k] = v
	}
	return out
}

// DeclareNames registers the program's field and method names with a
// tracer so offline reports are readable.
func (p *Program) DeclareNames(t trace.Tracer) {
	for id, name := range p.fieldRev {
		t.InternField(id, name)
	}
	for _, m := range p.Methods {
		t.InternMethod(m.ID, m.Name)
	}
}

// Validate checks structural sanity of every method: branch targets in
// range, register indices within NumRegs, intrinsic/method references
// resolvable.
func (p *Program) Validate() error {
	for _, m := range p.Methods {
		if m.NumParams > m.NumRegs {
			return fmt.Errorf("dvm: %s: %d params but only %d regs", m.Name, m.NumParams, m.NumRegs)
		}
		for pc, in := range m.Code {
			bad := func(format string, args ...any) error {
				return fmt.Errorf("dvm: %s pc=%d (%s): %s", m.Name, pc, in.Code, fmt.Sprintf(format, args...))
			}
			checkReg := func(r Reg) error {
				if int(r) >= m.NumRegs {
					return bad("register v%d out of range (%d regs)", r, m.NumRegs)
				}
				return nil
			}
			if in.Code >= codeMax {
				return bad("invalid opcode")
			}
			if err := checkReg(in.A); err != nil {
				return err
			}
			if err := checkReg(in.B); err != nil {
				return err
			}
			if err := checkReg(in.C); err != nil {
				return err
			}
			if in.HasRes {
				if err := checkReg(in.Res); err != nil {
					return err
				}
			}
			for _, r := range in.Args {
				if err := checkReg(r); err != nil {
					return err
				}
			}
			switch in.Code {
			case CIfEqz, CIfNez, CIfEq, CIfIntEq, CIfIntNe, CIfIntLt, CIfIntLe,
				CIfIntGt, CIfIntGe, CGoto, CTry:
				if in.Target < 0 || in.Target > len(m.Code) {
					return bad("target %d out of range", in.Target)
				}
			case CConstMethod, CInvokeVirtual, CInvokeStatic:
				if in.MethodIdx < 0 || in.MethodIdx >= len(p.Methods) {
					return bad("method index %d out of range", in.MethodIdx)
				}
			case CIntrinsic:
				if in.Intr == IntrNone || in.Intr >= intrMax {
					return bad("invalid intrinsic %d", in.Intr)
				}
			}
			if in.Code == CInvokeVirtual && len(in.Args) == 0 {
				return bad("virtual invoke needs a receiver argument")
			}
		}
	}
	return nil
}

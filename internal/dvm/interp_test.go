package dvm

import (
	"errors"
	"strings"
	"testing"

	"cafa/internal/trace"
)

// fakeEnv records intrinsic calls and can be scripted to block.
type fakeEnv struct {
	now    int64
	calls  []Intrinsic
	block  map[Intrinsic]bool
	result Value
	err    error
}

func (e *fakeEnv) Now() int64 { return e.now }

func (e *fakeEnv) Intrinsic(c *Context, in Intrinsic, args []Value) (Value, bool, error) {
	e.calls = append(e.calls, in)
	if e.err != nil {
		return Value{}, false, e.err
	}
	if e.block[in] {
		return Value{}, true, nil
	}
	return e.result, false, nil
}

// buildMethod is a low-level helper for constructing test methods.
func buildMethod(name string, params, regs int, code ...Instr) *Method {
	return &Method{Name: name, NumParams: params, NumRegs: regs, Code: code}
}

func newTestContext(t *testing.T, p *Program, entry string, args ...Value) (*Context, *trace.Collector, *fakeEnv) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	col := trace.NewCollector()
	env := &fakeEnv{block: map[Intrinsic]bool{}}
	idx, ok := p.MethodIndex(entry)
	if !ok {
		t.Fatalf("no method %s", entry)
	}
	c, err := NewContext(p, NewHeap(), env, col, 1, p.Methods[idx], args)
	if err != nil {
		t.Fatal(err)
	}
	return c, col, env
}

func ops(col *trace.Collector) []trace.Op {
	var out []trace.Op
	for _, e := range col.T.Entries {
		out = append(out, e.Op)
	}
	return out
}

func TestArithmeticAndControlFlow(t *testing.T) {
	// sum 1..5 via a loop: v0=i, v1=sum, v2=limit, v3=one
	p := NewProgram()
	m := buildMethod("sum", 0, 4,
		Instr{Code: CConstInt, A: 0, Imm: 1},
		Instr{Code: CConstInt, A: 1, Imm: 0},
		Instr{Code: CConstInt, A: 2, Imm: 5},
		Instr{Code: CConstInt, A: 3, Imm: 1},
		// loop:
		Instr{Code: CIfIntGt, A: 0, B: 2, Target: 8},
		Instr{Code: CAdd, Res: 1, A: 1, B: 0, HasRes: true},
		Instr{Code: CAdd, Res: 0, A: 0, B: 3, HasRes: true},
		Instr{Code: CGoto, Target: 4},
		Instr{Code: CReturn, A: 1},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, _, _ := newTestContext(t, p, "sum")
	if st := c.Run(0); st != Finished {
		t.Fatalf("state = %v, err = %v", st, c.Err)
	}
	// Result of a top-level return is discarded, but the loop must
	// terminate. Run a variant returning through a caller instead.
	p2 := NewProgram()
	callee := buildMethod("five", 0, 1,
		Instr{Code: CConstInt, A: 0, Imm: 5},
		Instr{Code: CReturn, A: 0},
	)
	ci, _ := 0, 0
	ci2, err := p2.AddMethod(callee)
	if err != nil {
		t.Fatal(err)
	}
	caller := buildMethod("main", 0, 2,
		Instr{Code: CInvokeStatic, MethodIdx: ci2, Res: 1, HasRes: true},
		Instr{Code: CSputInt, A: 1, Field: p2.FieldID("out")},
		Instr{Code: CReturnVoid},
	)
	if _, err := p2.AddMethod(caller); err != nil {
		t.Fatal(err)
	}
	_ = ci
	c2, _, _ := newTestContext(t, p2, "main")
	if st := c2.Run(0); st != Finished {
		t.Fatalf("state = %v, err = %v", st, c2.Err)
	}
	got := c2.Heap.GetStatic(p2.FieldID("out"), KInt)
	if got.Int != 5 {
		t.Errorf("static out = %d, want 5", got.Int)
	}
}

func TestFieldAccessTracing(t *testing.T) {
	p := NewProgram()
	fld := p.FieldID("ptr")
	m := buildMethod("main", 0, 3,
		Instr{Code: CNew, A: 0, Class: "Holder"},
		Instr{Code: CNew, A: 1, Class: "Payload"},
		Instr{Code: CIput, A: 1, B: 0, Field: fld}, // holder.ptr = payload (allocation)
		Instr{Code: CIget, A: 2, B: 0, Field: fld}, // read holder.ptr
		Instr{Code: CConstNull, A: 1},
		Instr{Code: CIput, A: 1, B: 0, Field: fld}, // holder.ptr = null (free)
		Instr{Code: CReturnVoid},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, col, _ := newTestContext(t, p, "main")
	if st := c.Run(0); st != Finished {
		t.Fatalf("state = %v, err = %v", st, c.Err)
	}
	var writes, reads, derefs, frees, allocs int
	for i := range col.T.Entries {
		e := &col.T.Entries[i]
		switch e.Op {
		case trace.OpPtrWrite:
			writes++
			if e.IsFree() {
				frees++
			}
			if e.IsAlloc() {
				allocs++
			}
		case trace.OpPtrRead:
			reads++
		case trace.OpDeref:
			derefs++
		}
	}
	if writes != 2 || reads != 1 || frees != 1 || allocs != 1 {
		t.Errorf("writes=%d reads=%d frees=%d allocs=%d, want 2/1/1/1", writes, reads, frees, allocs)
	}
	if derefs != 3 { // two iputs + one iget each deref the holder
		t.Errorf("derefs=%d, want 3", derefs)
	}
}

func TestNPEOnNullFieldAccess(t *testing.T) {
	p := NewProgram()
	m := buildMethod("main", 0, 2,
		Instr{Code: CConstNull, A: 0},
		Instr{Code: CIget, A: 1, B: 0, Field: p.FieldID("x")},
		Instr{Code: CReturnVoid},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, _, _ := newTestContext(t, p, "main")
	if st := c.Run(0); st != Crashed {
		t.Fatalf("state = %v, want crashed", st)
	}
	var npe *NPE
	if !errors.As(c.Err, &npe) {
		t.Fatalf("err = %v, want NPE", c.Err)
	}
}

func TestNPECaughtByTry(t *testing.T) {
	p := NewProgram()
	fld := p.FieldID("x")
	out := p.FieldID("caught")
	m := buildMethod("main", 0, 2,
		Instr{Code: CTry, Target: 5},
		Instr{Code: CConstNull, A: 0},
		Instr{Code: CIget, A: 1, B: 0, Field: fld}, // NPE here
		Instr{Code: CEndTry},
		Instr{Code: CReturnVoid},
		// handler:
		Instr{Code: CConstInt, A: 1, Imm: 1},
		Instr{Code: CSputInt, A: 1, Field: out},
		Instr{Code: CReturnVoid},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, _, _ := newTestContext(t, p, "main")
	if st := c.Run(0); st != Finished {
		t.Fatalf("state = %v, err = %v", st, c.Err)
	}
	if got := c.Heap.GetStatic(out, KInt); got.Int != 1 {
		t.Error("handler did not run")
	}
}

func TestNPEUnwindsFramesAndLogsReturns(t *testing.T) {
	p := NewProgram()
	fld := p.FieldID("x")
	inner := buildMethod("inner", 0, 2,
		Instr{Code: CConstNull, A: 0},
		Instr{Code: CIget, A: 1, B: 0, Field: fld},
		Instr{Code: CReturnVoid},
	)
	ii, err := p.AddMethod(inner)
	if err != nil {
		t.Fatal(err)
	}
	mid := buildMethod("mid", 0, 1,
		Instr{Code: CInvokeStatic, MethodIdx: ii},
		Instr{Code: CReturnVoid},
	)
	mi, err := p.AddMethod(mid)
	if err != nil {
		t.Fatal(err)
	}
	outer := buildMethod("outer", 0, 2,
		Instr{Code: CTry, Target: 3},
		Instr{Code: CInvokeStatic, MethodIdx: mi},
		Instr{Code: CEndTry},
		Instr{Code: CReturnVoid},
	)
	if _, err := p.AddMethod(outer); err != nil {
		t.Fatal(err)
	}
	c, col, _ := newTestContext(t, p, "outer")
	if st := c.Run(0); st != Finished {
		t.Fatalf("state = %v, err = %v", st, c.Err)
	}
	// The two unwound frames (inner, mid) must each have logged an
	// exceptional return.
	var returns int
	for _, op := range ops(col) {
		if op == trace.OpReturn {
			returns++
		}
	}
	if returns < 3 { // inner + mid exceptional, outer normal
		t.Errorf("returns logged = %d, want >= 3", returns)
	}
}

func TestGuardBranchLogging(t *testing.T) {
	p := NewProgram()
	fld := p.FieldID("h")
	// if-eqz on non-null: not taken → logged.
	m1 := buildMethod("nonnullEqz", 0, 2,
		Instr{Code: CNew, A: 0, Class: "X"},
		Instr{Code: CIfEqz, A: 0, Target: 3},
		Instr{Code: CNop},
		Instr{Code: CReturnVoid},
	)
	// if-eqz on null: taken → not logged.
	m2 := buildMethod("nullEqz", 0, 2,
		Instr{Code: CConstNull, A: 0},
		Instr{Code: CIfEqz, A: 0, Target: 3},
		Instr{Code: CNop},
		Instr{Code: CReturnVoid},
	)
	// if-nez on non-null: taken → logged.
	m3 := buildMethod("nonnullNez", 0, 2,
		Instr{Code: CNew, A: 0, Class: "X"},
		Instr{Code: CIfNez, A: 0, Target: 3},
		Instr{Code: CNop},
		Instr{Code: CReturnVoid},
	)
	// if-eq taken on equal non-null objects → logged.
	m4 := buildMethod("eqTaken", 0, 3,
		Instr{Code: CNew, A: 0, Class: "X"},
		Instr{Code: CMove, A: 1, B: 0},
		Instr{Code: CIfEq, A: 0, B: 1, Target: 4},
		Instr{Code: CNop},
		Instr{Code: CReturnVoid},
	)
	for _, m := range []*Method{m1, m2, m3, m4} {
		if _, err := p.AddMethod(m); err != nil {
			t.Fatal(err)
		}
	}
	_ = fld
	run := func(name string) []trace.Entry {
		c, col, _ := newTestContext(t, p, name)
		if st := c.Run(0); st != Finished {
			t.Fatalf("%s: state=%v err=%v", name, st, c.Err)
		}
		var out []trace.Entry
		for _, e := range col.T.Entries {
			if e.Op == trace.OpBranch {
				out = append(out, e)
			}
		}
		return out
	}
	if br := run("nonnullEqz"); len(br) != 1 || br[0].Branch != trace.BranchIfEqz {
		t.Errorf("nonnullEqz branches = %v", br)
	}
	if br := run("nullEqz"); len(br) != 0 {
		t.Errorf("nullEqz logged %v, want none", br)
	}
	if br := run("nonnullNez"); len(br) != 1 || br[0].Branch != trace.BranchIfNez {
		t.Errorf("nonnullNez branches = %v", br)
	}
	if br := run("eqTaken"); len(br) != 1 || br[0].Branch != trace.BranchIfEq {
		t.Errorf("eqTaken branches = %v", br)
	}
}

func TestIntrinsicBlockingAndResume(t *testing.T) {
	p := NewProgram()
	m := buildMethod("main", 0, 2,
		Instr{Code: CConstInt, A: 0, Imm: 7},
		Instr{Code: CIntrinsic, Intr: IntrMsgRecv, Args: []Reg{0}, Res: 1, HasRes: true},
		Instr{Code: CSputInt, A: 1, Field: p.FieldID("got")},
		Instr{Code: CReturnVoid},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, _, env := newTestContext(t, p, "main")
	env.block[IntrMsgRecv] = true
	if st := c.Run(0); st != Blocked {
		t.Fatalf("state = %v, want blocked", st)
	}
	c.Resume(Int64(42))
	if st := c.Run(0); st != Finished {
		t.Fatalf("state = %v, err = %v", st, c.Err)
	}
	if got := c.Heap.GetStatic(p.FieldID("got"), KInt); got.Int != 42 {
		t.Errorf("resumed value = %d, want 42", got.Int)
	}
	if len(env.calls) != 1 || env.calls[0] != IntrMsgRecv {
		t.Errorf("intrinsic calls = %v", env.calls)
	}
}

func TestIntrinsicError(t *testing.T) {
	p := NewProgram()
	m := buildMethod("main", 0, 1,
		Instr{Code: CIntrinsic, Intr: IntrJoin, Args: []Reg{0}},
		Instr{Code: CReturnVoid},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, _, env := newTestContext(t, p, "main")
	env.err = errors.New("bad handle")
	if st := c.Run(0); st != Crashed {
		t.Fatalf("state = %v, want crashed", st)
	}
}

func TestKindConfusionCrashes(t *testing.T) {
	p := NewProgram()
	m := buildMethod("main", 0, 2,
		Instr{Code: CConstInt, A: 0, Imm: 3},
		Instr{Code: CIget, A: 1, B: 0, Field: p.FieldID("x")}, // int where obj expected
		Instr{Code: CReturnVoid},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, _, _ := newTestContext(t, p, "main")
	if st := c.Run(0); st != Crashed {
		t.Fatalf("state = %v, want crashed", st)
	}
	if !strings.Contains(c.Err.Error(), "want obj") {
		t.Errorf("err = %v", c.Err)
	}
}

func TestStackOverflow(t *testing.T) {
	p := NewProgram()
	m := buildMethod("rec", 0, 1)
	idx, err := p.AddMethod(m)
	if err != nil {
		t.Fatal(err)
	}
	m.Code = []Instr{
		{Code: CInvokeStatic, MethodIdx: idx},
		{Code: CReturnVoid},
	}
	c, _, _ := newTestContext(t, p, "rec")
	if st := c.Run(0); st != Crashed {
		t.Fatalf("state = %v, want crashed", st)
	}
	if !errors.Is(c.Err, ErrStackOverflow) {
		t.Errorf("err = %v, want stack overflow", c.Err)
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		m    *Method
		want string
	}{
		{"bad target", buildMethod("m", 0, 1, Instr{Code: CGoto, Target: 99}), "out of range"},
		{"bad reg", buildMethod("m", 0, 1, Instr{Code: CMove, A: 0, B: 5}), "out of range"},
		{"bad method idx", buildMethod("m", 0, 1, Instr{Code: CInvokeStatic, MethodIdx: 7}), "out of range"},
		{"virtual no recv", buildMethod("m", 0, 1, Instr{Code: CInvokeVirtual, MethodIdx: 0}), "receiver"},
		{"bad intrinsic", buildMethod("m", 0, 1, Instr{Code: CIntrinsic, Intr: IntrNone}), "intrinsic"},
		{"params exceed regs", buildMethod("m", 3, 1), "params"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewProgram()
			if _, err := p.AddMethod(tc.m); err != nil {
				t.Fatal(err)
			}
			err := p.Validate()
			if err == nil {
				t.Fatal("validation passed unexpectedly")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q missing %q", err, tc.want)
			}
		})
	}
}

func TestRunLimit(t *testing.T) {
	p := NewProgram()
	m := buildMethod("spin", 0, 1,
		Instr{Code: CGoto, Target: 0},
	)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	c, _, _ := newTestContext(t, p, "spin")
	if st := c.Run(100); st != Running {
		t.Fatalf("state = %v, want still running", st)
	}
	if c.Steps != 100 {
		t.Errorf("steps = %d, want 100", c.Steps)
	}
}

func TestHeapBasics(t *testing.T) {
	h := NewHeap()
	o := h.New("X")
	if o.ID == trace.NullObj {
		t.Fatal("object got null id")
	}
	if h.Object(o.ID) != o {
		t.Error("object lookup failed")
	}
	if h.Object(trace.NullObj) != nil {
		t.Error("null should resolve to nil")
	}
	if h.Count() != 1 {
		t.Errorf("count = %d", h.Count())
	}
	f := trace.FieldID(3)
	if v := h.GetField(o, f, KObj); !v.IsNull() {
		t.Error("unset object field should read null")
	}
	if v := h.GetField(o, f, KInt); v.Kind != KInt || v.Int != 0 {
		t.Error("unset int field should read 0")
	}
	o.Set(f, Int64(9))
	if v, ok := o.Get(f); !ok || v.Int != 9 {
		t.Error("field write lost")
	}
	if v := h.GetStatic(f, KObj); !v.IsNull() {
		t.Error("unset object static should read null")
	}
	h.SetStatic(f, Obj(o.ID))
	if v := h.GetStatic(f, KObj); v.Obj != o.ID {
		t.Error("static write lost")
	}
	two := h.New("Y")
	if two.ID == o.ID {
		t.Error("object ids must be unique")
	}
}

func TestValueHelpers(t *testing.T) {
	if !Null().IsNull() || Obj(3).IsNull() || Int64(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
	if !Int64(4).Equal(Int64(4)) || Int64(4).Equal(Int64(5)) {
		t.Error("int equality")
	}
	if !Obj(2).Equal(Obj(2)) || Obj(2).Equal(Obj(3)) || Obj(2).Equal(Int64(2)) {
		t.Error("obj equality")
	}
	if !MethodHandle(1).Equal(MethodHandle(1)) || MethodHandle(1).Equal(MethodHandle(2)) {
		t.Error("method equality")
	}
	for _, v := range []Value{Null(), Obj(7), Int64(-3), MethodHandle(2)} {
		if v.String() == "" {
			t.Error("empty String()")
		}
	}
	if KInt.String() != "int" || KObj.String() != "obj" || KMethod.String() != "method" {
		t.Error("kind strings")
	}
}

func TestDisasmCoversAllOpcodes(t *testing.T) {
	p := NewProgram()
	fld := p.FieldID("f")
	callee := buildMethod("callee", 1, 2, Instr{Code: CReturnVoid})
	ci, err := p.AddMethod(callee)
	if err != nil {
		t.Fatal(err)
	}
	instrs := []Instr{
		{Code: CNop},
		{Code: CConstNull, A: 0},
		{Code: CConstInt, A: 0, Imm: 3},
		{Code: CConstMethod, A: 0, MethodIdx: ci},
		{Code: CNew, A: 0, Class: "X"},
		{Code: CMove, A: 0, B: 1},
		{Code: CIget, A: 0, B: 1, Field: fld},
		{Code: CIput, A: 0, B: 1, Field: fld},
		{Code: CSget, A: 0, Field: fld},
		{Code: CSput, A: 0, Field: fld},
		{Code: CIgetInt, A: 0, B: 1, Field: fld},
		{Code: CIputInt, A: 0, B: 1, Field: fld},
		{Code: CSgetInt, A: 0, Field: fld},
		{Code: CSputInt, A: 0, Field: fld},
		{Code: CIfEqz, A: 0, Target: 0},
		{Code: CIfNez, A: 0, Target: 0},
		{Code: CIfEq, A: 0, B: 1, Target: 0},
		{Code: CIfIntLt, A: 0, B: 1, Target: 0},
		{Code: CGoto, Target: 0},
		{Code: CAdd, Res: 0, A: 0, B: 1, HasRes: true},
		{Code: CInvokeStatic, MethodIdx: ci, Args: []Reg{0}, Res: 1, HasRes: true},
		{Code: CInvokeVirtual, MethodIdx: ci, Args: []Reg{0}},
		{Code: CInvokeValue, A: 0, Args: []Reg{1}},
		{Code: CReturnVoid},
		{Code: CReturn, A: 0},
		{Code: CTry, Target: 0},
		{Code: CEndTry},
		{Code: CThrow},
		{Code: CIntrinsic, Intr: IntrSend, Args: []Reg{0, 1}},
	}
	m := buildMethod("all", 0, 2, instrs...)
	if _, err := p.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	out := p.DisasmMethod(m)
	for _, want := range []string{"const-null", "iget", "sput-int", "invoke-static", "-> v1", "send", "try"} {
		if !strings.Contains(out, want) {
			t.Errorf("disasm missing %q:\n%s", want, out)
		}
	}
}

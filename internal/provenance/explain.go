package provenance

import (
	"strings"

	"cafa/internal/hb"
)

// Direction is a two-operation ordering verdict under a causality
// model.
type Direction uint8

// Ordering verdicts.
const (
	// DirUnordered: the model orders the pair in neither direction.
	DirUnordered Direction = iota
	// DirUseBeforeFree: the model derives use ≺ free.
	DirUseBeforeFree
	// DirFreeBeforeUse: the model derives free ≺ use.
	DirFreeBeforeUse
)

func (d Direction) String() string {
	switch d {
	case DirUseBeforeFree:
		return "use≺free"
	case DirFreeBeforeUse:
		return "free≺use"
	default:
		return "unordered"
	}
}

// ConvVerdict is the conventional-model ordering verdict for a
// reported race: why the thread-based baseline would hide the pair
// (it orders it in one direction) or also report it (unordered).
type ConvVerdict struct {
	Direction Direction
	// Path is the ordering derivation in Direction (trace indexes, as
	// returned by hb.Explain); nil when unordered.
	Path []int
}

// ExplainConv resolves the two-direction ordering verdict of a
// use/free pair under a model (typically the conventional baseline):
// it tries use ≺ free first, then free ≺ use, and returns the first
// derivation found. A nil graph yields DirUnordered.
func ExplainConv(conv *hb.Graph, useIdx, freeIdx int) ConvVerdict {
	if conv == nil {
		return ConvVerdict{Direction: DirUnordered}
	}
	if path := conv.Explain(useIdx, freeIdx); path != nil {
		return ConvVerdict{Direction: DirUseBeforeFree, Path: path}
	}
	if path := conv.Explain(freeIdx, useIdx); path != nil {
		return ConvVerdict{Direction: DirFreeBeforeUse, Path: path}
	}
	return ConvVerdict{Direction: DirUnordered}
}

// Format renders the verdict as cafa-analyze's -explain block: a
// headline naming the direction, then the indented derivation. Every
// line is prefixed with prefix.
func (v ConvVerdict) Format(conv *hb.Graph, prefix string) string {
	switch v.Direction {
	case DirUseBeforeFree:
		return prefix + "conventional model would order use ≺ free via:\n" +
			indent(conv.FormatPath(v.Path), prefix)
	case DirFreeBeforeUse:
		return prefix + "conventional model would order free ≺ use via:\n" +
			indent(conv.FormatPath(v.Path), prefix)
	default:
		return prefix + "unordered in both models"
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}

package provenance

import (
	"net/http"
	"sync"

	"cafa/internal/detect"
)

// LiveTriage is an http.Handler serving the HTML triage report for
// the evidence collected so far. Analysis workers Add inputs as they
// finish; requests render a snapshot, so the page is usable while a
// long multi-trace run is still in flight.
type LiveTriage struct {
	mu     sync.Mutex
	bundle Bundle
}

// NewLiveTriage returns an empty live triage view.
func NewLiveTriage() *LiveTriage {
	return &LiveTriage{bundle: Bundle{Version: BundleVersion}}
}

// Add appends one finished input's evidence and folds its stats into
// the aggregate. Safe for concurrent use.
func (l *LiveTriage) Add(in InputEvidence, stats detect.Stats) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bundle.Inputs = append(l.bundle.Inputs, in)
	l.bundle.Stats.Add(stats)
}

// AddGaps attaches static coverage gaps to the input named file (or
// appends a gaps-only input when no evidence was collected for it),
// ranked with SortGaps. Safe for concurrent use.
func (l *LiveTriage) AddGaps(file string, gaps []GapRecord) {
	gaps = append([]GapRecord(nil), gaps...)
	SortGaps(gaps)
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.bundle.Inputs {
		if l.bundle.Inputs[i].File == file {
			l.bundle.Inputs[i].Gaps = gaps
			return
		}
	}
	l.bundle.Inputs = append(l.bundle.Inputs, InputEvidence{
		File:   file,
		Races:  []RaceEvidence{},
		Pruned: []PruneRecord{},
		Gaps:   gaps,
	})
}

// Snapshot returns a copy of the bundle collected so far.
func (l *LiveTriage) Snapshot() Bundle {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Bundle{
		Version: l.bundle.Version,
		Inputs:  append([]InputEvidence(nil), l.bundle.Inputs...),
		Stats:   l.bundle.Stats,
	}
}

// ServeHTTP renders the current snapshot as the HTML triage report.
func (l *LiveTriage) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	snap := l.Snapshot()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = WriteHTML(w, &snap)
}

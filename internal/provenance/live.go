package provenance

import (
	"net/http"
	"sync"

	"cafa/internal/detect"
)

// LiveTriage is an http.Handler serving the HTML triage report for
// the evidence collected so far. Analysis workers Add inputs as they
// finish; requests render a snapshot, so the page is usable while a
// long multi-trace run is still in flight.
type LiveTriage struct {
	mu     sync.Mutex
	bundle Bundle
}

// NewLiveTriage returns an empty live triage view.
func NewLiveTriage() *LiveTriage {
	return &LiveTriage{bundle: Bundle{Version: BundleVersion}}
}

// Add appends one finished input's evidence and folds its stats into
// the aggregate. Safe for concurrent use.
func (l *LiveTriage) Add(in InputEvidence, stats detect.Stats) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bundle.Inputs = append(l.bundle.Inputs, in)
	l.bundle.Stats.Add(stats)
}

// ServeHTTP renders the current snapshot as the HTML triage report.
func (l *LiveTriage) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	snap := Bundle{
		Version: l.bundle.Version,
		Inputs:  append([]InputEvidence(nil), l.bundle.Inputs...),
		Stats:   l.bundle.Stats,
	}
	l.mu.Unlock()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = WriteHTML(w, &snap)
}

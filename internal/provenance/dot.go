package provenance

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the bundle's races as Graphviz causality
// subgraphs: one cluster per race, containing the nearest common
// ancestor, the derivation chains to use and free, and the racy
// operations themselves. Node identity is per-cluster (the same trace
// entry reached by two races is drawn twice), which keeps each
// cluster a self-contained picture.
func WriteDOT(w io.Writer, b *Bundle) error {
	var sb strings.Builder
	sb.WriteString("digraph provenance {\n")
	sb.WriteString("  rankdir=TB;\n")
	sb.WriteString("  node [shape=box, fontsize=10, fontname=\"monospace\"];\n")
	cluster := 0
	for i := range b.Inputs {
		in := &b.Inputs[i]
		for j := range in.Races {
			r := &in.Races[j]
			fmt.Fprintf(&sb, "  subgraph cluster_%d {\n", cluster)
			fmt.Fprintf(&sb, "    label=%q;\n", fmt.Sprintf("%s [%s] %s", in.File, r.Class, r.Site))
			node := func(tag string, ref *EntryRef, attrs string) string {
				id := fmt.Sprintf("c%d_%s", cluster, tag)
				fmt.Fprintf(&sb, "    %s [label=%q%s];\n", id,
					fmt.Sprintf("#%d %s\\n[%s]", ref.Idx, ref.Entry, ref.Task), attrs)
				return id
			}
			useID := node("use", &EntryRef{Idx: r.UseIdx,
				Entry: fmt.Sprintf("use %s@%d", r.UseMethod, r.UsePC), Task: r.UseTask},
				", color=red")
			freeID := node("free", &EntryRef{Idx: r.FreeIdx,
				Entry: fmt.Sprintf("free %s@%d", r.FreeMethod, r.FreePC), Task: r.FreeTask},
				", color=red")
			fmt.Fprintf(&sb, "    %s -> %s [style=dashed, dir=none, color=red, label=%q];\n",
				useID, freeID, "race: "+r.Field)
			if r.Ancestor != nil {
				ancID := node("anc", r.Ancestor, ", style=filled, fillcolor=lightgrey")
				chain := func(tag string, path []EntryRef, to string) {
					prev := ancID
					for k := range path {
						// Derivation paths include the endpoints; skip them so
						// the chain connects ancestor -> ... -> racy op.
						if path[k].Idx == r.Ancestor.Idx {
							continue
						}
						if (to == useID && path[k].Idx == r.UseIdx) ||
							(to == freeID && path[k].Idx == r.FreeIdx) {
							continue
						}
						id := node(fmt.Sprintf("%s%d", tag, k), &path[k], "")
						fmt.Fprintf(&sb, "    %s -> %s;\n", prev, id)
						prev = id
					}
					fmt.Fprintf(&sb, "    %s -> %s;\n", prev, to)
				}
				chain("u", r.AncestorToUse, useID)
				chain("f", r.AncestorToFree, freeID)
			}
			sb.WriteString("  }\n")
			cluster++
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

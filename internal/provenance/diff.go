package provenance

import (
	"fmt"
	"sort"
	"strings"
)

// DiffResult classifies the race sites of a current bundle against a
// baseline bundle: New sites appear only in current, Fixed only in
// the baseline, Persisting in both. Sites are the stable strings of
// SiteString, compared set-wise across all inputs (a site that moved
// between input files is Persisting, not New+Fixed).
type DiffResult struct {
	Baseline   string
	New        []string
	Fixed      []string
	Persisting []string
}

// HasNew reports whether the diff found races absent from the
// baseline — the report-regression gate.
func (d *DiffResult) HasNew() bool { return len(d.New) > 0 }

func bundleSites(b *Bundle) map[string]bool {
	sites := make(map[string]bool)
	for i := range b.Inputs {
		for j := range b.Inputs[i].Races {
			sites[b.Inputs[i].Races[j].Site] = true
		}
	}
	return sites
}

// Diff compares current against baseline by race site.
func Diff(baseline, current *Bundle, baselineName string) *DiffResult {
	base, cur := bundleSites(baseline), bundleSites(current)
	d := &DiffResult{Baseline: baselineName}
	for s := range cur {
		if base[s] {
			d.Persisting = append(d.Persisting, s)
		} else {
			d.New = append(d.New, s)
		}
	}
	for s := range base {
		if !cur[s] {
			d.Fixed = append(d.Fixed, s)
		}
	}
	sort.Strings(d.New)
	sort.Strings(d.Fixed)
	sort.Strings(d.Persisting)
	return d
}

// Format renders the diff: a summary line, then one line per new and
// fixed site (persisting sites are summarized only — they are the
// uninteresting bulk).
func (d *DiffResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "evidence diff vs %s: new=%d fixed=%d persisting=%d\n",
		d.Baseline, len(d.New), len(d.Fixed), len(d.Persisting))
	for _, s := range d.New {
		fmt.Fprintf(&b, "  new: %s\n", s)
	}
	for _, s := range d.Fixed {
		fmt.Fprintf(&b, "  fixed: %s\n", s)
	}
	return b.String()
}

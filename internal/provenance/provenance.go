// Package provenance turns detector decisions into auditable evidence
// — the paper's triage discipline (§7, Fig. 7) as data. For every
// reported race it records an Evidence record: the causality verdict
// (nearest common causal ancestor and the happens-before derivations
// from it to both racy operations), the conventional-model ordering
// verdict, the lock sets at use and free, the inputs to the guard and
// allocation heuristics, and dynamic-instance dedup info. For every
// *filtered* candidate it records a Pruned record carrying the
// stage-specific witness the detector decided on: the HB path that
// ordered the pair, the common lock, the matched guard window, or the
// intra-event allocation entry.
//
// The Collector implements detect.Collector and is strictly passive:
// detection results are identical with or without one attached, and a
// nil collector keeps the detector's candidate loop counter-only (the
// on/off differential and overhead bounds are asserted by tests at
// the repository root).
//
// Exporters render a collected Bundle as a JSON evidence bundle, a
// per-race DOT causality subgraph, or an HTML triage report; Diff
// compares two bundles by race site, the report-regression gate
// behind cafa-analyze -diff.
package provenance

import (
	"sort"

	"cafa/internal/detect"
	"cafa/internal/hb"
	"cafa/internal/lockset"
	"cafa/internal/trace"
)

// DefaultMaxPruned bounds retained Pruned records per trace: the
// prune stream is Candidates-sized in the worst case, while evidence
// is per-race. Per-stage tallies keep counting past the cap, and the
// first witness of each stage is always retained.
const DefaultMaxPruned = 4096

// Options configures a Collector.
type Options struct {
	// MaxPruned caps retained Pruned records (0 = DefaultMaxPruned,
	// negative = unlimited).
	MaxPruned int
}

// Evidence is the per-race provenance record.
type Evidence struct {
	// Race is the reported race (first dynamic instance of its site).
	Race detect.Race
	// Site is the race's dedup key.
	Site detect.SiteKey
	// Ancestor is the trace index of the nearest common causal
	// ancestor of use and free in the event-driven model (-1 when the
	// operations share no causal history). ToUse and ToFree are the
	// happens-before derivations from it to the racy operations — the
	// race's causality subgraph.
	Ancestor      int
	ToUse, ToFree []int
	// Conv is the conventional-model ordering verdict (the reason the
	// baseline detector would hide or also report the race).
	Conv ConvVerdict
	// UseLocks and FreeLocks are the lock sets held at the racy
	// operations (both empty for a reported race unless the lockset
	// filter was disabled).
	UseLocks, FreeLocks []trace.LockID
	// SameLooper records whether both operations ran in events of one
	// looper thread — the gate for the commutativity heuristics.
	SameLooper bool
	// Instances counts dynamic occurrences of the site; First/Last
	// give the trace indexes of the earliest and latest instance pair.
	Instances                 int
	FirstUseIdx, FirstFreeIdx int
	LastUseIdx, LastFreeIdx   int
}

// Pruned is the per-filtered-candidate provenance record.
type Pruned struct {
	Use  detect.Use
	Free detect.Free
	// W is the witness the detector resolved at prune time.
	W detect.PruneWitness
	// Path is the happens-before derivation for ordered prunes, in
	// the witness direction (use ≺ free or free ≺ use).
	Path []int
}

// Site returns the pruned pair's code-site key.
func (p *Pruned) Site() detect.SiteKey {
	return detect.Race{Use: p.Use, Free: p.Free}.Key()
}

// Collector accumulates evidence for one trace. It implements
// detect.Collector; wire it via detect.Input.Collector (the analysis
// pipeline does this when Options.Evidence is set). Not safe for
// concurrent use — one collector per Detect call.
type Collector struct {
	tr    *trace.Trace
	graph *hb.Graph
	conv  *hb.Graph
	locks *lockset.Sets
	opts  Options

	evidence map[detect.SiteKey]*Evidence
	order    []detect.SiteKey
	pruned   []Pruned
	stageHas [detect.NumPruneStages]bool
	stages   [detect.NumPruneStages]int
	dropped  int
}

// NewCollector returns a collector for one trace. graph is required;
// conv and locks may be nil (their evidence fields stay empty).
func NewCollector(tr *trace.Trace, graph, conv *hb.Graph, locks *lockset.Sets, opts Options) *Collector {
	if opts.MaxPruned == 0 {
		opts.MaxPruned = DefaultMaxPruned
	}
	return &Collector{
		tr: tr, graph: graph, conv: conv, locks: locks, opts: opts,
		evidence: make(map[detect.SiteKey]*Evidence),
	}
}

// Pruned implements detect.Collector.
func (c *Collector) Pruned(u detect.Use, f detect.Free, w detect.PruneWitness) {
	c.stages[w.Stage]++
	if w.Stage == detect.PruneDedup {
		// A duplicate means the site was already reported: fold the
		// instance into its Evidence record.
		if ev := c.evidence[detect.Race{Use: u, Free: f}.Key()]; ev != nil {
			ev.Instances++
			ev.LastUseIdx, ev.LastFreeIdx = u.ReadIdx, f.Idx
		}
	}
	if c.opts.MaxPruned >= 0 && len(c.pruned) >= c.opts.MaxPruned && c.stageHas[w.Stage] {
		c.dropped++
		return
	}
	c.stageHas[w.Stage] = true
	rec := Pruned{Use: u, Free: f, W: w}
	if w.Stage == detect.PruneOrdered {
		if w.UseBeforeFree {
			rec.Path = c.graph.Explain(u.ReadIdx, f.Idx)
		} else {
			rec.Path = c.graph.Explain(f.Idx, u.ReadIdx)
		}
	}
	c.pruned = append(c.pruned, rec)
}

// Reported implements detect.Collector.
func (c *Collector) Reported(r detect.Race) {
	use, free := r.Use.ReadIdx, r.Free.Idx
	if old := c.evidence[r.Key()]; old != nil {
		// Under KeepDuplicates every dynamic instance is reported;
		// fold repeats into the first instance's record.
		old.Instances++
		old.LastUseIdx, old.LastFreeIdx = use, free
		return
	}
	ev := &Evidence{
		Race:     r,
		Site:     r.Key(),
		Ancestor: c.graph.CommonAncestor(use, free),
		Conv:     ExplainConv(c.conv, use, free),
		SameLooper: c.tr.IsEventTask(r.Use.Task) && c.tr.IsEventTask(r.Free.Task) &&
			c.tr.LooperOf(r.Use.Task) == c.tr.LooperOf(r.Free.Task),
		Instances:   1,
		FirstUseIdx: use, FirstFreeIdx: free,
		LastUseIdx: use, LastFreeIdx: free,
	}
	if ev.Ancestor >= 0 {
		ev.ToUse = c.graph.Explain(ev.Ancestor, use)
		ev.ToFree = c.graph.Explain(ev.Ancestor, free)
	}
	if c.locks != nil {
		ev.UseLocks = append([]trace.LockID(nil), c.locks.At(use)...)
		ev.FreeLocks = append([]trace.LockID(nil), c.locks.At(free)...)
	}
	c.order = append(c.order, ev.Site)
	c.evidence[ev.Site] = ev
}

// Evidence returns the per-race records in canonical SiteKey order
// (the order of the detector's report).
func (c *Collector) Evidence() []*Evidence {
	keys := append([]detect.SiteKey(nil), c.order...)
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	out := make([]*Evidence, 0, len(keys))
	for _, k := range keys {
		out = append(out, c.evidence[k])
	}
	return out
}

// PrunedRecords returns the retained prune witnesses in decision
// order.
func (c *Collector) PrunedRecords() []Pruned { return c.pruned }

// Dropped reports how many prune records the retention cap discarded
// (their stage tallies still counted).
func (c *Collector) Dropped() int { return c.dropped }

// StageCounts returns the number of prunes observed per stage,
// indexed by detect.PruneStage.
func (c *Collector) StageCounts() [detect.NumPruneStages]int { return c.stages }

// Trace returns the collected trace (exporters need its name tables).
func (c *Collector) Trace() *trace.Trace { return c.tr }

package provenance

import (
	"html/template"
	"io"
)

// triageTmpl renders a Bundle as a single-file HTML triage report:
// one section per input, each race as a card with its causality
// verdict, conventional-model verdict, lock sets, and instance
// counts, followed by a prune-witness table. Stdlib html/template
// only — the report must open from disk with no network access.
var triageTmpl = template.Must(template.New("triage").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>cafa triage report</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2em; background: #fafafa; color: #222; }
h1 { font-size: 1.4em; }
h2 { font-size: 1.1em; border-bottom: 1px solid #ccc; padding-bottom: .2em; margin-top: 2em; }
.race { border: 1px solid #d33; border-radius: 6px; background: #fff; padding: .8em 1em; margin: 1em 0; }
.race h3 { margin: 0 0 .4em 0; font-size: 1em; font-family: monospace; }
.race .class { display: inline-block; padding: 0 .5em; border-radius: 3px; background: #d33; color: #fff; font-size: .85em; margin-right: .6em; }
.race .meta { color: #555; font-size: .9em; }
.path { font-family: monospace; font-size: .85em; background: #f4f4f4; padding: .5em; border-radius: 4px; margin: .4em 0; overflow-x: auto; }
table { border-collapse: collapse; font-size: .85em; margin: .6em 0; }
th, td { border: 1px solid #ddd; padding: .25em .6em; text-align: left; }
th { background: #eee; }
td.mono { font-family: monospace; }
.stats { color: #555; font-size: .9em; }
</style>
</head>
<body>
<h1>cafa triage report</h1>
<p class="stats">{{len .Inputs}} input(s) &middot;
candidates={{.Stats.Candidates}} &middot;
filtered: ordered={{.Stats.FilteredOrdered}} lockset={{.Stats.FilteredLockset}}
if-guard={{.Stats.FilteredIfGuard}} intra-alloc={{.Stats.FilteredIntraAlloc}}
static-guard={{.Stats.FilteredStaticGuard}} static-order={{.Stats.FilteredStaticOrder}}
duplicates={{.Stats.Duplicates}}</p>
{{range .Inputs}}
<h2>{{.File}}</h2>
<p class="stats">{{.Events}} events, {{.Entries}} trace entries &middot;
{{len .Races}} race(s), {{len .Pruned}} prune witness(es){{if .PrunedDropped}} (+{{.PrunedDropped}} dropped past cap){{end}}</p>
{{range .Races}}
<div class="race">
<h3><span class="class">{{.Class}}</span>{{.Site}}</h3>
<p class="meta">use: {{.UseTask}} {{.UseMethod}}@{{.UsePC}} (#{{.UseIdx}}) &middot;
free: {{.FreeTask}} {{.FreeMethod}}@{{.FreePC}} (#{{.FreeIdx}}) &middot;
{{if .SameLooper}}same looper{{else}}cross-looper{{end}} &middot;
{{.Instances}} instance(s)</p>
{{if .Ancestor}}
<p class="meta">nearest common ancestor: #{{.Ancestor.Idx}} {{.Ancestor.Entry}} [{{.Ancestor.Task}}]</p>
{{if .AncestorToUse}}<div class="path">to use:{{range .AncestorToUse}}<br>#{{.Idx}} {{.Entry}} [{{.Task}}]{{end}}</div>{{end}}
{{if .AncestorToFree}}<div class="path">to free:{{range .AncestorToFree}}<br>#{{.Idx}} {{.Entry}} [{{.Task}}]{{end}}</div>{{end}}
{{else}}
<p class="meta">no common causal ancestor</p>
{{end}}
<p class="meta">conventional model: {{.ConvDirection}}{{if .PathsTruncated}} (paths truncated){{end}}</p>
{{if .ConvPath}}<div class="path">conventional ordering:{{range .ConvPath}}<br>#{{.Idx}} {{.Entry}} [{{.Task}}]{{end}}</div>{{end}}
{{if .UseLocks}}<p class="meta">locks at use: {{range .UseLocks}}{{.}} {{end}}</p>{{end}}
{{if .FreeLocks}}<p class="meta">locks at free: {{range .FreeLocks}}{{.}} {{end}}</p>{{end}}
</div>
{{end}}
{{if .Pruned}}
<table>
<tr><th>stage</th><th>site</th><th>use#</th><th>free#</th><th>witness</th></tr>
{{range .Pruned}}
<tr><td>{{.Stage}}</td><td class="mono">{{.Site}}</td><td>{{.UseIdx}}</td><td>{{.FreeIdx}}</td>
<td class="mono">{{if .Direction}}{{.Direction}}{{if .Path}} via {{len .Path}} step(s){{end}}{{if .StaticPath}} via static order ({{len .StaticPath}} step(s)){{end}}{{end}}{{range .CommonLocks}}{{.}} {{end}}{{if .Alloc}}alloc #{{.Alloc.Idx}} {{.Alloc.Entry}}{{end}}{{if .Guard}}guard #{{.Guard.Idx}} {{.Guard.Entry}} region [{{.Guard.RegionLo}},{{.Guard.RegionHi}}]{{end}}{{if .Class}}dup of {{.Class}}{{end}}</td></tr>
{{end}}
</table>
{{end}}
{{if .Gaps}}
<h2 class="gaps-h">static coverage gaps — {{.File}}</h2>
<p class="stats">ranked for triage: unordered gaps (true coverage holes) first,
statically-ordered gaps (topology-safe) last</p>
<table>
<tr><th>site</th><th>static order</th><th>witness</th></tr>
{{range .Gaps}}
<tr><td class="mono">{{.Site}}</td>
<td>{{if .Ordered}}{{if .UseBeforeFree}}use-before-free{{else}}free-before-use{{end}}{{else}}none — coverage hole{{end}}</td>
<td class="mono">{{range $i, $s := .Witness}}{{if $i}}<br>{{end}}{{$s}}{{end}}</td></tr>
{{end}}
</table>
{{end}}
{{end}}
</body>
</html>
`))

// WriteHTML renders the bundle as the HTML triage report.
func WriteHTML(w io.Writer, b *Bundle) error {
	return triageTmpl.Execute(w, b)
}

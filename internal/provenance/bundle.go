package provenance

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"cafa/internal/detect"
	"cafa/internal/trace"
)

// BundleVersion is the evidence-bundle schema version.
const BundleVersion = 1

// PathCap bounds exported derivation paths: long fixpoint chains
// (hundreds of queue-rule hops) are elided after this many entries
// and flagged truncated, keeping bundles reviewable and diffable.
const PathCap = 12

// Bundle is the JSON evidence bundle: one entry per analyzed input
// plus aggregate detector stats. Race sites are rendered as stable
// human-readable strings, so bundles recorded from different file
// paths (or machines) diff cleanly by site.
type Bundle struct {
	Version int             `json:"version"`
	Inputs  []InputEvidence `json:"inputs"`
	Stats   detect.Stats    `json:"stats"`
}

// InputEvidence is the evidence for one analyzed trace.
type InputEvidence struct {
	File          string         `json:"file"`
	Events        int            `json:"events"`
	Entries       int            `json:"entries"`
	Stats         detect.Stats   `json:"stats"`
	Races         []RaceEvidence `json:"races"`
	Pruned        []PruneRecord  `json:"pruned"`
	PrunedDropped int            `json:"prunedDropped,omitempty"`
	// Gaps lists static coverage gaps from the lint cross-check:
	// statically-possible pairs the dynamic run never reported
	// (attached by cafa-lint; absent from pure trace analyses).
	Gaps []GapRecord `json:"gaps,omitempty"`
}

// GapRecord is one static coverage gap: an unguarded
// statically-possible pair absent from the dynamic report. Ordered
// gaps carry the event-order witness proving them topology-safe;
// unordered gaps are the true coverage holes triage should read
// first.
type GapRecord struct {
	Site          string   `json:"site"`
	Ordered       bool     `json:"ordered,omitempty"`
	UseBeforeFree bool     `json:"useBeforeFree,omitempty"`
	Witness       []string `json:"witness,omitempty"`
}

// SortGaps ranks gaps for triage: true coverage holes (no static
// order) first, topology-safe ordered gaps last, site order within
// each group.
func SortGaps(gaps []GapRecord) {
	sort.SliceStable(gaps, func(i, j int) bool {
		if gaps[i].Ordered != gaps[j].Ordered {
			return !gaps[i].Ordered
		}
		return gaps[i].Site < gaps[j].Site
	})
}

// EntryRef names one trace entry in exported form.
type EntryRef struct {
	Idx   int    `json:"idx"`
	Entry string `json:"entry"`
	Task  string `json:"task"`
}

// RaceEvidence is the exported per-race record.
type RaceEvidence struct {
	Site       string `json:"site"`
	Class      string `json:"class"`
	Field      string `json:"field"`
	Var        string `json:"var"`
	UseTask    string `json:"useTask"`
	UseMethod  string `json:"useMethod"`
	UsePC      uint32 `json:"usePC"`
	UseIdx     int    `json:"useIdx"`
	FreeTask   string `json:"freeTask"`
	FreeMethod string `json:"freeMethod"`
	FreePC     uint32 `json:"freePC"`
	FreeIdx    int    `json:"freeIdx"`
	SameLooper bool   `json:"sameLooper"`

	// Causality: the nearest common causal ancestor and the
	// derivations from it to both racy operations (the DOT subgraph's
	// skeleton). Ancestor is nil when the operations share no causal
	// history.
	Ancestor       *EntryRef  `json:"ancestor,omitempty"`
	AncestorToUse  []EntryRef `json:"ancestorToUse,omitempty"`
	AncestorToFree []EntryRef `json:"ancestorToFree,omitempty"`

	// Conventional-model verdict: why the thread-based baseline hides
	// the race (ordered) or also reports it (unordered).
	ConvDirection string     `json:"convDirection"`
	ConvPath      []EntryRef `json:"convPath,omitempty"`

	PathsTruncated bool `json:"pathsTruncated,omitempty"`

	UseLocks  []string `json:"useLocks,omitempty"`
	FreeLocks []string `json:"freeLocks,omitempty"`

	// Dedup info: dynamic instances of the site and the first/last
	// occurrence pair.
	Instances    int `json:"instances"`
	FirstUseIdx  int `json:"firstUseIdx"`
	FirstFreeIdx int `json:"firstFreeIdx"`
	LastUseIdx   int `json:"lastUseIdx"`
	LastFreeIdx  int `json:"lastFreeIdx"`

	// Confirmed records a successful §6.2-style adversarial replay of
	// this race (attached by the service's confirm step or any other
	// internal/replay driver). Absent until a confirmation ran and
	// reproduced the crash, so bundles diff cleanly before and after.
	Confirmed *ConfirmationRecord `json:"confirmed,omitempty"`
}

// ConfirmationRecord is the exported form of a replay.Confirmation:
// the schedule that reproduced the crash and the crash itself.
type ConfirmationRecord struct {
	Seed    uint64 `json:"seed"`
	DelayMs int64  `json:"delayMs"`
	Crash   string `json:"crash"`
}

// GuardRef is the exported if-guard witness: the matched branch entry
// and its Figure 6 safe region.
type GuardRef struct {
	EntryRef
	RegionLo uint32 `json:"regionLo"`
	RegionHi uint32 `json:"regionHi"`
}

// PruneRecord is the exported per-filtered-candidate witness.
type PruneRecord struct {
	Stage   string `json:"stage"`
	Site    string `json:"site"`
	UseIdx  int    `json:"useIdx"`
	FreeIdx int    `json:"freeIdx"`

	// Stage-specific witness (exactly one group is populated).
	Direction   string     `json:"direction,omitempty"`   // ordered, static-order
	Path        []EntryRef `json:"path,omitempty"`        // ordered
	CommonLocks []string   `json:"commonLocks,omitempty"` // lockset
	Alloc       *EntryRef  `json:"alloc,omitempty"`       // intra-alloc
	Guard       *GuardRef  `json:"guard,omitempty"`       // if-guard
	Class       string     `json:"class,omitempty"`       // dedup
	StaticPath  []string   `json:"staticPath,omitempty"`  // static-order

	PathTruncated bool `json:"pathTruncated,omitempty"`
}

// SiteString renders a SiteKey as the stable diff key:
// "field: use method@pc free method@pc".
func SiteString(tr *trace.Trace, k detect.SiteKey) string {
	return fmt.Sprintf("%s: use %s@%d free %s@%d",
		tr.FieldName(k.Field),
		tr.MethodName(k.UseMethod), k.UsePC,
		tr.MethodName(k.FreeMethod), k.FreePC)
}

// entryRef renders one trace entry.
func entryRef(tr *trace.Trace, idx int) EntryRef {
	e := &tr.Entries[idx]
	return EntryRef{Idx: idx, Entry: e.String(), Task: tr.TaskName(e.Task)}
}

// refPath renders a derivation, capped at PathCap entries; the second
// result reports whether the path was truncated.
func refPath(tr *trace.Trace, path []int) ([]EntryRef, bool) {
	if path == nil {
		return nil, false
	}
	truncated := false
	if len(path) > PathCap {
		path = path[:PathCap]
		truncated = true
	}
	out := make([]EntryRef, len(path))
	for i, idx := range path {
		out[i] = entryRef(tr, idx)
	}
	return out, truncated
}

func lockNames(locks []trace.LockID) []string {
	if len(locks) == 0 {
		return nil
	}
	out := make([]string, len(locks))
	for i, l := range locks {
		out[i] = fmt.Sprintf("l%d", l)
	}
	return out
}

// Bundle renders the collector's records as the exported evidence for
// one input. It is a pure render — safe to call repeatedly (the live
// triage view and the final export share one collector).
func (c *Collector) Bundle(file string) InputEvidence {
	in := InputEvidence{
		File:    file,
		Events:  c.tr.EventCount(),
		Entries: c.tr.Len(),
		Races:   []RaceEvidence{},
		Pruned:  []PruneRecord{},
	}
	for _, ev := range c.Evidence() {
		r := ev.Race
		re := RaceEvidence{
			Site:       SiteString(c.tr, ev.Site),
			Class:      r.Class.String(),
			Field:      c.tr.FieldName(r.Use.Var.Field()),
			Var:        c.tr.VarName(r.Use.Var),
			UseTask:    c.tr.TaskName(r.Use.Task),
			UseMethod:  c.tr.MethodName(r.Use.Method),
			UsePC:      uint32(r.Use.DerefPC),
			UseIdx:     r.Use.ReadIdx,
			FreeTask:   c.tr.TaskName(r.Free.Task),
			FreeMethod: c.tr.MethodName(r.Free.Method),
			FreePC:     uint32(r.Free.PC),
			FreeIdx:    r.Free.Idx,
			SameLooper: ev.SameLooper,

			ConvDirection: ev.Conv.Direction.String(),

			UseLocks:  lockNames(ev.UseLocks),
			FreeLocks: lockNames(ev.FreeLocks),

			Instances:    ev.Instances,
			FirstUseIdx:  ev.FirstUseIdx,
			FirstFreeIdx: ev.FirstFreeIdx,
			LastUseIdx:   ev.LastUseIdx,
			LastFreeIdx:  ev.LastFreeIdx,
		}
		if ev.Ancestor >= 0 {
			ref := entryRef(c.tr, ev.Ancestor)
			re.Ancestor = &ref
			var t1, t2 bool
			re.AncestorToUse, t1 = refPath(c.tr, ev.ToUse)
			re.AncestorToFree, t2 = refPath(c.tr, ev.ToFree)
			re.PathsTruncated = t1 || t2
		}
		var tc bool
		re.ConvPath, tc = refPath(c.tr, ev.Conv.Path)
		re.PathsTruncated = re.PathsTruncated || tc
		in.Races = append(in.Races, re)
	}
	for i := range c.pruned {
		p := &c.pruned[i]
		pr := PruneRecord{
			Stage:   p.W.Stage.String(),
			Site:    SiteString(c.tr, p.Site()),
			UseIdx:  p.Use.ReadIdx,
			FreeIdx: p.Free.Idx,
		}
		switch p.W.Stage {
		case detect.PruneOrdered:
			if p.W.UseBeforeFree {
				pr.Direction = DirUseBeforeFree.String()
			} else {
				pr.Direction = DirFreeBeforeUse.String()
			}
			pr.Path, pr.PathTruncated = refPath(c.tr, p.Path)
		case detect.PruneLockset:
			pr.CommonLocks = lockNames(p.W.CommonLocks)
		case detect.PruneIntraAlloc:
			ref := entryRef(c.tr, p.W.AllocIdx)
			pr.Alloc = &ref
		case detect.PruneIfGuard:
			pr.Guard = &GuardRef{
				EntryRef: entryRef(c.tr, p.W.GuardIdx),
				RegionLo: uint32(p.W.GuardLo),
				RegionHi: uint32(p.W.GuardHi),
			}
		case detect.PruneDedup:
			pr.Class = p.W.Class.String()
		case detect.PruneStaticOrder:
			if p.W.UseBeforeFree {
				pr.Direction = DirUseBeforeFree.String()
			} else {
				pr.Direction = DirFreeBeforeUse.String()
			}
			pr.StaticPath = p.W.StaticPath
		}
		in.Pruned = append(in.Pruned, pr)
	}
	in.PrunedDropped = c.dropped
	return in
}

// WriteJSON encodes the bundle as indented JSON.
func (b *Bundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBundle decodes a JSON evidence bundle.
func ReadBundle(r io.Reader) (*Bundle, error) {
	var b Bundle
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("evidence bundle: %w", err)
	}
	if b.Version != BundleVersion {
		return nil, fmt.Errorf("evidence bundle: unsupported version %d (want %d)", b.Version, BundleVersion)
	}
	return &b, nil
}

package provenance_test

import (
	"bytes"
	"strings"
	"testing"

	"cafa/internal/analysis"
	"cafa/internal/apps"
	"cafa/internal/detect"
	"cafa/internal/provenance"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// analyzeApp builds one app model and analyzes it with evidence on.
func analyzeApp(t *testing.T, name string, scale int) *analysis.Result {
	t.Helper()
	spec, ok := apps.ByName(name)
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	col := trace.NewCollector()
	out, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, scale)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Sys.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(col.T, analysis.Options{Evidence: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evidence == nil {
		t.Fatal("Options.Evidence set but Result.Evidence is nil")
	}
	return res
}

func TestCollectorEvidenceMatchesReport(t *testing.T) {
	res := analyzeApp(t, "ToDoList", 4)
	if len(res.Races) == 0 {
		t.Fatal("ToDoList model must report races")
	}
	evs := res.Evidence.Evidence()
	if len(evs) != len(res.Races) {
		t.Fatalf("evidence records = %d, races = %d", len(evs), len(res.Races))
	}
	withAncestor := 0
	for i, ev := range evs {
		r := res.Races[i]
		if ev.Site != r.Key() {
			t.Errorf("evidence %d site %v != race key %v", i, ev.Site, r.Key())
		}
		if ev.Instances < 1 {
			t.Errorf("evidence %d instances = %d", i, ev.Instances)
		}
		if ev.FirstUseIdx != r.Use.ReadIdx || ev.FirstFreeIdx != r.Free.Idx {
			t.Errorf("evidence %d first instance does not match the reported race", i)
		}
		// The FP2 scenario's use and free descend from distinct harness
		// roots (no common history — the exported Ancestor is null);
		// every other reported pair is bootstrapped by one component,
		// so its fork must be found, and both derivations must start at
		// it and end at the racy operations.
		if ev.Ancestor < 0 {
			continue
		}
		withAncestor++
		if len(ev.ToUse) < 2 || ev.ToUse[0] != ev.Ancestor || ev.ToUse[len(ev.ToUse)-1] != r.Use.ReadIdx {
			t.Errorf("evidence %d: ToUse %v does not connect ancestor %d to use %d",
				i, ev.ToUse, ev.Ancestor, r.Use.ReadIdx)
		}
		if len(ev.ToFree) < 2 || ev.ToFree[0] != ev.Ancestor || ev.ToFree[len(ev.ToFree)-1] != r.Free.Idx {
			t.Errorf("evidence %d: ToFree %v does not connect ancestor %d to free %d",
				i, ev.ToFree, ev.Ancestor, r.Free.Idx)
		}
		if res.Evidence.Trace().Entries[ev.Ancestor].Op != trace.OpFork {
			t.Errorf("evidence %d: nearest ancestor %d is not the bootstrap fork", i, ev.Ancestor)
		}
	}
	if withAncestor != len(evs)-1 {
		t.Errorf("races with a common ancestor = %d, want all but the FP2 site (%d)",
			withAncestor, len(evs)-1)
	}
}

func TestCollectorDedupFoldsInstances(t *testing.T) {
	// Scale drives repeated dynamic instances of the same sites.
	res := analyzeApp(t, "ToDoList", 6)
	if res.Stats.Duplicates == 0 {
		t.Fatal("expected duplicate instances at this scale")
	}
	total := 0
	for _, ev := range res.Evidence.Evidence() {
		total += ev.Instances - 1
		if ev.Instances > 1 {
			if ev.LastUseIdx == ev.FirstUseIdx && ev.LastFreeIdx == ev.FirstFreeIdx {
				t.Errorf("site %v: %d instances but last==first", ev.Site, ev.Instances)
			}
		}
	}
	if total != res.Stats.Duplicates {
		t.Errorf("folded duplicates = %d, Stats.Duplicates = %d", total, res.Stats.Duplicates)
	}
	counts := res.Evidence.StageCounts()
	if got := counts[detect.PruneDedup]; got != res.Stats.Duplicates {
		t.Errorf("dedup stage tally = %d, want %d", got, res.Stats.Duplicates)
	}
}

func TestCollectorStageTalliesMatchStats(t *testing.T) {
	res := analyzeApp(t, "ZXing", 4)
	counts := res.Evidence.StageCounts()
	want := map[detect.PruneStage]int{
		detect.PruneOrdered:     res.Stats.FilteredOrdered,
		detect.PruneLockset:     res.Stats.FilteredLockset,
		detect.PruneIfGuard:     res.Stats.FilteredIfGuard,
		detect.PruneIntraAlloc:  res.Stats.FilteredIntraAlloc,
		detect.PruneStaticGuard: res.Stats.FilteredStaticGuard,
		detect.PruneDedup:       res.Stats.Duplicates,
	}
	for stage, n := range want {
		if counts[stage] != n {
			t.Errorf("stage %v tally = %d, stats say %d", stage, counts[stage], n)
		}
	}
}

func TestPrunedWitnesses(t *testing.T) {
	res := analyzeApp(t, "ZXing", 4)
	tr := res.Evidence.Trace()
	seen := map[detect.PruneStage]bool{}
	for _, p := range res.Evidence.PrunedRecords() {
		p := p
		seen[p.W.Stage] = true
		switch p.W.Stage {
		case detect.PruneOrdered:
			if len(p.Path) < 2 {
				t.Errorf("ordered prune of %v lacks an HB derivation", p.Site())
			}
			from, to := p.Use.ReadIdx, p.Free.Idx
			if !p.W.UseBeforeFree {
				from, to = to, from
			}
			if len(p.Path) >= 2 && (p.Path[0] != from || p.Path[len(p.Path)-1] != to) {
				t.Errorf("ordered prune path %v does not connect %d to %d", p.Path, from, to)
			}
		case detect.PruneLockset:
			if len(p.W.CommonLocks) == 0 {
				t.Errorf("lockset prune of %v has no common lock", p.Site())
			}
		case detect.PruneIntraAlloc:
			if p.W.AllocIdx < 0 || p.W.AllocIdx >= tr.Len() {
				t.Errorf("intra-alloc prune of %v: bad alloc idx %d", p.Site(), p.W.AllocIdx)
			} else if tr.Entries[p.W.AllocIdx].Op != trace.OpPtrWrite {
				t.Errorf("intra-alloc witness %d is not an allocation write", p.W.AllocIdx)
			}
		case detect.PruneIfGuard:
			if p.W.GuardIdx < 0 || p.W.GuardIdx >= tr.Len() {
				t.Errorf("if-guard prune of %v: bad guard idx %d", p.Site(), p.W.GuardIdx)
			}
			if p.W.GuardLo > p.W.GuardHi {
				t.Errorf("if-guard region [%d,%d] inverted", p.W.GuardLo, p.W.GuardHi)
			}
		}
	}
	for _, stage := range []detect.PruneStage{
		detect.PruneOrdered, detect.PruneLockset, detect.PruneIfGuard, detect.PruneIntraAlloc,
	} {
		if !seen[stage] {
			t.Errorf("ZXing model produced no %v prune witness", stage)
		}
	}
}

func TestCollectorMaxPrunedCap(t *testing.T) {
	spec, _ := apps.ByName("ToDoList")
	col := trace.NewCollector()
	out, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Sys.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(col.T, analysis.Options{
		Evidence:        true,
		EvidenceOptions: provenance.Options{MaxPruned: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Evidence
	if c.Dropped() == 0 {
		t.Fatal("cap of 2 should drop records on this trace")
	}
	// Tallies keep counting past the cap…
	counts, retained := c.StageCounts(), 0
	totalTally := 0
	for _, n := range counts {
		totalTally += n
	}
	retained = len(c.PrunedRecords())
	if totalTally != retained+c.Dropped() {
		t.Errorf("tallies %d != retained %d + dropped %d", totalTally, retained, c.Dropped())
	}
	// …and the first witness of every observed stage is retained.
	has := map[detect.PruneStage]bool{}
	for _, p := range c.PrunedRecords() {
		has[p.W.Stage] = true
	}
	for stage, n := range counts {
		if n > 0 && !has[detect.PruneStage(stage)] {
			t.Errorf("stage %v observed %d times but no witness retained", detect.PruneStage(stage), n)
		}
	}
}

func TestBundleRoundTrip(t *testing.T) {
	res := analyzeApp(t, "ToDoList", 4)
	b := &provenance.Bundle{
		Version: provenance.BundleVersion,
		Inputs:  []provenance.InputEvidence{res.Evidence.Bundle("todolist.trace")},
		Stats:   res.Stats,
	}
	b.Inputs[0].Stats = res.Stats
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := provenance.ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Inputs) != 1 || got.Inputs[0].File != "todolist.trace" {
		t.Fatalf("round trip lost the input: %+v", got.Inputs)
	}
	if len(got.Inputs[0].Races) != len(res.Races) {
		t.Errorf("round trip races = %d, want %d", len(got.Inputs[0].Races), len(res.Races))
	}
	if got.Stats != res.Stats {
		t.Errorf("round trip stats = %+v, want %+v", got.Stats, res.Stats)
	}
	for _, r := range got.Inputs[0].Races {
		if !strings.Contains(r.Site, ": use ") {
			t.Errorf("site string %q not in canonical form", r.Site)
		}
	}

	// Version gate.
	bad := strings.Replace(buf.String(), `"version": 1`, `"version": 99`, 1)
	if _, err := provenance.ReadBundle(strings.NewReader(bad)); err == nil {
		t.Error("unsupported version must be rejected")
	}
}

func mkBundle(sites ...string) *provenance.Bundle {
	races := make([]provenance.RaceEvidence, len(sites))
	for i, s := range sites {
		races[i] = provenance.RaceEvidence{Site: s}
	}
	return &provenance.Bundle{
		Version: provenance.BundleVersion,
		Inputs:  []provenance.InputEvidence{{File: "x.trace", Races: races}},
	}
}

func TestDiffClassification(t *testing.T) {
	base := mkBundle("a: use f@1 free g@2", "b: use f@1 free g@2")
	cur := mkBundle("b: use f@1 free g@2", "c: use f@1 free g@2")
	d := provenance.Diff(base, cur, "base.json")
	if !d.HasNew() {
		t.Fatal("site c is new")
	}
	if len(d.New) != 1 || d.New[0] != "c: use f@1 free g@2" {
		t.Errorf("New = %v", d.New)
	}
	if len(d.Fixed) != 1 || d.Fixed[0] != "a: use f@1 free g@2" {
		t.Errorf("Fixed = %v", d.Fixed)
	}
	if len(d.Persisting) != 1 || d.Persisting[0] != "b: use f@1 free g@2" {
		t.Errorf("Persisting = %v", d.Persisting)
	}
	out := d.Format()
	if !strings.Contains(out, "new=1 fixed=1 persisting=1") ||
		!strings.Contains(out, "  new: c: use f@1 free g@2\n") {
		t.Errorf("Format = %q", out)
	}

	same := provenance.Diff(base, base, "base.json")
	if same.HasNew() || len(same.Fixed) != 0 {
		t.Errorf("self-diff must be clean: %+v", same)
	}
}

func TestDiffSiteMovedBetweenInputs(t *testing.T) {
	base := mkBundle("a: use f@1 free g@2")
	cur := &provenance.Bundle{
		Version: provenance.BundleVersion,
		Inputs: []provenance.InputEvidence{
			{File: "other.trace", Races: []provenance.RaceEvidence{{Site: "a: use f@1 free g@2"}}},
		},
	}
	d := provenance.Diff(base, cur, "base.json")
	if d.HasNew() || len(d.Fixed) != 0 || len(d.Persisting) != 1 {
		t.Errorf("site moved between files must be persisting: %+v", d)
	}
}

func TestExplainConv(t *testing.T) {
	res := analyzeApp(t, "ToDoList", 4)
	r := res.Races[0]
	v := provenance.ExplainConv(res.Conventional, r.Use.ReadIdx, r.Free.Idx)
	switch v.Direction {
	case provenance.DirUnordered:
		if v.Path != nil {
			t.Error("unordered verdict must have no path")
		}
		if got := v.Format(res.Conventional, "  "); got != "  unordered in both models" {
			t.Errorf("Format = %q", got)
		}
	case provenance.DirUseBeforeFree, provenance.DirFreeBeforeUse:
		if len(v.Path) < 2 {
			t.Errorf("ordered verdict needs a derivation, got %v", v.Path)
		}
		got := v.Format(res.Conventional, "  ")
		if !strings.HasPrefix(got, "  conventional model would order ") {
			t.Errorf("Format = %q", got)
		}
		for _, line := range strings.Split(got, "\n") {
			if !strings.HasPrefix(line, "  ") {
				t.Errorf("line %q not indented", line)
			}
		}
	}
	// A nil graph is always unordered.
	if v := provenance.ExplainConv(nil, 1, 2); v.Direction != provenance.DirUnordered {
		t.Errorf("nil graph verdict = %v", v.Direction)
	}
}

func TestWriteDOT(t *testing.T) {
	res := analyzeApp(t, "ToDoList", 4)
	b := &provenance.Bundle{
		Version: provenance.BundleVersion,
		Inputs:  []provenance.InputEvidence{res.Evidence.Bundle("todolist.trace")},
	}
	var buf bytes.Buffer
	if err := provenance.WriteDOT(&buf, b); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	if !strings.HasPrefix(dot, "digraph provenance {") || !strings.HasSuffix(dot, "}\n") {
		t.Errorf("not a digraph: %.80q", dot)
	}
	if want := strings.Count(dot, "subgraph cluster_"); want != len(res.Races) {
		t.Errorf("clusters = %d, want one per race (%d)", want, len(res.Races))
	}
	if !strings.Contains(dot, "color=red") {
		t.Error("racy operations must be highlighted")
	}
	if !strings.Contains(dot, "style=filled") {
		t.Error("common ancestors must be drawn")
	}
}

func TestWriteHTML(t *testing.T) {
	res := analyzeApp(t, "ToDoList", 4)
	b := &provenance.Bundle{
		Version: provenance.BundleVersion,
		Inputs:  []provenance.InputEvidence{res.Evidence.Bundle("todolist.trace")},
		Stats:   res.Stats,
	}
	b.Inputs[0].Stats = res.Stats
	var buf bytes.Buffer
	if err := provenance.WriteHTML(&buf, b); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "todolist.trace", "cafa triage report",
		b.Inputs[0].Races[0].Site, "nearest common ancestor",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}

func TestGapsRankedInTriageHTML(t *testing.T) {
	lt := provenance.NewLiveTriage()
	// Deliberately unsorted: ordered pairs first, sites reversed.
	lt.AddGaps("ZXing", []provenance.GapRecord{
		{Site: "ptr_z use a:1 free b:1", Ordered: true, UseBeforeFree: true,
			Witness: []string{"use a@1 [event evA, runs once]", "-> begin(evB) [post]"}},
		{Site: "ptr_m use c:2 free d:3"},
		{Site: "ptr_a use e:4 free f:5"},
	})
	snap := lt.Snapshot()
	gaps := snap.Inputs[0].Gaps
	if len(gaps) != 3 || gaps[0].Site != "ptr_a use e:4 free f:5" ||
		gaps[1].Site != "ptr_m use c:2 free d:3" || !gaps[2].Ordered {
		t.Fatalf("gaps not ranked unordered-first, site-sorted: %+v", gaps)
	}
	var buf bytes.Buffer
	if err := provenance.WriteHTML(&buf, &snap); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"static coverage gaps", "none — coverage hole", "use-before-free",
		"begin(evB) [post]",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("triage HTML missing %q", want)
		}
	}
	if hole, ord := strings.Index(html, "none — coverage hole"), strings.Index(html, "use-before-free"); hole > ord {
		t.Error("coverage holes must render before ordered gaps")
	}
}

package buildinfo

import (
	"runtime"
	"strings"
	"testing"
)

func TestStringShape(t *testing.T) {
	got := String("cafa-test")
	if !strings.HasPrefix(got, "cafa-test ") {
		t.Errorf("String() = %q, want the command name first", got)
	}
	if !strings.HasSuffix(got, runtime.Version()) {
		t.Errorf("String() = %q, want the toolchain version last", got)
	}
	// Test binaries carry build info but no pinned module version.
	if !strings.Contains(got, "(devel)") && strings.Count(got, " ") < 2 {
		t.Errorf("String() = %q, want a module version field", got)
	}
}

// Package buildinfo renders the shared -version line for the CAFA
// command-line tools and the service: module version, VCS revision,
// and Go toolchain, all read from the binary's embedded build info
// (debug.ReadBuildInfo), so the tools report provenance without a
// linker-flag build recipe.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// revisionLen truncates VCS revisions to the conventional short-hash
// width.
const revisionLen = 12

// String renders the one-line -version output for the named command:
//
//	cafa-serve v0.3.1 (a1b2c3d4e5f6+dirty) go1.24.0
//
// Fields that the build did not stamp (test binaries, `go run` from a
// non-VCS directory) are omitted; the module version falls back to
// "(devel)".
func String(cmd string) string {
	version := "(devel)"
	var rev string
	dirty := false
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	out := fmt.Sprintf("%s %s", cmd, version)
	if rev != "" {
		if len(rev) > revisionLen {
			rev = rev[:revisionLen]
		}
		if dirty {
			rev += "+dirty"
		}
		out += " (" + rev + ")"
	}
	return out + " " + runtime.Version()
}

package cafa

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"cafa/internal/apps"
	"cafa/internal/service"
	"cafa/internal/service/api"
	"cafa/internal/service/client"
)

// suiteTraceBytes encodes the ten-app suite to binary trace uploads.
func suiteTraceBytes(tb testing.TB) [][]byte {
	tb.Helper()
	traces := suiteTraces(tb)
	out := make([][]byte, len(traces))
	for i, tr := range traces {
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			tb.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

// TestServeLoad is the service's concurrency proof and the source of
// BENCH_serve.json. Phase one uploads the ten distinct suite traces
// and waits for completion (all cache misses). Phase two fires 48
// concurrent duplicate submissions — every one must be served as a
// completed job straight from the result cache, and the hit counter
// must account for all of them. Phase three floods a deliberately
// tiny server (one worker, one queue slot) with concurrent distinct
// submissions and requires every call to resolve promptly as either
// an accepted job or a 429 — backpressure must never block the accept
// loop. Regenerate the baseline with
// `go test -run TestServeLoad -update-bench .`
func TestServeLoad(t *testing.T) {
	raws := suiteTraceBytes(t)
	svc := service.New(service.Config{Workers: runtime.GOMAXPROCS(0), QueueDepth: 64})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	c := client.New(ts.URL)

	// Phase 1: distinct submissions, all misses.
	t0 := time.Now()
	ids := make([]string, len(raws))
	for i, raw := range raws {
		j, err := c.Submit(raw, fmt.Sprintf("%s.trace", apps.Registry[i].Name), "")
		if err != nil {
			t.Fatal(err)
		}
		if j.Cached {
			t.Fatalf("first submission of trace %d reported cached", i)
		}
		ids[i] = j.ID
	}
	for _, id := range ids {
		j, err := c.Wait(id, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != api.StateDone {
			t.Fatalf("job %s: %s (%s)", id, j.State, j.Error)
		}
	}
	distinctWall := time.Since(t0)
	st := svc.CacheStats()
	if st.Misses != int64(len(raws)) || st.Entries != len(raws) {
		t.Fatalf("after distinct phase: cache = %+v", st)
	}

	// Phase 2: concurrent duplicates, all hits.
	const dupJobs = 48
	t0 = time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, dupJobs)
	for i := 0; i < dupJobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := c.Submit(raws[i%len(raws)], "dup.trace", "")
			if err != nil {
				errs <- fmt.Errorf("dup %d: %w", i, err)
				return
			}
			if !j.Cached || j.State != api.StateDone {
				errs <- fmt.Errorf("dup %d: not a completed cache hit: %+v", i, j)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	dupWall := time.Since(t0)
	st = svc.CacheStats()
	if st.Hits != dupJobs {
		t.Fatalf("cache hits = %d, want %d", st.Hits, dupJobs)
	}

	// Phase 3: backpressure. A one-worker, one-slot server under a
	// 32-way concurrent burst of distinct traces must answer every
	// submission promptly — accepted or 429, never blocked.
	tiny := service.New(service.Config{Workers: 1, QueueDepth: 1})
	tinySrv := httptest.NewServer(tiny)
	defer tinySrv.Close()
	tc := client.New(tinySrv.URL)

	const burst = 32
	type outcome struct {
		id       string
		rejected bool
	}
	outcomes := make(chan outcome, burst)
	burstErrs := make(chan error, burst)
	t0 = time.Now()
	var bwg sync.WaitGroup
	for i := 0; i < burst; i++ {
		bwg.Add(1)
		go func(i int) {
			defer bwg.Done()
			// Round-robin over the suite: phase-3 cache is empty, but
			// in-flight duplicates may still be misses — both accept
			// and reject are legal; blocking is not.
			j, err := tc.Submit(raws[i%len(raws)], "burst.trace", "")
			if err != nil {
				var apiErr *client.APIError
				if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
					outcomes <- outcome{rejected: true}
					return
				}
				burstErrs <- fmt.Errorf("burst %d: %w", i, err)
				return
			}
			outcomes <- outcome{id: j.ID}
		}(i)
	}
	burstDone := make(chan struct{})
	go func() { bwg.Wait(); close(burstDone) }()
	select {
	case <-burstDone:
	case <-time.After(30 * time.Second):
		t.Fatal("burst submissions did not all return; a full queue blocked the accept loop")
	}
	burstWall := time.Since(t0)
	close(outcomes)
	close(burstErrs)
	for err := range burstErrs {
		t.Fatal(err)
	}
	accepted, rejected := 0, 0
	for o := range outcomes {
		if o.rejected {
			rejected++
			continue
		}
		accepted++
		if j, err := tc.Wait(o.id, time.Minute); err != nil || j.State != api.StateDone {
			t.Fatalf("accepted burst job %s: %+v, %v", o.id, j, err)
		}
	}
	if accepted+rejected != burst {
		t.Fatalf("accepted %d + rejected %d != %d", accepted, rejected, burst)
	}
	if accepted == 0 {
		t.Fatal("every burst submission was rejected; the worker never made progress")
	}
	t.Logf("distinct: %d jobs in %v; duplicates: %d hits in %v; burst: %d accepted, %d rejected in %v",
		len(raws), distinctWall, dupJobs, dupWall, accepted, rejected, burstWall)

	if *updateBench {
		writeBenchServe(t, distinctWall, dupWall, burstWall, dupJobs, accepted, rejected)
	}
}

// writeBenchServe records the service throughput baseline in
// BENCH_serve.json at the repo root.
func writeBenchServe(t *testing.T, distinct, dup, burst time.Duration, dupJobs, accepted, rejected int) {
	t.Helper()
	doc := map[string]any{
		"recorded":   time.Now().Format("2006-01-02"),
		"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"note": "cafa-serve load baseline over the ten-app suite (benchScale, seed 1): " +
			"distinct = submit+analyze all ten traces; duplicate = 48 concurrent cache-hit " +
			"submissions; burst = 32-way concurrent distinct submissions against a " +
			"1-worker/1-slot server (accepted+429). Regenerate with " +
			"`go test -run TestServeLoad -update-bench .`.",
		"suite":                  fmt.Sprintf("%d apps at scale %d", len(apps.Registry), benchScale),
		"distinct_jobs":          len(apps.Registry),
		"distinct_wall_ns":       distinct.Nanoseconds(),
		"duplicate_jobs":         dupJobs,
		"duplicate_wall_ns":      dup.Nanoseconds(),
		"duplicate_hits_per_sec": float64(dupJobs) / dup.Seconds(),
		"burst_jobs":             32,
		"burst_accepted":         accepted,
		"burst_rejected":         rejected,
		"burst_wall_ns":          burst.Nanoseconds(),
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

package cafa

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"cafa/internal/analysis"
	"cafa/internal/synth"
	"cafa/internal/trace"
)

// streamRSSThreshold is the streaming-pipeline memory contract: on the
// largest synthetic trace, the heap retained while holding a streaming
// result must stay under half of what the batch path retains. Quiet
// hardware lands far below this; CI can loosen it via STREAM_RSS_MAX
// (a ratio, e.g. "0.6").
const streamRSSThreshold = 0.50

// streamRSSShapes are the measured workloads. The analysis skeleton is
// fixed (same loopers, events, and races) and AccessesPer scales pure
// entry volume — from roughly 10x to 100x the entry count of a
// benchScale app trace — so retained memory tracks trace length, not
// analysis difficulty. That isolates exactly the O(trace) vs O(window)
// claim: batch keeps every entry alive in the Result, streaming keeps
// the window plus the derived graphs.
var streamRSSShapes = []struct {
	name string
	cfg  synth.Config
}{
	{"synth-30k", synth.Config{Chain: 4, EventsPer: 8, FreeThreads: 4, Burst: 8, BurstEvents: 32, AccessesPer: 100}},
	{"synth-300k", synth.Config{Chain: 4, EventsPer: 8, FreeThreads: 4, Burst: 8, BurstEvents: 32, AccessesPer: 1000}},
}

// retainedAfter runs fn, then measures how much heap the values it
// returned keep alive: GC before for a clean baseline, GC after so
// only reachable memory remains, delta of HeapAlloc. Transient
// allocations inside fn are collected by the second GC and do not
// count — this is retained state, the component of peak RSS that a
// long-lived process cannot shed between traces.
func retainedAfter(tb testing.TB, fn func() any) (uint64, any) {
	tb.Helper()
	// Two cycles: one GC only moves sync.Pool contents to the victim
	// cache; the second frees them. Without both, pool memory from an
	// earlier measurement dies inside this one and skews the delta.
	runtime.GC()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	held := fn()
	runtime.GC()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	// Keep fn (and so everything it captured — notably the encoded
	// input bytes) reachable until after the second reading. SSA
	// liveness frees a capture's backing array right after its last
	// use inside fn, which would deflate `after` below the baseline.
	runtime.KeepAlive(fn)
	if after.HeapAlloc <= before.HeapAlloc {
		return 0, held
	}
	return after.HeapAlloc - before.HeapAlloc, held
}

// TestStreamRSS is the bounded-memory proof for the streaming
// pipeline: analyzing the same encoded trace, holding the streaming
// Result must retain well under half the heap of holding the batch
// Result, and the gap must widen as the trace grows. Both sides see
// identical races, so the saving is storage, not work skipped.
func TestStreamRSS(t *testing.T) {
	if testing.Short() {
		t.Skip("memory measurement loop is slow under -short")
	}
	threshold := streamRSSThreshold
	if env := os.Getenv("STREAM_RSS_MAX"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("bad STREAM_RSS_MAX %q: %v", env, err)
		}
		threshold = v
	}

	type row struct {
		Name     string  `json:"name"`
		Entries  int     `json:"entries"`
		EncodedB int     `json:"encoded_bytes"`
		BatchB   uint64  `json:"batch_retained_bytes"`
		StreamB  uint64  `json:"stream_retained_bytes"`
		Ratio    float64 `json:"stream_over_batch"`
		Races    int     `json:"races"`
	}
	rows := make([]row, 0, len(streamRSSShapes))
	p := analysis.New(analysis.Options{})

	for _, shape := range streamRSSShapes {
		tr := synth.Trace(shape.cfg)
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		entries := tr.Len()
		tr = nil // only the encoded form feeds both sides

		batchB, batchHeld := retainedAfter(t, func() any {
			btr, err := trace.Decode(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.AnalyzeSpanned(btr, nil)
			if err != nil {
				t.Fatal(err)
			}
			return res
		})
		batchRes := batchHeld.(*analysis.Result)

		streamB, streamHeld := retainedAfter(t, func() any {
			res, err := p.AnalyzeStream(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			return res
		})
		streamRes := streamHeld.(*analysis.Result)

		if len(streamRes.Races) != len(batchRes.Races) {
			t.Fatalf("%s: race count diverged: stream %d, batch %d",
				shape.name, len(streamRes.Races), len(batchRes.Races))
		}
		ratio := float64(streamB) / float64(batchB)
		t.Logf("%s: %d entries, batch retains %s, stream retains %s (ratio %.3f)",
			shape.name, entries, fmtBytes(batchB), fmtBytes(streamB), ratio)
		rows = append(rows, row{
			Name: shape.name, Entries: entries, EncodedB: len(raw),
			BatchB: batchB, StreamB: streamB, Ratio: ratio,
			Races: len(streamRes.Races),
		})
		runtime.KeepAlive(batchRes)
		runtime.KeepAlive(streamRes)
	}

	// The gate applies to the largest trace, where entry storage
	// dominates both sides' fixed costs.
	last := rows[len(rows)-1]
	if last.Ratio >= threshold {
		t.Errorf("streaming retains %.1f%% of batch on %s, want under %.0f%%",
			last.Ratio*100, last.Name, threshold*100)
	}

	if *updateBench {
		writeBenchStream(t, rows)
	}
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// writeBenchStream records the measurement in BENCH_stream.json at the
// repo root, the artifact named by the streaming acceptance criteria.
func writeBenchStream(t *testing.T, rows any) {
	t.Helper()
	doc := map[string]any{
		"recorded":   time.Now().Format("2006-01-02"),
		"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"note": "Heap retained while holding an analysis Result: batch (decoded trace + result) vs " +
			"streaming (result only) over the same encoded synthetic traces. " +
			"Regenerate with `go test -run TestStreamRSS -update-bench .`.",
		"threshold": streamRSSThreshold,
		"shapes":    rows,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_stream.json", append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

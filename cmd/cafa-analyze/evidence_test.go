package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cafa/internal/apps"
	"cafa/internal/provenance"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// writeSuiteTraces records all ten app models (scale 32, seed 1 — the
// CI report-regression recipe) into dir as <app>.trace files.
func writeSuiteTraces(t *testing.T, dir string) {
	t.Helper()
	for _, spec := range apps.Registry {
		col := trace.NewCollector()
		out, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, 32)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Sys.Run(); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dir, strings.ToLower(spec.Name)+".trace"))
		if err != nil {
			t.Fatal(err)
		}
		if err := col.T.Encode(f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// loadNormalizedBundle reads an evidence bundle and strips run-local
// directories from the File fields so bundles recorded in different
// temp dirs compare equal.
func loadNormalizedBundle(t *testing.T, path string) *provenance.Bundle {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := provenance.ReadBundle(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Inputs {
		b.Inputs[i].File = filepath.Base(b.Inputs[i].File)
	}
	return b
}

// TestGoldenSuiteEvidence locks the evidence bundle over the full
// ten-app suite (scale 32, seed 1) against the committed golden —
// the same bundle CI's report-regression job diffs against.
// Regenerate with `go test ./cmd/cafa-analyze -update`.
func TestGoldenSuiteEvidence(t *testing.T) {
	dir := t.TempDir()
	writeSuiteTraces(t, dir)
	outPath := filepath.Join(dir, "evidence.json")
	if err := run([]string{"-evidence-out", outPath, dir}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := loadNormalizedBundle(t, outPath)

	golden := filepath.Join("testdata", "golden_suite_evidence.json")
	if *update {
		var buf bytes.Buffer
		if err := got.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want := loadNormalizedBundle(t, golden)
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.Marshal(got.Stats)
		wantJSON, _ := json.Marshal(want.Stats)
		t.Errorf("evidence bundle diverges from %s (run with -update to regenerate)\ngot stats  %s\nwant stats %s",
			golden, gotJSON, wantJSON)
	}

	// The acceptance bar for the bundle itself: every dynamic prune
	// stage except static-guard carries at least one witness (the
	// static prune needs the whole-program pass, which cafa-analyze
	// does not run; its witness is covered by the root
	// TestEvidenceAllStagesWitnessed fixture).
	stages := map[string]int{}
	races := 0
	for _, in := range got.Inputs {
		races += len(in.Races)
		for _, p := range in.Pruned {
			stages[p.Stage]++
		}
	}
	if races == 0 {
		t.Fatal("suite bundle reports no races")
	}
	for _, stage := range []string{"ordered", "lockset", "if-guard", "intra-alloc", "dedup"} {
		if stages[stage] == 0 {
			t.Errorf("suite bundle has no %s prune witness (have %v)", stage, stages)
		}
	}
}

// TestDiffCleanAndRegression drives -diff both ways: the suite
// against its own golden baseline must exit clean, and a run
// containing races absent from a baseline must fail with the
// regression exit code and name the new sites.
func TestDiffCleanAndRegression(t *testing.T) {
	// Baseline: evidence of the ToDoList fixture alone.
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := run([]string{"-evidence-out", base, "testdata/todolist.trace"}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}

	// Same inputs, same baseline: no new, no fixed, exit clean.
	var clean bytes.Buffer
	if err := run([]string{"-diff", base, "testdata/todolist.trace"}, &clean, io.Discard); err != nil {
		t.Fatalf("self-diff must pass, got %v", err)
	}
	if !strings.Contains(clean.String(), "new=0 fixed=0") {
		t.Errorf("self-diff output = %q", clean.String())
	}

	// Adding the ZXing fixture introduces race sites the baseline has
	// never seen: the diff must fail with the regression exit code and
	// print each new site.
	var buf bytes.Buffer
	err := run([]string{"-diff", base, "testdata/zxing.trace", "testdata/todolist.trace"}, &buf, io.Discard)
	if err == nil {
		t.Fatal("new races vs baseline must fail the run")
	}
	var re *regressionError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want regressionError", err)
	}
	if exitCode(err) != 3 {
		t.Errorf("exit code = %d, want 3", exitCode(err))
	}
	out := buf.String()
	if !strings.Contains(out, "evidence diff vs "+base+": new=") {
		t.Errorf("diff summary missing: %q", out)
	}
	if !strings.Contains(out, "  new: ptr_b0:") {
		t.Errorf("new sites must be listed: %q", out)
	}

	// A missing or malformed baseline keeps the usual exit classes.
	err = run([]string{"-diff", filepath.Join(dir, "nope.json"), "testdata/todolist.trace"}, io.Discard, io.Discard)
	if exitCode(err) != 2 {
		t.Errorf("missing baseline: exit = %d, want 2", exitCode(err))
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-diff", bad, "testdata/todolist.trace"}, io.Discard, io.Discard)
	if err == nil || exitCode(err) != 1 {
		t.Errorf("malformed baseline: err=%v exit=%d, want exit 1", err, exitCode(err))
	}
}

// TestEvidenceSinks smoke-tests the DOT and HTML outputs through the
// CLI (rendering itself is unit-tested in internal/provenance).
func TestEvidenceSinks(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "races.dot")
	html := filepath.Join(dir, "triage.html")
	args := []string{"-dot-out", dot, "-html-out", html, "testdata/todolist.trace"}
	if err := run(args, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	d, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(d, []byte("digraph provenance {")) {
		t.Errorf("dot output does not start a digraph: %.60q", d)
	}
	h, err := os.ReadFile(html)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(h, []byte("cafa triage report")) || !bytes.Contains(h, []byte("ptr_a0")) {
		t.Errorf("html report incomplete: %d bytes", len(h))
	}
}

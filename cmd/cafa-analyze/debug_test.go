package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
)

// freePort reserves an ephemeral port and releases it for reuse.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	_ = ln.Close()
	return port
}

// TestDebugAddrReleasesPort pins the graceful-shutdown contract of
// the -debug-addr listener: after run returns, its port must be
// immediately bindable again (the deferred context-scoped Shutdown
// released it; a leaked listener would make the rebind fail).
func TestDebugAddrReleasesPort(t *testing.T) {
	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	var buf bytes.Buffer
	if err := run([]string{"-debug-addr", addr, "testdata/zxing.trace"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port %d still held after run returned: %v", port, err)
	}
	_ = ln.Close()
}

// TestDebugAddrBindFailure checks that an unbindable address is a
// clean error, not a hang or a panic.
func TestDebugAddrBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = run([]string{"-debug-addr", ln.Addr().String(), "testdata/zxing.trace"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("run bound an already-taken port; want an error")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cafa/internal/apps"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// writeAppFixtures records all ten application models (scale 32, seed
// 1) into dir as binary .trace files and returns their paths in app
// registry order.
func writeAppFixtures(t *testing.T, dir string) []string {
	t.Helper()
	paths := make([]string, 0, len(apps.Registry))
	for _, spec := range apps.Registry {
		col := trace.NewCollector()
		out, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, 32)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Sys.Run(); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, strings.ToLower(spec.Name)+".trace")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := col.T.Encode(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return paths
}

// elapsedRE strips the wall-clock column from progress lines.
var elapsedRE = regexp.MustCompile(`elapsed [^)]+\)`)

// TestProgressDeterministicSerial locks the -progress stream shape:
// under -j 1 the lines arrive in input order with ascending N/M
// counters, and two runs are identical up to the elapsed column.
func TestProgressDeterministicSerial(t *testing.T) {
	inputs := []string{"testdata/zxing.trace", "testdata/todolist.trace"}
	capture := func() string {
		var out, errBuf bytes.Buffer
		if err := run(append([]string{"-progress", "-j", "1"}, inputs...), &out, &errBuf); err != nil {
			t.Fatal(err)
		}
		return elapsedRE.ReplaceAllString(errBuf.String(), "elapsed X)")
	}
	first := capture()
	lines := strings.Split(strings.TrimSuffix(first, "\n"), "\n")
	if len(lines) != len(inputs) {
		t.Fatalf("got %d progress lines, want %d:\n%s", len(lines), len(inputs), first)
	}
	for i, line := range lines {
		want := regexp.MustCompile(fmt.Sprintf(
			`^progress: %d/%d %s: races=\d+ \(total \d+, elapsed X\)$`,
			i+1, len(inputs), regexp.QuoteMeta(inputs[i])))
		if !want.MatchString(line) {
			t.Errorf("line %d = %q, want match %v", i, line, want)
		}
	}
	if second := capture(); second != first {
		t.Errorf("-j 1 progress stream not deterministic:\n--- first\n%s--- second\n%s", first, second)
	}
}

// TestProgressParallelCompletes checks the stream under parallelism:
// every input gets exactly one line and the done counter ends at M/M.
func TestProgressParallelCompletes(t *testing.T) {
	inputs := []string{"testdata/zxing.trace", "testdata/todolist.trace"}
	var out, errBuf bytes.Buffer
	if err := run(append([]string{"-progress", "-j", "4"}, inputs...), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(errBuf.String()), "\n")
	if len(lines) != len(inputs) {
		t.Fatalf("got %d progress lines, want %d:\n%s", len(lines), len(inputs), errBuf.String())
	}
	if !strings.Contains(lines[len(lines)-1], fmt.Sprintf("progress: %d/%d ", len(inputs), len(inputs))) {
		t.Errorf("final line lacks %d/%d: %q", len(inputs), len(inputs), lines[len(lines)-1])
	}
	for _, in := range inputs {
		if !strings.Contains(errBuf.String(), in+": races=") {
			t.Errorf("no progress line for %s:\n%s", in, errBuf.String())
		}
	}
}

// TestErrorReportingAndExitCodes covers the two failure classes: a
// missing input is an I/O error (exit 2), a malformed input is a
// decode error (exit 1); both name the failing path.
func TestErrorReportingAndExitCodes(t *testing.T) {
	dir := t.TempDir()

	missing := filepath.Join(dir, "nope.trace")
	err := run([]string{missing}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("missing input: want error")
	}
	if !strings.Contains(err.Error(), missing) {
		t.Errorf("missing-input error does not name the path: %v", err)
	}
	if got := exitCode(err); got != 2 {
		t.Errorf("missing input: exit code %d, want 2", got)
	}

	garbage := filepath.Join(dir, "garbage.trace")
	if err := os.WriteFile(garbage, []byte("CAFA-TEXT 1\nnot a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{garbage}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("garbage input: want error")
	}
	if !strings.Contains(err.Error(), garbage) || !strings.Contains(err.Error(), "decode") {
		t.Errorf("decode error should name the path and the phase: %v", err)
	}
	if got := exitCode(err); got != 1 {
		t.Errorf("garbage input: exit code %d, want 1", got)
	}

	// Batch mode: a good file plus a bad one still names the bad one.
	err = run([]string{"testdata/zxing.trace", garbage}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), garbage) {
		t.Errorf("batch error should name the failing input: %v", err)
	}

	var ie *inputError
	if !errors.As(err, &ie) || ie.class != classDecode {
		t.Errorf("batch decode failure should be an inputError{classDecode}, got %v", err)
	}
}

// chromeTrace mirrors the trace-event JSON for shape assertions.
type chromeTrace struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceOutShapeTenApps is the acceptance check: a batch run over
// the ten app fixtures with -j 4 -trace-out produces a valid Chrome
// trace-event file whose per-trace "analyze" spans sit on distinct
// tracks (concurrent rows in Perfetto) and nest the pipeline's pass
// spans.
func TestTraceOutShapeTenApps(t *testing.T) {
	dir := t.TempDir()
	writeAppFixtures(t, dir)
	out := filepath.Join(dir, "obs-trace.json")
	var buf bytes.Buffer
	if err := run([]string{"-j", "4", "-trace-out", out, dir}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatalf("trace-out is not valid JSON: %v", err)
	}
	if ct.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", ct.DisplayTimeUnit)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	analyzeTracks := map[int]string{}
	names := map[string]int{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("unexpected phase %q in %+v", ev.Ph, ev)
		}
		if ev.Ts < 0 || ev.Dur < 0 || ev.Pid != 1 || ev.Tid <= 0 {
			t.Fatalf("malformed event %+v", ev)
		}
		names[ev.Name]++
		if ev.Name == "analyze" {
			if prev, dup := analyzeTracks[ev.Tid]; dup {
				t.Errorf("per-trace spans share track %d: %q and %q", ev.Tid, prev, ev.Args["file"])
			}
			analyzeTracks[ev.Tid] = ev.Args["file"]
			if ev.Args["file"] == "" {
				t.Errorf("analyze span missing file attr: %+v", ev)
			}
		}
	}
	if got := names["analyze"]; got != len(apps.Registry) {
		t.Errorf("got %d analyze spans, want %d", got, len(apps.Registry))
	}
	// The golden shape: every phase of the pipeline appears, ten times.
	for _, phase := range []string{"decode", "hb.prescan", "hb.graph", "hb.conventional", "lockset", "detect"} {
		if names[phase] != len(apps.Registry) {
			t.Errorf("span %q appears %d times, want %d", phase, names[phase], len(apps.Registry))
		}
	}
}

// TestMetricsSummaryAppended checks -metrics appends the summary
// table with live pipeline counters after the report.
func TestMetricsSummaryAppended(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-metrics", "testdata/zxing.trace"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	idx := strings.Index(out, "--- metrics ---")
	if idx < 0 {
		t.Fatalf("no metrics table in output:\n%s", out)
	}
	if !strings.Contains(out, "use-free races:") || idx < strings.Index(out, "use-free races:") {
		t.Error("metrics table should follow the race report")
	}
	for _, metric := range []string{"analysis_traces_analyzed_total", "detect_candidates_total", "hb_builds_total"} {
		if !strings.Contains(out[idx:], metric) {
			t.Errorf("metrics table missing %s:\n%s", metric, out[idx:])
		}
	}
}

// TestDebugAddrServes checks the -debug-addr listener comes up and
// does not disturb the report. The listener lives only for the run,
// so we just verify startup on a free port succeeds and the report is
// unchanged versus a plain run.
func TestDebugAddrServes(t *testing.T) {
	var plain, withDebug bytes.Buffer
	if err := run([]string{"-json", "testdata/zxing.trace"}, &plain, io.Discard); err != nil {
		t.Fatal(err)
	}
	var stderrBuf bytes.Buffer
	if err := run([]string{"-json", "-debug-addr", "127.0.0.1:0", "testdata/zxing.trace"}, &withDebug, &stderrBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), withDebug.Bytes()) {
		t.Error("-debug-addr changed the report")
	}
	if !strings.Contains(stderrBuf.String(), "debug listener on http://127.0.0.1:") {
		t.Errorf("no listener banner on stderr: %q", stderrBuf.String())
	}
}

package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cafa/internal/apps"
	"cafa/internal/service"
	"cafa/internal/service/api"
	"cafa/internal/service/client"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// diffScale keeps the ten recordings fast while leaving every planted
// race in place (scale divides benign filler only).
const diffScale = 8

// TestServeDifferential is the service's correctness proof: for every
// app in the ten-app suite, the report and evidence bundle served by
// cafa-serve must be byte-identical to what `cafa-analyze -json
// -evidence-out` writes for the same trace file. The rendering code
// is shared (internal/report), so any divergence here means the
// service pipeline drifted from the batch pipeline.
func TestServeDifferential(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	c := client.New(ts.URL)

	dir := t.TempDir()
	for _, spec := range apps.Registry {
		col := trace.NewCollector()
		b, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, diffScale)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Sys.Run(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, strings.ToLower(spec.Name)+".trace")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := col.T.Encode(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		t.Run(spec.Name, func(t *testing.T) {
			// Batch CLI: report on stdout, evidence to a file.
			evPath := filepath.Join(dir, strings.ToLower(spec.Name)+".evidence.json")
			var cliReport bytes.Buffer
			if err := run([]string{"-json", "-evidence-out", evPath, path}, &cliReport, io.Discard); err != nil {
				t.Fatal(err)
			}
			cliEvidence, err := os.ReadFile(evPath)
			if err != nil {
				t.Fatal(err)
			}

			// Service: submit the same bytes under the same label.
			j, err := c.SubmitFile(path, "")
			if err != nil {
				t.Fatal(err)
			}
			j, err = c.Wait(j.ID, time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			if j.State != api.StateDone {
				t.Fatalf("job = %+v", j)
			}
			srvReport, err := c.Report(j.ID)
			if err != nil {
				t.Fatal(err)
			}
			srvEvidence, err := c.Evidence(j.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cliReport.Bytes(), srvReport) {
				t.Errorf("report bytes diverge (cli %d, serve %d):\n%s",
					cliReport.Len(), len(srvReport), firstDiff(cliReport.Bytes(), srvReport))
			}
			if !bytes.Equal(cliEvidence, srvEvidence) {
				t.Errorf("evidence bytes diverge (cli %d, serve %d):\n%s",
					len(cliEvidence), len(srvEvidence), firstDiff(cliEvidence, srvEvidence))
			}
		})
	}
}

// firstDiff renders the first divergent region of two byte slices.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+40, i+40
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return fmt.Sprintf("at byte %d:\n  cli:   %q\n  serve: %q", i, a[lo:hiA], b[lo:hiB])
		}
	}
	return fmt.Sprintf("one is a prefix of the other (lengths %d vs %d)", len(a), len(b))
}

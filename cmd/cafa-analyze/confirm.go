package main

// The -confirm flag wires internal/replay into the batch path: after
// the text report, each input whose file base name matches a
// registered app model (internal/apps) has its reported races
// adversarially re-executed, and the outcome is appended as
// `confirmed:` / `not-reproduced:` lines. Inputs that do not name an
// app model are skipped with a note — confirmation needs the app's
// builder, not just its trace.

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"cafa/internal/apps"
	"cafa/internal/provenance"
	"cafa/internal/replay"
	"cafa/internal/report"
)

// confirmScale divides the benign filler volume when rebuilding apps
// for replay (the planted scenarios are unaffected); same choice as
// cafa-bench -validate.
const confirmScale = 100

// emitConfirm appends the replay-confirmation section to the text
// report.
func emitConfirm(w io.Writer, reports []*report.FileReport) error {
	fmt.Fprintf(w, "\n=== replay confirmation (adversarial re-execution) ===\n")
	for _, rep := range reports {
		base := strings.TrimSuffix(filepath.Base(rep.File), filepath.Ext(rep.File))
		spec, ok := apps.ByName(base)
		if !ok {
			fmt.Fprintf(w, "%s: no registered app model %q; skipped\n", rep.File, base)
			continue
		}
		fmt.Fprintf(w, "%s: replaying %d race(s) against the %s model\n",
			rep.File, len(rep.Result.Races), spec.Name)
		build := apps.ReplayBuilder(spec, confirmScale)
		for _, r := range rep.Result.Races {
			use := rep.Trace.MethodName(r.Use.Method)
			site := provenance.SiteString(rep.Trace, r.Key())
			conf, err := replay.Confirm(build, use, replay.Options{})
			if err != nil {
				return fmt.Errorf("confirm %s: %w", rep.File, err)
			}
			if conf != nil {
				fmt.Fprintf(w, "  confirmed: %s (delay %dms, seed %d: %v)\n",
					site, conf.DelayMs, conf.Seed, conf.Crash.Err)
			} else {
				fmt.Fprintf(w, "  not-reproduced: %s\n", site)
			}
		}
	}
	return nil
}

// Command cafa-analyze is the offline half of the CAFA pipeline: it
// reads a recorded trace, builds the event-driven causality model,
// and reports use-free races (§4).
//
// Usage:
//
//	cafa-analyze -i mytracks.trace [-naive] [-keep-dups] [-json]
//	             [-stats] [-explain] [-context]
//	             [-no-ifguard] [-no-intra-alloc] [-no-lockset]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cafa/internal/detect"
	"cafa/internal/hb"
	"cafa/internal/lockset"
	"cafa/internal/trace"
)

func main() {
	var (
		in       = flag.String("i", "", "input trace file")
		naive    = flag.Bool("naive", false, "also run the low-level conflicting-access baseline")
		keepDups = flag.Bool("keep-dups", false, "report every dynamic race instance")
		noGuard  = flag.Bool("no-ifguard", false, "disable the if-guard heuristic")
		noAlloc  = flag.Bool("no-intra-alloc", false, "disable the intra-event-allocation heuristic")
		noLocks  = flag.Bool("no-lockset", false, "disable the lockset mutual-exclusion filter")
		stats    = flag.Bool("stats", false, "print pipeline statistics")
		explain  = flag.Bool("explain", false, "for each race, show why the conventional model hides it")
		context  = flag.Bool("context", false, "print calling contexts for each race")
		asJSON   = flag.Bool("json", false, "emit the race report as JSON")
	)
	flag.Parse()
	if *in == "" {
		fail("missing -i <trace file>")
	}
	f, err := os.Open(*in)
	if err != nil {
		fail("%v", err)
	}
	tr, err := trace.Decode(f)
	f.Close()
	if err != nil {
		fail("decode: %v", err)
	}
	if err := tr.Validate(); err != nil {
		fail("trace validation: %v", err)
	}

	g, err := hb.Build(tr, hb.Options{})
	if err != nil {
		fail("causality model: %v", err)
	}
	conv, err := hb.Build(tr, hb.Options{Conventional: true})
	if err != nil {
		fail("conventional model: %v", err)
	}
	ls, err := lockset.Compute(tr)
	if err != nil {
		fail("locksets: %v", err)
	}
	res, err := detect.Detect(detect.Input{Trace: tr, Graph: g, Conventional: conv, Locks: ls},
		detect.Options{
			DisableIfGuard:         *noGuard,
			DisableIntraEventAlloc: *noAlloc,
			DisableLockset:         *noLocks,
			KeepDuplicates:         *keepDups,
		})
	if err != nil {
		fail("detect: %v", err)
	}

	if *asJSON {
		emitJSON(tr, res)
		return
	}
	fmt.Printf("%s: %d events, %d entries\n", *in, tr.EventCount(), tr.Len())
	fmt.Printf("use-free races: %d\n", len(res.Races))
	var a, b, c int
	for _, r := range res.Races {
		fmt.Printf("  [%s] %s\n", r.Class, r.Describe(tr))
		if *context {
			fmt.Printf("    use context:  %s\n", detect.FormatStack(tr, detect.CallStack(tr, r.Use.DerefIdx)))
			fmt.Printf("    free context: %s\n", detect.FormatStack(tr, detect.CallStack(tr, r.Free.Idx)))
		}
		if *explain {
			if path := conv.Explain(r.Use.ReadIdx, r.Free.Idx); path != nil {
				fmt.Println("    conventional model would order use ≺ free via:")
				fmt.Println(indent(conv.FormatPath(path), "    "))
			} else if path := conv.Explain(r.Free.Idx, r.Use.ReadIdx); path != nil {
				fmt.Println("    conventional model would order free ≺ use via:")
				fmt.Println(indent(conv.FormatPath(path), "    "))
			} else {
				fmt.Println("    unordered in both models")
			}
		}
		switch r.Class {
		case detect.ClassIntraThread:
			a++
		case detect.ClassInterThread:
			b++
		case detect.ClassConventional:
			c++
		}
	}
	fmt.Printf("by class: intra-thread=%d inter-thread=%d conventional=%d\n", a, b, c)
	if *stats {
		st := res.Stats
		fmt.Printf("pipeline: uses=%d frees=%d allocs=%d candidates=%d\n",
			st.Uses, st.Frees, st.Allocs, st.Candidates)
		fmt.Printf("filtered: ordered=%d lockset=%d if-guard=%d intra-alloc=%d duplicates=%d\n",
			st.FilteredOrdered, st.FilteredLockset, st.FilteredIfGuard, st.FilteredIntraAlloc, st.Duplicates)
		gs := g.Stats()
		fmt.Printf("graph: nodes=%d base-edges=%d rule-edges=%d fixpoint-rounds=%d\n",
			gs.Nodes, gs.BaseEdges, gs.RuleEdges, gs.Rounds)
	}
	if *naive {
		nr := detect.Naive(g)
		fmt.Printf("low-level conflicting-access races (naive baseline): %d\n", len(nr))
	}
}

// raceJSON is the machine-readable race record.
type raceJSON struct {
	Class      string `json:"class"`
	Field      string `json:"field"`
	Var        string `json:"var"`
	UseTask    string `json:"useTask"`
	UseMethod  string `json:"useMethod"`
	UsePC      uint32 `json:"usePC"`
	UseStack   string `json:"useStack"`
	FreeTask   string `json:"freeTask"`
	FreeMethod string `json:"freeMethod"`
	FreePC     uint32 `json:"freePC"`
	FreeStack  string `json:"freeStack"`
}

func emitJSON(tr *trace.Trace, res *detect.Result) {
	out := struct {
		Events int          `json:"events"`
		Races  []raceJSON   `json:"races"`
		Stats  detect.Stats `json:"stats"`
	}{Events: tr.EventCount(), Races: []raceJSON{}, Stats: res.Stats}
	for _, r := range res.Races {
		out.Races = append(out.Races, raceJSON{
			Class:      r.Class.String(),
			Field:      tr.FieldName(r.Use.Var.Field()),
			Var:        tr.VarName(r.Use.Var),
			UseTask:    tr.TaskName(r.Use.Task),
			UseMethod:  tr.MethodName(r.Use.Method),
			UsePC:      uint32(r.Use.DerefPC),
			UseStack:   detect.FormatStack(tr, detect.CallStack(tr, r.Use.DerefIdx)),
			FreeTask:   tr.TaskName(r.Free.Task),
			FreeMethod: tr.MethodName(r.Free.Method),
			FreePC:     uint32(r.Free.PC),
			FreeStack:  detect.FormatStack(tr, detect.CallStack(tr, r.Free.Idx)),
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cafa-analyze: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}

// Command cafa-analyze is the offline half of the CAFA pipeline: it
// reads recorded traces, builds the event-driven causality model, and
// reports use-free races (§4). It accepts one or more trace files
// and/or directories (directories expand to their *.trace files) and
// analyzes them in parallel, emitting one aggregated report.
//
// Usage:
//
//	cafa-analyze [-j N] [-naive] [-keep-dups] [-json]
//	             [-stats] [-explain] [-context]
//	             [-no-ifguard] [-no-intra-alloc] [-no-lockset]
//	             [-progress] [-metrics] [-trace-out file] [-debug-addr addr]
//	             [-evidence-out file] [-dot-out file] [-html-out file]
//	             [-diff baseline.json]
//	             trace-file|trace-dir ...
//
// The observability flags enable the internal/obs layer: -progress
// streams per-trace batch progress to stderr, -metrics appends the
// metric summary table, -trace-out writes a Chrome trace-event JSON
// (load it in Perfetto or chrome://tracing), and -debug-addr serves
// /metrics plus net/http/pprof for the duration of the run.
//
// The provenance flags attach an evidence collector to the detector
// (internal/provenance): -evidence-out writes the JSON evidence
// bundle (per-race causality verdicts and per-filtered-candidate
// prune witnesses), -dot-out writes per-race Graphviz causality
// subgraphs, -html-out writes the self-contained HTML triage report,
// and -diff compares the run's races against a baseline evidence
// bundle by code site, printing new/fixed/persisting counts. With
// -debug-addr, the triage report is also served live at /triage
// while the batch is still running.
//
// Exit codes: 1 for malformed inputs (decode/validation failures), 2
// for I/O failures (missing or unreadable inputs), 3 when -diff
// finds races not present in the baseline (report regression).
//
// The legacy single-input form `cafa-analyze -i app.trace` still
// works.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cafa/internal/analysis"
	"cafa/internal/buildinfo"
	"cafa/internal/detect"
	"cafa/internal/obs"
	"cafa/internal/provenance"
	"cafa/internal/report"
	"cafa/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "cafa-analyze: %v\n", err)
		os.Exit(exitCode(err))
	}
}

// errClass partitions input failures for exit-code reporting.
type errClass uint8

const (
	classIO     errClass = iota // missing/unreadable input → exit 2
	classDecode                 // malformed input → exit 1
)

func (c errClass) String() string {
	if c == classIO {
		return "read"
	}
	return "decode"
}

// inputError tags a failing input with its path and failure class, so
// batch runs always name the offending file and the caller can tell
// "the file is unreadable" from "the file is not a trace".
type inputError struct {
	path  string
	class errClass
	err   error
}

func (e *inputError) Error() string { return fmt.Sprintf("%s: %s: %v", e.path, e.class, e.err) }
func (e *inputError) Unwrap() error { return e.err }

// regressionError reports that -diff found races absent from the
// baseline bundle.
type regressionError struct{ n int }

func (e *regressionError) Error() string {
	return fmt.Sprintf("report regression: %d race site(s) not in the baseline", e.n)
}

// exitCode maps an error to the process exit code: 3 for a -diff
// report regression, 2 for I/O failures, 1 for everything else
// (decode errors, usage errors).
func exitCode(err error) int {
	var re *regressionError
	if errors.As(err, &re) {
		return 3
	}
	var ie *inputError
	if errors.As(err, &ie) && ie.class == classIO {
		return 2
	}
	return 1
}

// config carries the parsed command line.
type config struct {
	inputs    []string
	version   bool
	confirm   bool
	workers   int
	naive     bool
	keepDups  bool
	noGuard   bool
	noAlloc   bool
	noLocks   bool
	stats     bool
	explain   bool
	context   bool
	asJSON    bool
	stream    bool
	progress  bool
	metrics   bool
	traceOut  string
	debugAddr string

	evidenceOut string
	dotOut      string
	htmlOut     string
	diff        string
	// live is the /triage handler, wired by run when both the debug
	// listener and evidence collection are active.
	live *provenance.LiveTriage
}

// wantObs reports whether any flag needs the obs layer enabled.
func (c *config) wantObs() bool {
	return c.progress || c.metrics || c.traceOut != "" || c.debugAddr != ""
}

// wantEvidence reports whether any flag needs the provenance
// collector attached. The debug listener always serves /triage, so
// it implies evidence too.
func (c *config) wantEvidence() bool {
	return c.evidenceOut != "" || c.dotOut != "" || c.htmlOut != "" ||
		c.diff != "" || c.debugAddr != ""
}

func parseArgs(args []string) (*config, error) {
	fs := flag.NewFlagSet("cafa-analyze", flag.ContinueOnError)
	var (
		in        = fs.String("i", "", "input trace file (legacy; positional arguments are preferred)")
		version   = fs.Bool("version", false, "print version and exit")
		confirm   = fs.Bool("confirm", false, "adversarially replay reported races on inputs named after registered app models")
		workers   = fs.Int("j", 0, "trace-level parallelism (0 = GOMAXPROCS)")
		naive     = fs.Bool("naive", false, "also run the low-level conflicting-access baseline")
		keepDups  = fs.Bool("keep-dups", false, "report every dynamic race instance")
		noGuard   = fs.Bool("no-ifguard", false, "disable the if-guard heuristic")
		noAlloc   = fs.Bool("no-intra-alloc", false, "disable the intra-event-allocation heuristic")
		noLocks   = fs.Bool("no-lockset", false, "disable the lockset mutual-exclusion filter")
		stats     = fs.Bool("stats", false, "print pipeline statistics")
		explain   = fs.Bool("explain", false, "for each race, show why the conventional model hides it")
		context   = fs.Bool("context", false, "print calling contexts for each race")
		asJSON    = fs.Bool("json", false, "emit the race report as JSON")
		stream    = fs.Bool("stream", false, "analyze each trace while decoding it, in bounded memory (incompatible with flags that need the materialized trace)")
		progress  = fs.Bool("progress", false, "stream per-trace progress lines to stderr in batch mode")
		metrics   = fs.Bool("metrics", false, "append the obs metric summary table to the report")
		traceOut  = fs.String("trace-out", "", "write a Chrome trace-event JSON of the run to this file")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /debug/pprof and /triage on this address during the run")

		evidenceOut = fs.String("evidence-out", "", "write the JSON race-evidence bundle to this file")
		dotOut      = fs.String("dot-out", "", "write per-race Graphviz causality subgraphs to this file")
		htmlOut     = fs.String("html-out", "", "write the HTML triage report to this file")
		diff        = fs.String("diff", "", "compare race sites against this baseline evidence bundle (exit 3 on new races)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *version {
		return &config{version: true}, nil
	}
	var raw []string
	if *in != "" {
		raw = append(raw, *in)
	}
	raw = append(raw, fs.Args()...)
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing input: pass trace files/directories (or legacy -i <trace file>)")
	}
	inputs, err := expandInputs(raw)
	if err != nil {
		return nil, err
	}
	if *stream {
		switch {
		case *explain:
			return nil, fmt.Errorf("-stream discards trace entries; -explain needs them (drop one)")
		case *naive:
			return nil, fmt.Errorf("-stream discards trace entries; -naive needs them (drop one)")
		case *evidenceOut != "" || *dotOut != "" || *htmlOut != "" || *diff != "" || *debugAddr != "":
			return nil, fmt.Errorf("-stream discards trace entries; the evidence flags (-evidence-out, -dot-out, -html-out, -diff, -debug-addr) need them (drop one)")
		}
	}
	return &config{
		inputs:  inputs,
		confirm: *confirm,
		workers: *workers,
		naive:   *naive, keepDups: *keepDups,
		noGuard: *noGuard, noAlloc: *noAlloc, noLocks: *noLocks,
		stats: *stats, explain: *explain, context: *context, asJSON: *asJSON, stream: *stream,
		progress: *progress, metrics: *metrics, traceOut: *traceOut, debugAddr: *debugAddr,
		evidenceOut: *evidenceOut, dotOut: *dotOut, htmlOut: *htmlOut, diff: *diff,
	}, nil
}

// expandInputs resolves directories to their *.trace files (sorted)
// and keeps files as-is.
func expandInputs(raw []string) ([]string, error) {
	var out []string
	for _, p := range raw {
		st, err := os.Stat(p)
		if err != nil {
			return nil, &inputError{path: p, class: classIO, err: err}
		}
		if !st.IsDir() {
			out = append(out, p)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(p, "*.trace"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("%s: directory contains no *.trace files", p)
		}
		sort.Strings(matches)
		out = append(out, matches...)
	}
	return out, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	cfg, err := parseArgs(args)
	if err != nil {
		return err
	}
	if cfg.version {
		fmt.Fprintln(stdout, buildinfo.String("cafa-analyze"))
		return nil
	}
	if cfg.wantObs() {
		obs.Enable()
		defer func() {
			obs.Disable()
			obs.Reset()
		}()
	}
	if cfg.debugAddr != "" {
		cfg.live = provenance.NewLiveTriage()
		ds, err := obs.ServeDebug(cfg.debugAddr, obs.Route{Pattern: "/triage", Handler: cfg.live})
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer ds.ShutdownOnExit()
		fmt.Fprintf(stderr, "cafa-analyze: debug listener on http://%s (/metrics, /debug/pprof/, /triage)\n", ds.Addr())
	}
	if cfg.progress {
		cancel := obs.Subscribe(newProgress(stderr, len(cfg.inputs)).span)
		defer cancel()
	}
	reports, err := analyzeFiles(cfg)
	if err != nil {
		return err
	}
	if cfg.traceOut != "" {
		if err := writeTraceEvents(cfg.traceOut); err != nil {
			return err
		}
	}
	if cfg.asJSON {
		if cfg.confirm {
			return fmt.Errorf("-confirm annotates the text report; drop -json")
		}
		if err := report.RenderJSON(stdout, reports); err != nil {
			return err
		}
	} else {
		if err := emitText(stdout, cfg, reports); err != nil {
			return err
		}
		if cfg.confirm {
			if err := emitConfirm(stdout, reports); err != nil {
				return err
			}
		}
	}
	var diffErr error
	if cfg.wantEvidence() {
		bundle := report.BuildBundle(reports)
		if err := writeEvidenceOutputs(cfg, bundle); err != nil {
			return err
		}
		if cfg.diff != "" {
			d, err := diffBaseline(cfg.diff, bundle)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, d.Format())
			if d.HasNew() {
				diffErr = &regressionError{n: len(d.New)}
			}
		}
	}
	if cfg.metrics {
		if err := obs.WriteSummary(stdout); err != nil {
			return err
		}
	}
	return diffErr
}

// writeEvidenceOutputs renders the bundle to every requested sink.
func writeEvidenceOutputs(cfg *config, b *provenance.Bundle) error {
	emit := func(path, what string, render func(io.Writer, *provenance.Bundle) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("%s: %w", what, err)
		}
		if err := render(f, b); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", what, err)
		}
		return f.Close()
	}
	if err := emit(cfg.evidenceOut, "evidence-out", func(w io.Writer, b *provenance.Bundle) error {
		return b.WriteJSON(w)
	}); err != nil {
		return err
	}
	if err := emit(cfg.dotOut, "dot-out", provenance.WriteDOT); err != nil {
		return err
	}
	return emit(cfg.htmlOut, "html-out", provenance.WriteHTML)
}

// diffBaseline loads the baseline bundle and diffs the run against
// it by race site.
func diffBaseline(path string, cur *provenance.Bundle) (*provenance.DiffResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &inputError{path: path, class: classIO, err: err}
	}
	defer f.Close()
	base, err := provenance.ReadBundle(f)
	if err != nil {
		return nil, &inputError{path: path, class: classDecode, err: err}
	}
	return provenance.Diff(base, cur, path), nil
}

// writeTraceEvents dumps the recorded span stream as Chrome
// trace-event JSON.
func writeTraceEvents(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := obs.WriteTraceEvents(f); err != nil {
		f.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	return f.Close()
}

// analyzeFiles decodes and analyzes every input under the bounded
// worker pool, preserving input order. Each input runs under one
// "analyze" obs span (decode child, then the pipeline's pass spans),
// which is what the -progress stream and -trace-out timeline key on.
func analyzeFiles(cfg *config) ([]*report.FileReport, error) {
	p := analysis.New(analysis.Options{
		Detect: detect.Options{
			DisableIfGuard:         cfg.noGuard,
			DisableIntraEventAlloc: cfg.noAlloc,
			DisableLockset:         cfg.noLocks,
			KeepDuplicates:         cfg.keepDups,
		},
		Naive:    cfg.naive,
		Evidence: cfg.wantEvidence(),
		Workers:  cfg.workers,
	})
	reports := make([]*report.FileReport, len(cfg.inputs))
	errs := make([]error, len(cfg.inputs))
	analysis.ForEach(cfg.workers, len(cfg.inputs), func(i int) {
		path := cfg.inputs[i]
		sp := obs.Start("analyze", obs.String("file", path), obs.Int("idx", i))
		defer sp.End()
		if cfg.stream {
			res, err := streamTrace(p, path, sp)
			if err != nil {
				sp.SetAttr(obs.String("error", err.Error()))
				errs[i] = err
				return
			}
			reports[i] = &report.FileReport{File: path, Trace: res.Trace, Result: res}
			return
		}
		spDec := sp.Child("decode")
		tr, err := loadTrace(path)
		spDec.End()
		if err != nil {
			sp.SetAttr(obs.String("error", err.Error()))
			errs[i] = err
			return
		}
		res, err := p.AnalyzeSpanned(tr, sp)
		if err != nil {
			sp.SetAttr(obs.String("error", err.Error()))
			errs[i] = fmt.Errorf("%s: %w", path, err)
			return
		}
		reports[i] = &report.FileReport{File: path, Trace: tr, Result: res}
		if cfg.live != nil && res.Evidence != nil {
			in := res.Evidence.Bundle(path)
			in.Stats = res.Stats
			cfg.live.Add(in, res.Stats)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}

// streamTrace analyzes path through the streaming pipeline: decoding,
// validation, and the per-event passes advance together, so the trace
// entries are never materialized. The result is identical to the
// batch path for the same file.
func streamTrace(p *analysis.Pipeline, path string, sp *obs.Span) (*analysis.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &inputError{path: path, class: classIO, err: err}
	}
	defer f.Close()
	res, err := p.AnalyzeStreamSpanned(f, sp)
	if err != nil {
		return nil, &inputError{path: path, class: classDecode, err: err}
	}
	return res, nil
}

func loadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &inputError{path: path, class: classIO, err: err}
	}
	defer f.Close()
	tr, err := trace.DecodeAuto(f)
	if err != nil {
		return nil, &inputError{path: path, class: classDecode, err: err}
	}
	if err := tr.Validate(); err != nil {
		return nil, &inputError{path: path, class: classDecode, err: fmt.Errorf("trace validation: %w", err)}
	}
	return tr, nil
}

func emitText(w io.Writer, cfg *config, reports []*report.FileReport) error {
	var agg struct {
		races, a, b, c, naive int
		stats                 detect.Stats
	}
	for _, rep := range reports {
		tr, res := rep.Trace, rep.Result
		fmt.Fprintf(w, "%s: %d events, %d entries\n", rep.File, tr.EventCount(), tr.Len())
		fmt.Fprintf(w, "use-free races: %d\n", len(res.Races))
		var a, b, c int
		for _, r := range res.Races {
			fmt.Fprintf(w, "  [%s] %s\n", r.Class, r.Describe(tr))
			if cfg.context {
				fmt.Fprintf(w, "    use context:  %s\n", detect.FormatStack(tr, res.StackAt(r.Use.DerefIdx)))
				fmt.Fprintf(w, "    free context: %s\n", detect.FormatStack(tr, res.StackAt(r.Free.Idx)))
			}
			if cfg.explain {
				v := provenance.ExplainConv(res.Conventional, r.Use.ReadIdx, r.Free.Idx)
				fmt.Fprintln(w, v.Format(res.Conventional, "    "))
			}
			switch r.Class {
			case detect.ClassIntraThread:
				a++
			case detect.ClassInterThread:
				b++
			case detect.ClassConventional:
				c++
			}
		}
		fmt.Fprintf(w, "by class: intra-thread=%d inter-thread=%d conventional=%d\n", a, b, c)
		if cfg.stats {
			st := res.Stats
			fmt.Fprintf(w, "pipeline: uses=%d frees=%d allocs=%d candidates=%d\n",
				st.Uses, st.Frees, st.Allocs, st.Candidates)
			fmt.Fprintf(w, "filtered: ordered=%d lockset=%d if-guard=%d intra-alloc=%d static-guard=%d static-order=%d duplicates=%d\n",
				st.FilteredOrdered, st.FilteredLockset, st.FilteredIfGuard, st.FilteredIntraAlloc, st.FilteredStaticGuard, st.FilteredStaticOrder, st.Duplicates)
			gs := res.GraphStats
			fmt.Fprintf(w, "graph: nodes=%d base-edges=%d rule-edges=%d fixpoint-rounds=%d\n",
				gs.Nodes, gs.BaseEdges, gs.RuleEdges, gs.Rounds)
		}
		if cfg.naive {
			fmt.Fprintf(w, "low-level conflicting-access races (naive baseline): %d\n", len(res.Naive))
		}
		agg.races += len(res.Races)
		agg.a += a
		agg.b += b
		agg.c += c
		agg.naive += len(res.Naive)
		agg.stats.Add(res.Stats)
	}
	if len(reports) > 1 {
		fmt.Fprintf(w, "\n=== aggregate over %d traces ===\n", len(reports))
		fmt.Fprintf(w, "use-free races: %d\n", agg.races)
		fmt.Fprintf(w, "by class: intra-thread=%d inter-thread=%d conventional=%d\n", agg.a, agg.b, agg.c)
		if cfg.stats {
			st := agg.stats
			fmt.Fprintf(w, "pipeline: uses=%d frees=%d allocs=%d candidates=%d\n",
				st.Uses, st.Frees, st.Allocs, st.Candidates)
			fmt.Fprintf(w, "filtered: ordered=%d lockset=%d if-guard=%d intra-alloc=%d static-guard=%d static-order=%d duplicates=%d\n",
				st.FilteredOrdered, st.FilteredLockset, st.FilteredIfGuard, st.FilteredIntraAlloc, st.FilteredStaticGuard, st.FilteredStaticOrder, st.Duplicates)
		}
		if cfg.naive {
			fmt.Fprintf(w, "low-level conflicting-access races (naive baseline): %d\n", agg.naive)
		}
	}
	return nil
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}

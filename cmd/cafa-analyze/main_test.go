package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenMultiJSON locks the -json aggregation format over multiple
// inputs. Fixtures are committed traces (cafa-trace, ZXing at scale 32
// and ToDoList at scale 100, seed 1); regenerate the golden file with
// `go test ./cmd/cafa-analyze -update` after an intentional change.
func TestGoldenMultiJSON(t *testing.T) {
	args := []string{"-json", "testdata/zxing.trace", "testdata/todolist.trace"}
	var buf bytes.Buffer
	if err := run(args, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_multi.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output diverges from %s (run with -update to regenerate)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

// TestMultiJSONWorkerIndependence proves the report is byte-identical
// regardless of decode/analysis parallelism.
func TestMultiJSONWorkerIndependence(t *testing.T) {
	inputs := []string{"testdata/zxing.trace", "testdata/todolist.trace"}
	var serial bytes.Buffer
	if err := run(append([]string{"-json", "-j", "1"}, inputs...), &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, j := range []string{"2", "8"} {
		var buf bytes.Buffer
		if err := run(append([]string{"-json", "-j", j}, inputs...), &buf, io.Discard); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial.Bytes(), buf.Bytes()) {
			t.Errorf("-j %s output differs from -j 1", j)
		}
	}
}

// TestDirectoryInput checks that a directory argument expands to its
// *.trace files in sorted order.
func TestDirectoryInput(t *testing.T) {
	var fromDir bytes.Buffer
	if err := run([]string{"-json", "testdata"}, &fromDir, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Sorted order: todolist.trace before zxing.trace.
	var explicit bytes.Buffer
	if err := run([]string{"-json", "testdata/todolist.trace", "testdata/zxing.trace"}, &explicit, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromDir.Bytes(), explicit.Bytes()) {
		t.Error("directory input differs from the equivalent explicit file list")
	}

	empty := t.TempDir()
	if err := run([]string{"-json", empty}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("empty directory: want error, got nil")
	}
}

// TestGoldenExplain locks the -explain rendering (why the conventional
// model hides each race) on the committed ZXing fixture; regenerate
// with `go test ./cmd/cafa-analyze -update`.
func TestGoldenExplain(t *testing.T) {
	args := []string{"-explain", "-stats", "testdata/zxing.trace"}
	var buf bytes.Buffer
	if err := run(args, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_explain.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-explain output diverges from %s (run with -update to regenerate)\n--- got\n%s",
			golden, buf.String())
	}
}

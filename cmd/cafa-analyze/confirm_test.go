package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenConfirm locks the -confirm section: the adversarial
// replay of the committed ZXing fixture is deterministic (fixed seed
// grid and delay set), so its confirmed/not-reproduced lines are
// golden-testable like any other report. Regenerate with
// `go test ./cmd/cafa-analyze -update`.
func TestGoldenConfirm(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-confirm", "testdata/zxing.trace"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_confirm.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-confirm output diverges from %s (run with -update to regenerate)\n--- got ---\n%s",
			golden, buf.String())
	}
	if !strings.Contains(buf.String(), "confirmed:") {
		t.Error("no confirmed: lines; the ZXing model plants reproducible NPE races")
	}
}

// TestConfirmSkipsNonAppInputs checks the graceful path for traces
// whose file name matches no registered app model.
func TestConfirmSkipsNonAppInputs(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile("testdata/zxing.trace")
	if err != nil {
		t.Fatal(err)
	}
	anon := filepath.Join(dir, "mystery.trace")
	if err := os.WriteFile(anon, src, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-confirm", anon}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "skipped") {
		t.Errorf("non-app input not skipped:\n%s", buf.String())
	}
}

// TestConfirmRejectsJSON pins the flag conflict: -confirm annotates
// the text report only.
func TestConfirmRejectsJSON(t *testing.T) {
	err := run([]string{"-confirm", "-json", "testdata/zxing.trace"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("-confirm -json accepted; want an error")
	}
}

package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cafa/internal/synth"
)

// writeSynthFixtures records synthetic traces (one binary, one text)
// stressing shapes the app models keep small.
func writeSynthFixtures(t *testing.T, dir string) []string {
	t.Helper()
	var paths []string
	for i, cfg := range []synth.Config{
		{Chain: 4, EventsPer: 8, FreeThreads: 4},
		{Chain: 3, EventsPer: 6, FreeThreads: 3, Burst: 4, BurstEvents: 24},
	} {
		tr := synth.Trace(cfg)
		p := filepath.Join(dir, fmt.Sprintf("synth%d.trace", i))
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			err = tr.Encode(f)
		} else {
			err = tr.EncodeText(f)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return paths
}

// TestStreamDifferential is the streaming acceptance proof: on every
// app in the ten-app suite plus the synthetic shapes, `cafa-analyze
// -stream` must emit byte-identical output to the batch path for the
// text report, -stats, -context, and -json — streaming changes peak
// memory, never a single output byte.
func TestStreamDifferential(t *testing.T) {
	dir := t.TempDir()
	paths := writeAppFixtures(t, dir)
	paths = append(paths, writeSynthFixtures(t, dir)...)

	modes := [][]string{
		nil,
		{"-stats"},
		{"-context"},
		{"-json"},
		{"-stats", "-context", "-json"},
	}
	for _, path := range paths {
		base := strings.TrimSuffix(filepath.Base(path), ".trace")
		t.Run(base, func(t *testing.T) {
			for _, mode := range modes {
				var batch, stream bytes.Buffer
				if err := run(append(append([]string{}, mode...), path), &batch, io.Discard); err != nil {
					t.Fatalf("batch %v: %v", mode, err)
				}
				if err := run(append(append([]string{"-stream"}, mode...), path), &stream, io.Discard); err != nil {
					t.Fatalf("stream %v: %v", mode, err)
				}
				if !bytes.Equal(batch.Bytes(), stream.Bytes()) {
					t.Errorf("%v: output diverges:\n%s", mode, firstDiff(batch.Bytes(), stream.Bytes()))
				}
			}
		})
	}

	// Batch-of-many parity: all inputs in one invocation, with the
	// aggregate section, under parallelism.
	var batch, stream bytes.Buffer
	if err := run(append([]string{"-j", "4", "-stats"}, paths...), &batch, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-stream", "-j", "4", "-stats"}, paths...), &stream, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), stream.Bytes()) {
		t.Errorf("aggregate output diverges:\n%s", firstDiff(batch.Bytes(), stream.Bytes()))
	}
}

// TestStreamObsPassivity: enabling the obs layer during a streaming
// run (here via -trace-out) must not change a byte of the report —
// the streaming gauges and counters are observers, not participants.
func TestStreamObsPassivity(t *testing.T) {
	var plain, observed bytes.Buffer
	traceOut := filepath.Join(t.TempDir(), "events.json")
	if err := run([]string{"-stream", "-json", "testdata/zxing.trace"}, &plain, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-stream", "-json", "-trace-out", traceOut, "testdata/zxing.trace"}, &observed, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), observed.Bytes()) {
		t.Error("obs enablement changed the streaming report")
	}
	if st, err := os.Stat(traceOut); err != nil || st.Size() == 0 {
		t.Errorf("trace-out not written: %v", err)
	}
}

// TestStreamFlagConflicts: flags that need the materialized trace are
// rejected up front in streaming mode.
func TestStreamFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-stream", "-explain", "testdata/zxing.trace"},
		{"-stream", "-naive", "testdata/zxing.trace"},
		{"-stream", "-evidence-out", "x.json", "testdata/zxing.trace"},
		{"-stream", "-dot-out", "x.dot", "testdata/zxing.trace"},
		{"-stream", "-html-out", "x.html", "testdata/zxing.trace"},
		{"-stream", "-diff", "x.json", "testdata/zxing.trace"},
		{"-stream", "-debug-addr", "127.0.0.1:0", "testdata/zxing.trace"},
	} {
		err := run(args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), "-stream") {
			t.Errorf("%v: want a -stream conflict error, got %v", args, err)
		}
	}
	// -confirm and -metrics work fine with -stream (no entries needed).
	var buf bytes.Buffer
	if err := run([]string{"-stream", "-confirm", "-metrics", "testdata/zxing.trace"}, &buf, io.Discard); err != nil {
		t.Fatalf("-stream -confirm -metrics: %v", err)
	}
	if !strings.Contains(buf.String(), "replay confirmation") {
		t.Error("confirm section missing in streaming mode")
	}
}

// TestStreamErrorReporting: streaming failures carry the same path
// tagging and exit-code classes as batch decoding.
func TestStreamErrorReporting(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.trace")
	err := run([]string{"-stream", missing}, io.Discard, io.Discard)
	if err == nil || exitCode(err) != 2 {
		t.Errorf("missing input: err %v (exit %d), want exit 2", err, exitCode(err))
	}

	garbage := filepath.Join(dir, "garbage.trace")
	if err := os.WriteFile(garbage, []byte("CAFA-TEXT 1\nnot a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-stream", garbage}, io.Discard, io.Discard)
	if err == nil || exitCode(err) != 1 || !strings.Contains(err.Error(), garbage) {
		t.Errorf("garbage input: err %v (exit %d), want exit 1 naming the path", err, exitCode(err))
	}
}

package main

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"cafa/internal/obs"
)

// progress renders per-trace batch progress from the obs span stream:
// one stderr line per finished "analyze" span (N/M done, the file,
// its race count, races so far, elapsed wall-clock). The obs sink
// invokes subscribers serially under its lock, so no extra
// synchronization is needed and lines never interleave; under -j 1
// the spans finish in input order, making the stream deterministic up
// to the elapsed column.
type progress struct {
	w     io.Writer
	total int
	done  int
	races int
	t0    time.Time
}

func newProgress(w io.Writer, total int) *progress {
	return &progress{w: w, total: total, t0: time.Now()}
}

// span consumes one finished span (the obs.Subscribe callback).
func (p *progress) span(d obs.SpanData) {
	if d.Name != "analyze" {
		return
	}
	p.done++
	races := "-"
	if v := d.Attr("races"); v != "" {
		races = v
		if n, err := strconv.Atoi(v); err == nil {
			p.races += n
		}
	}
	if e := d.Attr("error"); e != "" {
		races = "error"
	}
	fmt.Fprintf(p.w, "progress: %d/%d %s: races=%s (total %d, elapsed %s)\n",
		p.done, p.total, d.Attr("file"), races, p.races,
		time.Since(p.t0).Round(time.Millisecond))
}

package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden runs cafa-lint and compares the output against a committed
// golden file (regenerate with `go test ./cmd/cafa-lint -update`).
func golden(t *testing.T, name string, args []string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output diverges from %s (run with -update to regenerate)\n--- got\n%s", path, buf.String())
	}
	return buf.String()
}

// TestGoldenZXingCrossCheck locks the cross-check report for ZXing
// against the committed fixture trace (recorded at scale 32, seed 1 —
// the program text is scale/seed-independent, so a fresh build pairs
// with it). The annotations are the acceptance property: every
// dynamically reported real pair is static-confirmed, the Type III
// plant is static-unmatched, and the benign plants carry their
// statically-guarded / alloc-safe classifications.
func TestGoldenZXingCrossCheck(t *testing.T) {
	out := golden(t, "golden_zxing.txt",
		[]string{"-app", "ZXing", "-trace", "../cafa-analyze/testdata/zxing.trace"})
	for _, want := range []string{
		"[static-confirmed]",
		"[static-unmatched] ptrB_f3x0",
		"[statically-guarded]",
		"[alloc-safe]",
		"coverage gaps (static pairs not dynamically reported): 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "[static-unmatched] ptr_b") {
		t.Error("a planted harmful pair came back static-unmatched")
	}
}

// TestGoldenToDoListCrossCheck is the second cross-check model:
// ToDoList's class-(a) races sit inside try/catch handlers (§6.2), so
// the pairs exercise the try-handler CFG edges end to end.
func TestGoldenToDoListCrossCheck(t *testing.T) {
	out := golden(t, "golden_todolist.txt",
		[]string{"-app", "ToDoList", "-trace", "../cafa-analyze/testdata/todolist.trace"})
	for _, want := range []string{
		"[static-confirmed]",
		"coverage gaps (static pairs not dynamically reported): 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "static-unmatched") {
		t.Error("ToDoList plants no Type III scenario; nothing should be unmatched")
	}
}

// TestGoldenZXingJSON pins the machine format byte-for-byte: the
// CheckedRace and Gap slices are sorted by SiteKey, so the JSON is
// deterministic across runs — two fresh runs must agree with each
// other and with the committed golden.
func TestGoldenZXingJSON(t *testing.T) {
	args := []string{"-app", "ZXing", "-trace", "../cafa-analyze/testdata/zxing.trace", "-json"}
	out := golden(t, "golden_zxing.json", args)
	var again bytes.Buffer
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	if out != again.String() {
		t.Error("JSON output is not deterministic across runs")
	}
	for _, want := range []string{`"ordered": true`, `"orderWitness"`, `"verdict": "static-ordered"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %q", want)
		}
	}
}

// TestJSONIncludesVerdicts spot-checks the machine format.
func TestJSONIncludesVerdicts(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-app", "ZXing", "-trace", "../cafa-analyze/testdata/zxing.trace", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"verdict": "static-confirmed"`, `"verdict": "static-unmatched"`, `"guarded": true`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON output missing %q", want)
		}
	}
}

// TestStaticOnlyAllApps runs the trace-free mode over every model —
// the pure pre-pass must not need a dynamic run.
func TestStaticOnlyAllApps(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-app", "all"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "=== ") != 10 {
		t.Errorf("want 10 app sections, got %d", strings.Count(buf.String(), "=== "))
	}
	if strings.Contains(buf.String(), "cross-check") {
		t.Error("static-only mode must not print a cross-check section")
	}
}

// TestBenchOutput checks the BENCH_static.json shape.
func TestBenchOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-app", "all", "-bench"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"app": "ConnectBot"`, `"total_ns"`, `"pairs"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("bench output missing %q", want)
		}
	}
}

// TestMetricsFlag checks -metrics: the report itself is unchanged and
// a metrics table with the static-pass counters follows it.
func TestMetricsFlag(t *testing.T) {
	var plain, withMetrics bytes.Buffer
	if err := run([]string{"-app", "ZXing"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-app", "ZXing", "-metrics"}, &withMetrics); err != nil {
		t.Fatal(err)
	}
	out := withMetrics.String()
	if !strings.HasPrefix(out, plain.String()) {
		t.Error("-metrics changed the report body")
	}
	tail := strings.TrimPrefix(out, plain.String())
	if !strings.Contains(tail, "--- metrics ---") || !strings.Contains(tail, "static_analyze_runs_total") {
		t.Errorf("missing metrics table after report:\n%s", tail)
	}
	if strings.Contains(plain.String(), "--- metrics ---") {
		t.Error("metrics table leaked into the default output")
	}
}

// TestBadFlags covers the argument contract.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-app", "NoSuchApp"},
		{"-trace", "x.trace"}, // -trace with -app all
		{"-trace", "x.trace", "-app", "ZXing", "-dynamic"},
		{"positional"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

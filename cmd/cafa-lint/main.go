// Command cafa-lint runs the whole-program static analysis layer
// (internal/static) alone — no trace required — and enumerates the
// statically-possible use-after-free site pairs per field: every
// dereference whose pointer may originate from a field load, crossed
// with every null store to the same field, annotated with the static
// guard and allocation-domination classifications.
//
// Given a dynamic report to compare against (a recorded trace via
// -trace, or a fresh in-process run via -dynamic), it cross-checks
// the two worlds: each dynamic race is annotated
// statically-guarded / alloc-safe / static-confirmed /
// static-unmatched (the latter is the Type III signature — the
// dynamic matcher blamed sites that do not exist in the bytecode),
// and static candidates the dynamic run never reported are listed as
// coverage gaps.
//
// Usage:
//
//	cafa-lint [-app name|all] [-trace file] [-dynamic]
//	          [-scale N] [-seed N] [-json] [-bench] [-metrics]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"cafa/internal/analysis"
	"cafa/internal/apps"
	"cafa/internal/buildinfo"
	"cafa/internal/dataflow"
	"cafa/internal/obs"
	"cafa/internal/sim"
	"cafa/internal/static"
	"cafa/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "cafa-lint: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	app       string
	version   bool
	traceFile string
	dynamic   bool
	scale     int
	seed      uint64
	asJSON    bool
	bench     bool
	metrics   bool
}

func parseArgs(args []string) (*config, error) {
	fs := flag.NewFlagSet("cafa-lint", flag.ContinueOnError)
	var (
		app     = fs.String("app", "all", "application model to lint (name, or 'all')")
		traceIn = fs.String("trace", "", "recorded trace to cross-check against (single -app only)")
		dynamic = fs.Bool("dynamic", false, "run the app and the dynamic detector in-process and cross-check")
		scale   = fs.Int("scale", 16, "event-volume divisor for -dynamic runs")
		seed    = fs.Uint64("seed", 1, "scheduler seed for -dynamic runs")
		asJSON  = fs.Bool("json", false, "emit the lint report as JSON")
		bench   = fs.Bool("bench", false, "emit per-app static-pass timings as JSON (BENCH_static.json)")
		metrics = fs.Bool("metrics", false, "append a summary of static-pass metrics after the report")
		version = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *version {
		return &config{version: true}, nil
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	cfg := &config{
		app: *app, traceFile: *traceIn, dynamic: *dynamic,
		scale: *scale, seed: *seed, asJSON: *asJSON, bench: *bench,
		metrics: *metrics,
	}
	if cfg.traceFile != "" && cfg.app == "all" {
		return nil, fmt.Errorf("-trace needs a single -app (the trace must match the app's bytecode)")
	}
	if cfg.traceFile != "" && cfg.dynamic {
		return nil, fmt.Errorf("-trace and -dynamic are mutually exclusive")
	}
	return cfg, nil
}

func specs(cfg *config) ([]apps.Spec, error) {
	if cfg.app == "all" {
		return apps.Registry, nil
	}
	spec, ok := apps.ByName(cfg.app)
	if !ok {
		return nil, fmt.Errorf("unknown app %q (known: %v)", cfg.app, apps.Names())
	}
	return []apps.Spec{spec}, nil
}

// appLint is the lint result for one application model.
type appLint struct {
	spec apps.Spec
	b    *apps.BuildOut
	st   *static.Result
	// Dynamic cross-check (nil without -trace/-dynamic).
	tr      *trace.Trace
	res     *analysis.Result
	checked []static.CheckedRace
	gaps    []static.Gap
}

func run(args []string, stdout io.Writer) error {
	cfg, err := parseArgs(args)
	if err != nil {
		return err
	}
	if cfg.version {
		fmt.Fprintln(stdout, buildinfo.String("cafa-lint"))
		return nil
	}
	sp, err := specs(cfg)
	if err != nil {
		return err
	}
	if cfg.metrics {
		obs.Enable()
		defer func() {
			obs.Disable()
			obs.Reset()
		}()
	}
	lints := make([]*appLint, len(sp))
	errs := make([]error, len(sp))
	analysis.ForEach(0, len(sp), func(i int) {
		lints[i], errs[i] = lintApp(cfg, sp[i])
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("%s: %w", sp[i].Name, err)
		}
	}
	switch {
	case cfg.bench:
		err = emitBench(stdout, lints)
	case cfg.asJSON:
		err = emitJSON(stdout, lints)
	default:
		err = emitText(stdout, lints)
	}
	if err == nil && cfg.metrics {
		err = obs.WriteSummary(stdout)
	}
	return err
}

func lintApp(cfg *config, spec apps.Spec) (*appLint, error) {
	// The program text is scale- and seed-independent, so a build at
	// any scale matches a fixture trace recorded at another.
	col := trace.NewCollector()
	b, err := apps.Build(spec, sim.Config{Tracer: col, Seed: cfg.seed}, cfg.scale)
	if err != nil {
		return nil, err
	}
	l := &appLint{spec: spec, b: b, st: static.Analyze(b.Prog)}

	switch {
	case cfg.dynamic:
		if err := b.Sys.Run(); err != nil {
			return nil, err
		}
		l.tr = col.T
	case cfg.traceFile != "":
		f, err := os.Open(cfg.traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := trace.DecodeAuto(f)
		if err != nil {
			return nil, fmt.Errorf("decode %s: %w", cfg.traceFile, err)
		}
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.traceFile, err)
		}
		l.tr = tr
	default:
		return l, nil
	}

	res, err := analysis.Analyze(l.tr, analysis.Options{})
	if err != nil {
		return nil, err
	}
	l.res = res
	l.checked, l.gaps = static.CrossCheck(l.st.Pairs, res.Races)
	return l, nil
}

// methodName resolves a method name through the program (static-only
// runs have no trace tables).
func (l *appLint) methodName(id trace.MethodID) string {
	if m := l.st.Graph.MethodByID(id); m != nil {
		return m.Name
	}
	return fmt.Sprintf("method#%d", id)
}

func (l *appLint) fieldName(id trace.FieldID) string { return l.b.Prog.FieldName(id) }

// pairAnnotations renders the static classification suffix.
func pairAnnotations(p static.Pair) string {
	switch {
	case p.Guarded && p.AllocSafe:
		return " [statically-guarded, alloc-safe]"
	case p.Guarded:
		return " [statically-guarded]"
	case p.AllocSafe:
		return " [alloc-safe]"
	default:
		return ""
	}
}

func emitText(w io.Writer, lints []*appLint) error {
	for _, l := range lints {
		st := l.st
		fmt.Fprintf(w, "=== %s ===\n", l.spec.Name)
		edges := 0
		for _, es := range st.Graph.Callees {
			edges += len(es)
		}
		resolved := 0
		for _, r := range st.Resolutions {
			if !r.Incomplete {
				resolved++
			}
		}
		fmt.Fprintf(w, "methods=%d call-edges=%d deref-sites=%d resolved=%d guarded-sites=%d alloc-safe-sites=%d\n",
			len(st.Graph.Prog.Methods), edges, len(st.Resolutions), resolved, count(st.Guards), count(st.AllocSafe))
		fmt.Fprintf(w, "candidate use-after-free pairs: %d\n", len(st.Pairs))
		for _, p := range st.Pairs {
			fmt.Fprintf(w, "  %s: use %s:%d (load %s:%d) free %s:%d%s\n",
				l.fieldName(p.Key.Field),
				l.methodName(p.Key.UseMethod), p.Key.UsePC,
				l.methodName(p.Load.Method), p.Load.PC,
				l.methodName(p.Key.FreeMethod), p.Key.FreePC,
				pairAnnotations(p))
		}
		if l.res != nil {
			fmt.Fprintf(w, "cross-check against dynamic report (%d races):\n", len(l.res.Races))
			for _, cr := range l.checked {
				k := cr.Race.Key()
				fmt.Fprintf(w, "  [%s] %s: use %s:%d free %s:%d (%s)\n",
					cr.Verdict,
					l.fieldName(k.Field),
					l.methodName(k.UseMethod), k.UsePC,
					l.methodName(k.FreeMethod), k.FreePC,
					cr.Race.Class)
			}
			fmt.Fprintf(w, "coverage gaps (static pairs not dynamically reported): %d\n", len(l.gaps))
			for _, g := range l.gaps {
				k := g.Pair.Key
				fmt.Fprintf(w, "  %s: use %s:%d free %s:%d\n",
					l.fieldName(k.Field),
					l.methodName(k.UseMethod), k.UsePC,
					l.methodName(k.FreeMethod), k.FreePC)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

func count(m map[dataflow.Key]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// pairJSON is the machine-readable static candidate pair.
type pairJSON struct {
	Field      string `json:"field"`
	UseMethod  string `json:"useMethod"`
	UsePC      uint32 `json:"usePC"`
	LoadMethod string `json:"loadMethod"`
	LoadPC     uint32 `json:"loadPC"`
	FreeMethod string `json:"freeMethod"`
	FreePC     uint32 `json:"freePC"`
	Guarded    bool   `json:"guarded"`
	AllocSafe  bool   `json:"allocSafe"`
}

// checkJSON is one cross-checked dynamic race.
type checkJSON struct {
	Verdict    string `json:"verdict"`
	Class      string `json:"class"`
	Field      string `json:"field"`
	UseMethod  string `json:"useMethod"`
	UsePC      uint32 `json:"usePC"`
	FreeMethod string `json:"freeMethod"`
	FreePC     uint32 `json:"freePC"`
}

// appJSON is the per-app lint report.
type appJSON struct {
	App        string      `json:"app"`
	Methods    int         `json:"methods"`
	DerefSites int         `json:"derefSites"`
	Pairs      []pairJSON  `json:"pairs"`
	Checked    []checkJSON `json:"checked,omitempty"`
	Gaps       []pairJSON  `json:"gaps,omitempty"`
	DynRaces   int         `json:"dynamicRaces,omitempty"`
}

func emitJSON(w io.Writer, lints []*appLint) error {
	out := make([]appJSON, 0, len(lints))
	for _, l := range lints {
		a := appJSON{
			App:        l.spec.Name,
			Methods:    len(l.b.Prog.Methods),
			DerefSites: len(l.st.Resolutions),
			Pairs:      []pairJSON{},
		}
		for _, p := range l.st.Pairs {
			a.Pairs = append(a.Pairs, l.pairJSON(p))
		}
		if l.res != nil {
			a.DynRaces = len(l.res.Races)
			for _, cr := range l.checked {
				k := cr.Race.Key()
				a.Checked = append(a.Checked, checkJSON{
					Verdict:    cr.Verdict.String(),
					Class:      cr.Race.Class.String(),
					Field:      l.fieldName(k.Field),
					UseMethod:  l.methodName(k.UseMethod),
					UsePC:      uint32(k.UsePC),
					FreeMethod: l.methodName(k.FreeMethod),
					FreePC:     uint32(k.FreePC),
				})
			}
			for _, g := range l.gaps {
				a.Gaps = append(a.Gaps, l.pairJSON(g.Pair))
			}
		}
		out = append(out, a)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func (l *appLint) pairJSON(p static.Pair) pairJSON {
	return pairJSON{
		Field:      l.fieldName(p.Key.Field),
		UseMethod:  l.methodName(p.Key.UseMethod),
		UsePC:      uint32(p.Key.UsePC),
		LoadMethod: l.methodName(p.Load.Method),
		LoadPC:     uint32(p.Load.PC),
		FreeMethod: l.methodName(p.Key.FreeMethod),
		FreePC:     uint32(p.Key.FreePC),
		Guarded:    p.Guarded,
		AllocSafe:  p.AllocSafe,
	}
}

// benchJSON is one BENCH_static.json row.
type benchJSON struct {
	App        string        `json:"app"`
	Methods    int           `json:"methods"`
	DerefSites int           `json:"derefSites"`
	Pairs      int           `json:"pairs"`
	Timing     static.Timing `json:"timing"`
}

func emitBench(w io.Writer, lints []*appLint) error {
	out := make([]benchJSON, 0, len(lints))
	for _, l := range lints {
		out = append(out, benchJSON{
			App:        l.spec.Name,
			Methods:    len(l.b.Prog.Methods),
			DerefSites: len(l.st.Resolutions),
			Pairs:      len(l.st.Pairs),
			Timing:     l.st.Timing,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Command cafa-lint runs the whole-program static analysis layer
// (internal/static) alone — no trace required — and enumerates the
// statically-possible use-after-free site pairs per field: every
// dereference whose pointer may originate from a field load, crossed
// with every null store to the same field, annotated with the static
// guard and allocation-domination classifications.
//
// Given a dynamic report to compare against (a recorded trace via
// -trace, or a fresh in-process run via -dynamic), it cross-checks
// the two worlds: each dynamic race is annotated
// statically-guarded / alloc-safe / static-confirmed /
// static-unmatched (the latter is the Type III signature — the
// dynamic matcher blamed sites that do not exist in the bytecode),
// and static candidates the dynamic run never reported are listed as
// coverage gaps.
//
// Usage:
//
// The static event-order pass (-order, on by default) additionally
// computes a must-happens-before relation from the app's event
// topology (posts, fork/join, rpc, listener registration, program
// order) under the closed world of harness entry points. Ordered
// pairs are annotated static-ordered instead of being counted as
// coverage gaps, and -json carries the ordering witness path.
//
// Usage:
//
//	cafa-lint [-app name|all] [-trace file] [-dynamic] [-order=false]
//	          [-scale N] [-seed N] [-json] [-bench] [-metrics]
//	          [-html-out file]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cafa/internal/analysis"
	"cafa/internal/apps"
	"cafa/internal/buildinfo"
	"cafa/internal/dataflow"
	"cafa/internal/detect"
	"cafa/internal/obs"
	"cafa/internal/provenance"
	"cafa/internal/sim"
	"cafa/internal/static"
	"cafa/internal/synth"
	"cafa/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "cafa-lint: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	app       string
	version   bool
	traceFile string
	dynamic   bool
	order     bool
	scale     int
	seed      uint64
	asJSON    bool
	bench     bool
	metrics   bool
	htmlOut   string
}

func parseArgs(args []string) (*config, error) {
	fs := flag.NewFlagSet("cafa-lint", flag.ContinueOnError)
	var (
		app     = fs.String("app", "all", "application model to lint (name, or 'all')")
		traceIn = fs.String("trace", "", "recorded trace to cross-check against (single -app only)")
		dynamic = fs.Bool("dynamic", false, "run the app and the dynamic detector in-process and cross-check")
		order   = fs.Bool("order", true, "run the static event-order pass over the app's entry-point roots")
		scale   = fs.Int("scale", 16, "event-volume divisor for -dynamic runs")
		seed    = fs.Uint64("seed", 1, "scheduler seed for -dynamic runs")
		asJSON  = fs.Bool("json", false, "emit the lint report as JSON")
		bench   = fs.Bool("bench", false, "emit per-app static-pass timings as JSON (BENCH_static.json)")
		metrics = fs.Bool("metrics", false, "append a summary of static-pass metrics after the report")
		htmlOut = fs.String("html-out", "", "write an HTML triage report with the ranked static coverage gaps")
		version = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *version {
		return &config{version: true}, nil
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	cfg := &config{
		app: *app, traceFile: *traceIn, dynamic: *dynamic, order: *order,
		scale: *scale, seed: *seed, asJSON: *asJSON, bench: *bench,
		metrics: *metrics, htmlOut: *htmlOut,
	}
	if cfg.traceFile != "" && cfg.app == "all" {
		return nil, fmt.Errorf("-trace needs a single -app (the trace must match the app's bytecode)")
	}
	if cfg.traceFile != "" && cfg.dynamic {
		return nil, fmt.Errorf("-trace and -dynamic are mutually exclusive")
	}
	return cfg, nil
}

func specs(cfg *config) ([]apps.Spec, error) {
	if cfg.app == "all" {
		return apps.Registry, nil
	}
	spec, ok := apps.ByName(cfg.app)
	if !ok {
		return nil, fmt.Errorf("unknown app %q (known: %v)", cfg.app, apps.Names())
	}
	return []apps.Spec{spec}, nil
}

// appLint is the lint result for one application model.
type appLint struct {
	spec apps.Spec
	b    *apps.BuildOut
	st   *static.Result
	// Dynamic cross-check (nil without -trace/-dynamic).
	tr      *trace.Trace
	res     *analysis.Result
	checked []static.CheckedRace
	gaps    []static.Gap
}

func run(args []string, stdout io.Writer) error {
	cfg, err := parseArgs(args)
	if err != nil {
		return err
	}
	if cfg.version {
		fmt.Fprintln(stdout, buildinfo.String("cafa-lint"))
		return nil
	}
	sp, err := specs(cfg)
	if err != nil {
		return err
	}
	if cfg.metrics {
		obs.Enable()
		defer func() {
			obs.Disable()
			obs.Reset()
		}()
	}
	lints := make([]*appLint, len(sp))
	errs := make([]error, len(sp))
	analysis.ForEach(0, len(sp), func(i int) {
		lints[i], errs[i] = lintApp(cfg, sp[i])
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("%s: %w", sp[i].Name, err)
		}
	}
	switch {
	case cfg.bench:
		err = emitBench(stdout, lints)
	case cfg.asJSON:
		err = emitJSON(stdout, lints)
	default:
		err = emitText(stdout, lints)
	}
	if err == nil && cfg.htmlOut != "" {
		err = writeHTML(cfg.htmlOut, lints)
	}
	if err == nil && cfg.metrics {
		err = obs.WriteSummary(stdout)
	}
	return err
}

func lintApp(cfg *config, spec apps.Spec) (*appLint, error) {
	// The program text is scale- and seed-independent, so a build at
	// any scale matches a fixture trace recorded at another.
	col := trace.NewCollector()
	b, err := apps.Build(spec, sim.Config{Tracer: col, Seed: cfg.seed}, cfg.scale)
	if err != nil {
		return nil, err
	}
	stOpts := static.Options{}
	if cfg.order {
		// The build wires every thread start and event injection before
		// Run, so the closed-world root inventory exists without
		// executing the app — ordering verdicts stay scale-independent.
		stOpts.Roots = static.RootsFromNames(b.Prog, b.Sys.Roots())
	}
	l := &appLint{spec: spec, b: b, st: static.AnalyzeOpts(b.Prog, stOpts)}

	switch {
	case cfg.dynamic:
		if err := b.Sys.Run(); err != nil {
			return nil, err
		}
		l.tr = col.T
	case cfg.traceFile != "":
		f, err := os.Open(cfg.traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := trace.DecodeAuto(f)
		if err != nil {
			return nil, fmt.Errorf("decode %s: %w", cfg.traceFile, err)
		}
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.traceFile, err)
		}
		l.tr = tr
	default:
		return l, nil
	}

	res, err := analysis.Analyze(l.tr, analysis.Options{})
	if err != nil {
		return nil, err
	}
	l.res = res
	l.checked, l.gaps = static.CrossCheck(l.st.Pairs, res.Races, l.st.Orders)
	return l, nil
}

// methodName resolves a method name through the program (static-only
// runs have no trace tables).
func (l *appLint) methodName(id trace.MethodID) string {
	if m := l.st.Graph.MethodByID(id); m != nil {
		return m.Name
	}
	return fmt.Sprintf("method#%d", id)
}

func (l *appLint) fieldName(id trace.FieldID) string { return l.b.Prog.FieldName(id) }

// pairAnnotations renders the static classification suffix.
func pairAnnotations(p static.Pair, orders *static.Orders) string {
	var tags []string
	if p.Guarded {
		tags = append(tags, "statically-guarded")
	}
	if p.AllocSafe {
		tags = append(tags, "alloc-safe")
	}
	if _, ok := orders.Lookup(p.Key); ok {
		tags = append(tags, "static-ordered")
	}
	if len(tags) == 0 {
		return ""
	}
	return " [" + strings.Join(tags, ", ") + "]"
}

func emitText(w io.Writer, lints []*appLint) error {
	for _, l := range lints {
		st := l.st
		fmt.Fprintf(w, "=== %s ===\n", l.spec.Name)
		edges := 0
		for _, es := range st.Graph.Callees {
			edges += len(es)
		}
		resolved := 0
		for _, r := range st.Resolutions {
			if !r.Incomplete {
				resolved++
			}
		}
		fmt.Fprintf(w, "methods=%d call-edges=%d deref-sites=%d resolved=%d guarded-sites=%d alloc-safe-sites=%d\n",
			len(st.Graph.Prog.Methods), edges, len(st.Resolutions), resolved, count(st.Guards), count(st.AllocSafe))
		fmt.Fprintf(w, "candidate use-after-free pairs: %d\n", len(st.Pairs))
		for _, p := range st.Pairs {
			fmt.Fprintf(w, "  %s: use %s:%d (load %s:%d) free %s:%d%s\n",
				l.fieldName(p.Key.Field),
				l.methodName(p.Key.UseMethod), p.Key.UsePC,
				l.methodName(p.Load.Method), p.Load.PC,
				l.methodName(p.Key.FreeMethod), p.Key.FreePC,
				pairAnnotations(p, st.Orders))
		}
		if st.Orders.Ordered() > 0 {
			fmt.Fprintf(w, "statically-ordered pairs: %d\n", st.Orders.Ordered())
		}
		if l.res != nil {
			fmt.Fprintf(w, "cross-check against dynamic report (%d races):\n", len(l.res.Races))
			for _, cr := range l.checked {
				k := cr.Race.Key()
				fmt.Fprintf(w, "  [%s] %s: use %s:%d free %s:%d (%s)\n",
					cr.Verdict,
					l.fieldName(k.Field),
					l.methodName(k.UseMethod), k.UsePC,
					l.methodName(k.FreeMethod), k.FreePC,
					cr.Race.Class)
			}
			unordered := 0
			for _, g := range l.gaps {
				if !g.Ordered {
					unordered++
				}
			}
			fmt.Fprintf(w, "coverage gaps (static pairs not dynamically reported): %d\n", unordered)
			for _, g := range l.gaps {
				if g.Ordered {
					continue
				}
				k := g.Pair.Key
				fmt.Fprintf(w, "  %s: use %s:%d free %s:%d\n",
					l.fieldName(k.Field),
					l.methodName(k.UseMethod), k.UsePC,
					l.methodName(k.FreeMethod), k.FreePC)
			}
			if n := len(l.gaps) - unordered; n > 0 {
				fmt.Fprintf(w, "statically-ordered pairs excluded from gaps: %d\n", n)
				for _, g := range l.gaps {
					if !g.Ordered {
						continue
					}
					k := g.Pair.Key
					dir := "use-before-free"
					if !g.UseBeforeFree {
						dir = "free-before-use"
					}
					fmt.Fprintf(w, "  %s: use %s:%d free %s:%d [%s]\n",
						l.fieldName(k.Field),
						l.methodName(k.UseMethod), k.UsePC,
						l.methodName(k.FreeMethod), k.FreePC, dir)
				}
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

func count(m map[dataflow.Key]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// pairJSON is the machine-readable static candidate pair.
type pairJSON struct {
	Field      string `json:"field"`
	UseMethod  string `json:"useMethod"`
	UsePC      uint32 `json:"usePC"`
	LoadMethod string `json:"loadMethod"`
	LoadPC     uint32 `json:"loadPC"`
	FreeMethod string `json:"freeMethod"`
	FreePC     uint32 `json:"freePC"`
	Guarded    bool   `json:"guarded"`
	AllocSafe  bool   `json:"allocSafe"`
	// Ordered: the static event-order pass proved the pair
	// must-ordered; OrderWitness is its derivation path.
	Ordered      bool     `json:"ordered,omitempty"`
	OrderWitness []string `json:"orderWitness,omitempty"`
}

// checkJSON is one cross-checked dynamic race.
type checkJSON struct {
	Verdict      string   `json:"verdict"`
	Class        string   `json:"class"`
	Field        string   `json:"field"`
	UseMethod    string   `json:"useMethod"`
	UsePC        uint32   `json:"usePC"`
	FreeMethod   string   `json:"freeMethod"`
	FreePC       uint32   `json:"freePC"`
	OrderWitness []string `json:"orderWitness,omitempty"`
}

// appJSON is the per-app lint report.
type appJSON struct {
	App        string      `json:"app"`
	Methods    int         `json:"methods"`
	DerefSites int         `json:"derefSites"`
	Pairs      []pairJSON  `json:"pairs"`
	Checked    []checkJSON `json:"checked,omitempty"`
	Gaps       []pairJSON  `json:"gaps,omitempty"`
	DynRaces   int         `json:"dynamicRaces,omitempty"`
}

func emitJSON(w io.Writer, lints []*appLint) error {
	out := make([]appJSON, 0, len(lints))
	for _, l := range lints {
		a := appJSON{
			App:        l.spec.Name,
			Methods:    len(l.b.Prog.Methods),
			DerefSites: len(l.st.Resolutions),
			Pairs:      []pairJSON{},
		}
		for _, p := range l.st.Pairs {
			a.Pairs = append(a.Pairs, l.pairJSON(p))
		}
		if l.res != nil {
			a.DynRaces = len(l.res.Races)
			for _, cr := range l.checked {
				k := cr.Race.Key()
				a.Checked = append(a.Checked, checkJSON{
					Verdict:      cr.Verdict.String(),
					Class:        cr.Race.Class.String(),
					Field:        l.fieldName(k.Field),
					UseMethod:    l.methodName(k.UseMethod),
					UsePC:        uint32(k.UsePC),
					FreeMethod:   l.methodName(k.FreeMethod),
					FreePC:       uint32(k.FreePC),
					OrderWitness: cr.OrderWitness,
				})
			}
			for _, g := range l.gaps {
				a.Gaps = append(a.Gaps, l.pairJSON(g.Pair))
			}
		}
		out = append(out, a)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func (l *appLint) pairJSON(p static.Pair) pairJSON {
	pj := pairJSON{
		Field:      l.fieldName(p.Key.Field),
		UseMethod:  l.methodName(p.Key.UseMethod),
		UsePC:      uint32(p.Key.UsePC),
		LoadMethod: l.methodName(p.Load.Method),
		LoadPC:     uint32(p.Load.PC),
		FreeMethod: l.methodName(p.Key.FreeMethod),
		FreePC:     uint32(p.Key.FreePC),
		Guarded:    p.Guarded,
		AllocSafe:  p.AllocSafe,
	}
	if info, ok := l.st.Orders.Lookup(p.Key); ok {
		pj.Ordered = true
		pj.OrderWitness = info.Witness
	}
	return pj
}

// benchJSON is one BENCH_static.json row. The ordering fields record
// the event-order pass: distinct pairs proved must-ordered, coverage
// gaps without vs with the pass, and the candidate pairs still
// dispatched to a dynamic HB query after the prune projection.
type benchJSON struct {
	App              string        `json:"app"`
	Methods          int           `json:"methods"`
	DerefSites       int           `json:"derefSites"`
	Pairs            int           `json:"pairs"`
	OrderedPairs     int           `json:"orderedPairs"`
	GapsWithoutOrder int           `json:"gapsWithoutOrder"`
	GapsWithOrder    int           `json:"gapsWithOrder"`
	DynDispatch      int           `json:"dynamicDispatchPairs"`
	// Synth rows only: the open-world control. No bytecode exists for
	// synthetic traces, so the order pass sits at bottom and every
	// dynamic candidate is dispatched to the HB query — the
	// conservative-bottom behavior the closed-world caveat demands.
	DynCandidates     int `json:"dynamicCandidates,omitempty"`
	StaticOrderPruned int `json:"staticOrderPruned,omitempty"`

	Timing static.Timing `json:"timing"`
}

func emitBench(w io.Writer, lints []*appLint) error {
	out := make([]benchJSON, 0, len(lints)+1)
	for _, l := range lints {
		row := benchJSON{
			App:        l.spec.Name,
			Methods:    len(l.b.Prog.Methods),
			DerefSites: len(l.st.Resolutions),
			Pairs:      len(l.st.Pairs),
			Timing:     l.st.Timing,
		}
		// Distinct site pairs, and how the order pass splits them.
		keys := make(map[string]bool)
		dispatch := 0
		for _, p := range l.st.Pairs {
			id := fmt.Sprintf("%d/%d/%d/%d/%d", p.Key.Field, p.Key.UseMethod, p.Key.UsePC,
				p.Key.FreeMethod, p.Key.FreePC)
			if keys[id] {
				continue
			}
			keys[id] = true
			info, ok := l.st.Orders.Lookup(p.Key)
			if !ok || !info.DynSound {
				dispatch++
			}
			if !p.Guarded && !p.AllocSafe {
				row.GapsWithoutOrder++
				if !ok {
					row.GapsWithOrder++
				}
			}
		}
		row.OrderedPairs = l.st.Orders.Ordered()
		row.DynDispatch = dispatch
		out = append(out, row)
	}
	if row, err := synthBenchRow(); err == nil {
		out = append(out, row)
	} else {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// siteString renders a SiteKey with program name tables (static-only
// runs have no trace tables to feed provenance.SiteString).
func (l *appLint) siteString(k detect.SiteKey) string {
	return fmt.Sprintf("%s: use %s@%d free %s@%d",
		l.fieldName(k.Field),
		l.methodName(k.UseMethod), k.UsePC,
		l.methodName(k.FreeMethod), k.FreePC)
}

// gapRecords renders the app's static coverage gaps as provenance
// records. With a dynamic cross-check the gaps come from CrossCheck;
// without one every unguarded static pair is a (potential) gap.
func (l *appLint) gapRecords() []provenance.GapRecord {
	var out []provenance.GapRecord
	if l.res != nil {
		for _, g := range l.gaps {
			out = append(out, provenance.GapRecord{
				Site:          l.siteString(g.Pair.Key),
				Ordered:       g.Ordered,
				UseBeforeFree: g.UseBeforeFree,
				Witness:       g.Witness,
			})
		}
		return out
	}
	seen := make(map[detect.SiteKey]bool)
	for _, p := range l.st.Pairs {
		if p.Guarded || p.AllocSafe || seen[p.Key] {
			continue
		}
		seen[p.Key] = true
		gr := provenance.GapRecord{Site: l.siteString(p.Key)}
		if info, ok := l.st.Orders.Lookup(p.Key); ok {
			gr.Ordered = true
			gr.UseBeforeFree = info.UseBeforeFree
			gr.Witness = info.Witness
		}
		out = append(out, gr)
	}
	return out
}

// writeHTML renders the lint results as the provenance HTML triage
// report with the ranked static-coverage-gaps section per app.
func writeHTML(path string, lints []*appLint) error {
	lt := provenance.NewLiveTriage()
	for _, l := range lints {
		in := provenance.InputEvidence{
			File:   l.spec.Name,
			Races:  []provenance.RaceEvidence{},
			Pruned: []provenance.PruneRecord{},
		}
		var stats detect.Stats
		if l.res != nil {
			stats = l.res.Stats
			in.Events = l.tr.EventCount()
			in.Entries = l.tr.Len()
			in.Stats = stats
		}
		lt.Add(in, stats)
		lt.AddGaps(l.spec.Name, l.gapRecords())
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	snap := lt.Snapshot()
	if err := provenance.WriteHTML(f, &snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// synthBenchRow measures the open-world control: a synthetic trace
// with no bytecode behind it gets no static orders, so the detector
// dispatches every candidate dynamically.
func synthBenchRow() (benchJSON, error) {
	tr := synth.Trace(synth.Config{Chain: 4, EventsPer: 8, FreeThreads: 4, Burst: 2, BurstEvents: 8})
	res, err := analysis.Analyze(tr, analysis.Options{})
	if err != nil {
		return benchJSON{}, err
	}
	return benchJSON{
		App:               "synth(open-world)",
		DynCandidates:     res.Stats.Candidates,
		StaticOrderPruned: res.Stats.FilteredStaticOrder,
		DynDispatch:       res.Stats.Candidates - res.Stats.FilteredStaticOrder,
	}, nil
}

// Command cafa-bench regenerates the paper's evaluation: Table 1
// (races per application, by class and false-positive type), the §4.1
// low-level race count, Figure 8 (tracing slowdown), and an ablation
// table for the detector's pruning stages.
//
// Usage:
//
//	cafa-bench -table1              # Table 1, paper vs measured
//	cafa-bench -fig8                # Figure 8 slowdown series
//	cafa-bench -lowlevel            # §4.1 ConnectBot low-level races
//	cafa-bench -ablation            # detector filter ablation + §6.3 data-flow fix
//	cafa-bench -baselines           # thread-based FastTrack comparison (§7.1)
//	cafa-bench -scaling             # offline analysis runtime vs trace size (§6.4)
//	cafa-bench -validate            # adversarially replay each app's first harmful race
//	cafa-bench -all                 # everything
//	          [-scale 1] [-seed 1] [-iters 3]
//	          [-metrics]                   # append pipeline-metrics summary table
//	          [-metrics-out metrics.prom]  # Prometheus snapshot of pipeline counters
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cafa/internal/analysis"
	"cafa/internal/apps"
	"cafa/internal/buildinfo"
	"cafa/internal/detect"
	"cafa/internal/obs"
	"cafa/internal/replay"
	"cafa/internal/report"
	"cafa/internal/sim"
	"cafa/internal/trace"
	"cafa/internal/vclock"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "regenerate Table 1")
		fig8      = flag.Bool("fig8", false, "regenerate Figure 8")
		lowlevel  = flag.Bool("lowlevel", false, "regenerate the §4.1 low-level race count")
		ablation  = flag.Bool("ablation", false, "detector filter ablation")
		baselines = flag.Bool("baselines", false, "compare against the thread-based FastTrack detector")
		scaling   = flag.Bool("scaling", false, "offline-analysis runtime vs trace size (§6.4)")
		all       = flag.Bool("all", false, "run every experiment")
		validate  = flag.Bool("validate", false, "adversarially replay each app's first harmful race")
		scale     = flag.Int("scale", 1, "divide benign filler volume (1 = paper event counts)")
		jobs      = flag.Int("j", 0, "app-level parallelism for the analysis pipeline (0 = GOMAXPROCS)")
		seed      = flag.Uint64("seed", 1, "scheduler seed")
		iters     = flag.Int("iters", 3, "timing repetitions for Figure 8")
		metrics   = flag.Bool("metrics", false, "append a summary of pipeline metrics after the experiments")
		metricsTo = flag.String("metrics-out", "", "write a Prometheus snapshot of pipeline metrics to this file")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("cafa-bench"))
		return
	}
	if *metrics || *metricsTo != "" {
		obs.Enable()
	}
	if *metricsTo != "" {
		defer writeMetricsSnapshot(*metricsTo)
	}
	if *metrics {
		defer func() {
			if err := obs.WriteSummary(os.Stdout); err != nil {
				fail("%v", err)
			}
		}()
	}
	if *all {
		*table1, *fig8, *lowlevel, *ablation, *baselines, *scaling = true, true, true, true, true, true
	}
	if !*table1 && !*fig8 && !*lowlevel && !*ablation && !*validate && !*baselines && !*scaling {
		flag.Usage()
		os.Exit(2)
	}

	if *table1 {
		fmt.Println("=== Table 1: use-free races per application (measured/paper) ===")
		results, err := report.RunAll(report.RunOptions{Seed: *seed, Scale: *scale, Workers: *jobs})
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(report.Table1(results))
		if p := report.Problems(results); p != "" {
			fmt.Println("ground-truth mismatches:")
			fmt.Print(p)
		} else {
			fmt.Println("ground truth: every planted race detected and classified correctly.")
		}
		fmt.Println()
	}

	if *lowlevel {
		fmt.Println("=== §4.1: low-level conflicting-access races (ConnectBot) ===")
		spec, _ := apps.ByName("ConnectBot")
		r, err := report.RunApp(spec, report.RunOptions{Seed: *seed, Scale: *scale, Naive: true})
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("naive detector: %d races (paper: 1,664 in a 30-second trace)\n", r.NaiveRaces)
		fmt.Printf("use-free detector on the same trace: %d races\n", r.Reported)
		fmt.Printf("reduction: %.0fx\n\n", float64(r.NaiveRaces)/float64(max(1, r.Reported)))
	}

	if *ablation {
		fmt.Println("=== Ablation: detector pruning stages (all apps) ===")
		type cfg struct {
			name string
			opts detect.Options
		}
		cfgs := []cfg{
			{"full detector", detect.Options{}},
			{"no if-guard", detect.Options{DisableIfGuard: true}},
			{"no intra-event-alloc", detect.Options{DisableIntraEventAlloc: true}},
			{"no lockset", detect.Options{DisableLockset: true}},
			{"no heuristics at all", detect.Options{DisableIfGuard: true, DisableIntraEventAlloc: true, DisableLockset: true}},
		}
		for _, c := range cfgs {
			results, err := report.RunAll(report.RunOptions{Seed: *seed, Scale: *scale, Detect: c.opts, Workers: *jobs})
			if err != nil {
				fail("%v", err)
			}
			total := 0
			for _, r := range results {
				total += r.Reported
			}
			fmt.Printf("%-22s %4d reported races\n", c.name, total)
		}
		// The §6.3 future-work extension, run as the opposite ablation:
		// static data-flow use matching removes Type III reports.
		var total, fp3 int
		results, err := report.RunAll(report.RunOptions{Seed: *seed, Scale: *scale, Precise: true, Workers: *jobs})
		if err != nil {
			fail("%v", err)
		}
		for _, r := range results {
			total += r.Reported
			fp3 += r.FP3
		}
		fmt.Printf("%-22s %4d reported races (Type III: %d; paper's proposed static data-flow fix)\n",
			"precise use matching", total, fp3)
		// Interprocedural variant of the same extension: def-use chains
		// cross call boundaries via the whole-program call graph. It
		// must remove at least the Type III reports the intra-method
		// pass removes (no precision regression).
		total, fp3 = 0, 0
		results, err = report.RunAll(report.RunOptions{Seed: *seed, Scale: *scale, Interproc: true, Workers: *jobs})
		if err != nil {
			fail("%v", err)
		}
		for _, r := range results {
			total += r.Reported
			fp3 += r.FP3
		}
		fmt.Printf("%-22s %4d reported races (Type III: %d; interprocedural def-use chains)\n",
			"interproc use matching", total, fp3)
		// Static guard filter: prune uses whose deref site the static
		// Figure 6 pass proves null-tested, on top of the dynamic
		// heuristic.
		total = 0
		staticGuarded := 0
		results, err = report.RunAll(report.RunOptions{Seed: *seed, Scale: *scale, StaticGuards: true, Workers: *jobs})
		if err != nil {
			fail("%v", err)
		}
		for _, r := range results {
			total += r.Reported
			staticGuarded += r.DetectStats.FilteredStaticGuard
		}
		fmt.Printf("%-22s %4d reported races (extra static-guard prunes: %d)\n",
			"static guard filter", total, staticGuarded)
		// Static order filter: skip the dynamic HB query for candidate
		// pairs the static event-order pass proves must-ordered under
		// the app's recorded entry-point roots.
		total = 0
		orderPruned := 0
		results, err = report.RunAll(report.RunOptions{Seed: *seed, Scale: *scale, StaticOrders: true, Workers: *jobs})
		if err != nil {
			fail("%v", err)
		}
		for _, r := range results {
			total += r.Reported
			orderPruned += r.DetectStats.FilteredStaticOrder
		}
		fmt.Printf("%-22s %4d reported races (dynamic HB queries skipped: %d)\n",
			"static order filter", total, orderPruned)
		fmt.Println()
	}

	if *baselines {
		fmt.Println("=== Baseline comparison: thread-based FastTrack vs CAFA ===")
		fmt.Println("(FastTrack folds events into their looper: it can only see the")
		fmt.Println(" cross-thread conflicts — roughly Table 1's column (c) sites.)")
		bscale := *scale
		if bscale < 4 {
			// §4.2: "The vector clock algorithm does not scale well as
			// the number of concurrent tasks grows." With thousands of
			// threads the clock matrix alone is O(tasks²); run the
			// comparison at a reduced volume. Race counts for the
			// planted sites are volume-independent.
			bscale = 4
			fmt.Println("(running at -scale 4: vector clocks are O(tasks²) — the paper's §4.2")
			fmt.Println(" scalability argument against them for event-driven systems)")
		}
		fmt.Printf("%-12s %18s %18s\n", "Application", "CAFA use-free", "FastTrack low-level")
		type row struct {
			cafa, ft int
			err      error
		}
		rows := make([]row, len(apps.Registry))
		p := analysis.New(analysis.Options{})
		analysis.ForEach(*jobs, len(apps.Registry), func(i int) {
			spec := apps.Registry[i]
			col := trace.NewCollector()
			b, err := apps.Build(spec, sim.Config{Tracer: col, Seed: *seed}, bscale)
			if err != nil {
				rows[i].err = err
				return
			}
			if err := b.Sys.Run(); err != nil {
				rows[i].err = err
				return
			}
			ft, err := vclock.FastTrack(col.T)
			if err != nil {
				rows[i].err = err
				return
			}
			res, err := p.Analyze(col.T)
			if err != nil {
				rows[i].err = err
				return
			}
			rows[i].cafa, rows[i].ft = len(res.Races), len(ft)
		})
		for i, spec := range apps.Registry {
			if rows[i].err != nil {
				fail("%s: %v", spec.Name, rows[i].err)
			}
			fmt.Printf("%-12s %18d %18d\n", spec.Name, rows[i].cafa, rows[i].ft)
		}
		fmt.Println()
	}

	if *scaling {
		fmt.Println("=== Offline analysis runtime vs trace size (§6.4) ===")
		fmt.Println("(The paper's analyzer took 30 min–1 day per app; ours is measured")
		fmt.Println(" on MyTracks at growing event volumes to show the scaling shape.)")
		fmt.Printf("%10s %10s %10s %12s %12s\n", "events", "entries", "hb-nodes", "trace(ms)", "analyze(ms)")
		spec, _ := apps.ByName("MyTracks")
		for _, sc := range []int{32, 16, 8, 4, 2, 1} {
			col := trace.NewCollector()
			b, err := apps.Build(spec, sim.Config{Tracer: col, Seed: *seed}, sc)
			if err != nil {
				fail("%v", err)
			}
			t0 := time.Now()
			if err := b.Sys.Run(); err != nil {
				fail("%v", err)
			}
			simMs := time.Since(t0)
			t1 := time.Now()
			res, err := analysis.Analyze(col.T, analysis.Options{})
			if err != nil {
				fail("%v", err)
			}
			anaMs := time.Since(t1)
			fmt.Printf("%10d %10d %10d %12.1f %12.1f\n",
				col.T.EventCount(), col.T.Len(), res.GraphStats.Nodes,
				float64(simMs.Microseconds())/1000, float64(anaMs.Microseconds())/1000)
		}
		fmt.Println()
	}

	if *fig8 {
		fmt.Println("=== Figure 8: tracing slowdown (paper band: 2x-6x) ===")
		rows, err := report.Fig8(report.Fig8Options{Seed: *seed, Scale: *scale, Iters: *iters})
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(report.Fig8Table(rows))
	}

	if *validate {
		fmt.Println("=== Adversarial replay: confirming harmful races ===")
		for _, spec := range apps.Registry {
			spec := spec
			var target string
			b, err := apps.Build(spec, sim.Config{}, 100)
			if err != nil {
				fail("%v", err)
			}
			for _, pl := range b.Truth {
				if pl.Label.Harmful() {
					target = pl.UseMethod
					break
				}
			}
			if target == "" {
				fmt.Printf("%-12s (no harmful race planted)\n", spec.Name)
				continue
			}
			conf, err := replay.Confirm(apps.ReplayBuilder(spec, 100), target, replay.Options{})
			if err != nil {
				fail("%v", err)
			}
			if conf != nil {
				fmt.Printf("%-12s CONFIRMED: %s (delay %dms, seed %d)\n",
					spec.Name, conf.Crash.Err, conf.DelayMs, conf.Seed)
			} else {
				fmt.Printf("%-12s not reproduced for %s\n", spec.Name, target)
			}
		}
	}
}

// writeMetricsSnapshot dumps the accumulated pipeline metrics in
// Prometheus text exposition format, so a bench run leaves a
// machine-readable counter snapshot next to its BENCH_*.json output.
func writeMetricsSnapshot(path string) {
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	if err := obs.WritePrometheus(f); err != nil {
		f.Close()
		fail("%v", err)
	}
	if err := f.Close(); err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "cafa-bench: metrics snapshot written to %s\n", path)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cafa-bench: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

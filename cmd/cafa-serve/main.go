// Command cafa-serve runs the CAFA analyzer as a long-lived HTTP
// service: POST a trace, poll the job, fetch the same JSON report,
// evidence bundle, and HTML triage page the batch CLI writes —
// byte-identical, from shared rendering code. Results are cached by
// trace content and analysis configuration, so re-submitting a known
// trace skips analysis entirely.
//
// Usage:
//
//	cafa-serve [-addr :7420] [-workers N] [-queue 64]
//	           [-job-timeout 2m] [-cache-mb 256] [-max-body-mb 64]
//	           [-results-dir DIR] [-replay-scale 100] [-stream]
//	cafa-serve -selftest     # in-process end-to-end smoke run
//
// SIGINT/SIGTERM drain gracefully: intake stops, queued and running
// jobs finish and persist, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cafa/internal/buildinfo"
	"cafa/internal/obs"
	"cafa/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":7420", "HTTP listen address")
		workers     = flag.Int("workers", 0, "concurrent analyses (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "accepted-but-not-running job bound (beyond it: 429)")
		jobTimeout  = flag.Duration("job-timeout", 2*time.Minute, "per-job analysis timeout")
		cacheMB     = flag.Int64("cache-mb", 256, "result cache budget, MiB")
		maxBodyMB   = flag.Int64("max-body-mb", 64, "largest accepted trace upload, MiB")
		resultsDir  = flag.String("results-dir", "", "persist every finished job's artifacts under DIR/<job-id>/")
		replayScale = flag.Int("replay-scale", 100, "app filler divisor for confirm replays")
		stream      = flag.Bool("stream", false, "analyze uploads while the request body arrives (chunked transfer friendly)")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "shutdown budget for in-flight jobs")
		selftest    = flag.Bool("selftest", false, "run the in-process end-to-end smoke test and exit")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("cafa-serve"))
		return
	}
	obs.Enable()
	cfg := service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		JobTimeout:   *jobTimeout,
		CacheBytes:   *cacheMB << 20,
		MaxBodyBytes: *maxBodyMB << 20,
		ResultsDir:   *resultsDir,
		ReplayScale:  *replayScale,
		Stream:       *stream,
	}
	if *selftest {
		if err := runSelftest(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "cafa-serve: selftest: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("selftest ok")
		return
	}
	if err := serve(*addr, cfg, *drainGrace); err != nil {
		fmt.Fprintf(os.Stderr, "cafa-serve: %v\n", err)
		os.Exit(1)
	}
}

// serve runs the service until SIGINT/SIGTERM, then drains: the HTTP
// listener closes first (no new submissions), the job pool second
// (queued and running work finishes and persists).
func serve(addr string, cfg service.Config, grace time.Duration) error {
	svc := service.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc}
	log.Printf("cafa-serve: listening on %s (config %s)", ln.Addr(), svc.Fingerprint())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("cafa-serve: draining (up to %v)", grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		_ = httpSrv.Close()
	}
	if err := svc.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("cafa-serve: drained, bye")
	return nil
}

package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"cafa/internal/apps"
	"cafa/internal/service"
	"cafa/internal/service/api"
	"cafa/internal/service/client"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// selftestApp is small enough to record, analyze, and replay in a few
// seconds at selftestScale.
const (
	selftestApp   = "ZXing"
	selftestScale = 32
)

// runSelftest exercises the whole service loop in-process against a
// loopback listener: record a real app trace, submit it twice (the
// second must be a cache hit serving identical bytes), fetch all
// three artifacts, run the adversarial confirm replay, and check the
// metrics endpoint. It is the CI smoke entry point.
func runSelftest(cfg service.Config) error {
	dir, err := os.MkdirTemp("", "cafa-serve-selftest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg.ResultsDir = dir
	cfg.ReplayScale = selftestScale
	svc := service.New(cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	spec, ok := apps.ByName(selftestApp)
	if !ok {
		return fmt.Errorf("app model %q missing", selftestApp)
	}
	col := trace.NewCollector()
	b, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, selftestScale)
	if err != nil {
		return fmt.Errorf("build %s: %w", selftestApp, err)
	}
	if err := b.Sys.Run(); err != nil {
		return fmt.Errorf("run %s: %w", selftestApp, err)
	}
	var raw bytes.Buffer
	if err := col.T.Encode(&raw); err != nil {
		return fmt.Errorf("encode trace: %w", err)
	}

	c := client.New("http://" + ln.Addr().String())

	// First submission: a miss that runs the full pipeline.
	j1, err := c.Submit(raw.Bytes(), "selftest.trace", selftestApp)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if j1.Cached {
		return fmt.Errorf("first submission reported cached")
	}
	j1, err = c.Wait(j1.ID, 2*time.Minute)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if j1.State != api.StateDone {
		return fmt.Errorf("job %s finished %s: %s", j1.ID, j1.State, j1.Error)
	}
	if j1.Races == 0 {
		return fmt.Errorf("no races reported for %s (model plants %d)", selftestApp, spec.Paper.Reported)
	}

	// Second submission: identical bytes must be a cache hit with an
	// identical report.
	j2, err := c.Submit(raw.Bytes(), "selftest.trace", selftestApp)
	if err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}
	if !j2.Cached || j2.State != api.StateDone {
		return fmt.Errorf("resubmission not served from cache (cached=%t state=%s)", j2.Cached, j2.State)
	}
	r1, err := c.Report(j1.ID)
	if err != nil {
		return fmt.Errorf("report %s: %w", j1.ID, err)
	}
	r2, err := c.Report(j2.ID)
	if err != nil {
		return fmt.Errorf("report %s: %w", j2.ID, err)
	}
	if !bytes.Equal(r1, r2) {
		return fmt.Errorf("cache served different report bytes")
	}
	ev, err := c.Evidence(j1.ID)
	if err != nil || len(ev) == 0 {
		return fmt.Errorf("evidence: %v (%d bytes)", err, len(ev))
	}
	tri, err := c.Triage(j1.ID)
	if err != nil || !bytes.Contains(tri, []byte("<html")) {
		return fmt.Errorf("triage: %v (html? %t)", err, bytes.Contains(tri, []byte("<html")))
	}
	st, err := c.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if st.Cache.Hits < 1 {
		return fmt.Errorf("cache hits = %d, want >= 1", st.Cache.Hits)
	}

	// Confirm replay: at least the planted races should reproduce.
	if _, err := c.Confirm(j1.ID, ""); err != nil {
		return fmt.Errorf("confirm: %w", err)
	}
	j1, err = c.Wait(j1.ID, 2*time.Minute)
	if err != nil {
		return fmt.Errorf("wait for confirm: %w", err)
	}
	if j1.Confirm == nil || j1.Confirm.State != api.ConfirmDone {
		return fmt.Errorf("confirm did not finish: %+v", j1.Confirm)
	}
	if len(j1.Confirm.Confirmations) == 0 {
		return fmt.Errorf("confirm reproduced no races for %s", selftestApp)
	}
	ev2, err := c.Evidence(j1.ID)
	if err != nil {
		return fmt.Errorf("annotated evidence: %w", err)
	}
	if !bytes.Contains(ev2, []byte(`"confirmed"`)) {
		return fmt.Errorf("annotated evidence carries no confirmation records")
	}

	// The metrics endpoint must expose the service counters.
	resp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer resp.Body.Close()
	var mb bytes.Buffer
	if _, err := mb.ReadFrom(resp.Body); err != nil {
		return err
	}
	for _, want := range []string{"serve_jobs_submitted_total", "serve_cache_hits_total", "serve_queue_depth"} {
		if !strings.Contains(mb.String(), want) {
			return fmt.Errorf("metrics endpoint missing %s", want)
		}
	}

	fmt.Printf("selftest: %s scale %d: %d races, %d confirmed, cache hits %d\n",
		selftestApp, selftestScale, j1.Races, len(j1.Confirm.Confirmations), st.Cache.Hits)
	return nil
}

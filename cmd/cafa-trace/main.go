// Command cafa-trace runs one of the modeled applications on the
// instrumented simulated runtime and writes its execution trace — the
// online half of the CAFA pipeline (the customized ROM + logger
// device of §5).
//
// Usage:
//
//	cafa-trace -app MyTracks -o mytracks.trace [-seed 1] [-scale 1]
//	           [-format bin|text] [-text]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cafa/internal/apps"
	"cafa/internal/buildinfo"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

func main() {
	var (
		appName = flag.String("app", "", "application model to run (see -list)")
		out     = flag.String("o", "", "output trace file (default <app>.trace)")
		seed    = flag.Uint64("seed", 1, "scheduler seed")
		scale   = flag.Int("scale", 1, "divide benign filler volume (1 = paper event counts)")
		format  = flag.String("format", "bin", "output trace format: bin (compact binary) or text (lossless line-oriented)")
		text    = flag.Bool("text", false, "also dump the trace as human-readable text to stdout (lossy)")
		list    = flag.Bool("list", false, "list available application models")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("cafa-trace"))
		return
	}
	if *list {
		for _, spec := range apps.Registry {
			fmt.Printf("%-12s %5d events, %2d planted races — %s\n",
				spec.Name, spec.Paper.Events, spec.Paper.Reported, spec.Workload)
		}
		return
	}
	if *appName == "" {
		fail("missing -app (use -list to see models)")
	}
	spec, ok := apps.ByName(*appName)
	if !ok {
		fail("unknown app %q; available: %s", *appName, strings.Join(apps.Names(), ", "))
	}
	col := trace.NewCollector()
	b, err := apps.Build(spec, sim.Config{Tracer: col, Seed: *seed}, *scale)
	if err != nil {
		fail("build: %v", err)
	}
	if err := b.Sys.Run(); err != nil {
		fail("run: %v", err)
	}
	if err := col.T.Validate(); err != nil {
		fail("trace validation: %v", err)
	}
	path := *out
	if path == "" {
		path = strings.ToLower(spec.Name) + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	switch *format {
	case "bin":
		err = col.T.Encode(f)
	case "text":
		err = col.T.EncodeText(f)
	default:
		fail("unknown -format %q (want bin or text)", *format)
	}
	if err != nil {
		fail("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("close: %v", err)
	}
	fmt.Printf("%s: %d events, %d entries, %d crashes -> %s\n",
		spec.Name, col.T.EventCount(), col.T.Len(), len(b.Sys.Crashes()), path)
	if *text {
		if err := col.T.WriteText(os.Stdout); err != nil {
			fail("%v", err)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cafa-trace: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

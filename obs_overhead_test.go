package cafa

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"cafa/internal/analysis"
	"cafa/internal/apps"
	"cafa/internal/obs"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

var updateBench = flag.Bool("update-bench", false, "rewrite BENCH_obs.json with the measured obs overhead")

// obsOverheadThreshold is the acceptance bound from the obs design
// contract: enabling instrumentation may cost at most 5% wall-clock
// on the ten-app analysis suite. CI hosts with noisy neighbours can
// loosen it via OBS_OVERHEAD_MAX (a ratio, e.g. "1.10").
const obsOverheadThreshold = 1.05

// suiteTraces records all ten app models once (benchScale, seed 1).
func suiteTraces(tb testing.TB) []*trace.Trace {
	tb.Helper()
	traces := make([]*trace.Trace, 0, len(apps.Registry))
	for _, spec := range apps.Registry {
		col := trace.NewCollector()
		out, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, benchScale)
		if err != nil {
			tb.Fatal(err)
		}
		if err := out.Sys.Run(); err != nil {
			tb.Fatal(err)
		}
		traces = append(traces, col.T)
	}
	return traces
}

// analyzeSuite runs the batch pipeline over the suite once and
// returns the wall-clock time.
func analyzeSuite(tb testing.TB, p *analysis.Pipeline, traces []*trace.Trace) time.Duration {
	tb.Helper()
	t0 := time.Now()
	if _, err := p.AnalyzeAll(traces); err != nil {
		tb.Fatal(err)
	}
	return time.Since(t0)
}

// TestObsOverhead is the obs-layer performance proof: the ten-app
// analysis suite with instrumentation enabled must stay within the
// overhead threshold of the uninstrumented run. Iterations alternate
// enabled/disabled and the minimum of each side is compared, which
// damps scheduler and GC noise on shared CI hosts.
func TestObsOverhead(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("obs unexpectedly enabled at test start")
	}
	threshold := obsOverheadThreshold
	if env := os.Getenv("OBS_OVERHEAD_MAX"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("bad OBS_OVERHEAD_MAX %q: %v", env, err)
		}
		threshold = v
	}

	traces := suiteTraces(t)
	p := analysis.New(analysis.Options{})

	// Warm-up: touch every code path once on both sides so lazy init
	// and cache effects don't land on the first measured iteration.
	analyzeSuite(t, p, traces)
	obs.Enable()
	analyzeSuite(t, p, traces)
	obs.Disable()
	obs.Reset()

	const iters = 5
	minOff := time.Duration(1<<63 - 1)
	minOn := minOff
	for i := 0; i < iters; i++ {
		if d := analyzeSuite(t, p, traces); d < minOff {
			minOff = d
		}
		obs.Enable()
		d := analyzeSuite(t, p, traces)
		obs.Disable()
		obs.Reset()
		if d < minOn {
			minOn = d
		}
	}

	ratio := float64(minOn) / float64(minOff)
	t.Logf("obs overhead: disabled=%v enabled=%v ratio=%.4f (threshold %.2f)", minOff, minOn, ratio, threshold)

	if *updateBench {
		writeBenchObs(t, minOff, minOn, ratio)
	}
	if ratio >= threshold {
		t.Errorf("obs overhead %.4f exceeds threshold %.2f (disabled %v, enabled %v)",
			ratio, threshold, minOff, minOn)
	}
}

// writeBenchObs records the measurement in BENCH_obs.json at the repo
// root, the artifact named by the acceptance criteria.
func writeBenchObs(t *testing.T, off, on time.Duration, ratio float64) {
	t.Helper()
	doc := map[string]any{
		"recorded":   time.Now().Format("2006-01-02"),
		"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"note": "Wall-clock of analysis.AnalyzeAll over the ten app traces (benchScale, seed 1), " +
			"min of 5 alternating iterations per side. Regenerate with `go test -run TestObsOverhead -update-bench .`.",
		"suite":       fmt.Sprintf("%d apps at scale %d", len(apps.Registry), benchScale),
		"disabled_ns": off.Nanoseconds(),
		"enabled_ns":  on.Nanoseconds(),
		"overhead":    ratio,
		"threshold":   obsOverheadThreshold,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

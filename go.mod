module cafa

go 1.22

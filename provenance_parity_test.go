package cafa

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"cafa/internal/analysis"
	"cafa/internal/apps"
	"cafa/internal/asm"
	"cafa/internal/dataflow"
	"cafa/internal/detect"
	"cafa/internal/dvm"
	"cafa/internal/hb"
	"cafa/internal/provenance"
	"cafa/internal/sim"
	"cafa/internal/trace"
)

// evidenceOverheadThreshold is the acceptance bound for the
// provenance collector: attaching evidence collection may cost at
// most 10% wall-clock on the ten-app analysis suite. Override with
// EVIDENCE_OVERHEAD_MAX (a ratio) on noisy hosts.
const evidenceOverheadThreshold = 1.10

// TestEvidenceDoesNotChangeResults is the collector's passivity
// proof: races and stats over the ten-app suite are byte-identical
// with and without evidence collection attached.
func TestEvidenceDoesNotChangeResults(t *testing.T) {
	traces := suiteTraces(t)
	off, err := analysis.New(analysis.Options{}).AnalyzeAll(traces)
	if err != nil {
		t.Fatal(err)
	}
	on, err := analysis.New(analysis.Options{Evidence: true}).AnalyzeAll(traces)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		Races []detect.Race
		Stats detect.Stats
	}
	for i := range traces {
		if off[i].Evidence != nil {
			t.Fatalf("trace %d: collector attached without Options.Evidence", i)
		}
		if on[i].Evidence == nil {
			t.Fatalf("trace %d: Options.Evidence set but no collector", i)
		}
		a, err := json.Marshal(outcome{off[i].Races, off[i].Stats})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(outcome{on[i].Races, on[i].Stats})
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("trace %d (%s): evidence collection changed the detector outcome\noff: %s\non:  %s",
				i, apps.Registry[i].Name, a, b)
		}
	}
}

// TestEvidenceOverhead bounds the collector's cost on the ten-app
// suite, alternating on/off and comparing minima (same discipline as
// TestObsOverhead). -update-bench records BENCH_provenance.json.
func TestEvidenceOverhead(t *testing.T) {
	threshold := evidenceOverheadThreshold
	if env := os.Getenv("EVIDENCE_OVERHEAD_MAX"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("bad EVIDENCE_OVERHEAD_MAX %q: %v", env, err)
		}
		threshold = v
	}

	traces := suiteTraces(t)
	pOff := analysis.New(analysis.Options{})
	pOn := analysis.New(analysis.Options{Evidence: true})

	// Warm-up both sides.
	analyzeSuite(t, pOff, traces)
	analyzeSuite(t, pOn, traces)

	const iters = 5
	minOff := time.Duration(1<<63 - 1)
	minOn := minOff
	for i := 0; i < iters; i++ {
		if d := analyzeSuite(t, pOff, traces); d < minOff {
			minOff = d
		}
		if d := analyzeSuite(t, pOn, traces); d < minOn {
			minOn = d
		}
	}

	ratio := float64(minOn) / float64(minOff)
	t.Logf("evidence overhead: off=%v on=%v ratio=%.4f (threshold %.2f)", minOff, minOn, ratio, threshold)

	if *updateBench {
		doc := map[string]any{
			"recorded":   time.Now().Format("2006-01-02"),
			"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"note": "Wall-clock of analysis.AnalyzeAll over the ten app traces (benchScale, seed 1), " +
				"min of 5 alternating iterations per side. Regenerate with `go test -run TestEvidenceOverhead -update-bench .`.",
			"suite":       fmt.Sprintf("%d apps at scale %d", len(apps.Registry), benchScale),
			"disabled_ns": minOff.Nanoseconds(),
			"enabled_ns":  minOn.Nanoseconds(),
			"overhead":    ratio,
			"threshold":   evidenceOverheadThreshold,
		}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("BENCH_provenance.json", append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if ratio >= threshold {
		t.Errorf("evidence overhead %.4f exceeds threshold %.2f (off %v, on %v)",
			ratio, threshold, minOff, minOn)
	}
}

// TestEvidenceAllStagesWitnessed checks that the ten-app suite's
// evidence bundles carry at least one retained witness for every
// dynamic prune stage. The static-guard stage is the one exception:
// on the suite the dynamic if-guard heuristic always matches first
// (the static prune is its backstop for dynamically-missed guards),
// so its witness is asserted on a dedicated alias-eviction fixture
// with the deref site statically marked, the same shape
// internal/detect uses to test the prune itself.
func TestEvidenceAllStagesWitnessed(t *testing.T) {
	traces := suiteTraces(t)
	results, err := analysis.New(analysis.Options{Evidence: true}).AnalyzeAll(traces)
	if err != nil {
		t.Fatal(err)
	}
	var union [detect.NumPruneStages]int
	retained := map[detect.PruneStage]bool{}
	for i, res := range results {
		counts := res.Evidence.StageCounts()
		for s, n := range counts {
			union[s] += n
		}
		in := res.Evidence.Bundle(apps.Registry[i].Name)
		for _, p := range in.Pruned {
			for s := detect.PruneStage(0); int(s) < detect.NumPruneStages; s++ {
				if p.Stage == s.String() {
					retained[s] = true
				}
			}
		}
	}
	for _, stage := range []detect.PruneStage{
		detect.PruneOrdered, detect.PruneLockset, detect.PruneIfGuard,
		detect.PruneIntraAlloc, detect.PruneDedup,
	} {
		if union[stage] == 0 {
			t.Errorf("suite produced no %v prunes at all", stage)
		}
		if !retained[stage] {
			t.Errorf("suite bundles retain no %v witness", stage)
		}
	}

	t.Run("static-guard", func(t *testing.T) {
		w := staticGuardWitness(t)
		if w.W.Stage != detect.PruneStaticGuard {
			t.Fatalf("witness stage = %v, want static-guard", w.W.Stage)
		}
	})
}

// staticGuardSrc is a minimal same-looper use/free pair with no
// dynamic null test: two sender threads post the events, so they are
// concurrent, and only a static guard annotation can prune the use.
const staticGuardSrc = `
.method run(this) regs=1
    return-void
.end

.method use(h) regs=3
    iget v1, h, ptr
    invoke-virtual run, v1
    return-void
.end

.method free(h) regs=2
    const-null v1
    iput v1, h, ptr
    return-void
.end

.method sendUse(h) regs=5
    sget-int v1, mainQ
    const-method v2, use
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end

.method sendFree(h) regs=5
    const-int v3, #20
    sleep v3
    sget-int v1, mainQ
    const-method v2, free
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end
`

// staticGuardWitness runs the fixture twice: once to locate the
// reported use site, once with that site in StaticGuards and a
// provenance collector attached, returning the static-guard prune
// record.
func staticGuardWitness(t *testing.T) provenance.Pruned {
	t.Helper()
	prog, err := asm.Assemble(staticGuardSrc)
	if err != nil {
		t.Fatal(err)
	}
	record := func() (*trace.Trace, *hb.Graph) {
		col := trace.NewCollector()
		s := sim.NewSystem(prog, sim.Config{Tracer: col, Seed: 1})
		main := s.AddLooper("main", 0)
		s.Heap().SetStatic(prog.FieldID("mainQ"), dvm.Int64(main.Handle()))
		h := s.Heap().New("Activity")
		pay := s.Heap().New("Payload")
		h.Set(prog.FieldID("ptr"), dvm.Obj(pay.ID))
		if _, err := s.StartThread("su", "sendUse", dvm.Obj(h.ID)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.StartThread("sf", "sendFree", dvm.Obj(h.ID)); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		g, err := hb.Build(col.T, hb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return col.T, g
	}

	tr, g := record()
	res, err := detect.Detect(detect.Input{Trace: tr, Graph: g}, detect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 1 {
		t.Fatalf("fixture races = %d, want 1 (no dynamic guard should match)", len(res.Races))
	}
	u := res.Races[0].Use

	col := provenance.NewCollector(tr, g, nil, nil, provenance.Options{})
	guards := map[dataflow.Key]bool{{Method: u.Method, PC: u.DerefPC}: true}
	res, err = detect.Detect(detect.Input{
		Trace: tr, Graph: g, StaticGuards: guards, Collector: col,
	}, detect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 0 || res.Stats.FilteredStaticGuard != 1 {
		t.Fatalf("static guard did not prune: races=%d FilteredStaticGuard=%d",
			len(res.Races), res.Stats.FilteredStaticGuard)
	}
	for _, p := range col.PrunedRecords() {
		if p.W.Stage == detect.PruneStaticGuard {
			return p
		}
	}
	t.Fatal("collector retained no static-guard witness")
	return provenance.Pruned{}
}
